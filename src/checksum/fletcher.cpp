#include "checksum/fletcher.hpp"

namespace cksum::alg {

namespace {

constexpr std::size_t kReduceChunk = 1 << 14;  // keep 64-bit accs far from overflow

constexpr std::uint32_t reduce(std::uint64_t v, FletcherMod mod) noexcept {
  return static_cast<std::uint32_t>(v % modulus(mod));
}

}  // namespace

FletcherPair fletcher_block(util::ByteView data, FletcherMod mod) noexcept {
  FletcherSum s(mod);
  s.update(data);
  return s.pair();
}

FletcherPair fletcher_block_naive(util::ByteView data,
                                  FletcherMod mod) noexcept {
  const std::uint32_t m = modulus(mod);
  std::uint32_t a = 0, b = 0;
  for (std::uint8_t byte : data) {
    a = (a + byte) % m;
    b = (b + a) % m;
  }
  return {a, b};
}

void FletcherSum::update(util::ByteView data) noexcept {
  const std::uint64_t m = modulus(mod_);
  std::size_t i = 0;
  while (i < data.size()) {
    const std::size_t end = std::min(data.size(), i + kReduceChunk);
    for (; i < end; ++i) {
      a_ += data[i];
      b_ += a_;
    }
    a_ %= m;
    b_ %= m;
  }
}

FletcherPair FletcherSum::pair() const noexcept {
  return {reduce(a_, mod_), reduce(b_, mod_)};
}

FletcherPair fletcher_combine(FletcherPair x, FletcherPair y,
                              std::size_t y_len, FletcherMod mod) noexcept {
  const std::uint64_t m = modulus(mod);
  FletcherPair out;
  out.a = static_cast<std::uint32_t>((x.a + y.a) % m);
  out.b = static_cast<std::uint32_t>(
      (x.b + (static_cast<std::uint64_t>(y_len) % m) * x.a + y.b) % m);
  return out;
}

FletcherPair fletcher_shift(FletcherPair x, std::size_t tail_len,
                            FletcherMod mod) noexcept {
  const std::uint64_t m = modulus(mod);
  return {x.a, static_cast<std::uint32_t>(
                   (x.b + (static_cast<std::uint64_t>(tail_len) % m) * x.a) % m)};
}

std::pair<std::uint8_t, std::uint8_t> fletcher_check_bytes(
    FletcherPair rest, std::size_t u, FletcherMod mod) noexcept {
  // Solve  X + Y ≡ -A  and  u·X + (u-1)·Y ≡ -B  (mod m); the system's
  // determinant is 1, so it is solvable in both moduli:
  //   X ≡ (u-1)·A - B,   Y ≡ B - u·A.
  const std::uint64_t m = modulus(mod);
  const std::uint64_t a = rest.a % m;
  const std::uint64_t b = rest.b % m;
  const std::uint64_t w = static_cast<std::uint64_t>(u) % m;
  const std::uint64_t wm1 = (w + m - 1) % m;
  const std::uint64_t x = (wm1 * a % m + m - b) % m;
  const std::uint64_t y = (b + m - w * a % m) % m;
  return {static_cast<std::uint8_t>(x), static_cast<std::uint8_t>(y)};
}

bool fletcher_verify(util::ByteView msg, FletcherMod mod) noexcept {
  return fletcher_is_zero(fletcher_block(msg, mod));
}

}  // namespace cksum::alg
