// Shared --kernel / CKSUM_KERNEL handling for the CLI drivers.
//
// Both cksumlab and faultlab accept `--kernel <name>` on every
// subcommand (and the CKSUM_KERNEL environment variable as the
// fallback). This header centralises the contract:
//
//   * `--kernel list` (or CKSUM_KERNEL=list) prints every registered
//     kernel with its tier, availability on this machine, and the
//     unavailability reason, plus what "best" resolves to — then the
//     tool exits successfully without running a subcommand.
//   * An unknown name is a loud error listing the valid names.
//   * A known-but-unavailable kernel is a clean, distinct error
//     naming the reason (e.g. "CPU lacks carry-less multiply") —
//     never a crash, never a silent fall-through to "best".
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "checksum/kernels/kernel.hpp"
#include "obs/snapshot.hpp"

namespace cksum::tools {

/// One row per registered kernel: name, tier, availability (with the
/// reason when unavailable), description; headed by the machine's
/// "best" resolution. Scripts parse the first line's "resolves to".
inline void print_kernel_list(std::FILE* out) {
  const alg::kern::Kernel* best = alg::kern::find_kernel("best");
  std::fprintf(out, "kernels (best resolves to %s):\n",
               best != nullptr ? std::string(best->name).c_str() : "?");
  for (const alg::kern::Kernel& k : alg::kern::kernels()) {
    const char* why = alg::kern::kernel_unavailable_reason(k);
    std::fprintf(out, "  %-8s tier %d  %-11s %s%s%s%s\n",
                 std::string(k.name).c_str(), k.tier,
                 why == nullptr ? "available" : "unavailable",
                 std::string(k.description).c_str(), why == nullptr ? "" : " (",
                 why == nullptr ? "" : why, why == nullptr ? "" : ")");
  }
}

/// Strip every `--kernel <name>` from `args` (last occurrence wins,
/// CKSUM_KERNEL is the fallback) and act on the choice. Returns
///   0  continue with the subcommand (kernel selected, or left to the
///      lazy "best" resolution when nothing was asked),
///   1  `list` was requested and printed — exit 0 without running,
///   2  bad choice (message already printed) — exit 2.
inline int apply_kernel_args(std::vector<std::string>& args,
                             const char* tool) {
  std::string choice;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--kernel") {
      if (it + 1 == args.end()) {
        std::fprintf(stderr, "%s: --kernel requires a name (try list)\n",
                     tool);
        return 2;
      }
      choice = *(it + 1);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  if (choice.empty()) {
    const char* env = std::getenv(alg::kern::kKernelEnv);
    if (env != nullptr) choice = env;
  }
  if (choice.empty()) return 0;  // first dispatch resolves to "best"
  if (choice == "list") {
    print_kernel_list(stdout);
    return 1;
  }
  const alg::kern::Kernel* k = alg::kern::find_kernel(choice);
  if (k == nullptr) {
    std::fprintf(stderr, "%s: unknown kernel '%s'; available: best list",
                 tool, choice.c_str());
    for (const alg::kern::Kernel& each : alg::kern::kernels())
      std::fprintf(stderr, " %s", std::string(each.name).c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (!alg::kern::kernel_available(*k)) {
    const char* why = alg::kern::kernel_unavailable_reason(*k);
    std::fprintf(stderr,
                 "%s: kernel '%s' is unavailable on this machine: %s\n",
                 tool, choice.c_str(), why != nullptr ? why : "?");
    return 2;
  }
  if (!alg::kern::select_kernel(choice)) {
    std::fprintf(stderr, "%s: cannot select kernel '%s'\n", tool,
                 choice.c_str());
    return 2;
  }
  return 0;
}

/// The manifest members recording which kernel ran and why — spliced
/// into RunInfo::extra_json by every exporting subcommand
/// (docs/OBSERVABILITY.md documents both).
inline std::string kernel_manifest_json() {
  return "\"kernel\": \"" + std::string(alg::kern::active_kernel().name) +
         "\", \"kernel_reason\": \"" +
         obs::json_escape(alg::kern::kernel_selection_reason()) + "\"";
}

}  // namespace cksum::tools
