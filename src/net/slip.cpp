#include "net/slip.hpp"

namespace cksum::net {

void slip_frame_append(util::Bytes& line, util::ByteView datagram) {
  line.push_back(kSlipEnd);  // flush any accumulated line noise
  for (std::uint8_t byte : datagram) {
    switch (byte) {
      case kSlipEnd:
        line.push_back(kSlipEsc);
        line.push_back(kSlipEscEnd);
        break;
      case kSlipEsc:
        line.push_back(kSlipEsc);
        line.push_back(kSlipEscEsc);
        break;
      default:
        line.push_back(byte);
    }
  }
  line.push_back(kSlipEnd);
}

util::Bytes slip_frame(util::ByteView datagram) {
  util::Bytes out;
  out.reserve(datagram.size() + 16);
  slip_frame_append(out, datagram);
  return out;
}

std::vector<util::Bytes> slip_deframe(util::ByteView line) {
  std::vector<util::Bytes> frames;
  util::Bytes current;
  bool escaped = false;
  for (std::uint8_t byte : line) {
    if (escaped) {
      if (byte == kSlipEscEnd) {
        current.push_back(kSlipEnd);
      } else if (byte == kSlipEscEsc) {
        current.push_back(kSlipEsc);
      } else {
        // Protocol violation: RFC 1055 suggests leaving the byte in
        // the packet and letting higher layers catch it.
        current.push_back(byte);
      }
      escaped = false;
      continue;
    }
    if (byte == kSlipEsc) {
      escaped = true;
      continue;
    }
    if (byte == kSlipEnd) {
      if (!current.empty()) frames.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(byte);
  }
  if (!current.empty()) frames.push_back(std::move(current));
  return frames;
}

}  // namespace cksum::net
