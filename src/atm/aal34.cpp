#include "atm/aal34.hpp"

#include <algorithm>

namespace cksum::atm {

std::uint16_t crc10(util::ByteView data) noexcept {
  // MSB-first, generator 0x633 (x^10+x^9+x^5+x^4+x+1), init 0. The
  // register lives in the top 10 bits of a 16-bit word.
  std::uint16_t reg = 0;
  for (std::uint8_t byte : data) {
    reg ^= static_cast<std::uint16_t>(byte << 2);  // align to bit 9..2
    for (int b = 0; b < 8; ++b) {
      reg = static_cast<std::uint16_t>((reg & 0x200) ? (reg << 1) ^ 0x633
                                                     : (reg << 1));
    }
    reg &= 0x3ff;
  }
  return reg;
}

std::array<std::uint8_t, 48> Sar34Cell::encode() const noexcept {
  std::array<std::uint8_t, 48> out{};
  out[0] = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(st) << 6) | ((sn & 0xf) << 2) |
      ((mid >> 8) & 0x3));
  out[1] = static_cast<std::uint8_t>(mid & 0xff);
  std::copy(payload.begin(), payload.end(), out.begin() + 2);
  // Trailer: LI(6) in the top bits, CRC-10 zeroed for computation.
  out[46] = static_cast<std::uint8_t>((li & 0x3f) << 2);
  out[47] = 0;
  const std::uint16_t crc = crc10(util::ByteView(out.data(), out.size()));
  out[46] |= static_cast<std::uint8_t>((crc >> 8) & 0x3);
  out[47] = static_cast<std::uint8_t>(crc & 0xff);
  return out;
}

std::optional<Sar34Cell> Sar34Cell::decode(util::ByteView bytes) noexcept {
  if (bytes.size() < 48) return std::nullopt;
  // Verify: recompute with CRC bits zeroed.
  std::array<std::uint8_t, 48> copy{};
  std::copy_n(bytes.begin(), 48, copy.begin());
  const std::uint16_t stored =
      static_cast<std::uint16_t>(((copy[46] & 0x3) << 8) | copy[47]);
  copy[46] &= 0xfc;
  copy[47] = 0;
  if (crc10(util::ByteView(copy.data(), copy.size())) != stored)
    return std::nullopt;

  Sar34Cell cell;
  cell.st = static_cast<SegmentType>(copy[0] >> 6);
  cell.sn = static_cast<std::uint8_t>((copy[0] >> 2) & 0xf);
  cell.mid = static_cast<std::uint16_t>(((copy[0] & 0x3) << 8) | copy[1]);
  std::copy_n(copy.begin() + 2, kSar34Payload, cell.payload.begin());
  cell.li = static_cast<std::uint8_t>(copy[46] >> 2);
  if (cell.li > kSar34Payload) return std::nullopt;
  return cell;
}

std::vector<Sar34Cell> aal34_segment(util::ByteView cpcs_pdu,
                                     std::uint16_t mid,
                                     std::uint8_t initial_sn) {
  std::vector<Sar34Cell> out;
  const std::size_t n =
      std::max<std::size_t>(1, (cpcs_pdu.size() + kSar34Payload - 1) /
                                   kSar34Payload);
  out.reserve(n);
  std::uint8_t sn = initial_sn & 0xf;
  for (std::size_t i = 0; i < n; ++i) {
    Sar34Cell cell;
    cell.mid = mid & 0x3ff;
    cell.sn = sn;
    sn = static_cast<std::uint8_t>((sn + 1) & 0xf);
    const std::size_t off = i * kSar34Payload;
    const std::size_t len =
        std::min(kSar34Payload, cpcs_pdu.size() - off);
    std::copy_n(cpcs_pdu.begin() + off, len, cell.payload.begin());
    cell.li = static_cast<std::uint8_t>(len);
    if (n == 1) {
      cell.st = SegmentType::kSsm;
    } else if (i == 0) {
      cell.st = SegmentType::kBom;
    } else if (i + 1 == n) {
      cell.st = SegmentType::kEom;
    } else {
      cell.st = SegmentType::kCom;
    }
    out.push_back(cell);
  }
  return out;
}

util::Bytes cpcs34_frame(util::ByteView payload, std::uint8_t tag) {
  const std::size_t padded = (payload.size() + 3) / 4 * 4;
  util::Bytes out(4 + padded + 4, 0);
  out[0] = 0;    // CPI
  out[1] = tag;  // Btag
  util::store_be16(out.data() + 2,
                   static_cast<std::uint16_t>(payload.size()));  // BASize
  std::copy(payload.begin(), payload.end(), out.begin() + 4);
  std::uint8_t* trailer = out.data() + 4 + padded;
  trailer[0] = 0;    // AL
  trailer[1] = tag;  // Etag
  util::store_be16(trailer + 2, static_cast<std::uint16_t>(payload.size()));
  return out;
}

std::optional<Cpcs34Payload> cpcs34_parse(util::ByteView pdu) {
  if (pdu.size() < 8 || pdu.size() % 4 != 0) return std::nullopt;
  const std::uint8_t btag = pdu[1];
  const std::uint8_t etag = pdu[pdu.size() - 3];
  if (btag != etag) return std::nullopt;
  const std::uint16_t basize = util::load_be16(pdu.data() + 2);
  const std::uint16_t length = util::load_be16(pdu.data() + pdu.size() - 2);
  if (length != basize) return std::nullopt;  // our sender sets BASize exactly
  if (4 + static_cast<std::size_t>(length) + 4 > pdu.size())
    return std::nullopt;
  // Pad must make the payload area end exactly at the trailer.
  if ((static_cast<std::size_t>(length) + 3) / 4 * 4 + 8 != pdu.size())
    return std::nullopt;
  Cpcs34Payload out;
  out.tag = btag;
  out.payload.assign(pdu.begin() + 4, pdu.begin() + 4 + length);
  return out;
}

std::optional<Aal34Reassembler::Result> Aal34Reassembler::push(
    const Sar34Cell& cell) {
  // Sequence check: every received cell must continue the mod-16
  // chain of its MID stream; a gap means loss and aborts any PDU in
  // progress. (This is the structural splice immunity.)
  if (have_last_sn_ &&
      cell.sn != static_cast<std::uint8_t>((last_sn_ + 1) & 0xf)) {
    ++seq_errors_;
    abort_current();
  }
  last_sn_ = cell.sn;
  have_last_sn_ = true;

  switch (cell.st) {
    case SegmentType::kBom:
      abort_current();
      in_progress_ = true;
      buffer_.assign(cell.payload.begin(), cell.payload.begin() + cell.li);
      return std::nullopt;
    case SegmentType::kCom:
      if (!in_progress_) return std::nullopt;  // orphan continuation
      buffer_.insert(buffer_.end(), cell.payload.begin(),
                     cell.payload.begin() + cell.li);
      return std::nullopt;
    case SegmentType::kEom: {
      if (!in_progress_) return std::nullopt;  // orphan end
      buffer_.insert(buffer_.end(), cell.payload.begin(),
                     cell.payload.begin() + cell.li);
      Result r;
      r.bytes = std::move(buffer_);
      r.complete = true;
      buffer_.clear();
      in_progress_ = false;
      return r;
    }
    case SegmentType::kSsm: {
      abort_current();
      Result r;
      r.bytes.assign(cell.payload.begin(), cell.payload.begin() + cell.li);
      r.complete = true;
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace cksum::atm
