#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace cksum::util {

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // xoshiro must not be seeded with all-zero state; SplitMix64 never
  // produces four consecutive zeros, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 top bits -> [0,1) with full double granularity.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

void Rng::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = next();
    for (int b = 0; b < 8; ++b)
      out[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(word >> (8 * b));
    i += 8;
  }
  if (i < out.size()) {
    std::uint64_t word = next();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(word);
      word >>= 8;
    }
  }
}

std::size_t Rng::run_length(double p_continue, std::size_t cap) noexcept {
  std::size_t n = 1;
  while (n < cap && chance(p_continue)) ++n;
  return n;
}

std::size_t Rng::pick_weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::child(std::uint64_t stream_id) const noexcept {
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL + stream_id));
  return Rng(sm.next() ^ stream_id);
}

}  // namespace cksum::util
