#include "util/pcap.hpp"

namespace cksum::util {

namespace {

void put32(std::ostream& out, std::uint32_t v) {
  // Little-endian on the wire; the 0xa1b2c3d4 magic tells readers the
  // byte order we chose.
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

void put16(std::ostream& out, std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  out.write(reinterpret_cast<const char*>(b), 2);
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out) : out_(out) {
  put32(out_, 0xa1b2c3d4u);  // magic
  put16(out_, 2);            // version major
  put16(out_, 4);            // version minor
  put32(out_, 0);            // thiszone
  put32(out_, 0);            // sigfigs
  put32(out_, 65535);        // snaplen
  put32(out_, 101);          // LINKTYPE_RAW
}

void PcapWriter::write_packet(ByteView datagram) {
  const auto ts = static_cast<std::uint32_t>(count_);
  put32(out_, ts / 1000000u);  // seconds
  put32(out_, ts % 1000000u);  // microseconds
  put32(out_, static_cast<std::uint32_t>(datagram.size()));  // captured
  put32(out_, static_cast<std::uint32_t>(datagram.size()));  // original
  out_.write(reinterpret_cast<const char*>(datagram.data()),
             static_cast<std::streamsize>(datagram.size()));
  ++count_;
}

}  // namespace cksum::util
