// The table-slicing / deferred-reduction tier.
//
// CRC-32 runs slicing-by-8: eight message bytes are folded per step
// through eight 256-entry tables derived from the GenericCrc byte
// table, turning the byte-serial table walk into eight independent
// loads XORed together (arXiv 1009.5949's "slicing-by-N").
//
// The modular sums (Fletcher, Fletcher-32, Adler-32) are unrolled so
// the inner loop does plain integer adds and the `% m` reductions run
// only at overflow-safe block boundaries (arXiv 2302.13432). The
// unrolled step is the closed form of eight sequential `a += d;
// b += a` updates:
//
//   b += 8·a + 8·d0 + 7·d1 + ... + 1·d7
//   a += d0 + d1 + ... + d7
//
// which keeps the partial sums equal (not merely congruent) to the
// sequential ones, so the block-boundary bounds of the scalar
// formulations carry over unchanged.
#include "checksum/kernels/impl.hpp"

#include <algorithm>

#include "checksum/adler32.hpp"
#include "checksum/generic_crc.hpp"

namespace cksum::alg::kern::impl {

namespace {

/// Bytes between Fletcher reductions: A stays below 2^22 and B below
/// 2^37 in the 64-bit accumulators (same bound as alg::FletcherSum).
constexpr std::size_t kFletcherChunk = std::size_t{1} << 14;

/// 16-bit words between Fletcher-32 reductions: A < 2^31, B < 2^45.
constexpr std::size_t kFletcher32ChunkWords = std::size_t{1} << 14;

/// zlib's NMAX: the longest run for which the 32-bit Adler
/// accumulators cannot overflow between reductions.
constexpr std::size_t kAdlerChunk = 5552;

/// 64-bit blocks between Koopman dual-sum reductions. Each folded
/// block residue is < 65535·(3375+225+15+1) < 2^28, so over a run the
/// A accumulator stays below 2^16 + 2048·2^28 < 2^40 and B below
/// 2^16 + 2048·2^40 < 2^51 — both comfortably inside 64 bits.
constexpr std::size_t kKoopmanDualRun = 2048;

/// 64-bit blocks between Koopman single-sum reductions. Each folded
/// block residue 5·hi + lo is < 6·2^32 < 2^35, so a run keeps the
/// accumulator below 2^32 + 2^27·2^35 = 2^62 + 2^32.
constexpr std::size_t kKoopmanSingleRun = std::size_t{1} << 27;

}  // namespace

const CrcSliceTables& crc32_slice_tables() noexcept {
  static const CrcSliceTables tables = [] {
    CrcSliceTables tb{};
    // t[0] is GenericCrc's byte table for the IEEE polynomial; the
    // extension recurrence appends one more zero byte per slice.
    const GenericCrc engine(32, standard_poly(32));
    const auto& byte_table = engine.byte_table();
    for (std::size_t n = 0; n < 256; ++n) tb.t[0][n] = byte_table[n];
    for (std::size_t n = 0; n < 256; ++n) {
      std::uint32_t c = tb.t[0][n];
      for (int s = 1; s < 8; ++s) {
        c = tb.t[0][c & 0xffu] ^ (c >> 8);
        tb.t[s][n] = c;
      }
    }
    return tb;
  }();
  return tables;
}

std::uint32_t slicing_crc32(std::uint32_t crc, util::ByteView data) noexcept {
  const auto& tb = crc32_slice_tables();
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  (static_cast<std::uint32_t>(p[1]) << 8) |
                                  (static_cast<std::uint32_t>(p[2]) << 16) |
                                  (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    c = tb.t[7][lo & 0xffu] ^ tb.t[6][(lo >> 8) & 0xffu] ^
        tb.t[5][(lo >> 16) & 0xffu] ^ tb.t[4][lo >> 24] ^
        tb.t[3][hi & 0xffu] ^ tb.t[2][(hi >> 8) & 0xffu] ^
        tb.t[1][(hi >> 16) & 0xffu] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = tb.t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint16_t slicing_internet_sum(util::ByteView data) noexcept {
  // Word-at-a-time with the end-around carries deferred into the top
  // of a 64-bit accumulator and folded once at the end.
  std::uint64_t acc = 0;
  const std::size_t n = data.size();
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  if (i < n) acc += static_cast<std::uint32_t>(data[i]) << 8;
  while (acc >> 16) acc = (acc & 0xffffu) + (acc >> 16);
  return static_cast<std::uint16_t>(acc);
}

FletcherPair slicing_fletcher(util::ByteView data, FletcherMod mod) noexcept {
  const std::uint64_t m = modulus(mod);
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t a = 0, b = 0;
  while (n > 0) {
    std::size_t block = std::min(n, kFletcherChunk);
    n -= block;
    while (block >= 8) {
      b += 8 * a + 8u * p[0] + 7u * p[1] + 6u * p[2] + 5u * p[3] +
           4u * p[4] + 3u * p[5] + 2u * p[6] + 1u * p[7];
      a += static_cast<std::uint64_t>(p[0]) + p[1] + p[2] + p[3] + p[4] +
           p[5] + p[6] + p[7];
      p += 8;
      block -= 8;
    }
    while (block-- > 0) {
      a += *p++;
      b += a;
    }
    a %= m;
    b %= m;
  }
  return {static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b)};
}

Fletcher32Pair slicing_fletcher32(util::ByteView data) noexcept {
  constexpr std::uint64_t m = 65535;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t a = 0, b = 0;
  while (n >= 2) {
    std::size_t words = std::min(n / 2, kFletcher32ChunkWords);
    n -= words * 2;
    while (words >= 4) {
      const std::uint32_t w0 =
          static_cast<std::uint32_t>((p[0] << 8) | p[1]);
      const std::uint32_t w1 =
          static_cast<std::uint32_t>((p[2] << 8) | p[3]);
      const std::uint32_t w2 =
          static_cast<std::uint32_t>((p[4] << 8) | p[5]);
      const std::uint32_t w3 =
          static_cast<std::uint32_t>((p[6] << 8) | p[7]);
      b += 4 * a + 4u * w0 + 3u * w1 + 2u * w2 + 1u * w3;
      a += static_cast<std::uint64_t>(w0) + w1 + w2 + w3;
      p += 8;
      words -= 4;
    }
    while (words-- > 0) {
      a += static_cast<std::uint32_t>((p[0] << 8) | p[1]);
      b += a;
      p += 2;
    }
    a %= m;
    b %= m;
  }
  if (n == 1) {
    // Odd trailing byte: zero-padded on the right, same as the scalar
    // word loop.
    a = (a + (static_cast<std::uint32_t>(*p) << 8)) % m;
    b = (b + a) % m;
  }
  return {static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b)};
}

std::uint32_t slicing_adler32(std::uint32_t adler,
                              util::ByteView data) noexcept {
  std::uint32_t a = adler & 0xffffu;
  std::uint32_t b = (adler >> 16) & 0xffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    std::size_t block = std::min(n, kAdlerChunk);
    n -= block;
    while (block >= 8) {
      b += 8 * a + 8u * p[0] + 7u * p[1] + 6u * p[2] + 5u * p[3] +
           4u * p[4] + 3u * p[5] + 2u * p[6] + 1u * p[7];
      a += static_cast<std::uint32_t>(p[0]) + p[1] + p[2] + p[3] + p[4] +
           p[5] + p[6] + p[7];
      p += 8;
      block -= 8;
    }
    while (block-- > 0) {
      a += *p++;
      b += a;
    }
    a %= kAdlerMod;
    b %= kAdlerMod;
  }
  return (b << 16) | a;
}

KoopmanDualPair slicing_koopman_dual(util::ByteView data) noexcept {
  // A 64-bit big-endian block with 16-bit lanes w0..w3 is congruent to
  // w0·3375 + w1·225 + w2·15 + w3 (mod 65521), because 2^16 ≡ 15 and
  // the higher lane weights are its powers: 15² = 225, 15³ = 3375.
  // Three small multiplies replace the per-block 64-bit modulo, and
  // the `%` reductions run only at kKoopmanDualRun boundaries.
  constexpr std::uint64_t m = kKoopmanDualMod;
  const std::uint8_t* p = data.data();
  std::size_t nblocks = data.size() / kKoopmanBlockBytes;
  std::uint64_t a = 0, b = 0;
  while (nblocks > 0) {
    std::size_t run = std::min(nblocks, kKoopmanDualRun);
    nblocks -= run;
    while (run-- > 0) {
      const std::uint64_t w0 = util::load_be16(p);
      const std::uint64_t w1 = util::load_be16(p + 2);
      const std::uint64_t w2 = util::load_be16(p + 4);
      const std::uint64_t w3 = util::load_be16(p + 6);
      a += w0 * 3375 + w1 * 225 + w2 * 15 + w3;
      b += a;
      p += kKoopmanBlockBytes;
    }
    a %= m;
    b %= m;
  }
  KoopmanDualPair out{static_cast<std::uint32_t>(a),
                      static_cast<std::uint32_t>(b)};
  const std::size_t tail = data.size() % kKoopmanBlockBytes;
  if (tail > 0) {
    // Final partial block, zero-padded on the right: one naive step
    // over the remainder combined onto the block-aligned prefix.
    out = koopman_dual_combine(
        out, koopman_dual_naive(data.subspan(data.size() - tail)), 1);
  }
  return out;
}

std::uint64_t slicing_koopman_single(util::ByteView data) noexcept {
  // 2^32 ≡ 5 (mod 2^32 - 5), so a block hi·2^32 + lo folds to
  // 5·hi + lo; the full modulo runs once per kKoopmanSingleRun blocks.
  constexpr std::uint64_t m = kKoopmanSingleMod;
  const std::uint8_t* p = data.data();
  std::size_t nblocks = data.size() / kKoopmanBlockBytes;
  std::uint64_t s = 0;
  while (nblocks > 0) {
    std::size_t run = std::min(nblocks, kKoopmanSingleRun);
    nblocks -= run;
    while (run-- > 0) {
      const std::uint64_t hi = util::load_be32(p);
      const std::uint64_t lo = util::load_be32(p + 4);
      s += hi * 5 + lo;
      p += kKoopmanBlockBytes;
    }
    s %= m;
  }
  const std::size_t tail = data.size() % kKoopmanBlockBytes;
  if (tail > 0)
    s = koopman_single_combine(
        s, koopman_single_naive(data.subspan(data.size() - tail)));
  return s;
}

}  // namespace cksum::alg::kern::impl
