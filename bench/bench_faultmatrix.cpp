// Detection rate per fault class x check code — the paper's Table 4-6
// apparatus extended from AAL5 splices to the full fault taxonomy the
// faults::FaultyChannel injects (bursts, duplication, reordering,
// deletion, truncation, splices, cross-stream misdelivery).
//
// For each trial a fresh random message is corrupted by one fault of
// the class; a fault is "detected" by a check code when the code's
// value over the corrupted bytes differs from the value over the
// original. The burst rows measure the §2 guarantees directly: bursts
// of <= 15 bits never escape the Internet checksum, bursts of < 32
// bits never escape CRC-32 — the bench exits non-zero if either
// guarantee is violated, so the CI smoke run doubles as a regression
// check.
//
// Cell-level rows operate on 48-byte blocks of the message, mirroring
// what the corresponding channel fault does to a cell stream once the
// payloads are concatenated by the reassembler.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "checksum/checksum.hpp"
#include "checksum/koopman.hpp"
#include "core/error_inject.hpp"
#include "core/report.hpp"
#include "util/rng.hpp"

using namespace cksum;

namespace {

constexpr std::size_t kCell = 48;
constexpr std::size_t kCells = 10;              // message = 10 cells
constexpr std::size_t kMsgBytes = kCells * kCell;  // 480
constexpr int kTrials = 6000;

struct Values {
  std::uint16_t tcp;
  alg::FletcherPair f255, f256;
  std::uint32_t crc;
  alg::KoopmanDualPair kd;
  std::uint64_t ks;
};

Values measure(util::ByteView msg) {
  return {alg::ones_canonical(alg::internet_sum(msg)),
          alg::fletcher_block(msg, alg::FletcherMod::kOnes255),
          alg::fletcher_block(msg, alg::FletcherMod::kTwos256),
          alg::crc32(msg),
          alg::koopman_dual_naive(msg),
          alg::koopman_single_naive(msg)};
}

struct MissCounts {
  std::uint64_t tcp = 0, f255 = 0, f256 = 0, crc = 0, kd = 0, ks = 0;
  std::uint64_t trials = 0;
};

void score(const Values& good, util::ByteView corrupted, MissCounts& mc) {
  const Values v = measure(corrupted);
  if (v.tcp == good.tcp) ++mc.tcp;
  if (v.f255 == good.f255) ++mc.f255;
  if (v.f256 == good.f256) ++mc.f256;
  if (v.crc == good.crc) ++mc.crc;
  if (v.kd == good.kd) ++mc.kd;
  if (v.ks == good.ks) ++mc.ks;
  ++mc.trials;
}

std::string det(std::uint64_t miss, std::uint64_t trials) {
  return core::fmt_pct(trials - miss, trials);
}

}  // namespace

int main() {
  util::Rng rng(0xFA017);

  std::printf(
      "== Detection rate per fault class (%% of %d corrupted messages "
      "caught, %zu-byte message) ==\n\n",
      kTrials, kMsgBytes);
  core::TextTable t({"fault class", "TCP det%", "F-255 det%", "F-256 det%",
                     "CRC-32 det%", "K-Dual det%", "K-Single det%"});

  MissCounts guard_tcp;  // bursts <= 15 bits, for the §2 assertion
  MissCounts guard_crc;  // bursts <= 31 bits

  // --- Bit-burst rows (core::apply_burst inside the message). ---
  for (const unsigned len : {1u, 8u, 15u, 16u, 17u, 31u, 32u, 33u, 48u}) {
    MissCounts mc;
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Bytes msg(kMsgBytes);
      rng.fill(msg);
      const Values good = measure(util::ByteView(msg));
      core::apply_burst(msg, core::random_burst(rng, 8 * kMsgBytes, len));
      score(good, util::ByteView(msg), mc);
    }
    t.add_row({"burst-" + std::to_string(len), det(mc.tcp, mc.trials),
               det(mc.f255, mc.trials), det(mc.f256, mc.trials),
               det(mc.crc, mc.trials), det(mc.kd, mc.trials),
               det(mc.ks, mc.trials)});
    if (len <= 15) guard_tcp.tcp += mc.tcp, guard_tcp.trials += mc.trials;
    if (len <= 31) guard_crc.crc += mc.crc, guard_crc.trials += mc.trials;
  }
  t.add_separator();

  // --- Cell-level rows. Each fault rearranges whole 48-byte blocks,
  // exactly what the corresponding channel fault does to the
  // reassembled byte stream. A second independent message provides the
  // foreign cells for splice/misdelivery. ---
  enum class CellFault { kDuplicate, kReorder, kDelete, kTruncate,
                         kSplice, kMisdeliver };
  const struct { CellFault fault; const char* label; } kCellRows[] = {
      {CellFault::kDuplicate, "cell-duplicate"},
      {CellFault::kReorder, "cell-reorder"},
      {CellFault::kDelete, "cell-delete"},
      {CellFault::kTruncate, "truncate-tail"},
      {CellFault::kSplice, "splice"},
      {CellFault::kMisdeliver, "misdeliver-cell"},
  };
  for (const auto& row : kCellRows) {
    MissCounts mc;
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Bytes msg(kMsgBytes), other(kMsgBytes);
      rng.fill(msg);
      rng.fill(other);
      const Values good = measure(util::ByteView(msg));
      util::Bytes bad;
      const std::size_t i = rng.below(kCells);
      switch (row.fault) {
        case CellFault::kDuplicate:
          bad = msg;
          bad.insert(bad.begin() + static_cast<std::ptrdiff_t>(i * kCell),
                     msg.begin() + static_cast<std::ptrdiff_t>(i * kCell),
                     msg.begin() + static_cast<std::ptrdiff_t>((i + 1) * kCell));
          break;
        case CellFault::kReorder: {
          bad = msg;
          const std::size_t j = (i + 1 + rng.below(kCells - 1)) % kCells;
          for (std::size_t b = 0; b < kCell; ++b)
            std::swap(bad[i * kCell + b], bad[j * kCell + b]);
          break;
        }
        case CellFault::kDelete:
          bad = msg;
          bad.erase(bad.begin() + static_cast<std::ptrdiff_t>(i * kCell),
                    bad.begin() + static_cast<std::ptrdiff_t>((i + 1) * kCell));
          break;
        case CellFault::kTruncate:
          // Keep at least one cell.
          bad.assign(msg.begin(),
                     msg.begin() + static_cast<std::ptrdiff_t>(
                                       (1 + rng.below(kCells - 1)) * kCell));
          break;
        case CellFault::kSplice: {
          // Head of msg + tail of the other message (the paper's fused
          // PDU, with a cell-count-consistent total length).
          const std::size_t head = 1 + rng.below(kCells - 1);
          bad.assign(msg.begin(),
                     msg.begin() + static_cast<std::ptrdiff_t>(head * kCell));
          bad.insert(bad.end(),
                     other.begin() + static_cast<std::ptrdiff_t>(head * kCell),
                     other.end());
          break;
        }
        case CellFault::kMisdeliver:
          // One cell replaced by a foreign stream's cell.
          bad = msg;
          std::memcpy(bad.data() + i * kCell, other.data() + i * kCell,
                      kCell);
          break;
      }
      score(good, util::ByteView(bad), mc);
    }
    t.add_row({row.label, det(mc.tcp, mc.trials), det(mc.f255, mc.trials),
               det(mc.f256, mc.trials), det(mc.crc, mc.trials),
               det(mc.kd, mc.trials), det(mc.ks, mc.trials)});
  }

  t.print(std::cout);
  std::printf(
      "\nExpected shape: burst rows show the §2 guarantee cliffs (TCP "
      "100%% through 15 bits, CRC-32 100%% through 31); reordering and "
      "equal-length substitutions sit at each code's uniform rate; the "
      "position-independent TCP sum is blind to cell reordering "
      "(~0%% detection) while the Fletcher codes' positional term and "
      "CRC-32 catch it. The Koopman large-block sums (arXiv 2302.13432) "
      "track their prime-modulus uniform rates: K-Dual's positional B "
      "term sees reordering, the position-independent K-Single does "
      "not.\n");

  if (guard_tcp.tcp != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu bursts of <= 15 bits escaped the Internet "
                 "checksum (must be 0 per §2)\n",
                 static_cast<unsigned long long>(guard_tcp.tcp));
    return 1;
  }
  if (guard_crc.crc != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu bursts of < 32 bits escaped CRC-32 "
                 "(must be 0 per §2)\n",
                 static_cast<unsigned long long>(guard_crc.crc));
    return 1;
  }
  return 0;
}
