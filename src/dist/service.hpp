// Multi-tenant distributed splice service (docs/DIST.md).
//
// Where the single-job Coordinator drives exactly one run to
// completion and returns, the JobService is long-lived: one
// epoll-driven thread owns the listening socket and a pool of worker
// connections shared across many concurrent named jobs. Each job keeps
// the Coordinator's guarantees — an epoch-guarded lease table, a
// deterministic bitwise merge, at-most-once accounting across worker
// loss — but jobs are admitted, scheduled round-robin over the pool,
// cancelled, and reported independently.
//
// Admission control bounds the service: at most `max_jobs` concurrent
// jobs and `max_queued_shards` not-yet-done shards across them; a
// submit beyond either is rejected up front (dist.jobs_rejected)
// rather than queued unboundedly. Each connection's outbound frames
// pass through a bounded write queue; a connection whose queue is full
// is skipped by the scheduler until it drains (dist.grants_deferred),
// and the deepest queue ever seen is recorded as the
// dist.write_queue_hwm counter.
//
// Jobs are submitted in-process (submit/cancel/wait/drain below) —
// the TCP side speaks only the worker protocol. Workers stay separate
// processes so each one's deterministic-counter deltas isolate its own
// evaluation work; a worker learns a job's configuration from a
// JobConfig frame before its first lease for that job.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dist/coordinator.hpp"
#include "dist/frame.hpp"
#include "dist/protocol.hpp"

namespace cksum::dist {

/// One job as submitted: a name, the worker-side run configuration,
/// and the shard space.
struct JobSpec {
  std::string name;
  ConfigMsg run;
  std::size_t nfiles = 0;
  std::size_t shard_files = 0;  ///< files per shard; 0 = auto
};

enum class JobState : std::uint8_t {
  kRunning,    ///< admitted, shards outstanding
  kDone,       ///< every shard delivered and merged
  kCancelled,  ///< cancel() before completion; partial merge kept
  kAborted,    ///< fleet died and nobody reconnected
};
std::string_view name(JobState) noexcept;

/// A job's terminal (or in-flight) view: the same per-worker
/// decomposition the single-job Coordinator reports, scoped to one
/// job.
struct JobReport {
  std::uint64_t job = 0;
  std::string name;
  JobState state = JobState::kRunning;
  DistReport report;

  /// One element of the manifest's "dist" array: job id, name, state,
  /// then every DistReport member (docs/DIST.md).
  std::string json() const;
};

struct ServiceLimits {
  std::size_t max_jobs = 4;
  std::size_t max_queued_shards = 4096;  ///< sum of not-yet-done shards
  std::size_t max_write_queue = 64;      ///< frames per connection
};

struct ServiceConfig {
  std::uint16_t port = 0;  ///< listen port; 0 = ephemeral
  /// Hold every grant until this many workers are configured — the
  /// same start barrier the Coordinator uses, which is what lets the
  /// fault drills kill a worker that provably holds a lease. 0 = off.
  unsigned expected_workers = 0;
  std::uint64_t lease_timeout_ms = 15000;
  /// Abort every running job when no worker is connected and none has
  /// arrived for this long.
  std::uint64_t idle_abort_ms = 30000;
  ServiceLimits limits;
};

/// Observer callbacks from inside the service loop.
struct ServiceEvent {
  enum class Kind : std::uint8_t {
    kWorkerConnected,
    kResultAccepted,
    kLeaseReassigned,
    kWorkerLost,
    kJobDone,
    kJobCancelled,
  };
  Kind kind;
  std::uint64_t worker_id = 0;
  std::uint64_t pid = 0;
  std::size_t shard = 0;
  std::uint64_t job = 0;
};

/// Bounded FIFO of outbound frames for one connection — the unit the
/// per-connection backpressure is built from. Not thread-safe; the
/// service loop is its only user (tests drive it directly).
class BoundedWriteQueue {
 public:
  explicit BoundedWriteQueue(std::size_t capacity) : cap_(capacity) {}

  /// False (and nothing queued) when the queue is at capacity.
  bool push(MsgType type, util::Bytes payload) {
    if (q_.size() >= cap_) return false;
    q_.emplace_back(type, std::move(payload));
    if (q_.size() > hwm_) hwm_ = q_.size();
    return true;
  }
  bool pop(MsgType* type, util::Bytes* payload) {
    if (q_.empty()) return false;
    *type = q_.front().first;
    *payload = std::move(q_.front().second);
    q_.pop_front();
    return true;
  }
  bool empty() const noexcept { return q_.empty(); }
  bool full() const noexcept { return q_.size() >= cap_; }
  std::size_t size() const noexcept { return q_.size(); }
  std::size_t capacity() const noexcept { return cap_; }
  /// Deepest the queue has ever been.
  std::size_t hwm() const noexcept { return hwm_; }

 private:
  std::size_t cap_;
  std::size_t hwm_ = 0;
  std::deque<std::pair<MsgType, util::Bytes>> q_;
};

class JobService {
 public:
  /// Binds, listens, and starts the service thread immediately
  /// (throws std::runtime_error on bind failure) so port() is valid
  /// before workers are spawned.
  explicit JobService(ServiceConfig cfg);
  /// Stops the loop and closes every connection. Running jobs are
  /// left as-is (call drain() for a graceful shutdown).
  ~JobService();
  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Must be set before any worker connects (not synchronised with
  /// the loop beyond the submit/cancel mutex).
  void set_event_hook(std::function<void(const ServiceEvent&)> hook);

  /// Admit a job, or reject it (nullopt + dist.jobs_rejected) when the
  /// job or queued-shard limit would be exceeded. Job ids start at 1
  /// (id 0 is the protocol's handshake placeholder).
  std::optional<std::uint64_t> submit(const JobSpec& spec);

  /// Cancel a running job: no further grants, in-flight results are
  /// discarded as stale, the partial merge is kept in its report.
  /// False when the id is unknown or the job already terminal.
  bool cancel(std::uint64_t job);

  /// Block until the job leaves kRunning; returns its report.
  JobReport wait(std::uint64_t job);

  /// Current view of one job (non-blocking; nullopt when unknown).
  std::optional<JobReport> status(std::uint64_t job) const;

  /// Stop admitting, wait for every running job to finish, shut the
  /// worker pool down cleanly, stop the loop. Returns every job ever
  /// admitted, in submission order.
  std::vector<JobReport> drain();

  /// The manifest's "dist" member: a JSON array with one JobReport
  /// element per admitted job, in submission order.
  std::string jobs_json() const;

 private:
  struct Impl;
  void loop();

  ServiceConfig cfg_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
};

}  // namespace cksum::dist
