// The splice simulator — the paper's experimental apparatus (§3.2).
//
// For every pair of adjacent TCP segments of a simulated FTP transfer
// it enumerates every cell-count-consistent AAL5 splice and
// classifies it:
//
//   Total            all splices inspected
//   Caught by Header failed the IP/TCP syntactic checks
//   Identical data   passed them but reproduced an original packet
//   Remaining        corrupted packets that only the CRC or the
//                    transport checksum can catch
//   Missed by CRC    remaining splices the AAL5 CRC-32 passes
//   Missed by <sum>  remaining splices the transport checksum passes
//
// plus the header/trailer 2x2 matrix of Table 10 and per-substitution-
// length breakdowns for Tables 4-6.
#pragma once

#include <array>
#include <cstdint>

#include "atm/splice.hpp"
#include "core/pdu_model.hpp"
#include "fsgen/profile.hpp"

namespace cksum::fsgen {
class CorpusReader;
}

namespace cksum::core {

struct SpliceRunConfig {
  net::FlowConfig flow;
  /// LZW-compress each file before transfer (Table 7).
  bool compress_files = false;
  /// Worker threads for filesystem-level runs. Work is claimed at
  /// (file, pair-chunk) granularity, so a single large file spreads
  /// over all workers too; every counter is additive, so the merged
  /// statistics are bitwise identical for any thread count. 0 = use
  /// all hardware threads; 1 = sequential.
  unsigned threads = 1;
};

inline constexpr std::size_t kMaxTrackedK = 24;

struct SpliceStats {
  std::uint64_t files = 0;
  std::uint64_t packets = 0;
  std::uint64_t pairs = 0;

  std::uint64_t total = 0;
  std::uint64_t caught_by_header = 0;
  std::uint64_t identical = 0;
  std::uint64_t remaining = 0;

  std::uint64_t missed_crc = 0;        ///< remaining, CRC-32 passed
  std::uint64_t missed_transport = 0;  ///< remaining, transport passed
  std::uint64_t missed_both = 0;

  /// Remaining splices the Koopman large-block sums pass (evaluated
  /// over the AAL5 CRC's coverage, so the columns are directly
  /// comparable with missed_crc).
  std::uint64_t missed_koopman_dual = 0;
  std::uint64_t missed_koopman_single = 0;

  /// Table 10 matrix (checksum result x data-identical result).
  std::uint64_t fail_identical = 0;  ///< checksum rejects an identical splice
  std::uint64_t pass_identical = 0;
  std::uint64_t fail_changed = 0;
  std::uint64_t pass_changed = 0;  ///< == missed_transport

  /// Splices including packet 2's header cell, and how many of those
  /// the transport missed (§5.3's "coloured" population).
  std::uint64_t remaining_with_hdr2 = 0;
  std::uint64_t missed_with_hdr2 = 0;

  /// By substitution length k = cells sourced from packet 2 (EOM
  /// included), clamped to kMaxTrackedK-1.
  std::array<std::uint64_t, kMaxTrackedK> remaining_by_k{};
  std::array<std::uint64_t, kMaxTrackedK> missed_by_k{};

  std::uint64_t slow_path = 0;  ///< splices evaluated by materialisation
  /// Splices evaluated (or bulk-accounted) from partial sums alone.
  /// fast_path + slow_path == total; the reference corpus stays >99%
  /// fast (asserted in tests).
  std::uint64_t fast_path = 0;

  void merge(const SpliceStats& other);

  /// Bitwise equality across every counter — lets tests assert that a
  /// run is deterministic regardless of thread count.
  friend bool operator==(const SpliceStats&, const SpliceStats&) = default;

  double pct_of_remaining(std::uint64_t n) const {
    return remaining == 0
               ? 0.0
               : 100.0 * static_cast<double>(n) / static_cast<double>(remaining);
  }
};

/// Evaluate every splice of the adjacent pair (p1, p2).
///
/// Splices are walked as a prefix-sharing DFS over cell positions:
/// each DFS edge folds one cell's partial sums into an accumulator
/// (combined CRC, unreduced Internet/Fletcher sums, identical-to-p1/p2
/// hash state) shared by every splice extending that prefix, so the
/// amortised cost per splice is O(1) instead of O(cells). Subtrees
/// whose first cell fails the header checks are bulk-accounted
/// combinatorially without being enumerated.
void evaluate_pair(const net::PacketConfig& cfg, const SimPacket& p1,
                   const SimPacket& p2, SpliceStats& stats);

/// The pre-DFS evaluator: flat enumeration with a per-splice O(cells)
/// refold. Kept as the benchmark baseline and as a differential-test
/// oracle — it must produce bitwise-identical SpliceStats.
void evaluate_pair_flat(const net::PacketConfig& cfg, const SimPacket& p1,
                        const SimPacket& p2, SpliceStats& stats);

/// Outcome of one splice under the receiver's checks.
struct SpliceOutcome {
  bool caught_by_header = false;
  bool identical = false;       ///< meaningful only when headers passed
  bool transport_pass = false;  ///< computed even for identical splices
  bool crc_pass = false;
  bool koopman_dual_pass = false;    ///< over the AAL5 CRC coverage
  bool koopman_single_pass = false;  ///< over the AAL5 CRC coverage
};

/// Reference evaluation of a single splice by materialising its bytes
/// and running the full receiver checks — the oracle the partial-sums
/// fast path is tested against, and the slow path it falls back to.
SpliceOutcome evaluate_splice_reference(const net::PacketConfig& cfg,
                                        const SimPacket& p1,
                                        const SimPacket& p2,
                                        const atm::SpliceSpec& splice);

/// Idempotently register the splice/scheduler metric families with
/// obs::Registry::global(). The evaluator registers lazily on first
/// use; drivers call this up front so exported manifests carry the
/// full family (zero-valued where nothing ran). Names and tags are
/// documented in docs/OBSERVABILITY.md.
void register_splice_metrics();

/// Simulate the transfer of one file and evaluate all adjacent pairs.
SpliceStats run_file(const SpliceRunConfig& cfg, util::ByteView file);

/// Simulate a whole filesystem transfer (optionally compressing each
/// file first, per Table 7).
SpliceStats run_filesystem(const SpliceRunConfig& cfg,
                           const fsgen::Filesystem& fs);

/// Evaluate only files [begin, end) of the filesystem — the lease unit
/// of the distributed service (src/dist/). `end` is clamped to the
/// file count. Every counter is additive, so summing the results of a
/// disjoint cover of [0, file_count) over any shard boundaries, in any
/// order, is bitwise identical to one run_filesystem call.
SpliceStats run_filesystem_range(const SpliceRunConfig& cfg,
                                 const fsgen::Filesystem& fs,
                                 std::size_t begin, std::size_t end);

/// Evaluate a precomputed corpus store (src/fsgen/corpus_store.hpp)
/// instead of re-packetising. cfg.flow MUST be the corpus's recorded
/// flow (take it from CorpusReader::info().params — the transport
/// checksum is baked into the stored packet bytes); cfg.threads and
/// cfg.compress_files behave as for run_filesystem (compression
/// already happened at build time, so compress_files is ignored).
/// Bitwise identical to run_filesystem over the source filesystem —
/// the corpus-format conformance contract (tests/test_corpus_store).
SpliceStats run_corpus(const SpliceRunConfig& cfg,
                       const fsgen::CorpusReader& corpus);

/// Corpus-store analogue of run_filesystem_range — the lease unit of
/// the distributed service's corpus-file jobs.
SpliceStats run_corpus_range(const SpliceRunConfig& cfg,
                             const fsgen::CorpusReader& corpus,
                             std::size_t begin, std::size_t end);

}  // namespace cksum::core
