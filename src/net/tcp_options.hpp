// TCP options, including the RFC 1146 "TCP Alternate Checksum"
// negotiation the paper cites as [13] (Zweig & Partridge): the
// mechanism by which a TCP connection would actually switch from the
// standard Internet checksum to a Fletcher sum.
//
//   kind 2  — MSS (for realism in option lists)
//   kind 14 — Alternate Checksum Request: {kind, len=3, number}
//   kind 15 — Alternate Checksum Data (carries wider check values)
//
// Checksum numbers (RFC 1146): 0 = TCP checksum, 1 = 8-bit Fletcher,
// 2 = 16-bit Fletcher, 3 = redundant checksum avoidance. Numbers 1/2
// correspond to alg::fletcher_block and alg::fletcher32_block.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace cksum::net {

enum class AltChecksum : std::uint8_t {
  kTcp = 0,
  kFletcher8 = 1,
  kFletcher16 = 2,
  kAvoidance = 3,
};

struct TcpOption {
  std::uint8_t kind = 0;
  util::Bytes data;  ///< option payload (excludes kind/length bytes)
};

class TcpOptionList {
 public:
  /// Append a Maximum Segment Size option.
  void add_mss(std::uint16_t mss);

  /// Append an Alternate Checksum Request (RFC 1146).
  void add_alt_checksum_request(AltChecksum number);

  /// Append Alternate Checksum Data carrying `value` bytes.
  void add_alt_checksum_data(util::ByteView value);

  /// Append a NOP (used for alignment).
  void add_nop();

  const std::vector<TcpOption>& options() const noexcept { return opts_; }

  /// Serialise: options back-to-back, NUL(EOL)-padded to a 4-byte
  /// boundary as the TCP data-offset field requires. Size ≤ 40 bytes
  /// (throws std::length_error beyond).
  util::Bytes serialize() const;

  /// Parse a TCP options area. Returns nullopt on malformed lengths.
  /// EOL terminates; NOPs are preserved.
  static std::optional<TcpOptionList> parse(util::ByteView area);

  /// Convenience: the alternate checksum requested, if any.
  std::optional<AltChecksum> requested_alt_checksum() const;

 private:
  std::vector<TcpOption> opts_;
};

}  // namespace cksum::net
