#include "net/udp.hpp"

#include <algorithm>
#include <stdexcept>

#include "checksum/internet.hpp"
#include "net/tcp.hpp"  // PseudoHeader

namespace cksum::net {

void UdpHeader::write(std::uint8_t* out) const noexcept {
  util::store_be16(out, src_port);
  util::store_be16(out + 2, dst_port);
  util::store_be16(out + 4, length);
  util::store_be16(out + 6, checksum);
}

std::optional<UdpHeader> UdpHeader::parse(util::ByteView data) noexcept {
  if (data.size() < kUdpHeaderLen) return std::nullopt;
  UdpHeader h;
  h.src_port = util::load_be16(data.data());
  h.dst_port = util::load_be16(data.data() + 2);
  h.length = util::load_be16(data.data() + 4);
  h.checksum = util::load_be16(data.data() + 6);
  return h;
}

namespace {

std::uint16_t udp_sum(const Ipv4Header& ip, util::ByteView udp_segment) {
  PseudoHeader ph;
  ph.src = ip.src;
  ph.dst = ip.dst;
  ph.protocol = 17;
  ph.tcp_length = static_cast<std::uint16_t>(udp_segment.size());
  std::uint8_t raw[PseudoHeader::kLen];
  ph.write(raw);
  alg::InternetSum sum;
  sum.update(util::ByteView(raw, sizeof raw));
  sum.update(udp_segment);
  return sum.fold();
}

}  // namespace

util::Bytes build_udp_datagram(std::uint32_t src_addr, std::uint32_t dst_addr,
                               std::uint16_t src_port, std::uint16_t dst_port,
                               util::ByteView payload, bool with_checksum,
                               std::uint16_t ip_id) {
  const std::size_t total =
      kIpv4HeaderLen + kUdpHeaderLen + payload.size();
  if (total > 0xffff)
    throw std::invalid_argument("build_udp_datagram: payload too large");

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.protocol = 17;
  ip.id = ip_id;
  ip.frag_off = 0;
  ip.src = src_addr;
  ip.dst = dst_addr;
  ip.header_checksum = ip.compute_checksum();

  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(kUdpHeaderLen + payload.size());
  udp.checksum = 0;

  util::Bytes out(total);
  ip.write(out.data());
  udp.write(out.data() + kIpv4HeaderLen);
  std::copy(payload.begin(), payload.end(),
            out.begin() + kIpv4HeaderLen + kUdpHeaderLen);

  if (with_checksum) {
    const std::uint16_t sum = udp_sum(
        ip, util::ByteView(out).subspan(kIpv4HeaderLen));
    std::uint16_t field = alg::ones_neg(sum);
    // RFC 768: a computed zero is transmitted as all ones (zero means
    // "no checksum") — the protocol-level face of the "two zeros".
    if (field == 0x0000) field = 0xffff;
    util::store_be16(out.data() + kIpv4HeaderLen + 6, field);
  }
  return out;
}

UdpCheckResult verify_udp_datagram(util::ByteView ip_datagram) {
  const auto ip = Ipv4Header::parse(ip_datagram);
  if (!ip || ip->protocol != 17 ||
      ip_datagram.size() < kIpv4HeaderLen + kUdpHeaderLen)
    return UdpCheckResult::kInvalid;
  const util::ByteView segment = ip_datagram.subspan(
      kIpv4HeaderLen, ip->total_length - kIpv4HeaderLen);
  const auto udp = UdpHeader::parse(segment);
  if (!udp || udp->length != segment.size()) return UdpCheckResult::kInvalid;
  if (udp->checksum == 0) return UdpCheckResult::kDisabled;
  // Sum over pseudo-header + segment (stored checksum included) must
  // be the ones-complement zero.
  return alg::ones_canonical(udp_sum(*ip, segment)) ==
                 alg::ones_canonical(0xffff)
             ? UdpCheckResult::kValid
             : UdpCheckResult::kInvalid;
}

}  // namespace cksum::net
