// RAII latency span: measures the enclosing scope with the steady
// clock and feeds the elapsed nanoseconds into a Histogram. Timing
// metrics should be registered with Tag::kTiming so determinism
// tooling skips them. Under OBS_DISABLE the timer is an empty object —
// not even the clock is read.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/registry.hpp"

namespace cksum::obs {

#ifndef OBS_DISABLE

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram h)
      : h_(h), t0_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_.observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }

 private:
  Histogram h_;
  std::chrono::steady_clock::time_point t0_;
};

#else

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

#endif

}  // namespace cksum::obs
