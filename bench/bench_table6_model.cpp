// Table 6: Checksum failures on real data — predicted (iid
// convolution), measured global/local congruence (with identical
// exclusion), and the ACTUAL splice-simulation failure rate, per
// substitution length k, for four filesystems. Includes the §5.4
// cell-colouring correction: only substitutions that do not pull in
// packet 2's header cell can fail, scaling the sample prediction by
// C(c-2, k-1)/C(c-1, k-1).
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "stats/distribution.hpp"
#include "util/math.hpp"

using namespace cksum;

namespace {

void one_filesystem(const fsgen::FsProfile& prof, double scale) {
  core::CellStatsConfig cfg;
  cfg.ks = {1, 2, 3, 4, 5};
  const auto stats = core::collect_cell_stats(prof, scale, cfg);
  const auto d1 = stats::Distribution::from_histogram(stats.tcp_cells());

  const net::PacketConfig pkt_cfg;
  const core::SpliceStats sim = core::run_profile(prof, pkt_cfg, scale);

  std::printf("%s\n", prof.full_name().c_str());
  core::TextTable t({"k", "Predicted", "Global", "Local", "Excl. identical",
                     "Coloured model", "Actual"});
  for (std::size_t k = 1; k <= 5; ++k) {
    const double predicted = d1.self_convolve(k).match_probability();
    const double global = stats.tcp_blocks(k).match_probability();
    const auto& lc = stats.local(k);
    const double excl = lc.p_congruent_excluding_identical();
    // §5.4: a k-cell substitution inserts the EOM plus k-1 of packet
    // 2's 6 non-EOM cells (1 header + 5 data); only header-free
    // choices can produce a congruent data-for-data swap.
    const double colour_factor =
        static_cast<double>(util::binomial(5, k - 1)) /
        static_cast<double>(util::binomial(6, k - 1));
    const double coloured = excl * colour_factor;
    const double actual =
        sim.remaining_by_k[k] == 0
            ? 0.0
            : static_cast<double>(sim.missed_by_k[k]) /
                  static_cast<double>(sim.remaining_by_k[k]);
    t.add_row({std::to_string(k), core::fmt_pct(predicted),
               core::fmt_pct(global), core::fmt_pct(lc.p_congruent()),
               core::fmt_pct(excl), core::fmt_pct(coloured),
               core::fmt_pct(actual)});
  }
  t.print(std::cout);

  // §5.3 cross-check: splices containing packet 2's header cell are
  // far less likely to pass the checksum.
  const double with_hdr2 =
      sim.remaining_with_hdr2 == 0
          ? 0.0
          : static_cast<double>(sim.missed_with_hdr2) /
                static_cast<double>(sim.remaining_with_hdr2);
  const std::uint64_t rem_wo = sim.remaining - sim.remaining_with_hdr2;
  const std::uint64_t miss_wo = sim.missed_transport - sim.missed_with_hdr2;
  const double without_hdr2 =
      rem_wo == 0 ? 0.0
                  : static_cast<double>(miss_wo) / static_cast<double>(rem_wo);
  std::printf(
      "  splices with pkt2's header cell: miss %s%%; without: %s%% "
      "(paper: header-bearing splices are ~100x harder to miss)\n\n",
      core::fmt_pct(with_hdr2).c_str(), core::fmt_pct(without_hdr2).c_str());
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== Table 6: checksum-failure model vs actual (probability %% of "
      "congruence, blocks of k cells) ==\n\n");
  for (const char* name :
       {"smeg.stanford.edu:/u1", "sics.se:/opt", "sics.se:/src1",
        "sics.se:/src2"}) {
    one_filesystem(fsgen::profile(name), scale);
  }
  std::printf(
      "Expected shape (paper): Predicted < Global < Local; excluding "
      "identical shrinks Local but stays >> uniform; the coloured model "
      "tracks Actual.\n");
  return 0;
}
