// Frequency histograms over checksum value spaces.
//
// Figure 2 / Figure 3 of the paper plot the PDF and CDF of checksum
// values over every 48-byte cell (or k-cell block) of a filesystem,
// with the x-axis sorted by decreasing frequency. This class holds the
// raw counts and produces exactly those sorted views, plus the summary
// statistics quoted in the text ("the top 0.1% of the checksum values
// occurred 2.5% of the time").
#pragma once

#include <cstdint>
#include <vector>

namespace cksum::stats {

class Histogram {
 public:
  explicit Histogram(std::size_t bins) : counts_(bins, 0) {}

  void add(std::uint32_t value, std::uint64_t count = 1) {
    counts_.at(value) += count;
    total_ += count;
  }

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count(std::uint32_t value) const { return counts_.at(value); }
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

  /// Probability mass function indexed by value.
  std::vector<double> pdf() const;

  /// PMF sorted by decreasing probability (Figure 2/3 x-axis order).
  std::vector<double> sorted_pdf() const;

  /// Running sum of sorted_pdf() (Figure 2c's CDF).
  std::vector<double> sorted_cdf() const;

  /// Probability of the single most common value.
  double pmax() const;

  /// Probability of the least common value (zero bins count).
  double pmin() const;

  /// Total mass of the most frequent `ceil(fraction * bins)` values —
  /// e.g. top_fraction_mass(0.001) reproduces the "top 0.1% of values"
  /// statistic.
  double top_fraction_mass(double fraction) const;

  /// Probability two independent draws match: Σ pᵢ² — the paper's
  /// checksum-congruence probability for one block.
  double match_probability() const;

  /// Value with the highest count (ties: lowest value).
  std::uint32_t mode() const;

  /// Number of values that occurred at least once.
  std::size_t support_size() const;

  /// Shannon entropy in bits.
  double entropy_bits() const;

  /// Chi-square statistic against the uniform distribution.
  double chi_square_uniform() const;

  /// Merge another histogram over the same value space.
  void merge(const Histogram& other);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace cksum::stats
