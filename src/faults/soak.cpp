#include "faults/soak.hpp"

#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "atm/aal5.hpp"
#include "atm/cell.hpp"
#include "fsgen/generator.hpp"
#include "obs/registry.hpp"

namespace cksum::faults {

namespace {

struct SoakMetrics {
  obs::Counter scenarios, payloads_sent, pdus_delivered, pdus_ok, violations;
};

const SoakMetrics& kmx() {
  static const SoakMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    SoakMetrics v;
    v.scenarios = r.counter("soak.scenarios");
    v.payloads_sent = r.counter("soak.payloads_sent");
    v.pdus_delivered = r.counter("soak.pdus_delivered");
    v.pdus_ok = r.counter("soak.pdus_ok");
    v.violations = r.counter("soak.violations");
    return v;
  }();
  return m;
}

}  // namespace

void ScenarioResult::merge(const ScenarioResult& o) {
  faults.merge(o.faults);
  loss.cells_in += o.loss.cells_in;
  loss.cells_lost += o.loss.cells_lost;
  loss.cells_policy_drop += o.loss.cells_policy_drop;
  demux.deliveries += o.demux.deliveries;
  demux.budget_drops += o.demux.budget_drops;
  demux.evictions += o.demux.evictions;
  cells_to_demux += o.cells_to_demux;
  pdus_delivered += o.pdus_delivered;
  pdus_ok += o.pdus_ok;
  oversize_discards += o.oversize_discards;
  payloads_sent += o.payloads_sent;
  violations += o.violations;
  if (violation_detail.empty()) violation_detail = o.violation_detail;
}

std::string reproducer_line(const SoakConfig& cfg, std::uint64_t index) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "faultlab replay --seed 0x%llx --scenario %llu",
                static_cast<unsigned long long>(cfg.seed),
                static_cast<unsigned long long>(index));
  std::string line(buf);
  if (cfg.max_channels)
    line += " --channels " + std::to_string(cfg.max_channels);
  if (cfg.max_pending_cells)
    line += " --budget " + std::to_string(cfg.max_pending_cells);
  return line;
}

namespace {

using atm::Cell;
using util::Bytes;
using util::ByteView;

/// Scenario-local randomized fault plan: each class is enabled
/// independently so single-class and composed regimes both occur.
FaultPlan random_plan(util::Rng& rng) {
  FaultPlan p;
  if (rng.chance(0.75)) p.payload_burst_rate = rng.uniform01() * 0.10;
  p.burst_bits_min = 1;
  p.burst_bits_max = 1 + static_cast<unsigned>(rng.below(64));
  if (rng.chance(0.6)) {
    p.hec_corrupt_rate = rng.uniform01() * 0.06;
    p.hec_flip_bits = 1 + static_cast<unsigned>(rng.below(3));
  }
  if (rng.chance(0.6)) p.duplicate_rate = rng.uniform01() * 0.05;
  if (rng.chance(0.6)) {
    p.reorder_rate = rng.uniform01() * 0.08;
    p.reorder_window = 1 + rng.below(6);
  }
  if (rng.chance(0.6)) p.eom_flip_rate = rng.uniform01() * 0.04;
  if (rng.chance(0.6)) p.misdeliver_rate = rng.uniform01() * 0.05;
  if (rng.chance(0.3)) p.truncate_rate = 0.5;
  return p;
}

atm::LossConfig random_loss(util::Rng& rng) {
  atm::LossConfig cfg;
  cfg.cell_loss_rate = rng.chance(0.7) ? rng.uniform01() * 0.03 : 0.0;
  cfg.burst_continue = rng.uniform01() * 0.5;
  switch (rng.below(3)) {
    case 0: cfg.policy = atm::DiscardPolicy::kNone; break;
    case 1: cfg.policy = atm::DiscardPolicy::kPartialPacketDiscard; break;
    default: cfg.policy = atm::DiscardPolicy::kEarlyPacketDiscard; break;
  }
  return cfg;
}

}  // namespace

ScenarioResult run_scenario(const SoakConfig& cfg, std::uint64_t index) {
  util::Rng rng = util::Rng(cfg.seed).child(index);
  ScenarioResult res;

  // Demux limits: small enough to engage unless pinned by the caller.
  atm::DemuxLimits limits;
  limits.max_channels =
      cfg.max_channels ? cfg.max_channels : 2 + rng.below(12);
  limits.max_pending_cells =
      cfg.max_pending_cells ? cfg.max_pending_cells : 24 + rng.below(512);

  // Virtual channels the scenario transmits on.
  const std::size_t nvc = 1 + rng.below(8);
  std::vector<std::pair<std::uint8_t, std::uint16_t>> vcs;
  for (std::size_t v = 0; v < nvc; ++v)
    vcs.emplace_back(static_cast<std::uint8_t>(rng.below(4)),
                     static_cast<std::uint16_t>(32 + v));

  // Corpus: a few generated files, chopped into CPCS payloads spread
  // round-robin across the VCs. Every sent payload is remembered for
  // the undetected-corruption check (I3).
  std::set<Bytes> sent;
  std::vector<std::vector<Cell>> queues(nvc);
  const std::size_t nfiles = 3 + rng.below(5);
  for (std::size_t f = 0; f < nfiles; ++f) {
    const fsgen::FileKind kind =
        fsgen::kAllKinds[rng.below(std::size(fsgen::kAllKinds))];
    const std::size_t size = (std::size_t{1} << (10 + rng.below(4))) +
                             rng.below(777);
    const Bytes file = fsgen::generate_file(kind, rng.next(), size);
    std::size_t off = 0;
    while (off < file.size()) {
      const std::size_t len =
          std::min<std::size_t>(64 + rng.below(1400), file.size() - off);
      const ByteView payload(file.data() + off, len);
      off += len;
      sent.emplace(payload.begin(), payload.end());
      ++res.payloads_sent;
      const std::size_t vc = rng.below(nvc);
      const auto cells = atm::segment_pdu(atm::CpcsPdu::frame(payload),
                                          vcs[vc].first, vcs[vc].second);
      auto& q = queues[vc];
      q.insert(q.end(), cells.begin(), cells.end());
    }
  }

  // Interleave the per-VC queues into one link stream (intra-VC order
  // preserved, as a real link does).
  std::vector<Cell> stream;
  std::vector<std::size_t> heads(nvc, 0);
  std::size_t remaining = 0;
  for (const auto& q : queues) remaining += q.size();
  stream.reserve(remaining);
  while (remaining > 0) {
    const std::size_t vc = rng.below(nvc);
    auto& q = queues[vc];
    if (heads[vc] >= q.size()) continue;
    const std::size_t run =
        std::min<std::size_t>(1 + rng.below(4), q.size() - heads[vc]);
    for (std::size_t k = 0; k < run; ++k)
      stream.push_back(q[heads[vc] + k]);
    heads[vc] += run;
    remaining -= run;
  }

  // Wire faults, then the switch's loss/discard behaviour.
  FaultyChannel channel(random_plan(rng), rng.next());
  const std::vector<Cell> faulted = channel.apply(stream);
  atm::LossStats loss_stats;
  const std::vector<Cell> delivered =
      atm::transmit(faulted, random_loss(rng), rng, &loss_stats);

  // The hardened receiver, with the invariants checked per cell.
  atm::VcDemux demux(limits);
  auto violate = [&](const char* what) {
    ++res.violations;
    if (res.violation_detail.empty()) res.violation_detail = what;
  };
  for (const Cell& cell : delivered) {
    ++res.cells_to_demux;
    const auto out = demux.push(cell);
    if (demux.pending_cells() > limits.max_pending_cells)
      violate("pending-cell budget exceeded");
    if (demux.channel_count() > limits.max_channels)
      violate("channel cap exceeded");
    if (!out) continue;
    ++res.pdus_delivered;
    // payload() must be safe on every candidate, hostile or not.
    const ByteView payload = out->pdu.payload();
    if (payload.size() > out->pdu.bytes.size())
      violate("payload() sliced beyond the PDU buffer");
    if (out->pdu.length_ok && out->pdu.crc_ok) {
      ++res.pdus_ok;
      if (sent.find(Bytes(payload.begin(), payload.end())) == sent.end())
        violate("undetected corruption: accepted PDU matches no sent payload");
    }
    // Occasionally tear a VC down mid-stream (API coverage; must not
    // disturb the budget accounting).
    if (rng.chance(0.001)) demux.reset_channel(out->vpi, out->vci);
  }

  res.faults = channel.stats();
  res.loss = loss_stats;
  res.demux = demux.stats();
  res.oversize_discards = demux.oversize_discards();

  const SoakMetrics& m = kmx();
  m.scenarios.add(1);
  m.payloads_sent.add(res.payloads_sent);
  m.pdus_delivered.add(res.pdus_delivered);
  m.pdus_ok.add(res.pdus_ok);
  m.violations.add(res.violations);
  return res;
}

SoakResult run_soak(const SoakConfig& cfg) {
  SoakResult out;
  for (std::uint64_t i = 0; i < cfg.max_scenarios; ++i) {
    if (out.totals.faults.total_faults() >= cfg.target_faults) break;
    const ScenarioResult r = run_scenario(cfg, i);
    out.totals.merge(r);
    ++out.scenarios;
    if (r.violations > 0) {
      out.reproducer = reproducer_line(cfg, i);
      if (cfg.stop_on_violation) break;
    }
  }
  return out;
}

}  // namespace cksum::faults
