#include "stats/fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cksum::stats {

std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0) return;
  if ((n & (n - 1)) != 0)
    throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv;
  }
}

std::vector<double> cyclic_convolve(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("cyclic_convolve: size mismatch");
  const std::size_t m = a.size();
  if (m == 0) return {};
  const std::size_t n = next_pow2(2 * m);

  std::vector<std::complex<double>> fa(n), fb(n);
  for (std::size_t i = 0; i < m; ++i) {
    fa[i] = a[i];
    fb[i] = b[i];
  }
  fft(fa, false);
  fft(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, true);

  // Linear result has length 2m-1; fold indices >= m back mod m.
  std::vector<double> out(m, 0.0);
  for (std::size_t i = 0; i < 2 * m - 1; ++i) {
    const double v = fa[i].real();
    out[i % m] += v;
  }
  for (double& v : out)
    if (v < 0.0) v = 0.0;  // FFT rounding noise on zero-probability bins
  return out;
}

std::vector<double> cyclic_convolve_direct(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("cyclic_convolve_direct: size mismatch");
  const std::size_t m = a.size();
  std::vector<double> out(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < m; ++j) {
      out[(i + j) % m] += a[i] * b[j];
    }
  }
  return out;
}

}  // namespace cksum::stats
