// Figure 2: Distribution of the TCP checksum over blocks of k cells
// in smeg.stanford.edu:/u1.
//
// Prints the three panels as data series:
//   (a) full sorted PDF (log-sampled x),
//   (b) PDF of the 65 most common values,
//   (c) CDF of the 65 most common values,
// for measured k = 1, 2, 4, 8 along with the iid convolution
// prediction for k = 2 ("Predict", Equation 1) and the uniform line.
#include <cstdio>
#include <string_view>

#include "core/experiments.hpp"
#include "stats/distribution.hpp"

using namespace cksum;

int main(int argc, char** argv) {
  // --csv: dump the full sorted PDFs as CSV (rank,k1,k2,k4,k8,predict2)
  // for external plotting.
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  const double scale = core::scale_from_env();
  core::CellStatsConfig cfg;
  cfg.ks = {1, 2, 4, 8};
  const auto stats = core::collect_cell_stats(
      fsgen::profile("smeg.stanford.edu:/u1"), scale, cfg);

  const auto d1 = stats::Distribution::from_histogram(stats.tcp_cells());
  const auto predict2 = d1.self_convolve(2);
  const std::vector<double> predict_sorted = predict2.sorted();
  const double uniform = 1.0 / 65535.0;

  if (csv) {
    std::printf("rank,k1,k2,k4,k8,predict2,uniform\n");
    const auto c1 = stats.tcp_blocks(1).sorted_pdf();
    const auto c2 = stats.tcp_blocks(2).sorted_pdf();
    const auto c4 = stats.tcp_blocks(4).sorted_pdf();
    const auto c8 = stats.tcp_blocks(8).sorted_pdf();
    for (std::size_t r = 0; r < 65535; ++r) {
      if (c1[r] == 0 && c2[r] == 0 && c4[r] == 0 && c8[r] == 0 &&
          predict_sorted[r] < uniform / 10)
        break;
      std::printf("%zu,%.6e,%.6e,%.6e,%.6e,%.6e,%.6e\n", r + 1, c1[r],
                  c2[r], c4[r], c8[r], predict_sorted[r], uniform);
    }
    return 0;
  }

  std::printf(
      "== Figure 2: TCP checksum distribution over k-cell blocks "
      "(smeg:/u1) ==\n");
  std::printf("cells measured: %llu; k=1 PMax=%.3e (uniform %.3e)\n\n",
              static_cast<unsigned long long>(stats.cells_seen()),
              stats.tcp_cells().pmax(), uniform);

  const auto s1 = stats.tcp_blocks(1).sorted_pdf();
  const auto s2 = stats.tcp_blocks(2).sorted_pdf();
  const auto s4 = stats.tcp_blocks(4).sorted_pdf();
  const auto s8 = stats.tcp_blocks(8).sorted_pdf();

  std::printf("(a) full sorted PDF (rank: probability), log-sampled ranks\n");
  std::printf("%8s  %10s  %10s  %10s  %10s  %10s  %10s\n", "rank", "k=1",
              "k=2", "k=4", "k=8", "predict2", "uniform");
  for (std::size_t rank = 1; rank < 65535; rank *= 4) {
    std::printf("%8zu  %10.3e  %10.3e  %10.3e  %10.3e  %10.3e  %10.3e\n",
                rank, s1[rank - 1], s2[rank - 1], s4[rank - 1], s8[rank - 1],
                predict_sorted[rank - 1], uniform);
  }

  std::printf("\n(b) PDF, 65 most common values\n");
  std::printf("%6s  %10s  %10s  %10s  %10s  %10s\n", "rank", "k=1", "k=2",
              "k=4", "predict2", "uniform");
  for (std::size_t rank = 1; rank <= 65; rank += 4) {
    std::printf("%6zu  %10.3e  %10.3e  %10.3e  %10.3e  %10.3e\n", rank,
                s1[rank - 1], s2[rank - 1], s4[rank - 1],
                predict_sorted[rank - 1], uniform);
  }

  std::printf("\n(c) CDF, 65 most common values\n");
  auto cdf = [](const std::vector<double>& s, std::size_t upto) {
    double total = 0;
    for (std::size_t i = 0; i < upto; ++i) total += s[i];
    return total;
  };
  std::printf("%6s  %10s  %10s  %10s  %10s  %10s\n", "rank", "k=1", "k=2",
              "k=4", "predict2", "uniform");
  for (std::size_t rank = 5; rank <= 65; rank += 10) {
    std::printf("%6zu  %10.3e  %10.3e  %10.3e  %10.3e  %10.3e\n", rank,
                cdf(s1, rank), cdf(s2, rank), cdf(s4, rank),
                cdf(predict_sorted, rank),
                uniform * static_cast<double>(rank));
  }

  std::printf(
      "\nsummary: top 0.1%% of values carries %.2f%% of mass at k=1 "
      "(paper: 1-5%%; uniform would be 0.1%%)\n",
      100.0 * stats.tcp_cells().top_fraction_mass(0.001));
  return 0;
}
