#include "net/tcp_options.hpp"

#include <stdexcept>

namespace cksum::net {

namespace {
constexpr std::uint8_t kEol = 0;
constexpr std::uint8_t kNop = 1;
constexpr std::uint8_t kMss = 2;
constexpr std::uint8_t kAltRequest = 14;
constexpr std::uint8_t kAltData = 15;
constexpr std::size_t kMaxOptionArea = 40;  // data offset caps at 15 words
}  // namespace

void TcpOptionList::add_mss(std::uint16_t mss) {
  TcpOption opt;
  opt.kind = kMss;
  opt.data.resize(2);
  util::store_be16(opt.data.data(), mss);
  opts_.push_back(std::move(opt));
}

void TcpOptionList::add_alt_checksum_request(AltChecksum number) {
  TcpOption opt;
  opt.kind = kAltRequest;
  opt.data.push_back(static_cast<std::uint8_t>(number));
  opts_.push_back(std::move(opt));
}

void TcpOptionList::add_alt_checksum_data(util::ByteView value) {
  TcpOption opt;
  opt.kind = kAltData;
  opt.data.assign(value.begin(), value.end());
  opts_.push_back(std::move(opt));
}

void TcpOptionList::add_nop() {
  TcpOption opt;
  opt.kind = kNop;
  opts_.push_back(std::move(opt));
}

util::Bytes TcpOptionList::serialize() const {
  util::Bytes out;
  for (const TcpOption& opt : opts_) {
    if (opt.kind == kNop) {
      out.push_back(kNop);
      continue;
    }
    out.push_back(opt.kind);
    out.push_back(static_cast<std::uint8_t>(2 + opt.data.size()));
    out.insert(out.end(), opt.data.begin(), opt.data.end());
  }
  while (out.size() % 4 != 0) out.push_back(kEol);
  if (out.size() > kMaxOptionArea)
    throw std::length_error("TcpOptionList: options exceed 40 bytes");
  return out;
}

std::optional<TcpOptionList> TcpOptionList::parse(util::ByteView area) {
  TcpOptionList list;
  std::size_t i = 0;
  while (i < area.size()) {
    const std::uint8_t kind = area[i];
    if (kind == kEol) break;
    if (kind == kNop) {
      list.add_nop();
      ++i;
      continue;
    }
    if (i + 1 >= area.size()) return std::nullopt;
    const std::uint8_t len = area[i + 1];
    if (len < 2 || i + len > area.size()) return std::nullopt;
    TcpOption opt;
    opt.kind = kind;
    opt.data.assign(area.begin() + i + 2, area.begin() + i + len);
    list.opts_.push_back(std::move(opt));
    i += len;
  }
  return list;
}

std::optional<AltChecksum> TcpOptionList::requested_alt_checksum() const {
  for (const TcpOption& opt : opts_) {
    if (opt.kind == kAltRequest && opt.data.size() == 1)
      return static_cast<AltChecksum>(opt.data[0]);
  }
  return std::nullopt;
}

}  // namespace cksum::net
