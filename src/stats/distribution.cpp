#include "stats/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/fft.hpp"

namespace cksum::stats {

Distribution Distribution::uniform(std::size_t m) {
  Distribution d(m);
  const double p = 1.0 / static_cast<double>(m);
  std::fill(d.p_.begin(), d.p_.end(), p);
  return d;
}

Distribution Distribution::point(std::size_t m, std::size_t value) {
  Distribution d(m);
  d.p_.at(value) = 1.0;
  return d;
}

Distribution Distribution::from_histogram(const Histogram& h) {
  return Distribution(h.pdf());
}

Distribution::Distribution(std::vector<double> weights) : p_(std::move(weights)) {
  double total = 0.0;
  for (double w : p_) {
    if (w < 0.0) throw std::invalid_argument("Distribution: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Distribution: zero total mass");
  for (double& w : p_) w /= total;
}

double Distribution::pmax() const {
  return *std::max_element(p_.begin(), p_.end());
}

double Distribution::pmin() const {
  return *std::min_element(p_.begin(), p_.end());
}

double Distribution::match_probability() const {
  double s = 0.0;
  for (double p : p_) s += p * p;
  return s;
}

double Distribution::offset_match_probability(std::size_t delta) const {
  const std::size_t m = p_.size();
  delta %= m;
  double s = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    // P[X = i] * P[Y = i - δ mod m]
    s += p_[i] * p_[(i + m - delta) % m];
  }
  return s;
}

Distribution Distribution::add(const Distribution& other) const {
  if (other.size() != size())
    throw std::invalid_argument("Distribution::add: modulus mismatch");
  Distribution out(size());
  out.p_ = cyclic_convolve(p_, other.p_);
  // Renormalise away FFT rounding drift.
  double total = 0.0;
  for (double p : out.p_) total += p;
  for (double& p : out.p_) p /= total;
  return out;
}

Distribution Distribution::self_convolve(std::size_t k) const {
  if (k == 0)
    throw std::invalid_argument("Distribution::self_convolve: k must be >= 1");
  // Square-and-multiply on the exponent.
  Distribution base = *this;
  Distribution result = *this;
  bool have_result = false;
  while (k != 0) {
    if (k & 1u) {
      result = have_result ? result.add(base) : base;
      have_result = true;
    }
    k >>= 1;
    if (k != 0) base = base.add(base);
  }
  return result;
}

std::vector<double> Distribution::sorted() const {
  std::vector<double> out = p_;
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

double Distribution::tv_distance_from_uniform() const {
  const double u = 1.0 / static_cast<double>(p_.size());
  double s = 0.0;
  for (double p : p_) s += std::abs(p - u);
  return 0.5 * s;
}

}  // namespace cksum::stats
