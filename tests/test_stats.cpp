// Statistics substrate: histograms, FFT convolution, distributions,
// and chi-square machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/distribution.hpp"
#include "stats/fft.hpp"
#include "stats/histogram.hpp"
#include "stats/binomial.hpp"
#include "stats/uniformity.hpp"
#include "util/rng.hpp"

namespace cksum::stats {
namespace {

TEST(Histogram, BasicCounting) {
  Histogram h(10);
  h.add(3);
  h.add(3);
  h.add(7, 5);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.mode(), 7u);
  EXPECT_EQ(h.support_size(), 2u);
}

TEST(Histogram, PdfSumsToOne) {
  Histogram h(100);
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<std::uint32_t>(rng.below(100)));
  double total = 0;
  for (double p : h.pdf()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, SortedPdfDescending) {
  Histogram h(16);
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) h.add(static_cast<std::uint32_t>(rng.below(16)));
  const auto sorted = h.sorted_pdf();
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_GE(sorted[i - 1], sorted[i]);
}

TEST(Histogram, CdfEndsAtOne) {
  Histogram h(16);
  for (int i = 0; i < 64; ++i) h.add(static_cast<std::uint32_t>(i % 16));
  const auto cdf = h.sorted_cdf();
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
}

TEST(Histogram, MatchProbability) {
  // All mass on one value -> match probability 1.
  Histogram h(4);
  h.add(2, 10);
  EXPECT_NEAR(h.match_probability(), 1.0, 1e-12);
  // Uniform over 4 -> 1/4.
  Histogram u(4);
  for (std::uint32_t v = 0; v < 4; ++v) u.add(v, 5);
  EXPECT_NEAR(u.match_probability(), 0.25, 1e-12);
}

TEST(Histogram, TopFractionMass) {
  Histogram h(1000);
  h.add(1, 90);
  for (std::uint32_t v = 2; v < 12; ++v) h.add(v, 1);
  // Top 0.1% of 1000 bins = 1 bin = the hot one.
  EXPECT_NEAR(h.top_fraction_mass(0.001), 0.9, 1e-12);
}

TEST(Histogram, EntropyBounds) {
  Histogram point(256);
  point.add(7, 100);
  EXPECT_NEAR(point.entropy_bits(), 0.0, 1e-12);
  Histogram uniform(256);
  for (std::uint32_t v = 0; v < 256; ++v) uniform.add(v);
  EXPECT_NEAR(uniform.entropy_bits(), 8.0, 1e-12);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(8), b(8);
  a.add(1, 3);
  b.add(1, 4);
  b.add(2, 2);
  a.merge(b);
  EXPECT_EQ(a.count(1), 7u);
  EXPECT_EQ(a.count(2), 2u);
  EXPECT_EQ(a.total(), 9u);
  Histogram c(9);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Fft, RoundTrip) {
  std::vector<std::complex<double>> data(64);
  util::Rng rng(3);
  for (auto& x : data) x = {rng.uniform01(), rng.uniform01()};
  auto copy = data;
  fft(copy, false);
  fft(copy, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-9);
    EXPECT_NEAR(copy[i].imag(), data[i].imag(), 1e-9);
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(63);
  EXPECT_THROW(fft(data, false), std::invalid_argument);
}

class ConvolveSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvolveSizes, FftMatchesDirect) {
  const std::size_t m = GetParam();
  util::Rng rng(4 + m);
  std::vector<double> a(m), b(m);
  for (auto& x : a) x = rng.uniform01();
  for (auto& x : b) x = rng.uniform01();
  const auto fast = cyclic_convolve(a, b);
  const auto slow = cyclic_convolve_direct(a, b);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(fast[i], slow[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvolveSizes,
                         ::testing::Values(1, 2, 3, 16, 17, 255, 256, 1000));

TEST(Distribution, UniformProperties) {
  const auto u = Distribution::uniform(100);
  EXPECT_NEAR(u.pmax(), 0.01, 1e-12);
  EXPECT_NEAR(u.pmin(), 0.01, 1e-12);
  EXPECT_NEAR(u.match_probability(), 0.01, 1e-12);
  EXPECT_NEAR(u.tv_distance_from_uniform(), 0.0, 1e-12);
}

TEST(Distribution, PointMass) {
  const auto p = Distribution::point(10, 4);
  EXPECT_NEAR(p.pmax(), 1.0, 1e-12);
  EXPECT_NEAR(p.match_probability(), 1.0, 1e-12);
}

TEST(Distribution, AddIsCyclicConvolution) {
  // Point masses: point(a) + point(b) = point((a+b) mod m).
  const auto a = Distribution::point(12, 7);
  const auto b = Distribution::point(12, 9);
  const auto sum = a.add(b);
  EXPECT_NEAR(sum[(7 + 9) % 12], 1.0, 1e-9);
}

TEST(Distribution, SelfConvolveMatchesRepeatedAdd) {
  util::Rng rng(5);
  std::vector<double> w(37);
  for (auto& x : w) x = rng.uniform01();
  const Distribution d{w};
  Distribution iter = d;
  for (int k = 2; k <= 6; ++k) {
    iter = iter.add(d);
    const Distribution pow = d.self_convolve(static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < d.size(); ++i)
      EXPECT_NEAR(pow[i], iter[i], 1e-9) << "k=" << k << " i=" << i;
  }
}

TEST(Distribution, OffsetMatchDeltaZeroIsMatch) {
  util::Rng rng(6);
  std::vector<double> w(64);
  for (auto& x : w) x = rng.uniform01();
  const Distribution d{w};
  EXPECT_NEAR(d.offset_match_probability(0), d.match_probability(), 1e-12);
}

TEST(Distribution, Lemma9_ExactMatchDominatesEveryOffset) {
  // Lemma 9 of the paper: P[X == Y] >= P[X - Y == c] for every c —
  // the root cause of the trailer checksum's advantage.
  util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> w(97);
    for (auto& x : w) x = rng.uniform01() * (rng.chance(0.3) ? 10 : 1);
    const Distribution d{w};
    const double match = d.match_probability();
    for (std::size_t delta = 1; delta < d.size(); ++delta)
      EXPECT_GE(match + 1e-15, d.offset_match_probability(delta))
          << "delta=" << delta;
  }
}

TEST(Distribution, Corollary3_PMaxNonIncreasingUnderConvolution) {
  // Corollary 3: summing more independent draws mod M makes the
  // distribution more uniform (PMax falls, PMin rises).
  util::Rng rng(8);
  std::vector<double> w(41);
  for (auto& x : w) x = rng.uniform01() * (rng.chance(0.2) ? 20 : 1);
  Distribution d{w};
  double prev_max = d.pmax();
  double prev_min = d.pmin();
  for (int k = 2; k <= 12; ++k) {
    d = d.add(Distribution{w});
    EXPECT_LE(d.pmax(), prev_max + 1e-12);
    EXPECT_GE(d.pmin(), prev_min - 1e-12);
    prev_max = d.pmax();
    prev_min = d.pmin();
  }
}


TEST(Distribution, Lemma1_PMaxOfSumBoundedByEachFactor) {
  // Lemma 1: PMax(X+Y) <= min(PMax(X), PMax(Y)).
  util::Rng rng(20);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> wx(53), wy(53);
    for (auto& v : wx) v = rng.uniform01() * (rng.chance(0.3) ? 9 : 1);
    for (auto& v : wy) v = rng.uniform01() * (rng.chance(0.3) ? 9 : 1);
    const Distribution x{wx}, y{wy};
    const Distribution sum = x.add(y);
    EXPECT_LE(sum.pmax(), std::min(x.pmax(), y.pmax()) + 1e-12);
  }
}

TEST(Distribution, Lemma2_PMinOfSumBoundedBelow) {
  // Lemma 2: with strictly positive distributions,
  // PMin(X+Y) >= max(PMin(X), PMin(Y)).
  util::Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> wx(53), wy(53);
    for (auto& v : wx) v = 0.05 + rng.uniform01();
    for (auto& v : wy) v = 0.05 + rng.uniform01();
    const Distribution x{wx}, y{wy};
    const Distribution sum = x.add(y);
    EXPECT_GE(sum.pmin(), std::max(x.pmin(), y.pmin()) - 1e-12);
  }
}

TEST(Distribution, Theorem4_ConvergesToUniform) {
  // The paper's "central limit theorem mod M".
  std::vector<double> w(255, 0.0);
  w[0] = 0.5;
  w[1] = 0.3;
  w[7] = 0.2;
  Distribution d{w};
  const Distribution big = d.self_convolve(4096);
  EXPECT_LT(big.tv_distance_from_uniform(), 0.01);
  EXPECT_NEAR(big.pmax(), 1.0 / 255.0, 1e-3);
}

TEST(Distribution, Lemma5_OneUniformTermMakesSumUniform) {
  util::Rng rng(9);
  std::vector<double> w(64);
  for (auto& x : w) x = rng.uniform01() * (rng.chance(0.2) ? 50 : 1);
  const Distribution skewed{w};
  const auto u = Distribution::uniform(64);
  const auto sum = skewed.add(u);
  EXPECT_LT(sum.tv_distance_from_uniform(), 1e-9);
}

TEST(Distribution, RejectsInvalidWeights) {
  EXPECT_THROW(Distribution({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(Distribution({0.0, 0.0}), std::invalid_argument);
}

TEST(Gamma, KnownValues) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0})
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  // P + Q = 1.
  EXPECT_NEAR(gamma_p(3.7, 2.2) + gamma_q(3.7, 2.2), 1.0, 1e-12);
  // Median of chi-square with k dof is roughly k - 2/3.
  EXPECT_NEAR(chi_square_sf(9.33, 10.0), 0.5, 0.02);
}

TEST(ChiSquare, UniformDataGetsHighPValue) {
  Histogram h(64);
  util::Rng rng(10);
  for (int i = 0; i < 64000; ++i)
    h.add(static_cast<std::uint32_t>(rng.below(64)));
  EXPECT_GT(uniformity_p_value(h), 1e-4);
}

TEST(ChiSquare, SkewedDataGetsLowPValue) {
  Histogram h(64);
  util::Rng rng(11);
  for (int i = 0; i < 64000; ++i)
    h.add(static_cast<std::uint32_t>(rng.below(32)));  // half the bins unused
  EXPECT_LT(uniformity_p_value(h), 1e-10);
}

TEST(ChiSquare, SparseBinsArePooled) {
  // 65535 bins, only a few thousand samples: the pooled test should
  // still behave (uniform data -> non-tiny p-value).
  Histogram h(65535);
  util::Rng rng(12);
  for (int i = 0; i < 5000; ++i)
    h.add(static_cast<std::uint32_t>(rng.below(65535)));
  EXPECT_GT(uniformity_p_value(h), 1e-4);
}


TEST(Wilson, BasicProperties) {
  // Contains the point estimate, shrinks with n, clamps to [0,1].
  const auto ci = wilson_interval(50, 100);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  const auto tighter = wilson_interval(5000, 10000);
  EXPECT_GT(tighter.lo, ci.lo);
  EXPECT_LT(tighter.hi, ci.hi);
  const auto zero = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_DOUBLE_EQ(zero.hi, 0.0);
  const auto all = wilson_interval(10, 10);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.6);
}

TEST(Wilson, ZeroSuccessesStillInformative) {
  // The CRC rows: 0 misses in millions of trials still gives a finite
  // upper bound ("rule of three"-ish: ~ z^2 / n).
  const auto ci = wilson_interval(0, 1000000);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 1e-5);
}

TEST(Wilson, KnownValue) {
  // p=0.1, n=100, z=1.96: Wilson interval ~ [0.0552, 0.1744].
  const auto ci = wilson_interval(10, 100);
  EXPECT_NEAR(ci.lo, 0.0552, 0.002);
  EXPECT_NEAR(ci.hi, 0.1744, 0.002);
}

}  // namespace
}  // namespace cksum::stats
