#include "checksum/adler32.hpp"

namespace cksum::alg {

namespace {
// Largest n such that 255*n*(n+1)/2 + (n+1)*(kAdlerMod-1) < 2^32
// (zlib's NMAX): the accumulators can run this long before reduction.
constexpr std::size_t kNMax = 5552;
}  // namespace

std::uint32_t adler32(std::uint32_t adler, util::ByteView data) noexcept {
  std::uint32_t a = adler & 0xffffu;
  std::uint32_t b = (adler >> 16) & 0xffffu;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::size_t end = std::min(data.size(), i + kNMax);
    for (; i < end; ++i) {
      a += data[i];
      b += a;
    }
    a %= kAdlerMod;
    b %= kAdlerMod;
  }
  return (b << 16) | a;
}

std::uint32_t adler32(util::ByteView data) noexcept {
  return adler32(1u, data);
}

std::uint32_t adler32_combine(std::uint32_t adler_a, std::uint32_t adler_b,
                              std::size_t len_b) noexcept {
  // a(AB) = a(A) + a(B) - 1 ; b(AB) = b(A) + len_b*(a(A) - 1) + b(B)
  const std::uint32_t rem = static_cast<std::uint32_t>(len_b % kAdlerMod);
  std::uint32_t a1 = adler_a & 0xffffu;
  std::uint32_t b1 = (adler_a >> 16) & 0xffffu;
  std::uint32_t a2 = adler_b & 0xffffu;
  std::uint32_t b2 = (adler_b >> 16) & 0xffffu;
  std::uint32_t a = (a1 + a2 + kAdlerMod - 1) % kAdlerMod;
  std::uint32_t b = (b1 + b2 + static_cast<std::uint64_t>(rem) * (a1 + kAdlerMod - 1) +
                     kAdlerMod) %
                    kAdlerMod;
  return (b << 16) | a;
}

}  // namespace cksum::alg
