// IPv4/TCP header model, packet builder (all transports, both
// placements, both ablations), validation, and flow segmentation.
#include <gtest/gtest.h>

#include "net/flow.hpp"
#include "net/packet.hpp"
#include "net/validate.hpp"
#include "util/rng.hpp"

namespace cksum::net {
namespace {

using util::ByteView;
using util::Bytes;

Bytes payload_bytes(std::size_t n, std::uint64_t seed = 1) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

TEST(Ipv4Header, WriteParseRoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 296;
  h.id = 0x1234;
  h.frag_off = 0x4000;
  h.ttl = 63;
  h.protocol = 6;
  h.src = 0x0a000001;
  h.dst = 0x0a000002;
  h.header_checksum = h.compute_checksum();
  std::uint8_t raw[kIpv4HeaderLen];
  h.write(raw);
  const auto parsed = Ipv4Header::parse(ByteView(raw, sizeof raw));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, 4);
  EXPECT_EQ(parsed->ihl, 5);
  EXPECT_EQ(parsed->total_length, 296);
  EXPECT_EQ(parsed->id, 0x1234);
  EXPECT_EQ(parsed->src, 0x0a000001u);
  EXPECT_TRUE(ipv4_checksum_ok(ByteView(raw, sizeof raw)));
}

TEST(Ipv4Header, CorruptChecksumDetected) {
  Ipv4Header h;
  h.total_length = 100;
  h.header_checksum = h.compute_checksum();
  std::uint8_t raw[kIpv4HeaderLen];
  h.write(raw);
  raw[4] ^= 0x01;
  EXPECT_FALSE(ipv4_checksum_ok(ByteView(raw, sizeof raw)));
}

TEST(Ipv4Header, ParseTooShort) {
  std::uint8_t raw[10] = {};
  EXPECT_FALSE(Ipv4Header::parse(ByteView(raw, sizeof raw)).has_value());
}

TEST(TcpHeader, WriteParseRoundTrip) {
  TcpHeader t;
  t.src_port = 20;
  t.dst_port = 54321;
  t.seq = 0xdeadbeef;
  t.ack = 42;
  t.flags = tcpflag::kAck | tcpflag::kPsh;
  t.window = 8192;
  t.checksum = 0xabcd;
  std::uint8_t raw[kTcpHeaderLen];
  t.write(raw);
  const auto parsed = TcpHeader::parse(ByteView(raw, sizeof raw));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->data_offset, 5);
  EXPECT_EQ(parsed->reserved, 0);
  EXPECT_EQ(parsed->checksum, 0xabcd);
}

struct BuildCase {
  alg::Algorithm transport;
  ChecksumPlacement placement;
  bool invert;
  const char* label;
};

class PacketBuild : public ::testing::TestWithParam<BuildCase> {};

TEST_P(PacketBuild, BuiltPacketVerifies) {
  const BuildCase c = GetParam();
  PacketConfig cfg;
  cfg.transport = c.transport;
  cfg.placement = c.placement;
  cfg.invert_checksum = c.invert;
  for (std::size_t len : {1u, 8u, 47u, 48u, 255u, 256u}) {
    const Bytes payload = payload_bytes(len, len);
    const Packet pkt = build_packet(cfg, 1000, 7, ByteView(payload));
    EXPECT_TRUE(verify_transport_checksum(cfg, pkt.ip_bytes()))
        << c.label << " len=" << len;
    // Structural sanity.
    const std::size_t expect =
        40 + len +
        (c.placement == ChecksumPlacement::kTrailer ? kTrailerCheckLen : 0);
    EXPECT_EQ(pkt.bytes.size(), expect);
    EXPECT_TRUE(ipv4_checksum_ok(pkt.ip_bytes()));
  }
}

TEST_P(PacketBuild, SingleByteCorruptionDetectedAlmostAlways) {
  const BuildCase c = GetParam();
  PacketConfig cfg;
  cfg.transport = c.transport;
  cfg.placement = c.placement;
  cfg.invert_checksum = c.invert;
  const Bytes payload = payload_bytes(256, 99);
  const Packet pkt = build_packet(cfg, 1, 1, ByteView(payload));
  // Flip one payload byte at a time; every flip must be caught (all
  // the studied checksums catch any single-byte error... except a
  // Fletcher-255 0x00<->0xFF swap, which we skip).
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes corrupted = pkt.bytes;
    const std::size_t at = 60 + rng.below(200);
    std::uint8_t flip = static_cast<std::uint8_t>(1 + rng.below(255));
    if (c.transport == alg::Algorithm::kFletcher255) {
      const std::uint8_t cur = corrupted[at];
      if ((cur ^ flip) == 0xff || ((cur ^ flip) == 0x00)) continue;
      if (cur == 0xff && (cur ^ flip) == 0x00) continue;
    }
    corrupted[at] ^= flip;
    EXPECT_FALSE(verify_transport_checksum(cfg, ByteView(corrupted)))
        << c.label << " at=" << at;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PacketBuild,
    ::testing::Values(
        BuildCase{alg::Algorithm::kInternet, ChecksumPlacement::kHeader, true,
                  "tcp-header"},
        BuildCase{alg::Algorithm::kInternet, ChecksumPlacement::kHeader, false,
                  "tcp-header-noninverted"},
        BuildCase{alg::Algorithm::kInternet, ChecksumPlacement::kTrailer, true,
                  "tcp-trailer"},
        BuildCase{alg::Algorithm::kFletcher255, ChecksumPlacement::kHeader,
                  true, "f255-header"},
        BuildCase{alg::Algorithm::kFletcher256, ChecksumPlacement::kHeader,
                  true, "f256-header"},
        BuildCase{alg::Algorithm::kFletcher255, ChecksumPlacement::kTrailer,
                  true, "f255-trailer"},
        BuildCase{alg::Algorithm::kFletcher256, ChecksumPlacement::kTrailer,
                  true, "f256-trailer"}),
    [](const auto& gen_info) {
      std::string n = gen_info.param.label;
      for (char& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

TEST(PacketBuild, UnfilledIpHeaderAblation) {
  PacketConfig cfg;
  cfg.fill_ip_header = false;
  const Bytes payload = payload_bytes(256);
  const Packet pkt = build_packet(cfg, 1, 77, ByteView(payload));
  const auto ip = Ipv4Header::parse(pkt.ip_bytes());
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->id, 0);  // IP ID intentionally not filled
  EXPECT_EQ(ip->ttl, 0);
  EXPECT_EQ(ip->header_checksum, 0);
  // Transport checksum still verifies.
  EXPECT_TRUE(verify_transport_checksum(cfg, pkt.ip_bytes()));
}

TEST(PacketBuild, SeqNumberIsOnlyHeaderDifferenceBetweenAdjacentPackets) {
  // §5.3: "The only field that changes between adjacent TCP packets in
  // a given flow is the TCP sequence number" (plus IP ID and the two
  // checksums derived from them).
  PacketConfig cfg;
  const Bytes pay1 = payload_bytes(256, 1);
  const Bytes pay2 = payload_bytes(256, 2);
  const Packet a = build_packet(cfg, 1, 1, ByteView(pay1));
  const Packet b = build_packet(cfg, 257, 2, ByteView(pay2));
  int diff_fields = 0;
  // IP id (4-5), IP checksum (10-11), TCP seq (24-27), TCP cksum (36-37).
  for (std::size_t i = 0; i < 40; ++i) {
    if (a.bytes[i] != b.bytes[i]) {
      EXPECT_TRUE((i >= 4 && i <= 5) || (i >= 10 && i <= 11) ||
                  (i >= 24 && i <= 27) || (i >= 36 && i <= 37))
          << "unexpected header difference at byte " << i;
      ++diff_fields;
    }
  }
  EXPECT_GT(diff_fields, 0);
}

TEST(PacketBuild, RejectsCrc32AsTransport) {
  PacketConfig cfg;
  cfg.transport = alg::Algorithm::kCrc32;
  const Bytes payload = payload_bytes(16);
  EXPECT_THROW(build_packet(cfg, 1, 1, ByteView(payload)),
               std::invalid_argument);
}

TEST(Validate, GoodPacketPasses) {
  PacketConfig cfg;
  const Bytes payload = payload_bytes(256);
  const Packet pkt = build_packet(cfg, 1, 1, ByteView(payload));
  EXPECT_EQ(check_headers(pkt.ip_bytes(), pkt.bytes.size(), true),
            HeaderCheck::kOk);
}

TEST(Validate, LengthMismatchCaught) {
  PacketConfig cfg;
  const Bytes payload = payload_bytes(256);
  const Packet pkt = build_packet(cfg, 1, 1, ByteView(payload));
  EXPECT_EQ(check_headers(pkt.ip_bytes(), pkt.bytes.size() + 48, true),
            HeaderCheck::kLengthMismatch);
}

TEST(Validate, GarbageCaught) {
  Bytes garbage = payload_bytes(48, 1234);
  // Random bytes essentially never parse as a valid header.
  EXPECT_NE(check_headers(ByteView(garbage), 296, true), HeaderCheck::kOk);
}

TEST(Validate, EachCheckFires) {
  PacketConfig cfg;
  const Bytes payload = payload_bytes(256);
  const Packet good = build_packet(cfg, 1, 1, ByteView(payload));

  {
    Bytes bad = good.bytes;
    bad[0] = 0x65;  // version 6
    EXPECT_EQ(check_headers(ByteView(bad), bad.size(), false),
              HeaderCheck::kBadVersion);
  }
  {
    Bytes bad = good.bytes;
    bad[0] = 0x46;  // ihl 6
    EXPECT_EQ(check_headers(ByteView(bad), bad.size(), false),
              HeaderCheck::kBadIhl);
  }
  {
    Bytes bad = good.bytes;
    bad[9] = 17;  // UDP
    EXPECT_EQ(check_headers(ByteView(bad), bad.size(), false),
              HeaderCheck::kBadProtocol);
  }
  {
    Bytes bad = good.bytes;
    bad[6] ^= 0x20;  // clobber frag field -> IP checksum now wrong
    EXPECT_EQ(check_headers(ByteView(bad), bad.size(), true),
              HeaderCheck::kBadIpChecksum);
  }
  {
    Bytes bad = good.bytes;
    bad[32] = 0x60;  // TCP data offset 6
    EXPECT_EQ(check_headers(ByteView(bad), bad.size(), false),
              HeaderCheck::kBadTcpOffset);
  }
  {
    Bytes bad = good.bytes;
    bad[32] = 0x53;  // reserved bits set
    EXPECT_EQ(check_headers(ByteView(bad), bad.size(), false),
              HeaderCheck::kBadTcpReserved);
  }
  {
    EXPECT_EQ(check_headers(ByteView(good.bytes).first(30), good.bytes.size(),
                            false),
              HeaderCheck::kTooShort);
  }
}

TEST(Flow, SegmentationShape) {
  FlowConfig cfg;
  cfg.segment_size = 256;
  const Bytes file = payload_bytes(1000);
  const auto pkts = segment_file(cfg, ByteView(file));
  ASSERT_EQ(pkts.size(), 4u);  // 256+256+256+232
  EXPECT_EQ(pkts[0].payload_len, 256u);
  EXPECT_EQ(pkts[3].payload_len, 232u);  // runt
  // Payload bytes survive intact.
  EXPECT_TRUE(std::equal(pkts[0].payload().begin(), pkts[0].payload().end(),
                         file.begin()));
  EXPECT_TRUE(std::equal(pkts[3].payload().begin(), pkts[3].payload().end(),
                         file.begin() + 768));
}

TEST(Flow, SeqAdvancesByLengthAndIdByOne) {
  FlowConfig cfg;
  cfg.initial_seq = 5;
  cfg.initial_ip_id = 9;
  const Bytes file = payload_bytes(600);
  const auto pkts = segment_file(cfg, ByteView(file));
  ASSERT_EQ(pkts.size(), 3u);
  std::uint32_t seq = 5;
  std::uint16_t id = 9;
  for (const auto& p : pkts) {
    const auto ip = Ipv4Header::parse(p.ip_bytes());
    const auto tcp = TcpHeader::parse(p.ip_bytes().subspan(kIpv4HeaderLen));
    EXPECT_EQ(tcp->seq, seq);
    EXPECT_EQ(ip->id, id);
    seq += static_cast<std::uint32_t>(p.payload_len);
    ++id;
  }
}

TEST(Flow, EmptyFileNoPackets) {
  FlowConfig cfg;
  EXPECT_TRUE(segment_file(cfg, ByteView{}).empty());
}

TEST(Flow, ZeroSegmentSizeRejected) {
  FlowConfig cfg;
  cfg.segment_size = 0;
  const Bytes file = payload_bytes(10);
  EXPECT_THROW(segment_file(cfg, ByteView(file)), std::invalid_argument);
}

TEST(Coverage, PseudoHeaderContents) {
  PacketConfig cfg;
  cfg.src_addr = 0x01020304;
  cfg.dst_addr = 0x05060708;
  const Bytes payload = payload_bytes(100);
  const Packet pkt = build_packet(cfg, 1, 1, ByteView(payload));
  const Bytes cov = checksum_coverage(pkt.ip_bytes());
  ASSERT_EQ(cov.size(), PseudoHeader::kLen + 20 + 100);
  EXPECT_EQ(util::load_be32(cov.data()), 0x01020304u);
  EXPECT_EQ(util::load_be32(cov.data() + 4), 0x05060708u);
  EXPECT_EQ(cov[8], 0);
  EXPECT_EQ(cov[9], 6);
  EXPECT_EQ(util::load_be16(cov.data() + 10), 120);
}

}  // namespace
}  // namespace cksum::net
