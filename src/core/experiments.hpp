// Shared experiment drivers used by the bench binaries and examples.
#pragma once

#include <string>

#include "core/cellstats.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/profile.hpp"

namespace cksum::core {

/// Default flow configuration used throughout the paper's evaluation:
/// 256-byte TCP segments over loopback.
net::FlowConfig paper_flow_config();

/// Run the splice simulation over a named/standard filesystem profile.
SpliceStats run_profile(const fsgen::FsProfile& prof,
                        const net::PacketConfig& pkt_cfg, double scale,
                        bool compress_files = false);

/// Collect cell/block checksum distributions over a profile.
CellStatsCollector collect_cell_stats(const fsgen::FsProfile& prof,
                                      double scale,
                                      CellStatsConfig cfg = {});

/// Scale factor from the environment variable CKSUMLAB_SCALE
/// (default 1.0) — lets `bench_*` binaries run bigger corpora without
/// recompiling.
double scale_from_env();

}  // namespace cksum::core
