// AAL5 reassembly state machine — the receiver the error model
// assumes. Cells of one virtual channel are accumulated until an
// end-of-message cell arrives; the buffer then becomes a candidate
// CPCS-PDU, checked for length consistency and CRC. Cell drops in the
// middle of the stream silently fuse packets — this is exactly how
// packet splices are born (paper §3.1), and the tests validate the
// splice enumerator against exhaustive drop patterns fed through this
// state machine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "atm/cell.hpp"

namespace cksum::atm {

/// Idempotently register the reasm.* metric family with
/// obs::Registry::global() (see docs/OBSERVABILITY.md).
void register_reassembler_metrics();

class Reassembler {
 public:
  struct Pdu {
    util::Bytes bytes;  ///< concatenated cell payloads
    bool length_ok = false;
    bool crc_ok = false;

    /// The delivered payload (first `length` bytes). Safe to call on
    /// any candidate PDU, hostile ones included: empty when the length
    /// check failed or the buffer is too short to hold a trailer, and
    /// the claimed length is clamped to the buffer so a lying trailer
    /// can never slice out of range.
    util::ByteView payload() const {
      const util::ByteView all(bytes);
      if (!length_ok || all.size() < kAal5TrailerLen) return {};
      const std::size_t claimed = parse_trailer(all).length;
      return all.first(std::min(claimed, all.size()));
    }
  };

  /// Feed one cell (assumed already filtered to this VC). Returns a
  /// completed candidate PDU when the cell is marked end-of-message.
  std::optional<Pdu> push(const Cell& cell);

  /// Cells buffered for the in-progress PDU.
  std::size_t pending_cells() const noexcept {
    return buffer_.size() / kCellPayload;
  }

  /// Drop any partial reassembly state.
  void reset() noexcept { buffer_.clear(); }

  /// PDUs abandoned because they outgrew the maximum CPCS-PDU size
  /// (the EOM cell was lost so long ago that the buffer overflowed).
  std::uint64_t oversize_discards() const noexcept { return oversize_; }

 private:
  // Maximum CPCS-PDU: 65535-byte payload + trailer + padding.
  static constexpr std::size_t kMaxPduBytes =
      ((65535 + kAal5TrailerLen + kCellPayload - 1) / kCellPayload) *
      kCellPayload;

  util::Bytes buffer_;
  std::uint64_t oversize_ = 0;
};

}  // namespace cksum::atm
