// faultlab — fault-injection soak driver over the full receiver stack.
//
//   faultlab soak [options]        randomized scenarios until the
//                                  fault budget is spent; exit 1 (and
//                                  print one reproducer line) on any
//                                  invariant violation
//   faultlab replay --seed S --scenario N [options]
//                                  re-run exactly one scenario
//   faultlab distkill [options]    distributed-run fault drill: spawn a
//                                  coordinator + N workers, SIGKILL one
//                                  worker mid-lease, and assert the
//                                  merged report still equals the
//                                  single-process run bit for bit
//
// options:
//   --seed <n>        master seed                    (default 0xC0FFEE)
//   --faults <n>      injected-fault-event target    (default 1000000)
//   --max-scenarios <n>  hard scenario cap           (default unlimited)
//   --channels <n>    pin the demux channel cap      (default per-scenario)
//   --budget <n>      pin the demux pending budget   (default per-scenario)
//   --repro-file <p>  also write the reproducer line to this file
//   --metrics-out <p> write the telemetry run manifest (and a
//                     <p>.jsonl progress stream); docs/OBSERVABILITY.md
//   --progress        force the live one-line ticker on stderr
//   --quiet           summary line only
//
// Invariants checked (see docs/FAULTS.md): no crash, demux memory
// bounded by its budget, and no undetected corruption — every PDU
// passing length+CRC must match a payload that was actually sent.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <fstream>

#include "atm/demux.hpp"
#include "checksum/kernels/kernel.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "dist/coordinator.hpp"
#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "faults/channel.hpp"
#include "faults/soak.hpp"
#include "fsgen/profile.hpp"
#include "obs/exporter.hpp"

using namespace cksum;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: faultlab soak [--seed n] [--faults n] [--max-scenarios n]\n"
      "                     [--channels n] [--budget n] [--repro-file p]\n"
      "                     [--metrics-out p] [--progress] [--quiet]\n"
      "       faultlab replay --seed n --scenario n [--channels n] "
      "[--budget n]\n"
      "       faultlab distkill [--workers n] [--profile p] [--scale x]\n"
      "                         [--shard-files n] [--quick] [--verbose]\n"
      "all accept --kernel best|scalar|slicing|swar (or the\n"
      "CKSUM_KERNEL environment variable) to pick the checksum kernel\n");
  return 2;
}

struct Opts {
  faults::SoakConfig cfg;
  std::uint64_t scenario = 0;
  bool have_scenario = false;
  std::string repro_file;
  std::string metrics_out;
  std::string kernel;  // "" = CKSUM_KERNEL env, else lazy "best"
  bool progress = false;
  bool quiet = false;
  bool ok = true;
};

Opts parse(const std::vector<std::string>& args) {
  Opts o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        o.ok = false;
        return "0";
      }
      return args[++i];
    };
    if (a == "--seed") {
      o.cfg.seed = std::stoull(next(), nullptr, 0);
    } else if (a == "--faults") {
      o.cfg.target_faults = std::stoull(next());
    } else if (a == "--max-scenarios") {
      o.cfg.max_scenarios = std::stoull(next());
    } else if (a == "--channels") {
      o.cfg.max_channels = std::stoull(next());
    } else if (a == "--budget") {
      o.cfg.max_pending_cells = std::stoull(next());
    } else if (a == "--scenario") {
      o.scenario = std::stoull(next(), nullptr, 0);
      o.have_scenario = true;
    } else if (a == "--repro-file") {
      o.repro_file = next();
    } else if (a == "--metrics-out") {
      o.metrics_out = next();
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--kernel") {
      o.kernel = next();
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

void print_totals(const faults::ScenarioResult& t) {
  const faults::FaultStats& f = t.faults;
  core::TextTable inj({"fault class", "injected"});
  inj.add_row({"payload burst", core::fmt_count(f.payload_bursts)});
  inj.add_row({"HEC corruption", core::fmt_count(f.hec_corruptions)});
  inj.add_row({"  dropped by HEC", core::fmt_count(f.hec_dropped)});
  inj.add_row({"  miscorrected", core::fmt_count(f.hec_miscorrected)});
  inj.add_row({"duplication", core::fmt_count(f.duplicates)});
  inj.add_row({"reordering", core::fmt_count(f.reorders)});
  inj.add_row({"EOM flip", core::fmt_count(f.eom_flips)});
  inj.add_row({"misdelivery", core::fmt_count(f.misdeliveries)});
  inj.add_row({"truncation", core::fmt_count(f.truncations)});
  inj.add_separator();
  inj.add_row({"total fault events", core::fmt_count(f.total_faults())});
  inj.print(std::cout);

  std::printf("\n");
  core::TextTable rx({"receiver", "count"});
  rx.add_row({"cells into channel", core::fmt_count(f.cells_in)});
  rx.add_row({"cells out of channel", core::fmt_count(f.cells_out)});
  rx.add_row({"cells lost on link", core::fmt_count(t.loss.cells_lost)});
  rx.add_row({"cells policy-dropped",
              core::fmt_count(t.loss.cells_policy_drop)});
  rx.add_row({"cells into demux", core::fmt_count(t.cells_to_demux)});
  rx.add_row({"budget drops", core::fmt_count(t.demux.budget_drops)});
  rx.add_row({"channel evictions", core::fmt_count(t.demux.evictions)});
  rx.add_row({"oversize discards", core::fmt_count(t.oversize_discards)});
  rx.add_row({"payloads sent", core::fmt_count(t.payloads_sent)});
  rx.add_row({"candidate PDUs", core::fmt_count(t.pdus_delivered)});
  rx.add_row({"PDUs passing checks", core::fmt_count(t.pdus_ok)});
  rx.print(std::cout);
}

int report(const faults::SoakConfig& cfg, const faults::SoakResult& res,
           const Opts& o) {
  if (!o.quiet) {
    print_totals(res.totals);
    std::printf("\n");
  }
  std::printf("%llu scenarios, %s fault events, %s cells: %s\n",
              static_cast<unsigned long long>(res.scenarios),
              core::fmt_count(res.totals.faults.total_faults()).c_str(),
              core::fmt_count(res.totals.faults.cells_in).c_str(),
              res.ok() ? "all invariants held" : "INVARIANT VIOLATED");
  if (!res.ok()) {
    std::printf("  %s\n  reproduce with: %s\n",
                res.totals.violation_detail.c_str(),
                res.reproducer.c_str());
    if (!o.repro_file.empty()) {
      std::ofstream f(o.repro_file);
      f << res.reproducer << "\n";
    }
    return 1;
  }
  (void)cfg;
  return 0;
}

/// Live one-line view of a soak run. Fault events are summed over the
/// per-class `faults.*.injected` counters — the same definition as
/// FaultStats::total_faults().
std::string soak_ticker_line(const obs::Snapshot& snap, double elapsed) {
  std::uint64_t events = 0;
  for (const obs::MetricValue& m : snap.metrics) {
    if (m.name.size() > 9 &&
        m.name.compare(m.name.size() - 9, 9, ".injected") == 0)
      events += m.value;
  }
  const auto get = [&](std::string_view name) -> std::uint64_t {
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "soak: %llu scenarios  %llu fault events  %llu cells  "
      "%llu violations  %.1fs",
      static_cast<unsigned long long>(get("soak.scenarios")),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(get("faults.cells_in")),
      static_cast<unsigned long long>(get("soak.violations")), elapsed);
  return buf;
}

/// Starts the exporter (when asked for) around `run`, finishing with a
/// manifest identifying this soak/replay configuration.
template <typename Run>
int with_metrics(const Opts& o, const char* tool, Run run) {
  faults::register_fault_metrics();
  atm::register_atm_metrics();
  alg::kern::register_kernel_metrics();
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!o.metrics_out.empty() || o.progress) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = o.metrics_out;
    eo.ticker = o.progress || isatty(2) != 0;
    eo.ticker_line = soak_ticker_line;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }
  const int rc = run();
  if (exporter) {
    obs::RunInfo info;
    info.tool = tool;
    info.corpus = "fsgen-random";  // scenario corpora are seed-derived
    info.seed = o.cfg.seed;
    info.threads = 1;
    info.extra_json =
        "\"kernel\": \"" + std::string(alg::kern::active_kernel().name) +
        "\"";
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "faultlab: cannot write manifest to %s\n",
                   o.metrics_out.c_str());
      return 1;
    }
  }
  return rc;
}

int cmd_soak(const Opts& o) {
  return with_metrics(o, "faultlab soak", [&] {
    const faults::SoakResult res = faults::run_soak(o.cfg);
    return report(o.cfg, res, o);
  });
}

int cmd_replay(const Opts& o) {
  if (!o.have_scenario) return usage();
  return with_metrics(o, "faultlab replay", [&] {
    const faults::ScenarioResult r = faults::run_scenario(o.cfg, o.scenario);
    faults::SoakResult res;
    res.scenarios = 1;
    res.totals = r;
    if (r.violations > 0)
      res.reproducer = faults::reproducer_line(o.cfg, o.scenario);
    return report(o.cfg, res, o);
  });
}

/// Hidden subcommand: one worker process of a distkill drill (also
/// usable against a `cksumlab splice --serve` coordinator — both
/// drivers speak the same protocol).
int cmd_distworker(const std::vector<std::string>& args) {
  dist::WorkerOptions w;
  w.tool = "faultlab distworker";
  std::string hostport;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (a == "--connect") {
      hostport = next();
    } else if (a == "--worker-id") {
      w.worker_id = std::stoull(next());
    } else if (a == "--metrics-out") {
      w.metrics_out = next();
    } else {
      return usage();
    }
  }
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) return usage();
  w.host = hostport.substr(0, colon);
  w.port = static_cast<std::uint16_t>(std::stoul(hostport.substr(colon + 1)));
  return dist::run_worker(w);
}

/// The worker-loss drill (satellite of docs/DIST.md's failure matrix):
/// run the reference corpus single-process, re-run it distributed with
/// one worker SIGKILLed the moment the first lease result lands, and
/// require the merged report to be bitwise identical anyway.
int cmd_distkill(const std::vector<std::string>& args) {
  unsigned workers = 3;
  std::string profile = "nsc05";
  double scale = 0.1;
  std::size_t shard_files = 1;  // one file per lease: everyone leases
  bool verbose = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string("0");
    };
    if (a == "--workers") {
      workers = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--profile") {
      profile = next();
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--shard-files") {
      shard_files = std::stoull(next());
    } else if (a == "--quick") {
      // defaults already are the quick corpus; accepted for symmetry
    } else if (a == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return usage();
    }
  }
  if (workers < 2) {
    std::fprintf(stderr, "faultlab distkill: needs --workers >= 2\n");
    return 2;
  }
  faults::register_fault_metrics();
  atm::register_atm_metrics();
  alg::kern::register_kernel_metrics();

  // The oracle: the same corpus evaluated in-process.
  core::SpliceRunConfig run;
  run.flow = core::paper_flow_config();
  run.threads = 1;
  const fsgen::Filesystem fs(fsgen::profile(profile), scale);
  const core::SpliceStats expected = core::run_filesystem(run, fs);

  dist::DistConfig dc;
  dc.run.corpus_kind = dist::CorpusKind::kProfile;
  dc.run.corpus = profile;
  dc.run.scale = scale;
  dc.run.threads = 1;
  dc.nfiles = fs.file_count();
  dc.expected_workers = workers;
  dc.shard_files = shard_files;
  dist::Coordinator coord(dc);

  const std::string exe = dist::self_exe_path();
  if (exe.empty()) {
    std::fprintf(stderr, "faultlab: cannot locate own executable\n");
    return 1;
  }
  std::vector<pid_t> pids;
  for (unsigned i = 0; i < workers; ++i) {
    const pid_t pid = dist::spawn_process(
        {exe, "distworker", "--connect",
         "127.0.0.1:" + std::to_string(coord.port()), "--worker-id",
         std::to_string(i + 1), "--kernel",
         std::string(alg::kern::active_kernel().name)});
    if (pid < 0) {
      std::fprintf(stderr, "faultlab: cannot spawn worker %u\n", i + 1);
      return 1;
    }
    pids.push_back(pid);
  }

  // The barrier guarantees every worker holds a lease before the first
  // result is accepted, so killing any *other* worker kills a worker
  // mid-lease (modulo the benign race where its own result is already
  // in flight — the epoch check makes that harmless either way).
  pid_t killed_pid = -1;
  auto hook = [&](const dist::DistEvent& ev) {
    if (verbose)
      std::fprintf(stderr, "distkill: event %d worker %llu shard %zu\n",
                   static_cast<int>(ev.kind),
                   static_cast<unsigned long long>(ev.worker_id), ev.shard);
    if (ev.kind != dist::DistEvent::Kind::kResultAccepted || killed_pid != -1)
      return;
    for (const pid_t p : pids) {
      if (static_cast<std::uint64_t>(p) == ev.pid) continue;
      dist::kill_process(p);
      killed_pid = p;
      std::fprintf(stderr, "distkill: SIGKILLed worker pid %d after first "
                           "accepted result\n",
                   static_cast<int>(p));
      break;
    }
  };
  const dist::DistReport rep = coord.run(hook);
  bool killed_confirmed = false;
  for (const pid_t p : pids) {
    const int code = dist::wait_process(p);
    if (p == killed_pid && code == 128 + 9) killed_confirmed = true;
  }

  const bool identical = rep.stats == expected;
  std::printf("distkill: %u workers, %zu shards, %zu reassigned, "
              "%zu stale results\n",
              workers, rep.shards, rep.reassigned, rep.stale_results);
  std::printf("worker killed mid-run: %s\n",
              killed_confirmed ? "yes (SIGKILL confirmed)" : "NO");
  std::printf("run complete: %s\n", rep.complete ? "yes" : "NO");
  std::printf("merged report identical to single-process run: %s\n",
              identical ? "yes" : "NO");
  return (rep.complete && identical && killed_confirmed) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "distworker" || cmd == "distkill") {
    // These parse their own options (including --kernel, stripped here
    // the same way every subcommand accepts it).
    std::vector<std::string> args(argv + 2, argv + argc);
    std::string choice;
    for (auto it = args.begin(); it != args.end();) {
      if (*it == "--kernel" && it + 1 != args.end()) {
        choice = *(it + 1);
        it = args.erase(it, it + 2);
      } else {
        ++it;
      }
    }
    if (choice.empty()) {
      const char* env = std::getenv(alg::kern::kKernelEnv);
      if (env != nullptr) choice = env;
    }
    if (!choice.empty() && !alg::kern::select_kernel(choice)) {
      std::fprintf(stderr, "faultlab: unknown kernel '%s'\n", choice.c_str());
      return 2;
    }
    try {
      return cmd == "distworker" ? cmd_distworker(args) : cmd_distkill(args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faultlab: %s\n", e.what());
      return 1;
    }
  }
  Opts o;
  try {
    o = parse(std::vector<std::string>(argv + 2, argv + argc));
  } catch (const std::exception&) {
    std::fprintf(stderr, "faultlab: expected a number after the last option\n");
    return usage();
  }
  if (!o.ok) return usage();
  {
    std::string choice = o.kernel;
    if (choice.empty()) {
      const char* env = std::getenv(alg::kern::kKernelEnv);
      if (env != nullptr) choice = env;
    }
    if (!choice.empty() && !alg::kern::select_kernel(choice)) {
      std::fprintf(stderr, "faultlab: unknown kernel '%s'; available: best",
                   choice.c_str());
      for (const auto& k : alg::kern::kernels())
        std::fprintf(stderr, " %s", std::string(k.name).c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
  }
  try {
    if (cmd == "soak") return cmd_soak(o);
    if (cmd == "replay") return cmd_replay(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "faultlab: %s\n", e.what());
    return 1;
  }
  return usage();
}
