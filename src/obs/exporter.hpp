// Background snapshot pump for long-running drivers.
//
// Every `period` the exporter snapshots a Registry, appends one JSONL
// progress line ({"t": <elapsed s>, "metrics": {...}}) to
// `<manifest_path>.jsonl`, and — when the ticker is enabled — redraws
// a single status line on stderr built by the caller's ticker_line
// callback from the same snapshot, so the live view and the exported
// stream can never disagree. finish() stops the pump, emits one final
// JSONL line, and writes the run manifest.
#pragma once

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/snapshot.hpp"

namespace cksum::obs {

class MetricsExporter {
 public:
  struct Options {
    /// Final manifest path; empty disables both the manifest and the
    /// JSONL stream (the ticker still works).
    std::string manifest_path;
    std::chrono::milliseconds period{500};
    bool ticker = false;  ///< redraw a one-line progress on stderr
    /// Builds the ticker line from a snapshot; defaults to elapsed
    /// time only.
    std::function<std::string(const Snapshot&, double elapsed_seconds)>
        ticker_line;
  };

  MetricsExporter(Registry& reg, Options opts);
  ~MetricsExporter();  ///< stops the pump; writes nothing

  double elapsed_seconds() const;

  /// Stop the pump and write the manifest (wall_seconds is filled in
  /// from the exporter's own clock when the caller leaves it 0).
  /// Returns false if the manifest could not be written.
  bool finish(RunInfo info);

 private:
  void pump();
  void emit(bool final_line);
  void stop();

  Registry& reg_;
  Options opts_;
  std::chrono::steady_clock::time_point t0_;
  std::ofstream jsonl_;
  bool ticker_drawn_ = false;
  bool finished_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cksum::obs
