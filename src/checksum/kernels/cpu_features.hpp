// Runtime CPU-feature probe for the carry-less-multiply kernel tier.
//
// Compile-time guards only say what the *binary* contains; whether the
// clmul kernel may actually run is a property of the machine executing
// it. The registry consults this probe when resolving "best" and when
// reporting per-kernel availability, so the same binary picks clmul on
// hardware with carry-less multiply and falls back to chorba elsewhere.
#pragma once

namespace cksum::alg::kern::impl {

/// True when this CPU can execute the clmul kernel's folding loop:
/// x86 PCLMULQDQ + SSE4.1 (cpuid leaf 1, ECX bits 1 and 19), or
/// AArch64 PMULL (getauxval(AT_HWCAP) & HWCAP_PMULL). Probed once on
/// first call and cached; never throws, never raises SIGILL.
bool cpu_has_clmul() noexcept;

}  // namespace cksum::alg::kern::impl
