// Packet construction for the simulated FTP-over-TCP/IP transfer.
//
// The builder reproduces the paper's simulator faithfully, including
// its two ablations:
//  * §6.2 — `fill_ip_header`: whether the 8 IP header bytes not
//    covered by the TCP pseudo-header (tos, id, frag, ttl, IP header
//    checksum) are filled in or left zero. The SIGCOMM '95 numbers
//    were produced with them unfilled, which inflated miss rates by
//    three orders of magnitude.
//  * §6.3 — `invert_checksum`: whether the stored Internet checksum is
//    the complement of the sum (standard) or the raw sum.
// and the paper's §5.3 experiment:
//  * `placement`: the transport check value lives in the TCP header
//    (standard) or is appended as a 2-byte trailer after the payload,
//    with the header checksum field left zero.
//
// The transport checksum can be the Internet checksum or either
// Fletcher flavour; Fletcher check bytes are stored "sum-to-zero"
// (both running sums of the covered bytes are zero on a valid packet),
// matching the paper's implementation note.
//
// Checksum coverage is always: pseudo-header ++ TCP header ++ payload
// (++ trailer check bytes, when placed there, as zeros during
// computation). The pseudo-header is included for Fletcher too so all
// algorithms protect identical bytes.
#pragma once

#include <cstdint>

#include "checksum/checksum.hpp"
#include "net/ipv4.hpp"
#include "net/tcp.hpp"
#include "util/bytes.hpp"

namespace cksum::net {

enum class ChecksumPlacement { kHeader, kTrailer };

struct PacketConfig {
  alg::Algorithm transport = alg::Algorithm::kInternet;
  ChecksumPlacement placement = ChecksumPlacement::kHeader;
  bool invert_checksum = true;  // Internet checksum only (§6.3)
  bool fill_ip_header = true;   // §6.2
  /// Emulate the SIGCOMM '95 simulator exactly (§6.2/§6.4): the 8 IP
  /// header bytes NOT covered by the pseudo-header — version/ihl, id,
  /// frag, ttl, IP checksum — are left zero, and the pseudo-header
  /// carries the IP total length. The remaining IP header bytes then
  /// mirror the pseudo-header exactly, so a zero-payload packet's
  /// header cell sums to zero — the "zero-congruent header cell"
  /// artifact that inflated the original paper's miss rates ~1000x.
  /// Implies fill_ip_header = false semantics; header validation drops
  /// the version/ihl checks (that simulator only checked lengths and
  /// "certain bits").
  bool legacy95_headers = false;
  std::uint32_t src_addr = 0x7f000001;  // 127.0.0.1: the loopback
  std::uint32_t dst_addr = 0x7f000001;  // transfer the paper simulates
  std::uint16_t src_port = 20;          // ftp-data
  std::uint16_t dst_port = 54321;
  std::uint16_t window = 4096;
};

/// Number of check bytes appended after the payload in trailer mode.
inline constexpr std::size_t kTrailerCheckLen = 2;

struct Packet {
  util::Bytes bytes;            ///< full IP datagram
  std::size_t payload_len = 0;  ///< TCP user-data length (excludes trailer check)

  util::ByteView ip_bytes() const noexcept { return {bytes.data(), bytes.size()}; }
  std::uint16_t total_length() const noexcept {
    return static_cast<std::uint16_t>(bytes.size());
  }
  util::ByteView payload() const noexcept {
    return {bytes.data() + kIpv4HeaderLen + kTcpHeaderLen, payload_len};
  }
};

/// Build one data segment of a flow.
Packet build_packet(const PacketConfig& cfg, std::uint32_t seq,
                    std::uint16_t ip_id, util::ByteView payload);

/// The checksum-coverage string of a datagram: pseudo-header ++ bytes
/// from IP offset 20 to total_length. (Exposed for tests and the
/// splice slow path.) With `legacy95` the pseudo-header carries the IP
/// total length instead of the TCP segment length.
util::Bytes checksum_coverage(util::ByteView ip_datagram,
                              bool legacy95 = false);

/// Verify the transport checksum of a received datagram under `cfg`
/// (the datagram must already have passed structural header checks).
bool verify_transport_checksum(const PacketConfig& cfg,
                               util::ByteView ip_datagram);

}  // namespace cksum::net
