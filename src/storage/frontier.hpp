// The storage miss-rate frontier: the paper's Tables 4–10 question
// asked of journal commit blocks instead of packets (docs/STORAGE.md).
//
// For every cell of (checksum × fault class × block size) the frontier
// runs seeded trials. Each trial carves two consecutive payload
// windows from one fsgen-generated file (old and new generation of the
// same commit record, so run structure continues across a tear the way
// it does in a real journal stream), seals them into commit blocks,
// pushes the new generation through a single-fault BlockDevice, and
// scores the read-back against a byte-level oracle:
//
//   benign      every readable block is bitwise the expected sealed
//               block (e.g. a tear inside identical content)
//   detected    some block deviates and verification rejects it
//   undetected  some block deviates and verification ACCEPTS it —
//               the miss the whole repository exists to count
//
// trials == benign + detected + undetected, per cell, by construction.
//
// Determinism: trial t of cell c derives its Rng purely from
// (seed, c, t), and cells accumulate by commutative counter sums, so
// the full table is bitwise identical at any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsgen/generator.hpp"
#include "storage/device.hpp"
#include "storage/layout.hpp"

namespace cksum::storage {

enum class FaultClass { kTorn, kMisdirected, kLost, kCorrupt };

inline constexpr FaultClass kAllFaults[] = {
    FaultClass::kTorn, FaultClass::kMisdirected, FaultClass::kLost,
    FaultClass::kCorrupt};

constexpr std::string_view name(FaultClass f) noexcept {
  switch (f) {
    case FaultClass::kTorn: return "torn";
    case FaultClass::kMisdirected: return "misdirected";
    case FaultClass::kLost: return "lost";
    case FaultClass::kCorrupt: return "corrupt";
  }
  return "?";
}

/// File kinds whose bytes are dominated by 0x00/0xFF runs — the slice
/// where the paper's Fletcher-255 pathology lives (PBM rasters, word-
/// processor padding runs, near-all-zero profiling data).
constexpr bool run_heavy(fsgen::FileKind k) noexcept {
  return k == fsgen::FileKind::kPbmImage ||
         k == fsgen::FileKind::kWordProcessor ||
         k == fsgen::FileKind::kGmonProfile;
}

/// Old/new payload pairs carved from the fsgen corpus at one block
/// size: consecutive windows of the same generated file.
struct BlockPool {
  struct Pair {
    fsgen::FileKind kind;
    util::Bytes older;  ///< generation-0 payload (block_size - 8 bytes)
    util::Bytes newer;  ///< generation-1 payload
  };
  std::size_t block_size = 0;
  std::vector<Pair> pairs;
};

/// Deterministically carve `target_pairs` payload pairs, round-robin
/// across every fsgen file kind so each kind's pathology is
/// represented regardless of profile weighting.
BlockPool build_pool(std::size_t block_size, std::uint64_t seed,
                     std::size_t target_pairs);

enum class Outcome { kBenign, kDetected, kUndetected };

/// Everything one trial did, sufficient for an external byte-level
/// audit (tests recompute the verdicts with the naive checksums).
struct TrialAudit {
  fsgen::FileKind kind = fsgen::FileKind::kText;
  WriteEvent event;
  struct Read {
    std::uint64_t address = 0;
    std::uint64_t generation = 0;
    util::Bytes expected;  ///< the sealed block the reader should see
    util::Bytes actual;    ///< what the device returned
    bool check_passed = false;
  };
  Read reads[2];  ///< [0] = target, [1] = neighbour
};

/// One trial of cell `cell_id`: derives its Rng from (seed, cell_id,
/// trial) only. `audit`, when non-null, receives the full byte-level
/// record.
Outcome run_trial(const BlockPool& pool, Algo alg, FaultClass fault,
                  std::uint64_t seed, std::uint64_t cell_id,
                  std::uint64_t trial, TrialAudit* audit = nullptr);

struct FrontierConfig {
  std::uint64_t seed = 0xC0FFEE;
  /// Trials per cell, per block size (parallel to block_sizes); 0
  /// entries fall back to the built-in defaults.
  std::vector<std::size_t> block_sizes = {4096, 65536};
  std::vector<std::size_t> trials = {0, 0};
  std::size_t pool_pairs = 0;  ///< payload pairs per block size (0 = default)
  unsigned threads = 1;
  bool quick = false;
};

struct CellResult {
  Algo alg = Algo::kCrc32;
  std::size_t block_size = 0;
  FaultClass fault = FaultClass::kTorn;
  std::uint64_t trials = 0;
  std::uint64_t benign = 0;
  std::uint64_t detected = 0;
  std::uint64_t undetected = 0;
  /// The torn-pathology slice: trials whose payload pair came from a
  /// run-heavy file kind, and how they scored.
  std::uint64_t run_heavy_trials = 0;
  std::uint64_t run_heavy_scored = 0;
  std::uint64_t run_heavy_undetected = 0;

  /// Corruptions that reached the reader (benign trials excluded).
  std::uint64_t scored() const noexcept { return detected + undetected; }
  double miss_rate() const noexcept {
    return scored() == 0 ? 0.0
                         : static_cast<double>(undetected) /
                               static_cast<double>(scored());
  }
};

struct FrontierResult {
  std::vector<CellResult> cells;  ///< fixed order: block size, fault, algo
  StorageStats device_stats;      ///< summed over every trial's device
  std::uint64_t trials_total = 0;
  std::uint64_t undetected_total = 0;
  /// Accounting violations (an expected sealed block failing its own
  /// verification); always 0 unless the layout layer is broken.
  std::uint64_t violations = 0;
};

/// Run the full matrix. Bitwise-deterministic in (config minus
/// threads): the same seed and trial counts give identical cells at
/// any thread count.
FrontierResult run_frontier(const FrontierConfig& cfg);

/// The manifest "storage" member: {"rows": [...], ...} — one row per
/// cell with the outcome accounting identity intact
/// (scripts/check_manifest.py --require-storage).
std::string frontier_json(const FrontierConfig& cfg,
                          const FrontierResult& res);

/// Idempotently register the storage.* metric family (zero-valued)
/// with obs::Registry::global(). Counters are kDeterministic: trial
/// outcomes depend only on (seed, config), never on thread count.
void register_storage_metrics();

}  // namespace cksum::storage
