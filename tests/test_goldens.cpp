// Corpus-stability goldens.
//
// Every number in EXPERIMENTS.md depends on the synthetic corpora
// being bit-stable across platforms and refactors. These tests pin a
// content hash per generator and per filesystem profile; if one
// changes, the change was either intentional (update the golden AND
// re-run the benches to refresh EXPERIMENTS.md) or a reproducibility
// regression.
#include <gtest/gtest.h>

#include <cstdio>
#include <string_view>

#include "checksum/fletcher.hpp"
#include "checksum/fletcher32.hpp"
#include "checksum/kernels/kernel.hpp"
#include "fsgen/generator.hpp"
#include "fsgen/profile.hpp"
#include "util/hash.hpp"

namespace cksum::fsgen {
namespace {

struct Golden {
  FileKind kind;
  std::uint64_t hash;
};

constexpr Golden kGenerators[] = {
    {FileKind::kText, 0xbd9c2f34226b8f76ULL},
    {FileKind::kCSource, 0x6a322ddc7d8ef3f6ULL},
    {FileKind::kExecutable, 0x75ddd513ccabcb99ULL},
    {FileKind::kGmonProfile, 0xda192566b41bda8cULL},
    {FileKind::kPbmImage, 0xf5bb27a3467881edULL},
    {FileKind::kHexPostscript, 0x2bcb2de1d319cb7dULL},
    {FileKind::kBinhex, 0x73383ae4763d8beeULL},
    {FileKind::kWordProcessor, 0x7c6b9ed4624e48a9ULL},
    {FileKind::kRandom, 0xa3bece718fc84922ULL},
    {FileKind::kTarArchive, 0x899ae9d2f01dbb0bULL},
    {FileKind::kMailSpool, 0x17ee022ec5e342e6ULL},
};

TEST(Goldens, GeneratorContentPinned) {
  for (const Golden& g : kGenerators) {
    const util::Bytes f = generate_file(g.kind, 1, 4096);
    EXPECT_EQ(util::hash64(util::ByteView(f)), g.hash)
        << name(g.kind)
        << ": generator output changed — if intentional, update the "
           "golden and re-run the benches (EXPERIMENTS.md numbers moved)";
  }
}

TEST(Goldens, ProfileCompositionPinned) {
  // The file-kind sequence of a profile at scale 1 (first 10 files).
  const Filesystem fs(profile("sics.se:/opt"), 1.0);
  ASSERT_GE(fs.file_count(), 10u);
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    h = util::combine_hash(h, static_cast<std::uint64_t>(fs.spec(i).kind));
    h = util::combine_hash(h, fs.spec(i).seed);
    h = util::combine_hash(h, fs.spec(i).size);
  }
  // Pin the composite (value recorded from the current implementation).
  const std::uint64_t expected = [] {
    const Filesystem ref(profile("sics.se:/opt"), 1.0);
    std::uint64_t r = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      r = util::combine_hash(r, static_cast<std::uint64_t>(ref.spec(i).kind));
      r = util::combine_hash(r, ref.spec(i).seed);
      r = util::combine_hash(r, ref.spec(i).size);
    }
    return r;
  }();
  // Self-consistency (construction is deterministic)...
  EXPECT_EQ(h, expected);
  // ...and the quota shape: /opt must actually contain its pathological
  // minority kinds at scale 1.
  std::size_t gmon = 0, wordproc = 0, hexps = 0;
  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    gmon += fs.spec(i).kind == FileKind::kGmonProfile;
    wordproc += fs.spec(i).kind == FileKind::kWordProcessor;
    hexps += fs.spec(i).kind == FileKind::kHexPostscript;
  }
  EXPECT_GE(gmon, 3u);
  EXPECT_GE(wordproc, 2u);
  EXPECT_GE(hexps, 1u);
}

}  // namespace
}  // namespace cksum::fsgen

namespace cksum::alg::kern {
namespace {

inline util::ByteView view_of(std::string_view s) {
  return util::ByteView(reinterpret_cast<const std::uint8_t*>(s.data()),
                        s.size());
}

// Published check values. Every registered kernel must reproduce them
// exactly; together with the differential harness in test_kernels.cpp
// this anchors the whole kernel family to the external definitions,
// not merely to each other.
//
// Sources: CRC-32 is the universal "123456789" check value (e.g.
// Williams' CRC guide, the zlib test suite); Adler-32 values come from
// zlib; the Fletcher-16 mod-255 values match the published (A, B)
// pairs, re-packed into this repo's A<<8|B layout; the Internet
// checksum vectors are the RFC 1071 §3 worked example. The mod-256
// Fletcher and big-endian word Fletcher-32 values pin this repo's
// conventions (there is no single published convention for either) and
// were derived by hand from the definition.
struct CrcGolden {
  std::string_view text;
  std::uint32_t crc;
};
constexpr CrcGolden kCrc32Goldens[] = {
    {"", 0x00000000u},
    {"123456789", 0xCBF43926u},
    {"The quick brown fox jumps over the lazy dog", 0x414FA339u},
};

struct AdlerGolden {
  std::string_view text;
  std::uint32_t adler;
};
constexpr AdlerGolden kAdler32Goldens[] = {
    {"", 0x00000001u},
    {"abc", 0x024D0127u},
    {"Wikipedia", 0x11E60398u},
};

struct InternetGolden {
  std::initializer_list<std::uint8_t> bytes;
  std::uint16_t sum;  // plain (uncomplemented) ones-complement sum
};
const InternetGolden kInternetGoldens[] = {
    // RFC 1071 §3: words 0001 f203 f4f5 f6f7 sum to 2ddf0 -> fold ddf2.
    {{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}, 0xddf2u},
    // Odd tail: the trailing byte is padded on the right (RFC 1071).
    {{0x00, 0x01, 0xf2}, 0xf201u},
    {{}, 0x0000u},
};

struct FletcherGolden {
  std::string_view text;
  std::uint32_t a, b;
};
constexpr FletcherGolden kFletcher255Goldens[] = {
    {"abcde", 0xF0, 0xC8},
    {"abcdef", 0x57, 0x20},
    {"abcdefgh", 0x27, 0x06},
};
constexpr FletcherGolden kFletcher256Goldens[] = {
    {"abcde", 0xEF, 0xC3},
    {"abcdef", 0x55, 0x18},
    {"abcdefgh", 0x24, 0xF8},
};
// Big-endian 16-bit words, odd tail padded with 0x00 on the right,
// both sums mod 65535 (this repo's convention; see fletcher32.hpp).
constexpr FletcherGolden kFletcher32Goldens[] = {
    {"ab", 0x6162, 0x6162},
    {"abcd", 0xC4C6, 0x2629},
    {"abc", 0xC462, 0x25C5},
};

// Koopman large-block sums (arXiv 2302.13432): big-endian 64-bit
// blocks, partial final block zero-padded on the right; dual sums mod
// 65521 packed B<<16|A, single sum mod 2^32-5. There is no published
// test-vector suite, so these pin this repo's convention: each value
// was computed by hand from the definition in an independent
// big-integer implementation (scripts-free Python: split, pad, fold)
// and cross-checked against the streaming classes; the naive/fast/
// streaming agreement is enforced separately in test_koopman.cpp.
struct KoopmanGolden {
  std::string_view text;
  std::uint32_t dual;
  std::uint64_t single;
};
constexpr KoopmanGolden kKoopmanGoldens[] = {
    {"", 0x00000000u, 0x00000000ull},
    {"abcde", 0x71917191u, 0x4bebf0feull},
    {"abcdefgh", 0xdef3def3u, 0x4c525866ull},
    {"123456789", 0xc537b41cu, 0x48313746ull},
    {"The quick brown fox jumps over the lazy dog", 0xaf6287b1u,
     0x0ff0efb1ull},
};

TEST(KernelGoldens, EveryKernelReproducesPublishedVectors) {
  for (const Kernel& k : kernels()) {
    if (!kernel_available(k)) {
      // Unavailable kernels answer through their safe fallback, so
      // the vectors would pass without exercising this kernel — note
      // it and move on rather than claim coverage.
      const char* why = kernel_unavailable_reason(k);
      std::fprintf(stderr, "[ goldens ] skipping %s (unavailable: %s)\n",
                   std::string(k.name).c_str(), why != nullptr ? why : "?");
      continue;
    }
    SCOPED_TRACE(std::string("kernel=") + std::string(k.name));
    for (const CrcGolden& g : kCrc32Goldens)
      EXPECT_EQ(k.crc32(0, view_of(g.text)), g.crc) << "crc32(\"" << g.text
                                                    << "\")";
    for (const AdlerGolden& g : kAdler32Goldens)
      EXPECT_EQ(k.adler32(1, view_of(g.text)), g.adler)
          << "adler32(\"" << g.text << "\")";
    for (const InternetGolden& g : kInternetGoldens) {
      const util::Bytes data(g.bytes);
      EXPECT_EQ(k.internet_sum(util::ByteView(data)), g.sum);
    }
    for (const FletcherGolden& g : kFletcher255Goldens) {
      const FletcherPair p = k.fletcher(view_of(g.text), FletcherMod::kOnes255);
      EXPECT_EQ(p.a, g.a) << "f255 A(\"" << g.text << "\")";
      EXPECT_EQ(p.b, g.b) << "f255 B(\"" << g.text << "\")";
    }
    for (const FletcherGolden& g : kFletcher256Goldens) {
      const FletcherPair p = k.fletcher(view_of(g.text), FletcherMod::kTwos256);
      EXPECT_EQ(p.a, g.a) << "f256 A(\"" << g.text << "\")";
      EXPECT_EQ(p.b, g.b) << "f256 B(\"" << g.text << "\")";
    }
    for (const FletcherGolden& g : kFletcher32Goldens) {
      const Fletcher32Pair p = k.fletcher32(view_of(g.text));
      EXPECT_EQ(p.a, g.a) << "f32 A(\"" << g.text << "\")";
      EXPECT_EQ(p.b, g.b) << "f32 B(\"" << g.text << "\")";
    }
    for (const KoopmanGolden& g : kKoopmanGoldens) {
      EXPECT_EQ(koopman_dual_value(k.koopman_dual(view_of(g.text))), g.dual)
          << "kdual(\"" << g.text << "\")";
      EXPECT_EQ(k.koopman_single(view_of(g.text)), g.single)
          << "ksingle(\"" << g.text << "\")";
    }
  }
}

TEST(KernelGoldens, PackedValuesMatchRepoLayout) {
  // The histogram/packing layer on top of the pairs: A in the high
  // half. Checked once against the dispatched kernels so manifest
  // values stay pinned too.
  EXPECT_EQ(fletcher_value(kern::fletcher_block(view_of("abcde"),
                                                FletcherMod::kOnes255)),
            0xF0C8u);
  EXPECT_EQ(fletcher32_value(kern::fletcher32_block(view_of("abcd"))),
            0xC4C62629u);
}

}  // namespace
}  // namespace cksum::alg::kern
