#include "dist/service.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>

#include "dist/lease.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"

namespace cksum::dist {
namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The handshake Config every connection receives as job 0: an empty
/// manifest corpus, so the worker's mandatory job-0 load is a no-op.
/// Every real job arrives later as a JobConfig frame.
ConfigMsg placeholder_config() {
  ConfigMsg m;
  m.corpus_kind = CorpusKind::kManifest;
  m.corpus = "";
  return m;
}

struct ServiceMetrics {
  obs::Counter connected, lost, granted, reassigned, accepted, stale,
      heartbeats, jobs_submitted, jobs_rejected, jobs_cancelled,
      jobs_completed, write_queue_hwm, grants_deferred;
};

ServiceMetrics service_metrics() {
  obs::Registry& reg = obs::Registry::global();
  ServiceMetrics m;
  m.connected = reg.counter("dist.workers_connected", obs::Tag::kScheduling);
  m.lost = reg.counter("dist.workers_lost", obs::Tag::kScheduling);
  m.granted = reg.counter("dist.leases_granted", obs::Tag::kScheduling);
  m.reassigned = reg.counter("dist.leases_reassigned", obs::Tag::kScheduling);
  m.accepted = reg.counter("dist.results_accepted", obs::Tag::kScheduling);
  m.stale = reg.counter("dist.results_stale", obs::Tag::kScheduling);
  m.heartbeats = reg.counter("dist.heartbeats", obs::Tag::kScheduling);
  m.jobs_submitted = reg.counter("dist.jobs_submitted", obs::Tag::kScheduling);
  m.jobs_rejected = reg.counter("dist.jobs_rejected", obs::Tag::kScheduling);
  m.jobs_cancelled = reg.counter("dist.jobs_cancelled", obs::Tag::kScheduling);
  m.jobs_completed = reg.counter("dist.jobs_completed", obs::Tag::kScheduling);
  m.write_queue_hwm =
      reg.counter("dist.write_queue_hwm", obs::Tag::kScheduling);
  m.grants_deferred =
      reg.counter("dist.grants_deferred", obs::Tag::kScheduling);
  return m;
}

}  // namespace

std::string_view name(JobState s) noexcept {
  switch (s) {
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kAborted: return "aborted";
  }
  return "unknown";
}

std::string JobReport::json() const {
  // Splice the job identity into the DistReport object: dist_json()
  // always renders "{...}", so insert after the opening brace.
  std::string inner = report.dist_json();
  std::string head = "{\"job\": " + std::to_string(job) + ", \"name\": \"" +
                     obs::json_escape(name) + "\", \"state\": \"" +
                     std::string(dist::name(state)) + "\", ";
  return head + inner.substr(1);
}

/// One worker connection and its service-side state.
struct SConn {
  std::unique_ptr<FrameChannel> ch;
  BoundedWriteQueue out;
  bool configured = false;
  bool shutting_down = false;
  std::uint64_t worker_id = 0;
  std::uint64_t pid = 0;
  bool has_shard = false;
  std::size_t shard = 0;
  std::uint64_t shard_job = 0;
  std::set<std::uint64_t> jobs_sent;  ///< JobConfig already queued

  explicit SConn(std::size_t qcap) : out(qcap) {}
};

/// One admitted job.
struct SJob {
  JobSpec spec;
  LeaseTable table;
  JobReport rep;

  SJob(std::uint64_t id, JobSpec s, std::size_t shard_files)
      : spec(std::move(s)), table(spec.nfiles, shard_files) {
    rep.job = id;
    rep.name = spec.name;
    rep.report.shards = table.shard_count();
  }
};

struct JobService::Impl {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::function<void(const ServiceEvent&)> hook;
  std::map<std::uint64_t, SJob> jobs;  ///< ordered = submission order
  std::vector<std::unique_ptr<SConn>> conns;
  std::uint64_t next_job = 1;
  std::uint64_t rr_cursor = 1;  ///< round-robin fairness over jobs
  std::size_t configured = 0;
  bool started = false;  ///< start barrier latched open (one-shot)
  std::size_t queued_shards = 0;  ///< not-yet-done shards, all jobs
  std::size_t write_hwm = 0;
  std::uint64_t last_activity = 0;
  bool draining = false;
  bool shutdown_sent = false;
  std::uint64_t shutdown_deadline = 0;
  bool stop = false;
  ServiceMetrics met;
};

JobService::JobService(ServiceConfig cfg) : cfg_(std::move(cfg)) {
  register_dist_metrics();
  impl_ = std::make_unique<Impl>();
  impl_->met = service_metrics();
  impl_->last_activity = now_ms();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("dist: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("dist: cannot bind/listen on service port");
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) ==
      0)
    port_ = ntohs(addr.sin_port);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("dist: pipe2() failed");
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];

  thread_ = std::thread([this] { loop(); });
}

JobService::~JobService() {
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  const char b = 1;
  (void)!::write(wake_wr_, &b, 1);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
}

void JobService::set_event_hook(std::function<void(const ServiceEvent&)> hook) {
  std::lock_guard<std::mutex> lk(impl_->mu);
  impl_->hook = std::move(hook);
}

std::optional<std::uint64_t> JobService::submit(const JobSpec& spec) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  std::size_t running = 0;
  for (const auto& [id, j] : impl_->jobs)
    if (j.rep.state == JobState::kRunning) ++running;
  std::size_t shard_files = spec.shard_files;
  if (shard_files == 0) {
    const std::size_t target_shards =
        std::max<std::size_t>(8, 4 * std::max(1u, cfg_.expected_workers));
    shard_files = std::max<std::size_t>(1, spec.nfiles / target_shards);
  }
  const std::size_t new_shards =
      shard_files == 0 ? 0 : (spec.nfiles + shard_files - 1) / shard_files;
  if (impl_->draining || running >= cfg_.limits.max_jobs ||
      impl_->queued_shards + new_shards > cfg_.limits.max_queued_shards) {
    impl_->met.jobs_rejected.add(1);
    return std::nullopt;
  }
  const std::uint64_t id = impl_->next_job++;
  impl_->jobs.emplace(std::piecewise_construct, std::forward_as_tuple(id),
                      std::forward_as_tuple(id, spec, shard_files));
  impl_->queued_shards += impl_->jobs.at(id).table.shard_count();
  impl_->met.jobs_submitted.add(1);
  lk.unlock();
  const char b = 1;
  (void)!::write(wake_wr_, &b, 1);
  return id;
}

bool JobService::cancel(std::uint64_t job) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  auto it = impl_->jobs.find(job);
  if (it == impl_->jobs.end() || it->second.rep.state != JobState::kRunning)
    return false;
  SJob& j = it->second;
  j.rep.state = JobState::kCancelled;
  j.rep.report.complete = false;
  j.rep.report.reassigned = j.table.reassigned_count();
  impl_->queued_shards -= j.table.shard_count() - j.table.done_count();
  impl_->met.jobs_cancelled.add(1);
  if (impl_->hook)
    impl_->hook(ServiceEvent{ServiceEvent::Kind::kJobCancelled, 0, 0, 0, job});
  impl_->cv.notify_all();
  lk.unlock();
  const char b = 1;
  (void)!::write(wake_wr_, &b, 1);
  return true;
}

JobReport JobService::wait(std::uint64_t job) {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->cv.wait(lk, [&] {
    auto it = impl_->jobs.find(job);
    return it == impl_->jobs.end() ||
           it->second.rep.state != JobState::kRunning;
  });
  auto it = impl_->jobs.find(job);
  if (it == impl_->jobs.end()) return JobReport{};
  return it->second.rep;
}

std::optional<JobReport> JobService::status(std::uint64_t job) const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  auto it = impl_->jobs.find(job);
  if (it == impl_->jobs.end()) return std::nullopt;
  return it->second.rep;
}

std::vector<JobReport> JobService::drain() {
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->draining = true;
  impl_->cv.wait(lk, [&] {
    for (const auto& [id, j] : impl_->jobs)
      if (j.rep.state == JobState::kRunning) return false;
    return true;
  });
  lk.unlock();
  {
    const char b = 1;
    (void)!::write(wake_wr_, &b, 1);
  }
  // The loop notices draining + no running jobs, sends Shutdown to the
  // pool, collects Goodbyes, then parks. Wait for the pool to empty.
  lk.lock();
  impl_->cv.wait_for(lk, std::chrono::milliseconds(7000),
                     [&] { return impl_->conns.empty(); });
  std::vector<JobReport> out;
  out.reserve(impl_->jobs.size());
  for (const auto& [id, j] : impl_->jobs) out.push_back(j.rep);
  return out;
}

std::string JobService::jobs_json() const {
  std::lock_guard<std::mutex> lk(impl_->mu);
  std::string out = "[";
  bool first = true;
  for (const auto& [id, j] : impl_->jobs) {
    if (!first) out += ", ";
    first = false;
    out += j.rep.json();
  }
  out += "]";
  return out;
}

void JobService::loop() {
  Impl& im = *impl_;
  const int ep = ::epoll_create1(0);
  if (ep < 0) return;
  auto add_fd = [&](int fd, std::uint64_t tag) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = tag;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  };
  // Tags: 0 = listen, 1 = wake pipe, otherwise fd + 2 of a connection
  // (fds are looked up by value; connections are few).
  add_fd(listen_fd_, 0);
  add_fd(wake_rd_, 1);

  std::unique_lock<std::mutex> lk(im.mu);

  auto emit = [&](ServiceEvent::Kind kind, const SConn& c, std::size_t shard,
                  std::uint64_t job) {
    if (im.hook)
      im.hook(ServiceEvent{kind, c.worker_id, c.pid, shard, job});
  };

  auto note_hwm = [&](const SConn& c) {
    if (c.out.hwm() > im.write_hwm) {
      im.met.write_queue_hwm.add(c.out.hwm() - im.write_hwm);
      im.write_hwm = c.out.hwm();
    }
  };

  // Queue one frame on a connection (true on success). The queue is
  // drained after every scheduling pass; frames that do not fit leave
  // the connection alone until it drains.
  auto enqueue = [&](SConn& c, MsgType t, util::Bytes payload) {
    const bool ok = c.out.push(t, std::move(payload));
    if (ok) note_hwm(c);
    return ok;
  };

  auto flush_conn = [&](SConn& c) {
    MsgType t;
    util::Bytes payload;
    while (c.out.pop(&t, &payload)) {
      if (!c.ch->send(t, util::ByteView(payload))) break;
    }
  };

  auto drop_conn = [&](std::size_t i, bool lost) {
    SConn& c = *im.conns[i];
    if (lost && c.configured && !c.shutting_down) {
      for (auto& [id, j] : im.jobs)
        if (j.rep.state == JobState::kRunning)
          j.table.revoke_worker(c.worker_id);
      im.met.lost.add(1);
      emit(ServiceEvent::Kind::kWorkerLost, c,
           c.has_shard ? c.shard : 0, c.has_shard ? c.shard_job : 0);
    }
    if (c.configured) im.configured--;
    im.conns.erase(im.conns.begin() + static_cast<std::ptrdiff_t>(i));
  };

  auto worker_info = [&](SJob& j, const SConn& c) -> DistReport::WorkerInfo& {
    for (auto& w : j.rep.report.workers)
      if (w.worker_id == c.worker_id) return w;
    j.rep.report.workers.push_back({c.worker_id, c.pid, 0, false, "", {}});
    return j.rep.report.workers.back();
  };

  auto finish_job = [&](SJob& j) {
    j.rep.state = JobState::kDone;
    j.rep.report.complete = true;
    j.rep.report.reassigned = j.table.reassigned_count();
    im.met.jobs_completed.add(1);
    im.cv.notify_all();
  };

  // Grant the next pending shard to an idle configured connection,
  // round-robin over running jobs for cross-job fairness.  The start
  // barrier is a one-shot latch: once the expected pool has checked in
  // it stays open, so a worker death mid-run never re-arms it (which
  // would starve the survivors until their recv timeout).
  const bool barrier = cfg_.expected_workers > 0;
  auto try_grant = [&](SConn& c) {
    if (!c.configured || c.has_shard || c.shutting_down) return;
    if (im.configured >= cfg_.expected_workers) im.started = true;
    if (barrier && !im.started) return;
    if (im.jobs.empty()) return;
    // A grant may need two frames (JobConfig + LeaseGrant); defer the
    // whole grant when the queue cannot take both.
    if (c.out.capacity() - c.out.size() < 2) {
      im.met.grants_deferred.add(1);
      return;
    }
    auto it = im.jobs.lower_bound(im.rr_cursor);
    for (std::size_t n = im.jobs.size() + 1; n-- > 0;) {
      if (it == im.jobs.end()) it = im.jobs.begin();
      SJob& j = it->second;
      const std::uint64_t jid = it->first;
      ++it;
      if (j.rep.state != JobState::kRunning) continue;
      const std::uint64_t deadline = now_ms() + cfg_.lease_timeout_ms;
      const auto idx = j.table.acquire(c.worker_id, deadline);
      if (!idx) continue;
      const Shard& s = j.table.shard(*idx);
      if (s.grants > 1) {
        im.met.reassigned.add(1);
        emit(ServiceEvent::Kind::kLeaseReassigned, c, *idx, jid);
      }
      im.met.granted.add(1);
      if (!c.jobs_sent.count(jid)) {
        JobConfigMsg jc{jid, j.spec.name, j.spec.run};
        enqueue(c, MsgType::kJobConfig, encode(jc));
        c.jobs_sent.insert(jid);
      }
      LeaseGrantMsg g{*idx, s.epoch, s.begin, s.end, jid};
      enqueue(c, MsgType::kLeaseGrant, encode(g));
      c.has_shard = true;
      c.shard = *idx;
      c.shard_job = jid;
      im.rr_cursor = jid + 1;  // next idle conn starts at the next job
      return;
    }
  };

  std::vector<epoll_event> events(32);
  while (true) {
    if (im.stop) break;

    const bool any_running = [&] {
      for (const auto& [id, j] : im.jobs)
        if (j.rep.state == JobState::kRunning) return true;
      return false;
    }();

    // Graceful drain: once drain() was called and every job is
    // terminal, shut the pool down and wait (bounded) for Goodbyes.
    if (im.draining && !any_running) {
      if (!im.shutdown_sent) {
        im.shutdown_sent = true;
        im.shutdown_deadline = now_ms() + 5000;
        for (auto& c : im.conns) {
          if (c->configured && !c->shutting_down) {
            enqueue(*c, MsgType::kShutdown, {});
            c->shutting_down = true;
          }
        }
      }
      if (im.conns.empty() || now_ms() > im.shutdown_deadline) {
        for (std::size_t i = im.conns.size(); i-- > 0;) drop_conn(i, false);
        im.cv.notify_all();
        // Stay alive for post-drain queries until the destructor.
      }
    }

    // A dead fleet must not hang wait(): abort running jobs when no
    // worker has been around for idle_abort_ms.
    if (any_running && im.conns.empty() &&
        now_ms() - im.last_activity > cfg_.idle_abort_ms) {
      for (auto& [id, j] : im.jobs) {
        if (j.rep.state != JobState::kRunning) continue;
        j.rep.state = JobState::kAborted;
        j.rep.report.complete = false;
        j.rep.report.reassigned = j.table.reassigned_count();
        im.queued_shards -= j.table.shard_count() - j.table.done_count();
      }
      im.cv.notify_all();
    }

    for (auto& c : im.conns) {
      try_grant(*c);
      flush_conn(*c);
    }

    lk.unlock();
    const int nev =
        ::epoll_wait(ep, events.data(), static_cast<int>(events.size()), 200);
    lk.lock();
    if (nev < 0 && errno != EINTR) break;

    for (int e = 0; e < std::max(nev, 0); ++e) {
      const std::uint64_t tag = events[static_cast<std::size_t>(e)].data.u64;
      if (tag == 1) {
        char buf[64];
        while (::read(wake_rd_, buf, sizeof buf) > 0) {
        }
        continue;
      }
      if (tag == 0) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          auto c = std::make_unique<SConn>(cfg_.limits.max_write_queue);
          c->ch = std::make_unique<FrameChannel>(fd);
          add_fd(fd, static_cast<std::uint64_t>(fd) + 2);
          im.conns.push_back(std::move(c));
          im.last_activity = now_ms();
        }
        continue;
      }
      const int fd = static_cast<int>(tag - 2);
      std::size_t ci = im.conns.size();
      for (std::size_t i = 0; i < im.conns.size(); ++i)
        if (im.conns[i]->ch->fd() == fd) {
          ci = i;
          break;
        }
      if (ci == im.conns.size()) continue;  // already dropped
      SConn& c = *im.conns[ci];
      Frame f;
      if (!c.ch->recv(&f, 2000)) {
        drop_conn(ci, true);
        continue;
      }
      im.last_activity = now_ms();
      switch (f.type) {
        case MsgType::kHello: {
          const auto m = decode_hello(util::ByteView(f.payload));
          if (!m || m->proto != kProtocolVersion) {
            drop_conn(ci, false);
            break;
          }
          c.worker_id = m->worker_id;
          c.pid = m->pid;
          enqueue(c, MsgType::kConfig, encode(placeholder_config()));
          c.configured = true;
          im.configured++;
          im.met.connected.add(1);
          emit(ServiceEvent::Kind::kWorkerConnected, c, 0, 0);
          if (im.draining && im.shutdown_sent) {
            enqueue(c, MsgType::kShutdown, {});
            c.shutting_down = true;
          }
          break;
        }
        case MsgType::kHeartbeat: {
          const auto m = decode_heartbeat(util::ByteView(f.payload));
          if (m) {
            im.met.heartbeats.add(1);
            auto it = im.jobs.find(m->job);
            if (it != im.jobs.end() &&
                it->second.rep.state == JobState::kRunning)
              it->second.table.extend(m->shard, m->epoch, c.worker_id,
                                      now_ms() + cfg_.lease_timeout_ms);
          }
          break;
        }
        case MsgType::kLeaseResult: {
          const auto m = decode_lease_result(util::ByteView(f.payload));
          if (!m) {
            drop_conn(ci, true);
            break;
          }
          c.has_shard = false;
          auto it = im.jobs.find(m->job);
          if (it == im.jobs.end() ||
              it->second.rep.state != JobState::kRunning) {
            // Unknown or no-longer-running (cancelled/aborted) job:
            // the work is discarded exactly like a stale epoch.
            im.met.stale.add(1);
            if (it != im.jobs.end()) it->second.rep.report.stale_results++;
            break;
          }
          SJob& j = it->second;
          const DeliverOutcome out =
              j.table.deliver(m->shard, m->epoch, c.worker_id);
          if (out == DeliverOutcome::kAccepted) {
            j.rep.report.stats.merge(m->stats);
            DistReport::WorkerInfo& w = worker_info(j, c);
            w.shards_accepted++;
            obs::Registry& reg = obs::Registry::global();
            for (const obs::CounterDelta& d : m->deltas) {
              // Replay the worker's deterministic growth: the service
              // aggregate equals the sum of its jobs' single-process
              // runs, and each job's per-worker decomposition carries
              // its own share (the per-job accounting identity).
              reg.counter(d.name, obs::Tag::kDeterministic).add(d.delta);
              w.metrics[d.name] += d.delta;
            }
            im.queued_shards--;
            im.met.accepted.add(1);
            emit(ServiceEvent::Kind::kResultAccepted, c, m->shard, m->job);
            if (j.table.complete()) {
              finish_job(j);
              emit(ServiceEvent::Kind::kJobDone, c, 0, m->job);
            }
          } else {
            im.met.stale.add(1);
            j.rep.report.stale_results++;
          }
          break;
        }
        case MsgType::kGoodbye: {
          const auto m = decode_goodbye(util::ByteView(f.payload));
          if (m && c.configured) {
            for (auto& [id, j] : im.jobs) {
              for (auto& w : j.rep.report.workers) {
                if (w.worker_id != c.worker_id) continue;
                w.clean_exit = true;
                w.manifest = m->manifest_path;
              }
            }
          }
          drop_conn(ci, false);
          if (im.conns.empty()) im.cv.notify_all();
          break;
        }
        default:
          drop_conn(ci, true);
          break;
      }
    }

    for (auto& [id, j] : im.jobs)
      if (j.rep.state == JobState::kRunning) j.table.expire(now_ms());
    for (auto& c : im.conns) {
      try_grant(*c);
      flush_conn(*c);
    }
  }

  ::close(ep);
}

}  // namespace cksum::dist
