// Precomputed splice-corpus store — the streaming half of the
// line-rate refactor (docs/CORPUS.md).
//
// `run_filesystem` regenerates every file and re-packetises it (AAL5
// framing + five checksum families per cell) on every run; for a
// fixed corpus that work is identical each time. A corpus store runs
// the packetiser ONCE and persists everything evaluate_pair consumes
// — per-cell partial sums laid out SoA, per-packet transport
// partials, header-check verdicts, and the raw PDU bytes the slow
// path materialises from — in a single mmap-able arena, so workers
// stream shards at memcpy speed instead of checksum speed.
//
// On-disk layout (native-endian, the endian tag rejects foreign
// files):
//
//   [CorpusHeader]            sealed by header_crc (field zeroed)
//   [SectionRec x n]          kind/offset/size table
//   [sections ...]            each offset 64-byte aligned, zero padded
//
// seal_crc covers every byte after the header (section table
// included), so any bit flip in the body is detected before use; the
// header has its own CRC so a flipped length/offset can never send
// the reader out of bounds — every structural invariant is checked at
// open() with an explicit reason, never by faulting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pdu_model.hpp"
#include "fsgen/profile.hpp"
#include "net/flow.hpp"

namespace cksum::fsgen {

/// Magic + version. The version is part of the magic string so a
/// future incompatible layout is rejected byte-for-byte.
inline constexpr char kCorpusMagic[8] = {'C', 'K', 'C', 'O',
                                         'R', 'P', '0', '1'};
inline constexpr std::uint32_t kCorpusEndianTag = 0x01020304;
inline constexpr std::uint32_t kCorpusVersion = 1;
inline constexpr std::size_t kCorpusAlign = 64;

/// Everything that went into packetising the corpus. Persisted in the
/// header: a store is only valid for the exact flow it was built
/// with (the transport checksum is written into the packet bytes),
/// so readers take their run configuration FROM the store instead of
/// trusting the caller to repeat it.
struct CorpusBuildParams {
  std::string profile;  ///< display name (informational)
  double scale = 1.0;
  net::FlowConfig flow;
  bool compress = false;  ///< files were LZW-compressed before transfer
};

/// Section kinds. Cell partials are SoA: one section per column, each
/// indexed by the same global cell index.
enum class CorpusSection : std::uint32_t {
  kFiles = 1,      ///< FileRec[file_count]
  kPackets = 2,    ///< PacketRec[packet_count]
  kCellInet = 3,   ///< u16[cell_count]
  kCellF255 = 4,   ///< {u32 a, u32 b}[cell_count]
  kCellF256 = 5,   ///< {u32 a, u32 b}[cell_count]
  kCellCrc = 6,    ///< u32[cell_count]
  kCellHash = 7,   ///< u64[cell_count]
  kCellKd = 8,     ///< {u32 a, u32 b}[cell_count] Koopman dual
  kCellKs = 9,     ///< u64[cell_count] Koopman single
  kHdrOk = 10,     ///< u8 blob, per-packet [hdr_begin, +cell_count-1)
  kPduBytes = 11,  ///< raw PDU bytes, per-packet [pdu_offset, +48*cells)
};

struct CorpusSectionRec {
  std::uint32_t kind = 0;
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  ///< from file start, kCorpusAlign-aligned
  std::uint64_t size = 0;    ///< payload bytes (padding not included)
};
static_assert(sizeof(CorpusSectionRec) == 24);

/// Fixed-size per-packet record: SimPacket minus the per-cell columns.
struct CorpusPacketRec {
  std::uint64_t cell_begin = 0;  ///< first index into the cell columns
  std::uint64_t hdr_begin = 0;   ///< first index into kHdrOk
  std::uint64_t pdu_offset = 0;  ///< byte offset into kPduBytes
  std::uint64_t eom_cov_hash = 0;
  std::uint64_t eom_ks = 0;
  std::uint64_t ks_pdu = 0;
  std::uint32_t cell_count = 0;
  std::uint32_t stored_crc = 0;
  std::uint32_t crc_head44 = 0;
  std::uint32_t eom_kd_a = 0, eom_kd_b = 0;
  std::uint32_t kd_pdu_a = 0, kd_pdu_b = 0;
  std::uint32_t head_f255_a = 0, head_f255_b = 0;
  std::uint32_t head_f256_a = 0, head_f256_b = 0;
  std::uint32_t eom_f255_a = 0, eom_f255_b = 0;
  std::uint32_t eom_f256_a = 0, eom_f256_b = 0;
  std::uint32_t eom_len = 0;
  std::uint16_t total_len = 0;
  std::uint16_t head_sum = 0;
  std::uint16_t eom_sum = 0;
  std::uint16_t stored = 0;
  std::uint8_t fast_path_ok = 0;
  std::uint8_t hdr_require_ipck = 0;
  std::uint8_t hdr_legacy95 = 0;
  std::uint8_t pad[5] = {};
};
static_assert(sizeof(CorpusPacketRec) == 128);

struct CorpusFileRec {
  std::uint64_t packet_begin = 0;
  std::uint64_t packet_count = 0;
};
static_assert(sizeof(CorpusFileRec) == 16);

/// Summary returned by info() (and printed by `cksumlab corpus info`).
struct CorpusInfo {
  std::uint32_t version = 0;
  std::uint64_t file_size = 0;
  std::uint64_t files = 0;
  std::uint64_t packets = 0;
  std::uint64_t cells = 0;
  std::uint64_t pdu_bytes = 0;
  CorpusBuildParams params;
};

/// Packetise every file of `fs` under `params` and write the sealed
/// store to `path`. Returns false with a reason in *error (the
/// partial output file is removed).
bool build_corpus(const CorpusBuildParams& params, const Filesystem& fs,
                  const std::string& path, std::string* error);

/// Seal already-packetised files — the corpus-from-capture path
/// (src/trace/ingest.hpp feeds this). `files` must be grouped exactly
/// as packetize_file would have produced them under params.flow;
/// params.compress is recorded but no compression happens here (a
/// capture carries post-compression bytes already).
bool build_corpus(const CorpusBuildParams& params,
                  const std::vector<std::vector<core::SimPacket>>& files,
                  const std::string& path, std::string* error);

/// Read side: mmaps the file, validates magic/version/endianness/
/// CRCs/section bounds/alignment and every packet index once, then
/// serves packets by memcpy-reconstruction. Thread-safe after open()
/// (all reads are const over the mapping).
class CorpusReader {
 public:
  /// nullptr + reason in *error on any validation failure. Never
  /// faults on truncated or corrupted input.
  static std::unique_ptr<CorpusReader> open(const std::string& path,
                                            std::string* error);
  ~CorpusReader();
  CorpusReader(const CorpusReader&) = delete;
  CorpusReader& operator=(const CorpusReader&) = delete;

  const CorpusInfo& info() const noexcept { return info_; }
  std::size_t file_count() const noexcept {
    return static_cast<std::size_t>(info_.files);
  }

  /// Reconstruct file i's packets, bitwise-equal to
  /// packetize_file(params.flow, <file bytes>) on the original data
  /// (asserted by tests/test_corpus_store.cpp for every registry
  /// checksum). No checksum is recomputed.
  std::vector<core::SimPacket> file_packets(std::size_t i) const;

  /// Ask the kernel to prefetch the byte ranges files [begin, end)
  /// touch — each SoA column slice plus the packet records and PDU
  /// bytes — via posix_madvise(WILLNEED). Purely advisory: a shard
  /// streams correctly (just colder) if the call is a no-op, so
  /// failures are ignored. Called by core::run_corpus_range at the
  /// start of every lease (docs/PERF.md).
  void advise_will_need(std::size_t begin, std::size_t end) const;

 private:
  CorpusReader() = default;

  const std::uint8_t* base_ = nullptr;  ///< mmap base
  std::size_t map_len_ = 0;
  CorpusInfo info_;
  // Section payloads (validated in-bounds at open).
  const CorpusFileRec* files_ = nullptr;
  const CorpusPacketRec* packets_ = nullptr;
  const std::uint16_t* cell_inet_ = nullptr;
  const std::uint32_t* cell_f255_ = nullptr;  ///< a,b interleaved
  const std::uint32_t* cell_f256_ = nullptr;
  const std::uint32_t* cell_crc_ = nullptr;
  const std::uint64_t* cell_hash_ = nullptr;
  const std::uint32_t* cell_kd_ = nullptr;  ///< a,b interleaved
  const std::uint64_t* cell_ks_ = nullptr;
  const std::uint8_t* hdr_ok_ = nullptr;
  std::uint64_t hdr_ok_size_ = 0;
  const std::uint8_t* pdu_bytes_ = nullptr;
};

}  // namespace cksum::fsgen
