// The coordinator side of the distributed splice service.
//
// One poll()-driven thread owns the listening socket, every worker
// connection, and the LeaseTable. Workers connect, announce themselves
// (Hello), receive the run configuration (Config), and are then fed
// shard leases until the table is complete. Heartbeats extend lease
// deadlines; a connection that dies or goes silent has its leases
// revoked and re-granted to the next idle worker, with lease epochs
// guaranteeing each shard is merged at most once.
//
// Because SpliceStats and every deterministic counter are purely
// additive, the merged report and the aggregate manifest's
// deterministic view are bitwise identical to a single-process run —
// including runs where workers were lost and shards re-evaluated
// (docs/DIST.md walks the failure matrix).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dist/protocol.hpp"

namespace cksum::dist {

struct DistConfig {
  ConfigMsg run;              ///< shipped verbatim to every worker
  std::size_t nfiles = 0;     ///< corpus file count (shard space)
  /// Workers the run was provisioned with. Grants are held back until
  /// this many are connected and configured, so every worker
  /// participates from shard zero — which is what lets the fault
  /// drills deterministically kill a worker that holds a lease. 0
  /// disables the barrier.
  unsigned expected_workers = 0;
  std::size_t shard_files = 0;  ///< files per shard; 0 = auto
  std::uint16_t port = 0;       ///< listen port; 0 = ephemeral
  std::uint64_t lease_timeout_ms = 15000;
  /// Abort an incomplete run when no worker is connected and none has
  /// arrived for this long — a dead fleet must not hang the driver.
  std::uint64_t idle_abort_ms = 30000;
};

/// Observer callbacks from inside the coordinator loop.
struct DistEvent {
  enum class Kind : std::uint8_t {
    kWorkerConnected,
    kResultAccepted,
    kLeaseReassigned,
    kWorkerLost,
  };
  Kind kind;
  std::uint64_t worker_id = 0;
  std::uint64_t pid = 0;
  std::size_t shard = 0;
};

struct DistReport {
  core::SpliceStats stats;  ///< merged over all accepted shard results
  bool complete = false;    ///< every shard delivered (else aborted)
  std::size_t shards = 0;
  std::size_t reassigned = 0;    ///< re-grants after loss/expiry
  std::size_t stale_results = 0; ///< superseded-epoch deliveries dropped

  struct WorkerInfo {
    std::uint64_t worker_id = 0;
    std::uint64_t pid = 0;
    std::size_t shards_accepted = 0;
    bool clean_exit = false;   ///< sent Goodbye
    std::string manifest;      ///< worker's sub-manifest path ("" = none)
    /// Sum of accepted deterministic-counter deltas, keyed by metric
    /// name — the per-worker decomposition the aggregate manifest
    /// embeds (checked by scripts/check_manifest.py --require-dist).
    std::map<std::string, std::uint64_t> metrics;
  };
  std::vector<WorkerInfo> workers;

  /// The manifest's "dist" member (without the surrounding key), e.g.
  /// {"workers": 3, "shards": 6, ..., "per_worker": [...]}.
  std::string dist_json() const;
};

class Coordinator {
 public:
  /// Binds and listens immediately (throws std::runtime_error on
  /// failure) so port() is valid before workers are spawned.
  explicit Coordinator(DistConfig cfg);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Drive the run to completion (or abort). Blocking; the hook (may
  /// be null) fires from inside the loop.
  DistReport run(std::function<void(const DistEvent&)> hook = nullptr);

 private:
  struct Impl;
  DistConfig cfg_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
};

}  // namespace cksum::dist
