// Per-cell partial-sum model: each precomputed piece must reconstruct
// the corresponding whole-message quantity computed directly.
#include <gtest/gtest.h>

#include "core/pdu_model.hpp"
#include "fsgen/generator.hpp"
#include "util/rng.hpp"

namespace cksum::core {
namespace {

using util::ByteView;
using util::Bytes;

net::Packet make_packet(const net::PacketConfig& cfg, std::size_t payload_len,
                        std::uint64_t seed) {
  Bytes payload(payload_len);
  util::Rng rng(seed);
  rng.fill(payload);
  return net::build_packet(cfg, 1000, 3, ByteView(payload));
}

TEST(PduModel, CellPartialsMatchDirectComputation) {
  const net::PacketConfig cfg;
  const SimPacket sp = make_sim_packet(cfg, make_packet(cfg, 256, 1));
  ASSERT_EQ(sp.pdu.num_cells(), 7u);
  for (std::size_t i = 0; i < sp.pdu.num_cells(); ++i) {
    const ByteView cell = sp.pdu.cell(i);
    EXPECT_EQ(sp.cells[i].inet, alg::internet_sum(cell));
    EXPECT_EQ(sp.cells[i].f255,
              alg::fletcher_block(cell, alg::FletcherMod::kOnes255));
    EXPECT_EQ(sp.cells[i].f256,
              alg::fletcher_block(cell, alg::FletcherMod::kTwos256));
    EXPECT_EQ(sp.cells[i].crc, alg::crc32(cell));
  }
}

TEST(PduModel, FoldedCellCrcsReconstructStoredCrc) {
  const net::PacketConfig cfg;
  const SimPacket sp = make_sim_packet(cfg, make_packet(cfg, 256, 2));
  const alg::CrcCombiner c48(48), c44(44);
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i + 1 < sp.pdu.num_cells(); ++i)
    crc = i == 0 ? sp.cells[i].crc : c48.combine(crc, sp.cells[i].crc);
  crc = c44.combine(crc, sp.crc_head44);
  EXPECT_EQ(crc, sp.stored_crc);
}

TEST(PduModel, HeadAndEomPartialsReconstructCoverageSum) {
  // head_sum + middle cells + eom_sum == Internet sum over the
  // checksum coverage with the field zeroed — i.e. the stored field
  // complements it.
  const net::PacketConfig cfg;
  const SimPacket sp = make_sim_packet(cfg, make_packet(cfg, 256, 3));
  std::uint64_t acc = sp.tp.head_sum;
  for (std::size_t i = 1; i + 1 < sp.pdu.num_cells(); ++i)
    acc += sp.cells[i].inet;
  acc += sp.tp.eom_sum;
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  const std::uint16_t content = static_cast<std::uint16_t>(acc);
  EXPECT_EQ(alg::ones_canonical(sp.tp.stored),
            alg::ones_canonical(alg::ones_neg(content)));
}

TEST(PduModel, FletcherPartialsReconstructZeroSum) {
  for (const auto transport :
       {alg::Algorithm::kFletcher255, alg::Algorithm::kFletcher256}) {
    net::PacketConfig cfg;
    cfg.transport = transport;
    const bool mod255 = transport == alg::Algorithm::kFletcher255;
    const auto mod = mod255 ? alg::FletcherMod::kOnes255
                            : alg::FletcherMod::kTwos256;
    const SimPacket sp = make_sim_packet(cfg, make_packet(cfg, 256, 4));

    alg::FletcherPair acc = mod255 ? sp.tp.head_f255 : sp.tp.head_f256;
    for (std::size_t i = 1; i + 1 < sp.pdu.num_cells(); ++i) {
      const auto& fp = mod255 ? sp.cells[i].f255 : sp.cells[i].f256;
      acc = alg::fletcher_combine(acc, fp, 48, mod);
    }
    const auto& eom = mod255 ? sp.tp.eom_f255 : sp.tp.eom_f256;
    acc = alg::fletcher_combine(acc, eom, sp.tp.eom_len, mod);
    EXPECT_TRUE(alg::fletcher_is_zero(acc))
        << "transport " << static_cast<int>(transport);
  }
}

TEST(PduModel, TrailerModePartials) {
  net::PacketConfig cfg;
  cfg.placement = net::ChecksumPlacement::kTrailer;
  const SimPacket sp = make_sim_packet(cfg, make_packet(cfg, 256, 5));
  ASSERT_TRUE(sp.fast_path_ok);
  // Content sum (check bytes excluded) complements the stored value.
  std::uint64_t acc = sp.tp.head_sum;
  for (std::size_t i = 1; i + 1 < sp.pdu.num_cells(); ++i)
    acc += sp.cells[i].inet;
  acc += sp.tp.eom_sum;
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  EXPECT_EQ(alg::ones_canonical(sp.tp.stored),
            alg::ones_canonical(
                alg::ones_neg(static_cast<std::uint16_t>(acc))));
}

TEST(PduModel, RuntPacketsFlaggedIrregular) {
  const net::PacketConfig cfg;
  // 1..7-byte payloads: the 41..47-byte datagram ends before the EOM
  // cell, so non-EOM cells of a splice could carry pad bytes.
  for (std::size_t len = 1; len <= 7; ++len) {
    const SimPacket sp = make_sim_packet(cfg, make_packet(cfg, len, len));
    EXPECT_FALSE(sp.fast_path_ok) << "payload " << len;
  }
  // 8+ bytes: the datagram reaches the EOM cell boundary.
  const SimPacket ok = make_sim_packet(cfg, make_packet(cfg, 8, 99));
  EXPECT_TRUE(ok.fast_path_ok);
  const SimPacket full = make_sim_packet(cfg, make_packet(cfg, 256, 98));
  EXPECT_TRUE(full.fast_path_ok);
}

TEST(PduModel, EomCoverageHashExcludesTrailerBytesInTrailerMode) {
  net::PacketConfig header_cfg;
  net::PacketConfig trailer_cfg;
  trailer_cfg.placement = net::ChecksumPlacement::kTrailer;
  // Same payload; the trailer-mode EOM hash must ignore the 2 check
  // bytes, so two packets differing only in seq have equal EOM hashes
  // in trailer mode (payload tail identical) but different trailer
  // check values.
  Bytes payload(256, 0x11);
  const auto p1 = make_sim_packet(
      trailer_cfg, net::build_packet(trailer_cfg, 1, 1, ByteView(payload)));
  const auto p2 = make_sim_packet(
      trailer_cfg, net::build_packet(trailer_cfg, 257, 2, ByteView(payload)));
  EXPECT_NE(p1.tp.stored, p2.tp.stored);
  EXPECT_EQ(p1.eom_cov_hash, p2.eom_cov_hash);
}

TEST(PduModel, PacketizeFileShape) {
  const net::FlowConfig cfg;
  const Bytes file = fsgen::generate_file(fsgen::FileKind::kText, 6, 1000);
  const auto pkts = packetize_file(cfg, ByteView(file));
  ASSERT_EQ(pkts.size(), (file.size() + 255) / 256);
  for (const auto& p : pkts) {
    EXPECT_EQ(p.pdu.trailer().length, p.total_len);
    EXPECT_TRUE(atm::crc_ok(p.pdu.bytes()));
  }
}

}  // namespace
}  // namespace cksum::core
