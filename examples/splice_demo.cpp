// Splice demo: build two adjacent TCP/IP-over-AAL5 packets from
// zero-heavy "profiling" data, enumerate every cell splice, and show a
// concrete splice that the 16-bit TCP checksum accepts while the AAL5
// CRC-32 catches it — the paper's Figure 1 scenario made tangible.
//
//   $ ./examples/splice_demo
#include <cstdio>

#include "atm/splice.hpp"
#include "core/experiments.hpp"
#include "core/pdu_model.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/generator.hpp"

using namespace cksum;

namespace {

void describe(const atm::SpliceSpec& s, std::size_t n1, std::size_t n2) {
  std::printf("  splice keeps pkt1 cells [");
  for (std::size_t i = 0; i + 1 < n1; ++i)
    if (s.mask1 & (1u << i)) std::printf(" %zu", i);
  std::printf(" ] ++ pkt2 cells [");
  for (std::size_t j = 0; j + 1 < n2; ++j)
    if (s.mask2 & (1u << j)) std::printf(" %zu", j);
  std::printf(" %zu(EOM) ]\n", n2 - 1);
}

}  // namespace

int main() {
  // gmon-style data: mostly zeros with sparse identical counters — the
  // paper's canonical TCP-checksum pathology (§5.5).
  const util::Bytes file =
      fsgen::generate_file(fsgen::FileKind::kGmonProfile, 2024, 40000);

  const net::FlowConfig flow = core::paper_flow_config();
  const auto pkts = core::packetize_file(flow, util::ByteView(file));
  std::printf("transfer: %zu bytes -> %zu packets of 256-byte segments\n",
              file.size(), pkts.size());

  std::size_t shown = 0;
  std::uint64_t total = 0, missed = 0;
  for (std::size_t i = 0; i + 1 < pkts.size() && shown < 3; ++i) {
    const auto& p1 = pkts[i];
    const auto& p2 = pkts[i + 1];
    atm::for_each_splice(
        p1.pdu.num_cells(), p2.pdu.num_cells(),
        [&](const atm::SpliceSpec& s) {
          ++total;
          const core::SpliceOutcome o =
              core::evaluate_splice_reference(flow.packet, p1, p2, s);
          if (o.caught_by_header || o.identical) return;
          if (o.transport_pass) {
            ++missed;
            if (shown < 3) {
              ++shown;
              std::printf(
                  "\nundetected corruption between packets %zu and %zu "
                  "(seq %u / %u):\n",
                  i, i + 1, 1 + 256 * static_cast<unsigned>(i),
                  1 + 256 * static_cast<unsigned>(i + 1));
              describe(s, p1.pdu.num_cells(), p2.pdu.num_cells());
              std::printf(
                  "  TCP checksum: PASS (corrupted data delivered!)\n"
                  "  AAL5 CRC-32 : %s\n",
                  o.crc_pass ? "PASS (!!)" : "FAIL (splice caught)");
            }
          }
        });
  }
  if (shown == 0) {
    std::printf(
        "\nno TCP-missed splice among the first pairs (try another seed); "
        "the full filesystem runs in bench_table1..3 always find them.\n");
  }
  std::printf(
      "\nacross the first pairs examined: %llu splices, %llu passed the "
      "TCP checksum despite corrupting data.\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(missed));
  std::printf(
      "Moral (the paper's): the ones-complement sum cannot tell cells "
      "with equal sums apart, and real data is full of them.\n");
  return 0;
}
