// Table 4: Probability (%) of checksum match for substitutions of
// length k cells — Uniform / Predicted (iid convolution of the
// measured single-cell distribution) / Measured (global k-block
// congruence), over smeg:/u1.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "stats/distribution.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  core::CellStatsConfig cfg;
  cfg.ks = {1, 2, 3, 4, 5};
  const auto stats = core::collect_cell_stats(
      fsgen::profile("smeg.stanford.edu:/u1"), scale, cfg);

  const auto d1 = stats::Distribution::from_histogram(stats.tcp_cells());

  std::printf(
      "== Table 4: P[checksum match] (%%) for substitutions of length k "
      "cells (smeg:/u1) ==\n\n");
  core::TextTable t({"Length k", "Uniform", "Predicted", "Measured"});
  for (std::size_t k = 1; k <= 5; ++k) {
    const double uniform = 1.0 / 65535.0;
    const double predicted = d1.self_convolve(k).match_probability();
    const double measured = stats.tcp_blocks(k).match_probability();
    t.add_row({std::to_string(k), core::fmt_pct(uniform),
               core::fmt_pct(predicted), core::fmt_pct(measured)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): Predicted falls toward Uniform as k grows; "
      "Measured stays well above Predicted (local correlation).\n");
  return 0;
}
