#include "trace/metrics.hpp"

#include "trace/pcap_reader.hpp"

namespace cksum::trace {

const TraceMetrics& tmx() {
  static const TraceMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    TraceMetrics mx;
    mx.captures = r.counter("trace.captures");
    mx.records = r.counter("trace.records");
    mx.frame_bytes = r.counter("trace.frame_bytes");
    mx.truncated = r.counter("trace.truncated");
    mx.accepted = r.counter("trace.accepted");
    mx.rejected = r.counter("trace.rejected");
    mx.files = r.counter("trace.files");
    mx.profile_bytes = r.counter("trace.profile_bytes");
    return mx;
  }();
  return m;
}

void register_trace_metrics() { (void)tmx(); }

}  // namespace cksum::trace
