#include "atm/loss.hpp"

namespace cksum::atm {

std::vector<Cell> transmit(const std::vector<Cell>& stream,
                           const LossConfig& cfg, util::Rng& rng,
                           LossStats* stats) {
  std::vector<Cell> out;
  out.reserve(stream.size());
  LossStats local;
  local.cells_in = stream.size();

  // First pass: the raw loss process (independent or bursty).
  std::vector<bool> lost(stream.size(), false);
  bool in_burst = false;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (in_burst) {
      lost[i] = true;
      in_burst = rng.chance(cfg.burst_continue);
    } else if (rng.chance(cfg.cell_loss_rate)) {
      lost[i] = true;
      in_burst = rng.chance(cfg.burst_continue);
    }
    if (lost[i]) ++local.cells_lost;
  }

  // Second pass: discard policy, applied per PDU (EOM-delimited).
  std::size_t pdu_start = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (!stream[i].header.end_of_message() && i + 1 != stream.size())
      continue;
    const std::size_t pdu_end = i + 1;
    bool any_lost = false;
    std::size_t first_lost = pdu_end;
    for (std::size_t j = pdu_start; j < pdu_end; ++j) {
      if (lost[j]) {
        any_lost = true;
        first_lost = std::min(first_lost, j);
        break;
      }
    }
    if (any_lost) {
      switch (cfg.policy) {
        case DiscardPolicy::kNone:
          break;
        case DiscardPolicy::kPartialPacketDiscard:
          for (std::size_t j = first_lost; j < pdu_end; ++j) {
            if (!lost[j]) {
              lost[j] = true;
              ++local.cells_policy_drop;
            }
          }
          break;
        case DiscardPolicy::kEarlyPacketDiscard:
          for (std::size_t j = pdu_start; j < pdu_end; ++j) {
            if (!lost[j]) {
              lost[j] = true;
              ++local.cells_policy_drop;
            }
          }
          break;
      }
    }
    pdu_start = pdu_end;
  }

  for (std::size_t i = 0; i < stream.size(); ++i)
    if (!lost[i]) out.push_back(stream[i]);

  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace cksum::atm
