// Hardware-speed checksum kernels behind a runtime-selectable registry.
//
// Every algorithm the paper studies has one obviously-correct scalar
// formulation (byte-at-a-time, reduce every step) and one or more
// machine-width formulations that are several-fold faster but easy to
// get subtly wrong: table-slicing CRCs, SWAR ones-complement sums with
// deferred end-around carries, Fletcher/Adler loops with deferred
// modular reduction. This registry packages each formulation tier as a
// named *kernel* — a complete suite of entry points for all five
// algorithms — and routes the pipeline's hot callers through one
// process-wide selection:
//
//   scalar   the reference: byte/word-at-a-time, immediate reduction
//   slicing  slicing-by-8 CRC-32 (tables derived from GenericCrc),
//            blocked Fletcher/Fletcher-32/Adler-32 with deferred
//            modular reduction, word-at-a-time Internet sum
//   swar     slicing's integer kernels plus a 64-bit SWAR Internet
//            sum with deferred end-around-carry folding
//   best     alias for the highest-tier registered kernel
//
// Selection is a single process-wide switch: `select_kernel()` (or the
// CKSUM_KERNEL environment variable, or --kernel on cksumlab/faultlab)
// picks the kernel every dispatched call uses, so a whole splice run
// can be re-executed under a different kernel with one flag. All
// kernels are bit-identical — the conformance harness in
// tests/test_kernels.cpp differentially proves it — so results are
// bitwise-deterministic regardless of selection.
//
// The dispatched entry points record per-kernel obs counters
// (`kernel.<name>.calls` / `kernel.<name>.bytes`) so an exported run
// manifest shows which kernel did the work and how much of it.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "checksum/fletcher.hpp"
#include "checksum/fletcher32.hpp"
#include "util/bytes.hpp"

namespace cksum::alg::kern {

/// One formulation tier: a complete, bit-identical suite of entry
/// points for the five algorithms. All function pointers are non-null.
struct Kernel {
  std::string_view name;         ///< registry key ("scalar", "slicing", ...)
  std::string_view description;  ///< one-line technique summary
  int tier = 0;                  ///< "best" picks the highest tier

  /// RFC 1071 ones-complement sum (not inverted), big-endian words.
  std::uint16_t (*internet_sum)(util::ByteView data) noexcept = nullptr;
  /// 8-bit Fletcher pair, end-weighted within the block.
  FletcherPair (*fletcher)(util::ByteView data, FletcherMod mod) noexcept =
      nullptr;
  /// 32-bit Fletcher pair (16-bit big-endian words mod 65535).
  Fletcher32Pair (*fletcher32)(util::ByteView data) noexcept = nullptr;
  /// Adler-32 streaming continuation (pass 1 to start).
  std::uint32_t (*adler32)(std::uint32_t adler, util::ByteView data) noexcept =
      nullptr;
  /// CRC-32 streaming continuation over finalised values (pass 0 to
  /// start; zlib semantics, identical to alg::crc32).
  std::uint32_t (*crc32)(std::uint32_t crc, util::ByteView data) noexcept =
      nullptr;
};

/// Every registered kernel, in tier order (scalar first).
std::span<const Kernel> kernels() noexcept;

/// Look up a kernel by name; "best" resolves to the highest tier.
/// Returns nullptr for unknown names.
const Kernel* find_kernel(std::string_view name) noexcept;

/// The scalar reference kernel — what the conformance harness and the
/// differential tests compare every other kernel against.
const Kernel& scalar_kernel() noexcept;

/// The kernel dispatched calls currently use. On first use the
/// selection is initialised from the CKSUM_KERNEL environment variable
/// when it names a registered kernel (or "best"), else to "best".
const Kernel& active_kernel() noexcept;

/// Select the dispatch kernel by name ("best", "scalar", "slicing",
/// "swar"). Returns false (selection unchanged) for unknown names.
/// Intended for process startup; switching while other threads are
/// dispatching is safe but the cutover point is unspecified.
bool select_kernel(std::string_view name) noexcept;

/// Environment variable consulted on first dispatch (and by the CLI
/// drivers, which reject unknown values loudly).
inline constexpr const char* kKernelEnv = "CKSUM_KERNEL";

/// Idempotently register the kernel.* metric families for every
/// registered kernel with obs::Registry::global(), so exported
/// manifests carry the full (zero-valued) family even before the first
/// dispatched call. Tagged kScheduling: the split across kernels is a
/// property of this run's configuration, not of the corpus, and must
/// not participate in cross-configuration determinism diffs.
void register_kernel_metrics();

// --- Dispatched entry points (the hot callers' interface) -----------

std::uint16_t internet_sum(util::ByteView data) noexcept;
std::uint16_t internet_checksum(util::ByteView data) noexcept;
FletcherPair fletcher_block(util::ByteView data, FletcherMod mod) noexcept;
Fletcher32Pair fletcher32_block(util::ByteView data) noexcept;
std::uint32_t adler32(std::uint32_t adler, util::ByteView data) noexcept;
std::uint32_t crc32(std::uint32_t crc, util::ByteView data) noexcept;
inline std::uint32_t crc32(util::ByteView data) noexcept {
  return crc32(0, data);
}

}  // namespace cksum::alg::kern
