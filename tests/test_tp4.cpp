// TP4 DT TPDUs and their Fletcher checksum parameter.
#include <gtest/gtest.h>

#include "net/tp4.hpp"
#include "util/rng.hpp"

namespace cksum::net {
namespace {

using util::ByteView;
using util::Bytes;

Tp4Dt make_dt(std::size_t payload_len, std::uint64_t seed = 1) {
  Tp4Dt dt;
  dt.dst_ref = 0x1234;
  dt.seq = 5;
  dt.end_of_tsdu = true;
  dt.user_data.resize(payload_len);
  util::Rng rng(seed);
  rng.fill(dt.user_data);
  return dt;
}

class Tp4BothMods : public ::testing::TestWithParam<alg::FletcherMod> {};

TEST_P(Tp4BothMods, BuildVerifyRoundTrip) {
  const alg::FletcherMod mod = GetParam();
  for (std::size_t len : {0u, 1u, 100u, 1024u}) {
    const Bytes tpdu = build_tp4_dt(make_dt(len, len), mod);
    EXPECT_TRUE(verify_tp4_checksum(ByteView(tpdu), mod)) << "len " << len;
    const auto parsed = parse_tp4_dt(ByteView(tpdu));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->dst_ref, 0x1234);
    EXPECT_EQ(parsed->seq, 5);
    EXPECT_TRUE(parsed->end_of_tsdu);
    EXPECT_EQ(parsed->user_data.size(), len);
  }
}

TEST_P(Tp4BothMods, CorruptionDetected) {
  const alg::FletcherMod mod = GetParam();
  const Bytes tpdu = build_tp4_dt(make_dt(256, 7), mod);
  util::Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes corrupted = tpdu;
    const std::size_t at = rng.below(corrupted.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.below(255));
    if (mod == alg::FletcherMod::kOnes255) {
      // Skip the 0x00 <-> 0xFF congruence.
      const std::uint8_t before = corrupted[at];
      const std::uint8_t after = before ^ flip;
      if ((before == 0x00 && after == 0xff) ||
          (before == 0xff && after == 0x00))
        continue;
    }
    corrupted[at] ^= flip;
    // Structural damage (LI/code) fails parse; payload damage fails
    // the checksum. Either way the TPDU must be rejected.
    EXPECT_FALSE(verify_tp4_checksum(ByteView(corrupted), mod))
        << "byte " << at;
  }
}

TEST_P(Tp4BothMods, WrongModulusRejects) {
  // A mod-255 TPDU does not verify under mod-256 rules and vice versa
  // (they are different checksums, as the paper's §6.4 bug showed).
  const alg::FletcherMod mod = GetParam();
  const alg::FletcherMod other = mod == alg::FletcherMod::kOnes255
                                     ? alg::FletcherMod::kTwos256
                                     : alg::FletcherMod::kOnes255;
  const Bytes tpdu = build_tp4_dt(make_dt(200, 9), mod);
  EXPECT_FALSE(verify_tp4_checksum(ByteView(tpdu), other));
}

INSTANTIATE_TEST_SUITE_P(BothMods, Tp4BothMods,
                         ::testing::Values(alg::FletcherMod::kOnes255,
                                           alg::FletcherMod::kTwos256));

TEST(Tp4, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_tp4_dt(ByteView(Bytes{})).has_value());
  EXPECT_FALSE(parse_tp4_dt(ByteView(Bytes{8, 0xE0, 0, 0, 0})).has_value());
  // LI larger than the TPDU.
  EXPECT_FALSE(parse_tp4_dt(ByteView(Bytes{200, 0xF0, 0, 0, 0})).has_value());
  // Parameter length overruns the header.
  Bytes bad = {8, 0xF0, 0, 0, 0, 0xC3, 9, 0, 0};
  EXPECT_FALSE(parse_tp4_dt(ByteView(bad)).has_value());
}

TEST(Tp4, MissingChecksumParamFailsVerification) {
  // A DT with an empty variable part parses but cannot verify.
  Bytes tpdu = {4, 0xF0, 0x12, 0x34, 0x05, 'd', 'a', 't', 'a'};
  EXPECT_TRUE(parse_tp4_dt(ByteView(tpdu)).has_value());
  EXPECT_FALSE(verify_tp4_checksum(ByteView(tpdu)));
}

TEST(Tp4, ChecksumParamIsHeaderPlaced) {
  // Documenting the fate-sharing property: the check octets live at
  // fixed offsets 7-8, inside the header — a TP4-over-AAL5 splice
  // would keep checksum and header in the same cell, like TCP.
  const Bytes tpdu = build_tp4_dt(make_dt(64, 3));
  EXPECT_EQ(tpdu[5], kTp4ChecksumParam);
  EXPECT_EQ(tpdu[6], 2);
}

}  // namespace
}  // namespace cksum::net
