// Robustness ("never crash on hostile input") tests for every parser
// in the library: random garbage and mutated valid inputs must yield a
// clean rejection — an exception type we define or a disengaged
// optional — never a crash or hang.
#include <gtest/gtest.h>

#include "atm/cell.hpp"
#include "atm/reassembler.hpp"
#include "compress/lzw.hpp"
#include "net/fragment.hpp"
#include "net/tcp_options.hpp"
#include "net/udp.hpp"
#include "net/validate.hpp"
#include "util/rng.hpp"

namespace cksum {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(util::Rng& rng, std::size_t n) {
  Bytes b(n);
  rng.fill(b);
  return b;
}

TEST(Robustness, LzwDecompressRandomGarbage) {
  util::Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(2000));
    try {
      (void)compress::lzw_decompress(ByteView(garbage));
    } catch (const compress::CorruptStream&) {
      // expected
    }
  }
}

TEST(Robustness, LzwDecompressMutatedValidStream) {
  util::Rng data_rng(2);
  const Bytes input = random_bytes(data_rng, 5000);
  util::Rng rng(3);
  const Bytes packed = compress::lzw_compress(ByteView(input));
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = packed;
    mutated[4 + rng.below(mutated.size() - 4)] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      const Bytes out = compress::lzw_decompress(ByteView(mutated));
      // A mutated stream may still decode (LZW has no integrity
      // check) — that's fine; it must just not crash.
      (void)out;
    } catch (const compress::CorruptStream&) {
    }
  }
}

TEST(Robustness, TcpOptionParserRandomGarbage) {
  util::Rng rng(4);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(41));
    (void)net::TcpOptionList::parse(ByteView(garbage));  // must not crash
  }
}

TEST(Robustness, HeaderChecksRandomGarbage) {
  util::Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes garbage = random_bytes(rng, 40 + rng.below(300));
    (void)net::check_headers(ByteView(garbage), garbage.size(), true);
  }
}

TEST(Robustness, UdpVerifierRandomGarbage) {
  util::Rng rng(6);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(200));
    (void)net::verify_udp_datagram(ByteView(garbage));
  }
}

TEST(Robustness, CellParserRejectsBadHec) {
  util::Rng rng(7);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage = random_bytes(rng, atm::kCellLen);
    if (atm::Cell::from_bytes(ByteView(garbage)).has_value()) ++accepted;
  }
  // Random 5th byte matches the HEC of random headers 1/256 of the
  // time; far more would indicate the check is not being applied.
  EXPECT_LT(accepted, 40);
}

TEST(Robustness, ReassemblerSurvivesRandomCellStreams) {
  util::Rng rng(8);
  atm::Reassembler r;
  for (int trial = 0; trial < 5000; ++trial) {
    atm::Cell cell;
    rng.fill(cell.payload);
    cell.header.set_end_of_message(rng.chance(0.05));
    const auto done = r.push(cell);
    if (done) {
      // Random fused PDUs must essentially never pass both checks.
      EXPECT_FALSE(done->length_ok && done->crc_ok);
    }
  }
}

TEST(Robustness, ReassembleRejectsOverlappingFragmentSoup) {
  // Fragments with random offsets/sizes: reassemble must either
  // cleanly fail or produce a structurally consistent datagram.
  util::Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<net::Fragment> frags;
    const std::size_t n = 1 + rng.below(5);
    for (std::size_t i = 0; i < n; ++i) {
      net::Fragment f;
      f.header.frag_off = static_cast<std::uint16_t>(rng.below(0x4000));
      f.payload = random_bytes(rng, 8 * (1 + rng.below(16)));
      frags.push_back(std::move(f));
    }
    const auto out = net::reassemble(std::move(frags));
    if (out) {
      EXPECT_GE(out->size(), net::kIpv4HeaderLen);
    }
  }
}

}  // namespace
}  // namespace cksum
