// Binary file generators: executables, profiling data, word-processor
// documents, and raw random data.
//
// These reproduce the binary-file statistics the paper calls out:
// "Binary data has similarly non-random distribution of values, such
// as a propensity to contain zeros" (§1); gmon.out profiling files
// "consist mostly of zero entries, with a scattering of a small number
// of nonzero entries ... the non-zero values are often identical"
// (§5.5, a TCP-checksum pathology); and a popular PC word processor's
// files "contained runs of approximately 200 all-zero bytes, followed
// by a similar number of all-one bytes, between each section" (§5.5, a
// Fletcher-255 pathology).
#include <array>

#include "fsgen/generator.hpp"
#include "util/bytes.hpp"

namespace cksum::fsgen {

namespace {

void push_zeros(util::Bytes& out, std::size_t n) {
  out.insert(out.end(), n, 0);
}

void push_fill(util::Bytes& out, std::size_t n, std::uint8_t v) {
  out.insert(out.end(), n, v);
}

/// Instruction-stream-like bytes: common opcodes, register bytes, and
/// little-endian displacements that are usually small (high bytes 0).
void push_code(util::Rng& rng, util::Bytes& out, std::size_t n) {
  static constexpr std::uint8_t kOpcodes[] = {
      0x55, 0x89, 0x8b, 0xe8, 0xc3, 0x83, 0x31, 0x48, 0x85, 0x74,
      0x75, 0xeb, 0x90, 0x5d, 0x01, 0x29, 0x39, 0xff, 0x8d, 0xc7,
  };
  const std::size_t end = out.size() + n;
  while (out.size() < end) {
    out.push_back(kOpcodes[rng.below(std::size(kOpcodes))]);
    if (rng.chance(0.35)) {
      // ModRM-ish byte.
      out.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    if (rng.chance(0.30)) {
      // 32-bit displacement/immediate, usually small positive or
      // small negative.
      const bool negative = rng.chance(0.2);
      const std::uint32_t mag = static_cast<std::uint32_t>(rng.below(4096));
      const std::uint32_t v = negative ? (0u - mag) : mag;
      out.push_back(static_cast<std::uint8_t>(v));
      out.push_back(static_cast<std::uint8_t>(v >> 8));
      out.push_back(static_cast<std::uint8_t>(v >> 16));
      out.push_back(static_cast<std::uint8_t>(v >> 24));
    }
  }
  out.resize(end);
}

void push_symbol_table(util::Rng& rng, util::Bytes& out, std::size_t n) {
  // 16-byte records: name offset (often small), value (clustered
  // addresses), size (small), info bytes (few distinct values).
  static constexpr std::uint8_t kInfo[] = {0x11, 0x12, 0x20, 0x01, 0x02};
  std::uint32_t name_off = 1;
  std::uint32_t addr = 0x1000;
  const std::size_t end = out.size() + n;
  while (out.size() + 16 <= end) {
    // name offset, little-endian like ELF.
    out.push_back(static_cast<std::uint8_t>(name_off));
    out.push_back(static_cast<std::uint8_t>(name_off >> 8));
    out.push_back(0);
    out.push_back(0);
    name_off += static_cast<std::uint32_t>(rng.between(4, 20));
    out.push_back(static_cast<std::uint8_t>(addr));
    out.push_back(static_cast<std::uint8_t>(addr >> 8));
    out.push_back(static_cast<std::uint8_t>(addr >> 16));
    out.push_back(static_cast<std::uint8_t>(addr >> 24));
    addr += static_cast<std::uint32_t>(rng.between(8, 512));
    // size (small), padding, info.
    out.push_back(static_cast<std::uint8_t>(rng.below(128)));
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    out.push_back(kInfo[rng.below(std::size(kInfo))]);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
  }
  if (out.size() < end) push_zeros(out, end - out.size());
}

void push_string_table(util::Rng& rng, util::Bytes& out, std::size_t n) {
  static constexpr std::string_view kPieces[] = {
      "init", "main", "alloc", "free", "print", "read", "write", "sys",
      "vm", "buf", "proc", "open", "close", "str", "mem", "cpy", "cmp",
      "get", "set", "lock",
  };
  const std::size_t end = out.size() + n;
  out.push_back(0);
  while (out.size() < end) {
    if (rng.chance(0.5)) out.push_back('_');
    const auto& piece = kPieces[rng.below(std::size(kPieces))];
    out.insert(out.end(), piece.begin(), piece.end());
    if (rng.chance(0.6)) {
      const auto& piece2 = kPieces[rng.below(std::size(kPieces))];
      out.insert(out.end(), piece2.begin(), piece2.end());
    }
    out.push_back(0);
  }
  out.resize(end);
}

}  // namespace

util::Bytes generate_executable(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 4096);

  // ELF-ish identification + header (mostly zeros after the magic).
  static constexpr std::uint8_t kElfIdent[16] = {
      0x7f, 'E', 'L', 'F', 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  out.insert(out.end(), kElfIdent, kElfIdent + 16);
  push_zeros(out, 48);  // rest of header: small fields, mostly zero

  while (out.size() < approx_size) {
    switch (rng.below(5)) {
      case 0:  // text section
        push_code(rng, out, static_cast<std::size_t>(rng.between(2048, 16384)));
        break;
      case 1:  // zero padding to a page boundary / bss image
        push_zeros(out, static_cast<std::size_t>(rng.between(256, 4096)));
        break;
      case 2:
        push_symbol_table(rng, out,
                          static_cast<std::size_t>(rng.between(512, 4096)));
        break;
      case 3:
        push_string_table(rng, out,
                          static_cast<std::size_t>(rng.between(256, 2048)));
        break;
      default: {  // data section: small integers, many zero words
        const std::size_t n = static_cast<std::size_t>(rng.between(512, 4096));
        const std::size_t end = out.size() + n;
        while (out.size() + 4 <= end) {
          const std::uint32_t v =
              rng.chance(0.6) ? 0 : static_cast<std::uint32_t>(rng.below(1024));
          out.push_back(static_cast<std::uint8_t>(v));
          out.push_back(static_cast<std::uint8_t>(v >> 8));
          out.push_back(0);
          out.push_back(0);
        }
        if (out.size() < end) push_zeros(out, end - out.size());
        break;
      }
    }
  }
  return out;
}

util::Bytes generate_gmon_profile(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 64);

  // Header: low pc, high pc, buffer size — a handful of small words.
  push_zeros(out, 4);
  push_fill(out, 1, 0x40);
  push_zeros(out, 7);
  push_fill(out, 1, 0x08);
  push_zeros(out, 7);

  // Histogram bins: 16-bit counters, almost all zero, with small runs
  // of identical small counts where the program spent its time.
  const std::uint8_t hot_value = static_cast<std::uint8_t>(rng.between(1, 4));
  while (out.size() < approx_size) {
    if (rng.chance(0.97)) {
      push_zeros(out, 2);
    } else {
      // A hot region: several consecutive identical counters.
      const std::size_t run = rng.run_length(0.8, 24);
      for (std::size_t i = 0; i < run; ++i) {
        out.push_back(0);
        out.push_back(rng.chance(0.8)
                          ? hot_value
                          : static_cast<std::uint8_t>(rng.between(1, 9)));
      }
    }
  }
  return out;
}

util::Bytes generate_word_processor(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 512);

  // Proprietary-looking magic + a fairly empty header block.
  static constexpr std::uint8_t kMagic[] = {0x31, 0xbe, 0x00, 0x00,
                                            0x00, 0xab, 0x00, 0x00};
  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  push_zeros(out, 120);

  while (out.size() < approx_size) {
    // A section of document text...
    util::Rng text_rng = rng.child(out.size());
    const util::Bytes para = generate_text(
        text_rng, static_cast<std::size_t>(rng.between(300, 1500)));
    out.insert(out.end(), para.begin(), para.end());
    // ...followed by the pathological inter-section filler the paper
    // found: ~200 zero bytes then ~200 0xFF bytes.
    push_zeros(out, static_cast<std::size_t>(rng.between(180, 220)));
    push_fill(out, static_cast<std::size_t>(rng.between(180, 220)), 0xff);
  }
  return out;
}

util::Bytes generate_random(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out(approx_size);
  rng.fill(out);
  return out;
}

}  // namespace cksum::fsgen
