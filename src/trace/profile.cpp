#include "trace/profile.hpp"

#include <bit>
#include <cstdio>

#include "checksum/internet.hpp"
#include "checksum/kernels/kernel.hpp"
#include "trace/metrics.hpp"

namespace cksum::trace {

namespace {

constexpr std::size_t kCell = 48;

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += "\"";
  out += key;
  out += "\": " + std::to_string(v);
}

void append_f(std::string& out, const char* key, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += "\"";
  out += key;
  out += "\": ";
  out += buf;
}

}  // namespace

void RunStats::add_run(std::uint64_t len) {
  if (len == 0) return;
  runs += 1;
  run_bytes += len;
  if (len > max_run) max_run = len;
  length_log2.add(static_cast<std::uint32_t>(std::bit_width(len)));
}

DataProfile::DataProfile() = default;

void DataProfile::add_payload(util::ByteView payload) {
  bytes_ += payload.size();
  tmx().profile_bytes.add(payload.size());

  std::uint64_t zero_run = 0, ff_run = 0;
  for (const std::uint8_t b : payload) {
    byte_.add(b);
    if (b == 0x00) {
      ++zero_run;
    } else {
      zero_.add_run(zero_run);
      zero_run = 0;
    }
    if (b == 0xFF) {
      ++ff_run;
    } else {
      ff_.add_run(ff_run);
      ff_run = 0;
    }
  }
  zero_.add_run(zero_run);
  ff_.add_run(ff_run);

  for (std::size_t i = 0; i + 2 <= payload.size(); i += 2)
    word_.add(util::load_be16(payload.data() + i));

  for (std::size_t off = 0; off + kCell <= payload.size(); off += kCell) {
    const std::uint16_t sum = alg::ones_canonical(
        alg::kern::internet_sum(payload.subspan(off, kCell)));
    cell_.add(sum % 65535u);
    ++cells_;
  }
}

double DataProfile::byte_fraction(std::uint8_t v) const {
  return bytes_ == 0 ? 0.0
                     : static_cast<double>(byte_.count(v)) /
                           static_cast<double>(bytes_);
}

std::string DataProfile::json() const {
  std::string out = "{";
  append_u64(out, "bytes", bytes_);
  out += ", ";
  append_f(out, "byte_entropy_bits", byte_.entropy_bits());
  out += ", ";
  append_f(out, "word_entropy_bits", word_.entropy_bits());
  out += ", ";
  append_f(out, "zero_fraction", byte_fraction(0x00));
  out += ", ";
  append_u64(out, "zero_runs", zero_.runs);
  out += ", ";
  append_u64(out, "max_zero_run", zero_.max_run);
  out += ", ";
  append_u64(out, "ff_runs", ff_.runs);
  out += ", ";
  append_u64(out, "max_ff_run", ff_.max_run);
  out += ", ";
  append_u64(out, "cells", cells_);
  out += ", ";
  append_f(out, "cell_entropy_bits", cell_.entropy_bits());
  out += ", ";
  append_f(out, "cell_pmax", cell_.pmax());
  out += ", ";
  append_u64(out, "cell_mode", cell_.mode());
  out += "}";
  return out;
}

}  // namespace cksum::trace
