// Telemetry registry: sharded aggregation exactness, merge
// associativity, tag-filtered determinism of the pipeline metrics,
// and the manifest JSON rendering.
//
// The aggregation properties under test are the design contract of
// src/obs/registry.hpp: every merge is a plain addition over
// per-thread shards, so totals must be exact regardless of thread
// count, partitioning, or when snapshots are taken.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/experiments.hpp"
#include "fsgen/profile.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "obs/timer.hpp"
#include "util/rng.hpp"

namespace cksum::obs {
namespace {

#ifndef OBS_DISABLE

TEST(Registry, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter c = reg.counter("t.counter");
  Gauge g = reg.gauge("t.gauge");
  Histogram h = reg.histogram("t.hist");

  c.add();
  c.add(41);
  g.add(10);
  g.sub(3);
  h.observe(0);    // folds into bucket 0
  h.observe(1);    // bucket 0
  h.observe(7);    // bucket 2
  h.observe(100);  // bucket 6

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  const MetricValue* mc = snap.find("t.counter");
  ASSERT_NE(mc, nullptr);
  EXPECT_EQ(mc->kind, Kind::kCounter);
  EXPECT_EQ(mc->value, 42u);
  const MetricValue* mg = snap.find("t.gauge");
  ASSERT_NE(mg, nullptr);
  EXPECT_EQ(mg->gauge, 7);
  const MetricValue* mh = snap.find("t.hist");
  ASSERT_NE(mh, nullptr);
  EXPECT_EQ(mh->value, 4u);    // sample count
  EXPECT_EQ(mh->sum, 108u);
  ASSERT_EQ(mh->buckets.size(), kHistogramBuckets);
  EXPECT_EQ(mh->buckets[0], 2u);
  EXPECT_EQ(mh->buckets[2], 1u);
  EXPECT_EQ(mh->buckets[6], 1u);
  EXPECT_EQ(snap.find("t.absent"), nullptr);
}

TEST(Registry, RegistrationIsIdempotentByName) {
  Registry reg;
  Counter a = reg.counter("t.same");
  Counter b = reg.counter("t.same");
  a.add(1);
  b.add(2);
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.find("t.same")->value, 3u);
}

TEST(Registry, KindClashYieldsInertHandle) {
  Registry reg;
  Counter c = reg.counter("t.clash");
  Gauge g = reg.gauge("t.clash");  // same name, other kind -> inert
  c.add(5);
  g.add(100);  // must not land anywhere
  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.find("t.clash")->kind, Kind::kCounter);
  EXPECT_EQ(snap.find("t.clash")->value, 5u);
}

TEST(Registry, SlotBudgetOverflowYieldsInertHandle) {
  Registry reg;
  // Each histogram takes kHistogramBuckets + 1 = 33 slots; the 32nd
  // would need slot 1024 + ... > kMaxSlots and must come back inert.
  std::vector<Histogram> hs;
  for (int i = 0; i < 40; ++i)
    hs.push_back(reg.histogram("t.h" + std::to_string(i)));
  for (const Histogram& h : hs) h.observe(1);  // inert ones are no-ops
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.metrics.size(), kMaxSlots / (kHistogramBuckets + 1));
  for (const MetricValue& m : snap.metrics) EXPECT_EQ(m.value, 1u);
}

TEST(Registry, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add(1);
  g.add(1);
  h.observe(1);  // must not crash
}

TEST(Registry, MultiThreadedCounterAggregationIsExact) {
  Registry reg;
  Counter c = reg.counter("t.mt");
  Gauge g = reg.gauge("t.mt_gauge");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kAdds = 200000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        c.add(1);
        g.add(3);
        g.sub(3);  // nets to zero across every interleaving
      }
    });
  }
  for (auto& th : pool) th.join();
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("t.mt")->value, kThreads * kAdds);
  EXPECT_EQ(snap.find("t.mt_gauge")->gauge, 0);
}

TEST(Registry, SnapshotsMidRunDoNotPerturbTheFinalTotal) {
  Registry reg;
  Counter c = reg.counter("t.obs");
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kAdds = 100000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t)
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kAdds; ++i) c.add(1);
    });
  // Snapshot continuously while the writers run: every mid-run total
  // must be monotone (counters only grow) and the final total exact —
  // aggregation is read-only, so observing cannot lose updates.
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = reg.snapshot().find("t.obs")->value;
    EXPECT_GE(now, last);
    EXPECT_LE(now, kThreads * kAdds);
    last = now;
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(reg.snapshot().find("t.obs")->value, kThreads * kAdds);
  // Once quiesced, repeated snapshots are identical.
  EXPECT_EQ(reg.snapshot().metrics, reg.snapshot().metrics);
}

// Property: partitioning one sample stream across any number of
// threads yields the identical histogram — shard merging is a sum per
// bucket, hence associative and commutative.
TEST(Registry, HistogramMergeIsPartitionIndependent) {
  util::Rng rng(0xB0B);
  std::vector<std::uint64_t> samples(20000);
  for (auto& s : samples) {
    // Mix magnitudes so many buckets are exercised.
    const unsigned shift = static_cast<unsigned>(rng.below(40));
    s = rng.next() >> shift;
  }

  std::vector<MetricValue> reference;
  for (const unsigned parts : {1u, 2u, 3u, 7u}) {
    Registry reg;
    Histogram h = reg.histogram("t.part");
    std::vector<std::thread> pool;
    for (unsigned p = 0; p < parts; ++p) {
      pool.emplace_back([&, p] {
        // Strided partition: thread p observes samples p, p+parts, ...
        for (std::size_t i = p; i < samples.size(); i += parts)
          h.observe(samples[i]);
      });
    }
    for (auto& th : pool) th.join();
    const Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.metrics.size(), 1u);
    if (reference.empty()) {
      reference = snap.metrics;
      EXPECT_EQ(reference[0].value, samples.size());
    } else {
      EXPECT_EQ(snap.metrics, reference) << parts << " partitions diverged";
    }
  }
}

TEST(Registry, ResetZeroesEverySlotButKeepsHandles) {
  Registry reg;
  Counter c = reg.counter("t.reset");
  Histogram h = reg.histogram("t.reset_h");
  c.add(9);
  h.observe(9);
  reg.reset();
  Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("t.reset")->value, 0u);
  EXPECT_EQ(snap.find("t.reset_h")->value, 0u);
  EXPECT_EQ(snap.find("t.reset_h")->sum, 0u);
  c.add(2);  // handles stay live after reset
  EXPECT_EQ(reg.snapshot().find("t.reset")->value, 2u);
}

TEST(ScopedTimer, FeedsTheHistogram) {
  Registry reg;
  Histogram h = reg.histogram("t.timer_ns");
  for (int i = 0; i < 5; ++i) {
    ScopedTimer timer(h);
  }
  const Snapshot snap = reg.snapshot();
  const MetricValue* m = snap.find("t.timer_ns");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->value, 5u);  // one sample per scope
}

TEST(Manifest, JsonCarriesIdentityAndMetrics) {
  Registry reg;
  reg.counter("t.manifest\"quoted").add(3);
  RunInfo info;
  info.tool = "unit test";
  info.corpus = "none";
  info.seed = 7;
  info.threads = 2;
  info.wall_seconds = 1.5;
  info.extra_json = "\"report\": {\"x\": 1}";
  const std::string j = manifest_json(info, reg.snapshot());
  EXPECT_NE(j.find("\"schema\": \"cksum-metrics/1\""), std::string::npos);
  EXPECT_NE(j.find("\"tool\": \"unit test\""), std::string::npos);
  EXPECT_NE(j.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"threads\": 2"), std::string::npos);
  EXPECT_NE(j.find("t.manifest\\\"quoted"), std::string::npos);  // escaped
  EXPECT_NE(j.find("\"report\": {\"x\": 1}"), std::string::npos);
  EXPECT_NE(j.find("\"git\": \""), std::string::npos);
}

// The pipeline's determinism contract (satellite of the telemetry
// subsystem): every kDeterministic-tagged metric produced by a splice
// run over a fixed corpus must be bitwise identical whether the run
// used 1, 2, or 8 worker threads. kScheduling/kTiming metrics (chunk
// claims, steal counts, latency histograms) are excluded by tag — that
// exclusion IS the tag's meaning.
TEST(PipelineMetrics, DeterministicTagIsThreadCountInvariant) {
  core::register_splice_metrics();
  core::SpliceRunConfig cfg;
  cfg.flow = core::paper_flow_config();
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.05);

  const auto deterministic_metrics = [&](unsigned threads) {
    Registry::global().reset();
    cfg.threads = threads;
    (void)core::run_filesystem(cfg, fs);
    std::vector<MetricValue> out;
    for (MetricValue& m : Registry::global().snapshot().metrics)
      if (m.tag == Tag::kDeterministic) out.push_back(std::move(m));
    return out;
  };

  const std::vector<MetricValue> one = deterministic_metrics(1);
  const std::vector<MetricValue> two = deterministic_metrics(2);
  const std::vector<MetricValue> eight = deterministic_metrics(8);
  ASSERT_FALSE(one.empty());
  bool splice_seen = false;
  for (const MetricValue& m : one) {
    splice_seen = splice_seen || m.name == "splice.total";
    EXPECT_NE(m.tag, Tag::kTiming);
  }
  EXPECT_TRUE(splice_seen);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  Registry::global().reset();  // leave no residue for other tests
}

#else  // OBS_DISABLE

TEST(Registry, DisabledBuildYieldsInertHandles) {
  Registry reg;
  Counter c = reg.counter("t.off");
  c.add(5);
  EXPECT_TRUE(reg.snapshot().metrics.empty());
}

#endif  // OBS_DISABLE

}  // namespace
}  // namespace cksum::obs
