#include "storage/layout.hpp"

#include <algorithm>
#include <cassert>

#include "checksum/checksum.hpp"
#include "checksum/kernels/kernel.hpp"

namespace cksum::storage {

namespace {

/// 16 bytes of covered-but-not-stored context: address ‖ generation,
/// both big-endian. The even, 8-aligned length keeps every combine
/// below exact (Internet needs an even prefix, Koopman a block-aligned
/// one).
std::size_t context_bytes(const WriteContext& ctx,
                          std::uint8_t (&out)[16]) noexcept {
  util::store_be64(out, ctx.address);
  util::store_be64(out + 8, ctx.generation);
  return sizeof out;
}

}  // namespace

std::uint64_t compute_check(Algo a, const WriteContext& ctx,
                            util::ByteView payload) {
  std::uint8_t cb[16];
  const util::ByteView cv(cb, context_bytes(ctx, cb));
  // Each arm checksums the two fragments separately and folds them
  // with the algorithm's partial-sum combine — the same contract the
  // splice evaluator leans on, now on the storage hot path.
  switch (a) {
    case Algo::kCrc32:
      return alg::kern::crc32(alg::kern::crc32(0, cv), payload);
    case Algo::kInternet:
      return alg::internet_combine(alg::kern::internet_sum(cv),
                                   alg::kern::internet_sum(payload),
                                   /*a_odd_length=*/false);
    case Algo::kFletcher255: {
      const auto mod = alg::FletcherMod::kOnes255;
      return alg::fletcher_value(alg::fletcher_combine(
          alg::kern::fletcher_block(cv, mod),
          alg::kern::fletcher_block(payload, mod), payload.size(), mod));
    }
    case Algo::kFletcher256: {
      const auto mod = alg::FletcherMod::kTwos256;
      return alg::fletcher_value(alg::fletcher_combine(
          alg::kern::fletcher_block(cv, mod),
          alg::kern::fletcher_block(payload, mod), payload.size(), mod));
    }
    case Algo::kAdler32:
      return alg::kern::adler32(alg::kern::adler32(1, cv), payload);
    case Algo::kKoopmanDual:
      return alg::koopman_dual_value(alg::koopman_dual_combine(
          alg::kern::koopman_dual(cv), alg::kern::koopman_dual(payload),
          alg::koopman_block_count(payload.size())));
    case Algo::kKoopmanSingle:
      return alg::koopman_single_combine(alg::kern::koopman_single(cv),
                                         alg::kern::koopman_single(payload));
  }
  return 0;
}

util::Bytes seal_block(Algo a, const WriteContext& ctx,
                       util::ByteView payload, std::size_t block_size) {
  assert(block_size > kCheckFieldSize);
  assert(payload.size() == block_size - kCheckFieldSize);
  util::Bytes block(block_size);
  util::store_be64(block.data(), compute_check(a, ctx, payload));
  std::copy(payload.begin(), payload.end(), block.begin() + kCheckFieldSize);
  return block;
}

bool verify_block(Algo a, const WriteContext& ctx, util::ByteView block) {
  if (block.size() <= kCheckFieldSize) return false;
  return util::load_be64(block.data()) ==
         compute_check(a, ctx, block_payload(block));
}

}  // namespace cksum::storage
