#include "stats/binomial.hpp"

#include <algorithm>
#include <cmath>

namespace cksum::stats {

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) {
  if (trials == 0) return {0.0, 0.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double spread =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  Interval out;
  out.lo = std::max(0.0, (centre - spread) / denom);
  out.hi = std::min(1.0, (centre + spread) / denom);
  return out;
}

}  // namespace cksum::stats
