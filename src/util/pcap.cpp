#include "util/pcap.hpp"

namespace cksum::util {

namespace {

void put32(std::ostream& out, std::uint32_t v) {
  // Little-endian on the wire; the 0xa1b2c3d4 magic tells readers the
  // byte order we chose.
  const std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

void put16(std::ostream& out, std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8)};
  out.write(reinterpret_cast<const char*>(b), 2);
}

/// Synthetic Ethernet II header for LINKTYPE_ETHERNET captures:
/// locally administered src/dst MACs, ethertype 0x0800 (IPv4).
constexpr std::uint8_t kEthernetHeader[14] = {
    0x02, 0x00, 0x00, 0x00, 0x00, 0x02,  // dst
    0x02, 0x00, 0x00, 0x00, 0x00, 0x01,  // src
    0x08, 0x00,                          // ethertype IPv4
};

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, PcapLink link)
    : out_(out), link_(link) {
  put32(out_, 0xa1b2c3d4u);  // magic
  put16(out_, 2);            // version major
  put16(out_, 4);            // version minor
  put32(out_, 0);            // thiszone
  put32(out_, 0);            // sigfigs
  put32(out_, 65535);        // snaplen
  put32(out_, static_cast<std::uint32_t>(link_));
  if (!out_.good()) ok_ = false;
}

bool PcapWriter::write_packet(ByteView datagram) {
  if (!ok()) {
    ok_ = false;  // sticky even if the caller cleared the stream state
    return false;
  }
  const std::size_t frame_len =
      datagram.size() +
      (link_ == PcapLink::kEthernet ? sizeof(kEthernetHeader) : 0);
  const auto ts = static_cast<std::uint32_t>(count_);
  put32(out_, ts / 1000000u);  // seconds
  put32(out_, ts % 1000000u);  // microseconds
  put32(out_, static_cast<std::uint32_t>(frame_len));  // captured
  put32(out_, static_cast<std::uint32_t>(frame_len));  // original
  if (link_ == PcapLink::kEthernet) {
    out_.write(reinterpret_cast<const char*>(kEthernetHeader),
               sizeof(kEthernetHeader));
  }
  out_.write(reinterpret_cast<const char*>(datagram.data()),
             static_cast<std::streamsize>(datagram.size()));
  if (!out_.good()) {
    // The record is (at best) partial on disk; do not count it.
    ok_ = false;
    return false;
  }
  ++count_;
  return true;
}

}  // namespace cksum::util
