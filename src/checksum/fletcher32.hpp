// The 32-bit Fletcher checksum — "Fletcher also defined a 32-bit
// version, where 16-bit sums are kept" (paper §2). Data is consumed as
// 16-bit big-endian words (an odd trailing byte is zero-padded); the
// two running sums are kept mod 65535 (ones-complement flavour, the
// form Fletcher analysed and RFC 1146 option B generalises).
//
// Included as the paper's mentioned-but-unmeasured extension point:
// the survey example reports it beside the 16-bit sums, and the same
// positional combination law applies with word (not byte) offsets.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cksum::alg {

struct Fletcher32Pair {
  std::uint32_t a = 0;  ///< sum of 16-bit words, mod 65535
  std::uint32_t b = 0;  ///< end-weighted word sum, mod 65535

  friend bool operator==(const Fletcher32Pair&,
                         const Fletcher32Pair&) = default;
};

/// Pack into one 32-bit value (A in the high half).
constexpr std::uint32_t fletcher32_value(Fletcher32Pair p) noexcept {
  return (p.a << 16) | p.b;
}

/// (A, B) over a block, end-weighted in 16-bit words within the block
/// (last word weight 1).
Fletcher32Pair fletcher32_block(util::ByteView data) noexcept;

/// Sums of X ++ Y from block sums; `y_len_words` = number of 16-bit
/// words in Y (ceil of bytes/2).
Fletcher32Pair fletcher32_combine(Fletcher32Pair x, Fletcher32Pair y,
                                  std::size_t y_len_words) noexcept;

/// Solve for two 16-bit check words stored at word positions p, p+1 of
/// an L-word message so it sums to zero in both terms; `u` = L - p is
/// the from-end weight of the first check word.
void fletcher32_check_words(Fletcher32Pair rest, std::size_t u,
                            std::uint16_t& x, std::uint16_t& y) noexcept;

/// A message (check words in place) is valid iff both sums ≡ 0.
bool fletcher32_verify(util::ByteView msg) noexcept;

}  // namespace cksum::alg
