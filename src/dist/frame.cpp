#include "dist/frame.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "checksum/kernels/kernel.hpp"
#include "obs/registry.hpp"

namespace cksum::dist {
namespace {

constexpr std::uint8_t kMagic[4] = {'C', 'K', 'D', 'F'};

// Little-endian wire integers: the protocol is new, so it uses the
// natural order of every machine it will run on rather than network
// order (the packet simulator's big-endian helpers stay for the
// simulated IP/TCP headers, which the paper fixes as network order).
void put_le32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

struct FrameMetrics {
  obs::Counter sent;
  obs::Counter received;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;
  obs::Counter crc_rejects;
  obs::Counter resends;
};

// All kScheduling: wire traffic depends on shard assignment and
// timing, never on the corpus, so it must stay out of determinism
// diffs.
FrameMetrics& frame_metrics() {
  static FrameMetrics m = [] {
    obs::Registry& reg = obs::Registry::global();
    FrameMetrics f;
    f.sent = reg.counter("dist.frames_sent", obs::Tag::kScheduling);
    f.received = reg.counter("dist.frames_received", obs::Tag::kScheduling);
    f.bytes_sent = reg.counter("dist.bytes_sent", obs::Tag::kScheduling);
    f.bytes_received =
        reg.counter("dist.bytes_received", obs::Tag::kScheduling);
    f.crc_rejects = reg.counter("dist.frame_crc_rejects", obs::Tag::kScheduling);
    f.resends = reg.counter("dist.frame_resends", obs::Tag::kScheduling);
    return f;
  }();
  return m;
}

}  // namespace

std::string_view name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kConfig: return "config";
    case MsgType::kLeaseGrant: return "lease_grant";
    case MsgType::kLeaseResult: return "lease_result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kIdle: return "idle";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kGoodbye: return "goodbye";
    case MsgType::kNack: return "nack";
    case MsgType::kJobConfig: return "job_config";
  }
  return "unknown";
}

util::Bytes encode_frame(MsgType type, std::uint32_t seq,
                         util::ByteView payload) {
  util::Bytes out;
  out.reserve(kFrameHeaderLen + payload.size() + kFrameTrailerLen);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // reserved
  out.push_back(0);
  put_le32(out, seq);
  put_le32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc =
      alg::kern::crc32(util::ByteView(out.data(), out.size()));
  put_le32(out, crc);
  return out;
}

bool decode_frame_header(const std::uint8_t* hdr, MsgType* type,
                         std::uint32_t* seq, std::uint32_t* payload_len) {
  if (std::memcmp(hdr, kMagic, 4) != 0) return false;
  if (hdr[4] != kFrameVersion) return false;
  const std::uint8_t t = hdr[5];
  if (t < static_cast<std::uint8_t>(MsgType::kHello) ||
      t > static_cast<std::uint8_t>(MsgType::kJobConfig))
    return false;
  const std::uint32_t len = get_le32(hdr + 12);
  if (len > kMaxFramePayload) return false;
  *type = static_cast<MsgType>(t);
  *seq = get_le32(hdr + 8);
  *payload_len = len;
  return true;
}

bool frame_crc_ok(util::ByteView header_and_payload, std::uint32_t stored) {
  return alg::kern::crc32(header_and_payload) == stored;
}

FrameChannel::FrameChannel(int fd) : fd_(fd) { frame_metrics(); }

FrameChannel::~FrameChannel() { close(); }

void FrameChannel::close() noexcept {
  std::lock_guard<std::mutex> lk(send_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  broken_ = true;
}

bool FrameChannel::write_all(const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameChannel::send(MsgType type, util::ByteView payload) {
  std::lock_guard<std::mutex> lk(send_mu_);
  return send_locked(type, payload);
}

bool FrameChannel::send_locked(MsgType type, util::ByteView payload) {
  if (fd_ < 0 || broken_) return false;
  const std::uint32_t seq = send_seq_++;
  util::Bytes wire = encode_frame(type, seq, payload);
  // Keep the intact encoding for replay; corrupt only the copy that
  // hits the wire.
  sent_.emplace_back(seq, wire);
  while (sent_.size() > kResendWindow) sent_.pop_front();
  if (corrupt_next_ && !payload.empty()) {
    corrupt_next_ = false;
    wire[kFrameHeaderLen] ^= 0x40;
  }
  if (!write_all(wire.data(), wire.size())) {
    broken_ = true;
    return false;
  }
  stats_.frames_sent++;
  frame_metrics().sent.add(1);
  frame_metrics().bytes_sent.add(wire.size());
  return true;
}

bool FrameChannel::read_exact(std::uint8_t* data, std::size_t len,
                              int timeout_ms) {
  while (len > 0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;  // timeout
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameChannel::send_nack() {
  if (nacks_left_ == 0) return false;
  --nacks_left_;
  util::Bytes payload;
  put_le32(payload, recv_next_);
  std::lock_guard<std::mutex> lk(send_mu_);
  return send_locked(MsgType::kNack, payload);
}

bool FrameChannel::handle_nack(std::uint32_t resume_seq) {
  if (nacks_left_ == 0) return false;
  --nacks_left_;
  std::lock_guard<std::mutex> lk(send_mu_);
  if (fd_ < 0 || broken_) return false;
  // The peer wants every frame from resume_seq replayed in order. A
  // resume point older than the window means the gap is unrecoverable.
  // Serial-number comparisons: raw < would invert at the u32 wrap
  // (e.g. resume_seq 0xffffffff against a buffered seq of 0x00000001).
  if (!sent_.empty() && seq_before(resume_seq, sent_.front().first))
    return false;
  for (const auto& [seq, wire] : sent_) {
    if (seq_before(seq, resume_seq)) continue;
    if (!write_all(wire.data(), wire.size())) {
      broken_ = true;
      return false;
    }
    stats_.resends++;
    frame_metrics().resends.add(1);
    frame_metrics().bytes_sent.add(wire.size());
  }
  return true;
}

bool FrameChannel::recv(Frame* out, int timeout_ms) {
  if (fd_ < 0) return false;
  std::uint8_t hdr[kFrameHeaderLen];
  for (;;) {
    if (!read_exact(hdr, sizeof hdr, timeout_ms)) return false;
    MsgType type;
    std::uint32_t seq = 0;
    std::uint32_t payload_len = 0;
    if (!decode_frame_header(hdr, &type, &seq, &payload_len)) {
      // Corrupted header: the length field can no longer be trusted,
      // so framing is lost. Abort; the coordinator's lease layer
      // re-runs whatever this connection was carrying.
      broken_ = true;
      return false;
    }
    util::Bytes body(kFrameHeaderLen + payload_len);
    std::memcpy(body.data(), hdr, kFrameHeaderLen);
    if (!read_exact(body.data() + kFrameHeaderLen, payload_len, timeout_ms))
      return false;
    std::uint8_t crc_buf[kFrameTrailerLen];
    if (!read_exact(crc_buf, sizeof crc_buf, timeout_ms)) return false;
    if (!frame_crc_ok(util::ByteView(body.data(), body.size()),
                      get_le32(crc_buf))) {
      {
        std::lock_guard<std::mutex> lk(send_mu_);
        stats_.crc_rejects++;
      }
      frame_metrics().crc_rejects.add(1);
      if (!send_nack()) {
        broken_ = true;
        return false;
      }
      continue;
    }
    {
      std::lock_guard<std::mutex> lk(send_mu_);
      stats_.frames_received++;
    }
    frame_metrics().received.add(1);
    frame_metrics().bytes_received.add(body.size() + kFrameTrailerLen);
    if (type == MsgType::kNack) {
      // Control frame for our send side; never surfaces to the caller.
      // NACKs ride outside the peer's data sequence only in effect —
      // they still consume a seq on the peer's side, so advance ours.
      if (payload_len != 4) {
        broken_ = true;
        return false;
      }
      if (seq == recv_next_) recv_next_ = seq + 1;
      if (!handle_nack(get_le32(body.data() + kFrameHeaderLen))) {
        broken_ = true;
        return false;
      }
      continue;
    }
    if (seq != recv_next_) {
      // Duplicate from a replay that started earlier than our resume
      // point, or frames racing ahead of a pending replay: drop until
      // the expected seq arrives. A seq from the future without a
      // pending NACK would also land here and be re-NACKed by the
      // peer's next real frame... but frames on a stream socket can't
      // reorder, so in practice only replay overlap hits this.
      // Serial order, not raw order: a replayed seq 0xffffffff while
      // we expect 0x00000002 is behind us, not four billion ahead.
      if (seq_before(recv_next_, seq)) {
        if (!send_nack()) {
          broken_ = true;
          return false;
        }
      }
      continue;
    }
    recv_next_ = seq + 1;
    out->type = type;
    out->seq = seq;
    out->payload.assign(body.begin() + kFrameHeaderLen, body.end());
    return true;
  }
}

FrameChannel::Stats FrameChannel::stats() const {
  std::lock_guard<std::mutex> lk(send_mu_);
  return stats_;
}

}  // namespace cksum::dist
