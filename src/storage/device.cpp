#include "storage/device.hpp"

#include <algorithm>
#include <cassert>

#include "core/error_inject.hpp"
#include "storage/layout.hpp"

namespace cksum::storage {

BlockDevice::BlockDevice(std::size_t block_size, const StoragePlan& plan,
                         std::uint64_t seed)
    : block_size_(block_size), plan_(plan), rng_(seed) {
  assert(block_size_ >= 2 * kSectorSize && block_size_ % kSectorSize == 0);
  assert(plan_.total_rate() <= 1.0 + 1e-9);
  assert(plan_.burst_bits_min >= 1 &&
         plan_.burst_bits_min <= plan_.burst_bits_max &&
         plan_.burst_bits_max <= 64);
}

void BlockDevice::format(std::uint64_t addr, util::ByteView block) {
  assert(block.size() == block_size_);
  blocks_[addr] = util::Bytes(block.begin(), block.end());
}

WriteEvent BlockDevice::write(std::uint64_t addr, util::ByteView block) {
  assert(block.size() == block_size_);
  ++stats_.writes;
  // One partition draw per write, consumed unconditionally so the
  // fault schedule for write k never depends on what classes earlier
  // writes hit — (plan, seed, sequence) fully determines the schedule.
  const double u = rng_.uniform01();
  double edge = plan_.torn_rate;
  if (u < edge) {
    // Sector-aligned tear strictly inside the block: s sectors of the
    // new write land, the old content's suffix survives. The sealed
    // header travels in sector 0, so the torn block carries the NEW
    // check over a mixed payload — the storage splice.
    const std::size_t sectors = block_size_ / kSectorSize;
    const std::size_t s = 1 + static_cast<std::size_t>(
                                  rng_.below(static_cast<std::uint64_t>(
                                      sectors - 1)));
    util::Bytes& dest = blocks_[addr];
    if (dest.size() != block_size_) dest.assign(block_size_, 0);
    std::copy(block.begin(),
              block.begin() + static_cast<std::ptrdiff_t>(s * kSectorSize),
              dest.begin());
    ++stats_.torn;
    return {WriteEvent::Kind::kTorn, s, 0};
  }
  edge += plan_.misdirect_rate;
  if (u < edge) {
    // The whole block lands at some other initialised address; the
    // target never sees it. With no other address initialised the
    // stray write falls outside the observed set entirely (victim ==
    // target address marks that case).
    std::vector<std::uint64_t> others;
    others.reserve(blocks_.size());
    for (const auto& [a, _] : blocks_)
      if (a != addr) others.push_back(a);
    std::uint64_t victim = addr;
    if (!others.empty()) {
      victim = others[rng_.below(others.size())];
      blocks_[victim] = util::Bytes(block.begin(), block.end());
    }
    ++stats_.misdirected;
    return {WriteEvent::Kind::kMisdirected, 0, victim};
  }
  edge += plan_.lost_rate;
  if (u < edge) {
    ++stats_.lost;
    return {WriteEvent::Kind::kLost, 0, 0};
  }
  edge += plan_.corrupt_rate;
  if (u < edge) {
    util::Bytes& dest = blocks_[addr];
    dest.assign(block.begin(), block.end());
    const unsigned len = plan_.burst_bits_min +
                         static_cast<unsigned>(rng_.below(
                             plan_.burst_bits_max - plan_.burst_bits_min + 1));
    core::apply_burst(dest,
                      core::random_burst(rng_, 8 * block_size_, len));
    ++stats_.corrupted;
    return {WriteEvent::Kind::kCorrupted, 0, 0};
  }
  blocks_[addr] = util::Bytes(block.begin(), block.end());
  ++stats_.committed;
  return {WriteEvent::Kind::kCommitted, 0, 0};
}

util::ByteView BlockDevice::read(std::uint64_t addr) const noexcept {
  const auto it = blocks_.find(addr);
  if (it == blocks_.end()) return {};
  return util::ByteView(it->second);
}

std::vector<std::uint64_t> BlockDevice::addresses() const {
  std::vector<std::uint64_t> out;
  out.reserve(blocks_.size());
  for (const auto& [a, _] : blocks_) out.push_back(a);
  return out;
}

}  // namespace cksum::storage
