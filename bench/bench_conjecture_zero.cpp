// §6.1 — "The Role of Zero Data": is zero special because it is the
// additive identity? The paper's answer: no — adding a constant to
// every 16-bit word of the filesystem permutes the checksum
// distribution without changing its shape, so match probabilities and
// splice failure rates stay (almost) put. The residual movement comes
// from 0xFFFF words (the second ones-complement zero), which the paper
// flags as the real way zero is special.
#include <cstdio>
#include <iostream>

#include "core/cellstats.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/splice_sim.hpp"

using namespace cksum;

namespace {

/// Add `delta` to every big-endian 16-bit word (mod 2^16), the paper's
/// thought experiment made concrete.
util::Bytes shift_words(util::ByteView file, std::uint16_t delta) {
  util::Bytes out(file.begin(), file.end());
  for (std::size_t i = 0; i + 1 < out.size(); i += 2) {
    const std::uint16_t w = util::load_be16(out.data() + i);
    util::store_be16(out.data() + i, static_cast<std::uint16_t>(w + delta));
  }
  return out;
}

struct Measured {
  double pmax = 0;
  double match = 0;
  double miss_rate = 0;
};

Measured measure(const fsgen::Filesystem& fs, std::uint16_t delta) {
  core::CellStatsConfig ccfg;
  ccfg.ks = {1};
  core::CellStatsCollector cells(ccfg);

  core::SpliceRunConfig scfg;
  scfg.flow = core::paper_flow_config();
  core::SpliceStats splices;

  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    const util::Bytes file = fs.file(i);
    const util::Bytes shifted = shift_words(util::ByteView(file), delta);
    cells.add_file(util::ByteView(shifted));
    splices.merge(core::run_file(scfg, util::ByteView(shifted)));
  }

  Measured m;
  m.pmax = cells.tcp_cells().pmax();
  m.match = cells.tcp_cells().match_probability();
  m.miss_rate = splices.remaining == 0
                    ? 0.0
                    : static_cast<double>(splices.missed_transport) /
                          static_cast<double>(splices.remaining);
  return m;
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), 0.5 * scale);

  std::printf(
      "== Conjecture (paper §6.1): add a constant to every word — is "
      "zero special? ==\n(corpus sics.se:/opt)\n\n");
  core::TextTable t({"word shift", "cell PMax %", "P[match] %",
                     "TCP splice miss %"});
  for (const std::uint16_t delta : {0u, 1u, 0x1234u, 0x8000u, 0xFFFFu}) {
    const Measured m = measure(fs, delta);
    char label[16];
    std::snprintf(label, sizeof label, "+0x%04x", delta);
    t.add_row({label, core::fmt_pct(m.pmax), core::fmt_pct(m.match),
               core::fmt_pct(m.miss_rate)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): all rows nearly equal — the distribution "
      "is permuted, not flattened, so the failure rate barely moves. The "
      "small drift is the 0xFFFF≡0x0000 congruence the paper footnotes.\n");
  return 0;
}
