// Checksum-value distribution measurement over filesystem data —
// the machinery behind Figure 2, Figure 3 and Tables 4-5.
//
// Files are carved the way the paper's simulator carves them: into
// 256-byte packet payloads, each split into 48-byte cells plus a short
// per-packet runt cell ("This includes all cells, including the short
// cell at the end of each packet"). Internet-checksum values are
// histogrammed in their mod-65535 congruence classes; Fletcher values
// as the 16-bit A<<8|B pair.
//
// Block statistics (k consecutive full-size cells) support:
//   * the measured k-cell distributions of Figure 2,
//   * the global match probabilities of Table 4 ("Measured"),
//   * the windowed local congruence probabilities of Table 5,
//     including the identical-data exclusion.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "stats/histogram.hpp"
#include "util/bytes.hpp"

namespace cksum::core {

struct CellStatsConfig {
  std::size_t segment_size = 256;
  std::vector<std::size_t> ks = {1, 2, 3, 4, 5, 8};
  /// Table 5's locality window: "within 2 packet lengths (512 bytes)".
  std::size_t local_window_bytes = 512;
  /// Include per-packet short cells in the k=1 histograms (the paper's
  /// footnote says its single-cell distribution did).
  bool include_short_cells = true;
};

class CellStatsCollector {
 public:
  explicit CellStatsCollector(CellStatsConfig cfg);

  /// Carve one file and accumulate.
  void add_file(util::ByteView file);

  /// k=1 checksum-value histograms over cells.
  const stats::Histogram& tcp_cells() const noexcept { return tcp_cells_; }
  const stats::Histogram& f255_cells() const noexcept { return f255_cells_; }
  const stats::Histogram& f256_cells() const noexcept { return f256_cells_; }

  /// Measured distribution of Internet sums over blocks of k full
  /// cells (sliding window, step one cell). k must be one of cfg.ks.
  const stats::Histogram& tcp_blocks(std::size_t k) const;

  struct LocalCounts {
    std::uint64_t pairs = 0;
    std::uint64_t congruent = 0;
    std::uint64_t congruent_identical = 0;

    double p_congruent() const {
      return pairs == 0 ? 0.0
                        : static_cast<double>(congruent) /
                              static_cast<double>(pairs);
    }
    double p_congruent_excluding_identical() const {
      return pairs == 0 ? 0.0
                        : static_cast<double>(congruent -
                                              congruent_identical) /
                              static_cast<double>(pairs);
    }
  };

  /// Local (within-window) block-pair congruence counts for block
  /// length k.
  const LocalCounts& local(std::size_t k) const;

  std::uint64_t cells_seen() const noexcept { return cells_seen_; }

  /// Merge another collector built with an identical configuration
  /// (all counters are additive; used by parallel collection).
  void merge(const CellStatsCollector& other);

 private:
  CellStatsConfig cfg_;
  stats::Histogram tcp_cells_{65535};
  stats::Histogram f255_cells_{65536};
  stats::Histogram f256_cells_{65536};
  std::map<std::size_t, stats::Histogram> blocks_;
  std::map<std::size_t, LocalCounts> local_;
  std::uint64_t cells_seen_ = 0;
};

}  // namespace cksum::core
