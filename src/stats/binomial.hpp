// Binomial proportion confidence intervals for the miss-rate tables.
//
// Splice misses are Bernoulli trials over the remaining splices; the
// Wilson score interval behaves sensibly even at the tiny counts the
// CRC rows produce (where the normal approximation collapses).
#pragma once

#include <cstdint>

namespace cksum::stats {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for a binomial proportion. `z` is the normal
/// quantile (1.96 for 95%). Returns [0,0] for zero trials.
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96);

}  // namespace cksum::stats
