// Trailer vs header checksums (§5.3): the same 16-bit Internet
// checksum, placed in the TCP header vs appended after the payload,
// over one filesystem — plus the false-positive trade-off and the
// distribution-colouring explanation.
//
//   $ ./examples/trailer_vs_header [profile]
#include <cstdio>
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "sics.se:/opt";
  const auto& prof = fsgen::profile(name);
  const double scale = core::scale_from_env();

  net::PacketConfig header_cfg;
  net::PacketConfig trailer_cfg;
  trailer_cfg.placement = net::ChecksumPlacement::kTrailer;

  const core::SpliceStats h = core::run_profile(prof, header_cfg, scale);
  const core::SpliceStats t = core::run_profile(prof, trailer_cfg, scale);

  std::printf("== header vs trailer TCP checksum on %s ==\n\n", name);
  core::TextTable table({"", "header", "trailer"});
  table.add_row({"splices inspected", core::fmt_count(h.total),
                 core::fmt_count(t.total)});
  table.add_row({"undetected corruption", core::fmt_count(h.pass_changed),
                 core::fmt_count(t.pass_changed)});
  table.add_row({"miss rate (% of remaining)",
                 core::fmt_pct(h.pass_changed, h.remaining),
                 core::fmt_pct(t.pass_changed, t.remaining)});
  table.add_row({"benign splices rejected", core::fmt_count(h.fail_identical),
                 core::fmt_count(t.fail_identical)});
  table.print(std::cout);

  std::printf(
      "\nWhy the trailer wins (the paper's colouring argument):\n"
      "  With a header checksum, the check value and the header it covers\n"
      "  travel in the same cell — they share fate. A splice made of data\n"
      "  cells drawn from the same local distribution needs only an exact\n"
      "  checksum collision, and skewed data makes exact collisions common.\n"
      "  A trailer checksum comes from packet 2 while the header comes from\n"
      "  packet 1, so every splice must bridge a third 'colour' — the\n"
      "  difference between two sequence numbers — and P[X - Y = c] is\n"
      "  always <= P[X = Y] (Lemma 9).\n"
      "\n"
      "The cost: splices whose payload was accidentally correct now fail\n"
      "the checksum (%s here). That only triggers a retransmission that\n"
      "was already due — cells were lost either way.\n",
      core::fmt_count(t.fail_identical).c_str());
  return 0;
}
