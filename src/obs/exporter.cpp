#include "obs/exporter.hpp"

#include <cstdio>

namespace cksum::obs {

MetricsExporter::MetricsExporter(Registry& reg, Options opts)
    : reg_(reg),
      opts_(std::move(opts)),
      t0_(std::chrono::steady_clock::now()) {
  if (!opts_.manifest_path.empty())
    jsonl_.open(opts_.manifest_path + ".jsonl", std::ios::trunc);
  if (jsonl_.is_open() || opts_.ticker)
    thread_ = std::thread([this] { pump(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

double MetricsExporter::elapsed_seconds() const {
  const auto dt = std::chrono::steady_clock::now() - t0_;
  return std::chrono::duration<double>(dt).count();
}

void MetricsExporter::pump() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, opts_.period, [this] { return stop_; })) return;
    lock.unlock();
    emit(/*final_line=*/false);
    lock.lock();
  }
}

void MetricsExporter::emit(bool final_line) {
  const Snapshot snap = reg_.snapshot();
  const double elapsed = elapsed_seconds();
  if (jsonl_.is_open()) {
    char t[32];
    std::snprintf(t, sizeof t, "%.3f", elapsed);
    jsonl_ << "{\"t\": " << t << ", \"metrics\": " << metrics_json(snap)
           << "}\n";
    jsonl_.flush();
  }
  if (opts_.ticker) {
    const std::string line =
        opts_.ticker_line ? opts_.ticker_line(snap, elapsed)
                          : "elapsed " + std::to_string(elapsed) + "s";
    // \r + erase-to-end keeps a shrinking line from leaving residue.
    std::fprintf(stderr, "\r%s\033[K", line.c_str());
    if (final_line) std::fprintf(stderr, "\n");
    std::fflush(stderr);
    ticker_drawn_ = true;
  }
}

void MetricsExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (!finished_ && ticker_drawn_) {
    std::fprintf(stderr, "\n");  // leave the last ticker line intact
    std::fflush(stderr);
  }
}

bool MetricsExporter::finish(RunInfo info) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
  }
  stop();
  emit(/*final_line=*/true);
  if (opts_.manifest_path.empty()) return true;
  if (info.wall_seconds == 0.0) info.wall_seconds = elapsed_seconds();
  return write_manifest(opts_.manifest_path, info, reg_.snapshot());
}

}  // namespace cksum::obs
