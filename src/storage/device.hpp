// A deterministic faulty block device: the storage twin of
// faults::LinkChannel (docs/STORAGE.md, docs/FAULTS.md).
//
// Every write() rolls one fault-class partition draw against the
// plan's rates; at most one fault class fires per write, the storage
// analogue of the paper's per-packet fault events:
//
//   torn        a sector-aligned prefix of the new block lands over
//               the old content (power loss mid-write — the storage
//               splice: new[0, 512·s) ‖ old[512·s, B))
//   misdirected the whole block lands at another initialised address;
//               the target keeps its old content (the storage twin of
//               the ATM misdelivery class)
//   lost        the write is dropped whole; the target keeps its old
//               content (acknowledged-but-never-persisted)
//   corrupt     the block lands, then an in-place bit/byte/burst error
//               (core::apply_burst) hits the stored copy
//
// Determinism discipline is LinkChannel's: the device owns one
// util::Rng seeded at construction, and the (plan, seed, write
// sequence) triple always produces the same fault schedule — the same
// tears at the same sectors, the same victims, the same burst
// patterns. format() bypasses the plan for fault-free test setup.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace cksum::storage {

/// Per-write fault probabilities. The classes partition one uniform
/// draw, so they are mutually exclusive and the rates must sum to at
/// most 1; a rate of 1.0 for one class forces it on every write.
struct StoragePlan {
  double torn_rate = 0.0;
  double misdirect_rate = 0.0;
  double lost_rate = 0.0;
  double corrupt_rate = 0.0;

  /// Burst length bounds (bits) for the corrupt class.
  unsigned burst_bits_min = 1;
  unsigned burst_bits_max = 32;

  double total_rate() const noexcept {
    return torn_rate + misdirect_rate + lost_rate + corrupt_rate;
  }
};

/// What one write() actually did.
struct WriteEvent {
  enum class Kind {
    kCommitted,    ///< full block landed at the target address
    kTorn,         ///< prefix of `tear_sectors` sectors landed
    kMisdirected,  ///< full block landed at `victim` instead
    kLost,         ///< nothing landed
    kCorrupted,    ///< full block landed, then an in-place burst
  };
  Kind kind = Kind::kCommitted;
  std::size_t tear_sectors = 0;  ///< torn: sectors of the new write kept
  std::uint64_t victim = 0;      ///< misdirected: address that was hit
};

/// Injection counters, mergeable across devices (commutative sums, so
/// per-thread devices aggregate deterministically).
struct StorageStats {
  std::uint64_t writes = 0;
  std::uint64_t committed = 0;
  std::uint64_t torn = 0;
  std::uint64_t misdirected = 0;
  std::uint64_t lost = 0;
  std::uint64_t corrupted = 0;

  std::uint64_t total_injected() const noexcept {
    return torn + misdirected + lost + corrupted;
  }

  void merge(const StorageStats& other) noexcept {
    writes += other.writes;
    committed += other.committed;
    torn += other.torn;
    misdirected += other.misdirected;
    lost += other.lost;
    corrupted += other.corrupted;
  }

  friend bool operator==(const StorageStats&, const StorageStats&) = default;
};

class BlockDevice {
 public:
  /// `block_size` must be a positive multiple of kSectorSize.
  BlockDevice(std::size_t block_size, const StoragePlan& plan,
              std::uint64_t seed);

  /// Fault-free placement (mkfs / test setup): the block always lands
  /// intact at `addr` and does not count as a write.
  void format(std::uint64_t addr, util::ByteView block);

  /// One write through the fault plan. `block.size()` must equal the
  /// device block size.
  WriteEvent write(std::uint64_t addr, util::ByteView block);

  /// Stored content at `addr`; empty view when never written.
  util::ByteView read(std::uint64_t addr) const noexcept;

  /// Every initialised address, in increasing order.
  std::vector<std::uint64_t> addresses() const;

  std::size_t block_size() const noexcept { return block_size_; }
  const StoragePlan& plan() const noexcept { return plan_; }
  const StorageStats& stats() const noexcept { return stats_; }

 private:
  std::size_t block_size_;
  StoragePlan plan_;
  util::Rng rng_;
  StorageStats stats_;
  // Ordered so victim selection (below(count) into the sorted address
  // list) is a deterministic function of the fault schedule alone.
  std::map<std::uint64_t, util::Bytes> blocks_;
};

}  // namespace cksum::storage
