// CRC-32 (IEEE 802.3 / AAL5 polynomial 0x04C11DB7), reflected
// implementation with the conventional init = 0xFFFFFFFF and final
// XOR = 0xFFFFFFFF — the exact CRC used by the AAL5 CPCS trailer the
// paper's splice simulator checks.
//
// Three engines are provided (bitwise reference, byte-table, and
// slice-by-8) plus an O(log n) `crc32_combine` in GF(2) and a
// precomputed fixed-length combiner used by the splice simulator to
// evaluate the CRC of a splice from per-cell CRCs in a handful of
// 32x32 bit-matrix products.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace cksum::alg {

/// Reflected IEEE CRC-32 polynomial.
inline constexpr std::uint32_t kCrc32Poly = 0xEDB88320u;

/// Residue of a message with its correct CRC appended big-endian, as
/// AAL5 stores it: crc32_raw over (message ++ be32(crc)) with the
/// standard pre/post conditioning yields this constant.
inline constexpr std::uint32_t kCrc32Residue = 0xC704DD7Bu;

/// Full conventional CRC-32 of a buffer (init/xorout = all ones).
std::uint32_t crc32(util::ByteView data) noexcept;

/// Streaming form: continue a CRC. `crc` is a *finalised* CRC value
/// (as returned by crc32()); pass 0 to start. Mirrors zlib semantics.
std::uint32_t crc32(std::uint32_t crc, util::ByteView data) noexcept;

/// Bitwise reference implementation (for tests).
std::uint32_t crc32_bitwise(std::uint32_t crc, util::ByteView data) noexcept;

/// Byte-at-a-time table implementation.
std::uint32_t crc32_table(std::uint32_t crc, util::ByteView data) noexcept;

/// Slice-by-8 implementation (fast path; used by crc32()).
std::uint32_t crc32_slice8(std::uint32_t crc, util::ByteView data) noexcept;

/// crc32(A ++ B) from crc32(A), crc32(B) and |B| — zlib-style GF(2)
/// matrix combination, O(log |B|).
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b) noexcept;

/// A 32x32 GF(2) matrix over CRC state vectors.
class Gf2Matrix {
 public:
  std::uint32_t times(std::uint32_t vec) const noexcept {
    std::uint32_t out = 0;
    for (int i = 0; vec != 0; ++i, vec >>= 1)
      if (vec & 1u) out ^= rows_[static_cast<std::size_t>(i)];
    return out;
  }

  static Gf2Matrix zero_byte_operator() noexcept;  ///< advance CRC by 1 zero byte
  static Gf2Matrix square(const Gf2Matrix& m) noexcept;
  /// Operator advancing a CRC by `len` zero bytes.
  static Gf2Matrix zeros_operator(std::size_t len) noexcept;

  std::array<std::uint32_t, 32> rows_{};  // rows_[i] = image of bit i
};

/// Precomputed combiner for a fixed second-block length: repeatedly
/// folding blocks of the same size (e.g. 48-byte ATM cells) costs one
/// matrix-vector product per block instead of a log-size ladder. The
/// matrix is flattened into nibble lookup tables (8 tables x 16
/// entries) because the splice simulator calls this millions of times.
class CrcCombiner {
 public:
  explicit CrcCombiner(std::size_t len_b) noexcept;

  /// Advance a finalised CRC through |B| zero bytes — the linear map
  /// underlying combine(). Exposed separately because the splice DFS
  /// decomposes a splice CRC into an XOR of independently-advanced
  /// per-cell CRCs (advance(a ^ b) == advance(a) ^ advance(b)).
  std::uint32_t advance(std::uint32_t crc) const noexcept {
    std::uint32_t out = 0;
    for (int t = 0; t < 8; ++t)
      out ^= nibble_[static_cast<std::size_t>(t)]
                    [(crc >> (4 * t)) & 0xfu];
    return out;
  }

  /// crc32(A ++ B) given finalised crc32(A) and crc32(B).
  /// Identical algebra to zlib's crc32_combine: advance A's register
  /// through |B| zero bytes, then XOR with B's CRC.
  std::uint32_t combine(std::uint32_t crc_a, std::uint32_t crc_b) const noexcept {
    return advance(crc_a) ^ crc_b;
  }

 private:
  std::uint32_t nibble_[8][16];
};

}  // namespace cksum::alg
