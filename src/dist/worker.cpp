#include "dist/worker.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "atm/demux.hpp"
#include "checksum/kernels/kernel.hpp"
#include "core/dircorpus.hpp"
#include "core/experiments.hpp"
#include "core/splice_sim.hpp"
#include "dist/frame.hpp"
#include "dist/protocol.hpp"
#include "faults/channel.hpp"
#include "fsgen/corpus_store.hpp"
#include "fsgen/profile.hpp"
#include "obs/snapshot.hpp"
#include "util/rng.hpp"

namespace cksum::dist {
namespace {

/// Connect with exponential backoff and seeded jitter: 50ms doubling
/// to a 2s ceiling, each wait stretched by up to a quarter so a fleet
/// of workers spawned together does not hammer the coordinator in
/// lockstep. Gives up after ~12s of cumulative waiting (same overall
/// patience as the old fixed 40x250ms schedule).
int connect_coordinator(const std::string& host, std::uint16_t port,
                        std::uint64_t seed) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;
  util::Rng jitter = util::Rng(seed).child(0x5EED);
  std::uint64_t delay_ms = 50;
  for (std::uint64_t waited_ms = 0; waited_ms < 12000;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    ::close(fd);
    const std::uint64_t wait = delay_ms + jitter.below(delay_ms / 4 + 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait));
    waited_ms += wait;
    delay_ms = std::min<std::uint64_t>(delay_ms * 2, 2000);
  }
  return -1;
}

/// The corpus as the worker sees it: either a synthetic filesystem or
/// a sorted real-file list. Shard indices address the same sequence a
/// single-process run walks, so shard evaluation reproduces exactly
/// the per-file stats that run would have merged.
struct WorkerCorpus {
  std::unique_ptr<fsgen::Filesystem> fs;
  std::vector<std::filesystem::path> files;  // directory mode
  std::unique_ptr<fsgen::CorpusReader> store;  // corpus-file mode

  std::size_t size() const {
    if (store) return store->file_count();
    return fs ? fs->file_count() : files.size();
  }
};

WorkerCorpus load_corpus(const ConfigMsg& cfg) {
  WorkerCorpus c;
  switch (cfg.corpus_kind) {
    case CorpusKind::kProfile:
      c.fs = std::make_unique<fsgen::Filesystem>(fsgen::profile(cfg.corpus),
                                                 cfg.scale);
      break;
    case CorpusKind::kManifest:
      c.fs = std::make_unique<fsgen::Filesystem>(fsgen::Filesystem::from_manifest(
          fsgen::profile("nsc05"), cfg.corpus));
      break;
    case CorpusKind::kDirectory:
      c.files = core::list_corpus_files(cfg.corpus);
      break;
    case CorpusKind::kCorpusFile: {
      std::string err;
      c.store = fsgen::CorpusReader::open(cfg.corpus, &err);
      if (!c.store)
        throw std::runtime_error("corpus store " + cfg.corpus + ": " + err);
      break;
    }
  }
  return c;
}

core::SpliceStats evaluate_range(const core::SpliceRunConfig& run,
                                 const WorkerCorpus& corpus,
                                 std::size_t begin, std::size_t end) {
  if (corpus.store) return core::run_corpus_range(run, *corpus.store, begin, end);
  if (corpus.fs) return core::run_filesystem_range(run, *corpus.fs, begin, end);
  // Directory mode: same skip-empty walk as core::run_directory, over
  // the lease's slice of the sorted file list.
  core::SpliceStats st;
  const core::DirLimits limits;
  end = std::min(end, corpus.files.size());
  for (std::size_t i = begin; i < end; ++i) {
    const util::Bytes file =
        core::read_file_prefix(corpus.files[i], limits.max_file_bytes);
    if (file.empty()) continue;
    st.merge(core::run_file(run, util::ByteView(file)));
  }
  return st;
}

/// Heartbeats for the lease under evaluation, sent from a side thread
/// while the main thread is busy inside the evaluator.
class HeartbeatPump {
 public:
  HeartbeatPump(FrameChannel& ch, std::uint32_t interval_ms,
                std::uint64_t seed)
      : ch_(ch),
        interval_ms_(std::max(50u, interval_ms)),
        jitter_(util::Rng(seed).child(0xBEA7)) {
    thread_ = std::thread([this] { loop(); });
  }
  ~HeartbeatPump() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void begin_lease(std::uint64_t shard, std::uint64_t epoch,
                   std::uint64_t job) {
    std::lock_guard<std::mutex> lk(mu_);
    shard_ = shard;
    epoch_ = epoch;
    job_ = job;
    active_ = true;
  }
  void end_lease() {
    std::lock_guard<std::mutex> lk(mu_);
    active_ = false;
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      // Uniform in [0.75, 1.25] of the nominal interval (mean exactly
      // the interval, so lease-expiry math is unchanged) to keep a
      // worker fleet's heartbeats from arriving in synchronized waves.
      const std::uint64_t wait =
          interval_ms_ - interval_ms_ / 4 + jitter_.below(interval_ms_ / 2 + 1);
      cv_.wait_for(lk, std::chrono::milliseconds(wait));
      if (stop_ || !active_) continue;
      const HeartbeatMsg hb{shard_, epoch_, job_};
      lk.unlock();
      ch_.send(MsgType::kHeartbeat, encode(hb));
      lk.lock();
    }
  }

  FrameChannel& ch_;
  const std::uint32_t interval_ms_;
  util::Rng jitter_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool stop_ = false;
  bool active_ = false;
  std::uint64_t shard_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t job_ = 0;
};

/// Reconstruct the exact run configuration for one job. A corpus
/// store's flow is authoritative (the transport checksum is baked into
/// its packet bytes), so kCorpusFile jobs take it from the store.
core::SpliceRunConfig make_run_config(const ConfigMsg& cfg,
                                      const WorkerCorpus& corpus) {
  core::SpliceRunConfig run;
  if (corpus.store) {
    run.flow = corpus.store->info().params.flow;
    run.compress_files = false;  // compression happened at build time
  } else {
    run.flow = core::paper_flow_config();
    run.flow.segment_size = cfg.segment;
    run.flow.packet.transport = static_cast<alg::Algorithm>(cfg.transport);
    run.flow.packet.placement = cfg.trailer ? net::ChecksumPlacement::kTrailer
                                            : net::ChecksumPlacement::kHeader;
    run.compress_files = cfg.compress;
  }
  run.threads = std::max(1u, cfg.threads);
  return run;
}

/// One job's worker-side state: config, corpus, and run configuration.
struct WorkerJob {
  ConfigMsg cfg;
  WorkerCorpus corpus;
  core::SpliceRunConfig run;
};

}  // namespace

int run_worker(const WorkerOptions& opts) {
  // Same up-front family registration as a single-process run, so the
  // delta snapshots and the sub-manifest carry complete families.
  core::register_splice_metrics();
  faults::register_fault_metrics();
  atm::register_atm_metrics();
  alg::kern::register_kernel_metrics();
  register_dist_metrics();

  const int fd = connect_coordinator(opts.host, opts.port, opts.worker_id);
  if (fd < 0) {
    std::fprintf(stderr, "dist worker %llu: cannot connect to %s:%u\n",
                 static_cast<unsigned long long>(opts.worker_id),
                 opts.host.c_str(), opts.port);
    return 1;
  }
  FrameChannel ch(fd);

  HelloMsg hello;
  hello.worker_id = opts.worker_id;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  if (!ch.send(MsgType::kHello, encode(hello))) return 1;

  Frame f;
  if (!ch.recv(&f, 15000) || f.type != MsgType::kConfig) return 1;
  const auto cfg = decode_config(util::ByteView(f.payload));
  if (!cfg) return 1;

  // Job table: the single-job Coordinator's lone Config is job 0; the
  // multi-tenant JobService adds further jobs with JobConfig frames
  // before the first lease it grants this connection for each.
  std::map<std::uint64_t, WorkerJob> jobs;
  auto add_job = [&](std::uint64_t id, const ConfigMsg& jc) -> bool {
    WorkerJob j;
    j.cfg = jc;
    try {
      j.corpus = load_corpus(jc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dist worker %llu: bad corpus config: %s\n",
                   static_cast<unsigned long long>(opts.worker_id), e.what());
      return false;
    }
    j.run = make_run_config(jc, j.corpus);
    jobs.erase(id);
    jobs.emplace(id, std::move(j));
    return true;
  };
  if (!add_job(0, *cfg)) return 1;

  obs::Registry& reg = obs::Registry::global();
  const auto start = std::chrono::steady_clock::now();
  HeartbeatPump pump(ch, cfg->heartbeat_ms, opts.worker_id);

  while (true) {
    // Generous wait: the coordinator may hold grants back until the
    // whole fleet has connected (the start barrier).
    if (!ch.recv(&f, 60000)) return 1;
    switch (f.type) {
      case MsgType::kJobConfig: {
        const auto m = decode_job_config(util::ByteView(f.payload));
        if (!m || !add_job(m->job, m->run)) return 1;
        break;
      }
      case MsgType::kLeaseGrant: {
        const auto g = decode_lease_grant(util::ByteView(f.payload));
        if (!g) return 1;
        const auto it = jobs.find(g->job);
        if (it == jobs.end()) return 1;  // grant before JobConfig: bug
        const WorkerJob& job = it->second;
        pump.begin_lease(g->shard, g->epoch, g->job);
        const obs::Snapshot before = reg.snapshot();
        LeaseResultMsg res;
        res.shard = g->shard;
        res.epoch = g->epoch;
        res.job = g->job;
        res.stats = evaluate_range(job.run, job.corpus, g->begin, g->end);
        res.deltas = obs::counter_deltas(before, reg.snapshot());
        pump.end_lease();
        if (!ch.send(MsgType::kLeaseResult, encode(res))) return 1;
        break;
      }
      case MsgType::kIdle:
        break;
      case MsgType::kShutdown: {
        GoodbyeMsg bye;
        if (!opts.metrics_out.empty()) {
          obs::RunInfo info;
          info.tool = opts.tool;
          info.corpus = cfg->corpus_kind == CorpusKind::kManifest
                            ? "<manifest>"
                            : cfg->corpus;
          info.seed = 0;
          info.threads = jobs.count(0) ? jobs.at(0).run.threads : 1;
          info.wall_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          info.extra_json =
              "\"kernel\": \"" + std::string(alg::kern::active_kernel().name) +
              "\", \"kernel_reason\": \"" +
              obs::json_escape(alg::kern::kernel_selection_reason()) +
              "\", \"worker\": " + std::to_string(opts.worker_id);
          if (obs::write_manifest(opts.metrics_out, info, reg.snapshot()))
            bye.manifest_path = opts.metrics_out;
        }
        ch.send(MsgType::kGoodbye, encode(bye));
        return 0;
      }
      default:
        return 1;
    }
  }
}

}  // namespace cksum::dist
