#include "dist/spawn.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

namespace cksum::dist {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return buf;
}

pid_t spawn_process(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv)
    cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    _exit(127);
  }
  return pid;
}

bool try_wait_process(pid_t pid, int* code) {
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r != pid) return false;
  if (WIFEXITED(status))
    *code = WEXITSTATUS(status);
  else if (WIFSIGNALED(status))
    *code = 128 + WTERMSIG(status);
  else
    *code = -1;
  return true;
}

int wait_process(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    break;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

void kill_process(pid_t pid) {
  if (pid > 0) ::kill(pid, SIGKILL);
}

}  // namespace cksum::dist
