// Segment-size ablation. The paper fixed TCP segments at 256 bytes
// (7 AAL5 cells). Larger segments mean more cells per packet, hence
// more splices per pair but longer substitutions on average — and
// Corollary 3 says longer substitutions are (slightly) more uniform.
// This sweep shows how the TCP miss rate and the identical-data
// fraction move with segment size on a fixed corpus.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  // Splices per pair grow as C(2c-2, c-1) in the cell count c, so the
  // sweep stays below ~9 cells (12,869 splices/pair); 256 bytes — the
  // paper's choice — is already 923.
  const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), 0.3 * scale);

  std::printf(
      "== Ablation: TCP segment size (sics.se:/opt; paper used 256) "
      "==\n\n");
  core::TextTable t({"segment", "cells/pkt", "splices", "identical%",
                     "TCP miss%"});
  for (const std::size_t segment : {64u, 128u, 192u, 256u, 320u, 384u}) {
    core::SpliceRunConfig cfg;
    cfg.flow = core::paper_flow_config();
    cfg.flow.segment_size = segment;
    cfg.threads = 0;
    const core::SpliceStats st = core::run_filesystem(cfg, fs);
    const std::size_t cells = (segment + 40 + 8 + 47) / 48;
    t.add_row({std::to_string(segment), std::to_string(cells),
               core::fmt_count(st.total),
               core::fmt_pct(st.identical, st.total),
               core::fmt_pct(st.missed_transport, st.remaining)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: splice count grows combinatorially with cell "
      "count (C(2c-2,c-1)); the miss rate drifts down as substitutions "
      "lengthen (Corollary 3), but stays far above the uniform "
      "0.0015%%.\n");
  return 0;
}
