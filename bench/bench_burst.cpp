// §2's error-detection guarantees as a measured table: detection rate
// of each check code against random bursts of increasing length over a
// 296-byte packet-sized buffer. Shows the guarantee cliffs — TCP at
// 16 bits, Fletcher at 16, CRC-32 at 33 — and each code's residual
// miss rate beyond its guarantee (≈ 2^-width).
#include <cstdio>
#include <iostream>

#include "checksum/checksum.hpp"
#include "core/error_inject.hpp"
#include "core/report.hpp"
#include "util/rng.hpp"

using namespace cksum;

int main() {
  constexpr std::size_t kBufBytes = 296;
  constexpr int kTrials = 60000;

  util::Bytes data(kBufBytes);
  util::Rng data_rng(0xdada);
  data_rng.fill(data);
  const util::ByteView view(data.data(), data.size());

  const std::uint16_t tcp_good = alg::ones_canonical(alg::internet_sum(view));
  const auto f255_good = alg::fletcher_block(view, alg::FletcherMod::kOnes255);
  const auto f256_good = alg::fletcher_block(view, alg::FletcherMod::kTwos256);
  const std::uint32_t crc_good = alg::crc32(view);

  std::printf(
      "== Burst-error detection rates (%% of %d random bursts missed, "
      "%zu-byte buffer) ==\n\n",
      kTrials, kBufBytes);
  core::TextTable t({"burst bits", "TCP miss%", "F-255 miss%", "F-256 miss%",
                     "CRC-32 miss%"});
  util::Rng rng(0xb0);
  for (const unsigned len :
       {1u, 4u, 8u, 15u, 16u, 17u, 24u, 31u, 32u, 33u, 40u, 48u, 64u}) {
    std::uint64_t miss_tcp = 0, miss_f255 = 0, miss_f256 = 0, miss_crc = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      util::Bytes corrupted = data;
      core::apply_burst(corrupted, core::random_burst(rng, 8 * kBufBytes, len));
      const util::ByteView cv(corrupted.data(), corrupted.size());
      if (alg::ones_canonical(alg::internet_sum(cv)) == tcp_good) ++miss_tcp;
      if (alg::fletcher_block(cv, alg::FletcherMod::kOnes255) == f255_good)
        ++miss_f255;
      if (alg::fletcher_block(cv, alg::FletcherMod::kTwos256) == f256_good)
        ++miss_f256;
      if (alg::crc32(cv) == crc_good) ++miss_crc;
    }
    t.add_row({std::to_string(len), core::fmt_pct(miss_tcp, kTrials),
               core::fmt_pct(miss_f255, kTrials),
               core::fmt_pct(miss_f256, kTrials),
               core::fmt_pct(miss_crc, kTrials)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper §2): zeros up to each code's guarantee "
      "(TCP/Fletcher 15 bits, CRC-32 32 bits), then ~2^-16 for the 16-bit "
      "codes and ~2^-32 (i.e. 0 at this sample size) for CRC-32.\n");
  return 0;
}
