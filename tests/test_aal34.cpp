// AAL3/4 SAR layer: CRC-10, cell codec, reassembly, and the headline
// structural property — splice immunity via sequence numbers.
#include <gtest/gtest.h>

#include "atm/aal34.hpp"
#include "atm/splice.hpp"
#include "net/flow.hpp"
#include "util/rng.hpp"

namespace cksum::atm {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

TEST(Crc10, LinearAndDeterministic) {
  const Bytes a = random_bytes(1, 48);
  EXPECT_EQ(crc10(ByteView(a)), crc10(ByteView(a)));
  EXPECT_LT(crc10(ByteView(a)), 1024u);
  const Bytes zeros(48, 0);
  EXPECT_EQ(crc10(ByteView(zeros)), 0u);  // init 0, zero input
}

TEST(Crc10, DetectsAllSingleBitErrors) {
  Bytes data = random_bytes(2, 48);
  const auto good = crc10(ByteView(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      data[i] ^= static_cast<std::uint8_t>(1 << b);
      EXPECT_NE(crc10(ByteView(data)), good);
      data[i] ^= static_cast<std::uint8_t>(1 << b);
    }
  }
}

TEST(Sar34Cell, EncodeDecodeRoundTrip) {
  Sar34Cell cell;
  cell.st = SegmentType::kBom;
  cell.sn = 0xA;
  cell.mid = 0x2AB;
  cell.li = 40;
  util::Rng rng(3);
  rng.fill(cell.payload);
  const auto wire = cell.encode();
  const auto back = Sar34Cell::decode(ByteView(wire.data(), wire.size()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->st, SegmentType::kBom);
  EXPECT_EQ(back->sn, 0xA);
  EXPECT_EQ(back->mid, 0x2AB);
  EXPECT_EQ(back->li, 40);
  EXPECT_EQ(back->payload, cell.payload);
}

TEST(Sar34Cell, CrcRejectsEverySingleBitError) {
  Sar34Cell cell;
  util::Rng rng(4);
  rng.fill(cell.payload);
  auto wire = cell.encode();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      wire[i] ^= static_cast<std::uint8_t>(1 << b);
      EXPECT_FALSE(
          Sar34Cell::decode(ByteView(wire.data(), wire.size())).has_value())
          << "byte " << i << " bit " << b;
      wire[i] ^= static_cast<std::uint8_t>(1 << b);
    }
  }
}

TEST(Aal34, SegmentationShape) {
  const Bytes pdu = random_bytes(5, 296);
  const auto cells = aal34_segment(ByteView(pdu), 7, 3);
  ASSERT_EQ(cells.size(), 7u);  // ceil(296/44)
  EXPECT_EQ(cells.front().st, SegmentType::kBom);
  EXPECT_EQ(cells.back().st, SegmentType::kEom);
  for (std::size_t i = 1; i + 1 < cells.size(); ++i)
    EXPECT_EQ(cells[i].st, SegmentType::kCom);
  for (std::size_t i = 0; i < cells.size(); ++i)
    EXPECT_EQ(cells[i].sn, (3 + i) & 0xf);
  EXPECT_EQ(cells.back().li, 296 - 6 * 44);
}

TEST(Aal34, SingleSegmentMessage) {
  const Bytes pdu = random_bytes(6, 30);
  const auto cells = aal34_segment(ByteView(pdu), 7, 0);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].st, SegmentType::kSsm);
  Aal34Reassembler r;
  const auto out = r.push(cells[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->bytes, pdu);
}

TEST(Aal34, LosslessReassembly) {
  Aal34Reassembler r;
  std::uint8_t sn = 0;
  for (int p = 0; p < 10; ++p) {
    const Bytes pdu = random_bytes(10 + p, 100 + p * 53);
    const auto cells = aal34_segment(ByteView(pdu), 7, sn);
    sn = static_cast<std::uint8_t>((sn + cells.size()) & 0xf);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto out = r.push(cells[i]);
      if (i + 1 < cells.size()) {
        EXPECT_FALSE(out.has_value());
      } else {
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->bytes, pdu);
      }
    }
  }
  EXPECT_EQ(r.sequence_violations(), 0u);
}

TEST(Aal34, EverySpliceDropPatternIsDetected) {
  // THE comparison with AAL5: enumerate the same in-order drop
  // patterns that produce AAL5 splices (every drop of < 16 cells
  // total) and verify the sequence numbers catch every one — no
  // reassembled PDU ever mixes the two packets' bytes.
  const Bytes p1 = random_bytes(20, 296);
  const Bytes p2 = random_bytes(21, 296);
  const auto c1 = aal34_segment(ByteView(p1), 7, 0);
  const auto c2 = aal34_segment(ByteView(p2), 7,
                                static_cast<std::uint8_t>(c1.size() & 0xf));
  ASSERT_EQ(c1.size(), 7u);
  ASSERT_EQ(c2.size(), 7u);

  // All 2^14 keep/drop patterns over the 14 cells.
  for (unsigned pattern = 0; pattern < (1u << 14); ++pattern) {
    Aal34Reassembler r;
    for (unsigned i = 0; i < 14; ++i) {
      if (pattern & (1u << i)) continue;  // dropped
      const Sar34Cell& cell = i < 7 ? c1[i] : c2[i - 7];
      const auto out = r.push(cell);
      if (out) {
        // Any completed PDU must be exactly one of the originals.
        EXPECT_TRUE(out->bytes == p1 || out->bytes == p2)
            << "pattern " << pattern << " fused packets!";
      }
    }
  }
}


TEST(Cpcs34, FrameParseRoundTrip) {
  for (std::size_t len : {1u, 3u, 4u, 100u, 297u}) {
    const Bytes payload = random_bytes(60 + len, len);
    const Bytes pdu = cpcs34_frame(ByteView(payload), 0x5A);
    EXPECT_EQ(pdu.size() % 4, 0u);
    const auto parsed = cpcs34_parse(ByteView(pdu));
    ASSERT_TRUE(parsed.has_value()) << len;
    EXPECT_EQ(parsed->payload, payload);
    EXPECT_EQ(parsed->tag, 0x5A);
  }
}

TEST(Cpcs34, TagMismatchRejected) {
  // The Btag/Etag pair is AAL3/4's third anti-fusion check: gluing the
  // head of one PDU to the tail of another (with different tags) fails.
  const Bytes pa = random_bytes(70, 100);
  const Bytes pb = random_bytes(71, 100);
  const Bytes a = cpcs34_frame(ByteView(pa), 0x11);
  const Bytes b = cpcs34_frame(ByteView(pb), 0x22);
  Bytes fused(a.begin(), a.begin() + 56);
  fused.insert(fused.end(), b.begin() + 56, b.end());
  EXPECT_FALSE(cpcs34_parse(ByteView(fused)).has_value());
}

TEST(Cpcs34, MalformedRejected) {
  EXPECT_FALSE(cpcs34_parse(ByteView(Bytes{})).has_value());
  EXPECT_FALSE(cpcs34_parse(ByteView(Bytes(7, 0))).has_value());
  EXPECT_FALSE(cpcs34_parse(ByteView(Bytes(9, 0))).has_value());  // not mult 4
  Bytes bad = cpcs34_frame(ByteView(Bytes(10, 1)), 7);
  util::store_be16(bad.data() + bad.size() - 2, 9999);  // length lie
  EXPECT_FALSE(cpcs34_parse(ByteView(bad)).has_value());
}

TEST(Aal34, SequenceViolationCounted) {
  const Bytes pdu = random_bytes(30, 296);
  const auto cells = aal34_segment(ByteView(pdu), 7, 0);
  Aal34Reassembler r;
  (void)r.push(cells[0]);
  (void)r.push(cells[1]);
  // Skip cell 2.
  const auto out = r.push(cells[3]);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(r.sequence_violations(), 1u);
  EXPECT_EQ(r.aborted_pdus(), 1u);
}

}  // namespace
}  // namespace cksum::atm
