#include "arq/soak.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace cksum::arq {

namespace {

/// Scenario-local randomized link plan: each fault class is enabled
/// independently so single-class and composed regimes both occur.
/// Rates stay at or below the 10% ceiling the guarantees are stated
/// for.
faults::LinkPlan random_link_plan(util::Rng& rng) {
  faults::LinkPlan p;
  if (rng.chance(0.7)) p.drop_rate = rng.uniform01() * 0.10;
  if (rng.chance(0.6)) p.duplicate_rate = rng.uniform01() * 0.10;
  if (rng.chance(0.7)) {
    p.corrupt_rate = rng.uniform01() * 0.10;
    p.burst_bits_min = 1;
    p.burst_bits_max = 1 + static_cast<unsigned>(rng.below(64));
  }
  if (rng.chance(0.4)) p.truncate_rate = rng.uniform01() * 0.08;
  if (rng.chance(0.6)) {
    p.reorder_rate = rng.uniform01() * 0.10;
    p.reorder_delay_max = 1 + rng.below(48);
  }
  return p;
}

bool plan_is_clean(const faults::LinkPlan& p) {
  return p.drop_rate == 0.0 && p.duplicate_rate == 0.0 &&
         p.corrupt_rate == 0.0 && p.truncate_rate == 0.0 &&
         p.reorder_rate == 0.0;
}

alg::Algorithm random_checksum(util::Rng& rng) {
  switch (rng.below(4)) {
    case 0: return alg::Algorithm::kInternet;
    case 1: return alg::Algorithm::kFletcher255;
    case 2: return alg::Algorithm::kFletcher256;
    default: return alg::Algorithm::kCrc32;
  }
}

/// Field-for-field comparison for the determinism re-run (A5).
bool same_result(const SimResult& a, const SimResult& b) {
  return a.delivered_ok == b.delivered_ok &&
         a.residual_undetected == b.residual_undetected &&
         a.residual_lost == b.residual_lost && a.gave_up == b.gave_up &&
         a.payload_bytes_ok == b.payload_bytes_ok && a.ticks == b.ticks &&
         a.events == b.events && a.latency_sum == b.latency_sum &&
         a.sender.data_sent == b.sender.data_sent &&
         a.sender.retransmits == b.sender.retransmits &&
         a.sender.timeouts == b.sender.timeouts &&
         a.sender.dup_acks == b.sender.dup_acks &&
         a.receiver.acks_sent == b.receiver.acks_sent &&
         a.receiver.check_rejects == b.receiver.check_rejects &&
         a.data_link.total_injected() == b.data_link.total_injected() &&
         a.ack_link.total_injected() == b.ack_link.total_injected();
}

SimConfig scenario_config(const ArqSoakConfig& cfg, std::uint64_t index,
                          std::vector<util::Bytes>* payloads) {
  util::Rng rng = util::Rng(cfg.seed).child(index);

  SimConfig sim;
  // Rotate the policy so a soak of any length exercises all three.
  sim.arq.policy = static_cast<Policy>(index % 3);
  sim.arq.checksum = random_checksum(rng);
  sim.arq.window = 1 + rng.below(24);
  sim.link_delay = 1 + rng.below(16);
  // RTO strictly above the round trip, else a clean link still times
  // out spuriously and the A3 no-retransmission check cannot hold.
  sim.arq.rto = 2 * sim.link_delay + 4 + rng.below(128);
  sim.arq.rto_max = sim.arq.rto * (4 + rng.below(8));
  sim.arq.retry_budget = 2 + static_cast<unsigned>(rng.below(10));
  sim.seed = rng.next();

  // Roughly one scenario in seven runs fault-free so A3 is checked
  // continuously, not just by the unit tests.
  if (!rng.chance(1.0 / 7.0)) {
    sim.data_link = random_link_plan(rng);
    sim.ack_link = random_link_plan(rng);
  }

  const std::size_t n = 4 + rng.below(60);
  payloads->clear();
  payloads->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Zero-length payloads are legal frames; include them sometimes.
    const std::size_t size = rng.chance(0.05) ? 0 : 1 + rng.below(1200);
    util::Bytes p(size);
    rng.fill(p);
    payloads->push_back(std::move(p));
  }
  return sim;
}

}  // namespace

std::string arq_reproducer_line(const ArqSoakConfig& cfg,
                                std::uint64_t index) {
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "faultlab arqsoak --seed 0x%llx --scenario %llu",
                static_cast<unsigned long long>(cfg.seed),
                static_cast<unsigned long long>(index));
  return std::string(buf);
}

ArqScenarioResult run_arq_scenario(const ArqSoakConfig& cfg,
                                   std::uint64_t index) {
  std::vector<util::Bytes> payloads;
  const SimConfig sim_cfg = scenario_config(cfg, index, &payloads);

  ArqScenarioResult res;
  res.sim = run_sim(sim_cfg, payloads);
  res.faults_injected = res.sim.data_link.total_injected() +
                        res.sim.ack_link.total_injected();

  const auto violate = [&](const std::string& what) {
    ++res.violations;
    if (res.violation_detail.empty()) res.violation_detail = what;
  };

  // A1: termination.
  if (!res.sim.terminated)
    violate("event cap exceeded: protocol failed to terminate");
  // A2: run_sim's internal accounting identities.
  if (!res.sim.violation.empty()) violate(res.sim.violation);
  // Delivered-or-abandoned covers every offered payload.
  if (res.sim.terminated &&
      res.sim.delivered_ok + res.sim.residual_undetected + res.sim.gave_up +
              res.sim.residual_lost <
          res.sim.payloads_offered)
    violate("payload neither delivered nor abandoned");

  // A3: fault-free fidelity.
  if (plan_is_clean(sim_cfg.data_link) && plan_is_clean(sim_cfg.ack_link)) {
    if (res.sim.delivered_ok != res.sim.payloads_offered)
      violate("fault-free scenario did not deliver every payload intact");
    if (res.sim.sender.retransmits != 0 || res.sim.gave_up != 0 ||
        res.sim.residual_undetected != 0 || res.sim.residual_lost != 0)
      violate("fault-free scenario retransmitted, abandoned, or corrupted");
  }

  // A4: CRC-32 residual events are ~2^-32 — any hit is a violation.
  if (sim_cfg.arq.checksum == alg::Algorithm::kCrc32 &&
      (res.sim.residual_undetected != 0 || res.sim.residual_lost != 0))
    violate("residual error under CRC-32 framing");

  return res;
}

ArqSoakResult run_arq_soak(const ArqSoakConfig& cfg) {
  ArqSoakResult out;
  for (std::uint64_t i = 0; i < cfg.max_scenarios; ++i) {
    if (cfg.target_faults != 0 && out.faults_injected >= cfg.target_faults)
      break;
    ArqScenarioResult r = run_arq_scenario(cfg, i);

    // A5: every eighth scenario replays and must match exactly.
    if (i % 8 == 0 && r.violations == 0) {
      const ArqScenarioResult again = run_arq_scenario(cfg, i);
      if (!same_result(r.sim, again.sim)) {
        ++r.violations;
        r.violation_detail = "scenario replay diverged (nondeterminism)";
      }
    }

    ++out.scenarios;
    out.faults_injected += r.faults_injected;
    out.payloads_offered += r.sim.payloads_offered;
    out.delivered_ok += r.sim.delivered_ok;
    out.residual_undetected += r.sim.residual_undetected;
    out.residual_lost += r.sim.residual_lost;
    out.gave_up += r.sim.gave_up;
    out.retransmits += r.sim.sender.retransmits;
    out.violations += r.violations;
    if (r.violations > 0) {
      if (out.violation_detail.empty())
        out.violation_detail = r.violation_detail;
      if (out.reproducer.empty()) out.reproducer = arq_reproducer_line(cfg, i);
      if (cfg.stop_on_violation) break;
    }
  }
  return out;
}

}  // namespace cksum::arq
