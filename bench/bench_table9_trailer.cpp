// Table 9: Trailer checksum results — the standard header-placed TCP
// checksum vs the same sum placed in a packet trailer, on five
// filesystems. Separating the check value from the header it covers
// breaks fate-sharing and adds a third "colour" to every splice; the
// paper measured a 20-50x improvement.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  std::printf("== Table 9: trailer checksum results (256-byte packets) ==\n\n");
  core::TextTable t({"filesystem", "TCP misses %", "Trailer misses %",
                     "improvement", "uniform %"});
  const double uniform = alg::uniform_miss_rate(alg::Algorithm::kInternet);
  for (const char* name :
       {"sics.se:/opt", "smeg.stanford.edu:/u1",
        "pompano.stanford.edu:/usr/local", "sics.se:/src1", "sics.se:/src2"}) {
    const auto& prof = fsgen::profile(name);
    net::PacketConfig header_cfg;
    net::PacketConfig trailer_cfg;
    trailer_cfg.placement = net::ChecksumPlacement::kTrailer;
    const core::SpliceStats h = core::run_profile(prof, header_cfg, scale);
    const core::SpliceStats tr = core::run_profile(prof, trailer_cfg, scale);
    const double hr = h.remaining ? static_cast<double>(h.missed_transport) /
                                        static_cast<double>(h.remaining)
                                  : 0.0;
    const double trr = tr.remaining
                           ? static_cast<double>(tr.missed_transport) /
                                 static_cast<double>(tr.remaining)
                           : 0.0;
    char improvement[32];
    std::snprintf(improvement, sizeof improvement, "%.1fx",
                  trr > 0 ? hr / trr : 0.0);
    t.add_row({name, core::fmt_pct(hr), core::fmt_pct(trr), improvement,
               core::fmt_pct(uniform)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): trailer misses 20-50x less often than "
      "header; on some systems below the uniform rate (non-uniformity "
      "*helping* for once).\n");
  return 0;
}
