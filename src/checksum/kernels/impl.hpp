// Internal declarations for the kernel formulations themselves.
//
// Each tier's raw entry points live here so the registry (kernel.cpp)
// can assemble Kernel records from them and the conformance harness
// can reach individual formulations if it ever needs to; everything
// else should go through the dispatched entry points in kernel.hpp.
#pragma once

#include <cstdint>

#include "checksum/fletcher.hpp"
#include "checksum/fletcher32.hpp"
#include "checksum/koopman.hpp"
#include "util/bytes.hpp"

namespace cksum::alg::kern::impl {

// --- scalar: the reference tier -------------------------------------
// Byte/word-at-a-time with immediate modular reduction at every step.
// Deliberately the dumbest correct formulation of each algorithm; the
// other tiers are differentially tested against these.
std::uint16_t scalar_internet_sum(util::ByteView data) noexcept;
FletcherPair scalar_fletcher(util::ByteView data, FletcherMod mod) noexcept;
Fletcher32Pair scalar_fletcher32(util::ByteView data) noexcept;
std::uint32_t scalar_adler32(std::uint32_t adler, util::ByteView data) noexcept;
std::uint32_t scalar_crc32(std::uint32_t crc, util::ByteView data) noexcept;
KoopmanDualPair scalar_koopman_dual(util::ByteView data) noexcept;
std::uint64_t scalar_koopman_single(util::ByteView data) noexcept;

// --- slicing: table-slicing CRC + blocked modular sums --------------
// Slicing-by-8 CRC-32 over tables derived from GenericCrc; Fletcher /
// Fletcher-32 / Adler-32 unrolled with modular reduction deferred to
// overflow-safe block boundaries; word-at-a-time Internet sum with one
// fold at the end.
std::uint16_t slicing_internet_sum(util::ByteView data) noexcept;
FletcherPair slicing_fletcher(util::ByteView data, FletcherMod mod) noexcept;
Fletcher32Pair slicing_fletcher32(util::ByteView data) noexcept;
std::uint32_t slicing_adler32(std::uint32_t adler,
                              util::ByteView data) noexcept;
std::uint32_t slicing_crc32(std::uint32_t crc, util::ByteView data) noexcept;
// Koopman sums with the per-block 64-bit modulo replaced by lane
// folding against small power-of-2^16 (dual) / power-of-2^32 (single)
// residues, reduction deferred to overflow-safe run boundaries.
KoopmanDualPair slicing_koopman_dual(util::ByteView data) noexcept;
std::uint64_t slicing_koopman_single(util::ByteView data) noexcept;

// --- swar: 64-bit SWAR Internet sum ---------------------------------
// Eight message bytes per 64-bit load, end-around carries deferred
// into the top half of the accumulator and folded once at the end.
std::uint16_t swar_internet_sum(util::ByteView data) noexcept;

// --- chorba: tableless CRC-32 ---------------------------------------
// Sparse polynomial convolution (arXiv 2412.16398): message words are
// eliminated by XOR-ing shifted copies of a weight-6 multiple of the
// generator, five register-resident carry words, no lookup tables.
// Runs anywhere; the fast fallback tier below clmul.
std::uint32_t chorba_crc32(std::uint32_t crc, util::ByteView data) noexcept;

// --- clmul: carry-less-multiply folding CRC-32 ----------------------
// PCLMULQDQ (x86) / PMULL (AArch64) 4-way 64-byte fold loop with a
// Barrett final reduction. clmul_crc32 is always safe to call: it
// falls back to chorba when the binary or the CPU lacks the
// instructions (so a stale function pointer can never fault).
std::uint32_t clmul_crc32(std::uint32_t crc, util::ByteView data) noexcept;

/// nullptr when the clmul kernel genuinely runs on this machine, else
/// a short human-readable reason ("CPU lacks carry-less multiply...",
/// "binary built without carry-less-multiply support").
const char* clmul_unavailable() noexcept;

/// Slice-by-8 CRC-32 lookup tables. t[0] is the byte table taken from
/// GenericCrc(32, standard_poly(32)); t[1..7] are the shifted tables
/// the slicing loop combines eight-at-a-time.
struct CrcSliceTables {
  std::uint32_t t[8][256];
};

/// The process-wide slice tables, built on first use from GenericCrc.
const CrcSliceTables& crc32_slice_tables() noexcept;

}  // namespace cksum::alg::kern::impl
