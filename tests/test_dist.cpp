// Distributed splice service: frame codec + CRC/NACK recovery, message
// serde, the lease state machine, delta export, and the algebraic
// properties of SpliceStats::merge that make the distributed merge
// bitwise-deterministic in the first place.
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/splice_sim.hpp"
#include "dist/coordinator.hpp"
#include "dist/frame.hpp"
#include "dist/lease.hpp"
#include "dist/protocol.hpp"
#include "dist/service.hpp"
#include "dist/worker.hpp"
#include "fsgen/profile.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"
#include "util/rng.hpp"

namespace cksum {
namespace {

using dist::DeliverOutcome;
using dist::FrameChannel;
using dist::LeaseTable;
using dist::MsgType;

// --- Frame codec ----------------------------------------------------

TEST(DistFrame, EncodeDecodeRoundtrip) {
  const util::Bytes payload = {1, 2, 3, 4, 5};
  const util::Bytes wire =
      dist::encode_frame(MsgType::kLeaseGrant, 7, util::ByteView(payload));
  ASSERT_EQ(wire.size(), dist::kFrameHeaderLen + payload.size() +
                             dist::kFrameTrailerLen);
  MsgType type{};
  std::uint32_t seq = 0, len = 0;
  ASSERT_TRUE(dist::decode_frame_header(wire.data(), &type, &seq, &len));
  EXPECT_EQ(type, MsgType::kLeaseGrant);
  EXPECT_EQ(seq, 7u);
  EXPECT_EQ(len, payload.size());
  const std::uint32_t stored =
      static_cast<std::uint32_t>(wire[wire.size() - 4]) |
      (static_cast<std::uint32_t>(wire[wire.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(wire[wire.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(wire[wire.size() - 1]) << 24);
  EXPECT_TRUE(dist::frame_crc_ok(
      util::ByteView(wire.data(), wire.size() - 4), stored));
}

TEST(DistFrame, HeaderCorruptionIsUnrecoverable) {
  util::Bytes wire = dist::encode_frame(MsgType::kHello, 0, {});
  wire[0] ^= 0xff;  // magic
  MsgType type{};
  std::uint32_t seq = 0, len = 0;
  EXPECT_FALSE(dist::decode_frame_header(wire.data(), &type, &seq, &len));
}

TEST(DistFrame, PayloadCorruptionFailsCrc) {
  util::Bytes payload(64, 0xab);
  util::Bytes wire =
      dist::encode_frame(MsgType::kLeaseResult, 3, util::ByteView(payload));
  wire[dist::kFrameHeaderLen + 10] ^= 0x01;
  const std::uint32_t stored =
      static_cast<std::uint32_t>(wire[wire.size() - 4]) |
      (static_cast<std::uint32_t>(wire[wire.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(wire[wire.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(wire[wire.size() - 1]) << 24);
  EXPECT_FALSE(dist::frame_crc_ok(
      util::ByteView(wire.data(), wire.size() - 4), stored));
}

/// A corrupted frame over a real socketpair is NACKed and replayed;
/// the receiver sees every message intact and in order.
TEST(DistFrame, CorruptedFrameRecoveredByNackResend) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  FrameChannel a(fds[0]);
  FrameChannel b(fds[1]);

  // Receiver thread: b must see three intact frames despite the
  // corruption of the second. b's recv also services a's NACK traffic.
  std::thread rx([&] {
    for (std::uint32_t i = 0; i < 3; ++i) {
      dist::Frame f;
      ASSERT_TRUE(b.recv(&f, 5000)) << "frame " << i;
      ASSERT_EQ(f.type, MsgType::kHeartbeat);
      ASSERT_EQ(f.payload.size(), 1u);
      EXPECT_EQ(f.payload[0], static_cast<std::uint8_t>(i));
    }
  });

  const auto send_one = [&](std::uint8_t i) {
    const util::Bytes payload = {i};
    ASSERT_TRUE(a.send(MsgType::kHeartbeat, util::ByteView(payload)));
  };
  send_one(0);
  a.corrupt_next_send();
  send_one(1);
  send_one(2);
  // a must observe and answer b's NACK: pump its receive side until
  // the replay happened (recv times out once traffic drains).
  dist::Frame f;
  a.recv(&f, 1000);
  rx.join();

  EXPECT_GE(b.stats().crc_rejects, 1u);
  EXPECT_GE(a.stats().resends, 1u);
}

TEST(DistFrame, SerialOrderSoundAcrossWrap) {
  EXPECT_TRUE(dist::seq_before(0xfffffffeu, 0xffffffffu));
  EXPECT_TRUE(dist::seq_before(0xffffffffu, 0u));  // across the wrap
  EXPECT_TRUE(dist::seq_before(0xffffffffu, 5u));
  EXPECT_FALSE(dist::seq_before(0u, 0xffffffffu));
  EXPECT_FALSE(dist::seq_before(7u, 7u));
  EXPECT_TRUE(dist::seq_before(7u, 8u));
  EXPECT_FALSE(dist::seq_before(8u, 7u));
}

/// Regression: NACK replay across the 2^32 sequence wraparound. The
/// resend ring used raw u32 comparisons, so a replay whose buffered
/// frames straddle the wrap (..., 0xffffffff, 0x0, ...) skipped the
/// post-wrap frames and the receiver could never resynchronize.
TEST(DistFrame, NackRecoveryAcrossSeqWraparound) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  FrameChannel a(fds[0]);
  FrameChannel b(fds[1]);
  // Start the a->b stream two frames short of the wrap (both ends must
  // agree); the b->a direction (carrying b's NACKs) stays at zero.
  a.preset_sequences_for_test(/*send_seq=*/0xfffffffeu, /*recv_next=*/0);
  b.preset_sequences_for_test(/*send_seq=*/0, /*recv_next=*/0xfffffffeu);

  constexpr std::uint32_t kFrames = 6;  // seqs 0xfffffffe .. 0x00000003
  std::thread rx([&] {
    for (std::uint32_t i = 0; i < kFrames; ++i) {
      dist::Frame f;
      ASSERT_TRUE(b.recv(&f, 5000)) << "frame " << i;
      ASSERT_EQ(f.type, MsgType::kHeartbeat);
      ASSERT_EQ(f.payload.size(), 1u);
      EXPECT_EQ(f.payload[0], static_cast<std::uint8_t>(i));
      EXPECT_EQ(f.seq, static_cast<std::uint32_t>(0xfffffffeu + i));
    }
  });

  for (std::uint32_t i = 0; i < kFrames; ++i) {
    if (i == 1) a.corrupt_next_send();  // corrupt seq 0xffffffff
    const util::Bytes payload = {static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(a.send(MsgType::kHeartbeat, util::ByteView(payload)));
  }
  dist::Frame f;
  a.recv(&f, 1000);  // pump a's receive side so it services b's NACK
  rx.join();

  EXPECT_GE(b.stats().crc_rejects, 1u);
  // The replay must include the post-wrap frames (seq 0x0 onward).
  EXPECT_GE(a.stats().resends, kFrames - 1);
}

// --- Message serde --------------------------------------------------

core::SpliceStats random_stats(util::Rng& rng) {
  core::SpliceStats st;
  const auto r = [&] { return rng.below(1u << 30); };
  st.files = r();
  st.packets = r();
  st.pairs = r();
  st.total = r();
  st.caught_by_header = r();
  st.identical = r();
  st.remaining = r();
  st.missed_crc = r();
  st.missed_transport = r();
  st.missed_both = r();
  st.missed_koopman_dual = r();
  st.missed_koopman_single = r();
  st.fail_identical = r();
  st.pass_identical = r();
  st.fail_changed = r();
  st.pass_changed = r();
  st.remaining_with_hdr2 = r();
  st.missed_with_hdr2 = r();
  for (auto& v : st.remaining_by_k) v = r();
  for (auto& v : st.missed_by_k) v = r();
  st.slow_path = r();
  st.fast_path = r();
  return st;
}

TEST(DistProtocol, SpliceStatsSerdeRoundtrip) {
  util::Rng rng(0xD15721);
  for (int i = 0; i < 16; ++i) {
    const core::SpliceStats st = random_stats(rng);
    util::Bytes buf;
    dist::encode_stats(buf, st);
    core::SpliceStats back;
    std::size_t off = 0;
    ASSERT_TRUE(dist::decode_stats(util::ByteView(buf), &off, &back));
    EXPECT_EQ(off, buf.size());
    EXPECT_EQ(st, back);
  }
}

TEST(DistProtocol, LeaseResultRoundtrip) {
  util::Rng rng(0xD15722);
  dist::LeaseResultMsg m;
  m.shard = 5;
  m.epoch = 9;
  m.stats = random_stats(rng);
  m.deltas = {{"splice.total", 123}, {"splice.files", 4}};
  const util::Bytes buf = dist::encode(m);
  const auto back = dist::decode_lease_result(util::ByteView(buf));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->shard, 5u);
  EXPECT_EQ(back->epoch, 9u);
  EXPECT_EQ(back->stats, m.stats);
  EXPECT_EQ(back->deltas, m.deltas);
}

TEST(DistProtocol, ConfigRoundtrip) {
  dist::ConfigMsg m;
  m.corpus_kind = dist::CorpusKind::kManifest;
  m.corpus = "txt 1a 4096\nexe 2b 100\n";
  m.scale = 0.125;
  m.segment = 512;
  m.transport = 2;
  m.trailer = true;
  m.threads = 4;
  m.heartbeat_ms = 250;
  const auto back = dist::decode_config(util::ByteView(dist::encode(m)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->corpus_kind, dist::CorpusKind::kManifest);
  EXPECT_EQ(back->corpus, m.corpus);
  EXPECT_EQ(back->scale, 0.125);
  EXPECT_EQ(back->segment, 512u);
  EXPECT_EQ(back->transport, 2);
  EXPECT_TRUE(back->trailer);
  EXPECT_EQ(back->threads, 4u);
  EXPECT_EQ(back->heartbeat_ms, 250u);
}

TEST(DistProtocol, TruncatedPayloadsRejected) {
  dist::HeartbeatMsg hb{1, 2};
  util::Bytes buf = dist::encode(hb);
  buf.pop_back();
  EXPECT_FALSE(dist::decode_heartbeat(util::ByteView(buf)).has_value());
  buf.push_back(0);
  buf.push_back(0);  // trailing garbage is an error too
  EXPECT_FALSE(dist::decode_heartbeat(util::ByteView(buf)).has_value());
}

// --- Lease state machine --------------------------------------------

TEST(DistLease, ShardsPartitionTheCorpus) {
  LeaseTable t(10, 3);
  ASSERT_EQ(t.shard_count(), 4u);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < t.shard_count(); ++i) {
    const dist::Shard& s = t.shard(i);
    EXPECT_EQ(s.begin, covered);
    covered = s.end;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(DistLease, AtMostOnceAcrossReassignment) {
  LeaseTable t(4, 2);  // two shards
  const auto s0 = t.acquire(/*worker=*/1, /*deadline=*/100);
  ASSERT_TRUE(s0.has_value());
  const std::uint64_t epoch1 = t.shard(*s0).epoch;

  // Worker 1 goes silent; the lease expires and worker 2 takes over.
  EXPECT_EQ(t.expire(101), 1u);
  const auto s0again = t.acquire(/*worker=*/2, /*deadline=*/300);
  ASSERT_TRUE(s0again.has_value());
  EXPECT_EQ(*s0again, *s0);
  const std::uint64_t epoch2 = t.shard(*s0again).epoch;
  EXPECT_GT(epoch2, epoch1);

  // Worker 1's late result is stale; worker 2's is accepted; a replay
  // of worker 2's is a duplicate. Exactly one merge.
  EXPECT_EQ(t.deliver(*s0, epoch1, 1), DeliverOutcome::kStale);
  EXPECT_EQ(t.deliver(*s0, epoch2, 2), DeliverOutcome::kAccepted);
  EXPECT_EQ(t.deliver(*s0, epoch2, 2), DeliverOutcome::kDuplicate);
  EXPECT_EQ(t.reassigned_count(), 1u);
  EXPECT_FALSE(t.complete());
}

TEST(DistLease, HeartbeatExtendsOnlyTheHolder) {
  LeaseTable t(2, 2);
  const auto s = t.acquire(1, 100);
  ASSERT_TRUE(s.has_value());
  const std::uint64_t epoch = t.shard(*s).epoch;
  t.extend(*s, epoch, /*worker=*/2, 500);  // not the holder: ignored
  EXPECT_EQ(t.expire(200), 1u);
  const auto s2 = t.acquire(1, 300);
  ASSERT_TRUE(s2.has_value());
  t.extend(*s2, t.shard(*s2).epoch, 1, 500);
  EXPECT_EQ(t.expire(400), 0u);  // heartbeat kept it alive
}

TEST(DistLease, RevokeWorkerReturnsItsLeases) {
  LeaseTable t(6, 2);  // three shards
  ASSERT_TRUE(t.acquire(1, 100).has_value());
  ASSERT_TRUE(t.acquire(1, 100).has_value());
  ASSERT_TRUE(t.acquire(2, 100).has_value());
  EXPECT_EQ(t.revoke_worker(1), 2u);
  // Both revoked shards are grantable again.
  EXPECT_TRUE(t.acquire(3, 200).has_value());
  EXPECT_TRUE(t.acquire(3, 200).has_value());
  EXPECT_FALSE(t.acquire(3, 200).has_value());  // worker 2 still holds #2
}

TEST(DistLease, CompletionCountsEveryShardOnce) {
  LeaseTable t(5, 2);  // shards of 2+2+1 files
  for (int round = 0; round < 3; ++round) {
    const auto s = t.acquire(7, 1000);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(t.deliver(*s, t.shard(*s).epoch, 7), DeliverOutcome::kAccepted);
  }
  EXPECT_TRUE(t.complete());
  EXPECT_FALSE(t.acquire(7, 2000).has_value());
}

// --- Delta export ---------------------------------------------------

TEST(DistDeltas, CounterDeltasCaptureDeterministicGrowthOnly) {
  obs::Registry reg;
  obs::Counter det = reg.counter("fam.det", obs::Tag::kDeterministic);
  obs::Counter sched = reg.counter("fam.sched", obs::Tag::kScheduling);
  obs::Counter idle = reg.counter("fam.idle", obs::Tag::kDeterministic);
  det.add(5);
  const obs::Snapshot before = reg.snapshot();
  det.add(37);
  sched.add(100);  // non-deterministic: excluded
  idle.add(0);     // no growth: excluded
  const auto deltas = obs::counter_deltas(before, reg.snapshot());
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].name, "fam.det");
  EXPECT_EQ(deltas[0].delta, 37u);
}

// --- The merge algebra the whole design rests on --------------------

/// merge() must be commutative and associative with the zero stats as
/// identity; otherwise shard results arriving in nondeterministic
/// order could not reproduce the single-process report bit for bit.
TEST(DistMergeProperty, CommutativeAssociativeWithIdentity) {
  util::Rng rng(0xD15723);
  for (int trial = 0; trial < 64; ++trial) {
    const core::SpliceStats a = random_stats(rng);
    const core::SpliceStats b = random_stats(rng);
    const core::SpliceStats c = random_stats(rng);

    core::SpliceStats ab = a;
    ab.merge(b);
    core::SpliceStats ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);  // commutative

    core::SpliceStats ab_c = ab;
    ab_c.merge(c);
    core::SpliceStats bc = b;
    bc.merge(c);
    core::SpliceStats a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(ab_c, a_bc);  // associative

    core::SpliceStats a_zero = a;
    a_zero.merge(core::SpliceStats{});
    EXPECT_EQ(a_zero, a);  // identity
    core::SpliceStats zero_a;
    zero_a.merge(a);
    EXPECT_EQ(zero_a, a);
  }
}

// --- Multi-tenant JobService ----------------------------------------

/// Per-connection backpressure primitive: capacity is a hard bound,
/// the high-water mark records the deepest the queue ever got.
TEST(DistQueue, BoundedWriteQueueBackpressure) {
  dist::BoundedWriteQueue q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.push(MsgType::kLeaseGrant, {1}));
  EXPECT_TRUE(q.push(MsgType::kJobConfig, {2, 2}));
  EXPECT_TRUE(q.push(MsgType::kShutdown, {}));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(MsgType::kLeaseGrant, {9}));  // rejected, not queued
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.hwm(), 3u);

  MsgType t{};
  util::Bytes p;
  ASSERT_TRUE(q.pop(&t, &p));
  EXPECT_EQ(t, MsgType::kLeaseGrant);  // FIFO order preserved
  EXPECT_EQ(p, util::Bytes{1});
  ASSERT_TRUE(q.pop(&t, &p));
  EXPECT_EQ(t, MsgType::kJobConfig);
  ASSERT_TRUE(q.pop(&t, &p));
  EXPECT_EQ(t, MsgType::kShutdown);
  EXPECT_FALSE(q.pop(&t, &p));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.hwm(), 3u);  // hwm is sticky across drains
}

namespace {

dist::JobSpec profile_job(const std::string& name, double scale,
                          std::size_t shard_files = 0) {
  dist::JobSpec spec;
  spec.name = name;
  spec.run.corpus_kind = dist::CorpusKind::kProfile;
  spec.run.corpus = "nsc05";
  spec.run.scale = scale;
  spec.run.segment = 256;
  spec.run.transport =
      static_cast<std::uint8_t>(alg::Algorithm::kInternet);
  spec.run.threads = 1;
  spec.nfiles = fsgen::Filesystem(fsgen::profile("nsc05"), scale).file_count();
  spec.shard_files = shard_files;
  return spec;
}

core::SpliceStats profile_oracle(double scale) {
  core::SpliceRunConfig cfg;
  cfg.flow = core::paper_flow_config();
  cfg.threads = 1;
  return core::run_filesystem(cfg,
                              fsgen::Filesystem(fsgen::profile("nsc05"), scale));
}

std::thread worker_thread(std::uint16_t port, std::uint64_t id, int* rc) {
  return std::thread([port, id, rc] {
    dist::WorkerOptions w;
    w.host = "127.0.0.1";
    w.port = port;
    w.worker_id = id;
    w.tool = "cksum_tests worker";
    *rc = dist::run_worker(w);
  });
}

}  // namespace

/// The tentpole guarantee: three concurrently running named jobs on
/// one shared worker pool each merge to exactly the stats a
/// single-process run of the same corpus produces. (Counter-delta
/// accounting needs process-isolated workers and is exercised by the
/// faultlab drill; SpliceStats travel in lease results and stay
/// per-job even with every worker in this one process.)
TEST(DistJobService, ConcurrentJobsBitwiseEqualOracles) {
  dist::register_dist_metrics();
  const double scales[3] = {0.08, 0.06, 0.04};

  dist::ServiceConfig sc;
  sc.expected_workers = 3;
  sc.lease_timeout_ms = 60000;
  dist::JobService svc(sc);

  std::uint64_t ids[3];
  for (int j = 0; j < 3; ++j) {
    const auto id =
        svc.submit(profile_job("job" + std::to_string(j), scales[j], 1));
    ASSERT_TRUE(id.has_value());
    ids[j] = *id;
  }
  EXPECT_EQ(ids[0], 1u);  // ids start at 1 (0 = handshake placeholder)

  int rcs[3] = {-1, -1, -1};
  std::thread workers[3];
  for (int i = 0; i < 3; ++i)
    workers[i] = worker_thread(svc.port(), i + 1, &rcs[i]);

  for (int j = 0; j < 3; ++j) {
    const dist::JobReport rep = svc.wait(ids[j]);
    EXPECT_EQ(rep.state, dist::JobState::kDone);
    EXPECT_TRUE(rep.report.complete);
    EXPECT_EQ(rep.report.stats, profile_oracle(scales[j]))
        << "job " << j << " diverged from its single-process oracle";
  }

  const std::vector<dist::JobReport> all = svc.drain();
  ASSERT_EQ(all.size(), 3u);
  for (const auto& r : all) EXPECT_EQ(r.state, dist::JobState::kDone);
  for (auto& t : workers) t.join();
  for (const int rc : rcs) EXPECT_EQ(rc, 0);

  // The manifest member is a well-formed per-job array.
  const std::string js = svc.jobs_json();
  EXPECT_EQ(js.front(), '[');
  EXPECT_NE(js.find("\"job\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"job\": 3"), std::string::npos);
  EXPECT_NE(js.find("\"state\": \"done\""), std::string::npos);
}

/// Admission control: beyond max_jobs the submit is rejected up front
/// and the rejection is observable in the dist.* counters.
TEST(DistJobService, AdmissionRejectsBeyondLimits) {
  dist::register_dist_metrics();
  const auto counter = [](std::string_view name) -> std::uint64_t {
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  const std::uint64_t rejected0 = counter("dist.jobs_rejected");

  dist::ServiceConfig sc;
  sc.limits.max_jobs = 1;
  dist::JobService svc(sc);
  const auto first = svc.submit(profile_job("only", 0.04));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(svc.submit(profile_job("rejected", 0.04)).has_value());
  EXPECT_EQ(counter("dist.jobs_rejected"), rejected0 + 1);

  // Queued-shard budget: a job whose shard count alone exceeds the
  // limit is rejected even when the job table has room.
  dist::ServiceConfig sc2;
  sc2.limits.max_queued_shards = 2;
  dist::JobService svc2(sc2);
  EXPECT_FALSE(svc2.submit(profile_job("too-wide", 0.08, 1)).has_value());
  EXPECT_EQ(counter("dist.jobs_rejected"), rejected0 + 2);

  EXPECT_TRUE(svc.cancel(*first));
  svc.drain();
  svc2.drain();
}

/// Cancelling one job mid-flight must not disturb its neighbours: the
/// survivor still merges bitwise-equal to its oracle, the cancelled
/// job keeps its partial merge and terminal state.
TEST(DistJobService, CancelMidFlightLeavesSurvivorIntact) {
  dist::register_dist_metrics();
  dist::ServiceConfig sc;
  sc.expected_workers = 1;
  sc.lease_timeout_ms = 60000;
  dist::JobService svc(sc);

  const auto keep = svc.submit(profile_job("keep", 0.08, 1));
  const auto axe = svc.submit(profile_job("axe", 0.08, 1));
  ASSERT_TRUE(keep.has_value());
  ASSERT_TRUE(axe.has_value());

  // Cancel the victim as soon as one of its shards has merged — from
  // this thread, not the hook (the hook runs inside the service loop).
  std::atomic<bool> axe_started{false};
  svc.set_event_hook([&](const dist::ServiceEvent& ev) {
    if (ev.kind == dist::ServiceEvent::Kind::kResultAccepted &&
        ev.job == *axe)
      axe_started.store(true);
  });

  int rc = -1;
  std::thread w = worker_thread(svc.port(), 1, &rc);
  while (!axe_started.load() && svc.status(*axe)->state ==
                                    dist::JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool cancelled = svc.cancel(*axe);

  const dist::JobReport kept = svc.wait(*keep);
  EXPECT_EQ(kept.state, dist::JobState::kDone);
  EXPECT_TRUE(kept.report.complete);
  EXPECT_EQ(kept.report.stats, profile_oracle(0.08));

  const dist::JobReport axed = svc.wait(*axe);
  if (cancelled) {
    EXPECT_EQ(axed.state, dist::JobState::kCancelled);
    EXPECT_FALSE(axed.report.complete);
  } else {
    // The whole job raced to completion before cancel() landed —
    // legitimate on a fast machine; it must then equal its oracle.
    EXPECT_EQ(axed.state, dist::JobState::kDone);
    EXPECT_EQ(axed.report.stats, profile_oracle(0.08));
  }

  svc.drain();
  w.join();
  EXPECT_EQ(rc, 0);
}

}  // namespace
}  // namespace cksum
