// The fault-injection channel and the hardened receiver stack:
// deterministic replay, per-class counters, demux budget/cap
// degradation, the safe Pdu::payload() accessor, and the soak
// harness's own invariants.
#include <gtest/gtest.h>

#include <set>

#include "atm/cell.hpp"
#include "atm/demux.hpp"
#include "faults/channel.hpp"
#include "faults/link.hpp"
#include "faults/soak.hpp"
#include "util/rng.hpp"

namespace cksum {
namespace {

using atm::Cell;
using util::ByteView;
using util::Bytes;

std::vector<Cell> make_stream(std::uint64_t seed, int pdus,
                              std::size_t payload_len,
                              std::uint16_t vci = 32) {
  util::Rng rng(seed);
  std::vector<Cell> stream;
  for (int p = 0; p < pdus; ++p) {
    Bytes payload(payload_len);
    rng.fill(payload);
    const auto cells =
        atm::segment_pdu(atm::CpcsPdu::frame(ByteView(payload)), 0, vci);
    stream.insert(stream.end(), cells.begin(), cells.end());
  }
  return stream;
}

bool same_cell(const Cell& a, const Cell& b) {
  return a.to_bytes() == b.to_bytes();
}

TEST(FaultyChannel, NoFaultsIsIdentity) {
  const auto stream = make_stream(1, 5, 296);
  faults::FaultyChannel ch({}, 42);
  const auto out = ch.apply(stream);
  ASSERT_EQ(out.size(), stream.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_TRUE(same_cell(out[i], stream[i]));
  EXPECT_EQ(ch.stats().total_faults(), 0u);
  EXPECT_EQ(ch.stats().cells_in, stream.size());
  EXPECT_EQ(ch.stats().cells_out, stream.size());
}

TEST(FaultyChannel, DeterministicUnderSameSeed) {
  const auto stream = make_stream(2, 20, 500);
  faults::FaultPlan plan;
  plan.payload_burst_rate = 0.1;
  plan.hec_corrupt_rate = 0.05;
  plan.duplicate_rate = 0.05;
  plan.reorder_rate = 0.1;
  plan.eom_flip_rate = 0.05;
  plan.misdeliver_rate = 0.05;
  plan.truncate_rate = 0.2;
  faults::FaultyChannel a(plan, 7), b(plan, 7), c(plan, 8);
  const auto out_a = a.apply(stream);
  const auto out_b = b.apply(stream);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i)
    EXPECT_TRUE(same_cell(out_a[i], out_b[i]));
  // A different seed must (overwhelmingly) fault differently.
  const auto out_c = c.apply(stream);
  bool differs = out_a.size() != out_c.size();
  for (std::size_t i = 0; !differs && i < out_a.size(); ++i)
    differs = !same_cell(out_a[i], out_c[i]);
  EXPECT_TRUE(differs);
}

TEST(FaultyChannel, CountersMatchStreamSizes) {
  const auto stream = make_stream(3, 30, 400);
  faults::FaultPlan plan;
  plan.duplicate_rate = 0.2;
  plan.hec_corrupt_rate = 0.2;  // single-bit flips: always HEC-dropped
  plan.hec_flip_bits = 1;
  faults::FaultyChannel ch(plan, 11);
  const auto out = ch.apply(stream);
  const auto& st = ch.stats();
  // A single-bit header flip can never re-validate (CRC-8 detects all
  // single-bit errors), so every corruption is a drop.
  EXPECT_EQ(st.hec_dropped, st.hec_corruptions);
  EXPECT_EQ(st.hec_miscorrected, 0u);
  EXPECT_EQ(out.size(), stream.size() + st.duplicates - st.hec_dropped);
  EXPECT_EQ(st.cells_out, out.size());
}

TEST(FaultyChannel, ReorderingIsBoundedAndLossless) {
  const auto stream = make_stream(4, 40, 300);
  faults::FaultPlan plan;
  plan.reorder_rate = 0.2;
  plan.reorder_window = 5;
  faults::FaultyChannel ch(plan, 13);
  const auto out = ch.apply(stream);
  // Nothing lost or duplicated — only displaced.
  ASSERT_EQ(out.size(), stream.size());
  EXPECT_GT(ch.stats().reorders, 0u);
  // Every input cell appears in the output within the displacement
  // bound. Payloads carry a per-cell position marker for tracking.
  std::vector<Cell> marked = stream;
  for (std::size_t i = 0; i < marked.size(); ++i) {
    marked[i].payload[0] = static_cast<std::uint8_t>(i);
    marked[i].payload[1] = static_cast<std::uint8_t>(i >> 8);
  }
  faults::FaultyChannel ch2(plan, 13);
  const auto out2 = ch2.apply(marked);
  ASSERT_EQ(out2.size(), marked.size());
  for (std::size_t pos = 0; pos < out2.size(); ++pos) {
    const std::size_t orig = out2[pos].payload[0] |
                             (std::size_t{out2[pos].payload[1]} << 8);
    // A held cell slips past at most window + (window in-flight
    // releases); everything else keeps order.
    EXPECT_LE(pos, orig + 2 * plan.reorder_window + 1)
        << "cell " << orig << " emitted at " << pos;
    EXPECT_LE(orig, pos + 2 * plan.reorder_window + 1);
  }
}

TEST(FaultyChannel, TruncationCutsTheTail) {
  const auto stream = make_stream(5, 10, 296);
  faults::FaultPlan plan;
  plan.truncate_rate = 1.0;
  faults::FaultyChannel ch(plan, 17);
  const auto out = ch.apply(stream);
  EXPECT_LT(out.size(), stream.size());
  EXPECT_EQ(ch.stats().truncations, 1u);
  EXPECT_EQ(ch.stats().cells_truncated, stream.size() - out.size());
  for (std::size_t i = 0; i < out.size(); ++i)  // prefix preserved
    EXPECT_TRUE(same_cell(out[i], stream[i]));
}

/// Composed fault classes on the same cell stream: truncation+reorder
/// and corruption+duplication active together must stay deterministic
/// under a fixed seed, and the per-class counters must account for
/// every injected fault.
TEST(FaultyChannel, ComposedClassesDeterministicWithFullAccounting) {
  const auto stream = make_stream(21, 30, 400);
  faults::FaultPlan plan;
  plan.truncate_rate = 1.0;  // per-stream: guarantee the cut fires
  plan.reorder_rate = 0.3;
  plan.reorder_window = 4;
  plan.payload_burst_rate = 0.3;
  plan.duplicate_rate = 0.3;
  faults::FaultyChannel a(plan, 23), b(plan, 23);
  const auto out_a = a.apply(stream);
  const auto out_b = b.apply(stream);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i)
    EXPECT_TRUE(same_cell(out_a[i], out_b[i]));

  const auto& st = a.stats();
  // All four classes actually fired in composition.
  EXPECT_GT(st.truncations, 0u);
  EXPECT_GT(st.reorders, 0u);
  EXPECT_GT(st.payload_bursts, 0u);
  EXPECT_GT(st.duplicates, 0u);
  // Every injected fault is one of the counted classes, and the
  // stream-size arithmetic closes: in + duplicated - truncated-away
  // cells = out (no other class here changes the cell count).
  EXPECT_EQ(st.total_faults(), st.truncations + st.reorders +
                                   st.payload_bursts + st.duplicates);
  EXPECT_EQ(out_a.size(), stream.size() + st.duplicates - st.cells_truncated);
  EXPECT_EQ(st.cells_out, out_a.size());
}

TEST(FaultyChannel, MisdeliveryMovesCellsBetweenActiveVcs) {
  auto stream = make_stream(6, 10, 296, 32);
  const auto other = make_stream(7, 10, 296, 33);
  stream.insert(stream.end(), other.begin(), other.end());
  faults::FaultPlan plan;
  plan.misdeliver_rate = 0.3;
  faults::FaultyChannel ch(plan, 19);
  const auto out = ch.apply(stream);
  EXPECT_GT(ch.stats().misdeliveries, 0u);
  for (const Cell& c : out)
    EXPECT_TRUE(c.header.vci == 32 || c.header.vci == 33);
}

TEST(VcDemux, PendingBudgetShedsNonEomCells) {
  atm::DemuxLimits limits;
  limits.max_pending_cells = 10;
  atm::VcDemux demux(limits);
  // 40 EOM-less cells on one VC: only the budget's worth may buffer.
  Cell cell;
  cell.header.vci = 32;
  util::Rng rng(21);
  for (int i = 0; i < 40; ++i) {
    rng.fill(cell.payload);
    (void)demux.push(cell);
    EXPECT_LE(demux.pending_cells(), limits.max_pending_cells);
  }
  EXPECT_EQ(demux.pending_cells(), limits.max_pending_cells);
  EXPECT_EQ(demux.stats().budget_drops, 30u);
  // An EOM still gets through and drains the channel.
  cell.header.set_end_of_message(true);
  const auto out = demux.push(cell);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(demux.pending_cells(), 0u);
}

TEST(VcDemux, ChannelCapEvictsIdlest) {
  atm::DemuxLimits limits;
  limits.max_channels = 4;
  atm::VcDemux demux(limits);
  Cell cell;
  for (std::uint16_t v = 0; v < 6; ++v) {
    cell.header.vci = static_cast<std::uint16_t>(100 + v);
    (void)demux.push(cell);
    EXPECT_LE(demux.channel_count(), limits.max_channels);
  }
  EXPECT_EQ(demux.stats().evictions, 2u);
  // The evicted channels were the least recently used (vci 100, 101):
  // their buffered cell is gone, so the global pending count reflects
  // only the four live channels.
  EXPECT_EQ(demux.pending_cells(), 4u);
}

TEST(VcDemux, PendingCountStaysConsistent) {
  // The O(1) pending counter must equal the true sum across channels
  // under completion, oversize discard, budget shed and eviction.
  atm::DemuxLimits limits;
  limits.max_channels = 3;
  limits.max_pending_cells = 50;
  atm::VcDemux demux(limits);
  util::Rng rng(23);
  std::uint64_t deliveries = 0;
  for (int i = 0; i < 20000; ++i) {
    Cell cell;
    // Mostly three hot VCs (so pending accumulates up to the budget),
    // with a rare visit from a cold one to force channel eviction.
    cell.header.vci = static_cast<std::uint16_t>(
        rng.chance(0.01) ? 35 + rng.below(3) : 32 + rng.below(3));
    rng.fill(cell.payload);
    cell.header.set_end_of_message(rng.chance(0.02));
    if (demux.push(cell)) ++deliveries;
    ASSERT_LE(demux.pending_cells(), limits.max_pending_cells);
    if (rng.chance(0.001))
      demux.reset_channel(0, static_cast<std::uint16_t>(32 + rng.below(6)));
  }
  EXPECT_GT(deliveries, 0u);
  EXPECT_GT(demux.stats().budget_drops, 0u);
  EXPECT_GT(demux.stats().evictions, 0u);
}

TEST(ReassemblerPdu, PayloadClampsHostileLengths) {
  // A trailer claiming more bytes than the buffer holds must not read
  // out of range, and a failed length check yields an empty payload.
  atm::Reassembler r;
  Cell cell;
  util::Rng rng(29);
  rng.fill(cell.payload);
  // Claim length 0xFFFF in a 1-cell PDU.
  util::store_be16(cell.payload.data() + atm::kCellPayload - 6, 0xFFFF);
  cell.header.set_end_of_message(true);
  const auto done = r.push(cell);
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->length_ok);
  EXPECT_TRUE(done->payload().empty());
}

TEST(ReassemblerPdu, PayloadIntactForValidPdus) {
  Bytes payload(777);
  util::Rng rng(31);
  rng.fill(payload);
  atm::Reassembler r;
  std::optional<atm::Reassembler::Pdu> done;
  for (const Cell& c :
       atm::segment_pdu(atm::CpcsPdu::frame(ByteView(payload)), 0, 32))
    done = r.push(c);
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->length_ok);
  EXPECT_TRUE(done->crc_ok);
  const ByteView got = done->payload();
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));
}

TEST(Soak, ScenarioIsDeterministic) {
  faults::SoakConfig cfg;
  cfg.seed = 0xDEAD;
  const auto a = faults::run_scenario(cfg, 3);
  const auto b = faults::run_scenario(cfg, 3);
  EXPECT_EQ(a.faults.cells_in, b.faults.cells_in);
  EXPECT_EQ(a.faults.total_faults(), b.faults.total_faults());
  EXPECT_EQ(a.pdus_delivered, b.pdus_delivered);
  EXPECT_EQ(a.pdus_ok, b.pdus_ok);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(Soak, ShortRunHoldsInvariants) {
  faults::SoakConfig cfg;
  cfg.seed = 0xBEEF;
  cfg.target_faults = 5000;
  const auto res = faults::run_soak(cfg);
  EXPECT_TRUE(res.ok()) << res.totals.violation_detail << " — "
                        << res.reproducer;
  EXPECT_GE(res.totals.faults.total_faults(), cfg.target_faults);
  // Every fault class must have been exercised.
  EXPECT_GT(res.totals.faults.payload_bursts, 0u);
  EXPECT_GT(res.totals.faults.hec_corruptions, 0u);
  EXPECT_GT(res.totals.faults.duplicates, 0u);
  EXPECT_GT(res.totals.faults.reorders, 0u);
  EXPECT_GT(res.totals.faults.eom_flips, 0u);
  EXPECT_GT(res.totals.faults.misdeliveries, 0u);
  EXPECT_GT(res.totals.faults.truncations, 0u);
  EXPECT_GT(res.totals.pdus_ok, 0u);
}

TEST(Soak, ReproducerLineRoundTrips) {
  faults::SoakConfig cfg;
  cfg.seed = 0xAB;
  EXPECT_EQ(faults::reproducer_line(cfg, 12),
            "faultlab replay --seed 0xab --scenario 12");
  cfg.max_channels = 8;
  cfg.max_pending_cells = 64;
  EXPECT_EQ(faults::reproducer_line(cfg, 12),
            "faultlab replay --seed 0xab --scenario 12 --channels 8 "
            "--budget 64");
}

// -------------------------------------------------------------------
// LinkChannel: the frame-grain channel the ARQ endpoints sit on. The
// composition contract matters most here — fault classes are rolled
// per delivered copy, so two classes can (and must be able to) land on
// the same frame in one transmit().

Bytes make_frame(util::Rng& rng, std::size_t len) {
  Bytes frame(len);
  rng.fill(frame);
  return frame;
}

TEST(LinkChannel, TruncationAndReorderComposeOnTheSameCopy) {
  faults::LinkPlan plan;
  plan.truncate_rate = 1.0;
  plan.reorder_rate = 1.0;
  plan.reorder_delay_max = 12;
  faults::LinkChannel ch(plan, 7);
  util::Rng rng(77);
  const int kFrames = 40;
  for (int i = 0; i < kFrames; ++i) {
    const Bytes frame = make_frame(rng, 16 + rng.below(200));
    for (const auto& d : ch.transmit(ByteView(frame))) {
      // Both classes hit this very copy: the tail is gone AND it was
      // delayed past later transmissions.
      EXPECT_LT(d.bytes.size(), frame.size());
      EXPECT_GE(d.extra_delay, 1u);
      EXPECT_LE(d.extra_delay, plan.reorder_delay_max);
    }
  }
  const auto& st = ch.stats();
  EXPECT_EQ(st.frames_in, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(st.deliveries, st.frames_in);  // no drops, no duplicates
  EXPECT_EQ(st.truncations, st.deliveries);
  EXPECT_EQ(st.reorders, st.deliveries);
}

TEST(LinkChannel, CorruptionAndDuplicationHitTheSameFrame) {
  faults::LinkPlan plan;
  plan.duplicate_rate = 1.0;
  plan.corrupt_rate = 1.0;
  faults::LinkChannel ch(plan, 9);
  util::Rng rng(99);
  const int kFrames = 40;
  for (int i = 0; i < kFrames; ++i) {
    const Bytes frame = make_frame(rng, 16 + rng.below(200));
    const auto out = ch.transmit(ByteView(frame));
    ASSERT_EQ(out.size(), 2u);  // the duplicate fired
    // ... and each copy was independently corrupted (a burst flips at
    // least one bit, so neither copy matches the original).
    EXPECT_NE(out[0].bytes, frame);
    EXPECT_NE(out[1].bytes, frame);
  }
  const auto& st = ch.stats();
  EXPECT_EQ(st.duplicates, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(st.deliveries, 2u * kFrames);
  EXPECT_EQ(st.corruptions, st.deliveries);  // every copy, not per frame
}

TEST(LinkChannel, DeterministicUnderSameSeedWithComposedPlan) {
  faults::LinkPlan plan;
  plan.drop_rate = 0.1;
  plan.duplicate_rate = 0.2;
  plan.corrupt_rate = 0.3;
  plan.truncate_rate = 0.2;
  plan.reorder_rate = 0.3;
  faults::LinkChannel a(plan, 0xC0FFEE), b(plan, 0xC0FFEE);
  util::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const Bytes frame = make_frame(rng, 8 + rng.below(300));
    const auto out_a = a.transmit(ByteView(frame));
    const auto out_b = b.transmit(ByteView(frame));
    ASSERT_EQ(out_a.size(), out_b.size());
    for (std::size_t k = 0; k < out_a.size(); ++k) {
      EXPECT_EQ(out_a[k].bytes, out_b[k].bytes);
      EXPECT_EQ(out_a[k].extra_delay, out_b[k].extra_delay);
    }
  }
  EXPECT_EQ(a.stats().total_injected(), b.stats().total_injected());
  EXPECT_EQ(a.stats().deliveries, b.stats().deliveries);
}

TEST(LinkChannel, DeliveryAccountingCloses) {
  faults::LinkPlan plan;
  plan.drop_rate = 0.2;
  plan.duplicate_rate = 0.2;
  plan.corrupt_rate = 0.2;
  plan.truncate_rate = 0.2;
  plan.reorder_rate = 0.2;
  faults::LinkChannel ch(plan, 0xACC7);
  util::Rng rng(6);
  const int kFrames = 400;
  for (int i = 0; i < kFrames; ++i) {
    const Bytes frame = make_frame(rng, 8 + rng.below(120));
    ch.transmit(ByteView(frame));
  }
  const auto& st = ch.stats();
  // Every frame in is either dropped or delivered, once or (when
  // duplicated) twice — no other path exists.
  EXPECT_EQ(st.frames_in, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(st.deliveries, st.frames_in - st.drops + st.duplicates);
  // With all five classes at 20% over 400 frames, each must fire.
  EXPECT_GT(st.drops, 0u);
  EXPECT_GT(st.duplicates, 0u);
  EXPECT_GT(st.corruptions, 0u);
  EXPECT_GT(st.truncations, 0u);
  EXPECT_GT(st.reorders, 0u);
  EXPECT_EQ(st.total_injected(), st.drops + st.duplicates + st.corruptions +
                                     st.truncations + st.reorders);
}

}  // namespace
}  // namespace cksum
