// Parameterisable CRC engine, widths 1..32.
//
// The paper's headline quantitative claim is that "the 16-bit TCP
// checksum performed about as well as a 10-bit CRC" on real data. To
// reproduce that we need CRCs of arbitrary width to race against the
// Internet checksum; this engine supports any width up to 32 with any
// generator polynomial, using the reflected (LSB-first) formulation
// with init = xorout = all-ones (the CRC-32 conventions generalised).
//
// Like crc32, the engine is linear over GF(2) after conditioning is
// cancelled, so finalised values combine with the same
// zeros-operator ^ algebra; `zeros_operator`/`combine` expose that.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "util/bytes.hpp"

namespace cksum::alg {

/// Reverse the low `width` bits of `v`.
constexpr std::uint32_t reflect_bits(std::uint32_t v, int width) noexcept {
  std::uint32_t out = 0;
  for (int i = 0; i < width; ++i) {
    out = (out << 1) | (v & 1u);
    v >>= 1;
  }
  return out;
}

class GenericCrc {
 public:
  /// `poly_normal` is the generator polynomial in the usual MSB-first
  /// notation (e.g. 0x04C11DB7 for CRC-32, 0x233 for CRC-10).
  GenericCrc(int width, std::uint32_t poly_normal);

  int width() const noexcept { return width_; }
  std::uint32_t mask() const noexcept { return mask_; }
  std::uint32_t poly_reflected() const noexcept { return poly_; }

  /// Finalised CRC of a buffer.
  std::uint32_t compute(util::ByteView data) const noexcept {
    return update(0, data);
  }

  /// Streaming continuation over finalised values (zlib semantics:
  /// pass the previous finalised CRC, or 0 to start).
  std::uint32_t update(std::uint32_t crc, util::ByteView data) const noexcept;

  /// Bitwise reference (for tests).
  std::uint32_t update_bitwise(std::uint32_t crc,
                               util::ByteView data) const noexcept;

  /// crc(A ++ B) from finalised crc(A), crc(B), |B|.
  std::uint32_t combine(std::uint32_t crc_a, std::uint32_t crc_b,
                        std::size_t len_b) const noexcept;

  /// Reusable fixed-length combiner for hot loops that repeatedly
  /// append blocks of one size. The zeros-operator matrix is flattened
  /// into nibble lookup tables (8 tables x 16 entries), same as the
  /// dedicated CRC-32 CrcCombiner: one combine costs 8 loads/XORs
  /// instead of a width-long row scan.
  class Combiner {
   public:
    /// Advance a finalised CRC through len_b zero bytes (the linear
    /// part of combine; advance(a ^ b) == advance(a) ^ advance(b)).
    std::uint32_t advance(std::uint32_t crc) const noexcept {
      std::uint32_t out = 0;
      for (int t = 0; t < 8; ++t)
        out ^= nibble_[static_cast<std::size_t>(t)][(crc >> (4 * t)) & 0xfu];
      return out;
    }

    std::uint32_t combine(std::uint32_t crc_a,
                          std::uint32_t crc_b) const noexcept {
      return advance(crc_a) ^ crc_b;
    }

   private:
    friend class GenericCrc;
    explicit Combiner(const std::vector<std::uint32_t>& rows);
    std::uint32_t nibble_[8][16];
  };

  Combiner combiner(std::size_t len_b) const { return Combiner(zeros_rows(len_b)); }

  /// Number of distinct CRC values (2^width) as a double, for
  /// expected-miss-rate computations.
  double value_space() const noexcept;

  /// The byte-at-a-time lookup table (reflected form). Exposed so the
  /// kernel registry can derive its slice-by-8 tables from this
  /// engine's generation instead of duplicating it.
  const std::array<std::uint32_t, 256>& byte_table() const noexcept {
    return table_;
  }

 private:
  std::vector<std::uint32_t> zeros_rows(std::size_t len) const noexcept;

  int width_;
  std::uint32_t poly_;  // reflected form
  std::uint32_t mask_;
  std::array<std::uint32_t, 256> table_{};
};

/// Thread-safe memo of fixed-length Combiners for one engine. Callers
/// that fold blocks of a whole family of lengths — e.g. the splice
/// evaluator advancing cell CRCs by every suffix length 44 + 48*d, or
/// a k-sweep reusing one combiner per substitution length — build each
/// zeros-operator once instead of per use.
class CombinerCache {
 public:
  explicit CombinerCache(const GenericCrc& crc) : crc_(&crc) {}

  /// The combiner advancing by `len_b` zero bytes (built on first use).
  const GenericCrc::Combiner& get(std::size_t len_b);

 private:
  const GenericCrc* crc_;
  std::mutex mu_;
  std::map<std::size_t, GenericCrc::Combiner> memo_;
};

/// A small catalogue of standard generator polynomials by width, used
/// by the CRC-width ablation bench. Widths without a well-known
/// standard polynomial use entries from Koopman's tables.
std::uint32_t standard_poly(int width);

}  // namespace cksum::alg
