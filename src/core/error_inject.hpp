// Error injection for the §2 detection-guarantee claims:
//
//  * the Internet checksum "will catch any burst error of 15 bits or
//    less, and all 16-bit burst errors except for those which replace
//    one 1's complement zero with another";
//  * Fletcher (twos-complement) detects "all single bit errors [and] a
//    single error of less than 16 bits in length";
//  * CRC-32 "will detect all errors that span less than 32 contiguous
//    bits within a packet and all 2-bit errors less than 2048 bits
//    apart" and "all cases where there are an odd number of errors".
//
// A burst of length L flips bits within a window of exactly L bits:
// the first and last bits of the window are always flipped (otherwise
// the burst would be shorter).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace cksum::core {

struct BurstSpec {
  std::size_t bit_offset = 0;   ///< first flipped bit, from byte 0's MSB
  unsigned length_bits = 1;     ///< window size; first and last bits flip
  std::uint64_t pattern = 1;    ///< flip mask, bit 0 = first bit of window
};

/// XOR the burst into the buffer. The window must fit: bit_offset +
/// length_bits <= 8 * data.size(); length_bits <= 64.
void apply_burst(std::span<std::uint8_t> data, const BurstSpec& burst);

/// A random burst of exactly `length_bits` (first and last window bits
/// set, interior bits uniform), at a uniform position.
BurstSpec random_burst(util::Rng& rng, std::size_t data_bits,
                       unsigned length_bits);

/// Flip exactly two bits, `gap_bits` apart (for the CRC 2-bit-error
/// claim).
void apply_double_bit(std::span<std::uint8_t> data, std::size_t first_bit,
                      std::size_t gap_bits);

}  // namespace cksum::core
