// Table 8: Fletcher's checksum results — TCP vs Fletcher-255 vs
// Fletcher-256 missed-splice rates on five filesystems. Fletcher
// generally beats TCP (the positional "colouring" effect), except
// where mod-255 pathologies (0x00/0xFF data) strike — on smeg:/u1
// Fletcher-255 does worse than TCP, as the paper found.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== Table 8: Fletcher's checksum results (256-byte packets) ==\n\n");
  core::TextTable t({"system", "checksum", "missed", "% splices"});
  for (const char* name :
       {"sics.se:/opt", "smeg.stanford.edu:/u1", "pompano.stanford.edu:/usr/local",
        "sics.se:/src1", "sics.se:/src2"}) {
    const auto& prof = fsgen::profile(name);
    bool first = true;
    for (const alg::Algorithm transport :
         {alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
          alg::Algorithm::kFletcher256}) {
      net::PacketConfig cfg;
      cfg.transport = transport;
      const core::SpliceStats st = core::run_profile(prof, cfg, scale);
      t.add_row({first ? std::string(name) : std::string(),
                 std::string(alg::name(transport)),
                 core::fmt_count(st.missed_transport),
                 core::fmt_pct(st.missed_transport, st.remaining)});
      first = false;
    }
    t.add_separator();
  }
  t.print(std::cout);
  std::printf(
      "\nuniform expectations: TCP %s%%, F-255 %s%%, F-256 %s%%.\n"
      "Expected shape (paper): Fletcher < TCP everywhere except the "
      "PBM-contaminated smeg:/u1, where F-255 > TCP.\n",
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kInternet)).c_str(),
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kFletcher255)).c_str(),
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kFletcher256)).c_str());
  return 0;
}
