#!/usr/bin/env python3
"""Distill a google-benchmark JSON dump into the BENCH_splice.json
trajectory at the repo root.

Usage: bench_distill.py RAW_JSON TRAJECTORY_JSON [--quick] [--check]
                        [--manifest PATH]

The trajectory file is a JSON array, one entry per bench.sh run:

    {
      "date": "2026-08-05T12:34:56Z",
      "commit": "abc1234...",
      "quick": false,
      "splices_per_sec": {"dfs": ..., "flat": ..., "reference": ...},
      "pairs_per_sec":   {"dfs": ..., "flat": ..., "reference": ...},
      "speedup_dfs_vs_flat": ...,
      "speedup_dfs_vs_reference": ...,
      "manifest": { ... }   # optional: telemetry run-manifest summary
    }

A missing, empty, or whitespace-only trajectory file starts a fresh
array; a non-empty file that is not valid JSON is an error (the file
is left untouched rather than clobbered). Entries are validated
against the schema above before the file is rewritten — a malformed
new entry aborts, malformed pre-existing entries only warn.

--manifest ingests a cksum-metrics/1 run manifest (produced by
`cksumlab splice --metrics-out`, see docs/OBSERVABILITY.md) and
records its headline numbers under the entry's "manifest" key.

--check exits non-zero if the new DFS rate fell below 1/5 of the
previous entry's, or if the DFS evaluator is slower than the flat one.
"""

import argparse
import datetime
import json
import subprocess
import sys

BENCH_KEYS = {
    "BM_SpliceDfs": "dfs",
    "BM_SpliceFlat": "flat",
    "BM_SpliceReference": "reference",
}

MANIFEST_SCHEMA = "cksum-metrics/1"


def load_trajectory(path):
    """Parse the trajectory array. Returns (entries, error)."""
    try:
        with open(path) as f:
            text = f.read()
    except FileNotFoundError:
        return [], None
    if not text.strip():
        return [], None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as e:
        return None, f"{path} is not valid JSON ({e}); not overwriting"
    if not isinstance(data, list):
        return None, f"{path} is not a JSON array; not overwriting"
    return data, None


def validate_entry(entry):
    """Schema problems with one trajectory entry, [] when clean."""
    problems = []
    if not isinstance(entry, dict):
        return ["entry is not an object"]
    for key in ("date", "commit"):
        if not isinstance(entry.get(key), str) or not entry.get(key):
            problems.append(f"{key!r} missing or not a non-empty string")
    if not isinstance(entry.get("quick"), bool):
        problems.append("'quick' missing or not a bool")
    for key in ("splices_per_sec", "pairs_per_sec"):
        rates = entry.get(key)
        if not isinstance(rates, dict):
            problems.append(f"{key!r} missing or not an object")
            continue
        for bench in BENCH_KEYS.values():
            if not isinstance(rates.get(bench), (int, float)):
                problems.append(f"{key!r}[{bench!r}] missing or not a number")
    for key in ("speedup_dfs_vs_flat", "speedup_dfs_vs_reference"):
        if not isinstance(entry.get(key), (int, float)):
            problems.append(f"{key!r} missing or not a number")
    if "manifest" in entry and not isinstance(entry["manifest"], dict):
        problems.append("'manifest' present but not an object")
    return problems


def manifest_summary(path):
    """Headline numbers from a cksum-metrics/1 run manifest.

    Returns (summary, error); validation failures are errors because a
    bad manifest means the telemetry pipeline itself is broken.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, f"cannot read manifest {path}: {e}"
    if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_SCHEMA:
        got = doc.get("schema") if isinstance(doc, dict) else type(doc)
        return None, (f"manifest {path}: schema is {got!r}, "
                      f"want {MANIFEST_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return None, f"manifest {path}: 'metrics' missing"

    def value(name):
        m = metrics.get(name)
        return m.get("value") if isinstance(m, dict) else None

    for name in ("splice.total", "splice.pairs"):
        if not isinstance(value(name), int):
            return None, f"manifest {path}: metric {name!r} missing"
    fast = value("splice.fast_path") or 0
    slow = value("splice.slow_path") or 0
    evaluated = fast + slow
    return {
        "tool": doc.get("tool"),
        "corpus": doc.get("corpus"),
        "threads": doc.get("threads"),
        "git": doc.get("git"),
        "wall_seconds": doc.get("wall_seconds"),
        "splices": value("splice.total"),
        "pairs": value("splice.pairs"),
        "fast_path_fraction": fast / evaluated if evaluated else None,
    }, None


def git_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("raw", help="google-benchmark --benchmark_out JSON")
    ap.add_argument("trajectory", help="BENCH_splice.json to append to")
    ap.add_argument("--quick", action="store_true")
    ap.add_argument("--check", action="store_true")
    ap.add_argument("--manifest", metavar="PATH",
                    help="cksum-metrics/1 run manifest to summarize "
                         "into the entry")
    args = ap.parse_args()

    with open(args.raw) as f:
        raw = json.load(f)

    splices = {}
    pairs = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        key = BENCH_KEYS.get(b.get("name", "").split("/")[0])
        if key is None:
            continue
        splices[key] = b.get("items_per_second")
        pairs[key] = b.get("pairs_per_sec")

    missing = [k for k in BENCH_KEYS.values() if splices.get(k) is None]
    if missing:
        print(f"bench_distill: missing benchmarks: {missing}", file=sys.stderr)
        return 1

    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "commit": git_commit(),
        "quick": args.quick,
        "splices_per_sec": splices,
        "pairs_per_sec": pairs,
        "speedup_dfs_vs_flat": splices["dfs"] / splices["flat"],
        "speedup_dfs_vs_reference": splices["dfs"] / splices["reference"],
    }

    if args.manifest:
        summary, err = manifest_summary(args.manifest)
        if err:
            print(f"bench_distill: {err}", file=sys.stderr)
            return 1
        entry["manifest"] = summary

    problems = validate_entry(entry)
    if problems:
        for p in problems:
            print(f"bench_distill: new entry invalid: {p}", file=sys.stderr)
        return 1

    trajectory, err = load_trajectory(args.trajectory)
    if err:
        print(f"bench_distill: {err}", file=sys.stderr)
        return 1
    for i, old in enumerate(trajectory):
        for p in validate_entry(old):
            print(f"bench_distill: warning: {args.trajectory} entry "
                  f"#{i + 1}: {p}", file=sys.stderr)

    previous = trajectory[-1] if trajectory else None
    trajectory.append(entry)
    with open(args.trajectory, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")

    print(f"dfs:       {splices['dfs']:.3e} splices/sec")
    print(f"flat:      {splices['flat']:.3e} splices/sec "
          f"({entry['speedup_dfs_vs_flat']:.1f}x slower than dfs)")
    print(f"reference: {splices['reference']:.3e} splices/sec "
          f"({entry['speedup_dfs_vs_reference']:.1f}x slower than dfs)")
    if "manifest" in entry:
        m = entry["manifest"]
        frac = m["fast_path_fraction"]
        print(f"manifest:  {m['splices']:,} splices / {m['pairs']:,} pairs "
              f"on {m['corpus']} in {m['wall_seconds']:.3f}s "
              f"({100.0 * frac:.2f}% fast path)" if frac is not None else
              f"manifest:  {m['splices']:,} splices / {m['pairs']:,} pairs "
              f"on {m['corpus']}")
    print(f"appended entry #{len(trajectory)} to {args.trajectory}")

    if args.check:
        ok = True
        if entry["speedup_dfs_vs_flat"] < 1.0:
            print("CHECK FAILED: DFS evaluator slower than flat baseline",
                  file=sys.stderr)
            ok = False
        if previous is not None:
            prev_dfs = previous.get("splices_per_sec", {}).get("dfs")
            if prev_dfs and splices["dfs"] < prev_dfs / 5.0:
                print(f"CHECK FAILED: DFS rate {splices['dfs']:.3e} is >5x "
                      f"below previous {prev_dfs:.3e}", file=sys.stderr)
                ok = False
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
