// Block-storage integrity subsystem (docs/STORAGE.md): commit-record
// layout, the faulty block device's determinism discipline, the
// frontier's thread-count invariance, the byte-level oracle property,
// and the relocated Fletcher-255 run pathology.
#include <gtest/gtest.h>

#include <algorithm>

#include "storage/device.hpp"
#include "storage/frontier.hpp"
#include "storage/layout.hpp"
#include "util/rng.hpp"

namespace cksum::storage {
namespace {

using util::Bytes;
using util::ByteView;

Bytes random_payload(std::uint64_t seed, std::size_t n) {
  Bytes p(n);
  util::Rng(seed).fill(p);
  return p;
}

TEST(StorageLayout, SealVerifyRoundTrip) {
  const std::size_t B = 4096;
  const Bytes payload = random_payload(11, B - kCheckFieldSize);
  const WriteContext ctx{0x1122334455667788ull, 7};
  for (const Algo a : kAllAlgos) {
    const Bytes block = seal_block(a, ctx, ByteView(payload), B);
    ASSERT_EQ(block.size(), B);
    EXPECT_TRUE(verify_block(a, ctx, ByteView(block))) << name(a);
    // The stored payload is the sealed one.
    const ByteView pl = block_payload(ByteView(block));
    EXPECT_TRUE(std::equal(pl.begin(), pl.end(), payload.begin())) << name(a);
    // Any single-bit flip, in the check field or the payload, must be
    // caught: a one-bit delta is never congruent to zero under any of
    // these moduli, and CRC-32's minimum distance covers it.
    for (const std::size_t bit : {0u, 63u, 64u, 64u + 7u, 8u * 2048u,
                                  8u * static_cast<unsigned>(B) - 1u}) {
      Bytes flipped = block;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(verify_block(a, ctx, ByteView(flipped)))
          << name(a) << " bit=" << bit;
    }
  }
}

TEST(StorageLayout, ContextIsCoveredButNotStored) {
  const std::size_t B = 2048;
  const Bytes payload = random_payload(12, B - kCheckFieldSize);
  const WriteContext ctx{42, 3};
  for (const Algo a : kAllAlgos) {
    const Bytes block = seal_block(a, ctx, ByteView(payload), B);
    EXPECT_TRUE(verify_block(a, ctx, ByteView(block))) << name(a);
    // A reader expecting a different address (misdirected write) or a
    // different generation (lost write) must reject the block even
    // though its bytes are pristine.
    EXPECT_FALSE(verify_block(a, WriteContext{43, 3}, ByteView(block)))
        << name(a);
    EXPECT_FALSE(verify_block(a, WriteContext{42, 4}, ByteView(block)))
        << name(a);
    // Runts never verify.
    EXPECT_FALSE(verify_block(a, ctx, ByteView(block).first(4))) << name(a);
  }
}

TEST(StorageDevice, SameSeedSameSchedule) {
  StoragePlan plan;
  plan.torn_rate = 0.3;
  plan.misdirect_rate = 0.2;
  plan.lost_rate = 0.1;
  plan.corrupt_rate = 0.2;
  const std::size_t B = 1024;
  BlockDevice d1(B, plan, 99);
  BlockDevice d2(B, plan, 99);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Bytes block = random_payload(1000 + i, B);
    const std::uint64_t addr = i % 16;
    const WriteEvent e1 = d1.write(addr, ByteView(block));
    const WriteEvent e2 = d2.write(addr, ByteView(block));
    EXPECT_EQ(static_cast<int>(e1.kind), static_cast<int>(e2.kind)) << i;
    EXPECT_EQ(e1.tear_sectors, e2.tear_sectors) << i;
    EXPECT_EQ(e1.victim, e2.victim) << i;
  }
  EXPECT_EQ(d1.stats(), d2.stats());
  ASSERT_EQ(d1.addresses(), d2.addresses());
  for (const std::uint64_t a : d1.addresses()) {
    const ByteView b1 = d1.read(a);
    const ByteView b2 = d2.read(a);
    ASSERT_EQ(b1.size(), b2.size());
    EXPECT_TRUE(std::equal(b1.begin(), b1.end(), b2.begin())) << a;
  }
  // Accounting: every write lands in exactly one class.
  EXPECT_EQ(d1.stats().writes, 200u);
  EXPECT_EQ(d1.stats().committed + d1.stats().total_injected(), 200u);
}

TEST(StorageDevice, FaultClassSemantics) {
  const std::size_t B = 2048;
  const Bytes old_block = random_payload(21, B);
  const Bytes new_block = random_payload(22, B);

  {  // torn: sector-aligned prefix of new over suffix of old
    StoragePlan p;
    p.torn_rate = 1.0;
    BlockDevice dev(B, p, 5);
    dev.format(0, ByteView(old_block));
    const WriteEvent ev = dev.write(0, ByteView(new_block));
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(WriteEvent::Kind::kTorn));
    ASSERT_GE(ev.tear_sectors, 1u);
    ASSERT_LT(ev.tear_sectors, B / kSectorSize);
    const ByteView got = dev.read(0);
    const std::size_t cut = ev.tear_sectors * kSectorSize;
    EXPECT_TRUE(std::equal(got.begin(), got.begin() + cut,
                           new_block.begin()));
    EXPECT_TRUE(std::equal(got.begin() + cut, got.end(),
                           old_block.begin() + cut));
  }
  {  // misdirected: victim hit, target untouched
    StoragePlan p;
    p.misdirect_rate = 1.0;
    BlockDevice dev(B, p, 6);
    dev.format(0, ByteView(old_block));
    dev.format(1, ByteView(old_block));
    const WriteEvent ev = dev.write(0, ByteView(new_block));
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(WriteEvent::Kind::kMisdirected));
    EXPECT_EQ(ev.victim, 1u);
    const ByteView target = dev.read(0);
    const ByteView victim = dev.read(1);
    EXPECT_TRUE(std::equal(target.begin(), target.end(), old_block.begin()));
    EXPECT_TRUE(std::equal(victim.begin(), victim.end(), new_block.begin()));
  }
  {  // lost: no state change at all
    StoragePlan p;
    p.lost_rate = 1.0;
    BlockDevice dev(B, p, 7);
    dev.format(0, ByteView(old_block));
    const WriteEvent ev = dev.write(0, ByteView(new_block));
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(WriteEvent::Kind::kLost));
    const ByteView got = dev.read(0);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), old_block.begin()));
  }
  {  // corrupt: the new block landed, then a burst changed something
    StoragePlan p;
    p.corrupt_rate = 1.0;
    BlockDevice dev(B, p, 8);
    dev.format(0, ByteView(old_block));
    const WriteEvent ev = dev.write(0, ByteView(new_block));
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(WriteEvent::Kind::kCorrupted));
    const ByteView got = dev.read(0);
    EXPECT_FALSE(std::equal(got.begin(), got.end(), new_block.begin()));
    // The burst is bounded: at most burst_bits_max bit positions moved.
    std::size_t flipped = 0;
    for (std::size_t i = 0; i < B; ++i)
      flipped += static_cast<std::size_t>(
          __builtin_popcount(got[i] ^ new_block[i]));
    EXPECT_LE(flipped, p.burst_bits_max);
    EXPECT_GE(flipped, 1u);
  }
}

FrontierConfig small_config(unsigned threads) {
  FrontierConfig cfg;
  cfg.seed = 0xD15C;
  cfg.trials = {60, 12};
  cfg.pool_pairs = 44;
  cfg.threads = threads;
  return cfg;
}

TEST(StorageFrontier, BitwiseIdenticalAcrossThreadCounts) {
  const FrontierResult r1 = run_frontier(small_config(1));
  const std::string j1 = frontier_json(small_config(1), r1);
  for (const unsigned threads : {2u, 8u}) {
    const FrontierResult rn = run_frontier(small_config(threads));
    EXPECT_EQ(frontier_json(small_config(threads), rn), j1)
        << threads << " threads";
  }
  EXPECT_EQ(r1.violations, 0u);
  for (const CellResult& c : r1.cells)
    EXPECT_EQ(c.trials, c.benign + c.detected + c.undetected)
        << name(c.alg) << "/" << name(c.fault);
}

TEST(StorageFrontier, OracleProperty) {
  // Every outcome must be re-derivable from the audit's raw bytes: an
  // undetected trial has a read whose content deviates from the
  // expected sealed block yet passes verification (recomputed here
  // from scratch), a detected trial a deviating read that fails it,
  // and a benign trial no deviating read at all.
  const BlockPool pool = build_pool(4096, 77, 40);
  for (const Algo alg : {Algo::kFletcher255, Algo::kCrc32,
                         Algo::kKoopmanDual}) {
    for (const FaultClass fault : kAllFaults) {
      for (std::uint64_t t = 0; t < 50; ++t) {
        TrialAudit audit;
        const Outcome o = run_trial(pool, alg, fault, 0xABCD, 3, t, &audit);
        bool any_undetected = false, any_detected = false;
        for (const TrialAudit::Read& r : audit.reads) {
          const bool correct = r.actual == r.expected;
          const bool ok = verify_block(
              alg, WriteContext{r.address, r.generation}, ByteView(r.actual));
          EXPECT_EQ(ok, r.check_passed);
          if (correct) EXPECT_TRUE(ok);  // sealed blocks always verify
          if (!correct) (ok ? any_undetected : any_detected) = true;
        }
        const Outcome expect = any_undetected ? Outcome::kUndetected
                               : any_detected ? Outcome::kDetected
                                              : Outcome::kBenign;
        EXPECT_EQ(static_cast<int>(o), static_cast<int>(expect))
            << name(alg) << "/" << name(fault) << " trial " << t;
      }
    }
  }
}

TEST(StorageFrontier, TornWriteRunPathology) {
  // The paper's Fletcher-255 result relocated to commit blocks: on
  // run-heavy payloads (0x00/0xFF-dominated) a torn write swaps
  // content invisible to the mod-255 sums, while CRC-32 and the
  // prime-modulus Koopman dual sum see essentially everything.
  const BlockPool pool = build_pool(4096, 31337, 66);
  const auto run_heavy_miss = [&](Algo alg, std::uint64_t* scored_out) {
    std::uint64_t scored = 0, undetected = 0;
    for (std::uint64_t t = 0; t < 400; ++t) {
      TrialAudit audit;
      const Outcome o =
          run_trial(pool, alg, FaultClass::kTorn, 0xF00D, 1, t, &audit);
      if (!run_heavy(audit.kind) || o == Outcome::kBenign) continue;
      ++scored;
      undetected += o == Outcome::kUndetected;
    }
    if (scored_out != nullptr) *scored_out = scored;
    return scored == 0 ? 0.0
                       : static_cast<double>(undetected) /
                             static_cast<double>(scored);
  };
  std::uint64_t f255_scored = 0;
  const double f255 = run_heavy_miss(Algo::kFletcher255, &f255_scored);
  ASSERT_GE(f255_scored, 30u);  // the slice must actually be populated
  EXPECT_GT(f255, 0.15);
  EXPECT_EQ(run_heavy_miss(Algo::kCrc32, nullptr), 0.0);
  EXPECT_EQ(run_heavy_miss(Algo::kKoopmanDual, nullptr), 0.0);
}

TEST(StorageFrontier, LostAndMisdirectedAlwaysDetected) {
  // The context coverage argument: a lost write leaves the old
  // generation, a misdirected write a wrong-address block — both shift
  // the covered-but-not-stored context, which no algorithm in the
  // matrix aliases over a 1-bit generation delta or an address swap.
  const BlockPool pool = build_pool(4096, 900, 40);
  for (const Algo alg : kAllAlgos) {
    for (const FaultClass fault :
         {FaultClass::kLost, FaultClass::kMisdirected}) {
      for (std::uint64_t t = 0; t < 60; ++t) {
        const Outcome o = run_trial(pool, alg, fault, 0xBEEF, 9, t, nullptr);
        EXPECT_NE(static_cast<int>(o), static_cast<int>(Outcome::kUndetected))
            << name(alg) << "/" << name(fault) << " trial " << t;
      }
    }
  }
}

}  // namespace
}  // namespace cksum::storage
