// Goodness-of-fit machinery: chi-square p-values (via the regularised
// incomplete gamma function) used by the Theorem 6/7 property tests —
// "over uniformly distributed data, the TCP / Fletcher checksum is
// uniformly distributed" — and by the compression experiment, which
// must show LZW output behaving like uniform data.
#pragma once

#include <cstdint>

#include "stats/histogram.hpp"

namespace cksum::stats {

/// Regularised lower incomplete gamma P(a, x) = γ(a,x)/Γ(a).
double gamma_p(double a, double x);

/// Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

/// Survival probability of a chi-square statistic with `dof` degrees
/// of freedom: P[X² >= stat]. Small values reject the null hypothesis.
double chi_square_sf(double stat, double dof);

/// Chi-square test of a histogram against the uniform distribution
/// over its bins; returns the p-value. Bins with tiny expected counts
/// are pooled to keep the approximation honest.
double uniformity_p_value(const Histogram& h, double min_expected = 5.0);

}  // namespace cksum::stats
