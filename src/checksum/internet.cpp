#include "checksum/internet.hpp"

#include <bit>
#include <cstring>

namespace cksum::alg {

void InternetSum::update(util::ByteView data) noexcept {
  std::size_t i = 0;
  const std::size_t n = data.size();
  if (odd_ && n > 0) {
    // Complete the pending high byte: this byte is the low half of the
    // current 16-bit word.
    acc_ += data[0];
    odd_ = false;
    i = 1;
  }
  // Main loop: big-endian 16-bit words. Accumulate into 64 bits; with
  // at most 2^48 bytes per fold we cannot overflow, and fold() does the
  // end-around carries once at the end.
  for (; i + 1 < n; i += 2) {
    acc_ += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < n) {
    acc_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

void InternetSum::update_sum(std::uint16_t block_sum,
                             bool block_odd_length) noexcept {
  acc_ += odd_ ? ones_swap(block_sum) : block_sum;
  if (block_odd_length) odd_ = !odd_;
}

void InternetSum::update_word(std::uint16_t word) noexcept {
  acc_ += odd_ ? ones_swap(word) : word;
}

std::uint16_t InternetSum::fold() const noexcept {
  std::uint64_t sum = acc_;
  while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

std::uint16_t internet_sum(util::ByteView data) noexcept {
  InternetSum s;
  s.update(data);
  return s.fold();
}

std::uint16_t internet_sum_wide(util::ByteView data) noexcept {
  // Ones-complement addition is commutative across any lane split, so
  // accumulate four 16-bit lanes in one 64-bit register and fold the
  // lanes at the end. Loading with memcpy keeps this portable; the
  // per-lane byte order only matters at fold time because end-around
  // carries commute with the byte swap (RFC 1071 §2).
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  std::uint64_t acc = 0;
  while (n >= 8) {
    // Split into two 32-bit halves so lane carries cannot overflow
    // between reductions: each addition adds at most 2^32-1, and we
    // re-fold every iteration via the carry add below.
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    // acc += word with end-around carry into the low bit.
    acc += word;
    if (acc < word) ++acc;  // carry out of 64 bits wraps around
    p += 8;
    n -= 8;
  }
  // Fold 64 -> 32 -> 16 with end-around carries.
  std::uint64_t sum = (acc & 0xffffffffu) + (acc >> 32);
  sum = (sum & 0xffffu) + (sum >> 16);
  sum = (sum & 0xffffu) + (sum >> 16);
  std::uint16_t folded = static_cast<std::uint16_t>(sum);

  // The 64-bit loop consumed native-endian 16-bit lanes; on a
  // little-endian machine the lanes are byte-swapped relative to the
  // network order the checksum is defined in. Swapping the folded sum
  // once repairs every lane at once.
  if constexpr (std::endian::native == std::endian::little) {
    folded = ones_swap(folded);
  }

  // Tail bytes (fewer than 8) via the scalar path, composed with the
  // standard block-combination rule (the wide prefix has even length).
  if (n > 0) {
    const std::uint16_t tail = internet_sum(util::ByteView(p, n));
    folded = ones_add(folded, tail);
  }
  return folded;
}

}  // namespace cksum::alg
