// Archive-style generators: tar archives and mail spools.
//
// Both are staples of 1990s filesystems with strong block structure:
// tar pads every member to 512-byte boundaries with zeros and fills
// header blocks with NUL-padded fixed-width fields (heavily repeated
// across members); mbox spools repeat near-identical RFC-822 header
// stanzas every few hundred bytes. Both feed the splice simulator the
// alignment-and-repetition statistics the paper attributes to real
// file data.
#include <string>

#include "fsgen/generator.hpp"

namespace cksum::fsgen {

namespace {

void pad_to(util::Bytes& out, std::size_t boundary) {
  const std::size_t rem = out.size() % boundary;
  if (rem != 0) out.insert(out.end(), boundary - rem, 0x00);
}

void append_str(util::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

/// NUL-padded fixed-width field, octal-formatted like tar's numerics.
void append_octal_field(util::Bytes& out, std::uint64_t value,
                        std::size_t width) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%0*llo", static_cast<int>(width - 1),
                static_cast<unsigned long long>(value));
  append_str(out, buf);
  out.push_back(0);
}

void append_padded_name(util::Bytes& out, const std::string& name,
                        std::size_t width) {
  append_str(out, name);
  out.insert(out.end(), width - name.size(), 0x00);
}

}  // namespace

util::Bytes generate_tar_archive(util::Rng& rng, std::size_t approx_size) {
  static constexpr std::string_view kDirs[] = {"src/", "doc/", "lib/",
                                               "etc/", "bin/"};
  static constexpr std::string_view kStems[] = {
      "main", "util", "readme", "makefile", "config", "parse", "output",
      "input", "notes", "test"};
  static constexpr std::string_view kExts[] = {".c", ".h", ".txt", ".1",
                                               ".sh", ""};
  util::Bytes out;
  out.reserve(approx_size + 1024);

  while (out.size() + 1024 < approx_size) {
    // --- 512-byte ustar-style header block. ---
    std::string name(kDirs[rng.below(std::size(kDirs))]);
    name += kStems[rng.below(std::size(kStems))];
    name += kExts[rng.below(std::size(kExts))];
    const std::size_t member_size =
        std::min<std::size_t>(approx_size - out.size(),
                              64 + rng.below(4096));

    const std::size_t header_at = out.size();
    append_padded_name(out, name, 100);
    append_octal_field(out, 0644, 8);   // mode
    append_octal_field(out, 1001, 8);   // uid
    append_octal_field(out, 100, 8);    // gid
    append_octal_field(out, member_size, 12);
    append_octal_field(out, 0x2F000000 + rng.below(1u << 20), 12);  // mtime
    append_str(out, "        ");        // checksum placeholder (spaces)
    out.push_back('0');                 // typeflag: regular file
    out.insert(out.end(), 100, 0x00);   // linkname
    append_str(out, "ustar  ");
    out.push_back(0);
    append_padded_name(out, "jonathan", 32);
    append_padded_name(out, "dsg", 32);
    pad_to(out, 512);

    // tar's simple additive header checksum, written back in octal.
    std::uint32_t sum = 0;
    for (std::size_t i = header_at; i < header_at + 512; ++i) sum += out[i];
    char chk[8];
    std::snprintf(chk, sizeof chk, "%06o", sum);
    std::copy(chk, chk + 6, out.begin() + static_cast<std::ptrdiff_t>(header_at) + 148);
    out[header_at + 154] = 0;

    // --- Member data: text-like, zero-padded to the block boundary.
    util::Rng content_rng = rng.child(out.size());
    const util::Bytes content = generate_text(content_rng, member_size);
    out.insert(out.end(), content.begin(),
               content.begin() + static_cast<std::ptrdiff_t>(
                                     std::min(member_size, content.size())));
    pad_to(out, 512);
  }
  // End-of-archive: two zero blocks.
  out.insert(out.end(), 1024, 0x00);
  return out;
}

util::Bytes generate_mail_spool(util::Rng& rng, std::size_t approx_size) {
  static constexpr std::string_view kUsers[] = {
      "jonathan", "michael", "craig", "jim", "chuck", "bill", "lansing"};
  static constexpr std::string_view kHosts[] = {
      "dsg.stanford.edu", "bbn.com", "sics.se", "network.com"};
  static constexpr std::string_view kSubjects[] = {
      "Re: checksum results", "splice tests",      "Re: Re: AAL5 CRC",
      "filesystem snapshots", "meeting notes",     "draft comments",
      "Re: trailer sums",     "simulation re-run",
  };

  util::Bytes out;
  out.reserve(approx_size + 512);
  int msg_no = 0;
  while (out.size() < approx_size) {
    ++msg_no;
    std::string hdr;
    const auto& user = kUsers[rng.below(std::size(kUsers))];
    const auto& host = kHosts[rng.below(std::size(kHosts))];
    hdr += "From ";
    hdr += user;
    hdr += "@";
    hdr += host;
    hdr += " Thu Aug 17 12:";
    hdr += static_cast<char>('0' + rng.below(6));
    hdr += static_cast<char>('0' + rng.below(10));
    hdr += ":00 1995\n";
    hdr += "Received: by ";
    hdr += host;
    hdr += " (5.65/DSG-1.0)\n\tid AA";
    hdr += std::to_string(10000 + msg_no);
    hdr += "; Thu, 17 Aug 95 12:00:00 -0700\n";
    hdr += "From: ";
    hdr += user;
    hdr += "@";
    hdr += host;
    hdr += "\nTo: checksum-list@dsg.stanford.edu\nSubject: ";
    hdr += kSubjects[rng.below(std::size(kSubjects))];
    hdr += "\nMessage-Id: <9508171200.AA";
    hdr += std::to_string(10000 + msg_no);
    hdr += "@";
    hdr += host;
    hdr += ">\nStatus: RO\n\n";
    append_str(out, hdr);

    util::Rng body_rng = rng.child(out.size());
    const util::Bytes body = generate_text(
        body_rng, static_cast<std::size_t>(rng.between(250, 2500)));
    out.insert(out.end(), body.begin(), body.end());
    out.push_back('\n');
  }
  return out;
}

}  // namespace cksum::fsgen
