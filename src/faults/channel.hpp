// Composable fault-injection channel for ATM cell streams.
//
// The paper's error model covers exactly one fault class — cell drops
// that splice adjacent AAL5 PDUs. Real links misbehave in more ways
// than that, and detection behaviour differs sharply by fault class
// (burst vs random errors, duplication vs reordering vs truncation).
// The FaultyChannel injects every class the receiver stack can be
// exposed to, each with an independent rate and counter, so the soak
// driver and bench_faultmatrix can measure what escapes:
//
//  * payload bit-bursts   — core::apply_burst inside a cell payload
//  * HEC corruption       — bit flips in the 5-byte header; the cell is
//                           re-parsed and dropped when the HEC check
//                           fails (the normal case), or carried on with
//                           its mutated header when a multi-bit flip
//                           happens to re-validate (miscorrection)
//  * cell duplication     — a cell delivered twice
//  * bounded reordering   — a cell delayed past up to `reorder_window`
//                           successors
//  * EOM-bit flips        — the AAL5 end-of-message marker toggled
//                           (header rewritten with a valid HEC: models
//                           an undetected header error)
//  * cross-VC misdelivery — VPI/VCI rewritten to another channel seen
//                           in the same stream
//  * stream truncation    — the tail of the stream cut off (link reset
//                           mid-transfer)
//
// The channel is deterministic: it owns a seeded Rng, so a (plan,
// seed, stream) triple always produces the same faulted stream. It is
// meant to be layered *in front of* the atm::transmit loss/discard
// policies, which model the switch rather than the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/cell.hpp"
#include "util/rng.hpp"

namespace cksum::faults {

/// Idempotently register the faults.* metric family with
/// obs::Registry::global(). The channel registers lazily on first
/// apply(); drivers call this up front so exported manifests carry
/// the full family (see docs/OBSERVABILITY.md).
void register_fault_metrics();

/// Per-class injection rates. All rates are per-cell probabilities
/// except truncate_rate, which is per-stream (one cut at most per
/// apply() call). A default-constructed plan injects nothing.
struct FaultPlan {
  double payload_burst_rate = 0.0;
  unsigned burst_bits_min = 1;    ///< inclusive; clamped to [1, 64]
  unsigned burst_bits_max = 48;   ///< inclusive; clamped to [min, 64]

  double hec_corrupt_rate = 0.0;
  unsigned hec_flip_bits = 1;     ///< header bits flipped per corruption

  double duplicate_rate = 0.0;

  double reorder_rate = 0.0;
  std::size_t reorder_window = 4; ///< max cells a delayed cell slips past

  double eom_flip_rate = 0.0;
  double misdeliver_rate = 0.0;
  double truncate_rate = 0.0;
};

/// One counter per fault class, plus receiver-visible consequences.
struct FaultStats {
  std::uint64_t cells_in = 0;
  std::uint64_t cells_out = 0;

  std::uint64_t payload_bursts = 0;
  std::uint64_t hec_corruptions = 0;
  std::uint64_t hec_dropped = 0;      ///< corruptions the HEC check caught
  std::uint64_t hec_miscorrected = 0; ///< corruptions that re-validated
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t eom_flips = 0;
  std::uint64_t misdeliveries = 0;
  std::uint64_t truncations = 0;
  std::uint64_t cells_truncated = 0;

  /// Total injected fault events (the soak driver's progress metric;
  /// a truncation counts once per cut, not per cell removed).
  std::uint64_t total_faults() const noexcept {
    return payload_bursts + hec_corruptions + duplicates + reorders +
           eom_flips + misdeliveries + truncations;
  }

  void merge(const FaultStats& o) noexcept;
};

/// Applies a FaultPlan to cell streams. Stateless across streams apart
/// from the Rng and the accumulated counters.
class FaultyChannel {
 public:
  FaultyChannel(const FaultPlan& plan, std::uint64_t seed)
      : plan_(plan), rng_(seed) {}

  /// Pass one stream through the channel. Order of layers: per-cell
  /// faults (burst, EOM flip, misdelivery, HEC corruption, duplication,
  /// reordering) in input order, then at most one truncation.
  std::vector<atm::Cell> apply(const std::vector<atm::Cell>& stream);

  const FaultStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace cksum::faults
