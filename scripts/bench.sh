#!/bin/sh
# Run the splice-evaluator benchmark suite and append one trajectory
# entry to BENCH_splice.json at the repo root.
#
#   sh scripts/bench.sh           full run (Release build)
#   sh scripts/bench.sh --quick   short measurement window (CI smoke)
#   sh scripts/bench.sh --check   also fail on gross regressions:
#                                 DFS rate < 1/5 of the previous entry,
#                                 DFS slower than the flat evaluator,
#                                 or slicing-by-8 CRC-32 < 3x scalar
set -eu

cd "$(dirname "$0")/.."

QUICK=0
CHECK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --check) CHECK=1 ;;
    *) echo "usage: $0 [--quick] [--check]" >&2; exit 2 ;;
  esac
done

BUILD=build
cmake -B "$BUILD" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target bench_splice bench_speed cksumlab

RAW="$BUILD/bench_splice_raw.json"
MIN_TIME=0.5
[ "$QUICK" -eq 1 ] && MIN_TIME=0.05

"$BUILD/bench/bench_splice" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$RAW" \
  --benchmark_out_format=json

# Per-kernel checksum throughput (the BM_Kernel_<alg>_<kernel> rows of
# bench_speed); distilled into the trajectory's kernel_throughput
# family. See src/checksum/kernels/ and docs/PERF.md.
RAWK="$BUILD/bench_kernels_raw.json"
"$BUILD/bench/bench_speed" \
  --benchmark_filter='BM_Kernel_' \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$RAWK" \
  --benchmark_out_format=json

# Telemetry run manifest for the same corpus family (see
# docs/OBSERVABILITY.md); its headline numbers ride along in the
# trajectory entry.
MANIFEST="$BUILD/metrics_manifest.json"
"$BUILD/tools/cksumlab" splice --quick --metrics-out "$MANIFEST" \
  > /dev/null
python3 scripts/check_manifest.py "$MANIFEST" \
  --require-family splice --require-family sched

DISTILL_ARGS=""
[ "$QUICK" -eq 1 ] && DISTILL_ARGS="$DISTILL_ARGS --quick"
[ "$CHECK" -eq 1 ] && DISTILL_ARGS="$DISTILL_ARGS --check"
# shellcheck disable=SC2086
python3 scripts/bench_distill.py "$RAW" BENCH_splice.json \
  --manifest "$MANIFEST" --speed "$RAWK" $DISTILL_ARGS
