// Corpus-store conformance tier (docs/CORPUS.md): a store built by
// build_corpus and streamed back through run_corpus must be bitwise
// indistinguishable from re-packetising the source filesystem — for
// every transport checksum in the registry, both placements, and
// compressed transfers — and a corrupted store must be rejected at
// open() with an explicit reason, never by faulting.
#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "checksum/kernels/kernel.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/corpus_store.hpp"
#include "fsgen/profile.hpp"

namespace cksum {
namespace {

// CorpusHeader layout facts the corruption tests patch against
// (static_asserted to 168 bytes in corpus_store.cpp).
constexpr std::size_t kHeaderSize = 168;
constexpr std::size_t kEndianOff = 8;
constexpr std::size_t kVersionOff = 12;
constexpr std::size_t kHeaderCrcOff = 24;
constexpr std::size_t kSealCrcOff = 28;
constexpr std::size_t kSectionTableOff = kHeaderSize;

util::Bytes read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return util::Bytes(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const util::Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

void put_u32(util::Bytes& b, std::size_t off, std::uint32_t v) {
  std::memcpy(b.data() + off, &v, sizeof v);
}

std::uint32_t get_u32(const util::Bytes& b, std::size_t off) {
  std::uint32_t v = 0;
  std::memcpy(&v, b.data() + off, sizeof v);
  return v;
}

/// Recompute seal_crc and header_crc after a deliberate patch, so the
/// targeted validation check — not the CRCs — is what rejects the
/// file.
void reseal(util::Bytes& b) {
  put_u32(b, kSealCrcOff,
          alg::kern::crc32(util::ByteView(b.data() + kHeaderSize,
                                          b.size() - kHeaderSize)));
  put_u32(b, kHeaderCrcOff, 0);
  put_u32(b, kHeaderCrcOff,
          alg::kern::crc32(util::ByteView(b.data(), kHeaderSize)));
}

/// Build a small nsc05 store under `flow` and return its path. The
/// file is owned by the caller (std::remove when done).
std::string build_store(const net::FlowConfig& flow, bool compress,
                        const std::string& path, double scale = 0.05) {
  fsgen::CorpusBuildParams params;
  params.profile = "nsc05";
  params.scale = scale;
  params.flow = flow;
  params.compress = compress;
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), scale);
  std::string err;
  EXPECT_TRUE(fsgen::build_corpus(params, fs, path, &err)) << err;
  return path;
}

void expect_stats_identical(const core::SpliceStats& a,
                            const core::SpliceStats& b,
                            const net::FlowConfig& flow) {
  // The full machine-readable report compares every published field…
  EXPECT_EQ(core::splice_stats_json(a, alg::name(flow.packet.transport)),
            core::splice_stats_json(b, alg::name(flow.packet.transport)));
  // …and the load-bearing counters are asserted individually so a
  // failure names the divergent column.
  EXPECT_EQ(a.files, b.files);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.caught_by_header, b.caught_by_header);
  EXPECT_EQ(a.identical, b.identical);
  EXPECT_EQ(a.remaining, b.remaining);
  EXPECT_EQ(a.missed_crc, b.missed_crc);
  EXPECT_EQ(a.missed_transport, b.missed_transport);
  EXPECT_EQ(a.missed_both, b.missed_both);
  EXPECT_EQ(a.missed_koopman_dual, b.missed_koopman_dual);
  EXPECT_EQ(a.missed_koopman_single, b.missed_koopman_single);
}

// --- Round-trip conformance -----------------------------------------

TEST(CorpusStore, RoundTripEveryTransportAndPlacement) {
  const alg::Algorithm transports[] = {alg::Algorithm::kInternet,
                                       alg::Algorithm::kFletcher255,
                                       alg::Algorithm::kFletcher256};
  const net::ChecksumPlacement placements[] = {
      net::ChecksumPlacement::kHeader, net::ChecksumPlacement::kTrailer};
  for (const alg::Algorithm tr : transports) {
    for (const net::ChecksumPlacement pl : placements) {
      net::FlowConfig flow = core::paper_flow_config();
      flow.packet.transport = tr;
      flow.packet.placement = pl;
      const std::string path = build_store(flow, false, "tcs_rt.ckcorp");

      std::string err;
      const auto rd = fsgen::CorpusReader::open(path, &err);
      ASSERT_NE(rd, nullptr) << err;
      EXPECT_EQ(rd->info().params.flow.packet.transport, tr);
      EXPECT_EQ(rd->info().params.flow.packet.placement, pl);

      core::SpliceRunConfig cfg;
      cfg.flow = rd->info().params.flow;
      cfg.threads = 2;
      const core::SpliceStats streamed = core::run_corpus(cfg, *rd);

      core::SpliceRunConfig ref = cfg;
      ref.flow = flow;
      const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.05);
      const core::SpliceStats direct = core::run_filesystem(ref, fs);
      expect_stats_identical(streamed, direct, flow);
      std::remove(path.c_str());
    }
  }
}

TEST(CorpusStore, CompressedRoundTrip) {
  const net::FlowConfig flow = core::paper_flow_config();
  const std::string path = build_store(flow, true, "tcs_lzw.ckcorp");
  std::string err;
  const auto rd = fsgen::CorpusReader::open(path, &err);
  ASSERT_NE(rd, nullptr) << err;
  EXPECT_TRUE(rd->info().params.compress);

  core::SpliceRunConfig cfg;
  cfg.flow = rd->info().params.flow;
  const core::SpliceStats streamed = core::run_corpus(cfg, *rd);

  core::SpliceRunConfig ref = cfg;
  ref.compress_files = true;  // build-time compression == run-time
  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.05);
  expect_stats_identical(streamed, core::run_filesystem(ref, fs), flow);
  std::remove(path.c_str());
}

TEST(CorpusStore, RangeDecompositionMatchesWholeRun) {
  const net::FlowConfig flow = core::paper_flow_config();
  const std::string path = build_store(flow, false, "tcs_range.ckcorp");
  std::string err;
  const auto rd = fsgen::CorpusReader::open(path, &err);
  ASSERT_NE(rd, nullptr) << err;

  core::SpliceRunConfig cfg;
  cfg.flow = rd->info().params.flow;
  const core::SpliceStats whole = core::run_corpus(cfg, *rd);

  // Any shard partition must merge back to the whole-run stats — the
  // property the distributed service's corpus jobs lean on.
  core::SpliceStats merged;
  const std::size_t n = rd->file_count();
  for (std::size_t begin = 0; begin < n; begin += 2)
    merged.merge(core::run_corpus_range(cfg, *rd, begin,
                                        std::min(begin + 2, n)));
  expect_stats_identical(merged, whole, flow);
  std::remove(path.c_str());
}

TEST(CorpusStore, PacketReconstructionBitwise) {
  const net::FlowConfig flow = core::paper_flow_config();
  const std::string path = build_store(flow, false, "tcs_pkt.ckcorp");
  std::string err;
  const auto rd = fsgen::CorpusReader::open(path, &err);
  ASSERT_NE(rd, nullptr) << err;

  const fsgen::Filesystem fs(fsgen::profile("nsc05"), 0.05);
  ASSERT_EQ(rd->file_count(), fs.file_count());
  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    const util::Bytes data = fs.file(i);
    const std::vector<core::SimPacket> want =
        core::packetize_file(flow, util::ByteView(data));
    const std::vector<core::SimPacket> got = rd->file_packets(i);
    ASSERT_EQ(got.size(), want.size()) << "file " << i;
    for (std::size_t p = 0; p < want.size(); ++p) {
      const core::SimPacket& w = want[p];
      const core::SimPacket& g = got[p];
      const util::ByteView wb = w.pdu.bytes(), gb = g.pdu.bytes();
      ASSERT_EQ(gb.size(), wb.size());
      EXPECT_EQ(std::memcmp(gb.data(), wb.data(), wb.size()), 0)
          << "pdu bytes, file " << i << " packet " << p;
      ASSERT_EQ(g.cells.size(), w.cells.size());
      for (std::size_t c = 0; c < w.cells.size(); ++c) {
        EXPECT_EQ(g.cells[c].inet, w.cells[c].inet);
        EXPECT_EQ(g.cells[c].f255.a, w.cells[c].f255.a);
        EXPECT_EQ(g.cells[c].f255.b, w.cells[c].f255.b);
        EXPECT_EQ(g.cells[c].f256.a, w.cells[c].f256.a);
        EXPECT_EQ(g.cells[c].f256.b, w.cells[c].f256.b);
        EXPECT_EQ(g.cells[c].crc, w.cells[c].crc);
        EXPECT_EQ(g.cells[c].hash, w.cells[c].hash);
        EXPECT_EQ(g.cells[c].kd.a, w.cells[c].kd.a);
        EXPECT_EQ(g.cells[c].kd.b, w.cells[c].kd.b);
        EXPECT_EQ(g.cells[c].ks, w.cells[c].ks);
      }
      EXPECT_EQ(g.tp.head_sum, w.tp.head_sum);
      EXPECT_EQ(g.tp.stored, w.tp.stored);
      EXPECT_EQ(g.tp.eom_len, w.tp.eom_len);
      EXPECT_EQ(g.tp.eom_sum, w.tp.eom_sum);
      EXPECT_EQ(g.stored_crc, w.stored_crc);
      EXPECT_EQ(g.crc_head44, w.crc_head44);
      EXPECT_EQ(g.eom_kd.a, w.eom_kd.a);
      EXPECT_EQ(g.eom_kd.b, w.eom_kd.b);
      EXPECT_EQ(g.eom_ks, w.eom_ks);
      EXPECT_EQ(g.kd_pdu.a, w.kd_pdu.a);
      EXPECT_EQ(g.kd_pdu.b, w.kd_pdu.b);
      EXPECT_EQ(g.ks_pdu, w.ks_pdu);
      EXPECT_EQ(g.eom_cov_hash, w.eom_cov_hash);
      EXPECT_EQ(g.total_len, w.total_len);
      EXPECT_EQ(g.fast_path_ok, w.fast_path_ok);
      EXPECT_EQ(g.hdr_ok_self, w.hdr_ok_self);
      EXPECT_EQ(g.hdr_require_ipck, w.hdr_require_ipck);
      EXPECT_EQ(g.hdr_legacy95, w.hdr_legacy95);
    }
  }
  std::remove(path.c_str());
}

TEST(CorpusStore, InfoFieldsSane) {
  net::FlowConfig flow = core::paper_flow_config();
  flow.segment_size = 512;
  const std::string path = build_store(flow, false, "tcs_info.ckcorp");
  std::string err;
  const auto rd = fsgen::CorpusReader::open(path, &err);
  ASSERT_NE(rd, nullptr) << err;
  const fsgen::CorpusInfo& in = rd->info();
  EXPECT_EQ(in.version, fsgen::kCorpusVersion);
  EXPECT_EQ(in.files, fsgen::Filesystem(fsgen::profile("nsc05"), 0.05)
                          .file_count());
  EXPECT_GT(in.packets, 0u);
  EXPECT_GT(in.cells, in.packets);  // every packet has >= 1 cell
  EXPECT_EQ(in.pdu_bytes, in.cells * 48);
  EXPECT_EQ(in.file_size, read_all(path).size());
  EXPECT_EQ(in.params.profile, "nsc05");
  EXPECT_DOUBLE_EQ(in.params.scale, 0.05);
  EXPECT_EQ(in.params.flow.segment_size, 512u);
  std::remove(path.c_str());
}

// --- Corruption matrix ----------------------------------------------

class CorpusStoreCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // One scratch file per test: ctest runs each case as its own
    // process in a shared cwd, so a fixed name races under -j.
    path_ = std::string("tcs_corrupt_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckcorp";
    build_store(core::paper_flow_config(), false, path_);
    pristine_ = read_all(path_);
    ASSERT_GT(pristine_.size(), kHeaderSize);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Write `mutated` and expect open() to reject it with a reason.
  std::string expect_rejected(const util::Bytes& mutated,
                              const std::string& what) {
    write_all(path_, mutated);
    std::string err;
    const auto rd = fsgen::CorpusReader::open(path_, &err);
    EXPECT_EQ(rd, nullptr) << what;
    EXPECT_FALSE(err.empty()) << what << ": rejected without a reason";
    return err;
  }

  std::string path_;
  util::Bytes pristine_;
};

TEST_F(CorpusStoreCorruption, MissingFileRejected) {
  std::string err;
  EXPECT_EQ(fsgen::CorpusReader::open("tcs_no_such_file.ckcorp", &err),
            nullptr);
  EXPECT_FALSE(err.empty());
}

TEST_F(CorpusStoreCorruption, TruncationsRejected) {
  const std::size_t n = pristine_.size();
  const std::size_t cuts[] = {0,       1,           kHeaderSize - 1,
                              kHeaderSize, kHeaderSize + 7, n / 2,
                              n - 64,  n - 1};
  for (const std::size_t cut : cuts) {
    util::Bytes t(pristine_.begin(),
                  pristine_.begin() + static_cast<std::ptrdiff_t>(cut));
    expect_rejected(t, "truncated to " + std::to_string(cut) + " bytes");
  }
}

TEST_F(CorpusStoreCorruption, BitFlipsNeverFault) {
  // A spread of single-bit flips across the whole file — header,
  // section table, and every section body — must each be caught by
  // one of the two CRC seals (or an earlier structural check).
  const std::size_t n = pristine_.size();
  const std::size_t stride = std::max<std::size_t>(1, n / 61);
  for (std::size_t off = 0; off < n; off += stride) {
    util::Bytes m = pristine_;
    m[off] ^= static_cast<std::uint8_t>(1u << (off % 8));
    expect_rejected(m, "bit flip at offset " + std::to_string(off));
  }
}

TEST_F(CorpusStoreCorruption, BadMagicRejected) {
  util::Bytes m = pristine_;
  m[0] = 'X';
  const std::string err = expect_rejected(m, "bad magic");
  EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST_F(CorpusStoreCorruption, WrongVersionRejected) {
  util::Bytes m = pristine_;
  put_u32(m, kVersionOff, fsgen::kCorpusVersion + 7);
  reseal(m);  // targeted check, not the CRC, must reject it
  const std::string err = expect_rejected(m, "wrong version");
  EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST_F(CorpusStoreCorruption, ForeignEndiannessRejected) {
  util::Bytes m = pristine_;
  put_u32(m, kEndianOff, __builtin_bswap32(get_u32(m, kEndianOff)));
  reseal(m);
  const std::string err = expect_rejected(m, "foreign endianness");
  EXPECT_NE(err.find("endian"), std::string::npos) << err;
}

TEST_F(CorpusStoreCorruption, SectionOutOfBoundsRejected) {
  // Point the first section far past EOF; with the seals recomputed
  // the bounds check is the only line of defence against a wild read.
  util::Bytes m = pristine_;
  const std::size_t off_field = kSectionTableOff + 8;  // SectionRec.offset
  std::uint64_t huge = m.size() * 2 + fsgen::kCorpusAlign;
  std::memcpy(m.data() + off_field, &huge, sizeof huge);
  reseal(m);
  const std::string err = expect_rejected(m, "section out of bounds");
  EXPECT_NE(err.find("bounds"), std::string::npos) << err;
}

TEST_F(CorpusStoreCorruption, MisalignedSectionRejected) {
  util::Bytes m = pristine_;
  const std::size_t off_field = kSectionTableOff + 8;
  std::uint64_t off = 0;
  std::memcpy(&off, m.data() + off_field, sizeof off);
  off += 8;  // still in bounds, no longer 64-byte aligned
  std::memcpy(m.data() + off_field, &off, sizeof off);
  reseal(m);
  const std::string err = expect_rejected(m, "misaligned section");
  EXPECT_NE(err.find("misaligned"), std::string::npos) << err;
}

TEST_F(CorpusStoreCorruption, CorruptPacketIndexRejected) {
  // Rewrite the first packet record's cell_begin to past-the-end; the
  // per-packet index validation must catch it before file_packets can
  // read out of bounds.
  util::Bytes m = pristine_;
  const std::size_t table_off = kSectionTableOff + 24;  // slot 1: kPackets
  std::uint64_t pkt_off = 0;
  std::memcpy(&pkt_off, m.data() + table_off + 8, sizeof pkt_off);
  std::uint64_t evil = ~0ull / 2;
  std::memcpy(m.data() + pkt_off, &evil, sizeof evil);  // cell_begin
  reseal(m);
  const std::string err = expect_rejected(m, "corrupt packet index");
  EXPECT_NE(err.find("packet"), std::string::npos) << err;
}

}  // namespace
}  // namespace cksum
