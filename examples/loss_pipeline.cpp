// End-to-end ATM pipeline walkthrough: one file becomes TCP packets,
// AAL5 PDUs, and 53-byte cells; the cells cross a bursty lossy link;
// the AAL5 reassembler and receiver checks sort out what survived.
// Run it twice to compare discard policies:
//
//   $ ./examples/loss_pipeline            # plain cell loss
//   $ ./examples/loss_pipeline epd        # Early Packet Discard
//   $ ./examples/loss_pipeline ppd 0.05   # PPD at 5% cell loss
#include <cstdio>
#include <cstring>
#include <set>

#include "atm/loss.hpp"
#include "atm/reassembler.hpp"
#include "core/experiments.hpp"
#include "net/validate.hpp"
#include "util/hash.hpp"

using namespace cksum;

int main(int argc, char** argv) {
  atm::LossConfig loss;
  loss.cell_loss_rate = argc > 2 ? std::atof(argv[2]) : 0.02;
  loss.burst_continue = 0.5;
  const char* policy_name = "plain cell loss";
  if (argc > 1 && std::strcmp(argv[1], "ppd") == 0) {
    loss.policy = atm::DiscardPolicy::kPartialPacketDiscard;
    policy_name = "partial packet discard";
  } else if (argc > 1 && std::strcmp(argv[1], "epd") == 0) {
    loss.policy = atm::DiscardPolicy::kEarlyPacketDiscard;
    policy_name = "early packet discard";
  }

  // A zero-heavy file: the worst case for the TCP checksum.
  const util::Bytes file =
      fsgen::generate_file(fsgen::FileKind::kGmonProfile, 42, 120000);
  const net::FlowConfig flow = core::paper_flow_config();
  const auto pkts = net::segment_file(flow, util::ByteView(file));

  std::vector<atm::Cell> stream;
  std::set<std::uint64_t> good;
  for (const auto& p : pkts) {
    good.insert(util::hash64(p.ip_bytes()));
    const auto cells =
        atm::segment_pdu(atm::CpcsPdu::frame(p.ip_bytes()), 0, 32);
    stream.insert(stream.end(), cells.begin(), cells.end());
  }
  std::printf("sender: %zu bytes -> %zu packets -> %zu cells (%zu bytes "
              "on the wire)\n",
              file.size(), pkts.size(), stream.size(),
              stream.size() * atm::kCellLen);

  util::Rng rng(7);
  atm::LossStats ls;
  const auto survivors = atm::transmit(stream, loss, rng, &ls);
  std::printf("link (%s, %.1f%% loss, bursty): %llu cells lost, %llu more "
              "dropped by policy\n",
              policy_name, 100 * loss.cell_loss_rate,
              static_cast<unsigned long long>(ls.cells_lost),
              static_cast<unsigned long long>(ls.cells_policy_drop));

  atm::Reassembler reasm;
  std::size_t intact = 0, rej_len = 0, rej_crc = 0, rej_tcp = 0, corrupt = 0;
  for (const auto& cell : survivors) {
    auto done = reasm.push(cell);
    if (!done) continue;
    if (!done->length_ok) {
      ++rej_len;
      continue;
    }
    if (!done->crc_ok) {
      ++rej_crc;
      continue;
    }
    const std::size_t len =
        atm::parse_trailer(util::ByteView(done->bytes)).length;
    const util::ByteView datagram = util::ByteView(done->bytes).first(len);
    if (net::check_headers(datagram, len, true) != net::HeaderCheck::kOk ||
        !net::verify_transport_checksum(flow.packet, datagram)) {
      ++rej_tcp;
      continue;
    }
    if (good.count(util::hash64(datagram)) > 0) {
      ++intact;
    } else {
      ++corrupt;  // every check passed on corrupted data
    }
  }

  std::printf(
      "receiver: %zu intact datagrams; rejected %zu by AAL5 length, %zu "
      "by CRC-32, %zu by header/TCP checks; %zu UNDETECTED corruptions\n",
      intact, rej_len, rej_crc, rej_tcp, corrupt);
  std::printf(
      "\n(the paper's §7: with EPD no fused PDU can even form; with PPD "
      "fusions die on the length check; with plain loss the CRC carries "
      "the load and the TCP checksum is the last, leaky line of "
      "defence)\n");
  return 0;
}
