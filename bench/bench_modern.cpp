// Extension: the paper's experiment on a 2026-style filesystem mix.
//
// Modern home directories are dominated by already-compressed formats
// (media, archives, packaged software) whose bytes look uniform to a
// checksum — the paper's own Table 7 in ambient form. What keeps the
// TCP checksum above its uniform rate today is thesurviving
// structured minority: source trees, build artifacts, profiling data.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  net::PacketConfig cfg;
  core::TextTable t({"filesystem", "remaining", "TCP missed", "miss%",
                     "x uniform"});
  for (const char* name : {"sics.se:/opt", "modern:/home"}) {
    const core::SpliceStats st =
        core::run_profile(fsgen::profile(name), cfg, scale);
    const double rate = st.remaining
                            ? static_cast<double>(st.missed_transport) /
                                  static_cast<double>(st.remaining)
                            : 0.0;
    char xunif[32];
    std::snprintf(xunif, sizeof xunif, "%.1f",
                  rate * 65535.0);
    t.add_row({name, core::fmt_count(st.remaining),
               core::fmt_count(st.missed_transport), core::fmt_pct(rate),
               xunif});
  }
  std::printf(
      "== Extension: the 1995 experiment on a 2026-style filesystem "
      "mix ==\n\n");
  t.print(std::cout);
  std::printf(
      "\nExpected shape: the modern mix sits far below 1995's /opt — "
      "compression ate most of the paper's effect — but build/profiling "
      "artifacts still hold it above the uniform 0.0015%%.\n");
  return 0;
}
