// JSON rendering of snapshots and the run manifest.
//
// Manifest schema "cksum-metrics/1" (validated by
// scripts/check_manifest.py, consumed by scripts/bench_distill.py):
//
//   {
//     "schema": "cksum-metrics/1",
//     "tool": "cksumlab splice",        // driver + subcommand
//     "corpus": "nsc05",                // profile / directory / manifest
//     "seed": 0,
//     "threads": 8,
//     "git": "df47209",                 // git describe at build time
//     "wall_seconds": 1.234567,
//     "metrics": {
//       "splice.total": {"kind": "counter", "tag": "deterministic",
//                        "value": 123},
//       "sched.open_files": {"kind": "gauge", "tag": "scheduling",
//                            "value": 0},
//       "sched.chunk_ns": {"kind": "histogram", "tag": "timing",
//                          "count": 9, "sum": 12345,
//                          "buckets": [0, ...32 entries...]}
//     },
//     "report": { ... }                 // optional driver-specific blob
//   }
//
// Periodic progress lines (the exporter's JSONL stream) reuse the same
// metrics object: {"t": <elapsed seconds>, "metrics": {...}}.
#pragma once

#include <string>
#include <string_view>

#include "obs/registry.hpp"

namespace cksum::obs {

inline constexpr std::string_view kManifestSchema = "cksum-metrics/1";

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s);

/// The `"metrics"` object: every metric keyed by name, in registration
/// order.
std::string metrics_json(const Snapshot& snap);

/// Run identity recorded alongside the metrics.
struct RunInfo {
  std::string tool;    ///< e.g. "cksumlab splice"
  std::string corpus;  ///< profile name, directory, or manifest path
  std::uint64_t seed = 0;
  unsigned threads = 0;
  double wall_seconds = 0.0;
  /// Optional extra top-level members, already rendered, without the
  /// surrounding braces — e.g. "\"report\": {...}".
  std::string extra_json;
};

/// One deterministic counter's growth between two snapshots.
struct CounterDelta {
  std::string name;
  std::uint64_t delta = 0;

  friend bool operator==(const CounterDelta&, const CounterDelta&) = default;
};

/// (name, after - before) for every deterministic-tagged counter that
/// grew between the two snapshots, in `after`'s registration order.
/// Counters absent from `before` contribute their full `after` value.
/// This is the delta-export primitive the distributed worker uses to
/// attribute one lease's contribution: the coordinator adds accepted
/// deltas into its own registry, so the aggregate manifest's
/// deterministic metrics match a single-process run exactly.
std::vector<CounterDelta> counter_deltas(const Snapshot& before,
                                         const Snapshot& after);

/// `git describe` captured at build time ("unknown" outside a git
/// checkout).
std::string git_describe();

std::string manifest_json(const RunInfo& info, const Snapshot& snap);

/// Write the manifest to `path`. Returns false (and leaves any partial
/// file behind) on I/O failure.
bool write_manifest(const std::string& path, const RunInfo& info,
                    const Snapshot& snap);

}  // namespace cksum::obs
