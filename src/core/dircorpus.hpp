// Run the paper's measurements over a real directory tree — the same
// experiment the authors ran over their departments' filesystems,
// pointed at whatever data the user has today.
//
// Files are enumerated deterministically (sorted paths), truncated by
// the caller's limits, and streamed through the same simulator and
// collectors the synthetic profiles use.
#pragma once

#include <filesystem>
#include <vector>

#include "core/cellstats.hpp"
#include "core/splice_sim.hpp"

namespace cksum::core {

struct DirLimits {
  std::size_t max_files = 10000;
  std::size_t max_total_bytes = 256 * 1024 * 1024;
  std::size_t max_file_bytes = 16 * 1024 * 1024;  ///< larger files truncated
};

/// Regular files under `root`, sorted by path, capped by limits.
/// Unreadable entries are skipped. Throws std::filesystem errors only
/// if `root` itself is inaccessible.
std::vector<std::filesystem::path> list_corpus_files(
    const std::filesystem::path& root, const DirLimits& limits = {});

/// Read (a prefix of) one file.
util::Bytes read_file_prefix(const std::filesystem::path& path,
                             std::size_t max_bytes);

/// Splice-simulate every file under `root` as a transfer.
SpliceStats run_directory(const SpliceRunConfig& cfg,
                          const std::filesystem::path& root,
                          const DirLimits& limits = {});

/// Collect cell/block checksum distributions over a directory tree.
CellStatsCollector collect_directory_stats(const std::filesystem::path& root,
                                           CellStatsConfig cfg = {},
                                           const DirLimits& limits = {});

}  // namespace cksum::core
