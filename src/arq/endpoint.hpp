// ARQ endpoint state machines: stop-and-wait, go-back-N, and
// selective-repeat sender/receiver pairs.
//
// Endpoints are pure state machines over a virtual clock: they never
// sleep, never touch a socket, and draw all randomness (backoff
// jitter) from a seeded Rng — so a (config, payloads, link seed)
// triple replays bit-for-bit, which is what lets the arq soak publish
// reproducer lines. The simulator (sim.hpp) owns the clock and the
// faulty links and shuttles wire frames between the two ends.
//
// Reliability model (docs/ARQ.md):
//  * The sender keeps a window of in-flight frames, each with its own
//    retransmission deadline, retry count, and exponential backoff
//    with seeded jitter.
//  * A frame whose retry budget is exhausted is ABANDONED, never
//    retried again: the sender counts arq.gave_up, advances its base
//    past it, and stamps the new base into every subsequent DATA
//    frame so the receiver can skip the hole instead of waiting
//    forever. Termination is therefore unconditional — every offered
//    payload ends delivered or abandoned.
//  * Sequence numbers live in a u16 serial space (frame.hpp's
//    seq_before); the window is capped well under 2^15 so comparisons
//    stay sound across wraparound.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "arq/frame.hpp"
#include "util/rng.hpp"

namespace cksum::arq {

enum class Policy : std::uint8_t {
  kStopAndWait = 0,   ///< window 1, cumulative ACK
  kGoBackN = 1,       ///< window W, cumulative ACK, wave retransmit
  kSelectiveRepeat = 2,  ///< window W, per-frame ACK + receiver buffer
};

std::string_view name(Policy p) noexcept;         ///< "go-back-N"
std::string_view manifest_key(Policy p) noexcept; ///< "go_back_n"

/// Hard cap on the window so u16 serial arithmetic stays sound with
/// ample margin (sender span + receiver skip < 2^15).
inline constexpr std::size_t kMaxWindow = 1024;

struct ArqConfig {
  Policy policy = Policy::kGoBackN;
  alg::Algorithm checksum = alg::Algorithm::kCrc32;
  std::size_t window = 8;        ///< forced to 1 for stop-and-wait
  std::uint64_t rto = 64;        ///< base retransmit timeout, ticks
  std::uint64_t rto_max = 2048;  ///< backoff ceiling, ticks
  unsigned retry_budget = 8;     ///< retransmissions before abandoning
  std::uint64_t jitter_seed = 1; ///< seeds the backoff jitter stream

  /// The effective window after policy clamping.
  std::size_t effective_window() const noexcept {
    const std::size_t w = window == 0 ? 1 : window;
    if (policy == Policy::kStopAndWait) return 1;
    return w > kMaxWindow ? kMaxWindow : w;
  }
};

struct SenderStats {
  std::uint64_t data_sent = 0;      ///< first transmissions
  std::uint64_t retransmits = 0;    ///< timer- or dup-ACK-driven resends
  std::uint64_t timeouts = 0;       ///< timer expiry events
  std::uint64_t fast_retransmits = 0;  ///< 3-dup-ACK triggered (GBN/SR)
  std::uint64_t acks_received = 0;  ///< ACK frames accepted by the check
  std::uint64_t dup_acks = 0;       ///< ACKs carrying no new progress
  std::uint64_t stale_acks = 0;     ///< ACKs outside the window (ignored)
  std::uint64_t ack_rejects = 0;    ///< ACK frames the checksum rejected
  std::uint64_t ack_malformed = 0;  ///< undecodable ACK deliveries
  std::uint64_t gave_up = 0;        ///< frames abandoned (budget spent)
};

/// The sending half. Drive with poll() (frames to put on the wire
/// now), on_frame() (arriving ACK deliveries), next_deadline().
class Sender {
 public:
  Sender(const ArqConfig& cfg, std::vector<util::Bytes> payloads);

  /// True once every payload is acknowledged or abandoned.
  bool done() const noexcept { return base_ == payloads_.size(); }

  /// Wire frames to transmit at `now`: expired-timer retransmissions
  /// first (oldest sequence first), then new transmissions while the
  /// window has room. Never returns the same first-transmission twice.
  std::vector<util::Bytes> poll(std::uint64_t now);

  /// Earliest retransmission deadline among in-flight frames, or
  /// UINT64_MAX when nothing is in flight.
  std::uint64_t next_deadline() const noexcept;

  /// Process one delivered (possibly corrupt) ACK frame.
  void on_frame(util::ByteView wire);

  const SenderStats& stats() const noexcept { return stats_; }

  /// Absolute indices of abandoned payloads, in abandonment order.
  const std::vector<std::size_t>& abandoned() const noexcept {
    return abandoned_;
  }
  /// Virtual time of each payload's first transmission (UINT64_MAX if
  /// never sent). Indexed by absolute payload index.
  const std::vector<std::uint64_t>& first_sent() const noexcept {
    return first_sent_;
  }

 private:
  enum class SlotState : std::uint8_t { kUnsent, kInFlight, kAcked,
                                        kAbandoned };
  struct Slot {
    SlotState state = SlotState::kUnsent;
    std::uint64_t deadline = 0;
    unsigned retries = 0;  ///< retransmissions so far
  };

  std::uint64_t backoff(unsigned retries) noexcept;
  util::Bytes encode_data(std::size_t index) const;
  void advance_base();
  void abandon(std::size_t index);
  /// Retransmit the in-flight window from `from` (GBN wave) or just
  /// `from` (SR/stop-and-wait single), appending wire frames to `out`.
  void retransmit(std::size_t from, bool whole_window, std::uint64_t now,
                  std::vector<util::Bytes>* out);

  ArqConfig cfg_;
  std::vector<util::Bytes> payloads_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> first_sent_;
  std::vector<std::size_t> abandoned_;
  std::size_t base_ = 0;       ///< lowest index not acked/abandoned
  std::size_t next_send_ = 0;  ///< lowest index never transmitted
  unsigned dup_ack_run_ = 0;   ///< consecutive no-progress ACKs
  bool fast_retransmit_pending_ = false;
  util::Rng jitter_;
  SenderStats stats_;
};

/// Per-delivery outcomes. Every delivery the link hands over lands in
/// exactly one of {malformed, check_rejects, duplicates, out_of_window,
/// discarded, accepted, buffered} — the soak asserts that accounting
/// identity — while delivered/skipped/acks_sent count consequences.
struct ReceiverStats {
  std::uint64_t deliveries_seen = 0;  ///< link deliveries examined
  std::uint64_t malformed = 0;        ///< undecodable deliveries
  std::uint64_t check_rejects = 0;    ///< checksum caught the corruption
  std::uint64_t duplicates = 0;       ///< already delivered/buffered seq
  std::uint64_t out_of_window = 0;    ///< impossible seq (corrupt, dropped)
  std::uint64_t discarded = 0;        ///< SAW/GBN in-window out-of-order
  std::uint64_t accepted = 0;         ///< in-order DATA taken directly
  std::uint64_t buffered = 0;         ///< SR out-of-order holds
  std::uint64_t delivered = 0;        ///< payloads surfaced in order
  std::uint64_t skipped = 0;          ///< holes skipped via the base field
  std::uint64_t acks_sent = 0;
};

/// The receiving half. Every accepted or duplicate DATA frame
/// produces exactly one ACK; rejected deliveries produce none (the
/// sender's timer recovers).
class Receiver {
 public:
  explicit Receiver(const ArqConfig& cfg) : cfg_(cfg) {}

  struct Delivery {
    std::uint16_t seq = 0;
    util::Bytes payload;
  };

  /// Process one delivered (possibly corrupt) DATA frame; returns the
  /// ACK wire frames to send back (0 or 1).
  std::vector<util::Bytes> on_frame(util::ByteView wire);

  /// Connection teardown: the sender's final base, handed over
  /// reliably by the simulator once every payload is acked or
  /// abandoned. Surfaces frames still buffered behind an abandoned
  /// hole — a selectively-ACKed frame whose base predecessor was
  /// abandoned on the sender's *last* transmission would otherwise
  /// stay buffered forever (no later DATA frame carries the base
  /// stamp that triggers the skip) and read as residual loss.
  void finish(std::uint16_t final_base) { skip_to(final_base); }

  /// In-order delivered stream, appended to as frames arrive. The
  /// simulator drains this after each delivery event.
  const std::vector<Delivery>& deliveries() const noexcept {
    return deliveries_;
  }

  std::uint16_t next_expected() const noexcept { return next_expected_; }
  const ReceiverStats& stats() const noexcept { return stats_; }

 private:
  util::Bytes make_ack(std::uint16_t sel);
  void skip_to(std::uint16_t base);

  ArqConfig cfg_;
  std::uint16_t next_expected_ = 0;
  std::map<std::uint16_t, util::Bytes> buffer_;  ///< SR out-of-order
  std::vector<Delivery> deliveries_;
  ReceiverStats stats_;
};

}  // namespace cksum::arq
