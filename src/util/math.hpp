// Small exact-combinatorics helpers used by the splice enumeration and
// by the paper's analytic corrections (e.g. the §5.4 cell-colouring
// factor C(c-2, k)/C(c-1, k)).
#pragma once

#include <cstdint>

namespace cksum::util {

/// Exact binomial coefficient; saturates arithmetic is not needed for
/// the small n (< 64) used here.
constexpr std::uint64_t binomial(std::uint64_t n, std::uint64_t k) noexcept {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

}  // namespace cksum::util
