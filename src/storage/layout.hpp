// Commit-block layout: how a journal commit record is sealed with a
// checksum and verified on read-back (docs/STORAGE.md).
//
// A sealed block is
//
//   [ check field : 8 bytes, big-endian ][ payload : block_size - 8 ]
//
// with the check computed over *context ‖ payload*, where the 16-byte
// context is the block's logical address and write generation (each a
// big-endian u64). The context is NOT stored in the block: the reader
// supplies the (address, generation) it expects, the way ext4's
// journal replays know which transaction a commit block must belong
// to. That choice is what lets the checksum see storage-level faults
// the payload bytes alone cannot witness:
//
//   * a misdirected write carries a check bound to the address it was
//     *meant* for, so verification at the landing address fails;
//   * a lost (or torn-away) write leaves the previous generation's
//     check on disk, so verification against the expected generation
//     fails.
//
// The check field lives at the *front* of the block deliberately. A
// torn write lands a sector-aligned prefix of the new block over the
// old one, so the surviving header always carries the NEW generation's
// check — detection of a torn write therefore reduces exactly to the
// paper's splice question: does checksum(new payload) differ from
// checksum(new prefix ‖ old suffix)? A trailer-resident check would
// make every torn write a trivial generation mismatch and hide the
// per-algorithm differences this subsystem exists to measure.
//
// The per-algorithm check values are computed from the kernel
// registry's dispatched entry points via each algorithm's partial-sum
// combine, so the storage column exercises the same combine contracts
// the splice evaluator depends on.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace cksum::storage {

/// The checksum matrix raced over commit blocks. Storage keeps its own
/// enum (rather than extending alg::Algorithm, which transport-layer
/// switches exhaust) so the block column can include Adler-32 and the
/// Koopman large-block family.
enum class Algo {
  kCrc32,          ///< AAL5/zlib CRC-32
  kInternet,       ///< 16-bit ones-complement sum (TCP/IP/UDP)
  kFletcher255,    ///< Fletcher, ones-complement bytes (mod 255)
  kFletcher256,    ///< Fletcher, twos-complement bytes (mod 256)
  kAdler32,        ///< zlib Adler-32 (mod 65521, byte grain)
  kKoopmanDual,    ///< Koopman dual sum, 64-bit blocks mod 65521
  kKoopmanSingle,  ///< Koopman single sum, 64-bit blocks mod 2^32-5
};

inline constexpr Algo kAllAlgos[] = {
    Algo::kCrc32,       Algo::kInternet,     Algo::kFletcher255,
    Algo::kFletcher256, Algo::kAdler32,      Algo::kKoopmanDual,
    Algo::kKoopmanSingle,
};

constexpr std::string_view name(Algo a) noexcept {
  switch (a) {
    case Algo::kCrc32: return "CRC-32";
    case Algo::kInternet: return "TCP";
    case Algo::kFletcher255: return "F-255";
    case Algo::kFletcher256: return "F-256";
    case Algo::kAdler32: return "Adler-32";
    case Algo::kKoopmanDual: return "K-Dual";
    case Algo::kKoopmanSingle: return "K-Single";
  }
  return "?";
}

constexpr std::string_view manifest_key(Algo a) noexcept {
  switch (a) {
    case Algo::kCrc32: return "crc32";
    case Algo::kInternet: return "internet";
    case Algo::kFletcher255: return "fletcher255";
    case Algo::kFletcher256: return "fletcher256";
    case Algo::kAdler32: return "adler32";
    case Algo::kKoopmanDual: return "koopman_dual";
    case Algo::kKoopmanSingle: return "koopman_single";
  }
  return "?";
}

/// Width of the check value in bits (uniform-data miss rate ≈ 2^-bits;
/// the 16-bit sums are of course far worse than that on real data —
/// that's the point of the matrix).
constexpr unsigned check_bits(Algo a) noexcept {
  switch (a) {
    case Algo::kCrc32:
    case Algo::kAdler32:
    case Algo::kKoopmanDual:
    case Algo::kKoopmanSingle:
      return 32;
    case Algo::kInternet:
    case Algo::kFletcher255:
    case Algo::kFletcher256:
      return 16;
  }
  return 0;
}

/// Torn writes land sector-aligned prefixes.
inline constexpr std::size_t kSectorSize = 512;

/// Bytes of block header holding the big-endian check value.
inline constexpr std::size_t kCheckFieldSize = 8;

/// The (address, generation) a reader expects of a block — supplied at
/// verify time, covered by the check, never stored in the block.
struct WriteContext {
  std::uint64_t address = 0;
  std::uint64_t generation = 0;
};

/// Check value over context ‖ payload (only the low check_bits(a) bits
/// are ever non-zero).
std::uint64_t compute_check(Algo a, const WriteContext& ctx,
                            util::ByteView payload);

/// Build a sealed block of exactly `block_size` bytes:
/// header(check) ‖ payload. Requires payload.size() == block_size -
/// kCheckFieldSize.
util::Bytes seal_block(Algo a, const WriteContext& ctx,
                       util::ByteView payload, std::size_t block_size);

/// The payload portion of a sealed block.
inline util::ByteView block_payload(util::ByteView block) noexcept {
  return block.subspan(kCheckFieldSize);
}

/// Recompute the check over (ctx, payload) and compare with the stored
/// header. A block sealed with the same (algo, ctx, payload) always
/// verifies.
bool verify_block(Algo a, const WriteContext& ctx, util::ByteView block);

}  // namespace cksum::storage
