// Framed, integrity-checked message transport for the distributed
// splice service (docs/DIST.md).
//
// Every frame is
//
//   magic "CKDF" | u8 version | u8 type | u16 reserved | u32 seq |
//   u32 payload_len | payload bytes | u32 CRC-32
//
// with all integers little-endian and the trailing CRC-32 computed —
// through the checksum kernel registry, the same code path the paper's
// experiment studies — over header + payload. A frame whose CRC fails
// is rejected and recovered by go-back-N retransmission: the receiver
// NACKs the sequence number it expects next and the sender replays
// every buffered frame from there, so a corrupted result can never be
// merged into the run. Unrecoverable corruption (a mangled header, a
// replay gap past the resend window, or an exhausted NACK budget)
// aborts the connection instead, degrading to the coordinator's
// lease-reassignment path.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string_view>

#include "util/bytes.hpp"

namespace cksum::dist {

/// Protocol frame types (payload encodings in protocol.hpp).
enum class MsgType : std::uint8_t {
  kHello = 1,        ///< worker -> coordinator: identity
  kConfig = 2,       ///< coordinator -> worker: corpus + run config
  kLeaseGrant = 3,   ///< coordinator -> worker: shard lease
  kLeaseResult = 4,  ///< worker -> coordinator: stats + metric deltas
  kHeartbeat = 5,    ///< worker -> coordinator: liveness + progress
  kIdle = 6,         ///< coordinator -> worker: no shard available yet
  kShutdown = 7,     ///< coordinator -> worker: run complete, finish up
  kGoodbye = 8,      ///< worker -> coordinator: clean exit (+ manifest)
  kNack = 9,         ///< either: CRC reject, resend from carried seq
  kJobConfig = 10,   ///< coordinator -> worker: a named job's config
};

std::string_view name(MsgType t) noexcept;

inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderLen = 16;
inline constexpr std::size_t kFrameTrailerLen = 4;  ///< the CRC-32
/// Largest accepted payload; a bigger length field means the header is
/// corrupt (LeaseResult, the largest real frame, is a few KiB).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 24;

struct Frame {
  MsgType type = MsgType::kHello;
  std::uint32_t seq = 0;
  util::Bytes payload;
};

/// Serial-number order (RFC 1982 style) for the u32 frame sequence
/// space: true when `a` precedes `b`, correct across 2^32 wraparound
/// as long as the two are within 2^31 of each other — the resend
/// window is 16 frames, so that always holds on a live connection.
constexpr bool seq_before(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}

/// Encode one complete wire frame.
util::Bytes encode_frame(MsgType type, std::uint32_t seq,
                         util::ByteView payload);

/// Header-only decode (first kFrameHeaderLen bytes). Returns false on
/// bad magic/version/oversize-length — unrecoverable, abort the
/// connection. `payload_len` is the number of bytes that follow the
/// header before the 4 CRC bytes.
bool decode_frame_header(const std::uint8_t* hdr, MsgType* type,
                         std::uint32_t* seq, std::uint32_t* payload_len);

/// CRC check over header + payload against the trailing stored CRC.
bool frame_crc_ok(util::ByteView header_and_payload, std::uint32_t stored);

/// Reliable framed channel over a connected stream socket.
///
/// send() is thread-safe (the worker's heartbeat thread shares the
/// socket with its main loop); recv() must stay on a single thread.
/// recv() transparently handles the NACK/replay protocol: it NACKs
/// payload-corrupted frames, drops replay duplicates and
/// post-corruption frames until the replay catches up, and services
/// incoming NACKs by replaying from the send buffer — callers only
/// ever see intact, in-order frames. Frame/byte/reject counts are
/// recorded in the dist.* metric family.
class FrameChannel {
 public:
  /// Takes ownership of the connected socket fd.
  explicit FrameChannel(int fd);
  ~FrameChannel();
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  int fd() const noexcept { return fd_; }
  bool closed() const noexcept { return fd_ < 0; }
  void close() noexcept;

  /// Frame and send one message. Returns false once the connection is
  /// unusable (peer gone, or a prior unrecoverable error).
  bool send(MsgType type, util::ByteView payload);

  /// Next in-order frame. `timeout_ms` bounds the wait for a complete
  /// frame (-1 = block indefinitely). Returns false on EOF, timeout,
  /// or unrecoverable protocol error — the caller treats all three as
  /// a dead peer.
  bool recv(Frame* out, int timeout_ms = -1);

  /// Test hook: XOR a byte of the next sent frame's payload after the
  /// CRC is computed, so the receiver sees a checksum failure exactly
  /// as link corruption would produce one.
  void corrupt_next_send() noexcept { corrupt_next_ = true; }

  /// Test hook: start both ends' sequence counters at an arbitrary
  /// point (both sides of a connection must agree). Lets the
  /// wraparound regression test drive seq across 2^32 without sending
  /// four billion frames. Call before any traffic.
  void preset_sequences_for_test(std::uint32_t send_seq,
                                 std::uint32_t recv_next) noexcept {
    std::lock_guard<std::mutex> lk(send_mu_);
    send_seq_ = send_seq;
    recv_next_ = recv_next;
  }

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t crc_rejects = 0;  ///< payload corruption detected
    std::uint64_t resends = 0;      ///< frames replayed after a NACK
  };
  Stats stats() const;

 private:
  bool send_locked(MsgType type, util::ByteView payload);
  bool write_all(const std::uint8_t* data, std::size_t len);
  bool read_exact(std::uint8_t* data, std::size_t len, int timeout_ms);
  bool send_nack();
  bool handle_nack(std::uint32_t resume_seq);

  /// Replayable recent frames (seq, wire bytes). NACK recovery can
  /// only reach back this far; older gaps abort the connection.
  static constexpr std::size_t kResendWindow = 16;
  /// Total NACK/replay events tolerated per connection before giving
  /// up (guards against a corruption livelock).
  static constexpr unsigned kNackBudget = 32;

  int fd_ = -1;
  mutable std::mutex send_mu_;
  std::uint32_t send_seq_ = 0;  ///< seq assigned to the next sent frame
  std::deque<std::pair<std::uint32_t, util::Bytes>> sent_;
  std::uint32_t recv_next_ = 0;  ///< seq expected from the peer
  unsigned nacks_left_ = kNackBudget;
  bool corrupt_next_ = false;
  bool broken_ = false;
  Stats stats_;
};

}  // namespace cksum::dist
