#include "arq/frame.hpp"

#include "checksum/kernels/kernel.hpp"

namespace cksum::arq {
namespace {

void put_le16(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_le32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint16_t get_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool valid_alg(std::uint8_t a) {
  switch (static_cast<alg::Algorithm>(a)) {
    case alg::Algorithm::kInternet:
    case alg::Algorithm::kFletcher255:
    case alg::Algorithm::kFletcher256:
    case alg::Algorithm::kCrc32:
      return true;
  }
  return false;
}

}  // namespace

std::uint32_t frame_check(alg::Algorithm a, util::ByteView data) noexcept {
  switch (a) {
    case alg::Algorithm::kInternet:
      return alg::kern::internet_checksum(data);
    case alg::Algorithm::kFletcher255: {
      const alg::FletcherPair p =
          alg::kern::fletcher_block(data, alg::FletcherMod::kOnes255);
      return static_cast<std::uint32_t>(p.a) << 8 | p.b;
    }
    case alg::Algorithm::kFletcher256: {
      const alg::FletcherPair p =
          alg::kern::fletcher_block(data, alg::FletcherMod::kTwos256);
      return static_cast<std::uint32_t>(p.a) << 8 | p.b;
    }
    case alg::Algorithm::kCrc32:
      return alg::kern::crc32(data);
  }
  return 0;
}

util::Bytes encode_arq_frame(const ArqFrame& f) {
  util::Bytes out;
  out.reserve(kFrameHeaderLen + f.payload.size() + kFrameTrailerLen);
  out.push_back(static_cast<std::uint8_t>(f.type));
  out.push_back(static_cast<std::uint8_t>(f.check));
  put_le16(out, f.seq);
  put_le16(out, f.aux);
  put_le16(out, static_cast<std::uint16_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  const std::uint32_t check =
      frame_check(f.check, util::ByteView(out.data(), out.size()));
  put_le32(out, check);
  return out;
}

std::optional<ArqFrame> decode_arq_frame(util::ByteView wire,
                                         DecodeStatus* status) {
  const auto fail = [&](DecodeStatus s) -> std::optional<ArqFrame> {
    if (status != nullptr) *status = s;
    return std::nullopt;
  };
  if (wire.size() < kFrameHeaderLen + kFrameTrailerLen)
    return fail(DecodeStatus::kMalformed);
  const std::uint8_t type = wire[0];
  if (type != static_cast<std::uint8_t>(FrameType::kData) &&
      type != static_cast<std::uint8_t>(FrameType::kAck))
    return fail(DecodeStatus::kMalformed);
  if (!valid_alg(wire[1])) return fail(DecodeStatus::kMalformed);
  const std::uint16_t payload_len = get_le16(wire.data() + 6);
  // The length field is covered by the checksum, but a corrupted
  // length changes where the trailer is read from, so framing has to
  // be validated first: the wire buffer must be exactly one frame.
  if (payload_len > kMaxPayload ||
      wire.size() != kFrameHeaderLen + payload_len + kFrameTrailerLen)
    return fail(DecodeStatus::kMalformed);
  const std::uint32_t stored = get_le32(wire.data() + kFrameHeaderLen +
                                        payload_len);
  const alg::Algorithm a = static_cast<alg::Algorithm>(wire[1]);
  if (frame_check(a, wire.subspan(0, kFrameHeaderLen + payload_len)) != stored)
    return fail(DecodeStatus::kCheckFailed);
  ArqFrame f;
  f.type = static_cast<FrameType>(type);
  f.check = a;
  f.seq = get_le16(wire.data() + 2);
  f.aux = get_le16(wire.data() + 4);
  f.payload.assign(wire.begin() + kFrameHeaderLen,
                   wire.begin() + kFrameHeaderLen + payload_len);
  if (status != nullptr) *status = DecodeStatus::kOk;
  return f;
}

}  // namespace cksum::arq
