// Table 3: CRC and TCP Checksum Results — 256-byte packets on the two
// Stanford filesystems.
#include "table_common.hpp"

int main() {
  cksum::bench::print_crc_tcp_table(
      "Table 3: CRC and TCP checksum results (Stanford systems)",
      cksum::fsgen::stanford_profiles());
  return 0;
}
