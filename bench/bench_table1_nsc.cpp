// Table 1: CRC and TCP Checksum Results — 256-byte packets on the
// nine Network Systems Corporation filesystems.
#include "table_common.hpp"

int main() {
  cksum::bench::print_crc_tcp_table(
      "Table 1: CRC and TCP checksum results (NSC systems)",
      cksum::fsgen::nsc_profiles());
  return 0;
}
