// Deterministic pseudo-random number generation for reproducible corpora.
//
// Every experiment in this repository is seeded; the same seed always
// produces the same synthetic filesystem, packet stream, and table. We
// use xoshiro256** (Blackman & Vigna) seeded via SplitMix64, both
// implemented here so the corpus does not depend on the standard
// library's unspecified engine implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cksum::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Also useful directly as a cheap stateless mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Fill a buffer with uniform bytes.
  void fill(std::span<std::uint8_t> out) noexcept;

  /// Geometric-ish run length: 1 + Geometric(p) capped at `cap`.
  /// Used by generators that emit runs of repeated bytes.
  std::size_t run_length(double p_continue, std::size_t cap) noexcept;

  /// Pick an index from a discrete weight table (weights need not sum
  /// to anything in particular; all-zero weights pick index 0).
  std::size_t pick_weighted(std::span<const double> weights) noexcept;

  /// UniformRandomBitGenerator interface (for std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Derive an independent child generator (stable: depends only on
  /// the parent seed and the stream id, not on how much the parent has
  /// been consumed).
  Rng child(std::uint64_t stream_id) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_;
};

}  // namespace cksum::util
