// Receiver-side syntactic header checks — the paper's "Caught by
// Header" gate. A splice only gets to exercise the CRC or checksum if
// these all pass:
//  1. the reassembled PDU's first bytes parse as an IPv4 + TCP header
//     of the expected shape;
//  2. the IP total length is consistent with the AAL5 length carried
//     in the last cell;
//  3. the IP header checksum verifies (when the simulation fills it).
#pragma once

#include <string_view>

#include "util/bytes.hpp"

namespace cksum::net {

enum class HeaderCheck {
  kOk,
  kTooShort,
  kBadVersion,
  kBadIhl,
  kLengthMismatch,   // IP total_length != AAL5 length
  kBadProtocol,
  kBadIpChecksum,
  kBadTcpOffset,
  kBadTcpReserved,
};

constexpr std::string_view to_string(HeaderCheck c) noexcept {
  switch (c) {
    case HeaderCheck::kOk: return "ok";
    case HeaderCheck::kTooShort: return "too-short";
    case HeaderCheck::kBadVersion: return "bad-version";
    case HeaderCheck::kBadIhl: return "bad-ihl";
    case HeaderCheck::kLengthMismatch: return "length-mismatch";
    case HeaderCheck::kBadProtocol: return "bad-protocol";
    case HeaderCheck::kBadIpChecksum: return "bad-ip-checksum";
    case HeaderCheck::kBadTcpOffset: return "bad-tcp-offset";
    case HeaderCheck::kBadTcpReserved: return "bad-tcp-reserved";
  }
  return "?";
}

/// Run the header checks over the first bytes of a reassembled PDU.
/// `aal5_length` is the length field from the AAL5 trailer;
/// `require_ip_checksum` matches PacketConfig::fill_ip_header (the
/// SIGCOMM '95 simulator had no IP checksum to check — §6.2).
/// `legacy95` additionally drops the version/ihl checks, emulating
/// that simulator's minimal syntactic checks.
HeaderCheck check_headers(util::ByteView pdu_payload_prefix,
                          std::size_t aal5_length, bool require_ip_checksum,
                          bool legacy95 = false) noexcept;

}  // namespace cksum::net
