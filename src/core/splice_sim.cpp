#include "core/splice_sim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "atm/splice.hpp"
#include "checksum/kernels/kernel.hpp"
#include "compress/lzw.hpp"
#include "fsgen/corpus_store.hpp"
#include "net/validate.hpp"
#include "obs/registry.hpp"
#include "obs/timer.hpp"

namespace cksum::core {

namespace {

// ---------------------------------------------------------------------------
// Telemetry. Counters are never touched per splice: evaluate_pair
// accumulates into its SpliceStats as before and a flush object adds
// the per-pair deltas to the registry on the way out, so the DFS inner
// loop costs at most one plain increment (the node count) and the
// registry sees a handful of relaxed adds per pair. All splice.*
// counters are additive and thread-count invariant (Tag
// kDeterministic); sched.* depends on worker interleaving.
// ---------------------------------------------------------------------------

struct SpliceMetrics {
  obs::Counter files, packets, pairs, splices, fast, slow, caught_by_header,
      identical, remaining, missed_crc, missed_transport, missed_koopman_dual,
      missed_koopman_single, dfs_nodes;
  obs::Counter sched_files, sched_chunks, sched_steals;
  obs::Gauge sched_open_files;
  obs::Histogram packetize_ns, chunk_ns;
};

const SpliceMetrics& smx() {
  static const SpliceMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    SpliceMetrics v;
    v.files = r.counter("splice.files");
    v.packets = r.counter("splice.packets");
    v.pairs = r.counter("splice.pairs");
    v.splices = r.counter("splice.total");
    v.fast = r.counter("splice.fast_path");
    v.slow = r.counter("splice.slow_path");
    v.caught_by_header = r.counter("splice.caught_by_header");
    v.identical = r.counter("splice.identical");
    v.remaining = r.counter("splice.remaining");
    v.missed_crc = r.counter("splice.missed_crc");
    v.missed_transport = r.counter("splice.missed_transport");
    v.missed_koopman_dual = r.counter("splice.missed_koopman_dual");
    v.missed_koopman_single = r.counter("splice.missed_koopman_single");
    v.dfs_nodes = r.counter("splice.dfs_nodes");
    v.sched_files = r.counter("sched.files_claimed", obs::Tag::kScheduling);
    v.sched_chunks = r.counter("sched.chunks_claimed", obs::Tag::kScheduling);
    v.sched_steals = r.counter("sched.chunks_stolen", obs::Tag::kScheduling);
    v.sched_open_files = r.gauge("sched.open_files", obs::Tag::kScheduling);
    v.packetize_ns = r.histogram("sched.packetize_ns", obs::Tag::kTiming);
    v.chunk_ns = r.histogram("sched.chunk_ns", obs::Tag::kTiming);
    return v;
  }();
  return m;
}

#ifndef OBS_DISABLE

/// Flushes one evaluate_pair call's SpliceStats deltas (the stats
/// object is shared across many pairs) into the registry on scope
/// exit, covering every early return.
class SpliceObsFlush {
 public:
  explicit SpliceObsFlush(SpliceStats& st)
      : st_(st),
        pairs_(st.pairs),
        total_(st.total),
        fast_(st.fast_path),
        slow_(st.slow_path),
        caught_(st.caught_by_header),
        identical_(st.identical),
        remaining_(st.remaining),
        missed_crc_(st.missed_crc),
        missed_transport_(st.missed_transport),
        missed_kd_(st.missed_koopman_dual),
        missed_ks_(st.missed_koopman_single) {}
  SpliceObsFlush(const SpliceObsFlush&) = delete;
  SpliceObsFlush& operator=(const SpliceObsFlush&) = delete;
  ~SpliceObsFlush() {
    const SpliceMetrics& m = smx();
    m.pairs.add(st_.pairs - pairs_);
    m.splices.add(st_.total - total_);
    m.fast.add(st_.fast_path - fast_);
    m.slow.add(st_.slow_path - slow_);
    m.caught_by_header.add(st_.caught_by_header - caught_);
    m.identical.add(st_.identical - identical_);
    m.remaining.add(st_.remaining - remaining_);
    m.missed_crc.add(st_.missed_crc - missed_crc_);
    m.missed_transport.add(st_.missed_transport - missed_transport_);
    m.missed_koopman_dual.add(st_.missed_koopman_dual - missed_kd_);
    m.missed_koopman_single.add(st_.missed_koopman_single - missed_ks_);
    m.dfs_nodes.add(dfs_nodes);
  }

  std::uint64_t dfs_nodes = 0;  ///< folds performed by the DFS walk

 private:
  // Only the flushed scalars are captured — copying the whole
  // SpliceStats would drag its by-k arrays through every pair.
  SpliceStats& st_;
  const std::uint64_t pairs_, total_, fast_, slow_, caught_, identical_,
      remaining_, missed_crc_, missed_transport_, missed_kd_, missed_ks_;
};

#else

class SpliceObsFlush {
 public:
  explicit SpliceObsFlush(SpliceStats&) {}
  std::uint64_t dfs_nodes = 0;
};

#endif

const alg::CrcCombiner& comb48() {
  static const alg::CrcCombiner c(atm::kCellPayload);
  return c;
}
const alg::CrcCombiner& comb44() {
  static const alg::CrcCombiner c(44);
  return c;
}

/// Zeros-operator advancing a finalised CRC past everything that
/// follows a non-EOM cell at distance `d` cell slots from the last
/// non-EOM position: d full cells plus the EOM cell's 44 CRC-covered
/// bytes. One table per distance, built once per process — a splice
/// CRC is then the XOR of per-cell advanced CRCs (the operator is
/// linear), independent of which other cells the splice keeps.
const alg::CrcCombiner& suffix_comb(std::size_t d) {
  static const std::vector<alg::CrcCombiner> cache = [] {
    std::vector<alg::CrcCombiner> v;
    v.reserve(atm::kMaxSpliceCells);
    for (std::size_t i = 0; i < atm::kMaxSpliceCells; ++i)
      v.emplace_back(44 + i * atm::kCellPayload);
    return v;
  }();
  return cache[d];
}

struct PairContext {
  const net::PacketConfig* cfg = nullptr;
  const SimPacket* p1 = nullptr;
  const SimPacket* p2 = nullptr;
  bool fletcher = false;  ///< transport is a Fletcher sum
  bool mod255 = false;
  bool header_placement = true;
  /// Per p1 non-EOM cell: would these 48 bytes pass the header checks
  /// as the first cell of a splice of p2's AAL5 length?
  const std::uint8_t* hdr_ok = nullptr;
};

/// hdr_ok for the pair: reuse p1's precomputed self-check when the
/// lengths (and check flavour) match, else compute into `scratch`.
const std::uint8_t* pair_hdr_ok(const net::PacketConfig& cfg,
                                const SimPacket& p1, const SimPacket& p2,
                                std::vector<std::uint8_t>& scratch) {
  const bool require_ipck = cfg.fill_ip_header && !cfg.legacy95_headers;
  const std::size_t n1 = p1.pdu.num_cells();
  if (p1.total_len == p2.total_len && p1.hdr_ok_self.size() == n1 - 1 &&
      p1.hdr_require_ipck == require_ipck &&
      p1.hdr_legacy95 == cfg.legacy95_headers) {
    return p1.hdr_ok_self.data();
  }
  scratch.resize(n1 - 1);
  for (std::size_t i = 0; i + 1 < n1; ++i) {
    scratch[i] = net::check_headers(p1.pdu.cell(i), p2.total_len, require_ipck,
                                    cfg.legacy95_headers) == net::HeaderCheck::kOk
                     ? 1
                     : 0;
  }
  return scratch.data();
}

void classify(const PairContext& ctx, unsigned k1, bool hdr2, bool identical,
              bool transport_pass, bool crc_pass, bool kd_pass, bool ks_pass,
              SpliceStats& st) {
  if (identical) {
    ++st.identical;
    if (transport_pass) {
      ++st.pass_identical;
    } else {
      ++st.fail_identical;
    }
    return;
  }
  ++st.remaining;
  if (transport_pass) {
    ++st.missed_transport;
    ++st.pass_changed;
  } else {
    ++st.fail_changed;
  }
  if (crc_pass) ++st.missed_crc;
  if (crc_pass && transport_pass) ++st.missed_both;
  if (kd_pass) ++st.missed_koopman_dual;
  if (ks_pass) ++st.missed_koopman_single;

  const std::size_t n2 = ctx.p2->cells.size();
  const std::size_t k = std::min<std::size_t>(n2 - k1, kMaxTrackedK - 1);
  ++st.remaining_by_k[k];
  if (transport_pass) ++st.missed_by_k[k];

  if (hdr2) {  // packet 2's header cell is in the splice
    ++st.remaining_with_hdr2;
    if (transport_pass) ++st.missed_with_hdr2;
  }
}

void eval_slow(const PairContext& ctx, const atm::SpliceSpec& s,
               SpliceStats& st) {
  ++st.slow_path;
  const SpliceOutcome o =
      evaluate_splice_reference(*ctx.cfg, *ctx.p1, *ctx.p2, s);
  if (o.caught_by_header) {
    ++st.caught_by_header;
    return;
  }
  classify(ctx, s.k1, (s.mask2 & 1u) != 0, o.identical, o.transport_pass,
           o.crc_pass, o.koopman_dual_pass, o.koopman_single_pass, st);
}

// ---------------------------------------------------------------------------
// Prefix-sharing DFS evaluator.
//
// Every splice that survives the AAL5 length check has exactly n2
// cells, so a kept cell's contribution to each check value depends
// only on its distance d from the last non-EOM position:
//
//   Internet   position-independent cell sum
//   Fletcher   a, and b + (48*d + eom_len) * a   (unrolling the
//              classic B += |block| * A recurrence over the suffix)
//   CRC-32     suffix_comb(d).advance(cell crc)  (advance past the d
//              trailing cells + 44 EOM bytes; XOR-combines because
//              the zeros-operator is linear over GF(2))
//
// so check values are plain sums/XORs of per-(cell, distance) terms
// plus pair constants, and splices sharing a prefix share its fold.
//
// The walk is split in two phases around the k1 + k2 = n2 - 1
// constraint. Phase 2 enumerates p2's kept subsets once, anchored to
// the END (the largest kept index sits at position e2-1), which makes
// a subset's fold independent of k1 — one pool of 2^e2 - 1 combos,
// bucketed by size, serves every phase-1 branch. Phase 1 walks p1's
// kept subsets (after the mandatory first cell) in ascending order and
// joins each node against the bucket with the matching k2. Leaves cost
// a handful of adds; each pool/walk edge folds one cell.
// ---------------------------------------------------------------------------

/// Accumulated contributions of the cells a DFS branch has chosen so
/// far (beyond the always-present first cell and EOM cell).
struct Agg {
  std::uint64_t inet = 0;
  std::uint64_t fa = 0;   ///< unreduced Fletcher A term
  std::uint64_t fb = 0;   ///< unreduced, distance-weighted B term
  std::uint64_t ka = 0;   ///< unreduced Koopman dual A term
  std::uint64_t kb = 0;   ///< unreduced, block-distance-weighted B term
  std::uint64_t ks = 0;   ///< unreduced Koopman single sum
  std::uint32_t crc = 0;  ///< XOR of distance-advanced per-cell CRCs
  bool eq1 = true;        ///< chosen cells match p1's at their position
  bool eq2 = true;        ///< chosen cells match p2's at their position
};

struct SuffixCombo {
  Agg agg;
  bool hdr2 = false;  ///< combo includes p2's header cell (cell 0)
};

/// Constants of one pair's DFS.
struct DfsPair {
  const PairContext* ctx = nullptr;
  const CellPartial* c1 = nullptr;
  const CellPartial* c2 = nullptr;
  unsigned e1 = 0, e2 = 0;
  std::uint64_t eom_len = 0;
  bool mod255 = false;
  bool track1 = false;       ///< n1 == n2: identical-to-p1 is possible
  bool ident1_base = false;  ///< track1 and EOM coverage matches p1's
  bool ident2_head = false;  ///< first cell's hash matches p2's cell 0
  // Pair constants: first cell at position 0 plus the EOM cell.
  std::uint64_t iconst = 0;
  std::uint64_t fconst_a = 0, fconst_b = 0;
  // Koopman pair constants and targets: same two mandatory fragments,
  // with B weighted by trailing *block* count (6 per cell, 6 for the
  // EOM cell's 44 covered bytes). Targets are p2's whole-PDU sums.
  std::uint64_t kconst_a = 0, kconst_b = 0, ksconst = 0;
  alg::KoopmanDualPair kd_target{};
  std::uint64_t ks_target = 0;
  std::uint32_t crc_target = 0;
  std::uint16_t stored_canon = 0;
  SpliceStats* st = nullptr;
  /// Fold count for splice.dfs_nodes, flushed per pair. The pooled
  /// paths never touch it per fold — their counts are derived in
  /// closed form by evaluate_pair — so only suffix_exact (packets too
  /// large to pool; none under the default MTUs) increments it live.
  std::uint64_t* dfs_nodes = nullptr;
};

#ifndef OBS_DISABLE
/// Folds performed by prefix_walk for a pair: one per nonempty subset
/// of p1's optional cells (indices 1..e1-1), pruned at depth e2-1 by
/// the `k1 + 1 > e2` guard, i.e. sum over d in [1, dmax] of
/// C(e1-1, d). Counting in closed form keeps the telemetry out of
/// fold(), the DFS inner loop; the cumulative sums are tabulated so
/// the per-pair cost is one lookup (n is bounded by kMaxSpliceCells,
/// and the row sums fit u64 up to n = 63).
std::uint64_t prefix_fold_count(unsigned e1, unsigned e2) {
  constexpr unsigned kMaxN = 64;
  // cum[n][d] = sum_{j=1}^{d} C(n, j), built by Pascal's rule.
  static const auto cum = [] {
    auto t = std::make_unique<
        std::array<std::array<std::uint64_t, kMaxN>, kMaxN>>();
    std::array<std::uint64_t, kMaxN> row{};  // C(n, j)
    for (unsigned n = 0; n < kMaxN; ++n) {
      for (unsigned j = n; j > 0; --j) row[j] += row[j - 1];
      row[0] = 1;
      std::uint64_t sum = 0;
      for (unsigned d = 0; d < kMaxN; ++d) {
        if (d > 0) sum += d <= n ? row[d] : 0;
        (*t)[n][d] = sum;
      }
    }
    return t;
  }();
  const unsigned n = std::min(e1 - 1, kMaxN - 1);
  const unsigned dmax = std::min({n, e2 - 1, kMaxN - 1});
  return (*cum)[n][dmax];
}
#endif

/// Fold one kept cell at splice position `pos` (>= 1) into `a`.
inline void fold(const DfsPair& fs, Agg& a, const CellPartial& c,
                 unsigned pos) {
  const unsigned d = fs.e2 - 1 - pos;
  a.inet += c.inet;
  const alg::FletcherPair& fp = fs.mod255 ? c.f255 : c.f256;
  a.fa += fp.a;
  a.fb += fp.b +
          (static_cast<std::uint64_t>(atm::kCellPayload) * d + fs.eom_len) *
              fp.a;
  // Koopman dual: the Fletcher recurrence at block grain — d trailing
  // cells of 6 blocks each plus the EOM cell's 6 covered blocks.
  a.ka += c.kd.a;
  a.kb += c.kd.b + kKoopmanBlocksPerCell * (d + 1ull) * c.kd.a;
  a.ks += c.ks;
  a.crc ^= suffix_comb(d).advance(c.crc);
  a.eq2 = a.eq2 && c.hash == fs.c2[pos].hash;
  if (fs.track1) a.eq1 = a.eq1 && c.hash == fs.c1[pos].hash;
}

void dfs_leaf(const DfsPair& fs, const Agg& a1, const SuffixCombo& c2,
              unsigned k1) {
  const PairContext& ctx = *fs.ctx;
  const bool identical = (fs.ident1_base && a1.eq1 && c2.agg.eq1) ||
                         (fs.ident2_head && a1.eq2 && c2.agg.eq2);
  bool transport_pass;
  if (ctx.fletcher) {
    const std::uint32_t m = fs.mod255 ? 255u : 256u;
    const std::uint64_t fa = fs.fconst_a + a1.fa + c2.agg.fa;
    const std::uint64_t fb = fs.fconst_b + a1.fb + c2.agg.fb;
    transport_pass = (fa % m == 0) && (fb % m == 0);
  } else {
    std::uint64_t sum = fs.iconst + a1.inet + c2.agg.inet;
    while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
    const std::uint16_t content = static_cast<std::uint16_t>(sum);
    const std::uint16_t expect =
        ctx.cfg->invert_checksum ? alg::ones_neg(content) : content;
    transport_pass = fs.stored_canon == alg::ones_canonical(expect);
  }
  const bool crc_pass = (a1.crc ^ c2.agg.crc) == fs.crc_target;
  const bool kd_pass =
      (fs.kconst_a + a1.ka + c2.agg.ka) % alg::kKoopmanDualMod ==
          fs.kd_target.a &&
      (fs.kconst_b + a1.kb + c2.agg.kb) % alg::kKoopmanDualMod ==
          fs.kd_target.b;
  const bool ks_pass =
      (fs.ksconst + a1.ks + c2.agg.ks) % alg::kKoopmanSingleMod ==
      fs.ks_target;
  classify(ctx, k1, c2.hdr2, identical, transport_pass, crc_pass, kd_pass,
           ks_pass, *fs.st);
}

/// Phase 2: pool every way p2's non-EOM cells can fill the LAST r
/// splice positions, bucketed by r. Cells are chosen in descending
/// index order; choosing cell `idx` with r cells already placed puts
/// it at distance r from the end (position e2-1-r), so a combo's fold
/// never depends on k1 and one pool serves every phase-1 branch. Each
/// nonempty subset is emitted exactly once, on the edge that adds its
/// smallest-index cell last.
void suffix_pool(const DfsPair& fs, int from, unsigned r, const Agg& agg,
                 std::vector<std::vector<SuffixCombo>>& buckets) {
  const unsigned pos = fs.e2 - 1 - r;
  for (int idx = from; idx >= 0; --idx) {
    Agg a = agg;
    fold(fs, a, fs.c2[idx], pos);
    buckets[r + 1].push_back({a, idx == 0});
    if (r + 2 <= fs.e2 - 1 && idx > 0)
      suffix_pool(fs, idx - 1, r + 1, a, buckets);
  }
}

/// Exact-size variant for packets too large to pool (2^e2 combos):
/// regrow the suffix per phase-1 node, still prefix-shared within it.
void suffix_exact(const DfsPair& fs, int from, unsigned need, unsigned r,
                  const Agg& a2, bool hdr2, const Agg& a1, unsigned k1) {
  if (r == need) {
    dfs_leaf(fs, a1, {a2, hdr2}, k1);
    return;
  }
  const unsigned pos = fs.e2 - 1 - r;
  // idx+1 cells remain available below `idx`; prune branches that
  // cannot reach `need`.
  for (int idx = from; idx + 1 >= static_cast<int>(need - r); --idx) {
    Agg a = a2;
    fold(fs, a, fs.c2[idx], pos);
#ifndef OBS_DISABLE
    ++*fs.dfs_nodes;  // cold path: no closed form with the pruning
#endif
    suffix_exact(fs, idx - 1, need, r + 1, a, hdr2 || idx == 0, a1, k1);
  }
}

/// Packets whose suffix pool stays comfortably small (2^14 combos,
/// well under a megabyte of thread-local scratch). Larger packets —
/// none exist under the default MTUs — fall back to suffix_exact.
constexpr unsigned kMaxPooledSuffixCells = 14;

/// Phase 1: DFS over p1's kept cells after the mandatory first cell.
/// The node reached after choosing t cells (k1 = t+1) joins every
/// pooled suffix of size e2-k1, then extends by each later cell; a
/// subset's fold happens once, on the edge adding its largest index.
void prefix_walk(const DfsPair& fs, unsigned from, unsigned t, const Agg& agg,
                 const std::vector<std::vector<SuffixCombo>>* buckets) {
  const unsigned k1 = t + 1;
  const unsigned k2 = fs.e2 - k1;
  if (buckets != nullptr) {
    for (const SuffixCombo& c2 : (*buckets)[k2]) dfs_leaf(fs, agg, c2, k1);
  } else if (k2 == 0) {
    dfs_leaf(fs, agg, SuffixCombo{}, k1);
  } else {
    suffix_exact(fs, static_cast<int>(fs.e2) - 1, k2, 0, Agg{}, false, agg,
                 k1);
  }
  if (k1 + 1 > fs.e2) return;  // a longer prefix would force k2 < 0
  for (unsigned idx = from; idx < fs.e1; ++idx) {
    Agg a = agg;
    fold(fs, a, fs.c1[idx], t + 1);
    prefix_walk(fs, idx + 1, t + 1, a, buckets);
  }
}

// ---------------------------------------------------------------------------
// Flat (pre-DFS) per-splice evaluation — benchmark baseline and
// differential-test oracle.
// ---------------------------------------------------------------------------

void eval_fast_flat(const PairContext& ctx, const atm::SpliceSpec& s,
                    SpliceStats& st) {
  const SimPacket& p1 = *ctx.p1;
  const SimPacket& p2 = *ctx.p2;
  const unsigned first = static_cast<unsigned>(std::countr_zero(s.mask1));

  if (!ctx.hdr_ok[first]) {
    ++st.caught_by_header;
    ++st.fast_path;
    return;
  }
  if (first != 0) {
    // A data cell that nonetheless parses as a valid header: rare
    // enough to evaluate by materialisation.
    eval_slow(ctx, s, st);
    return;
  }
  ++st.fast_path;

  const std::size_t n1 = p1.cells.size();
  const std::size_t n2 = p2.cells.size();

  // Accumulators. Fletcher sums stay unreduced (they fit easily in 32
  // bits for tens of cells); Internet sum folds at the end.
  std::uint64_t inet = p1.tp.head_sum;
  const alg::FletcherPair& hf = ctx.mod255 ? p1.tp.head_f255 : p1.tp.head_f256;
  std::uint64_t fa = hf.a;
  std::uint64_t fb = hf.b;
  std::uint32_t crc = 0;
  // Koopman coverage is the raw PDU (minus the CRC field), so unlike
  // the transport sums it includes the position-0 cell's bytes.
  alg::KoopmanDualPair kd{};
  std::uint64_t ks = 0;
  bool ident2 = true;
  bool ident1 = (n1 == n2);
  std::size_t pos = 0;

  auto take = [&](const SimPacket& src, unsigned idx) {
    const CellPartial& c = src.cells[idx];
    crc = pos == 0 ? c.crc : comb48().combine(crc, c.crc);
    kd = alg::koopman_dual_combine(kd, c.kd, kKoopmanBlocksPerCell);
    ks += c.ks;
    ident2 = ident2 && c.hash == p2.cells[pos].hash;
    if (ident1) ident1 = c.hash == p1.cells[pos].hash;
    if (pos != 0) {
      inet += c.inet;
      const alg::FletcherPair& fp = ctx.mod255 ? c.f255 : c.f256;
      fb += static_cast<std::uint64_t>(atm::kCellPayload) * fa + fp.b;
      fa += fp.a;
    }
    ++pos;
  };

  for (std::uint32_t m = s.mask1; m != 0; m &= m - 1)
    take(p1, static_cast<unsigned>(std::countr_zero(m)));
  for (std::uint32_t m = s.mask2; m != 0; m &= m - 1)
    take(p2, static_cast<unsigned>(std::countr_zero(m)));

  // EOM cell: p2's last cell, always present. Identical-data
  // comparison covers only the in-datagram bytes of the EOM cell (the
  // AAL5 pad/trailer is not delivered data).
  {
    if (ident1) ident1 = p2.eom_cov_hash == p1.eom_cov_hash;
    inet += p2.tp.eom_sum;
    const alg::FletcherPair& fp = ctx.mod255 ? p2.tp.eom_f255 : p2.tp.eom_f256;
    fb += static_cast<std::uint64_t>(p2.tp.eom_len) * fa + fp.b;
    fa += fp.a;
    crc = comb44().combine(crc, p2.crc_head44);
    kd = alg::koopman_dual_combine(kd, p2.eom_kd,
                                   alg::koopman_block_count(44));
    ks += p2.eom_ks;
  }

  bool transport_pass;
  if (ctx.fletcher) {
    const std::uint32_t m = ctx.mod255 ? 255u : 256u;
    transport_pass = (fa % m == 0) && (fb % m == 0);
  } else {
    const std::uint16_t content = [&] {
      std::uint64_t sum = inet;
      while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
      return static_cast<std::uint16_t>(sum);
    }();
    const std::uint16_t stored =
        ctx.header_placement ? p1.tp.stored : p2.tp.stored;
    const std::uint16_t expect =
        ctx.cfg->invert_checksum ? alg::ones_neg(content) : content;
    transport_pass =
        alg::ones_canonical(stored) == alg::ones_canonical(expect);
  }

  const bool crc_pass = crc == p2.stored_crc;
  const bool kd_pass = kd == p2.kd_pdu;
  const bool ks_pass = ks % alg::kKoopmanSingleMod == p2.ks_pdu;
  classify(ctx, s.k1, (s.mask2 & 1u) != 0, ident1 || ident2, transport_pass,
           crc_pass, kd_pass, ks_pass, st);
}

PairContext make_pair_context(const net::PacketConfig& cfg, const SimPacket& p1,
                              const SimPacket& p2,
                              std::vector<std::uint8_t>& hdr_scratch) {
  PairContext ctx;
  ctx.cfg = &cfg;
  ctx.p1 = &p1;
  ctx.p2 = &p2;
  ctx.fletcher = cfg.transport != alg::Algorithm::kInternet;
  ctx.mod255 = cfg.transport == alg::Algorithm::kFletcher255;
  ctx.header_placement = cfg.placement == net::ChecksumPlacement::kHeader;
  ctx.hdr_ok = pair_hdr_ok(cfg, p1, p2, hdr_scratch);
  return ctx;
}

}  // namespace

SpliceOutcome evaluate_splice_reference(const net::PacketConfig& cfg,
                                        const SimPacket& p1,
                                        const SimPacket& p2,
                                        const atm::SpliceSpec& splice) {
  SpliceOutcome out;
  const util::Bytes bytes = atm::materialize_splice(p1.pdu, p2.pdu, splice);
  const atm::Aal5Trailer trailer = atm::parse_trailer(util::ByteView(bytes));
  const std::size_t len = trailer.length;

  if (net::check_headers(util::ByteView(bytes), len,
                         cfg.fill_ip_header && !cfg.legacy95_headers,
                         cfg.legacy95_headers) != net::HeaderCheck::kOk) {
    out.caught_by_header = true;
    return out;
  }

  // "Identical data" compares the delivered IP datagram (the first
  // `len` bytes) with the transport check field excluded. The AAL5
  // pad/trailer is reassembly framing, not data, and the check field
  // is not data either: §5.3's trailer analysis counts a splice whose
  // *payload* reproduces packet 1 as identical even though it carries
  // packet 2's trailer checksum (and is therefore rejected — a benign
  // false positive, Table 10).
  std::size_t skip_at = len;  // offset of the 2 excluded bytes
  if (cfg.placement == net::ChecksumPlacement::kHeader) {
    skip_at = net::kIpv4HeaderLen + 16;
  } else if (len >= net::kTrailerCheckLen) {
    skip_at = len - net::kTrailerCheckLen;
  }
  const auto datagram_equal = [&](const SimPacket& p) {
    if (p.total_len != len) return false;
    const util::ByteView a(bytes.data(), len);
    const util::ByteView b = p.pdu.bytes().first(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (i == skip_at) {
        ++i;  // skip both check bytes
        continue;
      }
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  out.identical = datagram_equal(p2) || datagram_equal(p1);
  out.transport_pass =
      net::verify_transport_checksum(cfg, util::ByteView(bytes).first(len));
  out.crc_pass = atm::crc_ok(util::ByteView(bytes));
  // Koopman sums share the AAL5 CRC's coverage; "pass" means the
  // splice reproduces packet 2's stored-in-our-model sums (the splice
  // carries p2's trailer, so p2's whole-PDU values are the targets).
  const util::ByteView kcov(bytes.data(), bytes.size() - 4);
  out.koopman_dual_pass = alg::kern::koopman_dual(kcov) == p2.kd_pdu;
  out.koopman_single_pass = alg::kern::koopman_single(kcov) == p2.ks_pdu;
  return out;
}

void SpliceStats::merge(const SpliceStats& o) {
  files += o.files;
  packets += o.packets;
  pairs += o.pairs;
  total += o.total;
  caught_by_header += o.caught_by_header;
  identical += o.identical;
  remaining += o.remaining;
  missed_crc += o.missed_crc;
  missed_transport += o.missed_transport;
  missed_both += o.missed_both;
  missed_koopman_dual += o.missed_koopman_dual;
  missed_koopman_single += o.missed_koopman_single;
  fail_identical += o.fail_identical;
  pass_identical += o.pass_identical;
  fail_changed += o.fail_changed;
  pass_changed += o.pass_changed;
  remaining_with_hdr2 += o.remaining_with_hdr2;
  missed_with_hdr2 += o.missed_with_hdr2;
  for (std::size_t i = 0; i < kMaxTrackedK; ++i) {
    remaining_by_k[i] += o.remaining_by_k[i];
    missed_by_k[i] += o.missed_by_k[i];
  }
  slow_path += o.slow_path;
  fast_path += o.fast_path;
}

void evaluate_pair(const net::PacketConfig& cfg, const SimPacket& p1,
                   const SimPacket& p2, SpliceStats& stats) {
  SpliceObsFlush obs_flush(stats);
  ++stats.pairs;
  const std::size_t n1 = p1.pdu.num_cells();
  const std::size_t n2 = p2.pdu.num_cells();
  if (n1 < 2 || n2 < 1) return;

  const std::uint64_t total_pair = atm::splice_count(n1, n2);
  if (total_pair == 0) return;
  stats.total += total_pair;

  std::vector<std::uint8_t> hdr_scratch;
  const PairContext ctx = make_pair_context(cfg, p1, p2, hdr_scratch);

  if (!p2.fast_path_ok) {
    atm::for_each_splice(
        n1, n2, [&](const atm::SpliceSpec& s) { eval_slow(ctx, s, stats); });
    return;
  }

  // Header gate, taken per subtree instead of per splice: all splices
  // starting at cell i share its header verdict, so a failing subtree
  // is counted wholesale and a passing one with i > 0 (a data cell
  // that happens to parse as a header — rare) goes to the slow path.
  const std::size_t e1 = n1 - 1;
  bool any_slow = false;
  for (std::size_t i = 0; i < e1; ++i) {
    const std::uint64_t sub = atm::splice_count_first_cell(n1, n2, i);
    if (!ctx.hdr_ok[i]) {
      stats.caught_by_header += sub;
      stats.fast_path += sub;
    } else if (i != 0) {
      any_slow = true;
    } else {
      stats.fast_path += sub;
    }
  }
  if (any_slow) {
    atm::for_each_splice(n1, n2, [&](const atm::SpliceSpec& s) {
      const unsigned first = static_cast<unsigned>(std::countr_zero(s.mask1));
      if (first != 0 && ctx.hdr_ok[first]) eval_slow(ctx, s, stats);
    });
  }
  if (!ctx.hdr_ok[0]) return;  // the whole DFS subtree was bulk-counted

  DfsPair fs;
  fs.ctx = &ctx;
  fs.c1 = p1.cells.data();
  fs.c2 = p2.cells.data();
  fs.e1 = static_cast<unsigned>(e1);
  fs.e2 = static_cast<unsigned>(n2 - 1);
  fs.eom_len = p2.tp.eom_len;
  fs.mod255 = ctx.mod255;
  fs.track1 = n1 == n2;
  fs.ident1_base = fs.track1 && p2.eom_cov_hash == p1.eom_cov_hash;
  fs.ident2_head = p1.cells[0].hash == p2.cells[0].hash;
  fs.iconst = static_cast<std::uint64_t>(p1.tp.head_sum) + p2.tp.eom_sum;
  {
    const alg::FletcherPair& hf =
        ctx.mod255 ? p1.tp.head_f255 : p1.tp.head_f256;
    const alg::FletcherPair& ef = ctx.mod255 ? p2.tp.eom_f255 : p2.tp.eom_f256;
    fs.fconst_a = static_cast<std::uint64_t>(hf.a) + ef.a;
    fs.fconst_b =
        static_cast<std::uint64_t>(hf.b) + ef.b +
        (static_cast<std::uint64_t>(atm::kCellPayload) * (fs.e2 - 1) +
         fs.eom_len) *
            hf.a;
  }
  fs.crc_target = p2.stored_crc ^ p2.crc_head44 ^
                  suffix_comb(fs.e2 - 1).advance(p1.cells[0].crc);
  // Koopman constants: p1's mandatory first cell (6*e2 blocks follow
  // it) plus p2's EOM fragment (nothing follows). Targets are p2's
  // whole-PDU sums — the splice carries p2's trailer.
  fs.kconst_a = p1.cells[0].kd.a + p2.eom_kd.a;
  fs.kconst_b = static_cast<std::uint64_t>(p1.cells[0].kd.b) +
                kKoopmanBlocksPerCell * static_cast<std::uint64_t>(fs.e2) *
                    p1.cells[0].kd.a +
                p2.eom_kd.b;
  fs.ksconst = p1.cells[0].ks + p2.eom_ks;
  fs.kd_target = p2.kd_pdu;
  fs.ks_target = p2.ks_pdu;
  fs.stored_canon = alg::ones_canonical(ctx.header_placement ? p1.tp.stored
                                                             : p2.tp.stored);
  fs.st = &stats;
  fs.dfs_nodes = &obs_flush.dfs_nodes;

  if (fs.e2 <= kMaxPooledSuffixCells) {
    thread_local std::vector<std::vector<SuffixCombo>> buckets;
    if (buckets.size() < fs.e2) buckets.resize(fs.e2);
    for (auto& b : buckets) b.clear();
    buckets[0].push_back(SuffixCombo{});  // k2 = 0: only p2's EOM
    if (fs.e2 >= 2)
      suffix_pool(fs, static_cast<int>(fs.e2) - 1, 0, Agg{}, buckets);
#ifndef OBS_DISABLE
    // Every pool entry past the seeded k2 = 0 one cost exactly one
    // fold; the prefix side has a closed form. Summing here keeps the
    // DFS itself free of telemetry.
    for (std::size_t r = 1; r < buckets.size(); ++r)
      obs_flush.dfs_nodes += buckets[r].size();
    obs_flush.dfs_nodes += prefix_fold_count(fs.e1, fs.e2);
#endif
    prefix_walk(fs, 1, 0, Agg{}, &buckets);
  } else {
#ifndef OBS_DISABLE
    obs_flush.dfs_nodes += prefix_fold_count(fs.e1, fs.e2);
#endif
    prefix_walk(fs, 1, 0, Agg{}, nullptr);
  }
}

void evaluate_pair_flat(const net::PacketConfig& cfg, const SimPacket& p1,
                        const SimPacket& p2, SpliceStats& stats) {
  SpliceObsFlush obs_flush(stats);
  ++stats.pairs;
  const std::size_t n1 = p1.pdu.num_cells();
  const std::size_t n2 = p2.pdu.num_cells();
  if (n1 < 2 || n2 < 1) return;
  atm::check_splice_cells(n1, n2);

  std::vector<std::uint8_t> hdr_scratch;
  const PairContext ctx = make_pair_context(cfg, p1, p2, hdr_scratch);
  const bool fast = p2.fast_path_ok;

  atm::for_each_splice(n1, n2, [&](const atm::SpliceSpec& s) {
    ++stats.total;
    if (fast) {
      eval_fast_flat(ctx, s, stats);
    } else {
      eval_slow(ctx, s, stats);
    }
  });
}

namespace {

/// Compress (optionally) and packetize one file — shared by the
/// sequential and work-stealing paths.
std::vector<SimPacket> prepare_file(const SpliceRunConfig& cfg,
                                    util::ByteView file) {
  obs::ScopedTimer timer(smx().packetize_ns);
  util::Bytes compressed;
  if (cfg.compress_files) {
    compressed = compress::lzw_compress(file);
    file = util::ByteView(compressed);
  }
  return packetize_file(cfg.flow, file);
}

}  // namespace

void register_splice_metrics() { (void)smx(); }

SpliceStats run_file(const SpliceRunConfig& cfg, util::ByteView file) {
  SpliceStats st;
  const std::vector<SimPacket> pkts = prepare_file(cfg, file);
  st.files = 1;
  st.packets = pkts.size();
  smx().files.add(1);
  smx().packets.add(pkts.size());
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i)
    evaluate_pair(cfg.flow.packet, pkts[i], pkts[i + 1], st);
  return st;
}

SpliceStats run_filesystem(const SpliceRunConfig& cfg,
                           const fsgen::Filesystem& fs) {
  return run_filesystem_range(cfg, fs, 0, fs.file_count());
}

namespace {

/// The scheduler behind run_filesystem_range and run_corpus_range.
/// `load(i)` produces file i's SimPackets — by generate + packetize
/// for a fsgen source, by memcpy reconstruction for a corpus store —
/// and the rest of the machinery (sequential loop or pair-granular
/// work stealing) is source-agnostic. Every SpliceStats counter is
/// additive, so the merged result is bitwise identical for any thread
/// count, interleaving, or source representation of the same corpus.
template <typename Loader>
SpliceStats run_range_impl(const SpliceRunConfig& cfg, Loader&& load,
                           std::size_t begin, std::size_t end) {
  unsigned threads = cfg.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t nfiles = end > begin ? end - begin : 0;
  const SpliceMetrics& mx = smx();

  if (threads <= 1 || nfiles == 0) {
    SpliceStats st;
    for (std::size_t i = begin; i < end; ++i) {
      const std::vector<SimPacket> pkts = load(i);
      st.files += 1;
      st.packets += pkts.size();
      mx.files.add(1);
      mx.packets.add(pkts.size());
      for (std::size_t j = 0; j + 1 < pkts.size(); ++j)
        evaluate_pair(cfg.flow.packet, pkts[j], pkts[j + 1], st);
    }
    return st;
  }

  // Pair-granular work stealing: whichever worker claims a file
  // loads it once, then its adjacent-pair range is carved into
  // fixed chunks that any idle worker can steal, so one large file no
  // longer serialises the run.
  struct FileWork {
    std::vector<SimPacket> pkts;
    std::atomic<std::size_t> next_pair{0};
    std::size_t pair_count = 0;
    unsigned owner = 0;  ///< worker that packetized it (steal counting)
  };
  constexpr std::size_t kPairChunk = 8;

  std::vector<SpliceStats> partial(threads);
  std::atomic<std::size_t> next_file{begin};
  std::atomic<unsigned> packetizing{0};
  std::mutex mu;  // guards `open`
  std::vector<std::shared_ptr<FileWork>> open;

  auto worker = [&](unsigned t) {
    SpliceStats& st = partial[t];
    for (;;) {
      // 1) Steal a pair chunk from any open file.
      std::shared_ptr<FileWork> fw;
      {
        std::lock_guard<std::mutex> lock(mu);
        for (auto it = open.begin(); it != open.end();) {
          if ((*it)->next_pair.load(std::memory_order_relaxed) >=
              (*it)->pair_count) {
            mx.sched_open_files.sub(1);
            it = open.erase(it);  // drained; in-flight chunks hold refs
          } else {
            fw = *it;
            break;
          }
        }
      }
      if (fw != nullptr) {
        const std::size_t begin = fw->next_pair.fetch_add(kPairChunk);
        const std::size_t end =
            std::min(begin + kPairChunk, fw->pair_count);
        if (begin < end) {
          mx.sched_chunks.add(1);
          if (fw->owner != t) mx.sched_steals.add(1);
          obs::ScopedTimer timer(mx.chunk_ns);
          for (std::size_t j = begin; j < end; ++j)
            evaluate_pair(cfg.flow.packet, fw->pkts[j], fw->pkts[j + 1], st);
        }
        continue;
      }
      // 2) No open pairs: claim and packetize the next file. The
      //    in-flight counter keeps step 3 from declaring victory while
      //    a file is being opened. (Bumped before the claim so a
      //    racing worker can never observe files-exhausted with the
      //    counter already back at zero.)
      packetizing.fetch_add(1);
      const std::size_t i = next_file.fetch_add(1);
      if (i < end) {
        auto work = std::make_shared<FileWork>();
        work->pkts = load(i);
        work->owner = t;
        st.files += 1;
        st.packets += work->pkts.size();
        mx.sched_files.add(1);
        mx.files.add(1);
        mx.packets.add(work->pkts.size());
        if (work->pkts.size() >= 2) {
          work->pair_count = work->pkts.size() - 1;
          mx.sched_open_files.add(1);
          std::lock_guard<std::mutex> lock(mu);
          open.push_back(std::move(work));
        }
        packetizing.fetch_sub(1);
        continue;
      }
      packetizing.fetch_sub(1);
      // 3) Files exhausted: done once no file is mid-packetize and no
      //    open file has unclaimed pairs.
      if (packetizing.load() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        bool pending = false;
        for (const auto& w : open) {
          if (w->next_pair.load(std::memory_order_relaxed) < w->pair_count) {
            pending = true;
            break;
          }
        }
        if (!pending) return;
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();

  SpliceStats st;
  for (const auto& p : partial) st.merge(p);
  return st;
}

}  // namespace

SpliceStats run_filesystem_range(const SpliceRunConfig& cfg,
                                 const fsgen::Filesystem& fs,
                                 std::size_t begin, std::size_t end) {
  end = std::min(end, fs.file_count());
  begin = std::min(begin, end);
  return run_range_impl(
      cfg,
      [&](std::size_t i) {
        const util::Bytes file = fs.file(i);
        return prepare_file(cfg, util::ByteView(file));
      },
      begin, end);
}

SpliceStats run_corpus(const SpliceRunConfig& cfg,
                       const fsgen::CorpusReader& corpus) {
  return run_corpus_range(cfg, corpus, 0, corpus.file_count());
}

SpliceStats run_corpus_range(const SpliceRunConfig& cfg,
                             const fsgen::CorpusReader& corpus,
                             std::size_t begin, std::size_t end) {
  end = std::min(end, corpus.file_count());
  begin = std::min(begin, end);
  // Advisory readahead over exactly the SoA slices this range touches:
  // a dist worker streams each lease shard from a cold page cache, so
  // asking for the pages up front overlaps I/O with reconstruction.
  corpus.advise_will_need(begin, end);
  return run_range_impl(
      cfg,
      [&](std::size_t i) {
        // The reconstruction cost lands in the same timing histogram
        // as packetisation so the two sources are directly comparable
        // in exported manifests.
        obs::ScopedTimer timer(smx().packetize_ns);
        return corpus.file_packets(i);
      },
      begin, end);
}

}  // namespace cksum::core
