#include "net/tcp.hpp"

namespace cksum::net {

void TcpHeader::write(std::uint8_t* out) const noexcept {
  util::store_be16(out, src_port);
  util::store_be16(out + 2, dst_port);
  util::store_be32(out + 4, seq);
  util::store_be32(out + 8, ack);
  out[12] = static_cast<std::uint8_t>((data_offset << 4) | (reserved & 0xf));
  out[13] = flags;
  util::store_be16(out + 14, window);
  util::store_be16(out + 16, checksum);
  util::store_be16(out + 18, urgent);
}

std::optional<TcpHeader> TcpHeader::parse(util::ByteView data) noexcept {
  if (data.size() < kTcpHeaderLen) return std::nullopt;
  TcpHeader h;
  h.src_port = util::load_be16(data.data());
  h.dst_port = util::load_be16(data.data() + 2);
  h.seq = util::load_be32(data.data() + 4);
  h.ack = util::load_be32(data.data() + 8);
  h.data_offset = static_cast<std::uint8_t>(data[12] >> 4);
  h.reserved = static_cast<std::uint8_t>(data[12] & 0xf);
  h.flags = data[13];
  h.window = util::load_be16(data.data() + 14);
  h.checksum = util::load_be16(data.data() + 16);
  h.urgent = util::load_be16(data.data() + 18);
  return h;
}

void PseudoHeader::write(std::uint8_t* out) const noexcept {
  util::store_be32(out, src);
  util::store_be32(out + 4, dst);
  out[8] = 0;
  out[9] = protocol;
  util::store_be16(out + 10, tcp_length);
}

}  // namespace cksum::net
