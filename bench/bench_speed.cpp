// §2's performance claim: "measurements have typically shown the TCP
// checksum to be two to four times faster [than Fletcher]", with CRC
// slower still. google-benchmark over the algorithm engines.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "checksum/checksum.hpp"
#include "checksum/kernels/kernel.hpp"
#include "core/pdu_model.hpp"
#include "core/splice_sim.hpp"
#include "util/rng.hpp"

namespace {

using cksum::util::ByteView;
using cksum::util::Bytes;

Bytes make_buffer(std::size_t n) {
  Bytes b(n);
  cksum::util::Rng rng(0xbeef);
  rng.fill(b);
  return b;
}

const Bytes& buffer() {
  static const Bytes b = make_buffer(64 * 1024);
  return b;
}

void BM_InternetChecksum(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cksum::alg::internet_sum(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_InternetChecksumWide(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cksum::alg::internet_sum_wide(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Fletcher255(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cksum::alg::fletcher_block(data, cksum::alg::FletcherMod::kOnes255));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Fletcher256(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cksum::alg::fletcher_block(data, cksum::alg::FletcherMod::kTwos256));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Fletcher255Naive(benchmark::State& state) {
  // Per-byte modulo, the implementation Nakassis warns against.
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cksum::alg::fletcher_block_naive(
        data, cksum::alg::FletcherMod::kOnes255));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Adler32(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(cksum::alg::adler32(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Crc32Bitwise(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cksum::alg::crc32_bitwise(0, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Crc32Table(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cksum::alg::crc32_table(0, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Crc32Slice8(benchmark::State& state) {
  const ByteView data(buffer().data(), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(cksum::alg::crc32_slice8(0, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Crc32CellCombine(benchmark::State& state) {
  // The splice simulator's hot operation: fold a per-cell CRC into a
  // running splice CRC.
  const cksum::alg::CrcCombiner comb(48);
  std::uint32_t a = 0x12345678, b = 0x9abcdef0;
  for (auto _ : state) {
    a = comb.combine(a, b);
    benchmark::DoNotOptimize(a);
  }
}

void BM_SpliceEvaluatePair(benchmark::State& state) {
  // The simulator's unit of work: all 923 splices of one adjacent
  // full-size packet pair, classified via per-cell partial sums.
  cksum::net::FlowConfig flow;
  cksum::util::Bytes file(512);
  cksum::util::Rng rng(0x51);
  rng.fill(file);
  const auto pkts =
      cksum::core::packetize_file(flow, cksum::util::ByteView(file));
  cksum::core::SpliceStats stats;
  for (auto _ : state) {
    cksum::core::evaluate_pair(flow.packet, pkts[0], pkts[1], stats);
    benchmark::DoNotOptimize(stats.total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          923);  // splices per pair
}

// Per-kernel throughput rows (BM_Kernel_<alg>_<kernel>) over the
// registry in src/checksum/kernels/. Registered at runtime so the row
// set tracks the registry; bench_distill.py folds the 64 KiB rows into
// the trajectory's kernel_throughput family.
template <typename Fn>
void register_kernel_bench(const cksum::alg::kern::Kernel& k,
                           const char* alg, Fn fn) {
  const std::string name =
      std::string("BM_Kernel_") + alg + "_" + std::string(k.name);
  benchmark::RegisterBenchmark(
      name.c_str(),
      [fn](benchmark::State& state) {
        const ByteView data(buffer().data(),
                            static_cast<std::size_t>(state.range(0)));
        for (auto _ : state) benchmark::DoNotOptimize(fn(data));
        state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                                state.range(0));
      })
      ->Arg(296)
      ->Arg(65536);
}

void register_kernel_benchmarks() {
  for (const cksum::alg::kern::Kernel& k : cksum::alg::kern::kernels()) {
    if (!cksum::alg::kern::kernel_available(k)) {
      // An unavailable kernel answers through its safe fallback, so a
      // row would time the wrong code. Skip loudly: bench_distill.py
      // treats the missing row as skip-with-notice, not failure.
      const char* why = cksum::alg::kern::kernel_unavailable_reason(k);
      std::fprintf(stderr,
                   "bench_speed: skipping BM_Kernel_*_%s (unavailable: %s)\n",
                   std::string(k.name).c_str(), why != nullptr ? why : "?");
      continue;
    }
    register_kernel_bench(k, "internet",
                          [&k](ByteView d) { return k.internet_sum(d); });
    register_kernel_bench(k, "fletcher255", [&k](ByteView d) {
      return k.fletcher(d, cksum::alg::FletcherMod::kOnes255);
    });
    register_kernel_bench(k, "fletcher256", [&k](ByteView d) {
      return k.fletcher(d, cksum::alg::FletcherMod::kTwos256);
    });
    register_kernel_bench(k, "fletcher32",
                          [&k](ByteView d) { return k.fletcher32(d); });
    register_kernel_bench(k, "adler32",
                          [&k](ByteView d) { return k.adler32(1, d); });
    register_kernel_bench(k, "crc32",
                          [&k](ByteView d) { return k.crc32(0, d); });
    register_kernel_bench(k, "koopmandual",
                          [&k](ByteView d) { return k.koopman_dual(d); });
    register_kernel_bench(k, "koopmansingle",
                          [&k](ByteView d) { return k.koopman_single(d); });
  }
}

}  // namespace

// 48-byte ATM cell, 296-byte packet, 4KB page, 64KB bulk.
BENCHMARK(BM_InternetChecksum)->Arg(48)->Arg(296)->Arg(4096)->Arg(65536);
BENCHMARK(BM_InternetChecksumWide)->Arg(48)->Arg(296)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Fletcher255)->Arg(48)->Arg(296)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Fletcher256)->Arg(48)->Arg(296)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Fletcher255Naive)->Arg(296)->Arg(65536);
BENCHMARK(BM_Adler32)->Arg(296)->Arg(65536);
BENCHMARK(BM_Crc32Bitwise)->Arg(296)->Arg(4096);
BENCHMARK(BM_Crc32Table)->Arg(296)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Crc32Slice8)->Arg(296)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Crc32CellCombine);
BENCHMARK(BM_SpliceEvaluatePair);

// Custom main: the per-kernel rows are registered against the runtime
// registry before the statically-declared benchmarks run.
int main(int argc, char** argv) {
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
