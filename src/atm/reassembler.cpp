#include "atm/reassembler.hpp"

#include "obs/registry.hpp"

namespace cksum::atm {

namespace {

struct ReasmMetrics {
  obs::Counter pdus, pdus_length_ok, pdus_crc_ok, oversize;
};

const ReasmMetrics& rmx() {
  static const ReasmMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    ReasmMetrics v;
    v.pdus = r.counter("reasm.pdus_completed");
    v.pdus_length_ok = r.counter("reasm.pdus_length_ok");
    v.pdus_crc_ok = r.counter("reasm.pdus_crc_ok");
    v.oversize = r.counter("reasm.oversize_discards");
    return v;
  }();
  return m;
}

}  // namespace

void register_reassembler_metrics() { (void)rmx(); }

std::optional<Reassembler::Pdu> Reassembler::push(const Cell& cell) {
  if (buffer_.size() + kCellPayload > kMaxPduBytes) {
    // The in-progress PDU can no longer be legal; a real SAR entity
    // discards and resynchronises at the next EOM.
    ++oversize_;
    rmx().oversize.add(1);
    buffer_.clear();
  }
  buffer_.insert(buffer_.end(), cell.payload.begin(), cell.payload.end());
  if (!cell.header.end_of_message()) return std::nullopt;

  Pdu out;
  out.bytes = std::move(buffer_);
  buffer_.clear();
  const Aal5Trailer trailer = parse_trailer(util::ByteView(out.bytes));
  out.length_ok =
      length_consistent(out.bytes.size() / kCellPayload, trailer.length);
  out.crc_ok = crc_ok(util::ByteView(out.bytes));
  const ReasmMetrics& m = rmx();
  m.pdus.add(1);
  if (out.length_ok) m.pdus_length_ok.add(1);
  if (out.crc_ok) m.pdus_crc_ok.add(1);
  return out;
}

}  // namespace cksum::atm
