// Umbrella header and common vocabulary for the checksum algorithms
// studied by the paper.
#pragma once

#include <string_view>

#include "checksum/adler32.hpp"
#include "checksum/crc32.hpp"
#include "checksum/fletcher.hpp"
#include "checksum/fletcher32.hpp"
#include "checksum/generic_crc.hpp"
#include "checksum/internet.hpp"
#include "checksum/koopman.hpp"

namespace cksum::alg {

/// The transport checksum algorithms the splice simulator races.
enum class Algorithm {
  kInternet,     ///< 16-bit ones-complement (TCP/IP/UDP)
  kFletcher255,  ///< Fletcher, ones-complement bytes (mod 255)
  kFletcher256,  ///< Fletcher, twos-complement bytes (mod 256)
  kCrc32,        ///< AAL5 CRC-32 (link-layer role in the paper)
};

constexpr std::string_view name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kInternet: return "TCP";
    case Algorithm::kFletcher255: return "F-255";
    case Algorithm::kFletcher256: return "F-256";
    case Algorithm::kCrc32: return "CRC-32";
  }
  return "?";
}

/// Expected miss probability over uniformly distributed data
/// (1 / size of value space) — the baseline every table compares to.
constexpr double uniform_miss_rate(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kInternet: return 1.0 / 65535.0;  // mod-65535 classes
    case Algorithm::kFletcher255: return 1.0 / (255.0 * 255.0);
    case Algorithm::kFletcher256: return 1.0 / 65536.0;
    case Algorithm::kCrc32: return 1.0 / 4294967296.0;
  }
  return 0.0;
}

}  // namespace cksum::alg
