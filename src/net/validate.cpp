#include "net/validate.hpp"

#include "net/ipv4.hpp"
#include "net/tcp.hpp"

namespace cksum::net {

HeaderCheck check_headers(util::ByteView data, std::size_t aal5_length,
                          bool require_ip_checksum, bool legacy95) noexcept {
  if (data.size() < kIpv4HeaderLen + kTcpHeaderLen ||
      aal5_length < kIpv4HeaderLen + kTcpHeaderLen)
    return HeaderCheck::kTooShort;

  const auto ip = Ipv4Header::parse(data);
  if (!ip) return HeaderCheck::kTooShort;
  if (!legacy95) {
    if (ip->version != 4) return HeaderCheck::kBadVersion;
    if (ip->ihl != 5) return HeaderCheck::kBadIhl;
  }
  if (ip->total_length != aal5_length) return HeaderCheck::kLengthMismatch;
  if (ip->protocol != 6) return HeaderCheck::kBadProtocol;
  if (require_ip_checksum && !ipv4_checksum_ok(data))
    return HeaderCheck::kBadIpChecksum;

  const auto tcp = TcpHeader::parse(data.subspan(kIpv4HeaderLen));
  if (!tcp) return HeaderCheck::kTooShort;
  if (tcp->data_offset != 5) return HeaderCheck::kBadTcpOffset;
  if (tcp->reserved != 0) return HeaderCheck::kBadTcpReserved;

  return HeaderCheck::kOk;
}

}  // namespace cksum::net
