# gnuplot script regenerating Figure 2(a) and Figure 3 from the CSV
# dumps of the bench binaries:
#
#   build/bench/bench_fig2_blockdist --csv > fig2.csv
#   build/bench/bench_fig3_cellpdf  --csv > fig3.csv
#   gnuplot -e "fig2='fig2.csv'; fig3='fig3.csv'" scripts/plot_figures.gp
#
# Produces fig2.png and fig3.png in the working directory.
set datafile separator ","
set terminal pngcairo size 900,600

set output "fig2.png"
set logscale xy
set xlabel "checksum value rank (sorted by frequency)"
set ylabel "probability"
set title "Figure 2(a): TCP checksum distribution over k-cell blocks"
plot fig2 using 1:2 with lines title "k=1", \
     fig2 using 1:3 with lines title "k=2", \
     fig2 using 1:4 with lines title "k=4", \
     fig2 using 1:5 with lines title "k=8", \
     fig2 using 1:6 with lines dashtype 2 title "predict (k=2)", \
     fig2 using 1:7 with lines dashtype 3 title "uniform"

set output "fig3.png"
set title "Figure 3: cell checksum PDFs (most common values)"
plot fig3 using 1:2 with lines title "IP/TCP", \
     fig3 using 1:3 with lines title "F255", \
     fig3 using 1:4 with lines title "F256"
