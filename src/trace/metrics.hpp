// The trace.* metric family (docs/OBSERVABILITY.md): counters the
// pcap reader, ingest stage and data profiler record. All counters
// are deterministic — for a given capture and flow configuration the
// values are bitwise identical run to run.
#pragma once

#include "obs/registry.hpp"

namespace cksum::trace {

struct TraceMetrics {
  obs::Counter captures;       ///< captures successfully opened
  obs::Counter records;        ///< pcap records parsed
  obs::Counter frame_bytes;    ///< captured link-layer bytes
  obs::Counter truncated;      ///< records cut short by the snap length
  obs::Counter accepted;       ///< records ingested into the PDU model
  obs::Counter rejected;       ///< records the ingest stage refused
  obs::Counter files;          ///< flow restarts (file transfers) found
  obs::Counter profile_bytes;  ///< payload bytes fed to the profiler
};

/// Lazily registered singleton (same pattern as the splice metrics).
const TraceMetrics& tmx();

}  // namespace cksum::trace
