#include "atm/demux.hpp"

namespace cksum::atm {

std::optional<VcDemux::Delivery> VcDemux::push(const Cell& cell) {
  const Key key{cell.header.vpi, cell.header.vci};
  auto done = channels_[key].push(cell);
  if (!done) return std::nullopt;
  Delivery d;
  d.vpi = cell.header.vpi;
  d.vci = cell.header.vci;
  d.pdu = std::move(*done);
  return d;
}

std::size_t VcDemux::pending_cells() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, reasm] : channels_) total += reasm.pending_cells();
  return total;
}

void VcDemux::reset_channel(std::uint8_t vpi, std::uint16_t vci) {
  const auto it = channels_.find(Key{vpi, vci});
  if (it != channels_.end()) it->second.reset();
}

}  // namespace cksum::atm
