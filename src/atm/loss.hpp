// Cell-loss models and switch discard policies (paper §7).
//
// The splice error model needs cells dropped *independently* within a
// packet. §7's "good news" is that switches stopped doing that:
//
//  * Partial Packet Discard (PPD): once one cell of a PDU is lost,
//    drop all its remaining cells (including the EOM). The trailer is
//    then only delivered when every preceding cell was, so a fused
//    PDU has a detectably wrong length.
//  * Early Packet Discard (EPD): drop whole PDUs. No splice can ever
//    form.
//
// The LossyLink applies a base loss process (independent per-cell or
// Gilbert-style bursty) and then the chosen discard policy, so
// bench_lossmodel can measure splice exposure under each regime.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/cell.hpp"
#include "util/rng.hpp"

namespace cksum::atm {

enum class DiscardPolicy {
  kNone,                 ///< plain cell loss — the splice-friendly regime
  kPartialPacketDiscard,
  kEarlyPacketDiscard,
};

struct LossConfig {
  double cell_loss_rate = 1e-3;  ///< probability a cell enters a loss event
  /// Probability the loss event continues with the next cell (0 makes
  /// losses independent; >0 gives Gilbert-style bursts).
  double burst_continue = 0.0;
  DiscardPolicy policy = DiscardPolicy::kNone;
};

struct LossStats {
  std::uint64_t cells_in = 0;
  std::uint64_t cells_lost = 0;        ///< by the loss process itself
  std::uint64_t cells_policy_drop = 0; ///< additionally dropped by PPD/EPD
};

/// Pass a cell stream through the lossy link. Cells keep their order;
/// PDU boundaries are tracked via the end-of-message bit (policy
/// decisions never straddle an EOM).
std::vector<Cell> transmit(const std::vector<Cell>& stream,
                           const LossConfig& cfg, util::Rng& rng,
                           LossStats* stats = nullptr);

}  // namespace cksum::atm
