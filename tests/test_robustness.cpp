// Robustness ("never crash on hostile input") tests for every parser
// in the library: random garbage and mutated valid inputs must yield a
// clean rejection — an exception type we define or a disengaged
// optional — never a crash or hang.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "atm/aal34.hpp"
#include "atm/cell.hpp"
#include "atm/reassembler.hpp"
#include "compress/lzw.hpp"
#include "net/fragment.hpp"
#include "net/tcp_options.hpp"
#include "net/udp.hpp"
#include "net/validate.hpp"
#include "util/rng.hpp"

namespace cksum {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(util::Rng& rng, std::size_t n) {
  Bytes b(n);
  rng.fill(b);
  return b;
}

TEST(Robustness, LzwDecompressRandomGarbage) {
  util::Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(2000));
    try {
      (void)compress::lzw_decompress(ByteView(garbage));
    } catch (const compress::CorruptStream&) {
      // expected
    }
  }
}

TEST(Robustness, LzwDecompressMutatedValidStream) {
  util::Rng data_rng(2);
  const Bytes input = random_bytes(data_rng, 5000);
  util::Rng rng(3);
  const Bytes packed = compress::lzw_compress(ByteView(input));
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = packed;
    mutated[4 + rng.below(mutated.size() - 4)] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      const Bytes out = compress::lzw_decompress(ByteView(mutated));
      // A mutated stream may still decode (LZW has no integrity
      // check) — that's fine; it must just not crash.
      (void)out;
    } catch (const compress::CorruptStream&) {
    }
  }
}

TEST(Robustness, TcpOptionParserRandomGarbage) {
  util::Rng rng(4);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(41));
    (void)net::TcpOptionList::parse(ByteView(garbage));  // must not crash
  }
}

TEST(Robustness, HeaderChecksRandomGarbage) {
  util::Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes garbage = random_bytes(rng, 40 + rng.below(300));
    (void)net::check_headers(ByteView(garbage), garbage.size(), true);
  }
}

TEST(Robustness, UdpVerifierRandomGarbage) {
  util::Rng rng(6);
  for (int trial = 0; trial < 1000; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(200));
    (void)net::verify_udp_datagram(ByteView(garbage));
  }
}

TEST(Robustness, CellParserRejectsBadHec) {
  util::Rng rng(7);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage = random_bytes(rng, atm::kCellLen);
    if (atm::Cell::from_bytes(ByteView(garbage)).has_value()) ++accepted;
  }
  // Random 5th byte matches the HEC of random headers 1/256 of the
  // time; far more would indicate the check is not being applied.
  EXPECT_LT(accepted, 40);
}

TEST(Robustness, ReassemblerSurvivesRandomCellStreams) {
  util::Rng rng(8);
  atm::Reassembler r;
  for (int trial = 0; trial < 5000; ++trial) {
    atm::Cell cell;
    rng.fill(cell.payload);
    cell.header.set_end_of_message(rng.chance(0.05));
    const auto done = r.push(cell);
    if (done) {
      // Random fused PDUs must essentially never pass both checks.
      EXPECT_FALSE(done->length_ok && done->crc_ok);
    }
  }
}

TEST(Robustness, Aal34CellDecodeRandomGarbage) {
  util::Rng rng(10);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    // Both exact 48-byte buffers and arbitrary lengths (short ones
    // must be rejected outright).
    Bytes garbage = random_bytes(rng, trial % 2 ? 48 : rng.below(100));
    if (atm::Sar34Cell::decode(ByteView(garbage)).has_value()) ++accepted;
  }
  // A random CRC-10 matches ~1/1024 of the time (and the LI range
  // check rejects some of those); far more would mean the CRC isn't
  // being applied.
  EXPECT_LT(accepted, 12);
}

TEST(Robustness, Cpcs34ParseRandomGarbage) {
  util::Rng rng(11);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes garbage = random_bytes(rng, rng.below(300));
    if (atm::cpcs34_parse(ByteView(garbage)).has_value()) ++accepted;
  }
  // Btag==Etag alone is a 1/256 accident; the BASize/Length/pad checks
  // cut it further.
  EXPECT_LT(accepted, 8);
}

TEST(Robustness, Aal34ReassemblerSurvivesRandomSegmentSoup) {
  // Structurally arbitrary (but CRC-valid) cells: random segment
  // types, sequence numbers and lengths must never crash the
  // reassembler, and nothing it completes may exceed what was pushed.
  util::Rng rng(12);
  atm::Aal34Reassembler r;
  std::size_t pushed_bytes = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    atm::Sar34Cell cell;
    cell.st = static_cast<atm::SegmentType>(rng.below(4));
    cell.sn = static_cast<std::uint8_t>(rng.below(16));
    cell.mid = static_cast<std::uint16_t>(rng.below(1024));
    cell.li = static_cast<std::uint8_t>(rng.below(atm::kSar34Payload + 1));
    rng.fill(cell.payload);
    pushed_bytes += cell.li;
    const auto out = r.push(cell);
    if (out) {
      EXPECT_LE(out->bytes.size(), pushed_bytes);
      // A randomly fused CPCS-PDU must essentially never validate.
      (void)atm::cpcs34_parse(ByteView(out->bytes));
    }
  }
}

TEST(Robustness, Aal34MutatedValidStream) {
  // Encode a valid multi-PDU SAR stream, flip one random bit per cell
  // copy, and feed whatever still decodes through the reassembler:
  // mirrors the LZW mutated-valid-stream case. Completed PDUs must
  // either be an original or fail CPCS validation.
  util::Rng rng(13);
  std::vector<std::array<std::uint8_t, 48>> wire;
  std::set<Bytes> originals;
  std::uint8_t sn = 0;
  for (int p = 0; p < 8; ++p) {
    Bytes payload = random_bytes(rng, 100 + rng.below(400));
    const Bytes pdu =
        atm::cpcs34_frame(ByteView(payload), static_cast<std::uint8_t>(p));
    originals.insert(pdu);
    const auto cells = atm::aal34_segment(ByteView(pdu), 7, sn);
    for (const auto& cell : cells) wire.push_back(cell.encode());
    sn = static_cast<std::uint8_t>((sn + cells.size()) & 0xf);
  }
  for (int trial = 0; trial < 300; ++trial) {
    atm::Aal34Reassembler r;
    for (auto cell_bytes : wire) {
      if (rng.chance(0.3)) {
        // 1-3 flipped bits: single-bit errors are always CRC-10
        // caught; multi-bit ones occasionally slip through and reach
        // the reassembler with corrupt fields.
        const std::uint64_t flips = 1 + rng.below(3);
        for (std::uint64_t f = 0; f < flips; ++f) {
          const std::uint64_t bit = rng.below(8 * cell_bytes.size());
          cell_bytes[bit / 8] ^=
              static_cast<std::uint8_t>(0x80u >> (bit % 8));
        }
      }
      const auto cell = atm::Sar34Cell::decode(
          ByteView(cell_bytes.data(), cell_bytes.size()));
      if (!cell) continue;  // CRC-10 caught it — receiver drops
      const auto out = r.push(*cell);
      if (out && atm::cpcs34_parse(ByteView(out->bytes)).has_value()) {
        // Validated PDUs must be bit-identical to an original.
        EXPECT_TRUE(originals.count(out->bytes))
            << "mutated stream produced a validated non-original PDU";
      }
    }
  }
}

TEST(Robustness, ReassembleRejectsOverlappingFragmentSoup) {
  // Fragments with random offsets/sizes: reassemble must either
  // cleanly fail or produce a structurally consistent datagram.
  util::Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<net::Fragment> frags;
    const std::size_t n = 1 + rng.below(5);
    for (std::size_t i = 0; i < n; ++i) {
      net::Fragment f;
      f.header.frag_off = static_cast<std::uint16_t>(rng.below(0x4000));
      f.payload = random_bytes(rng, 8 * (1 + rng.below(16)));
      frags.push_back(std::move(f));
    }
    const auto out = net::reassemble(std::move(frags));
    if (out) {
      EXPECT_GE(out->size(), net::kIpv4HeaderLen);
    }
  }
}

}  // namespace
}  // namespace cksum
