#include "fsgen/profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace cksum::fsgen {

namespace {

using FK = FileKind;

// Mixes. Weights are relative file counts.

// Mix weights are calibrated against the per-kind miss rates the
// pathology bench measures (gmon ~1.7%, hex-PS ~2.8%, word-processor
// ~0.2%, PBM ~14% TCP / ~52% F-255; everything else ~uniform) so each
// filesystem's TCP miss rate lands in the paper's 0.008%-0.22% band,
// with /opt the worst (~0.17%) and smeg:/u1 the one where Fletcher-255
// inverts below the TCP checksum.

// Generic office/server mixes for the NSC machines: mostly text and
// binaries, with minor populations of everything else. The nine
// systems differ in ratios so their rows differ the way Table 1's do.
constexpr KindWeight kMixOffice[] = {
    {FK::kText, 0.34}, {FK::kCSource, 0.13}, {FK::kExecutable, 0.14},
    {FK::kGmonProfile, 0.02}, {FK::kWordProcessor, 0.10},
    {FK::kRandom, 0.12}, {FK::kBinhex, 0.06}, {FK::kHexPostscript, 0.01},
    {FK::kMailSpool, 0.05}, {FK::kTarArchive, 0.03},
};
constexpr KindWeight kMixServer[] = {
    {FK::kText, 0.22}, {FK::kCSource, 0.15}, {FK::kExecutable, 0.26},
    {FK::kGmonProfile, 0.04}, {FK::kRandom, 0.12},
    {FK::kHexPostscript, 0.01}, {FK::kBinhex, 0.10},
    {FK::kTarArchive, 0.06}, {FK::kMailSpool, 0.04},
};
constexpr KindWeight kMixDesktop[] = {
    {FK::kText, 0.42}, {FK::kWordProcessor, 0.16}, {FK::kExecutable, 0.10},
    {FK::kRandom, 0.12}, {FK::kBinhex, 0.10}, {FK::kCSource, 0.09},
    {FK::kGmonProfile, 0.005}, {FK::kHexPostscript, 0.005},
};
constexpr KindWeight kMixBuild[] = {
    {FK::kCSource, 0.42}, {FK::kText, 0.16}, {FK::kExecutable, 0.24},
    {FK::kGmonProfile, 0.012}, {FK::kRandom, 0.10},
    {FK::kHexPostscript, 0.008}, {FK::kBinhex, 0.06},
};

// SICS source trees (with the build detritus — profiles, objects —
// that real src trees accumulate).
constexpr KindWeight kMixSrc[] = {
    {FK::kCSource, 0.60}, {FK::kText, 0.25}, {FK::kExecutable, 0.04},
    {FK::kRandom, 0.06},  {FK::kGmonProfile, 0.015},
    {FK::kHexPostscript, 0.005}, {FK::kBinhex, 0.03},
};
// /opt: executable-heavy, the paper's worst TCP-checksum filesystem
// (target ~0.17% missed).
constexpr KindWeight kMixOpt[] = {
    {FK::kExecutable, 0.42}, {FK::kText, 0.19}, {FK::kCSource, 0.08},
    {FK::kRandom, 0.14}, {FK::kGmonProfile, 0.06},
    {FK::kWordProcessor, 0.04}, {FK::kHexPostscript, 0.02},
    {FK::kBinhex, 0.05},
};
constexpr KindWeight kMixSolaris[] = {
    {FK::kExecutable, 0.48}, {FK::kText, 0.30}, {FK::kRandom, 0.14},
    {FK::kGmonProfile, 0.025}, {FK::kHexPostscript, 0.005},
    {FK::kBinhex, 0.05},
};
constexpr KindWeight kMixIssl[] = {
    {FK::kText, 0.36}, {FK::kCSource, 0.20}, {FK::kWordProcessor, 0.14},
    {FK::kHexPostscript, 0.008}, {FK::kRandom, 0.12}, {FK::kBinhex, 0.06},
    {FK::kGmonProfile, 0.004}, {FK::kExecutable, 0.108},
};
constexpr KindWeight kMixCna[] = {
    {FK::kText, 0.454}, {FK::kWordProcessor, 0.06}, {FK::kExecutable, 0.10},
    {FK::kRandom, 0.18}, {FK::kBinhex, 0.20}, {FK::kGmonProfile, 0.004},
    {FK::kHexPostscript, 0.002},
};

// smeg:/u1 — home directories, including the pathological PBM plot
// directory (§5.5) and assorted hex/BinHex encodings. Small PBM
// weight, outsized effect: it pushes Fletcher-255 above the TCP
// checksum on this filesystem, as the paper found.
constexpr KindWeight kMixU1[] = {
    {FK::kText, 0.32}, {FK::kCSource, 0.27}, {FK::kPbmImage, 0.01},
    {FK::kHexPostscript, 0.01}, {FK::kBinhex, 0.05},
    {FK::kGmonProfile, 0.006}, {FK::kExecutable, 0.08},
    {FK::kRandom, 0.154}, {FK::kWordProcessor, 0.10},
};
// pompano:/usr/local — installed software.
constexpr KindWeight kMixUsrLocal[] = {
    {FK::kExecutable, 0.34}, {FK::kCSource, 0.18}, {FK::kText, 0.26},
    {FK::kRandom, 0.12}, {FK::kHexPostscript, 0.004},
    {FK::kGmonProfile, 0.012}, {FK::kBinhex, 0.084},
};

// Extension beyond the paper: a 2020s-style home directory — mostly
// already-compressed formats (media, archives, wheels) that behave
// like uniform data, plus the source trees and build/profiling
// artifacts that still carry 1995-style structure. "Has the paper's
// effect evaporated?" — bench_modern answers.
constexpr KindWeight kMixModern[] = {
    {FK::kRandom, 0.58}, {FK::kCSource, 0.18}, {FK::kText, 0.12},
    {FK::kTarArchive, 0.04}, {FK::kMailSpool, 0.03},
    {FK::kExecutable, 0.03}, {FK::kGmonProfile, 0.02},
};

constexpr std::size_t kMinSize = 2 * 1024;
constexpr std::size_t kMaxSize = 96 * 1024;

const FsProfile kProfiles[] = {
    // Table 1: NSC.
    {"nsc", "nsc05", 0x05, 56, kMinSize, kMaxSize, kMixOffice},
    {"nsc", "nsc11", 0x11, 56, kMinSize, kMaxSize, kMixServer},
    {"nsc", "nsc23", 0x23, 56, kMinSize, kMaxSize, kMixDesktop},
    {"nsc", "nsc25", 0x25, 56, kMinSize, kMaxSize, kMixBuild},
    {"nsc", "nsc27", 0x27, 56, kMinSize, kMaxSize, kMixOffice},
    {"nsc", "nsc29", 0x29, 56, kMinSize, kMaxSize, kMixServer},
    {"nsc", "nsc49", 0x49, 56, kMinSize, kMaxSize, kMixDesktop},
    {"nsc", "nsc51", 0x51, 56, kMinSize, kMaxSize, kMixBuild},
    {"nsc", "nsc52", 0x52, 56, kMinSize, kMaxSize, kMixOffice},
    // Table 2: SICS.
    {"sics.se", "/src1", 0x1001, 64, kMinSize, kMaxSize, kMixSrc},
    {"sics.se", "/src2", 0x1002, 64, kMinSize, kMaxSize, kMixSrc},
    {"sics.se", "/src3", 0x1003, 64, kMinSize, kMaxSize, kMixSrc},
    {"sics.se", "/src4", 0x1004, 64, kMinSize, kMaxSize, kMixSrc},
    {"sics.se", "/issl", 0x1005, 64, kMinSize, kMaxSize, kMixIssl},
    {"sics.se", "/opt", 0x1006, 64, kMinSize, kMaxSize, kMixOpt},
    {"sics.se", "/solaris", 0x1007, 64, kMinSize, kMaxSize, kMixSolaris},
    {"sics.se", "/cna", 0x1008, 64, kMinSize, kMaxSize, kMixCna},
    // Table 3: Stanford.
    {"smeg.stanford.edu", "/u1", 0x2001, 72, kMinSize, kMaxSize, kMixU1},
    {"pompano.stanford.edu", "/usr/local", 0x2002, 64, kMinSize, kMaxSize,
     kMixUsrLocal},
    // Extension (not part of the paper's tables): a modern mix.
    {"modern", "/home", 0x2026, 64, kMinSize, kMaxSize, kMixModern},
};

}  // namespace

std::string FsProfile::full_name() const {
  if (site == "nsc") return std::string(mount);
  return std::string(site) + ":" + std::string(mount);
}

std::span<const FsProfile> all_profiles() { return kProfiles; }
std::span<const FsProfile> nsc_profiles() {
  return std::span(kProfiles).subspan(0, 9);
}
std::span<const FsProfile> sics_profiles() {
  return std::span(kProfiles).subspan(9, 8);
}
std::span<const FsProfile> stanford_profiles() {
  return std::span(kProfiles).subspan(17, 2);
}

const FsProfile& profile(std::string_view full_name) {
  for (const FsProfile& p : kProfiles)
    if (p.full_name() == full_name) return p;
  throw std::out_of_range("unknown filesystem profile: " +
                          std::string(full_name));
}

Filesystem::Filesystem(const FsProfile& prof, double scale) : prof_(&prof) {
  if (scale <= 0.0)
    throw std::invalid_argument("Filesystem: scale must be positive");
  const auto count = static_cast<std::size_t>(
      std::ceil(static_cast<double>(prof.base_files) * scale));

  util::Rng rng(prof.seed * 0x9e3779b97f4a7c15ULL + 0x5eed);

  // Stratified composition (largest-remainder quotas): the file-kind
  // mix is met exactly, so even a small corpus contains its profile's
  // minority kinds — the pathological files drive each filesystem's
  // miss rate, and random sampling would make table rows noisy.
  double total_w = 0.0;
  for (const auto& kw : prof.mix) total_w += kw.weight;
  std::vector<std::size_t> quota(prof.mix.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainder;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < prof.mix.size(); ++i) {
    const double exact =
        static_cast<double>(count) * prof.mix[i].weight / total_w;
    quota[i] = static_cast<std::size_t>(exact);
    assigned += quota[i];
    remainder.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t j = 0; assigned < count; ++j, ++assigned)
    ++quota[remainder[j % remainder.size()].second];

  std::vector<FileKind> kinds;
  kinds.reserve(count);
  for (std::size_t i = 0; i < prof.mix.size(); ++i)
    kinds.insert(kinds.end(), quota[i], prof.mix[i].kind);
  std::shuffle(kinds.begin(), kinds.end(), rng);

  const double log_min = std::log(static_cast<double>(prof.min_size));
  const double log_max = std::log(static_cast<double>(prof.max_size));

  specs_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FileSpec spec;
    spec.kind = kinds[i];
    spec.seed = rng.next();
    // Log-uniform sizes: many small files, few large, like real
    // filesystems.
    spec.size = static_cast<std::size_t>(
        std::exp(log_min + (log_max - log_min) * rng.uniform01()));
    specs_.push_back(spec);
  }
}

std::string Filesystem::to_manifest() const {
  std::string out;
  char line[96];
  for (const FileSpec& s : specs_) {
    std::snprintf(line, sizeof line, "%s %016llx %zu\n",
                  std::string(name(s.kind)).c_str(),
                  static_cast<unsigned long long>(s.seed), s.size);
    out += line;
  }
  return out;
}

Filesystem Filesystem::from_manifest(const FsProfile& prof,
                                     std::string_view manifest) {
  std::vector<FileSpec> specs;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < manifest.size()) {
    std::size_t eol = manifest.find('\n', pos);
    if (eol == std::string_view::npos) eol = manifest.size();
    const std::string_view line = manifest.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos)
      throw std::invalid_argument("manifest: malformed line " +
                                  std::to_string(line_no));
    const std::string_view kind_name = line.substr(0, sp1);
    FileSpec spec;
    bool found = false;
    for (const FileKind k : kAllKinds) {
      if (name(k) == kind_name) {
        spec.kind = k;
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("manifest: unknown kind '" +
                                  std::string(kind_name) + "'");
    try {
      spec.seed = std::stoull(
          std::string(line.substr(sp1 + 1, sp2 - sp1 - 1)), nullptr, 16);
      spec.size = std::stoull(std::string(line.substr(sp2 + 1)));
    } catch (const std::exception&) {
      throw std::invalid_argument("manifest: bad numbers on line " +
                                  std::to_string(line_no));
    }
    specs.push_back(spec);
  }
  return Filesystem(prof, std::move(specs));
}

util::Bytes Filesystem::file(std::size_t i) const {
  const FileSpec& s = specs_.at(i);
  return generate_file(s.kind, s.seed, s.size);
}

std::size_t Filesystem::approx_total_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : specs_) total += s.size;
  return total;
}

}  // namespace cksum::fsgen
