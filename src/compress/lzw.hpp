// LZW compression in the style of UNIX compress(1), which the paper
// uses for its Table 7 experiment ("The compression was Lempel-Ziv,
// and was performed using the UNIX compress command"). Compressing a
// filesystem and re-running the splice tests restores near-uniform
// checksum behaviour; all we need from the codec is that its output
// has LZW's high-entropy statistics, but a full round-trippable codec
// is implemented so the tests can prove it is a real compressor.
//
// Format (self-describing, not the compress(1) container):
//   magic "LZW1", then a code stream packed LSB-first.
//   Codes: 0..255 literals, 256 CLEAR (dictionary reset), 257 STOP,
//   258.. dictionary entries. Width starts at 9 bits and grows as the
//   dictionary grows, to a maximum of 16; at 2^16 entries a CLEAR is
//   emitted and the dictionary resets, exactly compress(1)'s block
//   mode behaviour.
#pragma once

#include <stdexcept>

#include "util/bytes.hpp"

namespace cksum::compress {

inline constexpr std::uint32_t kClearCode = 256;
inline constexpr std::uint32_t kStopCode = 257;
inline constexpr std::uint32_t kFirstCode = 258;
inline constexpr int kMinWidth = 9;
inline constexpr int kMaxWidth = 16;

/// Thrown by decompress() on malformed input.
class CorruptStream : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// LZW-compress a buffer.
util::Bytes lzw_compress(util::ByteView input);

/// Inverse of lzw_compress. Throws CorruptStream on bad input.
util::Bytes lzw_decompress(util::ByteView input);

}  // namespace cksum::compress
