// Plain-text table formatting for the bench binaries, which print the
// paper's tables next to our measured values.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cksum::core {

struct SpliceStats;

/// "12,345,678" — counts the way the paper's tables print them.
std::string fmt_count(std::uint64_t n);

/// Percentage with adaptive precision: "0.23", "0.0081", "2.3e-08".
std::string fmt_pct(double fraction_of_one);

/// Probability as percent string from a count/denominator pair.
std::string fmt_pct(std::uint64_t num, std::uint64_t den);

/// Scientific notation with 2 significant digits ("1.5e-05").
std::string fmt_sci(double v);

/// Evaluator path mix: "99.9734% fast path (1,234 slow)". The splice
/// simulator resolves almost every splice from partial sums; this line
/// surfaces how often it had to fall back to materialisation.
std::string fmt_path_mix(std::uint64_t fast, std::uint64_t slow);

/// Machine-readable rendering of a splice run: one JSON object with
/// every SpliceStats counter — including the fast/slow evaluator path
/// mix, which the text report only surfaces under --verbose — so the
/// JSON output round-trips everything the text tables print. Embedded
/// verbatim as the "report" member of the telemetry run manifest.
std::string splice_stats_json(const SpliceStats& st,
                              std::string_view transport_name);

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void add_separator();

  /// Render with columns padded to their widest cell. First column is
  /// left-aligned, the rest right-aligned.
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::size_t columns_;
  std::vector<Row> rows_;
};

}  // namespace cksum::core
