// 32-bit Fletcher (16-bit running sums mod 65535).
#include <gtest/gtest.h>

#include "checksum/fletcher32.hpp"
#include "util/rng.hpp"

namespace cksum::alg {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

/// Direct evaluation of the definition.
Fletcher32Pair reference(ByteView data) {
  std::uint64_t a = 0, b = 0;
  const std::size_t words = (data.size() + 1) / 2;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint32_t hi = data[2 * w];
    const std::uint32_t lo = 2 * w + 1 < data.size() ? data[2 * w + 1] : 0;
    const std::uint32_t word = (hi << 8) | lo;
    a += word;
    b += static_cast<std::uint64_t>(words - w) * word;
  }
  return {static_cast<std::uint32_t>(a % 65535),
          static_cast<std::uint32_t>(b % 65535)};
}

TEST(Fletcher32, MatchesDefinition) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Bytes data = random_bytes(seed, 31 + seed * 57);
    EXPECT_EQ(fletcher32_block(ByteView(data)), reference(ByteView(data)));
  }
}

TEST(Fletcher32, EmptyIsZero) {
  EXPECT_EQ(fletcher32_block(ByteView{}), (Fletcher32Pair{0, 0}));
}

TEST(Fletcher32, OddLengthZeroPads) {
  const Bytes odd = {0xab};
  const Bytes even = {0xab, 0x00};
  EXPECT_EQ(fletcher32_block(ByteView(odd)), fletcher32_block(ByteView(even)));
}

class Fletcher32Combine : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fletcher32Combine, MatchesConcatenationAtEvenSplits) {
  // Combination is defined for word-aligned blocks.
  const Bytes data = random_bytes(42, 200);
  const std::size_t split = GetParam();
  const auto x = fletcher32_block(ByteView(data).first(split));
  const auto y = fletcher32_block(ByteView(data).subspan(split));
  const std::size_t y_words = (data.size() - split + 1) / 2;
  EXPECT_EQ(fletcher32_combine(x, y, y_words),
            fletcher32_block(ByteView(data)))
      << "split=" << split;
}

INSTANTIATE_TEST_SUITE_P(EvenSplits, Fletcher32Combine,
                         ::testing::Values(0, 2, 48, 96, 100, 198, 200));

TEST(Fletcher32, CheckWordsSumToZero) {
  for (const std::size_t pos : {0u, 14u, 58u}) {
    Bytes msg = random_bytes(7, 120);
    const std::size_t words = msg.size() / 2;
    const std::size_t p = pos;  // check words at word positions p, p+1
    ASSERT_LT(p + 1, words);
    msg[2 * p] = msg[2 * p + 1] = 0;
    msg[2 * p + 2] = msg[2 * p + 3] = 0;
    const auto rest = fletcher32_block(ByteView(msg));
    std::uint16_t x = 0, y = 0;
    fletcher32_check_words(rest, words - p, x, y);
    util::store_be16(msg.data() + 2 * p, x);
    util::store_be16(msg.data() + 2 * p + 2, y);
    EXPECT_TRUE(fletcher32_verify(ByteView(msg))) << "word pos " << p;
  }
}

TEST(Fletcher32, DetectsWordSwaps) {
  Bytes a = {0x12, 0x34, 0x56, 0x78};
  Bytes b = {0x56, 0x78, 0x12, 0x34};
  EXPECT_NE(fletcher32_block(ByteView(a)), fletcher32_block(ByteView(b)));
}

TEST(Fletcher32, SingleByteCorruptionAlwaysDetected) {
  Bytes data = random_bytes(9, 96);
  const auto good = fletcher32_block(ByteView(data));
  util::Rng rng(10);
  for (int t = 0; t < 500; ++t) {
    Bytes corrupted = data;
    const std::size_t at = rng.below(corrupted.size());
    const auto flip = static_cast<std::uint8_t>(1 + rng.below(255));
    // Skip the 0x0000 <-> 0xFFFF word congruence (the mod-65535 "two
    // zeros", inherited from ones-complement arithmetic).
    corrupted[at] ^= flip;
    const std::uint16_t before = util::load_be16(
        data.data() + (at & ~std::size_t{1}));
    const std::uint16_t after = util::load_be16(
        corrupted.data() + (at & ~std::size_t{1}));
    if ((before == 0x0000 && after == 0xffff) ||
        (before == 0xffff && after == 0x0000))
      continue;
    EXPECT_NE(fletcher32_block(ByteView(corrupted)), good);
  }
}

TEST(Fletcher32, LargeBufferNoOverflow) {
  const Bytes data(8 * 1024 * 1024, 0xff);
  const auto p = fletcher32_block(ByteView(data));
  EXPECT_LT(p.a, 65535u);
  EXPECT_LT(p.b, 65535u);
}

}  // namespace
}  // namespace cksum::alg
