#!/usr/bin/env python3
"""Validate a telemetry run manifest against the cksum-metrics/1 schema.

Usage: check_manifest.py MANIFEST [--require-family FAM]...
                         [--require-kernel [NAME]]
                         [--require-dist]
                         [--require-arq]
                         [--require-storage]
                         [--require-trace]
                         [--diff-deterministic OTHER]

The schema is documented in src/obs/snapshot.hpp and
docs/OBSERVABILITY.md. CI runs this against the manifest produced by
`cksumlab splice --quick --metrics-out` so a malformed export fails the
perf-smoke job rather than silently breaking downstream tooling.

--require-family fails validation unless at least one metric of that
family (the segment before the first '.') is present, e.g.
`--require-family splice --require-family sched`.

--require-kernel fails unless the manifest records which checksum
kernel served the run (the top-level "kernel" member written by
cksumlab/faultlab); with a NAME, the recorded kernel must match it.

--require-dist fails unless the manifest was produced by a distributed
run (`cksumlab splice --serve`, docs/DIST.md): the "dist" member must
be present and complete, every per-worker sub-manifest it lists must
exist and validate, and — the accounting check — every deterministic
counter in the top-level metrics must equal the sum of the per-worker
contributions recorded in "dist.per_worker[].metrics". A shard merged
twice (or dropped) breaks that equality.

--require-arq fails unless the manifest carries the "arq" member that
`faultlab arq` writes: the residual-error/goodput frontier rows, one
per (policy, checksum, fault rate) cell (docs/ARQ.md). Each row must
name a known policy, keep its outcome counters consistent with the
offered load, and record clean termination.

--require-storage fails unless the manifest carries the "storage"
member that `faultlab storage` writes: the commit-block miss-rate
frontier, one row per (checksum, block size, fault class) cell
(docs/STORAGE.md). Each row must name a known fault class, keep the
outcome accounting identity trials == benign + detected + undetected,
and report a miss rate in [0, 1]; the run-level violation counter must
be zero.

--diff-deterministic OTHER fails if any deterministic-tagged metric
(or the report, if both manifests carry one) differs from OTHER's.
Scheduling- and timing-tagged metrics are exempt: CI uses this to
assert that runs under different checksum kernels (or thread counts)
produce bitwise-identical results.
"""

import argparse
import json
import os
import sys

SCHEMA = "cksum-metrics/1"
KINDS = {"counter", "gauge", "histogram"}
TAGS = {"deterministic", "scheduling", "timing"}
HISTOGRAM_BUCKETS = 32


def check_metric(name, m, problems):
    if "." not in name:
        problems.append(f"metric {name!r}: name is not <family>.<metric>")
    if not isinstance(m, dict):
        problems.append(f"metric {name!r}: not an object")
        return
    kind = m.get("kind")
    if kind not in KINDS:
        problems.append(f"metric {name!r}: bad kind {kind!r}")
        return
    if m.get("tag") not in TAGS:
        problems.append(f"metric {name!r}: bad tag {m.get('tag')!r}")
    if kind == "counter":
        v = m.get("value")
        if not isinstance(v, int) or v < 0:
            problems.append(f"metric {name!r}: counter value {v!r}")
    elif kind == "gauge":
        if not isinstance(m.get("value"), int):
            problems.append(f"metric {name!r}: gauge value {m.get('value')!r}")
    else:  # histogram
        for key in ("count", "sum"):
            v = m.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(f"metric {name!r}: histogram {key} {v!r}")
        buckets = m.get("buckets")
        if (not isinstance(buckets, list)
                or len(buckets) != HISTOGRAM_BUCKETS
                or any(not isinstance(b, int) or b < 0 for b in buckets)):
            problems.append(f"metric {name!r}: bad buckets")
        elif isinstance(m.get("count"), int) and sum(buckets) != m["count"]:
            problems.append(
                f"metric {name!r}: bucket total {sum(buckets)} != "
                f"count {m['count']}")


def check_manifest(doc, require_families):
    problems = []
    if not isinstance(doc, dict):
        return ["manifest is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in ("tool", "corpus", "git"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"{key!r} missing or not a non-empty string")
    for key in ("seed", "threads"):
        if not isinstance(doc.get(key), int) or doc.get(key) < 0:
            problems.append(f"{key!r} missing or not a non-negative integer")
    if isinstance(doc.get("threads"), int) and doc["threads"] < 1:
        problems.append("'threads' must be >= 1")
    ws = doc.get("wall_seconds")
    if not isinstance(ws, (int, float)) or ws < 0:
        problems.append(f"'wall_seconds' missing or negative: {ws!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("'metrics' missing or empty")
        metrics = {}
    for name, m in metrics.items():
        check_metric(name, m, problems)
    if "report" in doc and not isinstance(doc["report"], dict):
        problems.append("'report' present but not an object")
    if "kernel" in doc and (not isinstance(doc["kernel"], str)
                            or not doc["kernel"]):
        problems.append("'kernel' present but not a non-empty string")
    if "kernel" in doc and "kernel_reason" not in doc:
        problems.append("'kernel' present without 'kernel_reason' — runs "
                        "must record why that kernel was selected")
    if "kernel_reason" in doc and (not isinstance(doc["kernel_reason"], str)
                                   or not doc["kernel_reason"]):
        problems.append("'kernel_reason' present but not a non-empty string")
    families = {name.split(".", 1)[0] for name in metrics}
    for fam in require_families:
        if fam not in families:
            problems.append(f"required metric family {fam!r} absent")
    return problems


def check_kernel(doc, want):
    """Problems with the manifest's kernel record, [] when clean.

    `want` is None (no check), "" (any kernel acceptable, but one must
    be recorded), or a kernel name that must match exactly.
    """
    if want is None:
        return []
    kernel = doc.get("kernel") if isinstance(doc, dict) else None
    if not isinstance(kernel, str) or not kernel:
        return ["no 'kernel' member — run does not record which "
                "checksum kernel served it"]
    if want and kernel != want:
        return [f"kernel is {kernel!r}, want {want!r}"]
    return []


DIST_JOB_STATES = {"done", "cancelled", "aborted", "running"}


def check_dist_job(job, who, manifest_path):
    """Problems with one per-job record of the "dist" array, plus the
    job's flat metric dict (for the aggregate identity). Returns
    (problems, job_metrics)."""
    problems = []
    v = job.get("job")
    if not isinstance(v, int) or v < 1:
        problems.append(f"{who}: 'job' missing or not a positive "
                        f"integer: {v!r}")
    name = job.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{who}: 'name' missing or empty")
    state = job.get("state")
    if state not in DIST_JOB_STATES:
        problems.append(f"{who}: state {state!r} not one of "
                        f"{sorted(DIST_JOB_STATES)}")
    for key in ("workers", "shards", "reassigned", "stale_results"):
        v = job.get(key)
        if not isinstance(v, int) or v < 0:
            problems.append(f"{who}: missing or not a non-negative "
                            f"integer: {key}={v!r}")
    complete = job.get("complete")
    if not isinstance(complete, bool):
        problems.append(f"{who}: 'complete' missing or not a bool")
    elif state == "done" and not complete:
        problems.append(f"{who}: state is 'done' but complete is false")
    elif state in ("cancelled", "aborted") and complete:
        problems.append(f"{who}: state is {state!r} but complete is true")

    job_metrics = job.get("metrics")
    if not isinstance(job_metrics, dict):
        problems.append(f"{who}: 'metrics' missing or not an object")
        job_metrics = {}
    for mname, mv in job_metrics.items():
        if not isinstance(mv, int) or mv < 0:
            problems.append(f"{who}: metric {mname!r} value {mv!r}")

    per = job.get("per_worker")
    if not isinstance(per, list):
        problems.append(f"{who}: per_worker missing or not a list")
        per = []
    elif not per and state == "done":
        problems.append(f"{who}: job is done but per_worker is empty")

    sums = {}
    for i, w in enumerate(per):
        if not isinstance(w, dict):
            problems.append(f"{who}.per_worker[{i}]: not an object")
            continue
        wwho = f"{who}.per_worker[{i}] (worker {w.get('worker')!r})"
        for key in ("worker", "pid", "shards"):
            v = w.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(f"{wwho}: bad {key} {v!r}")
        metrics = w.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"{wwho}: 'metrics' missing or not an object")
            metrics = {}
        for mname, mv in metrics.items():
            if not isinstance(mv, int) or mv < 0:
                problems.append(f"{wwho}: metric {mname!r} value {mv!r}")
                continue
            sums[mname] = sums.get(mname, 0) + mv
        sub = w.get("manifest")
        if sub is None:
            continue  # worker ran without --metrics-out
        if not isinstance(sub, str) or not sub:
            problems.append(f"{wwho}: 'manifest' not a non-empty string")
            continue
        # The path is recorded as the worker wrote it; also try it
        # relative to the aggregate manifest's directory.
        candidates = [sub, os.path.join(os.path.dirname(manifest_path) or ".",
                                        os.path.basename(sub))]
        subdoc = None
        for cand in candidates:
            try:
                with open(cand) as f:
                    subdoc = json.load(f)
                break
            except (OSError, json.JSONDecodeError):
                continue
        if subdoc is None:
            problems.append(f"{wwho}: sub-manifest {sub!r} missing or "
                            "unreadable")
            continue
        for p in check_manifest(subdoc, []):
            problems.append(f"{wwho}: sub-manifest {sub!r}: {p}")

    # Per-job accounting identity: the job's counters are exactly the
    # sum of the accepted per-worker contributions — for every job,
    # including cancelled ones (stale results must not leak in).
    for mname in set(sums) | set(job_metrics):
        job_v = job_metrics.get(mname, 0)
        worker_v = sums.get(mname, 0)
        if isinstance(job_v, int) and job_v != worker_v:
            problems.append(
                f"{who}: counter {mname!r}: job total {job_v} != sum of "
                f"per-worker contributions {worker_v}")
    return problems, job_metrics


def check_dist(doc, manifest_path):
    """Problems with the manifest's distributed-run record, [] when
    clean. See docs/DIST.md for the "dist" member's shape: an array
    of per-job reports (a single `--serve` run is a 1-element array)."""
    dist = doc.get("dist") if isinstance(doc, dict) else None
    if not isinstance(dist, list) or not dist:
        return ["no 'dist' array — manifest was not produced by a "
                "distributed run (cksumlab splice --serve / JobService)"]
    problems = []
    seen_ids = set()
    agg = {}
    for i, job in enumerate(dist):
        if not isinstance(job, dict):
            problems.append(f"dist[{i}]: not an object")
            continue
        who = f"dist[{i}] (job {job.get('job')!r} {job.get('name')!r})"
        job_problems, job_metrics = check_dist_job(job, who, manifest_path)
        problems.extend(job_problems)
        jid = job.get("job")
        if isinstance(jid, int):
            if jid in seen_ids:
                problems.append(f"{who}: duplicate job id {jid}")
            seen_ids.add(jid)
        for mname, mv in job_metrics.items():
            if isinstance(mv, int) and mv >= 0:
                agg[mname] = agg.get(mname, 0) + mv

    # Aggregate accounting identity: each deterministic counter in the
    # document metrics equals the sum over all jobs (cancelled jobs
    # included — their accepted shards were merged before the cancel).
    metrics = doc.get("metrics") if isinstance(doc.get("metrics"), dict) else {}
    for name, m in metrics.items():
        if not isinstance(m, dict) or m.get("tag") != "deterministic":
            continue
        if m.get("kind") != "counter":
            continue
        total = m.get("value")
        job_sum = agg.get(name, 0)
        if isinstance(total, int) and total != job_sum:
            problems.append(
                f"deterministic counter {name!r}: aggregate {total} != "
                f"sum over jobs {job_sum}")
    for name in agg:
        if name not in metrics:
            problems.append(f"per-job metric {name!r} absent from the "
                            "aggregate metrics")
    return problems


ARQ_POLICIES = {"stop_and_wait", "go_back_n", "selective_repeat"}
ARQ_COUNTERS = ("offered", "delivered_ok", "residual_undetected",
                "residual_lost", "gave_up", "retransmits", "timeouts",
                "check_rejects", "ticks")


def check_arq(doc):
    """Problems with the manifest's ARQ frontier record, [] when clean.
    See docs/ARQ.md for the "arq" member's shape."""
    rows = doc.get("arq") if isinstance(doc, dict) else None
    if not isinstance(rows, list) or not rows:
        return ["no 'arq' member — manifest was not produced by "
                "`faultlab arq`"]
    problems = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"arq[{i}]: not an object")
            continue
        who = (f"arq[{i}] ({row.get('policy')!r}/{row.get('checksum')!r}"
               f"@{row.get('fault_rate')!r})")
        if row.get("policy") not in ARQ_POLICIES:
            problems.append(f"{who}: unknown policy {row.get('policy')!r}")
        if not isinstance(row.get("checksum"), str) or not row["checksum"]:
            problems.append(f"{who}: 'checksum' missing or empty")
        rate = row.get("fault_rate")
        if not isinstance(rate, (int, float)) or not 0 <= rate <= 1:
            problems.append(f"{who}: fault_rate {rate!r} not in [0, 1]")
        for key in ARQ_COUNTERS:
            v = row.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(f"{who}: bad {key} {v!r}")
        for key in ("goodput", "mean_latency"):
            v = row.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                problems.append(f"{who}: bad {key} {v!r}")
        if row.get("terminated") is not True:
            problems.append(f"{who}: terminated is not true — the run "
                            "hung or tripped the event cap")
        # Outcome accounting: every offered payload was delivered OK,
        # delivered corrupted, abandoned, or lost — never more than
        # offered in any single bucket.
        offered = row.get("offered")
        if isinstance(offered, int):
            for key in ("delivered_ok", "residual_undetected",
                        "residual_lost", "gave_up"):
                v = row.get(key)
                if isinstance(v, int) and v > offered:
                    problems.append(f"{who}: {key} {v} exceeds "
                                    f"offered {offered}")
        if rate == 0 and isinstance(offered, int):
            if row.get("delivered_ok") != offered:
                problems.append(f"{who}: fault-free cell did not deliver "
                                "every payload")
    return problems


STORAGE_FAULTS = {"torn", "misdirected", "lost", "corrupt"}
STORAGE_COUNTERS = ("trials", "benign", "detected", "undetected",
                    "run_heavy_trials", "run_heavy_scored",
                    "run_heavy_undetected")


def check_storage(doc):
    """Problems with the manifest's storage frontier record, [] when
    clean. See docs/STORAGE.md for the "storage" member's shape."""
    st = doc.get("storage") if isinstance(doc, dict) else None
    if not isinstance(st, dict):
        return ["no 'storage' member — manifest was not produced by "
                "`faultlab storage`"]
    problems = []
    for key in ("seed", "trials", "undetected", "violations"):
        v = st.get(key)
        if not isinstance(v, int) or v < 0:
            problems.append(f"storage.{key}: missing or not a non-negative "
                            f"integer: {v!r}")
    if st.get("violations", 0) != 0:
        problems.append(f"storage.violations is {st.get('violations')!r} — "
                        "a sealed block failed its own verification")
    rows = st.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("storage.rows missing or empty")
        rows = []
    total_trials = total_undetected = 0
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"storage.rows[{i}]: not an object")
            continue
        who = (f"storage.rows[{i}] ({row.get('key')!r}/{row.get('fault')!r}"
               f"@{row.get('block_size')!r})")
        for key in ("algorithm", "key"):
            if not isinstance(row.get(key), str) or not row[key]:
                problems.append(f"{who}: '{key}' missing or empty")
        if row.get("fault") not in STORAGE_FAULTS:
            problems.append(f"{who}: unknown fault class "
                            f"{row.get('fault')!r}")
        bs = row.get("block_size")
        if not isinstance(bs, int) or bs <= 0 or bs % 512 != 0:
            problems.append(f"{who}: block_size {bs!r} not a positive "
                            "multiple of 512")
        for key in STORAGE_COUNTERS:
            v = row.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(f"{who}: bad {key} {v!r}")
        mr = row.get("miss_rate")
        if not isinstance(mr, (int, float)) or not 0 <= mr <= 1:
            problems.append(f"{who}: miss_rate {mr!r} not in [0, 1]")
        # The outcome accounting identity: every trial scored exactly
        # one way, and the run-heavy slice is a subset of the whole.
        counts = {k: row.get(k) for k in STORAGE_COUNTERS}
        if all(isinstance(v, int) for v in counts.values()):
            if (counts["trials"] != counts["benign"] + counts["detected"]
                    + counts["undetected"]):
                problems.append(f"{who}: benign + detected + undetected != "
                                "trials")
            if counts["run_heavy_trials"] > counts["trials"]:
                problems.append(f"{who}: run_heavy_trials exceeds trials")
            if counts["run_heavy_scored"] > counts["run_heavy_trials"]:
                problems.append(f"{who}: run_heavy_scored exceeds "
                                "run_heavy_trials")
            if counts["run_heavy_undetected"] > counts["run_heavy_scored"]:
                problems.append(f"{who}: run_heavy_undetected exceeds "
                                "run_heavy_scored")
            total_trials += counts["trials"]
            total_undetected += counts["undetected"]
    if (isinstance(st.get("trials"), int) and not problems
            and st["trials"] != total_trials):
        problems.append(f"storage.trials {st['trials']} != sum of row "
                        f"trials {total_trials}")
    if (isinstance(st.get("undetected"), int) and not problems
            and st["undetected"] != total_undetected):
        problems.append(f"storage.undetected {st['undetected']} != sum of "
                        f"row undetected {total_undetected}")
    return problems


TRACE_REJECTS = ("truncated", "link_too_short", "non_ipv4", "header",
                 "checksum", "orphan")


def check_trace(doc):
    """Problems with the manifest's trace-ingest record, [] when clean.
    See docs/TRACE.md for the "trace" member's shape."""
    tr = doc.get("trace") if isinstance(doc, dict) else None
    if not isinstance(tr, dict):
        return ["no 'trace' member — manifest was not produced by "
                "`cksumlab trace`"]
    problems = []
    if not isinstance(tr.get("capture"), str) or not tr["capture"]:
        problems.append("trace.capture missing or empty")
    if tr.get("linktype") not in (1, 101):
        problems.append(f"trace.linktype {tr.get('linktype')!r} is neither "
                        "LINKTYPE_ETHERNET (1) nor LINKTYPE_RAW (101)")
    sl = tr.get("snaplen")
    if not isinstance(sl, int) or not 1 <= sl <= (1 << 20):
        problems.append(f"trace.snaplen {sl!r} outside the reader's "
                        "accepted range 1..1048576")
    for key in ("records", "accepted", "rejected", "files"):
        v = tr.get(key)
        if not isinstance(v, int) or v < 0:
            problems.append(f"trace.{key}: missing or not a non-negative "
                            f"integer: {v!r}")
    rejects = tr.get("rejects")
    if not isinstance(rejects, dict):
        problems.append("trace.rejects missing or not an object")
        rejects = {}
    for key in TRACE_REJECTS:
        v = rejects.get(key)
        if not isinstance(v, int) or v < 0:
            problems.append(f"trace.rejects.{key}: missing or not a "
                            f"non-negative integer: {v!r}")
    if not problems:
        # The ingest accounting identities: every record scored exactly
        # one way, and a file needs at least one accepted packet.
        if tr["records"] != tr["accepted"] + tr["rejected"]:
            problems.append("trace accounting: accepted + rejected != "
                            "records")
        if tr["rejected"] != sum(rejects[k] for k in TRACE_REJECTS):
            problems.append("trace accounting: rejected != sum of the "
                            "reject classes")
        if tr["files"] > tr["accepted"]:
            problems.append("trace.files exceeds accepted packet count")
    prof = tr.get("profile")
    if not isinstance(prof, dict):
        problems.append("trace.profile missing or not an object")
    else:
        for key in ("bytes", "cells", "zero_runs", "ff_runs"):
            v = prof.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(f"trace.profile.{key}: missing or not a "
                                f"non-negative integer: {v!r}")
        for key in ("byte_entropy_bits", "word_entropy_bits",
                    "cell_entropy_bits", "zero_fraction", "cell_pmax"):
            v = prof.get(key)
            if not isinstance(v, (int, float)) or v < 0:
                problems.append(f"trace.profile.{key}: missing or "
                                f"negative: {v!r}")
        if isinstance(prof.get("byte_entropy_bits"), (int, float)) \
                and prof["byte_entropy_bits"] > 8.0:
            problems.append("trace.profile.byte_entropy_bits exceeds 8")
    return problems


def deterministic_view(doc):
    """The portions of a manifest that must be invariant across kernel
    selections and thread counts: deterministic-tagged metrics plus the
    embedded report (when present)."""
    metrics = doc.get("metrics") if isinstance(doc, dict) else {}
    det = {name: m for name, m in (metrics or {}).items()
           if isinstance(m, dict) and m.get("tag") == "deterministic"}
    return {"metrics": det, "report": doc.get("report")}


def diff_deterministic(doc, other_doc, other_path):
    """Differences between the two manifests' deterministic views."""
    mine = deterministic_view(doc)
    theirs = deterministic_view(other_doc)
    problems = []
    for name in sorted(set(mine["metrics"]) | set(theirs["metrics"])):
        a = mine["metrics"].get(name)
        b = theirs["metrics"].get(name)
        if a != b:
            problems.append(
                f"deterministic metric {name!r} differs from "
                f"{other_path}: {a!r} vs {b!r}")
    if (mine["report"] is not None and theirs["report"] is not None
            and mine["report"] != theirs["report"]):
        problems.append(f"embedded report differs from {other_path}")
    return problems


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("manifest")
    ap.add_argument("--require-family", action="append", default=[],
                    metavar="FAM")
    ap.add_argument("--require-kernel", nargs="?", const="", default=None,
                    metavar="NAME",
                    help="require the manifest to record its checksum "
                         "kernel (optionally a specific one)")
    ap.add_argument("--require-dist", action="store_true",
                    help="require a complete distributed-run record "
                         "whose per-worker sums match the aggregate")
    ap.add_argument("--require-arq", action="store_true",
                    help="require a well-formed ARQ frontier record "
                         "(faultlab arq --metrics-out)")
    ap.add_argument("--require-storage", action="store_true",
                    help="require a well-formed storage frontier record "
                         "(faultlab storage --metrics-out)")
    ap.add_argument("--require-trace", action="store_true",
                    help="require a well-formed trace-ingest record "
                         "(cksumlab trace --metrics-out)")
    ap.add_argument("--diff-deterministic", metavar="OTHER",
                    help="fail if deterministic-tagged metrics or the "
                         "report differ from manifest OTHER")
    args = ap.parse_args()

    try:
        with open(args.manifest) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_manifest: {args.manifest}: {e}", file=sys.stderr)
        return 1

    problems = check_manifest(doc, args.require_family)
    problems += check_kernel(doc, args.require_kernel)
    if args.require_dist:
        problems += check_dist(doc, args.manifest)
    if args.require_arq:
        problems += check_arq(doc)
    if args.require_storage:
        problems += check_storage(doc)
    if args.require_trace:
        problems += check_trace(doc)
    if args.diff_deterministic:
        try:
            with open(args.diff_deterministic) as f:
                other = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_manifest: {args.diff_deterministic}: {e}",
                  file=sys.stderr)
            return 1
        problems += diff_deterministic(doc, other, args.diff_deterministic)
    if problems:
        for p in problems:
            print(f"check_manifest: {args.manifest}: {p}", file=sys.stderr)
        return 1
    nmetrics = len(doc["metrics"])
    kernel = (f", kernel {doc['kernel']}"
              if isinstance(doc.get("kernel"), str) else "")
    print(f"{args.manifest}: valid {SCHEMA} manifest "
          f"({doc['tool']}, {nmetrics} metrics{kernel})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
