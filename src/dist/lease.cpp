#include "dist/lease.hpp"

#include <algorithm>

namespace cksum::dist {

LeaseTable::LeaseTable(std::size_t nfiles, std::size_t shard_files) {
  shard_files = std::max<std::size_t>(1, shard_files);
  for (std::size_t begin = 0; begin < nfiles; begin += shard_files) {
    Shard s;
    s.begin = begin;
    s.end = std::min(nfiles, begin + shard_files);
    shards_.push_back(s);
  }
}

std::optional<std::size_t> LeaseTable::acquire(std::uint64_t worker,
                                               std::uint64_t deadline) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    if (s.state != Shard::State::kPending) continue;
    s.state = Shard::State::kLeased;
    s.epoch++;
    s.holder = worker;
    s.deadline = deadline;
    s.grants++;
    return i;
  }
  return std::nullopt;
}

void LeaseTable::extend(std::size_t shard, std::uint64_t epoch,
                        std::uint64_t worker, std::uint64_t deadline) {
  if (shard >= shards_.size()) return;
  Shard& s = shards_[shard];
  if (s.state != Shard::State::kLeased || s.epoch != epoch ||
      s.holder != worker)
    return;
  s.deadline = std::max(s.deadline, deadline);
}

DeliverOutcome LeaseTable::deliver(std::size_t shard, std::uint64_t epoch,
                                   std::uint64_t worker) {
  if (shard >= shards_.size()) return DeliverOutcome::kUnknown;
  Shard& s = shards_[shard];
  if (s.state == Shard::State::kDone) return DeliverOutcome::kDuplicate;
  if (s.state != Shard::State::kLeased || s.epoch != epoch ||
      s.holder != worker)
    return DeliverOutcome::kStale;
  s.state = Shard::State::kDone;
  done_++;
  return DeliverOutcome::kAccepted;
}

std::size_t LeaseTable::expire(std::uint64_t now) {
  std::size_t n = 0;
  for (Shard& s : shards_) {
    if (s.state == Shard::State::kLeased && s.deadline < now) {
      s.state = Shard::State::kPending;
      n++;
    }
  }
  return n;
}

std::size_t LeaseTable::revoke_worker(std::uint64_t worker) {
  std::size_t n = 0;
  for (Shard& s : shards_) {
    if (s.state == Shard::State::kLeased && s.holder == worker) {
      s.state = Shard::State::kPending;
      n++;
    }
  }
  return n;
}

std::size_t LeaseTable::reassigned_count() const {
  std::size_t n = 0;
  for (const Shard& s : shards_)
    if (s.grants > 1) n += s.grants - 1;
  return n;
}

}  // namespace cksum::dist
