// The SWAR tier's Internet checksum: eight message bytes per 64-bit
// load, treated as four 16-bit ones-complement lanes.
//
// Each loaded word is split into its 32-bit halves and both are added
// into a single 64-bit accumulator:
//
//   acc += (w & 0xffffffff) + (w >> 32)
//
// so every iteration adds less than 2^33 and the end-around carries
// accumulate losslessly in the accumulator's top bits — no per-
// iteration carry fixup, one fold chain at the end. The fold produces
// native-endian lanes; one byte swap of the folded 16-bit sum repairs
// all lanes at once on little-endian machines (RFC 1071 §2, the same
// trick alg::internet_sum_wide uses).
//
// Misaligned heads and sub-word tails run through the word-at-a-time
// path standalone and are composed with the RFC 1071 block rule: a
// piece preceded by an odd number of bytes contributes its sum
// byte-swapped. The composition is bitwise-identical to one scalar
// pass because every piece sum (and the composed ones_add chain) maps
// "plain sum zero" to 0x0000 and every other multiple of 65535 to
// 0xFFFF — the same representative rule the scalar fold follows.
#include "checksum/kernels/impl.hpp"

#include <bit>
#include <cstring>

#include "checksum/internet.hpp"

namespace cksum::alg::kern::impl {

namespace {

/// Below this the alignment bookkeeping costs more than it saves.
constexpr std::size_t kSwarMinBytes = 64;

/// 8-byte blocks between accumulator folds. Each block adds < 2^33, so
/// 2^30 blocks stay below 2^63; only multi-gigabyte buffers ever hit a
/// mid-stream fold.
constexpr std::size_t kSwarFoldBlocks = std::size_t{1} << 30;

std::uint16_t fold16(std::uint64_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xffffu) + (acc >> 16);
  return static_cast<std::uint16_t>(acc);
}

}  // namespace

std::uint16_t swar_internet_sum(util::ByteView data) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if (n < kSwarMinBytes) return slicing_internet_sum(data);

  std::uint16_t sum = 0;
  bool odd = false;

  // Head: scalar words up to the first 8-byte boundary.
  const std::size_t misalign =
      reinterpret_cast<std::uintptr_t>(p) & std::uintptr_t{7};
  if (misalign != 0) {
    const std::size_t head = 8 - misalign;
    sum = slicing_internet_sum(util::ByteView(p, head));
    odd = (head & 1) != 0;
    p += head;
    n -= head;
  }

  // Middle: aligned 64-bit SWAR. The middle is a whole number of
  // 8-byte blocks, so it never changes the running parity.
  std::size_t blocks = n / 8;
  if (blocks > 0) {
    n -= blocks * 8;
    std::uint64_t acc = 0;
    while (blocks > 0) {
      std::size_t run = blocks < kSwarFoldBlocks ? blocks : kSwarFoldBlocks;
      blocks -= run;
      while (run-- > 0) {
        std::uint64_t w;
        std::memcpy(&w, p, 8);
        acc += (w & 0xffffffffu) + (w >> 32);
        p += 8;
      }
      acc = (acc & 0xffffu) + (acc >> 16);
    }
    std::uint16_t mid = fold16(acc);
    if constexpr (std::endian::native == std::endian::little)
      mid = ones_swap(mid);
    sum = internet_combine(sum, mid, odd);
  }

  // Tail: fewer than 8 bytes, scalar, composed at the current parity.
  if (n > 0) sum = internet_combine(sum, slicing_internet_sum(util::ByteView(p, n)), odd);
  return sum;
}

}  // namespace cksum::alg::kern::impl
