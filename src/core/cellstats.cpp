#include "core/cellstats.hpp"

#include <stdexcept>

#include "checksum/fletcher.hpp"
#include "checksum/internet.hpp"
#include "checksum/kernels/kernel.hpp"
#include "util/hash.hpp"

namespace cksum::core {

namespace {
constexpr std::size_t kCell = 48;
}

CellStatsCollector::CellStatsCollector(CellStatsConfig cfg)
    : cfg_(std::move(cfg)) {
  for (std::size_t k : cfg_.ks) {
    blocks_.emplace(k, stats::Histogram(65535));
    local_.emplace(k, LocalCounts{});
  }
}

const stats::Histogram& CellStatsCollector::tcp_blocks(std::size_t k) const {
  const auto it = blocks_.find(k);
  if (it == blocks_.end())
    throw std::out_of_range("tcp_blocks: k not configured");
  return it->second;
}

const CellStatsCollector::LocalCounts& CellStatsCollector::local(
    std::size_t k) const {
  const auto it = local_.find(k);
  if (it == local_.end()) throw std::out_of_range("local: k not configured");
  return it->second;
}

void CellStatsCollector::merge(const CellStatsCollector& other) {
  if (other.blocks_.size() != blocks_.size() ||
      other.cfg_.segment_size != cfg_.segment_size)
    throw std::invalid_argument("CellStatsCollector::merge: config mismatch");
  tcp_cells_.merge(other.tcp_cells_);
  f255_cells_.merge(other.f255_cells_);
  f256_cells_.merge(other.f256_cells_);
  for (auto& [k, hist] : blocks_) hist.merge(other.blocks_.at(k));
  for (auto& [k, lc] : local_) {
    const LocalCounts& o = other.local_.at(k);
    lc.pairs += o.pairs;
    lc.congruent += o.congruent;
    lc.congruent_identical += o.congruent_identical;
  }
  cells_seen_ += other.cells_seen_;
}

void CellStatsCollector::add_file(util::ByteView file) {
  // Full-size cells of this file, in order, as (canonical Internet
  // sum, content hash).
  std::vector<std::uint16_t> sums;
  std::vector<std::uint64_t> hashes;
  sums.reserve(file.size() / kCell + 1);
  hashes.reserve(file.size() / kCell + 1);

  for (std::size_t seg = 0; seg < file.size(); seg += cfg_.segment_size) {
    const std::size_t seg_len = std::min(cfg_.segment_size, file.size() - seg);
    for (std::size_t off = 0; off < seg_len; off += kCell) {
      const std::size_t cell_len = std::min(kCell, seg_len - off);
      const util::ByteView cell = file.subspan(seg + off, cell_len);
      const std::uint16_t sum =
          alg::ones_canonical(alg::kern::internet_sum(cell));
      if (cell_len == kCell) {
        sums.push_back(sum);
        hashes.push_back(util::hash64(cell));
      }
      if (cell_len == kCell || cfg_.include_short_cells) {
        ++cells_seen_;
        tcp_cells_.add(sum % 65535u);
        f255_cells_.add(alg::fletcher_value(
            alg::kern::fletcher_block(cell, alg::FletcherMod::kOnes255)));
        f256_cells_.add(alg::fletcher_value(
            alg::kern::fletcher_block(cell, alg::FletcherMod::kTwos256)));
      }
    }
  }

  const std::size_t window_cells =
      std::max<std::size_t>(1, cfg_.local_window_bytes / kCell);

  for (std::size_t k : cfg_.ks) {
    if (sums.size() < k) continue;
    const std::size_t nblocks = sums.size() - k + 1;

    // Block sums/hashes, sliding one cell at a time.
    std::vector<std::uint16_t> bsums(nblocks);
    std::vector<std::uint64_t> bhash(nblocks);
    for (std::size_t i = 0; i < nblocks; ++i) {
      std::uint32_t s = 0;
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (std::size_t j = 0; j < k; ++j) {
        s += sums[i + j];
        h = util::combine_hash(h, hashes[i + j]);
      }
      bsums[i] = static_cast<std::uint16_t>(s % 65535u);
      bhash[i] = h;
    }

    stats::Histogram& hist = blocks_.at(k);
    for (std::uint16_t s : bsums) hist.add(s);

    // Local pairs: non-overlapping-start pairs within the window.
    LocalCounts& lc = local_.at(k);
    for (std::size_t i = 0; i < nblocks; ++i) {
      const std::size_t jend = std::min(nblocks, i + window_cells + 1);
      for (std::size_t j = i + 1; j < jend; ++j) {
        ++lc.pairs;
        if (bsums[i] == bsums[j]) {
          ++lc.congruent;
          if (bhash[i] == bhash[j]) ++lc.congruent_identical;
        }
      }
    }
  }
}

}  // namespace cksum::core
