#include "faults/channel.hpp"

#include <algorithm>

#include "core/error_inject.hpp"
#include "obs/registry.hpp"

namespace cksum::faults {

namespace {

struct FaultMetrics {
  obs::Counter cells_in, cells_out;
  obs::Counter payload_bursts, hec_injected, hec_dropped, hec_miscorrected,
      duplicates, reorders, eom_flips, misdeliveries, truncations,
      cells_truncated;
};

const FaultMetrics& fmx() {
  static const FaultMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    FaultMetrics v;
    v.cells_in = r.counter("faults.cells_in");
    v.cells_out = r.counter("faults.cells_out");
    v.payload_bursts = r.counter("faults.payload_burst.injected");
    v.hec_injected = r.counter("faults.hec.injected");
    v.hec_dropped = r.counter("faults.hec.dropped");
    v.hec_miscorrected = r.counter("faults.hec.miscorrected");
    v.duplicates = r.counter("faults.duplicate.injected");
    v.reorders = r.counter("faults.reorder.injected");
    v.eom_flips = r.counter("faults.eom_flip.injected");
    v.misdeliveries = r.counter("faults.misdeliver.injected");
    v.truncations = r.counter("faults.truncate.injected");
    v.cells_truncated = r.counter("faults.truncate.cells");
    return v;
  }();
  return m;
}

/// Flushes the per-apply() FaultStats deltas into the registry, one
/// relaxed add per class per stream rather than per event.
void flush_fault_metrics(const FaultStats& before, const FaultStats& after) {
  const FaultMetrics& m = fmx();
  m.cells_in.add(after.cells_in - before.cells_in);
  m.cells_out.add(after.cells_out - before.cells_out);
  m.payload_bursts.add(after.payload_bursts - before.payload_bursts);
  m.hec_injected.add(after.hec_corruptions - before.hec_corruptions);
  m.hec_dropped.add(after.hec_dropped - before.hec_dropped);
  m.hec_miscorrected.add(after.hec_miscorrected - before.hec_miscorrected);
  m.duplicates.add(after.duplicates - before.duplicates);
  m.reorders.add(after.reorders - before.reorders);
  m.eom_flips.add(after.eom_flips - before.eom_flips);
  m.misdeliveries.add(after.misdeliveries - before.misdeliveries);
  m.truncations.add(after.truncations - before.truncations);
  m.cells_truncated.add(after.cells_truncated - before.cells_truncated);
}

}  // namespace

void register_fault_metrics() { (void)fmx(); }

void FaultStats::merge(const FaultStats& o) noexcept {
  cells_in += o.cells_in;
  cells_out += o.cells_out;
  payload_bursts += o.payload_bursts;
  hec_corruptions += o.hec_corruptions;
  hec_dropped += o.hec_dropped;
  hec_miscorrected += o.hec_miscorrected;
  duplicates += o.duplicates;
  reorders += o.reorders;
  eom_flips += o.eom_flips;
  misdeliveries += o.misdeliveries;
  truncations += o.truncations;
  cells_truncated += o.cells_truncated;
}

namespace {

using atm::Cell;

struct Delayed {
  Cell cell;
  std::size_t remaining;  ///< emissions left before release
};

}  // namespace

std::vector<Cell> FaultyChannel::apply(const std::vector<Cell>& stream) {
  const FaultStats before = stats_;
  stats_.cells_in += stream.size();

  // Distinct VCs in this stream — the misdelivery targets.
  std::vector<std::pair<std::uint8_t, std::uint16_t>> vcs;
  for (const Cell& c : stream) {
    const std::pair<std::uint8_t, std::uint16_t> vc{c.header.vpi,
                                                    c.header.vci};
    if (std::find(vcs.begin(), vcs.end(), vc) == vcs.end()) vcs.push_back(vc);
  }

  const unsigned bits_lo = std::clamp(plan_.burst_bits_min, 1u, 64u);
  const unsigned bits_hi = std::clamp(plan_.burst_bits_max, bits_lo, 64u);

  std::vector<Cell> out;
  out.reserve(stream.size() + stream.size() / 8 + 4);
  std::vector<Delayed> held;

  // Emit a cell and release any delayed cells whose window expired.
  // A released cell does not itself advance the countdowns, so a held
  // cell slips past at most `reorder_window` direct emissions.
  const auto emit = [&](const Cell& c) {
    out.push_back(c);
    for (auto it = held.begin(); it != held.end();) {
      if (--it->remaining == 0) {
        out.push_back(it->cell);
        it = held.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (const Cell& in : stream) {
    Cell c = in;

    if (rng_.chance(plan_.payload_burst_rate)) {
      const unsigned len =
          bits_lo + static_cast<unsigned>(rng_.below(bits_hi - bits_lo + 1));
      core::apply_burst(c.payload,
                        core::random_burst(rng_, 8 * atm::kCellPayload, len));
      ++stats_.payload_bursts;
    }

    if (rng_.chance(plan_.eom_flip_rate)) {
      c.header.set_end_of_message(!c.header.end_of_message());
      ++stats_.eom_flips;
    }

    if (rng_.chance(plan_.misdeliver_rate)) {
      if (vcs.size() > 1) {
        std::size_t pick = rng_.below(vcs.size());
        if (vcs[pick] == std::pair{c.header.vpi, c.header.vci})
          pick = (pick + 1) % vcs.size();
        c.header.vpi = vcs[pick].first;
        c.header.vci = vcs[pick].second;
      } else {
        c.header.vci = static_cast<std::uint16_t>(
            c.header.vci ^ (1 + rng_.below(0xffff)));
      }
      ++stats_.misdeliveries;
    }

    if (rng_.chance(plan_.hec_corrupt_rate)) {
      ++stats_.hec_corruptions;
      std::uint8_t hdr[atm::kCellHeaderLen];
      c.header.write(hdr);
      const unsigned flips = std::max(1u, plan_.hec_flip_bits);
      for (unsigned k = 0; k < flips; ++k) {
        const std::uint64_t bit = rng_.below(8 * atm::kCellHeaderLen);
        hdr[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
      }
      const auto reparsed =
          atm::CellHeader::parse(util::ByteView(hdr, atm::kCellHeaderLen));
      if (!reparsed) {
        // The receiver's HEC filter discards the cell.
        ++stats_.hec_dropped;
        continue;
      }
      // Multi-bit flip landed on another valid header: the cell sails
      // on, possibly onto another VC or with a flipped EOM bit.
      c.header = *reparsed;
      ++stats_.hec_miscorrected;
    }

    if (plan_.reorder_window > 0 && rng_.chance(plan_.reorder_rate)) {
      held.push_back({c, 1 + rng_.below(plan_.reorder_window)});
      ++stats_.reorders;
      continue;
    }

    emit(c);
    if (rng_.chance(plan_.duplicate_rate)) {
      emit(c);
      ++stats_.duplicates;
    }
  }

  // Flush cells still held at end of stream, earliest release first.
  std::stable_sort(held.begin(), held.end(),
                   [](const Delayed& a, const Delayed& b) {
                     return a.remaining < b.remaining;
                   });
  for (const Delayed& d : held) out.push_back(d.cell);

  if (!out.empty() && rng_.chance(plan_.truncate_rate)) {
    const std::size_t keep = rng_.below(out.size());
    stats_.cells_truncated += out.size() - keep;
    out.resize(keep);
    ++stats_.truncations;
  }

  stats_.cells_out += out.size();
  flush_fault_metrics(before, stats_);
  return out;
}

}  // namespace cksum::faults
