// §6.2 ablation: filling in the IP header (IP ID, TTL, frag, header
// checksum) vs leaving those 8 bytes zero, as the SIGCOMM '95
// simulator did. The unfilled header makes header cells of all-zero
// packets zero-congruent with their neighbours, inflating the miss
// rate by orders of magnitude — the biggest correction between the
// paper's two versions.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== Ablation (paper §6.2): filled vs unfilled IP header bytes ==\n"
      "\"legacy95\" reproduces the SIGCOMM '95 simulator exactly: the 8 IP\n"
      "bytes outside the pseudo-header left zero and the IP total length\n"
      "in the pseudo-header, which makes zero-payload header cells\n"
      "zero-congruent with zero data cells.\n\n");
  core::TextTable t({"filesystem", "filled miss%", "no-ipck miss%",
                     "legacy95 miss%", "legacy/filled"});
  for (const char* name : {"sics.se:/opt", "sics.se:/solaris", "nsc05"}) {
    const auto& prof = fsgen::profile(name);
    net::PacketConfig filled;
    net::PacketConfig unfilled;
    unfilled.fill_ip_header = false;
    net::PacketConfig legacy;
    legacy.legacy95_headers = true;
    const core::SpliceStats a = core::run_profile(prof, filled, scale);
    const core::SpliceStats b = core::run_profile(prof, unfilled, scale);
    const core::SpliceStats c = core::run_profile(prof, legacy, scale);
    const auto rate = [](const core::SpliceStats& st) {
      return st.remaining ? static_cast<double>(st.missed_transport) /
                                static_cast<double>(st.remaining)
                          : 0.0;
    };
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.0fx",
                  rate(a) > 0 ? rate(c) / rate(a) : 0.0);
    t.add_row({name, core::fmt_pct(rate(a)), core::fmt_pct(rate(b)),
               core::fmt_pct(rate(c)), ratio});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): the legacy simulator inflates the miss "
      "rate by orders of magnitude (the paper saw up to 3); merely "
      "skipping the IP checksum (no-ipck) barely matters.\n");
  return 0;
}
