// C source code generator.
//
// Source trees (the SICS /src1../src4 filesystems) are dominated by a
// tiny alphabet — spaces, braces, identifiers drawn from a small pool,
// near-identical function scaffolding — which is exactly the kind of
// structural repetition that collapses the checksum distribution.
#include <string>
#include <string_view>
#include <vector>

#include "fsgen/generator.hpp"

namespace cksum::fsgen {

namespace {

constexpr std::string_view kTypes[] = {
    "int", "char", "long", "unsigned", "void", "short", "double",
    "size_t", "u_int32_t", "struct buf *", "struct proc *", "caddr_t",
};

constexpr std::string_view kNouns[] = {
    "buf",  "len",   "count", "flags", "index", "state", "error", "size",
    "addr", "entry", "node",  "data",  "head",  "tail",  "next",  "prev",
    "name", "value", "mask",  "offset", "page", "block", "inode", "vp",
};

constexpr std::string_view kVerbs[] = {
    "init", "alloc", "free", "get", "put", "set", "find", "insert",
    "remove", "lookup", "update", "check", "copy", "read", "write",
    "open", "close", "lock", "unlock", "map",
};

constexpr std::string_view kHeaders[] = {
    "<sys/param.h>", "<sys/systm.h>", "<sys/proc.h>", "<sys/buf.h>",
    "<sys/malloc.h>", "<stdio.h>", "<stdlib.h>", "<string.h>",
    "<errno.h>", "<unistd.h>",
};

class SourceWriter {
 public:
  SourceWriter(util::Rng& rng, util::Bytes& out) : rng_(rng), out_(out) {}

  void line(std::string_view text, int indent) {
    for (int i = 0; i < indent; ++i) emit("\t");
    emit(text);
    emit("\n");
  }

  void emit(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }

  std::string identifier() {
    std::string id(kNouns[rng_.below(std::size(kNouns))]);
    if (rng_.chance(0.3)) {
      id += '_';
      id += kNouns[rng_.below(std::size(kNouns))];
    }
    return id;
  }

  std::string function_name(std::string_view module) {
    std::string fn(module);
    fn += '_';
    fn += kVerbs[rng_.below(std::size(kVerbs))];
    if (rng_.chance(0.4)) {
      fn += '_';
      fn += kNouns[rng_.below(std::size(kNouns))];
    }
    return fn;
  }

  void file_header(std::string_view module) {
    emit("/*\n * ");
    emit(module);
    emit(".c - ");
    emit(kVerbs[rng_.below(std::size(kVerbs))]);
    emit(" routines for the ");
    emit(module);
    emit(" subsystem.\n *\n * Copyright (c) 1995\n */\n\n");
    const std::size_t n_headers =
        static_cast<std::size_t>(rng_.between(3, 7));
    for (std::size_t i = 0; i < n_headers; ++i) {
      emit("#include ");
      emit(kHeaders[rng_.below(std::size(kHeaders))]);
      emit("\n");
    }
    emit("\n");
  }

  void globals(std::string_view module) {
    const std::size_t n = static_cast<std::size_t>(rng_.between(1, 4));
    for (std::size_t i = 0; i < n; ++i) {
      emit("static ");
      emit(kTypes[rng_.below(std::size(kTypes))]);
      emit(" ");
      emit(module);
      emit("_");
      emit(identifier());
      if (rng_.chance(0.5)) emit(" = 0");
      emit(";\n");
    }
    emit("\n");
  }

  void function(std::string_view module) {
    const std::string fn = function_name(module);
    const std::string arg1 = identifier();
    const std::string arg2 = identifier();
    emit(kTypes[rng_.below(std::size(kTypes))]);
    emit("\n");
    emit(fn);
    emit("(");
    emit(kTypes[rng_.below(std::size(kTypes))]);
    emit(" ");
    emit(arg1);
    emit(", int ");
    emit(arg2);
    emit(")\n{\n");
    line("int i, error = 0;", 1);
    const std::string local = identifier();
    emit("\t");
    emit(kTypes[rng_.below(std::size(kTypes))]);
    emit(" ");
    emit(local);
    emit(";\n\n");

    const std::size_t stmts = static_cast<std::size_t>(rng_.between(2, 6));
    for (std::size_t s = 0; s < stmts; ++s) {
      switch (rng_.below(5)) {
        case 0:
          emit("\tif (" + arg1 + " == NULL)\n\t\treturn (EINVAL);\n");
          break;
        case 1:
          emit("\tfor (i = 0; i < " + arg2 + "; i++) {\n");
          emit("\t\tif (" + local + "[i] != 0)\n");
          emit("\t\t\tcontinue;\n");
          emit("\t\t" + local + "[i] = " + arg1 + ";\n");
          emit("\t}\n");
          break;
        case 2:
          emit("\t" + local + " = " + module_call(module) + "(" + arg1 +
               ", " + arg2 + ");\n");
          emit("\tif (" + local + " == NULL) {\n");
          emit("\t\terror = ENOMEM;\n");
          emit("\t\tgoto out;\n");
          emit("\t}\n");
          break;
        case 3:
          emit("\tbcopy(" + arg1 + ", " + local + ", sizeof(" + local +
               "));\n");
          break;
        default:
          emit("\t" + arg2 + " += sizeof(struct " + std::string(module) +
               ");\n");
          break;
      }
    }
    emit("out:\n\treturn (error);\n}\n\n");
  }

 private:
  std::string module_call(std::string_view module) {
    return std::string(module) + '_' + std::string(kVerbs[rng_.below(std::size(kVerbs))]);
  }

  util::Rng& rng_;
  util::Bytes& out_;
};

}  // namespace

util::Bytes generate_c_source(util::Rng& rng, std::size_t approx_size) {
  util::Bytes out;
  out.reserve(approx_size + 256);
  SourceWriter w(rng, out);

  const std::string module(kNouns[rng.below(std::size(kNouns))]);
  w.file_header(module);
  w.globals(module);
  while (out.size() < approx_size) w.function(module);
  return out;
}

}  // namespace cksum::fsgen
