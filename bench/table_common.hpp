// Shared helpers for the table-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "stats/binomial.hpp"

namespace cksum::bench {

/// Print one Table 1/2/3-style block for a filesystem profile: totals,
/// header-caught, identical, remaining, and CRC/TCP miss rates, with
/// the uniform-data expectation alongside.
inline void print_crc_tcp_block(const fsgen::FsProfile& prof, double scale) {
  const net::PacketConfig cfg;  // standard TCP, header checksum
  const core::SpliceStats st = core::run_profile(prof, cfg, scale);

  std::printf("%-28s %10s files  %12s pkts\n", prof.full_name().c_str(),
              core::fmt_count(st.files).c_str(),
              core::fmt_count(st.packets).c_str());
  core::TextTable t({"", "count", "% remaining splices"});
  t.add_row({"Total", core::fmt_count(st.total), ""});
  t.add_row({"Caught by Header", core::fmt_count(st.caught_by_header), ""});
  t.add_row({"Identical data", core::fmt_count(st.identical), ""});
  t.add_row({"Remaining splices", core::fmt_count(st.remaining), "100"});
  t.add_row({"Missed by CRC", core::fmt_count(st.missed_crc),
             core::fmt_pct(st.missed_crc, st.remaining)});
  t.add_row({"Missed by TCP", core::fmt_count(st.missed_transport),
             core::fmt_pct(st.missed_transport, st.remaining)});
  t.print(std::cout);
  const stats::Interval ci =
      stats::wilson_interval(st.missed_transport, st.remaining);
  std::printf("  TCP miss rate 95%% CI: [%s%%, %s%%]\n",
              core::fmt_pct(ci.lo).c_str(), core::fmt_pct(ci.hi).c_str());
  std::printf(
      "  (uniform-data expectation: CRC %s%%, TCP %s%%; missed by both: "
      "%s)\n\n",
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kCrc32)).c_str(),
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kInternet)).c_str(),
      core::fmt_count(st.missed_both).c_str());
}

inline void print_crc_tcp_table(const char* title,
                                std::span<const fsgen::FsProfile> profiles) {
  const double scale = core::scale_from_env();
  std::printf("== %s ==\n", title);
  std::printf(
      "(256-byte TCP segments over AAL5; synthetic filesystem profiles — "
      "see DESIGN.md; scale=%.2f via CKSUMLAB_SCALE)\n\n",
      scale);
  for (const auto& prof : profiles) print_crc_tcp_block(prof, scale);
}

}  // namespace cksum::bench
