// IPv4 fragmentation and reassembly — the paper's abstract extends the
// splice analysis to "fragmentation-and-reassembly error models": when
// a host confuses fragments of two datagrams (stale reassembly state,
// colliding IP IDs), the rebuilt datagram mixes fragment payloads the
// same way an AAL5 splice mixes cells, and the checksum contribution
// of each fragment is coloured by its offset.
//
// Fragment payload sizes are multiples of 8 bytes (the IP fragment
// offset unit), as required by RFC 791.
#pragma once

#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace cksum::net {

struct Fragment {
  Ipv4Header header;   ///< offset/MF set; per-fragment length + checksum
  util::Bytes payload; ///< this fragment's slice of the original payload

  std::size_t offset_bytes() const noexcept {
    return static_cast<std::size_t>(header.frag_off & 0x1fff) * 8;
  }
  bool more_fragments() const noexcept {
    return (header.frag_off & 0x2000) != 0;
  }

  /// Serialise to a wire datagram (header + payload).
  util::Bytes to_bytes() const;
};

/// Fragment an IP datagram into fragments whose payloads are at most
/// `mtu - 20` bytes (rounded down to a multiple of 8 except for the
/// last fragment). `mtu` must allow at least 8 payload bytes.
std::vector<Fragment> fragment_datagram(util::ByteView ip_datagram,
                                        std::size_t mtu);

/// Reassemble fragments (any order) into the original datagram.
/// Returns nullopt if the fragments do not tile a complete datagram
/// (gaps, overlaps with disagreeing lengths, missing last fragment).
/// NOTE: like a real stack, reassembly only checks structure — it
/// cannot tell whose fragments these were. That is the error model.
std::optional<util::Bytes> reassemble(std::vector<Fragment> fragments);

}  // namespace cksum::net
