#include "obs/registry.hpp"

#include <algorithm>

namespace cksum::obs {

std::string_view name(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

std::string_view name(Tag t) noexcept {
  switch (t) {
    case Tag::kDeterministic: return "deterministic";
    case Tag::kScheduling: return "scheduling";
    case Tag::kTiming: return "timing";
  }
  return "?";
}

const MetricValue* Snapshot::find(std::string_view metric_name) const noexcept {
  for (const MetricValue& m : metrics)
    if (m.name == metric_name) return &m;
  return nullptr;
}

namespace {
std::atomic<std::uint64_t> g_registry_serial{1};
}  // namespace

Registry::Registry() : id_(g_registry_serial.fetch_add(1)) {}

Registry& Registry::global() {
  static Registry r;
  return r;
}

thread_local Registry::ShardCache Registry::tls_shard_{0, nullptr, nullptr};

Registry::Shard& Registry::shard_slow() {
  // Full per-thread cache of (registry id -> shard), behind the
  // one-entry inline fast path (only tests touch several registries
  // from one thread, so the scan is cold).
  struct CacheEntry {
    std::uint64_t id;
    Registry* reg;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.reg == this && e.id == id_) {
      tls_shard_ = {id_, this, e.shard};
      return *e.shard;
    }
  }
  auto owned = std::make_unique<Shard>();
  Shard* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  cache.push_back({id_, this, raw});
  tls_shard_ = {id_, this, raw};
  return *raw;
}

std::uint32_t Registry::alloc(std::string_view metric_name, Kind kind, Tag tag,
                              std::uint32_t nslots, bool& ok) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricDef& d : defs_) {
    if (d.name == metric_name) {
      ok = d.kind == kind;  // same-name/other-kind clash -> inert handle
      return d.slot;
    }
  }
  if (next_slot_ + nslots > kMaxSlots) {
    ok = false;
    return 0;
  }
  const std::uint32_t slot = next_slot_;
  defs_.push_back({std::string(metric_name), kind, tag, slot, nslots});
  next_slot_ += nslots;
  ok = true;
  return slot;
}

Counter Registry::counter(std::string_view metric_name, Tag tag) {
#ifndef OBS_DISABLE
  bool ok = false;
  const std::uint32_t slot = alloc(metric_name, Kind::kCounter, tag, 1, ok);
  if (ok) return Counter(this, slot);
#else
  (void)metric_name;
  (void)tag;
#endif
  return {};
}

Gauge Registry::gauge(std::string_view metric_name, Tag tag) {
#ifndef OBS_DISABLE
  bool ok = false;
  const std::uint32_t slot = alloc(metric_name, Kind::kGauge, tag, 1, ok);
  if (ok) return Gauge(this, slot);
#else
  (void)metric_name;
  (void)tag;
#endif
  return {};
}

Histogram Registry::histogram(std::string_view metric_name, Tag tag) {
#ifndef OBS_DISABLE
  bool ok = false;
  const std::uint32_t slot = alloc(metric_name, Kind::kHistogram, tag,
                                   1 + kHistogramBuckets, ok);
  if (ok) return Histogram(this, slot);
#else
  (void)metric_name;
  (void)tag;
#endif
  return {};
}

Snapshot Registry::snapshot() const {
  // Collect external contributions before taking the lock: collect
  // callbacks own their own synchronisation and must stay free to
  // touch this registry-adjacent state without ordering against mu_.
  std::vector<SnapshotSource> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources = sources_;
  }
  std::vector<std::pair<std::string, std::uint64_t>> extra;
  for (const SnapshotSource& s : sources) {
    auto part = s.collect();
    extra.insert(extra.end(), part.begin(), part.end());
  }
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.metrics.reserve(defs_.size());
  const auto sum_slot = [&](std::uint32_t slot) {
    std::uint64_t total = 0;
    for (const auto& sh : shards_)
      total += sh->slots[slot].load(std::memory_order_relaxed);
    return total;
  };
  for (const MetricDef& d : defs_) {
    MetricValue v;
    v.name = d.name;
    v.kind = d.kind;
    v.tag = d.tag;
    switch (d.kind) {
      case Kind::kCounter:
        v.value = sum_slot(d.slot);
        for (const auto& [extra_name, extra_value] : extra)
          if (extra_name == d.name) v.value += extra_value;
        break;
      case Kind::kGauge:
        v.gauge = static_cast<std::int64_t>(sum_slot(d.slot));
        break;
      case Kind::kHistogram:
        v.sum = sum_slot(d.slot);
        v.buckets.resize(kHistogramBuckets);
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
          v.buckets[i] = sum_slot(d.slot + 1 + static_cast<std::uint32_t>(i));
          v.value += v.buckets[i];
        }
        break;
    }
    out.metrics.push_back(std::move(v));
  }
  return out;
}

void Registry::reset() noexcept {
  std::vector<SnapshotSource> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& sh : shards_)
      for (auto& slot : sh->slots) slot.store(0, std::memory_order_relaxed);
    sources = sources_;
  }
  for (const SnapshotSource& s : sources) s.reset();
}

void Registry::add_snapshot_source(SnapshotSource source) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.push_back(source);
}

}  // namespace cksum::obs
