// LZW codec: round-trips over every generator's output, edge cases,
// corruption handling, and the statistical property Table 7 relies on
// (compressed output looks uniform to the checksums).
#include <gtest/gtest.h>

#include "compress/lzw.hpp"
#include "fsgen/generator.hpp"
#include "stats/histogram.hpp"
#include "stats/uniformity.hpp"
#include "util/rng.hpp"

namespace cksum::compress {
namespace {

using util::ByteView;
using util::Bytes;

void expect_roundtrip(const Bytes& input) {
  const Bytes packed = lzw_compress(ByteView(input));
  const Bytes unpacked = lzw_decompress(ByteView(packed));
  ASSERT_EQ(unpacked.size(), input.size());
  EXPECT_EQ(unpacked, input);
}

TEST(Lzw, EmptyInput) { expect_roundtrip({}); }

TEST(Lzw, SingleByte) { expect_roundtrip({0x42}); }

TEST(Lzw, TwoBytes) { expect_roundtrip({0x42, 0x42}); }

TEST(Lzw, AllSameByte) { expect_roundtrip(Bytes(10000, 0xAA)); }

TEST(Lzw, KOmegaPattern) {
  // The classic aba ababa... pattern that triggers the K-omega case.
  Bytes input;
  for (int i = 0; i < 1000; ++i) {
    input.push_back('a');
    if (i % 2 == 0) input.push_back('b');
  }
  expect_roundtrip(input);
}

TEST(Lzw, AllByteValues) {
  Bytes input;
  for (int rep = 0; rep < 16; ++rep)
    for (int v = 0; v < 256; ++v)
      input.push_back(static_cast<std::uint8_t>(v));
  expect_roundtrip(input);
}

TEST(Lzw, RandomDataRoundTrips) {
  Bytes input(50000);
  util::Rng rng(1);
  rng.fill(input);
  expect_roundtrip(input);
}

TEST(Lzw, LargeRepetitiveInputCrossesDictionaryReset) {
  // Enough distinct phrases to fill the 16-bit dictionary and force a
  // CLEAR.
  Bytes input;
  util::Rng rng(2);
  while (input.size() < 3 * 1024 * 1024) {
    const std::size_t run = rng.below(60) + 4;
    const auto v = static_cast<std::uint8_t>(rng.below(256));
    input.insert(input.end(), run, v);
  }
  expect_roundtrip(input);
}

class LzwGenerators : public ::testing::TestWithParam<fsgen::FileKind> {};

TEST_P(LzwGenerators, RoundTripsGeneratorOutput) {
  const Bytes file = fsgen::generate_file(GetParam(), 7, 100000);
  expect_roundtrip(file);
}

TEST_P(LzwGenerators, CompressesStructuredDataWell) {
  const fsgen::FileKind kind = GetParam();
  const Bytes file = fsgen::generate_file(kind, 8, 100000);
  const Bytes packed = lzw_compress(ByteView(file));
  if (kind == fsgen::FileKind::kRandom) {
    // Random data does not compress (LZW expands it slightly).
    EXPECT_GT(packed.size(), file.size() * 9 / 10);
  } else {
    EXPECT_LT(packed.size(), file.size() * 8 / 10)
        << fsgen::name(kind) << " should compress by at least 20%";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LzwGenerators,
                         ::testing::ValuesIn(fsgen::kAllKinds),
                         [](const auto& gen_info) {
                           std::string n(fsgen::name(gen_info.param));
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Lzw, CompressedTextLooksUniformToByteHistogram) {
  // The mechanism behind Table 7: LZW output has near-uniform byte
  // statistics even when the input is highly skewed text.
  const Bytes text = fsgen::generate_file(fsgen::FileKind::kText, 9, 400000);
  const Bytes packed = lzw_compress(ByteView(text));

  stats::Histogram raw(256), comp(256);
  for (std::uint8_t b : text) raw.add(b);
  for (std::uint8_t b : packed) comp.add(b);
  EXPECT_GT(raw.entropy_bits(), 3.0);
  EXPECT_LT(raw.entropy_bits(), 6.0);  // text is very skewed
  EXPECT_GT(comp.entropy_bits(), 7.8);  // compressed is near uniform
}

TEST(Lzw, BadMagicRejected) {
  Bytes bogus = {'X', 'X', 'X', 'X', 0, 0};
  EXPECT_THROW(lzw_decompress(ByteView(bogus)), CorruptStream);
}

TEST(Lzw, TruncatedStreamRejected) {
  const Bytes input(1000, 0x55);
  Bytes packed = lzw_compress(ByteView(input));
  packed.resize(packed.size() / 2);
  EXPECT_THROW(lzw_decompress(ByteView(packed)), CorruptStream);
}

TEST(Lzw, OutOfRangeCodeRejected) {
  // Craft a stream whose first code references an undefined entry.
  Bytes bogus = {'L', 'Z', 'W', '1'};
  // Code 300 (9 bits LSB-first): 300 = 0b100101100.
  bogus.push_back(0b00101100);
  bogus.push_back(0b00000001);
  EXPECT_THROW(lzw_decompress(ByteView(bogus)), CorruptStream);
}

}  // namespace
}  // namespace cksum::compress
