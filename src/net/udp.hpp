// UDP header and checksum — the third user of the Internet checksum
// the paper names ("the Internet checksum used for IP, TCP, and UDP").
// UDP adds a wrinkle the paper's "two zeros" discussion touches: a
// computed checksum of 0x0000 is transmitted as 0xFFFF (they are the
// same ones-complement value), because an all-zero field means "no
// checksum".
#pragma once

#include <cstdint>
#include <optional>

#include "net/ipv4.hpp"
#include "util/bytes.hpp"

namespace cksum::net {

inline constexpr std::size_t kUdpHeaderLen = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload
  std::uint16_t checksum = 0;

  void write(std::uint8_t* out) const noexcept;
  static std::optional<UdpHeader> parse(util::ByteView data) noexcept;
};

/// Build a UDP/IPv4 datagram. `with_checksum=false` transmits a zero
/// checksum field (checksumming disabled, as UDP permits).
util::Bytes build_udp_datagram(std::uint32_t src_addr, std::uint32_t dst_addr,
                               std::uint16_t src_port, std::uint16_t dst_port,
                               util::ByteView payload,
                               bool with_checksum = true,
                               std::uint16_t ip_id = 1);

enum class UdpCheckResult {
  kValid,
  kInvalid,
  kDisabled,  ///< checksum field was zero: nothing to verify
};

/// Verify a received UDP/IPv4 datagram's UDP checksum.
UdpCheckResult verify_udp_datagram(util::ByteView ip_datagram);

}  // namespace cksum::net
