// Frame-grain fault injection for the ARQ link layer (src/arq/).
//
// FaultyChannel (channel.hpp) injects faults at ATM-cell grain for the
// demux stack; ARQ endpoints exchange variable-length link frames, so
// this file provides the same deterministic fault taxonomy one layer
// up. Each transmitted frame independently suffers
//
//  * whole-frame loss       — the frame never arrives (drop)
//  * duplication            — one extra copy is delivered
//  * payload/header bursts  — core::apply_burst anywhere in the frame
//                             (header, payload, or the checksum
//                             trailer — the decoder sees all three)
//  * truncation             — the frame's tail cut at a random byte
//  * reordering             — extra propagation delay, so the frame
//                             arrives after later transmissions
//
// and the classes compose: a duplicated frame's copies are corrupted,
// truncated, and delayed independently, so corruption+duplication (or
// truncation+reorder) hit the same source frame in one transmit() —
// the composition tests in tests/test_faults.cpp pin this down.
//
// Like FaultyChannel, a LinkChannel owns a seeded Rng: a (plan, seed,
// transmission sequence) triple always produces the same deliveries,
// which is what makes arq soak reproducer lines replayable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace cksum::faults {

/// Per-frame injection rates. Everything is a per-copy probability
/// (a duplicated frame rolls corruption/truncation/reordering once
/// per copy). A default-constructed plan delivers every frame intact.
struct LinkPlan {
  double drop_rate = 0.0;       ///< whole-frame loss
  double duplicate_rate = 0.0;  ///< one extra copy delivered

  double corrupt_rate = 0.0;    ///< bit-burst somewhere in the frame
  unsigned burst_bits_min = 1;  ///< inclusive; clamped to [1, 64]
  unsigned burst_bits_max = 32; ///< inclusive; clamped to [min, 64]

  double truncate_rate = 0.0;   ///< tail cut at a random byte offset

  double reorder_rate = 0.0;    ///< extra delay past later frames
  std::uint64_t reorder_delay_max = 8;  ///< max extra ticks (>= 1)
};

/// One counter per fault class. Deliveries and injections are both
/// counted so callers can close the accounting: every frame in is
/// either dropped or delivered 1..2 times, and every injected
/// corruption/truncation/reorder names a delivered copy.
struct LinkStats {
  std::uint64_t frames_in = 0;
  std::uint64_t deliveries = 0;  ///< copies handed to the far end

  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t truncations = 0;
  std::uint64_t reorders = 0;

  std::uint64_t total_injected() const noexcept {
    return drops + duplicates + corruptions + truncations + reorders;
  }

  void merge(const LinkStats& o) noexcept;
};

/// One delivered copy of a transmitted frame. `extra_delay` is the
/// reordering delay in virtual-clock ticks, added by the caller on top
/// of its base propagation delay (the channel has no clock of its own).
struct LinkDelivery {
  util::Bytes bytes;
  std::uint64_t extra_delay = 0;
};

/// Applies a LinkPlan to individual frames. Stateless across frames
/// apart from the Rng and the accumulated counters, so interactive
/// protocols can interleave transmissions from both directions by
/// giving each direction its own channel.
class LinkChannel {
 public:
  LinkChannel(const LinkPlan& plan, std::uint64_t seed)
      : plan_(plan), rng_(seed) {}

  /// Pass one frame through the channel: zero (dropped), one, or two
  /// (duplicated) deliveries, each independently corrupted, truncated,
  /// and/or delayed.
  std::vector<LinkDelivery> transmit(util::ByteView frame);

  const LinkStats& stats() const noexcept { return stats_; }
  const LinkPlan& plan() const noexcept { return plan_; }

 private:
  LinkPlan plan_;
  util::Rng rng_;
  LinkStats stats_;
};

}  // namespace cksum::faults
