#include "dist/coordinator.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "dist/frame.hpp"
#include "dist/lease.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"

namespace cksum::dist {
namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One worker connection and its coordinator-side state.
struct Conn {
  std::unique_ptr<FrameChannel> ch;
  bool configured = false;   ///< Hello/Config handshake done
  bool shutting_down = false;///< Shutdown sent, waiting for Goodbye
  std::uint64_t worker_id = 0;
  std::uint64_t pid = 0;
  bool has_shard = false;
  std::size_t shard = 0;     ///< lease currently granted on this conn
};

struct CoordMetrics {
  obs::Counter connected, lost, granted, reassigned, accepted, stale,
      heartbeats;
};

CoordMetrics coord_metrics() {
  obs::Registry& reg = obs::Registry::global();
  CoordMetrics m;
  m.connected = reg.counter("dist.workers_connected", obs::Tag::kScheduling);
  m.lost = reg.counter("dist.workers_lost", obs::Tag::kScheduling);
  m.granted = reg.counter("dist.leases_granted", obs::Tag::kScheduling);
  m.reassigned = reg.counter("dist.leases_reassigned", obs::Tag::kScheduling);
  m.accepted = reg.counter("dist.results_accepted", obs::Tag::kScheduling);
  m.stale = reg.counter("dist.results_stale", obs::Tag::kScheduling);
  m.heartbeats = reg.counter("dist.heartbeats", obs::Tag::kScheduling);
  return m;
}

std::string json_u64_map(const std::map<std::string, std::uint64_t>& m) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + obs::json_escape(k) + "\": " + std::to_string(v);
  }
  out += "}";
  return out;
}

}  // namespace

std::string DistReport::dist_json() const {
  std::string out = "{";
  out += "\"workers\": " + std::to_string(workers.size());
  out += ", \"shards\": " + std::to_string(shards);
  out += ", \"reassigned\": " + std::to_string(reassigned);
  out += ", \"stale_results\": " + std::to_string(stale_results);
  out += ", \"complete\": " + std::string(complete ? "true" : "false");
  // The run's own deterministic totals: the sum of the accepted
  // per-worker contributions. check_manifest.py asserts both this
  // per-run identity and that the jobs sum to the aggregate metrics.
  std::map<std::string, std::uint64_t> totals;
  for (const WorkerInfo& w : workers)
    for (const auto& [name, v] : w.metrics) totals[name] += v;
  out += ", \"metrics\": " + json_u64_map(totals);
  out += ", \"per_worker\": [";
  bool first = true;
  for (const WorkerInfo& w : workers) {
    if (!first) out += ", ";
    first = false;
    out += "{\"worker\": " + std::to_string(w.worker_id);
    out += ", \"pid\": " + std::to_string(w.pid);
    out += ", \"shards\": " + std::to_string(w.shards_accepted);
    out += ", \"clean_exit\": " + std::string(w.clean_exit ? "true" : "false");
    if (!w.manifest.empty())
      out += ", \"manifest\": \"" + obs::json_escape(w.manifest) + "\"";
    out += ", \"metrics\": " + json_u64_map(w.metrics);
    out += "}";
  }
  out += "]}";
  return out;
}

Coordinator::Coordinator(DistConfig cfg) : cfg_(std::move(cfg)) {
  register_dist_metrics();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("dist: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("dist: cannot bind/listen on coordinator port");
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) ==
      0)
    port_ = ntohs(addr.sin_port);
}

Coordinator::~Coordinator() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

DistReport Coordinator::run(std::function<void(const DistEvent&)> hook) {
  const CoordMetrics met = coord_metrics();
  obs::Registry& reg = obs::Registry::global();
  DistReport report;

  std::size_t shard_files = cfg_.shard_files;
  if (shard_files == 0) {
    // Aim for a few shards per worker so reassignment after a loss has
    // somewhere to go, without shattering small corpora.
    const std::size_t target_shards =
        std::max<std::size_t>(8, 4 * std::max(1u, cfg_.expected_workers));
    shard_files = std::max<std::size_t>(1, cfg_.nfiles / target_shards);
  }
  LeaseTable table(cfg_.nfiles, shard_files);
  report.shards = table.shard_count();

  std::vector<std::unique_ptr<Conn>> conns;
  auto worker_info = [&](const Conn& c) -> DistReport::WorkerInfo& {
    for (auto& w : report.workers)
      if (w.worker_id == c.worker_id) return w;
    report.workers.push_back({c.worker_id, c.pid, 0, false, "", {}});
    return report.workers.back();
  };
  auto emit = [&](DistEvent::Kind kind, const Conn& c, std::size_t shard) {
    if (hook) hook(DistEvent{kind, c.worker_id, c.pid, shard});
  };

  std::size_t configured = 0;
  const bool barrier = cfg_.expected_workers > 0;
  std::uint64_t last_activity = now_ms();
  std::uint64_t shutdown_deadline = 0;  // nonzero once table completed

  // Grant the next pending shard to an idle configured connection, or
  // park it with kIdle while the start barrier holds it back.
  auto try_grant = [&](Conn& c) {
    if (!c.configured || c.has_shard || c.shutting_down) return;
    if (table.complete()) return;  // shutdown phase handles this conn
    if (barrier && configured < cfg_.expected_workers) return;
    const std::uint64_t deadline = now_ms() + cfg_.lease_timeout_ms;
    const auto idx = table.acquire(c.worker_id, deadline);
    if (!idx) return;  // all shards leased; results will free one
    const Shard& s = table.shard(*idx);
    if (s.grants > 1) {
      met.reassigned.add(1);
      emit(DistEvent::Kind::kLeaseReassigned, c, *idx);
    }
    met.granted.add(1);
    LeaseGrantMsg g{*idx, s.epoch, s.begin, s.end};
    if (c.ch->send(MsgType::kLeaseGrant, encode(g))) {
      c.has_shard = true;
      c.shard = *idx;
    }
  };

  auto drop_conn = [&](std::size_t i, bool lost) {
    Conn& c = *conns[i];
    if (lost && c.configured && !c.shutting_down) {
      table.revoke_worker(c.worker_id);
      met.lost.add(1);
      emit(DistEvent::Kind::kWorkerLost, c, c.has_shard ? c.shard : 0);
    }
    conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
  };

  while (true) {
    const bool done = table.complete();
    if (done && shutdown_deadline == 0) {
      shutdown_deadline = now_ms() + 5000;
      for (auto& c : conns) {
        if (c->configured && !c->shutting_down) {
          c->ch->send(MsgType::kShutdown, {});
          c->shutting_down = true;
        }
      }
    }
    if (done && (conns.empty() || now_ms() > shutdown_deadline)) break;
    if (!done && conns.empty() &&
        now_ms() - last_activity > cfg_.idle_abort_ms)
      break;  // fleet is gone and nobody is coming: abort incomplete

    std::vector<pollfd> pfds;
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& c : conns) pfds.push_back({c->ch->fd(), POLLIN, 0});
    const int pr = ::poll(pfds.data(), pfds.size(), 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (pfds[0].revents & POLLIN) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        auto c = std::make_unique<Conn>();
        c->ch = std::make_unique<FrameChannel>(fd);
        conns.push_back(std::move(c));
        last_activity = now_ms();
      }
    }

    // Walk backwards so drop_conn()'s erase stays index-stable. pfds
    // entry i+1 belongs to conns[i] of the snapshot taken above; a
    // conn accepted this round simply has no pfd yet.
    for (std::size_t i = std::min(conns.size(), pfds.size() - 1); i-- > 0;) {
      if (!(pfds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Conn& c = *conns[i];
      Frame f;
      if (!c.ch->recv(&f, 2000)) {
        drop_conn(i, true);
        continue;
      }
      last_activity = now_ms();
      switch (f.type) {
        case MsgType::kHello: {
          const auto m = decode_hello(util::ByteView(f.payload));
          if (!m || m->proto != kProtocolVersion) {
            drop_conn(i, false);
            break;
          }
          c.worker_id = m->worker_id;
          c.pid = m->pid;
          c.ch->send(MsgType::kConfig, encode(cfg_.run));
          c.configured = true;
          configured++;
          met.connected.add(1);
          worker_info(c);
          emit(DistEvent::Kind::kWorkerConnected, c, 0);
          if (table.complete()) {
            // Latecomer after the run finished: straight to shutdown.
            c.ch->send(MsgType::kShutdown, {});
            c.shutting_down = true;
          }
          break;
        }
        case MsgType::kHeartbeat: {
          const auto m = decode_heartbeat(util::ByteView(f.payload));
          if (m) {
            met.heartbeats.add(1);
            table.extend(m->shard, m->epoch, c.worker_id,
                         now_ms() + cfg_.lease_timeout_ms);
          }
          break;
        }
        case MsgType::kLeaseResult: {
          const auto m = decode_lease_result(util::ByteView(f.payload));
          if (!m) {
            drop_conn(i, true);
            break;
          }
          c.has_shard = false;
          const DeliverOutcome out =
              table.deliver(m->shard, m->epoch, c.worker_id);
          if (out == DeliverOutcome::kAccepted) {
            report.stats.merge(m->stats);
            DistReport::WorkerInfo& w = worker_info(c);
            w.shards_accepted++;
            for (const obs::CounterDelta& d : m->deltas) {
              // Re-play the worker's deterministic growth into our own
              // registry: the aggregate equals the single-process run.
              reg.counter(d.name, obs::Tag::kDeterministic).add(d.delta);
              w.metrics[d.name] += d.delta;
            }
            met.accepted.add(1);
            emit(DistEvent::Kind::kResultAccepted, c, m->shard);
          } else {
            met.stale.add(1);
            report.stale_results++;
          }
          break;
        }
        case MsgType::kGoodbye: {
          const auto m = decode_goodbye(util::ByteView(f.payload));
          if (m && c.configured) {
            DistReport::WorkerInfo& w = worker_info(c);
            w.clean_exit = true;
            w.manifest = m->manifest_path;
          }
          drop_conn(i, false);
          break;
        }
        default:
          // Config/grant/idle/shutdown only flow coordinator->worker.
          drop_conn(i, true);
          break;
      }
    }

    if (table.expire(now_ms()) > 0) {
      // An expired holder may still be connected (hung, not dead); its
      // conn keeps has_shard so it won't be granted more work until it
      // delivers (which will then be stale) or dies.
    }
    for (auto& c : conns) try_grant(*c);
  }

  report.complete = table.complete();
  report.reassigned = table.reassigned_count();
  return report;
}

}  // namespace cksum::dist
