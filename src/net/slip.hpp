// SLIP framing (RFC 1055) — the link the paper singles out in §7:
// "The TCP checksum is the primary method of error detection over SLIP
// and Compressed SLIP links. (That's probably not wise)."
//
// SLIP has no link CRC at all: frames are delimited by the END byte
// (0xC0), with ESC sequences for payload occurrences. A line error
// that corrupts a data byte goes straight to the TCP checksum; one
// that corrupts an END or forges one *splices or splits frames* — the
// serial-line cousin of the AAL5 cell splice. bench_slip measures how
// much of that the TCP checksum actually catches.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace cksum::net {

inline constexpr std::uint8_t kSlipEnd = 0xC0;
inline constexpr std::uint8_t kSlipEsc = 0xDB;
inline constexpr std::uint8_t kSlipEscEnd = 0xDC;
inline constexpr std::uint8_t kSlipEscEsc = 0xDD;

/// Frame one datagram (leading END flushes line noise, per RFC 1055).
util::Bytes slip_frame(util::ByteView datagram);

/// Append a framed datagram to an existing line stream.
void slip_frame_append(util::Bytes& line, util::ByteView datagram);

/// Deframe a line stream into datagrams. Tolerates noise the way RFC
/// 1055 receivers do: empty frames are discarded; a dangling ESC
/// yields the following byte verbatim (the RFC's "leave it be"
/// behaviour). Returns every non-empty frame, corrupted or not — the
/// caller's checks must sort them out.
std::vector<util::Bytes> slip_deframe(util::ByteView line);

}  // namespace cksum::net
