#include "trace/pcap_reader.hpp"

#include <cstdio>

#include "trace/metrics.hpp"
#include "util/bytes.hpp"

namespace cksum::trace {

namespace {

constexpr std::size_t kGlobalHeaderLen = 24;
constexpr std::size_t kRecordHeaderLen = 16;

// Classic pcap magics as they appear when read little-endian first.
constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4u;
constexpr std::uint32_t kMagicUsecSwapped = 0xd4c3b2a1u;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4du;
constexpr std::uint32_t kMagicNsecSwapped = 0x4d3cb2a1u;

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

void fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace

std::unique_ptr<PcapReader> PcapReader::open(const std::string& path,
                                             std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    fail(error, "cannot open " + path);
    return nullptr;
  }
  util::Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    data.insert(data.end(), buf, buf + n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    fail(error, "read error on " + path);
    return nullptr;
  }
  return parse(std::move(data), error);
}

std::unique_ptr<PcapReader> PcapReader::parse(util::Bytes bytes,
                                              std::string* error) {
  auto r = std::unique_ptr<PcapReader>(new PcapReader());
  r->data_ = std::move(bytes);
  const util::Bytes& data = r->data_;
  PcapInfo& info = r->info_;

  if (data.size() < kGlobalHeaderLen) {
    fail(error, "truncated file: shorter than the pcap global header (" +
                    std::to_string(data.size()) + " of " +
                    std::to_string(kGlobalHeaderLen) + " bytes)");
    return nullptr;
  }

  const std::uint32_t magic = load_le32(data.data());
  switch (magic) {
    case kMagicUsec: break;
    case kMagicNsec: info.nanos = true; break;
    case kMagicUsecSwapped: info.swapped = true; break;
    case kMagicNsecSwapped:
      info.swapped = true;
      info.nanos = true;
      break;
    default:
      fail(error, "bad magic " + hex32(magic) +
                      ": not a classic pcap capture");
      return nullptr;
  }
  // All further fields honour the capture's byte order.
  const auto get32 = [&](std::size_t off) {
    const std::uint32_t v = load_le32(data.data() + off);
    return info.swapped ? __builtin_bswap32(v) : v;
  };
  const auto get16 = [&](std::size_t off) {
    const std::uint16_t v = load_le16(data.data() + off);
    return info.swapped ? static_cast<std::uint16_t>(__builtin_bswap16(v))
                        : v;
  };

  info.version_major = get16(4);
  info.version_minor = get16(6);
  if (info.version_major != 2) {
    fail(error, "unsupported pcap version " +
                    std::to_string(info.version_major) + "." +
                    std::to_string(info.version_minor) + " (expected 2.x)");
    return nullptr;
  }
  info.snaplen = get32(16);
  if (info.snaplen == 0 || info.snaplen > kMaxSnaplen) {
    fail(error, "absurd snap length " + std::to_string(info.snaplen) +
                    " (accepted range 1.." + std::to_string(kMaxSnaplen) +
                    ")");
    return nullptr;
  }
  info.linktype = get32(20);
  if (info.linktype != kLinkRaw && info.linktype != kLinkEthernet) {
    fail(error, "unsupported link type " + std::to_string(info.linktype) +
                    " (expected LINKTYPE_RAW=101 or LINKTYPE_ETHERNET=1)");
    return nullptr;
  }

  // Records: every header fully present, every captured length within
  // the snap length and within the file.
  std::size_t off = kGlobalHeaderLen;
  while (off < data.size()) {
    const std::size_t idx = r->records_.size();
    const std::size_t remain = data.size() - off;
    if (remain < kRecordHeaderLen) {
      fail(error, "truncated record header (record " + std::to_string(idx) +
                      ": " + std::to_string(remain) + " of " +
                      std::to_string(kRecordHeaderLen) + " bytes at offset " +
                      std::to_string(off) + ")");
      return nullptr;
    }
    TraceRecord rec;
    rec.ts_sec = get32(off);
    rec.ts_frac = get32(off + 4);
    rec.captured_len = get32(off + 8);
    rec.original_len = get32(off + 12);
    off += kRecordHeaderLen;
    if (rec.captured_len > info.snaplen) {
      fail(error, "record " + std::to_string(idx) + ": captured length " +
                      std::to_string(rec.captured_len) +
                      " exceeds the snap length " +
                      std::to_string(info.snaplen));
      return nullptr;
    }
    if (rec.captured_len > data.size() - off) {
      fail(error, "record " + std::to_string(idx) +
                      ": mid-record EOF (header promises " +
                      std::to_string(rec.captured_len) + " bytes, " +
                      std::to_string(data.size() - off) + " remain)");
      return nullptr;
    }
    if (rec.original_len < rec.captured_len) {
      fail(error, "record " + std::to_string(idx) + ": original length " +
                      std::to_string(rec.original_len) +
                      " shorter than captured " +
                      std::to_string(rec.captured_len));
      return nullptr;
    }
    rec.truncated = rec.captured_len < rec.original_len;
    rec.frame = util::ByteView(data.data() + off, rec.captured_len);
    off += rec.captured_len;

    // Link-layer disposition: where is the IP datagram?
    if (info.linktype == kLinkRaw) {
      rec.cls = RecordClass::kDatagram;
      rec.datagram = rec.frame;
    } else if (rec.frame.size() < kEthernetHeaderLen) {
      rec.cls = RecordClass::kLinkTooShort;
    } else if (util::load_be16(rec.frame.data() + 12) != 0x0800) {
      rec.cls = RecordClass::kNonIpv4;
    } else {
      rec.cls = RecordClass::kDatagram;
      rec.datagram = rec.frame.subspan(kEthernetHeaderLen);
    }

    info.records += 1;
    info.frame_bytes += rec.captured_len;
    if (rec.truncated) info.truncated += 1;
    if (rec.cls == RecordClass::kDatagram) info.datagrams += 1;
    r->records_.push_back(rec);
  }

  const TraceMetrics& mx = tmx();
  mx.captures.add(1);
  mx.records.add(info.records);
  mx.frame_bytes.add(info.frame_bytes);
  mx.truncated.add(info.truncated);
  return r;
}

}  // namespace cksum::trace
