// Per-VC demultiplexing: a real ATM link interleaves cells of many
// virtual channels; AAL5 reassembly state is per-VC. The demux routes
// each cell to its channel's reassembler (creating state on first
// sight), discards cells whose HEC failed upstream, and surfaces
// completed candidate PDUs tagged with their VC.
#pragma once

#include <map>
#include <optional>

#include "atm/reassembler.hpp"

namespace cksum::atm {

class VcDemux {
 public:
  struct Delivery {
    std::uint8_t vpi = 0;
    std::uint16_t vci = 0;
    Reassembler::Pdu pdu;
  };

  /// Feed one cell; returns a completed PDU when this cell ends one.
  std::optional<Delivery> push(const Cell& cell);

  /// Number of channels with reassembly state.
  std::size_t channel_count() const noexcept { return channels_.size(); }

  /// Cells buffered across all channels (diagnosing stuck partial
  /// reassemblies after EOM loss).
  std::size_t pending_cells() const noexcept;

  /// Drop a channel's partial state (e.g. on VC teardown).
  void reset_channel(std::uint8_t vpi, std::uint16_t vci);

 private:
  using Key = std::pair<std::uint8_t, std::uint16_t>;
  std::map<Key, Reassembler> channels_;
};

}  // namespace cksum::atm
