// Exhaustive enumeration of AAL5 packet splices.
//
// Error model (paper §3.1): cells of two adjacent packets are dropped
// — never reordered — and reassembly collects cells up to the first
// end-of-message cell it sees. A splice therefore consists of
//
//   * at least one of pkt1's cells, excluding its EOM cell (if the EOM
//     survived, reassembly would have terminated correctly), followed
//     by
//   * some of pkt2's non-EOM cells, in order, and
//   * pkt2's EOM cell (always present — it terminates the splice and
//     carries the AAL5 length and CRC).
//
// The receiver's first check is that the AAL5 length in the trailer is
// consistent with the number of cells received; since the trailer is
// pkt2's, only splices with exactly pkt2's cell count survive, so the
// enumeration fixes k1 + k2 = n2 - 1. For two 7-cell packets that is
// Σₖ C(6,k)·C(6,6-k) − 1 = C(12,6) − 1 = 923 splices, of which
// C(11,5) = 462 retain pkt1's header cell (the paper's count).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "atm/aal5.hpp"
#include "util/math.hpp"

namespace cksum::atm {

/// Hard cap on the per-packet cell count the splice enumeration can
/// handle: kept-cell subsets are 32-bit masks over the non-EOM cells,
/// so a packet may have at most 32 cells (31 non-EOM). A 33-cell
/// packet used to shift by 32 — undefined behaviour that silently
/// truncated the enumeration; now it is rejected up front.
inline constexpr std::size_t kMaxSpliceCells = 32;

/// Throws std::length_error if either packet is too large to splice.
constexpr void check_splice_cells(std::size_t n1, std::size_t n2) {
  if (n1 > kMaxSpliceCells || n2 > kMaxSpliceCells) {
    throw std::length_error(
        "atm::splice: packet of " +
        std::to_string(n1 > kMaxSpliceCells ? n1 : n2) +
        " cells exceeds kMaxSpliceCells (" + std::to_string(kMaxSpliceCells) +
        "); lower the segment size or raise the mask width");
  }
}

/// One splice: bitmasks of the kept non-EOM cells. Bit i of mask1 set
/// means pkt1's cell i (i < n1-1) is in the splice; likewise mask2 for
/// pkt2 (j < n2-1). pkt2's EOM cell is implicitly always kept.
struct SpliceSpec {
  std::uint32_t mask1 = 0;
  std::uint32_t mask2 = 0;
  unsigned k1 = 0;  ///< popcount(mask1) >= 1
  unsigned k2 = 0;  ///< popcount(mask2) == n2 - 1 - k1
};

/// Number of splices for packets of n1 and n2 cells. Throws
/// std::length_error past kMaxSpliceCells (see check_splice_cells).
constexpr std::uint64_t splice_count(std::size_t n1, std::size_t n2) {
  check_splice_cells(n1, n2);
  if (n1 < 2 || n2 < 1) return 0;  // pkt1 must have a droppable EOM + >=1 cell
  std::uint64_t total = 0;
  const std::size_t e1 = n1 - 1;  // eligible cells of pkt1
  const std::size_t e2 = n2 - 1;  // eligible (non-EOM) cells of pkt2
  for (std::size_t k1 = 1; k1 <= e1 && k1 <= e2; ++k1)
    total += util::binomial(e1, k1) * util::binomial(e2, e2 - k1);
  return total;
}

/// Number of splices whose first kept cell is pkt1's cell `i`
/// (cells < i dropped, cell i kept). Partitioning the splice space by
/// first cell lets the DFS evaluator bulk-account a header-rejected
/// subtree without enumerating it: summing over i < n1-1 recovers
/// splice_count(n1, n2).
constexpr std::uint64_t splice_count_first_cell(std::size_t n1, std::size_t n2,
                                                std::size_t i) {
  check_splice_cells(n1, n2);
  if (n1 < 2 || n2 < 1 || i + 2 > n1) return 0;
  const std::size_t e2 = n2 - 1;
  // k1-1 further pkt1 cells come from the `avail` cells after i; pkt2
  // supplies the remaining e2-k1 non-EOM cells.
  const std::size_t avail = n1 - 2 - i;
  std::uint64_t total = 0;
  for (std::size_t t = 0; t <= avail && t + 1 <= e2; ++t)
    total += util::binomial(avail, t) * util::binomial(e2, e2 - 1 - t);
  return total;
}

namespace detail {
/// Gosper's hack: next bit pattern with the same popcount.
constexpr std::uint32_t next_subset(std::uint32_t v) noexcept {
  const std::uint32_t c = v & (0u - v);
  const std::uint32_t r = v + c;
  return r | (((v ^ r) >> 2) / c);
}
}  // namespace detail

/// Invoke `fn(const SpliceSpec&)` for every splice of an n1-cell packet
/// followed by an n2-cell packet. Throws std::length_error past
/// kMaxSpliceCells.
template <typename F>
void for_each_splice(std::size_t n1, std::size_t n2, F&& fn) {
  check_splice_cells(n1, n2);
  if (n1 < 2 || n2 < 1) return;
  const unsigned e1 = static_cast<unsigned>(n1 - 1);
  const unsigned e2 = static_cast<unsigned>(n2 - 1);
  for (unsigned k1 = 1; k1 <= e1 && k1 <= e2; ++k1) {
    const unsigned k2 = e2 - k1;
    SpliceSpec s;
    s.k1 = k1;
    s.k2 = k2;
    const std::uint32_t limit1 = 1u << e1;
    for (std::uint32_t m1 = (1u << k1) - 1; m1 < limit1;
         m1 = detail::next_subset(m1)) {
      s.mask1 = m1;
      if (k2 == 0) {
        s.mask2 = 0;
        fn(static_cast<const SpliceSpec&>(s));
      } else {
        const std::uint32_t limit2 = 1u << e2;
        for (std::uint32_t m2 = (1u << k2) - 1; m2 < limit2;
             m2 = detail::next_subset(m2)) {
          s.mask2 = m2;
          fn(static_cast<const SpliceSpec&>(s));
        }
      }
      // next_subset of the top pattern exceeds limit1, ending the loop.
    }
  }
}

/// Materialise the spliced PDU's bytes (slow path and tests).
util::Bytes materialize_splice(const CpcsPdu& p1, const CpcsPdu& p2,
                               const SpliceSpec& s);

}  // namespace cksum::atm
