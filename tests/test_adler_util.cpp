// Adler-32 and the util substrate (RNG, hashing, byte helpers, math).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <set>

#include "checksum/adler32.hpp"
#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/math.hpp"
#include "util/pcap.hpp"
#include "util/rng.hpp"

namespace cksum {
namespace {

using util::ByteView;
using util::Bytes;

TEST(Adler32, KnownVector) {
  const char* s = "Wikipedia";
  EXPECT_EQ(alg::adler32(ByteView(
                reinterpret_cast<const std::uint8_t*>(s), strlen(s))),
            0x11E60398u);
}

TEST(Adler32, EmptyIsOne) { EXPECT_EQ(alg::adler32(ByteView{}), 1u); }

TEST(Adler32, StreamingMatchesOneShot) {
  Bytes data(10000);
  util::Rng rng(1);
  rng.fill(data);
  std::uint32_t a = 1;
  a = alg::adler32(a, ByteView(data).first(1234));
  a = alg::adler32(a, ByteView(data).subspan(1234));
  EXPECT_EQ(a, alg::adler32(ByteView(data)));
}

TEST(Adler32, CombineMatchesConcatenation) {
  util::Rng rng(2);
  for (int t = 0; t < 16; ++t) {
    Bytes a(rng.below(300) + 1), b(rng.below(300) + 1);
    rng.fill(a);
    rng.fill(b);
    Bytes ab = a;
    ab.insert(ab.end(), b.begin(), b.end());
    EXPECT_EQ(alg::adler32_combine(alg::adler32(ByteView(a)),
                                   alg::adler32(ByteView(b)), b.size()),
              alg::adler32(ByteView(ab)));
  }
}

TEST(Rng, Deterministic) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  util::Rng rng(4);
  std::array<int, 10> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - 1000);
    EXPECT_LT(c, kDraws / 10 + 1000);
  }
}

TEST(Rng, BetweenInclusive) {
  util::Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01Range) {
  util::Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, FillCoversAllBytePositions) {
  util::Rng rng(8);
  Bytes buf(13);
  rng.fill(buf);
  // Probability of any byte being zero by chance is tiny but nonzero;
  // just check the buffer isn't left untouched as a whole.
  Bytes zero(13, 0);
  EXPECT_NE(buf, zero);
}

TEST(Rng, PickWeightedHonoursWeights) {
  util::Rng rng(9);
  const std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.pick_weighted(w), 1u);
}

TEST(Rng, ChildStreamsIndependentOfConsumption) {
  util::Rng a(10);
  util::Rng b(10);
  (void)a.next();  // consume from a only
  util::Rng ca = a.child(5);
  util::Rng cb = b.child(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Hash, DeterministicAndLengthSensitive) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3, 0};
  EXPECT_EQ(util::hash64(ByteView(a)), util::hash64(ByteView(a)));
  EXPECT_NE(util::hash64(ByteView(a)), util::hash64(ByteView(b)));
}

TEST(Hash, NoCollisionsOnSmallCorpus) {
  std::set<std::uint64_t> seen;
  util::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    Bytes cell(48);
    rng.fill(cell);
    seen.insert(util::hash64(ByteView(cell)));
  }
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(Bytes, BigEndianRoundTrip) {
  std::uint8_t buf[4];
  util::store_be16(buf, 0xBEEF);
  EXPECT_EQ(util::load_be16(buf), 0xBEEF);
  util::store_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(util::load_be32(buf), 0xDEADBEEFu);
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x1f, 0xa0, 0xff};
  EXPECT_EQ(util::to_hex(ByteView(data)), "001fa0ff");
  EXPECT_EQ(util::from_hex("001fa0ff"), data);
  EXPECT_EQ(util::from_hex("00 1f A0 Ff"), data);
}

TEST(Bytes, FromHexRejectsGarbage) {
  EXPECT_THROW(util::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(util::from_hex("abc"), std::invalid_argument);  // odd digits
}


TEST(Pcap, GlobalAndRecordHeaders) {
  std::ostringstream os;
  util::PcapWriter w(os);
  const Bytes pkt1 = {0x45, 0x00, 0x00, 0x04};
  const Bytes pkt2(64, 0xab);
  w.write_packet(ByteView(pkt1));
  w.write_packet(ByteView(pkt2));
  EXPECT_EQ(w.packets_written(), 2u);
  const std::string s = os.str();
  ASSERT_EQ(s.size(), 24 + (16 + 4) + (16 + 64));
  // Magic, version, linktype.
  EXPECT_EQ(static_cast<unsigned char>(s[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(s[3]), 0xa1);
  EXPECT_EQ(static_cast<unsigned char>(s[4]), 2);  // version major
  EXPECT_EQ(static_cast<unsigned char>(s[20]), 101);  // LINKTYPE_RAW
  // First record: lengths 4.
  EXPECT_EQ(static_cast<unsigned char>(s[24 + 8]), 4);
  EXPECT_EQ(static_cast<unsigned char>(s[24 + 12]), 4);
  // Payload follows.
  EXPECT_EQ(static_cast<unsigned char>(s[24 + 16]), 0x45);
}

TEST(Math, BinomialKnownValues) {
  EXPECT_EQ(util::binomial(0, 0), 1u);
  EXPECT_EQ(util::binomial(6, 3), 20u);
  EXPECT_EQ(util::binomial(12, 6), 924u);
  EXPECT_EQ(util::binomial(11, 5), 462u);
  EXPECT_EQ(util::binomial(5, 9), 0u);
  EXPECT_EQ(util::binomial(52, 5), 2598960u);
}

TEST(Math, BinomialPascalIdentity) {
  for (std::uint64_t n = 1; n < 30; ++n)
    for (std::uint64_t k = 1; k <= n; ++k)
      EXPECT_EQ(util::binomial(n, k),
                util::binomial(n - 1, k - 1) + util::binomial(n - 1, k));
}

}  // namespace
}  // namespace cksum
