// TCP options / RFC 1146 alternate-checksum negotiation.
#include <gtest/gtest.h>

#include "checksum/checksum.hpp"
#include "net/tcp_options.hpp"
#include "util/rng.hpp"

namespace cksum::net {
namespace {

using util::ByteView;
using util::Bytes;

TEST(TcpOptions, SerializeParseRoundTrip) {
  TcpOptionList list;
  list.add_mss(1460);
  list.add_nop();
  list.add_alt_checksum_request(AltChecksum::kFletcher8);
  const Bytes wire = list.serialize();
  EXPECT_EQ(wire.size() % 4, 0u);
  const auto parsed = TcpOptionList::parse(ByteView(wire));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->options().size(), 3u);
  EXPECT_EQ(parsed->options()[0].kind, 2);
  EXPECT_EQ(util::load_be16(parsed->options()[0].data.data()), 1460);
  EXPECT_EQ(parsed->requested_alt_checksum(), AltChecksum::kFletcher8);
}

TEST(TcpOptions, EmptyListSerializesEmpty) {
  TcpOptionList list;
  EXPECT_TRUE(list.serialize().empty());
  EXPECT_FALSE(list.requested_alt_checksum().has_value());
}

TEST(TcpOptions, EolTerminatesParsing) {
  const Bytes wire = {2, 4, 0x05, 0xb4, 0 /*EOL*/, 14, 3, 1};
  const auto parsed = TcpOptionList::parse(ByteView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->options().size(), 1u);  // option after EOL ignored
}

TEST(TcpOptions, MalformedLengthRejected) {
  EXPECT_FALSE(TcpOptionList::parse(ByteView(Bytes{14})).has_value());
  EXPECT_FALSE(TcpOptionList::parse(ByteView(Bytes{14, 1})).has_value());
  EXPECT_FALSE(TcpOptionList::parse(ByteView(Bytes{14, 9, 1})).has_value());
}

TEST(TcpOptions, FortyByteLimitEnforced) {
  TcpOptionList list;
  Bytes big(39, 0xaa);
  list.add_alt_checksum_data(ByteView(big));
  EXPECT_THROW(list.serialize(), std::length_error);
}

TEST(TcpOptions, AltChecksumDataCarriesWiderValues) {
  // RFC 1146: the 16-bit Fletcher (our fletcher32) needs 4 check
  // bytes, which do not fit the 2-byte TCP checksum field — they ride
  // in the Alternate Checksum Data option instead.
  Bytes payload(100, 0x5a);
  const auto pair = alg::fletcher32_block(ByteView(payload));
  Bytes value(4);
  util::store_be32(value.data(), alg::fletcher32_value(pair));

  TcpOptionList list;
  list.add_alt_checksum_request(AltChecksum::kFletcher16);
  list.add_alt_checksum_data(ByteView(value));
  const Bytes wire = list.serialize();
  const auto parsed = TcpOptionList::parse(ByteView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->requested_alt_checksum(), AltChecksum::kFletcher16);
  const auto& data_opt = parsed->options()[1];
  ASSERT_EQ(data_opt.data.size(), 4u);
  EXPECT_EQ(util::load_be32(data_opt.data.data()),
            alg::fletcher32_value(pair));
}

TEST(TcpOptions, NegotiationNumbersMapToImplementations) {
  // The registry the paper's [13] defines, tied to our algorithms.
  Bytes data(64);
  util::Rng rng(1);
  rng.fill(data);
  // number 1 = 8-bit Fletcher (two 8-bit sums).
  const auto f8 = alg::fletcher_block(ByteView(data),
                                      alg::FletcherMod::kOnes255);
  EXPECT_LT(f8.a, 255u);
  EXPECT_LT(f8.b, 255u);
  // number 2 = 16-bit Fletcher (two 16-bit sums).
  const auto f16 = alg::fletcher32_block(ByteView(data));
  EXPECT_LT(f16.a, 65535u);
  EXPECT_LT(f16.b, 65535u);
}

}  // namespace
}  // namespace cksum::net
