// cksumlab — command-line multitool over the library.
//
//   cksumlab sum <file>...                 all check codes per file
//   cksumlab profiles                      list synthetic filesystems
//   cksumlab gen <kind> <bytes> [seed]     synthetic file to stdout
//   cksumlab splice --profile <name> [opts]
//   cksumlab splice --dir <path>    [opts] the paper's experiment on
//                                          YOUR files
//   cksumlab dist   --profile <name> | --dir <path>
//
// splice/dist options:
//   --transport tcp|f255|f256   transport checksum   (default tcp)
//   --trailer                   trailer placement    (default header)
//   --scale <x>                 profile scale        (default 1.0)
//   --segment <bytes>           TCP segment size     (default 256)
//   --threads <n>               worker threads; 0 = all cores (default)
//   --verbose                   evaluator internals (splice: path mix)
//   --json                      machine-readable splice report on stdout
//   --metrics-out <path>        write the telemetry run manifest there
//                               (plus a <path>.jsonl progress stream);
//                               see docs/OBSERVABILITY.md
//   --progress                  force the live one-line ticker on stderr
//                               (on by default when stderr is a tty and
//                               telemetry export is active)
//   --quick                     CI shorthand: nsc05 profile at scale 0.1
//                               when no corpus source is given
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "atm/demux.hpp"
#include "checksum/kernels/kernel.hpp"
#include "core/dircorpus.hpp"
#include "kernel_cli.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "dist/coordinator.hpp"
#include "dist/service.hpp"
#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "faults/channel.hpp"
#include "fsgen/corpus_store.hpp"
#include "obs/exporter.hpp"
#include "stats/uniformity.hpp"
#include "trace/ingest.hpp"
#include "trace/pcap_reader.hpp"
#include "trace/profile.hpp"
#include "util/pcap.hpp"

using namespace cksum;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cksumlab sum <file>...\n"
               "       cksumlab profiles\n"
               "       cksumlab gen <kind> <bytes> [seed]\n"
               "       cksumlab manifest <profile> [scale]\n"
               "       cksumlab pcap <out.pcap> [profile] [max-packets] "
               "[--link raw|eth] [--scale x] [--segment n] "
               "[--transport ...] [--trailer]\n"
               "       cksumlab trace (info|profile|ingest) <capture.pcap> "
               "[--transport ...] [--trailer] [--segment n] [--json] "
               "[--metrics-out <path>]\n"
               "       cksumlab corpus build (--profile <name> | --manifest <file> | --from-pcap <capture> | --quick) "
               "--out <path> [--compress] [--scale x] [--segment n] "
               "[--transport ...] [--trailer]\n"
               "       cksumlab corpus info <path>\n"
               "       cksumlab splice (--profile <name> | --dir <path> | --manifest <file> | --corpus <store> | --quick) "
               "[--transport tcp|f255|f256] [--trailer] [--scale x] "
               "[--segment n] [--threads n] [--verbose] [--json] "
               "[--metrics-out <path>] [--progress]\n"
               "               [--serve] [--workers n] [--port n] "
               "[--lease-timeout ms] [--shard-files n]   distributed run\n"
               "       cksumlab splice --connect <host:port> "
               "[--worker-id n] [--metrics-out <path>]    worker mode\n"
               "       cksumlab dist (--profile <name> | --dir <path>)\n"
               "options accepted by every subcommand:\n"
               "       --kernel best|scalar|slicing|swar|chorba|clmul|list\n"
               "       (or the CKSUM_KERNEL environment variable);\n"
               "       `list` prints every kernel with tier and availability\n");
  return 2;
}

int cmd_sum(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  core::TextTable t({"file", "bytes", "internet", "F-255", "F-256",
                     "Fletcher-32", "CRC-32", "Adler-32"});
  for (const auto& path : args) {
    const util::Bytes data =
        core::read_file_prefix(path, 1ull << 31);
    const util::ByteView view(data.data(), data.size());
    char inet[8], f255[8], f256[8], f32[16], crc[16], adler[16];
    std::snprintf(inet, sizeof inet, "0x%04x", alg::kern::internet_sum(view));
    const auto p255 =
        alg::kern::fletcher_block(view, alg::FletcherMod::kOnes255);
    const auto p256 =
        alg::kern::fletcher_block(view, alg::FletcherMod::kTwos256);
    std::snprintf(f255, sizeof f255, "0x%04x", alg::fletcher_value(p255));
    std::snprintf(f256, sizeof f256, "0x%04x", alg::fletcher_value(p256));
    std::snprintf(f32, sizeof f32, "0x%08x",
                  alg::fletcher32_value(alg::kern::fletcher32_block(view)));
    std::snprintf(crc, sizeof crc, "0x%08x", alg::kern::crc32(view));
    std::snprintf(adler, sizeof adler, "0x%08x",
                  alg::kern::adler32(1u, view));
    t.add_row({path, core::fmt_count(data.size()), inet, f255, f256, f32,
               crc, adler});
  }
  t.print(std::cout);
  return 0;
}

int cmd_profiles() {
  core::TextTable t({"profile", "files", "approx size", "mix"});
  for (const auto& prof : fsgen::all_profiles()) {
    const fsgen::Filesystem fs(prof, 1.0);
    std::string mix;
    for (const auto& kw : prof.mix) {
      if (!mix.empty()) mix += ", ";
      mix += std::string(fsgen::name(kw.kind)) + ":" +
             std::to_string(static_cast<int>(kw.weight * 100 + 0.5)) + "%";
    }
    t.add_row({prof.full_name(), std::to_string(fs.file_count()),
               core::fmt_count(fs.approx_total_bytes()), mix});
  }
  t.print(std::cout);
  return 0;
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const fsgen::FileKind* kind = nullptr;
  for (const auto& k : fsgen::kAllKinds) {
    if (args[0] == fsgen::name(k)) {
      kind = &k;
      break;
    }
  }
  if (kind == nullptr) {
    std::fprintf(stderr, "unknown kind '%s'; available:", args[0].c_str());
    for (const auto& k : fsgen::kAllKinds)
      std::fprintf(stderr, " %s", std::string(fsgen::name(k)).c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::size_t size = std::stoull(args[1]);
  const std::uint64_t seed = args.size() > 2 ? std::stoull(args[2]) : 1;
  const util::Bytes out = fsgen::generate_file(*kind, seed, size);
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

struct CommonOpts {
  std::string profile;
  std::string dir;
  std::string manifest;  // corpus pinned by `cksumlab manifest`
  std::string corpus;    // prebuilt store from `cksumlab corpus build`
  std::string from_pcap; // capture file (corpus build only)
  std::string metrics_out;  // telemetry run-manifest path ("" = off)
  net::PacketConfig pkt;
  double scale = 1.0;
  std::size_t segment = 256;
  unsigned threads = 0;  // 0 = all hardware threads
  bool verbose = false;  // evaluator internals (path mix, pair count)
  bool json = false;     // machine-readable report on stdout
  bool progress = false; // force the stderr ticker even without a tty
  // Distributed coordinator mode (docs/DIST.md). --workers implies
  // --serve; --serve alone waits for externally started workers.
  bool serve = false;
  unsigned workers = 0;        // workers to self-spawn (and barrier on)
  std::uint16_t port = 0;      // 0 = ephemeral
  std::uint64_t lease_timeout_ms = 15000;
  std::size_t shard_files = 0; // files per lease; 0 = auto
  bool ok = true;
};

CommonOpts parse_common(const std::vector<std::string>& args) {
  CommonOpts o;
  bool quick = false;
  bool scale_set = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        o.ok = false;
        return {};
      }
      return args[++i];
    };
    if (a == "--profile") {
      o.profile = next();
    } else if (a == "--manifest") {
      o.manifest = next();
    } else if (a == "--dir") {
      o.dir = next();
    } else if (a == "--corpus") {
      o.corpus = next();
    } else if (a == "--from-pcap") {
      o.from_pcap = next();
    } else if (a == "--scale") {
      o.scale = std::stod(next());
      scale_set = true;
    } else if (a == "--segment") {
      o.segment = std::stoull(next());
    } else if (a == "--threads") {
      o.threads = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--trailer") {
      o.pkt.placement = net::ChecksumPlacement::kTrailer;
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--metrics-out") {
      o.metrics_out = next();
    } else if (a == "--serve") {
      o.serve = true;
    } else if (a == "--workers") {
      o.workers = static_cast<unsigned>(std::stoul(next()));
      o.serve = true;
    } else if (a == "--port") {
      // Reject rather than silently truncate to 16 bits: a port of 0
      // or >= 65536 would otherwise bind somewhere unrelated.
      const unsigned long v = std::stoul(next());
      if (v == 0 || v > 65535) {
        std::fprintf(stderr,
                     "cksumlab: --port must be in 1..65535 (got %lu)\n", v);
        o.ok = false;
      } else {
        o.port = static_cast<std::uint16_t>(v);
      }
    } else if (a == "--lease-timeout") {
      o.lease_timeout_ms = std::stoull(next());
      if (o.lease_timeout_ms == 0) {
        std::fprintf(stderr,
                     "cksumlab: --lease-timeout must be a positive "
                     "millisecond count\n");
        o.ok = false;
      }
    } else if (a == "--shard-files") {
      o.shard_files = std::stoull(next());
    } else if (a == "--quick") {
      quick = true;
    } else if (a == "--transport") {
      const std::string v = next();
      if (v == "tcp") {
        o.pkt.transport = alg::Algorithm::kInternet;
      } else if (v == "f255") {
        o.pkt.transport = alg::Algorithm::kFletcher255;
      } else if (v == "f256") {
        o.pkt.transport = alg::Algorithm::kFletcher256;
      } else {
        o.ok = false;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  int sources = (!o.profile.empty() ? 1 : 0) + (!o.dir.empty() ? 1 : 0) +
                (!o.manifest.empty() ? 1 : 0) + (!o.corpus.empty() ? 1 : 0) +
                (!o.from_pcap.empty() ? 1 : 0);
  if (quick && sources == 0) {
    // CI shorthand: a corpus small enough for smoke jobs.
    o.profile = "nsc05";
    if (!scale_set) o.scale = 0.1;
    sources = 1;
  }
  if (sources != 1) o.ok = false;  // exactly one corpus source
  return o;
}

void print_splice_stats(const core::SpliceStats& st,
                        const net::PacketConfig& pkt, bool verbose) {
  core::TextTable t({"", "count", "% remaining"});
  t.add_row({"files", core::fmt_count(st.files), ""});
  t.add_row({"packets", core::fmt_count(st.packets), ""});
  t.add_row({"splices", core::fmt_count(st.total), ""});
  t.add_row({"caught by header", core::fmt_count(st.caught_by_header), ""});
  t.add_row({"identical data", core::fmt_count(st.identical), ""});
  t.add_row({"remaining", core::fmt_count(st.remaining), "100"});
  t.add_row({"missed by CRC-32", core::fmt_count(st.missed_crc),
             core::fmt_pct(st.missed_crc, st.remaining)});
  const std::string name = "missed by " + std::string(alg::name(pkt.transport));
  t.add_row({name, core::fmt_count(st.missed_transport),
             core::fmt_pct(st.missed_transport, st.remaining)});
  t.add_row({"missed by K-Dual", core::fmt_count(st.missed_koopman_dual),
             core::fmt_pct(st.missed_koopman_dual, st.remaining)});
  t.add_row({"missed by K-Single", core::fmt_count(st.missed_koopman_single),
             core::fmt_pct(st.missed_koopman_single, st.remaining)});
  t.print(std::cout);
  std::printf("uniform-data expectation for %s: %s%%\n",
              std::string(alg::name(pkt.transport)).c_str(),
              core::fmt_pct(alg::uniform_miss_rate(pkt.transport)).c_str());
  if (verbose) {
    std::printf("checksum kernel:    %s\n",
                std::string(alg::kern::active_kernel().name).c_str());
    std::printf("pairs evaluated:    %s\n", core::fmt_count(st.pairs).c_str());
    std::printf("evaluator path mix: %s\n",
                core::fmt_path_mix(st.fast_path, st.slow_path).c_str());
  }
}

int cmd_manifest(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const fsgen::Filesystem fs(fsgen::profile(args[0]),
                             args.size() > 1 ? std::stod(args[1]) : 1.0);
  std::fputs(fs.to_manifest().c_str(), stdout);
  return 0;
}

int cmd_pcap(const std::vector<std::string>& args) {
  // cksumlab pcap <out.pcap> [profile] [max-packets]
  //               [--link raw|eth] [--scale x] [--segment n]
  //               [--transport tcp|f255|f256] [--trailer]
  // Writes a synthetic capture whose datagrams carry the configured
  // flow — the fixture generator for the trace lab (docs/TRACE.md).
  std::vector<std::string> pos;
  util::PcapLink link = util::PcapLink::kRaw;
  double scale = 0.2;
  net::FlowConfig flow = core::paper_flow_config();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (a == "--link") {
      const std::string v = next();
      if (v == "raw") {
        link = util::PcapLink::kRaw;
      } else if (v == "eth") {
        link = util::PcapLink::kEthernet;
      } else {
        std::fprintf(stderr, "cksumlab: --link wants raw or eth\n");
        return usage();
      }
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--segment") {
      flow.segment_size = std::stoull(next());
    } else if (a == "--trailer") {
      flow.packet.placement = net::ChecksumPlacement::kTrailer;
    } else if (a == "--transport") {
      const std::string v = next();
      if (v == "tcp") {
        flow.packet.transport = alg::Algorithm::kInternet;
      } else if (v == "f255") {
        flow.packet.transport = alg::Algorithm::kFletcher255;
      } else if (v == "f256") {
        flow.packet.transport = alg::Algorithm::kFletcher256;
      } else {
        return usage();
      }
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown pcap option '%s'\n", a.c_str());
      return usage();
    } else {
      pos.push_back(a);
    }
  }
  if (pos.empty()) return usage();
  const std::string prof_name = pos.size() > 1 ? pos[1] : "sics.se:/opt";
  const std::size_t max_pkts = pos.size() > 2 ? std::stoull(pos[2]) : 200;
  const fsgen::Filesystem fs(fsgen::profile(prof_name), scale);

  std::ofstream out(pos[0], std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", pos[0].c_str());
    return 1;
  }
  util::PcapWriter pcap(out, link);
  for (std::size_t f = 0; f < fs.file_count(); ++f) {
    if (pcap.packets_written() >= max_pkts) break;
    const util::Bytes file = fs.file(f);
    for (const auto& p : net::segment_file(flow, util::ByteView(file))) {
      if (pcap.packets_written() >= max_pkts) break;
      pcap.write_packet(p.ip_bytes());
    }
  }
  if (!pcap.ok()) {
    std::fprintf(stderr, "cksumlab: write error on %s\n", pos[0].c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu packets -> %s (%s)\n", pcap.packets_written(),
               pos[0].c_str(),
               link == util::PcapLink::kRaw ? "LINKTYPE_RAW"
                                            : "LINKTYPE_ETHERNET");
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// The manifest's "trace" member: capture shape, the full ingest
/// accounting (records == accepted + rejected; rejected == sum of the
/// reject classes — identities check_manifest.py --require-trace
/// enforces) and the data profile of the accepted payload bytes.
std::string trace_json(const std::string& capture, const trace::PcapInfo& pi,
                       const trace::IngestCounts& c, std::size_t files,
                       const trace::DataProfile& prof) {
  const auto b = [](bool v) { return v ? "true" : "false"; };
  std::string j = "{\"capture\": \"" + json_escape(capture) + "\"";
  j += ", \"linktype\": " + std::to_string(pi.linktype);
  j += ", \"swapped\": " + std::string(b(pi.swapped));
  j += ", \"nanos\": " + std::string(b(pi.nanos));
  j += ", \"snaplen\": " + std::to_string(pi.snaplen);
  j += ", \"records\": " + std::to_string(c.records);
  j += ", \"accepted\": " + std::to_string(c.accepted);
  j += ", \"rejected\": " + std::to_string(c.rejected);
  j += ", \"files\": " + std::to_string(files);
  j += ", \"rejects\": {";
  j += "\"truncated\": " + std::to_string(c.truncated);
  j += ", \"link_too_short\": " + std::to_string(c.link_too_short);
  j += ", \"non_ipv4\": " + std::to_string(c.non_ipv4);
  j += ", \"header\": " + std::to_string(c.header_fail);
  j += ", \"checksum\": " + std::to_string(c.checksum_fail);
  j += ", \"orphan\": " + std::to_string(c.orphan);
  j += "}, \"profile\": " + prof.json() + "}";
  return j;
}

/// Fold every accepted packet's payload into the profiler. The profile
/// is over delivered payload bytes (what the paper's Figure 2/3 data
/// characterises), not headers or AAL5 framing.
trace::DataProfile profile_ingest(const trace::IngestResult& res) {
  trace::DataProfile prof;
  for (const auto& file : res.files)
    for (const core::SimPacket& sp : file) prof.add_payload(sp.pkt.payload());
  return prof;
}

int cmd_trace(const std::vector<std::string>& args) {
  // cksumlab trace (info|profile|ingest) <capture.pcap> [options]
  if (args.size() < 2) return usage();
  const std::string verb = args[0];
  const std::string capture = args[1];
  if (verb != "info" && verb != "profile" && verb != "ingest") {
    std::fprintf(stderr, "unknown trace verb '%s'\n", verb.c_str());
    return usage();
  }
  net::FlowConfig flow = core::paper_flow_config();
  bool json = false;
  std::string metrics_out;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (a == "--segment") {
      flow.segment_size = std::stoull(next());
    } else if (a == "--trailer") {
      flow.packet.placement = net::ChecksumPlacement::kTrailer;
    } else if (a == "--transport") {
      const std::string v = next();
      if (v == "tcp") {
        flow.packet.transport = alg::Algorithm::kInternet;
      } else if (v == "f255") {
        flow.packet.transport = alg::Algorithm::kFletcher255;
      } else if (v == "f256") {
        flow.packet.transport = alg::Algorithm::kFletcher256;
      } else {
        return usage();
      }
    } else if (a == "--json") {
      json = true;
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else {
      std::fprintf(stderr, "unknown trace option '%s'\n", a.c_str());
      return usage();
    }
  }

  trace::register_trace_metrics();
  alg::kern::register_kernel_metrics();

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!metrics_out.empty()) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = metrics_out;
    eo.ticker = false;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }

  std::string err;
  const auto pcap = trace::PcapReader::open(capture, &err);
  if (!pcap) {
    std::fprintf(stderr, "cksumlab: trace %s: %s\n", capture.c_str(),
                 err.c_str());
    return 1;
  }
  const trace::PcapInfo& pi = pcap->info();

  if (verb == "info") {
    std::printf("capture      %s\n", capture.c_str());
    std::printf("version      %u.%u\n", pi.version_major, pi.version_minor);
    std::printf("byte order   %s\n", pi.swapped ? "swapped" : "native");
    std::printf("resolution   %s\n",
                pi.nanos ? "nanoseconds" : "microseconds");
    std::printf("snaplen      %u\n", pi.snaplen);
    std::printf("linktype     %s (%u)\n",
                pi.linktype == trace::kLinkRaw ? "LINKTYPE_RAW"
                                               : "LINKTYPE_ETHERNET",
                pi.linktype);
    std::printf("records      %s\n", core::fmt_count(pi.records).c_str());
    std::printf("datagrams    %s\n", core::fmt_count(pi.datagrams).c_str());
    std::printf("truncated    %s\n", core::fmt_count(pi.truncated).c_str());
    std::printf("frame bytes  %s\n", core::fmt_count(pi.frame_bytes).c_str());
    return 0;
  }

  trace::IngestConfig icfg;
  icfg.flow = flow;
  const trace::IngestResult res = trace::ingest_capture(*pcap, icfg);
  const trace::DataProfile prof = profile_ingest(res);
  const std::string tj =
      trace_json(capture, pi, res.counts, res.files.size(), prof);

  if (exporter) {
    obs::RunInfo info;
    info.tool = "cksumlab trace";
    info.corpus = capture;
    info.seed = 0;
    info.threads = 1;
    info.extra_json = tools::kernel_manifest_json() + ", \"trace\": " + tj;
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "cksumlab: cannot write manifest to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }

  if (json) {
    std::printf("%s\n", tj.c_str());
    return 0;
  }
  if (verb == "ingest") {
    const trace::IngestCounts& c = res.counts;
    core::TextTable t({"", "count"});
    t.add_row({"records", core::fmt_count(c.records)});
    t.add_row({"accepted", core::fmt_count(c.accepted)});
    t.add_row({"rejected", core::fmt_count(c.rejected)});
    t.add_row({"  snap-truncated", core::fmt_count(c.truncated)});
    t.add_row({"  link too short", core::fmt_count(c.link_too_short)});
    t.add_row({"  non-IPv4", core::fmt_count(c.non_ipv4)});
    t.add_row({"  header check", core::fmt_count(c.header_fail)});
    t.add_row({"  bad checksum", core::fmt_count(c.checksum_fail)});
    t.add_row({"  orphan data", core::fmt_count(c.orphan)});
    t.add_row({"file transfers", core::fmt_count(res.files.size())});
    t.print(std::cout);
    return 0;
  }
  // verb == "profile"
  std::printf("payload bytes     %s\n", core::fmt_count(prof.bytes()).c_str());
  std::printf("byte entropy      %.2f bits of 8\n",
              prof.byte_values().entropy_bits());
  std::printf("word entropy      %.2f bits of 16\n",
              prof.word_values().entropy_bits());
  std::printf("zero bytes        %s%%  (%s runs, longest %s)\n",
              core::fmt_pct(prof.byte_fraction(0x00)).c_str(),
              core::fmt_count(prof.zero_runs().runs).c_str(),
              core::fmt_count(prof.zero_runs().max_run).c_str());
  std::printf("0xFF bytes        %s%%  (%s runs, longest %s)\n",
              core::fmt_pct(prof.byte_fraction(0xFF)).c_str(),
              core::fmt_count(prof.ff_runs().runs).c_str(),
              core::fmt_count(prof.ff_runs().max_run).c_str());
  std::printf("48-byte cells     %s\n", core::fmt_count(prof.cells()).c_str());
  std::printf("cell entropy      %.2f bits of 16\n",
              prof.cell_checksums().entropy_bits());
  std::printf("most common cell  0x%04x (%s%% of cells)\n",
              prof.cell_checksums().mode(),
              core::fmt_pct(prof.cell_checksums().pmax()).c_str());
  return 0;
}

/// Live one-line view of a splice run, built from the same snapshot
/// the JSONL progress stream is written from.
std::string splice_ticker_line(const obs::Snapshot& snap, double elapsed) {
  const auto get = [&](std::string_view name) -> std::uint64_t {
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  const std::uint64_t fast = get("splice.fast_path");
  const std::uint64_t slow = get("splice.slow_path");
  const std::uint64_t evaluated = fast + slow;
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "splice: %llu files  %llu pairs  %llu splices  %.2f%% fast  %.1fs",
      static_cast<unsigned long long>(get("splice.files")),
      static_cast<unsigned long long>(get("splice.pairs")),
      static_cast<unsigned long long>(get("splice.total")),
      evaluated == 0 ? 0.0
                     : 100.0 * static_cast<double>(fast) /
                           static_cast<double>(evaluated),
      elapsed);
  return buf;
}

/// `cksumlab splice --connect host:port` — one worker of a distributed
/// run. The coordinator ships the corpus and run configuration, so
/// only connection identity is parsed here.
int cmd_splice_worker(const std::vector<std::string>& args) {
  dist::WorkerOptions w;
  w.tool = "cksumlab splice-worker";
  std::string hostport;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (a == "--connect") {
      hostport = next();
    } else if (a == "--worker-id") {
      w.worker_id = std::stoull(next());
    } else if (a == "--metrics-out") {
      w.metrics_out = next();
    } else {
      std::fprintf(stderr, "unknown worker option '%s'\n", a.c_str());
      return usage();
    }
  }
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants host:port\n");
    return usage();
  }
  w.host = hostport.substr(0, colon);
  w.port = static_cast<std::uint16_t>(std::stoul(hostport.substr(colon + 1)));
  return dist::run_worker(w);
}

/// Coordinator side of `cksumlab splice --serve`: shard the corpus,
/// self-spawn `--workers` worker processes (0 = externally started),
/// and merge their lease results. On success `st` and `dist_json` hold
/// the merged stats and the manifest's "dist" member.
int run_distributed(const CommonOpts& o, const fsgen::CorpusReader* store,
                    std::string& corpus, core::SpliceStats& st,
                    std::string& dist_json) {
  dist::DistConfig dc;
  dist::ConfigMsg& run = dc.run;
  run.scale = o.scale;
  run.segment = o.segment;
  run.transport = static_cast<std::uint8_t>(o.pkt.transport);
  run.trailer = o.pkt.placement == net::ChecksumPlacement::kTrailer;
  if (store != nullptr) {
    // Workers mmap the store themselves and take the run flow FROM it,
    // so only the path crosses the wire.
    corpus = o.corpus;
    run.corpus_kind = dist::CorpusKind::kCorpusFile;
    run.corpus = o.corpus;
    dc.nfiles = store->file_count();
  } else if (!o.profile.empty()) {
    corpus = o.profile;
    run.corpus_kind = dist::CorpusKind::kProfile;
    run.corpus = o.profile;
    dc.nfiles =
        fsgen::Filesystem(fsgen::profile(o.profile), o.scale).file_count();
  } else if (!o.manifest.empty()) {
    // Ship the manifest text itself so workers need no shared fs.
    corpus = o.manifest;
    const util::Bytes text = core::read_file_prefix(o.manifest, 1u << 24);
    run.corpus_kind = dist::CorpusKind::kManifest;
    run.corpus.assign(text.begin(), text.end());
    dc.nfiles = fsgen::Filesystem::from_manifest(fsgen::profile("nsc05"),
                                                 run.corpus)
                    .file_count();
  } else {
    corpus = o.dir;
    run.corpus_kind = dist::CorpusKind::kDirectory;
    run.corpus = o.dir;
    dc.nfiles = core::list_corpus_files(o.dir).size();
  }
  // Split the machine across the fleet unless --threads pinned it.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  run.threads =
      o.threads != 0 ? o.threads
                     : std::max(1u, o.workers != 0 ? hw / o.workers : hw);
  dc.expected_workers = o.workers;
  dc.shard_files = o.shard_files;
  dc.port = o.port;
  dc.lease_timeout_ms = o.lease_timeout_ms;

  dist::Coordinator coord(dc);
  std::vector<pid_t> pids;
  if (o.workers > 0) {
    const std::string exe = dist::self_exe_path();
    if (exe.empty()) {
      std::fprintf(stderr, "cksumlab: cannot locate own executable\n");
      return 1;
    }
    for (unsigned i = 0; i < o.workers; ++i) {
      std::vector<std::string> argv = {
          exe,
          "splice",
          "--connect",
          "127.0.0.1:" + std::to_string(coord.port()),
          "--worker-id",
          std::to_string(i + 1),
          "--kernel",
          std::string(alg::kern::active_kernel().name)};
      if (!o.metrics_out.empty()) {
        argv.push_back("--metrics-out");
        argv.push_back(o.metrics_out + ".worker" + std::to_string(i + 1) +
                       ".json");
      }
      const pid_t pid = dist::spawn_process(argv);
      if (pid < 0) {
        std::fprintf(stderr, "cksumlab: cannot spawn worker %u\n", i + 1);
        return 1;
      }
      pids.push_back(pid);
    }
  } else {
    std::fprintf(stderr, "cksumlab: serving on 127.0.0.1:%u, waiting for "
                         "workers (--connect)\n",
                 coord.port());
  }

  std::function<void(const dist::DistEvent&)> hook;
  if (o.verbose) {
    hook = [](const dist::DistEvent& ev) {
      const char* what = "";
      switch (ev.kind) {
        case dist::DistEvent::Kind::kWorkerConnected: what = "connected"; break;
        case dist::DistEvent::Kind::kResultAccepted: what = "result"; break;
        case dist::DistEvent::Kind::kLeaseReassigned: what = "reassigned"; break;
        case dist::DistEvent::Kind::kWorkerLost: what = "lost"; break;
      }
      std::fprintf(stderr, "dist: worker %llu (pid %llu) %s shard %zu\n",
                   static_cast<unsigned long long>(ev.worker_id),
                   static_cast<unsigned long long>(ev.pid), what, ev.shard);
    };
  }
  const dist::DistReport rep = coord.run(hook);
  for (const pid_t pid : pids) dist::wait_process(pid);
  if (!rep.complete) {
    std::fprintf(stderr,
                 "cksumlab: distributed run aborted incomplete "
                 "(%zu shards, %zu reassigned)\n",
                 rep.shards, rep.reassigned);
    return 1;
  }
  st = rep.stats;
  // The manifest's "dist" member is a per-job array even for this
  // single-job path, so check_manifest validates one shape everywhere.
  dist::JobReport jr;
  jr.job = 1;
  jr.name = corpus;
  jr.state = dist::JobState::kDone;
  jr.report = rep;
  dist_json = "[" + jr.json() + "]";
  return 0;
}

int cmd_splice(const std::vector<std::string>& args) {
  for (const std::string& a : args)
    if (a == "--connect") return cmd_splice_worker(args);
  CommonOpts o = parse_common(args);
  if (!o.ok) return usage();
  if (!o.from_pcap.empty()) {
    std::fprintf(stderr,
                 "cksumlab: splice does not read captures directly; seal one "
                 "first with `corpus build --from-pcap`, then --corpus\n");
    return 2;
  }

  // Register every metric family up front so exported manifests carry
  // complete (if zero-valued) families, not just the ones touched.
  core::register_splice_metrics();
  faults::register_fault_metrics();
  atm::register_atm_metrics();
  alg::kern::register_kernel_metrics();
  dist::register_dist_metrics();

  // A prebuilt store is authoritative for the flow it was packetised
  // under (the transport checksum is baked into the packet bytes), so
  // its parameters override the command line for reporting too.
  std::unique_ptr<fsgen::CorpusReader> store;
  if (!o.corpus.empty()) {
    std::string err;
    store = fsgen::CorpusReader::open(o.corpus, &err);
    if (!store) {
      std::fprintf(stderr, "cksumlab: corpus store %s: %s\n",
                   o.corpus.c_str(), err.c_str());
      return 1;
    }
    o.pkt = store->info().params.flow.packet;
    o.segment = store->info().params.flow.segment_size;
    o.scale = store->info().params.scale;
  }

  core::SpliceRunConfig cfg;
  cfg.flow = core::paper_flow_config();
  cfg.flow.segment_size = o.segment;
  cfg.flow.packet = o.pkt;
  if (store) cfg.flow = store->info().params.flow;
  cfg.threads = o.threads;
  const unsigned resolved_threads =
      o.threads != 0 ? o.threads
                     : std::max(1u, std::thread::hardware_concurrency());

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!o.metrics_out.empty() || o.progress) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = o.metrics_out;
    eo.ticker = o.progress || isatty(2) != 0;
    eo.ticker_line = splice_ticker_line;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }

  core::SpliceStats st;
  std::string corpus;
  std::string dist_json;  // "dist" manifest member for --serve runs
  if (o.serve) {
    const int rc = run_distributed(o, store.get(), corpus, st, dist_json);
    if (rc != 0) return rc;
  } else if (store) {
    corpus = o.corpus;
    st = core::run_corpus(cfg, *store);
  } else if (!o.profile.empty()) {
    corpus = o.profile;
    const fsgen::Filesystem fs(fsgen::profile(o.profile), o.scale);
    st = core::run_filesystem(cfg, fs);
  } else if (!o.manifest.empty()) {
    corpus = o.manifest;
    const util::Bytes text = core::read_file_prefix(o.manifest, 1u << 24);
    const fsgen::Filesystem fs = fsgen::Filesystem::from_manifest(
        fsgen::profile("nsc05"),
        std::string_view(reinterpret_cast<const char*>(text.data()),
                         text.size()));
    st = core::run_filesystem(cfg, fs);
  } else {
    corpus = o.dir;
    st = core::run_directory(cfg, o.dir);
  }

  const std::string report =
      core::splice_stats_json(st, alg::name(o.pkt.transport));
  if (exporter) {
    obs::RunInfo info;
    info.tool = "cksumlab splice";
    info.corpus = corpus;
    info.seed = 0;  // splice corpora are pinned by profile/scale, not seed
    info.threads = resolved_threads;
    info.extra_json =
        tools::kernel_manifest_json() + ", \"report\": " + report;
    if (!dist_json.empty()) info.extra_json += ",\n  \"dist\": " + dist_json;
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "cksumlab: cannot write manifest to %s\n",
                   o.metrics_out.c_str());
      return 1;
    }
  }

  if (o.json) {
    std::printf("%s\n", report.c_str());
  } else {
    print_splice_stats(st, o.pkt, o.verbose);
  }
  return 0;
}

/// `cksumlab corpus build --out <path>` / `cksumlab corpus info <path>`
/// — write and inspect the precomputed splice-corpus store
/// (docs/CORPUS.md). Build packetises a synthetic source exactly once;
/// `splice --corpus <path>` then streams it without re-checksumming.
int cmd_corpus(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string verb = args.front();

  if (verb == "info") {
    if (args.size() < 2) return usage();
    std::string err;
    const auto rd = fsgen::CorpusReader::open(args[1], &err);
    if (!rd) {
      std::fprintf(stderr, "cksumlab: corpus store %s: %s\n",
                   args[1].c_str(), err.c_str());
      return 1;
    }
    const fsgen::CorpusInfo& in = rd->info();
    std::printf("store       %s\n", args[1].c_str());
    std::printf("version     %u\n", in.version);
    std::printf("file size   %s bytes\n",
                core::fmt_count(in.file_size).c_str());
    std::printf("files       %s\n", core::fmt_count(in.files).c_str());
    std::printf("packets     %s\n", core::fmt_count(in.packets).c_str());
    std::printf("cells       %s\n", core::fmt_count(in.cells).c_str());
    std::printf("pdu bytes   %s\n", core::fmt_count(in.pdu_bytes).c_str());
    std::printf("profile     %s\n", in.params.profile.c_str());
    std::printf("scale       %g\n", in.params.scale);
    std::printf("transport   %s\n",
                std::string(alg::name(in.params.flow.packet.transport))
                    .c_str());
    std::printf("placement   %s\n",
                in.params.flow.packet.placement ==
                        net::ChecksumPlacement::kTrailer
                    ? "trailer"
                    : "header");
    std::printf("segment     %zu\n", in.params.flow.segment_size);
    std::printf("compress    %s\n", in.params.compress ? "lzw" : "off");
    return 0;
  }

  if (verb != "build") {
    std::fprintf(stderr, "unknown corpus verb '%s'\n", verb.c_str());
    return usage();
  }
  // --out and --compress belong to build, not to parse_common.
  std::string out_path;
  bool compress = false;
  std::vector<std::string> common;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--compress") {
      compress = true;
    } else {
      common.push_back(args[i]);
    }
  }
  const CommonOpts o = parse_common(common);
  if (!o.ok || out_path.empty()) return usage();
  if (!o.dir.empty()) {
    std::fprintf(stderr,
                 "cksumlab: corpus build wants a reproducible synthetic "
                 "source (--profile/--manifest/--from-pcap), not --dir\n");
    return 2;
  }
  if (!o.from_pcap.empty() && compress) {
    std::fprintf(stderr,
                 "cksumlab: --compress is a packetisation step; a capture "
                 "already carries the bytes that crossed the wire\n");
    return 2;
  }

  fsgen::CorpusBuildParams params;
  params.scale = o.scale;
  params.compress = compress;
  params.flow = core::paper_flow_config();
  params.flow.segment_size = o.segment;
  params.flow.packet = o.pkt;

  std::string err;
  bool built = false;
  if (!o.from_pcap.empty()) {
    // Capture -> ingest -> seal: real packets enter the exact store the
    // synthetic path writes, so `splice --corpus` (and --serve, and
    // faultlab) run over them bitwise-identically (docs/TRACE.md).
    trace::register_trace_metrics();
    const auto pcap = trace::PcapReader::open(o.from_pcap, &err);
    if (!pcap) {
      std::fprintf(stderr, "cksumlab: trace %s: %s\n", o.from_pcap.c_str(),
                   err.c_str());
      return 1;
    }
    trace::IngestConfig icfg;
    icfg.flow = params.flow;
    const trace::IngestResult res = trace::ingest_capture(*pcap, icfg);
    if (res.files.empty()) {
      std::fprintf(stderr,
                   "cksumlab: no complete file transfer ingested from %s "
                   "(%llu records: %llu accepted, %llu rejected) — check "
                   "--transport/--trailer/--segment against the capture\n",
                   o.from_pcap.c_str(),
                   static_cast<unsigned long long>(res.counts.records),
                   static_cast<unsigned long long>(res.counts.accepted),
                   static_cast<unsigned long long>(res.counts.rejected));
      return 1;
    }
    // Display name: the capture's basename, clipped to the header field.
    const std::size_t slash = o.from_pcap.find_last_of('/');
    params.profile =
        o.from_pcap.substr(slash == std::string::npos ? 0 : slash + 1);
    if (params.profile.size() > 64) params.profile.resize(64);
    std::fprintf(stderr, "%s: %llu records, %llu accepted, %llu rejected\n",
                 o.from_pcap.c_str(),
                 static_cast<unsigned long long>(res.counts.records),
                 static_cast<unsigned long long>(res.counts.accepted),
                 static_cast<unsigned long long>(res.counts.rejected));
    built = fsgen::build_corpus(params, res.files, out_path, &err);
  } else if (!o.profile.empty()) {
    params.profile = o.profile;
    const fsgen::Filesystem fs(fsgen::profile(o.profile), o.scale);
    built = fsgen::build_corpus(params, fs, out_path, &err);
  } else {
    params.profile = o.manifest;
    const util::Bytes text = core::read_file_prefix(o.manifest, 1u << 24);
    const fsgen::Filesystem fs = fsgen::Filesystem::from_manifest(
        fsgen::profile("nsc05"),
        std::string_view(reinterpret_cast<const char*>(text.data()),
                         text.size()));
    built = fsgen::build_corpus(params, fs, out_path, &err);
  }
  if (!built) {
    std::fprintf(stderr, "cksumlab: corpus build failed: %s\n", err.c_str());
    return 1;
  }
  // Self-check: a store we cannot reopen and validate is not a store.
  const auto rd = fsgen::CorpusReader::open(out_path, &err);
  if (!rd) {
    std::fprintf(stderr,
                 "cksumlab: built store fails validation (%s) — removing\n",
                 err.c_str());
    std::remove(out_path.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "%s: %llu files, %llu packets, %llu cells (%s bytes)\n",
               out_path.c_str(),
               static_cast<unsigned long long>(rd->info().files),
               static_cast<unsigned long long>(rd->info().packets),
               static_cast<unsigned long long>(rd->info().cells),
               core::fmt_count(rd->info().file_size).c_str());
  return 0;
}

int cmd_dist(const std::vector<std::string>& args) {
  const CommonOpts o = parse_common(args);
  if (!o.ok || !o.from_pcap.empty()) return usage();
  core::CellStatsConfig cfg;
  cfg.ks = {1, 2, 4};
  cfg.segment_size = o.segment;

  core::CellStatsCollector stats =
      !o.profile.empty()
          ? core::collect_cell_stats(fsgen::profile(o.profile), o.scale, cfg)
          : core::collect_directory_stats(o.dir, cfg);

  const auto& h = stats.tcp_cells();
  std::printf("cells                 %s\n",
              core::fmt_count(stats.cells_seen()).c_str());
  std::printf("most common checksum  0x%04x (%s%% of cells)\n", h.mode(),
              core::fmt_pct(h.pmax()).c_str());
  std::printf("top 0.1%% of values    %s%% of cells\n",
              core::fmt_pct(h.top_fraction_mass(0.001)).c_str());
  std::printf("entropy               %.2f bits of 16\n", h.entropy_bits());
  std::printf("uniformity p-value    %.3e\n", stats::uniformity_p_value(h));
  std::printf("P[2 cells congruent]  %s%%   (uniform 0.0015%%)\n",
              core::fmt_pct(h.match_probability()).c_str());
  const auto& lc = stats.local(2);
  std::printf("local 2-block match   %s%%, excluding identical %s%%\n",
              core::fmt_pct(lc.p_congruent()).c_str(),
              core::fmt_pct(lc.p_congruent_excluding_identical()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  // Kernel selection is handled before the subcommand is even looked
  // at, so `cksumlab --kernel list` works bare and a bad --kernel (or
  // CKSUM_KERNEL) fails fast on every subcommand alike.
  std::vector<std::string> args(argv + 1, argv + argc);
  const int krc = tools::apply_kernel_args(args, "cksumlab");
  if (krc != 0) return krc == 1 ? 0 : 2;
  if (args.empty()) return usage();
  const std::string cmd = args.front();
  args.erase(args.begin());
  try {
    if (cmd == "sum") return cmd_sum(args);
    if (cmd == "profiles") return cmd_profiles();
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "manifest") return cmd_manifest(args);
    if (cmd == "pcap") return cmd_pcap(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "splice") return cmd_splice(args);
    if (cmd == "corpus") return cmd_corpus(args);
    if (cmd == "dist") return cmd_dist(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cksumlab: %s\n", e.what());
    return 1;
  }
  return usage();
}
