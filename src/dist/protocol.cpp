#include "dist/protocol.hpp"

#include <cstring>

#include "obs/registry.hpp"

namespace cksum::dist {
namespace {

void put_u8(util::Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(util::Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_str(util::Bytes& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader over one payload.
struct Reader {
  util::ByteView in;
  std::size_t off = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || in.size() - off < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return in[off++];
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(in[off++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(in[off++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(in.data() + off), n);
    off += n;
    return s;
  }
  /// Whole payload consumed with no trailing garbage.
  bool done() const { return ok && off == in.size(); }
};

/// Every SpliceStats counter in declaration order. Centralising the
/// walk in one template keeps encode and decode structurally identical
/// — adding a field to SpliceStats only needs one new line here (and
/// the wire count bumps automatically).
template <typename F>
void for_each_stat_field(core::SpliceStats& st, F&& f) {
  f(st.files);
  f(st.packets);
  f(st.pairs);
  f(st.total);
  f(st.caught_by_header);
  f(st.identical);
  f(st.remaining);
  f(st.missed_crc);
  f(st.missed_transport);
  f(st.missed_both);
  f(st.missed_koopman_dual);
  f(st.missed_koopman_single);
  f(st.fail_identical);
  f(st.pass_identical);
  f(st.fail_changed);
  f(st.pass_changed);
  f(st.remaining_with_hdr2);
  f(st.missed_with_hdr2);
  for (auto& v : st.remaining_by_k) f(v);
  for (auto& v : st.missed_by_k) f(v);
  f(st.slow_path);
  f(st.fast_path);
}

std::uint32_t stat_field_count() {
  std::uint32_t n = 0;
  core::SpliceStats st;
  for_each_stat_field(st, [&](std::uint64_t&) { ++n; });
  return n;
}

}  // namespace

void encode_stats(util::Bytes& out, const core::SpliceStats& st) {
  put_u32(out, stat_field_count());
  for_each_stat_field(const_cast<core::SpliceStats&>(st),
                      [&](std::uint64_t& v) { put_u64(out, v); });
}

bool decode_stats(util::ByteView in, std::size_t* offset,
                  core::SpliceStats* out) {
  Reader r{in, *offset};
  if (r.u32() != stat_field_count()) return false;
  for_each_stat_field(*out, [&](std::uint64_t& v) { v = r.u64(); });
  if (!r.ok) return false;
  *offset = r.off;
  return true;
}

util::Bytes encode(const HelloMsg& m) {
  util::Bytes out;
  put_u32(out, m.proto);
  put_u64(out, m.worker_id);
  put_u64(out, m.pid);
  return out;
}

std::optional<HelloMsg> decode_hello(util::ByteView in) {
  Reader r{in};
  HelloMsg m;
  m.proto = r.u32();
  m.worker_id = r.u64();
  m.pid = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

util::Bytes encode(const ConfigMsg& m) {
  util::Bytes out;
  put_u8(out, static_cast<std::uint8_t>(m.corpus_kind));
  put_str(out, m.corpus);
  put_f64(out, m.scale);
  put_u64(out, m.segment);
  put_u8(out, m.transport);
  put_u8(out, m.trailer ? 1 : 0);
  put_u8(out, m.compress ? 1 : 0);
  put_u32(out, m.threads);
  put_u32(out, m.heartbeat_ms);
  return out;
}

std::optional<ConfigMsg> decode_config(util::ByteView in) {
  Reader r{in};
  ConfigMsg m;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(CorpusKind::kCorpusFile))
    return std::nullopt;
  m.corpus_kind = static_cast<CorpusKind>(kind);
  m.corpus = r.str();
  m.scale = r.f64();
  m.segment = r.u64();
  m.transport = r.u8();
  m.trailer = r.u8() != 0;
  m.compress = r.u8() != 0;
  m.threads = r.u32();
  m.heartbeat_ms = r.u32();
  if (!r.done()) return std::nullopt;
  return m;
}

util::Bytes encode(const JobConfigMsg& m) {
  util::Bytes out;
  put_u64(out, m.job);
  put_str(out, m.name);
  const util::Bytes cfg = encode(m.run);
  out.insert(out.end(), cfg.begin(), cfg.end());
  return out;
}

std::optional<JobConfigMsg> decode_job_config(util::ByteView in) {
  Reader r{in};
  JobConfigMsg m;
  m.job = r.u64();
  m.name = r.str();
  if (!r.ok) return std::nullopt;
  const auto cfg =
      decode_config(util::ByteView(in.data() + r.off, in.size() - r.off));
  if (!cfg) return std::nullopt;
  m.run = *cfg;
  return m;
}

util::Bytes encode(const LeaseGrantMsg& m) {
  util::Bytes out;
  put_u64(out, m.shard);
  put_u64(out, m.epoch);
  put_u64(out, m.begin);
  put_u64(out, m.end);
  put_u64(out, m.job);
  return out;
}

std::optional<LeaseGrantMsg> decode_lease_grant(util::ByteView in) {
  Reader r{in};
  LeaseGrantMsg m;
  m.shard = r.u64();
  m.epoch = r.u64();
  m.begin = r.u64();
  m.end = r.u64();
  m.job = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

util::Bytes encode(const LeaseResultMsg& m) {
  util::Bytes out;
  put_u64(out, m.shard);
  put_u64(out, m.epoch);
  encode_stats(out, m.stats);
  put_u32(out, static_cast<std::uint32_t>(m.deltas.size()));
  for (const obs::CounterDelta& d : m.deltas) {
    put_str(out, d.name);
    put_u64(out, d.delta);
  }
  put_u64(out, m.job);
  return out;
}

std::optional<LeaseResultMsg> decode_lease_result(util::ByteView in) {
  Reader r{in};
  LeaseResultMsg m;
  m.shard = r.u64();
  m.epoch = r.u64();
  if (!r.ok) return std::nullopt;
  std::size_t off = r.off;
  if (!decode_stats(in, &off, &m.stats)) return std::nullopt;
  r.off = off;
  const std::uint32_t n = r.u32();
  if (!r.ok || n > 65536) return std::nullopt;
  m.deltas.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::CounterDelta d;
    d.name = r.str();
    d.delta = r.u64();
    if (!r.ok) return std::nullopt;
    m.deltas.push_back(std::move(d));
  }
  m.job = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

util::Bytes encode(const HeartbeatMsg& m) {
  util::Bytes out;
  put_u64(out, m.shard);
  put_u64(out, m.epoch);
  put_u64(out, m.job);
  return out;
}

std::optional<HeartbeatMsg> decode_heartbeat(util::ByteView in) {
  Reader r{in};
  HeartbeatMsg m;
  m.shard = r.u64();
  m.epoch = r.u64();
  m.job = r.u64();
  if (!r.done()) return std::nullopt;
  return m;
}

util::Bytes encode(const GoodbyeMsg& m) {
  util::Bytes out;
  put_str(out, m.manifest_path);
  return out;
}

std::optional<GoodbyeMsg> decode_goodbye(util::ByteView in) {
  Reader r{in};
  GoodbyeMsg m;
  m.manifest_path = r.str();
  if (!r.done()) return std::nullopt;
  return m;
}

void register_dist_metrics() {
  obs::Registry& reg = obs::Registry::global();
  // Frame-level traffic (recorded by FrameChannel).
  reg.counter("dist.frames_sent", obs::Tag::kScheduling);
  reg.counter("dist.frames_received", obs::Tag::kScheduling);
  reg.counter("dist.bytes_sent", obs::Tag::kScheduling);
  reg.counter("dist.bytes_received", obs::Tag::kScheduling);
  reg.counter("dist.frame_crc_rejects", obs::Tag::kScheduling);
  reg.counter("dist.frame_resends", obs::Tag::kScheduling);
  // Lease lifecycle (recorded by the coordinator).
  reg.counter("dist.workers_connected", obs::Tag::kScheduling);
  reg.counter("dist.workers_lost", obs::Tag::kScheduling);
  reg.counter("dist.leases_granted", obs::Tag::kScheduling);
  reg.counter("dist.leases_reassigned", obs::Tag::kScheduling);
  reg.counter("dist.results_accepted", obs::Tag::kScheduling);
  reg.counter("dist.results_stale", obs::Tag::kScheduling);
  reg.counter("dist.heartbeats", obs::Tag::kScheduling);
  // Multi-tenant job service (service.hpp).
  reg.counter("dist.jobs_submitted", obs::Tag::kScheduling);
  reg.counter("dist.jobs_rejected", obs::Tag::kScheduling);
  reg.counter("dist.jobs_cancelled", obs::Tag::kScheduling);
  reg.counter("dist.jobs_completed", obs::Tag::kScheduling);
  // High-water mark of any connection's bounded write queue (monotone
  // max, recorded as the counter's value) and grants deferred because
  // a queue was at capacity.
  reg.counter("dist.write_queue_hwm", obs::Tag::kScheduling);
  reg.counter("dist.grants_deferred", obs::Tag::kScheduling);
}

}  // namespace cksum::dist
