// Minimal IPv4 header model (20 bytes, no options) — enough to build
// the loopback FTP packets the paper's simulator generates and to run
// the receiver-side syntactic checks that gate the checksum tests.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace cksum::net {

inline constexpr std::size_t kIpv4HeaderLen = 20;

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  // header length in 32-bit words
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;
  std::uint16_t id = 0;
  std::uint16_t frag_off = 0;  // flags + fragment offset
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 6;  // TCP
  std::uint16_t header_checksum = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;

  /// Serialise into exactly kIpv4HeaderLen bytes at `out`.
  void write(std::uint8_t* out) const noexcept;

  /// Parse from a buffer; returns nullopt if too short.
  static std::optional<Ipv4Header> parse(util::ByteView data) noexcept;

  /// Internet checksum of the serialised header with the checksum
  /// field zeroed (the value the header_checksum field should hold).
  std::uint16_t compute_checksum() const noexcept;
};

/// Validate a parsed header's checksum against `raw` (the 20 wire
/// bytes): the ones-complement sum over the header must be congruent
/// to 0xFFFF.
bool ipv4_checksum_ok(util::ByteView raw_header) noexcept;

}  // namespace cksum::net
