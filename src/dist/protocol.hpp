// Message payload encodings for the distributed splice service.
//
// Each message is the payload of one frame (frame.hpp); all integers
// are little-endian, strings are u32-length-prefixed UTF-8, and
// SpliceStats travels as a u32 field count followed by every counter
// in declaration order — the count is checked on decode so a skewed
// build (different kMaxTrackedK, added counters) is rejected instead
// of silently mis-merged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/splice_sim.hpp"
#include "obs/snapshot.hpp"
#include "util/bytes.hpp"

namespace cksum::dist {

/// v2: lease/heartbeat/result frames carry a job id (multi-tenant
/// JobService, service.hpp) and ConfigMsg may name a corpus store.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// How ConfigMsg::corpus names the corpus.
enum class CorpusKind : std::uint8_t {
  kProfile = 0,    ///< corpus = profile name, scaled by `scale`
  kDirectory = 1,  ///< corpus = directory path (must exist on the worker)
  kManifest = 2,   ///< corpus = the manifest *text* itself (no shared fs)
  kCorpusFile = 3, ///< corpus = path to a prebuilt corpus store
                   ///< (`cksumlab corpus build`); the worker takes the
                   ///< run flow FROM the store, not from this message
};

/// worker -> coordinator, first frame on the connection.
struct HelloMsg {
  std::uint32_t proto = kProtocolVersion;
  std::uint64_t worker_id = 0;
  std::uint64_t pid = 0;
};

/// coordinator -> worker, answer to Hello: everything needed to
/// reconstruct the exact single-process run configuration.
struct ConfigMsg {
  CorpusKind corpus_kind = CorpusKind::kProfile;
  std::string corpus;
  double scale = 1.0;
  std::uint64_t segment = 256;
  std::uint8_t transport = 0;  ///< alg::Algorithm
  bool trailer = false;        ///< ChecksumPlacement::kTrailer
  bool compress = false;
  std::uint32_t threads = 1;   ///< evaluator threads inside the worker
  std::uint32_t heartbeat_ms = 1000;
};

/// coordinator -> worker: a named job's run configuration. The
/// multi-tenant JobService sends one of these before the first lease
/// it grants a connection for that job; the single-job Coordinator
/// never sends it (its lone Config is job 0).
struct JobConfigMsg {
  std::uint64_t job = 0;
  std::string name;  ///< display name (informational)
  ConfigMsg run;
};

/// coordinator -> worker: lease on files [begin, end) of shard
/// `shard`. `epoch` is the at-most-once token — it increments on every
/// (re)grant of the shard, and results carrying a stale epoch are
/// discarded by the coordinator. `job` scopes the shard space: shard
/// indices are per-job (0 for the single-job Coordinator).
struct LeaseGrantMsg {
  std::uint64_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t job = 0;
};

/// worker -> coordinator: the completed shard's statistics plus the
/// deterministic-counter growth its evaluation caused in the worker's
/// registry (obs::counter_deltas), so the coordinator can reproduce
/// the single-process aggregate exactly.
struct LeaseResultMsg {
  std::uint64_t shard = 0;
  std::uint64_t epoch = 0;
  core::SpliceStats stats;
  std::vector<obs::CounterDelta> deltas;
  std::uint64_t job = 0;
};

/// worker -> coordinator while evaluating (extends the lease deadline).
struct HeartbeatMsg {
  std::uint64_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t job = 0;
};

/// worker -> coordinator on clean shutdown; `manifest_path` is the
/// worker's own sub-manifest ("" when metrics export is off).
struct GoodbyeMsg {
  std::string manifest_path;
};

util::Bytes encode(const HelloMsg&);
util::Bytes encode(const ConfigMsg&);
util::Bytes encode(const JobConfigMsg&);
util::Bytes encode(const LeaseGrantMsg&);
util::Bytes encode(const LeaseResultMsg&);
util::Bytes encode(const HeartbeatMsg&);
util::Bytes encode(const GoodbyeMsg&);

std::optional<HelloMsg> decode_hello(util::ByteView);
std::optional<ConfigMsg> decode_config(util::ByteView);
std::optional<JobConfigMsg> decode_job_config(util::ByteView);
std::optional<LeaseGrantMsg> decode_lease_grant(util::ByteView);
std::optional<LeaseResultMsg> decode_lease_result(util::ByteView);
std::optional<HeartbeatMsg> decode_heartbeat(util::ByteView);
std::optional<GoodbyeMsg> decode_goodbye(util::ByteView);

/// SpliceStats wire form, exposed for the serde round-trip tests.
void encode_stats(util::Bytes& out, const core::SpliceStats& st);
bool decode_stats(util::ByteView in, std::size_t* offset,
                  core::SpliceStats* out);

/// Idempotently register the dist.* metric family (frame traffic,
/// lease lifecycle, worker roster) with obs::Registry::global(). All
/// kScheduling: shard placement and wire traffic depend on timing,
/// never on the corpus. Names are documented in docs/OBSERVABILITY.md.
void register_dist_metrics();

}  // namespace cksum::dist
