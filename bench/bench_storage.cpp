// Storage commit-block cost: seal + verify throughput for every
// algorithm in the storage matrix at both block sizes. Like
// bench_faultmatrix, the run doubles as a regression gate: it exits
// non-zero when any sealed block fails its own verification, and when
// the Koopman dual sum fails to beat Fletcher-256 on bulk blocks —
// the large-block family's whole reason to exist is digesting 8 bytes
// per step instead of 1, so losing that race means a kernel
// regression, not a tuning choice (best-of-N timing keeps scheduler
// noise out of the verdict).
//
// The miss-rate frontier (fault injection, manifest export) lives in
// `faultlab storage`; this binary is the cheap always-on cost slice.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/report.hpp"
#include "storage/layout.hpp"
#include "util/rng.hpp"

using namespace cksum;

namespace {

/// Best-of-N seconds per seal+verify pass over one block.
double time_pass(storage::Algo a, const util::Bytes& payload,
                 std::size_t block_size, int reps) {
  const storage::WriteContext ctx{0x5107A6Eull, 1};
  double best = 1e9;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const util::Bytes block =
        storage::seal_block(a, ctx, util::ByteView(payload), block_size);
    const bool ok = storage::verify_block(a, ctx, util::ByteView(block));
    const auto t1 = std::chrono::steady_clock::now();
    if (!ok) return -1.0;
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main() {
  constexpr std::size_t kBlockSizes[] = {4096, 65536};
  // Enough repetitions that the best pass is compute-bound, scaled
  // down for the big block.
  std::printf("== storage commit blocks: seal + verify cost ==\n\n");
  core::TextTable t({"block", "check", "seal+verify", "throughput"});

  int failures = 0;
  double kdual_mbs = 0.0, f256_mbs = 0.0;
  for (const std::size_t bs : kBlockSizes) {
    util::Bytes payload(bs - storage::kCheckFieldSize);
    util::Rng(0xB10C ^ bs).fill(payload);
    const int reps = bs >= 65536 ? 400 : 2000;
    for (const storage::Algo a : storage::kAllAlgos) {
      const double secs = time_pass(a, payload, bs, reps);
      if (secs < 0.0) {
        std::fprintf(stderr, "FAIL: %s sealed block failed verification\n",
                     std::string(storage::name(a)).c_str());
        ++failures;
        continue;
      }
      const double mbs =
          static_cast<double>(bs) / secs / (1024.0 * 1024.0);
      if (bs == 65536) {
        if (a == storage::Algo::kKoopmanDual) kdual_mbs = mbs;
        if (a == storage::Algo::kFletcher256) f256_mbs = mbs;
      }
      char cost[32], tput[32];
      std::snprintf(cost, sizeof cost, "%.2f us", secs * 1e6);
      std::snprintf(tput, sizeof tput, "%.0f MB/s", mbs);
      t.add_row({std::to_string(bs), std::string(storage::name(a)), cost,
                 tput});
    }
  }
  t.print(std::cout);

  std::printf("\nExpected shape: the block-at-a-time Koopman sums sit "
              "between the byte-at-a-time Fletcher/Adler family and the "
              "word-folded CRC/Internet engines; seal and verify cost the "
              "same because verify recomputes the seal.\n");

  if (kdual_mbs < f256_mbs) {
    std::fprintf(stderr,
                 "FAIL: Koopman dual (%.0f MB/s) slower than Fletcher-256 "
                 "(%.0f MB/s) on 64 KiB blocks\n",
                 kdual_mbs, f256_mbs);
    ++failures;
  }
  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d storage bench gate(s) violated\n",
                 failures);
    return 1;
  }
  std::printf("storage bench gates held (K-Dual %.0f MB/s vs F-256 %.0f "
              "MB/s at 64 KiB)\n",
              kdual_mbs, f256_mbs);
  return 0;
}
