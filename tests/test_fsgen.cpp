// Synthetic file generators: determinism, size control, and the
// class-specific statistical properties the paper's analysis depends
// on (PBM = 0/255 bytes, gmon = mostly zeros, hex-PS line structure,
// text skew, ...).
#include <gtest/gtest.h>

#include <algorithm>

#include "fsgen/generator.hpp"
#include "fsgen/profile.hpp"
#include "stats/histogram.hpp"

namespace cksum::fsgen {
namespace {

using util::Bytes;

class AllGenerators : public ::testing::TestWithParam<FileKind> {};

TEST_P(AllGenerators, Deterministic) {
  const Bytes a = generate_file(GetParam(), 123, 20000);
  const Bytes b = generate_file(GetParam(), 123, 20000);
  EXPECT_EQ(a, b);
}

TEST_P(AllGenerators, DifferentSeedsDiffer) {
  const Bytes a = generate_file(GetParam(), 1, 20000);
  const Bytes b = generate_file(GetParam(), 2, 20000);
  EXPECT_NE(a, b);
}

TEST_P(AllGenerators, SizeApproximatelyHonoured) {
  for (std::size_t target : {4096u, 20000u, 100000u}) {
    const Bytes f = generate_file(GetParam(), 9, target);
    EXPECT_GE(f.size(), target * 9 / 10);
    EXPECT_LE(f.size(), target + 20000);  // one structural unit of slack
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllGenerators, ::testing::ValuesIn(kAllKinds),
                         [](const auto& gen_info) {
                           std::string n(name(gen_info.param));
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

stats::Histogram byte_histogram(const Bytes& data) {
  stats::Histogram h(256);
  for (std::uint8_t b : data) h.add(b);
  return h;
}

TEST(TextGenerator, LooksLikeText) {
  const Bytes f = generate_file(FileKind::kText, 5, 50000);
  std::size_t printable = 0;
  for (std::uint8_t b : f)
    if ((b >= 0x20 && b < 0x7f) || b == '\n') ++printable;
  EXPECT_EQ(printable, f.size());  // pure ASCII text
  const auto h = byte_histogram(f);
  // Space is the most common byte in prose; 'e' among the most common
  // letters. Entropy well below 8 bits (the paper's skew).
  EXPECT_EQ(h.mode(), static_cast<std::uint32_t>(' '));
  EXPECT_GT(h.count('e'), h.count('z'));
  EXPECT_LT(h.entropy_bits(), 5.0);
}

TEST(TextGenerator, LinesWrapAround70Columns) {
  const Bytes f = generate_file(FileKind::kText, 6, 20000);
  std::size_t line = 0, max_line = 0;
  for (std::uint8_t b : f) {
    if (b == '\n') {
      max_line = std::max(max_line, line);
      line = 0;
    } else {
      ++line;
    }
  }
  EXPECT_LE(max_line, 90u);
  EXPECT_GE(max_line, 40u);
}

TEST(SourceGenerator, LooksLikeC) {
  const Bytes f = generate_file(FileKind::kCSource, 5, 30000);
  const std::string s(f.begin(), f.end());
  EXPECT_NE(s.find("#include"), std::string::npos);
  EXPECT_NE(s.find("return"), std::string::npos);
  EXPECT_NE(s.find("{"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
}

TEST(ExecutableGenerator, ElfMagicAndZeroRuns) {
  const Bytes f = generate_file(FileKind::kExecutable, 5, 60000);
  ASSERT_GE(f.size(), 4u);
  EXPECT_EQ(f[0], 0x7f);
  EXPECT_EQ(f[1], 'E');
  const auto h = byte_histogram(f);
  // Zero is by far the most common byte in executables.
  EXPECT_EQ(h.mode(), 0u);
  EXPECT_GT(h.pmax(), 0.10);
}

TEST(GmonGenerator, MostlyZeros) {
  const Bytes f = generate_file(FileKind::kGmonProfile, 5, 60000);
  const auto h = byte_histogram(f);
  EXPECT_EQ(h.mode(), 0u);
  EXPECT_GT(h.pmax(), 0.90);  // "consist mostly of zero entries"
  // But not entirely zero.
  EXPECT_GT(h.support_size(), 2u);
}

TEST(PbmGenerator, OnlyBlackAndWhiteAfterHeader) {
  const Bytes f = generate_file(FileKind::kPbmImage, 5, 60000);
  // Skip the ASCII header (ends at the "255\n" line).
  const std::string head(f.begin(), f.begin() + 64);
  ASSERT_EQ(head.substr(0, 2), "P5");
  const std::size_t body = head.find("255\n") + 4;
  ASSERT_NE(body, std::string::npos + 4);
  for (std::size_t i = body; i < f.size(); ++i)
    ASSERT_TRUE(f[i] == 0x00 || f[i] == 0xff) << "pixel at " << i;
}

TEST(HexPostscriptGenerator, PowerOfTwoPlusNewlineLines) {
  const Bytes f = generate_file(FileKind::kHexPostscript, 5, 60000);
  const std::string s(f.begin(), f.end());
  // Find the hex body: lines of F/7/E/C/0/3 hex chars.
  std::size_t start = s.find("image\n");
  ASSERT_NE(start, std::string::npos);
  start += 6;
  const std::size_t eol = s.find('\n', start);
  const std::size_t width = eol - start;
  // Width is a power of two (64, 128 or 256).
  EXPECT_EQ(width & (width - 1), 0u);
  EXPECT_GE(width, 64u);
  // Many identical adjacent lines (the repetition pathology).
  std::size_t repeats = 0, lines = 0;
  std::string prev;
  for (std::size_t pos = start; pos + width + 1 < s.size() - 32;
       pos += width + 1) {
    const std::string line = s.substr(pos, width);
    if (line == prev) ++repeats;
    prev = line;
    ++lines;
    if (lines > 200) break;
  }
  EXPECT_GT(repeats, lines / 2);
}

TEST(BinhexGenerator, SixtyFourByteLines) {
  const Bytes f = generate_file(FileKind::kBinhex, 5, 30000);
  const std::string s(f.begin(), f.end());
  const std::size_t start = s.find(":\n") != std::string::npos
                                ? s.find(':') + 1
                                : 0;
  // Lines between the first ':' and the trailing ':' are 64 chars.
  std::size_t pos = start;
  int checked = 0;
  while (checked < 50) {
    const std::size_t eol = s.find('\n', pos);
    if (eol == std::string::npos || eol + 2 >= s.size()) break;
    if (eol - pos == 0) {
      pos = eol + 1;
      continue;
    }
    EXPECT_EQ(eol - pos, 64u) << "line at " << pos;
    pos = eol + 1;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(WordProcessorGenerator, ZeroAndFFRuns) {
  const Bytes f = generate_file(FileKind::kWordProcessor, 5, 60000);
  // Find a run of >= 150 zero bytes followed (soon) by >= 150 0xFF.
  std::size_t zero_run = 0, max_zero = 0, ff_run = 0, max_ff = 0;
  for (std::uint8_t b : f) {
    zero_run = b == 0x00 ? zero_run + 1 : 0;
    ff_run = b == 0xff ? ff_run + 1 : 0;
    max_zero = std::max(max_zero, zero_run);
    max_ff = std::max(max_ff, ff_run);
  }
  EXPECT_GE(max_zero, 150u);
  EXPECT_GE(max_ff, 150u);
}

TEST(RandomGenerator, HighEntropy) {
  const Bytes f = generate_file(FileKind::kRandom, 5, 60000);
  EXPECT_GT(byte_histogram(f).entropy_bits(), 7.9);
}


TEST(TarGenerator, BlockStructure) {
  const Bytes f = generate_file(FileKind::kTarArchive, 5, 60000);
  EXPECT_EQ(f.size() % 512, 0u);
  // ustar magic in the first header block.
  const std::string head(f.begin(), f.begin() + 512);
  EXPECT_NE(head.find("ustar"), std::string::npos);
  // Ends with two zero blocks.
  for (std::size_t i = f.size() - 1024; i < f.size(); ++i)
    ASSERT_EQ(f[i], 0u) << i;
  // tar header checksum of block 0 verifies: sum of the block with the
  // checksum field treated as spaces equals the stored octal value.
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < 512; ++i)
    sum += (i >= 148 && i < 156) ? ' ' : f[i];
  const std::uint32_t stored =
      static_cast<std::uint32_t>(std::stoul(head.substr(148, 6), nullptr, 8));
  EXPECT_EQ(sum, stored);
}

TEST(TarGenerator, HasZeroPaddingRuns) {
  const Bytes f = generate_file(FileKind::kTarArchive, 6, 60000);
  std::size_t zero_run = 0, max_zero = 0;
  for (std::uint8_t b : f) {
    zero_run = b == 0 ? zero_run + 1 : 0;
    max_zero = std::max(max_zero, zero_run);
  }
  EXPECT_GE(max_zero, 256u);
}

TEST(MailSpoolGenerator, MboxStructure) {
  const Bytes f = generate_file(FileKind::kMailSpool, 5, 40000);
  const std::string s(f.begin(), f.end());
  EXPECT_EQ(s.rfind("From ", 0), 0u);  // starts with an mbox From line
  // Multiple messages with repeated header fields.
  std::size_t messages = 0, pos = 0;
  while ((pos = s.find("\nFrom ", pos)) != std::string::npos) {
    ++messages;
    ++pos;
  }
  EXPECT_GE(messages, 5u);
  EXPECT_NE(s.find("Message-Id:"), std::string::npos);
  EXPECT_NE(s.find("Subject:"), std::string::npos);
}

TEST(Profiles, RegistryShape) {
  EXPECT_EQ(all_profiles().size(), 20u);  // 19 paper + 1 modern extension
  EXPECT_EQ(nsc_profiles().size(), 9u);
  EXPECT_EQ(sics_profiles().size(), 8u);
  EXPECT_EQ(stanford_profiles().size(), 2u);
  EXPECT_EQ(profile("nsc05").full_name(), "nsc05");
  EXPECT_EQ(profile("sics.se:/opt").mount, "/opt");
  EXPECT_EQ(profile("smeg.stanford.edu:/u1").site, "smeg.stanford.edu");
  EXPECT_EQ(profile("modern:/home").mount, "/home");
  EXPECT_THROW(profile("no-such-fs"), std::out_of_range);
}

TEST(Profiles, WeightsArePlausible) {
  for (const auto& p : all_profiles()) {
    double total = 0;
    for (const auto& kw : p.mix) {
      EXPECT_GT(kw.weight, 0.0);
      total += kw.weight;
    }
    EXPECT_NEAR(total, 1.0, 0.05) << p.full_name();
  }
}

TEST(Filesystem, DeterministicSpecsAndContent) {
  const Filesystem a(profile("nsc05"), 0.25);
  const Filesystem b(profile("nsc05"), 0.25);
  ASSERT_EQ(a.file_count(), b.file_count());
  ASSERT_GT(a.file_count(), 0u);
  for (std::size_t i = 0; i < a.file_count(); ++i) {
    EXPECT_EQ(a.spec(i).seed, b.spec(i).seed);
    EXPECT_EQ(a.file(i), b.file(i));
  }
}

TEST(Filesystem, ScaleScalesFileCount) {
  const Filesystem small(profile("nsc05"), 0.5);
  const Filesystem large(profile("nsc05"), 2.0);
  EXPECT_EQ(small.file_count() * 4, large.file_count());
}

TEST(Filesystem, MixRespected) {
  // /src1 is source-dominated: most files should be C source.
  const Filesystem fs(profile("sics.se:/src1"), 4.0);
  std::size_t source = 0;
  for (std::size_t i = 0; i < fs.file_count(); ++i)
    if (fs.spec(i).kind == FileKind::kCSource) ++source;
  EXPECT_GT(source, fs.file_count() / 2);
}


TEST(Manifest, RoundTrip) {
  const auto& prof = profile("nsc05");
  const Filesystem fs(prof, 0.3);
  const std::string manifest = fs.to_manifest();
  const Filesystem back = Filesystem::from_manifest(prof, manifest);
  ASSERT_EQ(back.file_count(), fs.file_count());
  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    EXPECT_EQ(back.spec(i).kind, fs.spec(i).kind);
    EXPECT_EQ(back.spec(i).seed, fs.spec(i).seed);
    EXPECT_EQ(back.spec(i).size, fs.spec(i).size);
    EXPECT_EQ(back.file(i), fs.file(i));
  }
}

TEST(Manifest, RejectsMalformed) {
  const auto& prof = profile("nsc05");
  EXPECT_THROW(Filesystem::from_manifest(prof, "text"),
               std::invalid_argument);
  EXPECT_THROW(Filesystem::from_manifest(prof, "no-such-kind 1f 100"),
               std::invalid_argument);
  EXPECT_THROW(Filesystem::from_manifest(prof, "text zz 100"),
               std::invalid_argument);
  EXPECT_THROW(Filesystem::from_manifest(prof, "text 1f pear"),
               std::invalid_argument);
  // Empty manifest: a valid, empty filesystem.
  EXPECT_EQ(Filesystem::from_manifest(prof, "").file_count(), 0u);
  EXPECT_EQ(Filesystem::from_manifest(prof, "\n\n").file_count(), 0u);
}

TEST(Filesystem, RejectsBadScale) {
  EXPECT_THROW(Filesystem(profile("nsc05"), 0.0), std::invalid_argument);
  EXPECT_THROW(Filesystem(profile("nsc05"), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace cksum::fsgen
