// Minimal TCP header model (20 bytes, no options) plus the
// pseudo-header summation used by the transport checksums.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace cksum::net {

inline constexpr std::size_t kTcpHeaderLen = 20;

namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
inline constexpr std::uint8_t kUrg = 0x20;
}  // namespace tcpflag

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // in 32-bit words
  std::uint8_t reserved = 0;     // 4 reserved bits (must be zero)
  std::uint8_t flags = tcpflag::kAck;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  void write(std::uint8_t* out) const noexcept;
  static std::optional<TcpHeader> parse(util::ByteView data) noexcept;
};

/// The 12-byte TCP pseudo-header: src addr, dst addr, zero, protocol,
/// TCP segment length. Returned serialised for checksum coverage.
struct PseudoHeader {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t protocol = 6;
  std::uint16_t tcp_length = 0;

  static constexpr std::size_t kLen = 12;
  void write(std::uint8_t* out) const noexcept;
};

}  // namespace cksum::net
