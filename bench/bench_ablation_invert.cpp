// §6.3 ablation: storing the inverted checksum (TCP standard) vs the
// raw sum. With the IP header filled in, the two are nearly identical
// — the inversion conjecture from the SIGCOMM '95 paper did not
// survive the corrected simulator.
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"

using namespace cksum;

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== Ablation (paper §6.3): inverted vs non-inverted stored checksum "
      "==\n\n");
  core::TextTable t(
      {"filesystem", "inverted miss%", "non-inverted miss%"});
  for (const char* name : {"sics.se:/opt", "smeg.stanford.edu:/u1",
                           "sics.se:/src1"}) {
    const auto& prof = fsgen::profile(name);
    net::PacketConfig inv;
    net::PacketConfig raw;
    raw.invert_checksum = false;
    const core::SpliceStats a = core::run_profile(prof, inv, scale);
    const core::SpliceStats b = core::run_profile(prof, raw, scale);
    t.add_row({name, core::fmt_pct(a.missed_transport, a.remaining),
               core::fmt_pct(b.missed_transport, b.remaining)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): \"The results with the non-inverted "
      "checksum were almost identical to the results with an inverted "
      "checksum.\"\n");
  return 0;
}
