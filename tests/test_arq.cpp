// ARQ link layer (docs/ARQ.md): frame codec integrity, the three
// retransmission policies' delivery guarantees under a clean link,
// graceful degradation (abandonment + base-skip) when the link is
// hostile, termination at the 10% fault regime, and determinism of
// both the simulator and the soak harness.
#include <gtest/gtest.h>

#include "arq/endpoint.hpp"
#include "arq/frame.hpp"
#include "arq/sim.hpp"
#include "arq/soak.hpp"
#include "util/rng.hpp"

namespace cksum {
namespace {

using arq::ArqConfig;
using arq::ArqFrame;
using arq::DecodeStatus;
using arq::FrameType;
using arq::Policy;
using util::Bytes;
using util::ByteView;

constexpr alg::Algorithm kAllAlgs[] = {
    alg::Algorithm::kInternet, alg::Algorithm::kFletcher255,
    alg::Algorithm::kFletcher256, alg::Algorithm::kCrc32};
constexpr Policy kAllPolicies[] = {Policy::kStopAndWait, Policy::kGoBackN,
                                   Policy::kSelectiveRepeat};

std::vector<Bytes> make_payloads(std::uint64_t seed, std::size_t n,
                                 std::size_t max_len = 600) {
  util::Rng rng(seed);
  std::vector<Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes p(1 + rng.below(max_len));
    rng.fill(p);
    out.push_back(std::move(p));
  }
  return out;
}

// --- Frame codec ----------------------------------------------------

TEST(ArqFrame, RoundtripEveryChecksumAndType) {
  util::Rng rng(0xF7A3E);
  for (const alg::Algorithm a : kAllAlgs) {
    for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                  std::size_t{97}, std::size_t{1500}}) {
      ArqFrame f;
      f.type = len % 2 == 0 ? FrameType::kData : FrameType::kAck;
      f.check = a;
      f.seq = static_cast<std::uint16_t>(rng.next());
      f.aux = static_cast<std::uint16_t>(rng.next());
      f.payload.resize(len);
      rng.fill(f.payload);

      const Bytes wire = arq::encode_arq_frame(f);
      ASSERT_EQ(wire.size(),
                arq::kFrameHeaderLen + len + arq::kFrameTrailerLen);
      DecodeStatus st{};
      const auto d = arq::decode_arq_frame(ByteView(wire), &st);
      ASSERT_TRUE(d.has_value()) << alg::name(a) << " len " << len;
      EXPECT_EQ(st, DecodeStatus::kOk);
      EXPECT_EQ(d->type, f.type);
      EXPECT_EQ(d->check, a);
      EXPECT_EQ(d->seq, f.seq);
      EXPECT_EQ(d->aux, f.aux);
      EXPECT_EQ(d->payload, f.payload);
    }
  }
}

TEST(ArqFrame, SingleBitCorruptionCaughtByEveryChecksum) {
  // One flipped bit anywhere must be caught by all four checks (the
  // paper's taxonomy: every algorithm detects all 1-bit errors).
  for (const alg::Algorithm a : kAllAlgs) {
    ArqFrame f;
    f.type = FrameType::kData;
    f.check = a;
    f.seq = 0x1234;
    f.aux = 0x0001;
    f.payload = Bytes(48, 0x5a);
    const Bytes wire = arq::encode_arq_frame(f);
    for (std::size_t bit = 0; bit < 8 * wire.size(); bit += 7) {
      Bytes hit = wire;
      hit[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      DecodeStatus st{};
      const auto d = arq::decode_arq_frame(ByteView(hit), &st);
      if (d.has_value()) {
        // Only acceptable if the flip landed in a field whose change
        // still decodes AND the checksum covers it — impossible: every
        // header/payload/trailer bit is covered.
        ADD_FAILURE() << alg::name(a) << ": bit " << bit
                      << " flipped yet frame accepted";
      }
    }
  }
}

TEST(ArqFrame, TruncationIsMalformedNotAccepted) {
  ArqFrame f;
  f.type = FrameType::kData;
  f.check = alg::Algorithm::kCrc32;
  f.payload = Bytes(64, 0x17);
  const Bytes wire = arq::encode_arq_frame(f);
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    DecodeStatus st{};
    const auto d =
        arq::decode_arq_frame(ByteView(wire.data(), keep), &st);
    EXPECT_FALSE(d.has_value()) << "kept " << keep;
  }
}

TEST(ArqFrame, SerialOrderSoundAcrossU16Wrap) {
  EXPECT_TRUE(arq::seq_before(0xfffe, 0xffff));
  EXPECT_TRUE(arq::seq_before(0xffff, 0x0000));
  EXPECT_TRUE(arq::seq_before(0xffff, 0x0010));
  EXPECT_FALSE(arq::seq_before(0x0000, 0xffff));
  EXPECT_FALSE(arq::seq_before(5, 5));
}

// --- Fault-free fidelity --------------------------------------------

TEST(ArqSim, CleanLinkDeliversBitwiseIdenticalStreamEveryPolicy) {
  const std::vector<Bytes> payloads = make_payloads(0xC1EA4, 40);
  for (const Policy policy : kAllPolicies) {
    for (const alg::Algorithm a : kAllAlgs) {
      arq::SimConfig cfg;  // default link plans are fault-free
      cfg.arq.policy = policy;
      cfg.arq.checksum = a;
      cfg.seed = 7;
      const arq::SimResult r = arq::run_sim(cfg, payloads);
      ASSERT_TRUE(r.terminated);
      EXPECT_TRUE(r.violation.empty()) << r.violation;
      EXPECT_EQ(r.delivered_ok, payloads.size())
          << arq::name(policy) << "/" << alg::name(a);
      EXPECT_EQ(r.residual_undetected, 0u);
      EXPECT_EQ(r.residual_lost, 0u);
      EXPECT_EQ(r.gave_up, 0u);
      EXPECT_EQ(r.sender.retransmits, 0u);
      EXPECT_EQ(r.sender.timeouts, 0u);
      EXPECT_EQ(r.receiver.skipped, 0u);
    }
  }
}

// --- Graceful degradation -------------------------------------------

TEST(ArqSim, TotalBlackoutAbandonsEveryFrameAndTerminates) {
  const std::vector<Bytes> payloads = make_payloads(0xB1AC0, 12);
  for (const Policy policy : kAllPolicies) {
    arq::SimConfig cfg;
    cfg.arq.policy = policy;
    cfg.arq.retry_budget = 3;
    cfg.data_link.drop_rate = 1.0;  // nothing ever arrives
    const arq::SimResult r = arq::run_sim(cfg, payloads);
    ASSERT_TRUE(r.terminated) << arq::name(policy);
    EXPECT_EQ(r.gave_up, payloads.size());
    EXPECT_EQ(r.delivered_ok, 0u);
    EXPECT_EQ(r.residual_lost, 0u);  // abandoned, not silently lost
    // Budget respected: first send + at most retry_budget retries.
    EXPECT_LE(r.sender.retransmits,
              payloads.size() * cfg.arq.retry_budget);
  }
}

TEST(ArqSim, AckBlackoutStillTerminates) {
  const std::vector<Bytes> payloads = make_payloads(0xACB0, 10);
  for (const Policy policy : kAllPolicies) {
    arq::SimConfig cfg;
    cfg.arq.policy = policy;
    cfg.arq.retry_budget = 2;
    cfg.ack_link.drop_rate = 1.0;  // data flows, every ACK lost
    const arq::SimResult r = arq::run_sim(cfg, payloads);
    ASSERT_TRUE(r.terminated) << arq::name(policy);
    EXPECT_TRUE(r.violation.empty()) << r.violation;
    // The sender must conclude (by giving up — it can't know the data
    // arrived), and the receiver must still have seen every payload.
    EXPECT_EQ(r.gave_up, payloads.size());
    EXPECT_EQ(r.receiver.delivered, payloads.size());
  }
}

/// Go-back-N receiver skips holes the sender abandoned: the DATA
/// frames' base stamp pulls next_expected forward, and the payloads
/// after the hole still deliver.
TEST(ArqEndpoint, GoBackNReceiverSkipsAbandonedHole) {
  ArqConfig cfg;
  cfg.policy = Policy::kGoBackN;
  cfg.window = 2;
  cfg.rto = 8;
  cfg.retry_budget = 0;  // abandon on first timeout
  arq::Sender sender(cfg, make_payloads(0x5EED, 3));
  arq::Receiver receiver(cfg);

  // t=0: frames 0 and 1 go out. Lose frame 0; deliver frame 1 (GBN
  // discards it as out-of-order).
  std::vector<Bytes> wires = sender.poll(0);
  ASSERT_EQ(wires.size(), 2u);
  receiver.on_frame(ByteView(wires[1]));
  EXPECT_EQ(receiver.stats().discarded, 1u);
  EXPECT_TRUE(receiver.deliveries().empty());

  // The base timer fires: budget 0 abandons the whole wave, the
  // window opens, and frame 2 goes out stamped with base = 2.
  wires = sender.poll(1000);
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_EQ(sender.stats().gave_up, 2u);
  const auto f2 = arq::decode_arq_frame(ByteView(wires[0]), nullptr);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->seq, 2u);
  EXPECT_EQ(f2->aux, 2u);  // the base stamp

  // The receiver skips the two-holes and accepts frame 2 in order.
  receiver.on_frame(ByteView(wires[0]));
  EXPECT_EQ(receiver.stats().skipped, 2u);
  ASSERT_EQ(receiver.deliveries().size(), 1u);
  EXPECT_EQ(receiver.deliveries()[0].seq, 2u);
  EXPECT_EQ(receiver.next_expected(), 3u);
}

/// Selective repeat buffers out-of-order arrivals and releases the
/// whole run once the hole fills — and a buffered frame survives an
/// abandonment skip of an earlier hole.
TEST(ArqEndpoint, SelectiveRepeatBuffersAndReleases) {
  ArqConfig cfg;
  cfg.policy = Policy::kSelectiveRepeat;
  cfg.window = 4;
  arq::Sender sender(cfg, make_payloads(0x0FFE, 4));
  arq::Receiver receiver(cfg);

  std::vector<Bytes> wires = sender.poll(0);
  ASSERT_EQ(wires.size(), 4u);

  // Deliver 2, 1, 3 out of order: all buffered, nothing surfaced.
  receiver.on_frame(ByteView(wires[2]));
  receiver.on_frame(ByteView(wires[1]));
  receiver.on_frame(ByteView(wires[3]));
  EXPECT_EQ(receiver.stats().buffered, 3u);
  EXPECT_TRUE(receiver.deliveries().empty());

  // Frame 0 fills the hole: the entire run releases in order.
  receiver.on_frame(ByteView(wires[0]));
  ASSERT_EQ(receiver.deliveries().size(), 4u);
  for (std::uint16_t i = 0; i < 4; ++i)
    EXPECT_EQ(receiver.deliveries()[i].seq, i);
  EXPECT_EQ(receiver.stats().accepted, 1u);
}

TEST(ArqEndpoint, SelectiveRepeatSkipSurfacesBufferedFrames) {
  ArqConfig cfg;
  cfg.policy = Policy::kSelectiveRepeat;
  cfg.window = 2;
  cfg.rto = 8;
  cfg.retry_budget = 0;
  arq::Sender sender(cfg, make_payloads(0xAB5E, 3));
  arq::Receiver receiver(cfg);

  std::vector<Bytes> wires = sender.poll(0);
  ASSERT_EQ(wires.size(), 2u);
  receiver.on_frame(ByteView(wires[1]));  // frame 1 buffered
  EXPECT_EQ(receiver.stats().buffered, 1u);

  wires = sender.poll(1000);  // both abandoned, frame 2 out (base 2)
  ASSERT_EQ(wires.size(), 1u);
  receiver.on_frame(ByteView(wires[0]));
  // The skip to base 2 surfaced buffered frame 1; only frame 0 is a
  // true hole; frame 2 then arrives in order.
  ASSERT_EQ(receiver.deliveries().size(), 2u);
  EXPECT_EQ(receiver.deliveries()[0].seq, 1u);
  EXPECT_EQ(receiver.deliveries()[1].seq, 2u);
  EXPECT_EQ(receiver.stats().skipped, 1u);
}

// --- Termination at the paper's fault regime ------------------------

TEST(ArqSim, TerminatesUnderEveryFaultClassAtTenPercent) {
  const std::vector<Bytes> payloads = make_payloads(0x7E47, 24);
  struct Case {
    const char* name;
    faults::LinkPlan plan;
  };
  faults::LinkPlan drop, dup, corrupt, trunc, reorder, all;
  drop.drop_rate = 0.10;
  dup.duplicate_rate = 0.10;
  corrupt.corrupt_rate = 0.10;
  trunc.truncate_rate = 0.10;
  reorder.reorder_rate = 0.10;
  reorder.reorder_delay_max = 40;
  all.drop_rate = all.duplicate_rate = all.corrupt_rate =
      all.truncate_rate = all.reorder_rate = 0.10;
  const Case cases[] = {{"drop", drop},       {"duplicate", dup},
                        {"corrupt", corrupt}, {"truncate", trunc},
                        {"reorder", reorder}, {"all-composed", all}};
  for (const Policy policy : kAllPolicies) {
    for (const Case& c : cases) {
      arq::SimConfig cfg;
      cfg.arq.policy = policy;
      cfg.data_link = c.plan;
      cfg.ack_link = c.plan;
      cfg.seed = 0xD00D;
      const arq::SimResult r = arq::run_sim(cfg, payloads);
      ASSERT_TRUE(r.terminated) << arq::name(policy) << "/" << c.name;
      EXPECT_TRUE(r.violation.empty())
          << arq::name(policy) << "/" << c.name << ": " << r.violation;
      // Every payload accounted for: delivered, abandoned, or (under
      // a 16-bit check it would be possible) residual.
      EXPECT_GE(r.delivered_ok + r.residual_undetected + r.gave_up +
                    r.residual_lost,
                r.payloads_offered);
      // CRC-32 framing: no residual errors at these volumes.
      EXPECT_EQ(r.residual_undetected, 0u);
      EXPECT_EQ(r.residual_lost, 0u);
    }
  }
}

// --- Determinism ----------------------------------------------------

TEST(ArqSim, IdenticalConfigReplaysBitForBit) {
  const std::vector<Bytes> payloads = make_payloads(0xDE7E, 32);
  arq::SimConfig cfg;
  cfg.arq.policy = Policy::kSelectiveRepeat;
  cfg.arq.checksum = alg::Algorithm::kInternet;
  cfg.data_link.corrupt_rate = 0.08;
  cfg.data_link.drop_rate = 0.05;
  cfg.data_link.duplicate_rate = 0.05;
  cfg.data_link.reorder_rate = 0.08;
  cfg.ack_link.corrupt_rate = 0.04;
  cfg.seed = 0x9A9A;
  const arq::SimResult a = arq::run_sim(cfg, payloads);
  const arq::SimResult b = arq::run_sim(cfg, payloads);
  EXPECT_EQ(a.delivered_ok, b.delivered_ok);
  EXPECT_EQ(a.residual_undetected, b.residual_undetected);
  EXPECT_EQ(a.residual_lost, b.residual_lost);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.latency_sum, b.latency_sum);
  EXPECT_EQ(a.sender.data_sent, b.sender.data_sent);
  EXPECT_EQ(a.sender.retransmits, b.sender.retransmits);
  EXPECT_EQ(a.receiver.acks_sent, b.receiver.acks_sent);
  EXPECT_EQ(a.data_link.total_injected(), b.data_link.total_injected());
}

TEST(ArqSoak, ScenarioIsDeterministicAndShortSoakHolds) {
  arq::ArqSoakConfig cfg;
  cfg.seed = 0x50AC;
  const arq::ArqScenarioResult a = arq::run_arq_scenario(cfg, 11);
  const arq::ArqScenarioResult b = arq::run_arq_scenario(cfg, 11);
  EXPECT_EQ(a.sim.delivered_ok, b.sim.delivered_ok);
  EXPECT_EQ(a.sim.ticks, b.sim.ticks);
  EXPECT_EQ(a.sim.events, b.sim.events);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.violations, b.violations);

  cfg.target_faults = 2000;
  const arq::ArqSoakResult soak = arq::run_arq_soak(cfg);
  EXPECT_TRUE(soak.ok()) << soak.violation_detail << " — "
                         << soak.reproducer;
  EXPECT_GE(soak.scenarios, 3u);  // all three policies rotated through
}

TEST(ArqSoak, ReproducerLineNamesSeedAndScenario) {
  arq::ArqSoakConfig cfg;
  cfg.seed = 0xBEEF;
  const std::string line = arq::arq_reproducer_line(cfg, 42);
  EXPECT_NE(line.find("arqsoak"), std::string::npos);
  EXPECT_NE(line.find("0xbeef"), std::string::npos);
  EXPECT_NE(line.find("42"), std::string::npos);
}

}  // namespace
}  // namespace cksum
