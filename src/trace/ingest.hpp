// Ingest stage: captured datagrams -> the simulator's PDU model.
//
// Each record of a capture is pushed through the receiver-side checks
// the splice simulator itself uses — net::check_headers for the
// syntactic gate and net::verify_transport_checksum for the checksum
// validate step — and, when it passes, packetised into a
// core::SimPacket exactly as packetize_file would have produced it.
// Records are grouped into "files": the paper's flow model restarts
// the TCP sequence number at FlowConfig::initial_seq for every file
// transfer, so a datagram whose sequence number equals initial_seq
// opens a new file. The result feeds build_corpus() bit-for-bit
// (docs/TRACE.md): a capture written by util::PcapWriter round-trips
// to a corpus whose splice report is identical to the in-memory path.
//
// Rejection is explicit and fully accounted: every record lands in
// exactly one of accepted / the reject classes below, an identity
// check_manifest.py --require-trace enforces on exported manifests.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pdu_model.hpp"
#include "net/flow.hpp"
#include "trace/pcap_reader.hpp"

namespace cksum::trace {

struct IngestConfig {
  /// Flow the capture is assumed to carry. The transport checksum and
  /// placement decide how datagrams are validated; segment size and
  /// initial seq/ip-id drive the file grouping.
  net::FlowConfig flow;
};

/// Per-class reject counters. accepted + sum of these == records.
struct IngestCounts {
  std::uint64_t records = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  // Reject classes, mutually exclusive, checked in this order:
  std::uint64_t truncated = 0;       ///< snap-length-cut record
  std::uint64_t link_too_short = 0;  ///< Ethernet frame < 14 bytes
  std::uint64_t non_ipv4 = 0;        ///< ethertype != 0x0800
  std::uint64_t header_fail = 0;     ///< net::check_headers != kOk
  std::uint64_t checksum_fail = 0;   ///< transport checksum invalid
  std::uint64_t orphan = 0;          ///< data before the first flow start

  std::uint64_t reject_sum() const noexcept {
    return truncated + link_too_short + non_ipv4 + header_fail +
           checksum_fail + orphan;
  }
};

struct IngestResult {
  /// Packets grouped by file transfer, in capture order — the shape
  /// run_filesystem consumes and build_corpus persists.
  std::vector<std::vector<core::SimPacket>> files;
  IngestCounts counts;
};

/// Map every record of `pcap` through parsing + checksum validation
/// into SimPackets. Never throws on any capture content.
IngestResult ingest_capture(const PcapReader& pcap, const IngestConfig& cfg);

}  // namespace cksum::trace
