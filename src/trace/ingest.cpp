#include "trace/ingest.hpp"

#include "net/packet.hpp"
#include "net/tcp.hpp"
#include "net/validate.hpp"
#include "trace/metrics.hpp"

namespace cksum::trace {

IngestResult ingest_capture(const PcapReader& pcap, const IngestConfig& cfg) {
  IngestResult out;
  IngestCounts& c = out.counts;
  const net::PacketConfig& pkt_cfg = cfg.flow.packet;
  const bool trailer =
      pkt_cfg.placement == net::ChecksumPlacement::kTrailer;
  const bool require_ipck =
      pkt_cfg.fill_ip_header && !pkt_cfg.legacy95_headers;

  std::vector<core::SimPacket> current;
  bool in_file = false;  // a flow start (seq == initial_seq) was seen

  for (const TraceRecord& rec : pcap.records()) {
    c.records += 1;
    // Reject classes, cheapest first. A snap-length-cut record is
    // refused before any parsing: its datagram bytes are incomplete,
    // so no checksum verdict over them would be meaningful.
    if (rec.truncated) {
      c.truncated += 1;
      continue;
    }
    if (rec.cls == RecordClass::kLinkTooShort) {
      c.link_too_short += 1;
      continue;
    }
    if (rec.cls == RecordClass::kNonIpv4) {
      c.non_ipv4 += 1;
      continue;
    }
    const util::ByteView dgram = rec.datagram;
    // The syntactic gate the splice receiver applies: for an intact
    // datagram the AAL5 length it would reassemble under IS its size.
    if (net::check_headers(dgram, dgram.size(), require_ipck,
                           pkt_cfg.legacy95_headers) !=
        net::HeaderCheck::kOk) {
      c.header_fail += 1;
      continue;
    }
    if (!net::verify_transport_checksum(pkt_cfg, dgram)) {
      c.checksum_fail += 1;
      continue;
    }

    // File grouping: each transfer restarts at initial_seq, and the
    // sequence number only grows within a transfer, so a datagram
    // carrying initial_seq is always a file boundary.
    const auto tcp = net::TcpHeader::parse(dgram.subspan(net::kIpv4HeaderLen));
    if (!tcp.has_value()) {  // unreachable after check_headers; be safe
      c.header_fail += 1;
      continue;
    }
    if (tcp->seq == cfg.flow.initial_seq) {
      if (in_file) out.files.push_back(std::move(current));
      current.clear();
      in_file = true;
    } else if (!in_file) {
      // Mid-transfer data before any flow start: no file to attach
      // it to without inventing a boundary the sender never sent.
      c.orphan += 1;
      continue;
    }

    net::Packet pkt;
    pkt.bytes.assign(dgram.begin(), dgram.end());
    const std::size_t overhead =
        net::kIpv4HeaderLen + net::kTcpHeaderLen +
        (trailer ? net::kTrailerCheckLen : 0);
    pkt.payload_len = dgram.size() - overhead;  // >= 0 after check_headers
    current.push_back(core::make_sim_packet(pkt_cfg, std::move(pkt)));
    c.accepted += 1;
  }
  if (in_file) out.files.push_back(std::move(current));

  c.rejected = c.reject_sum();
  const TraceMetrics& mx = tmx();
  mx.accepted.add(c.accepted);
  mx.rejected.add(c.rejected);
  mx.files.add(out.files.size());
  return out;
}

}  // namespace cksum::trace
