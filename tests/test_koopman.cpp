// Koopman modular checksums: pinned vectors, the block-aligned combine
// algebra, streaming equivalence, and the structural properties the
// storage frontier leans on (prime moduli, position sensitivity of the
// dual sum, position independence of the single sum).
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>

#include "checksum/koopman.hpp"
#include "kernel_testgen.hpp"
#include "util/rng.hpp"

namespace cksum::alg {
namespace {

using util::Bytes;
using util::ByteView;

ByteView view_of(std::string_view s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

struct Golden {
  std::string_view text;
  std::uint16_t a, b;          // dual running sums
  std::uint32_t dual;          // packed B<<16|A
  std::uint64_t single;
};

// Hand-computed from the definition (64-bit big-endian blocks, final
// block zero-padded right, dual mod 65521, single mod 2^32-5) and
// cross-checked against an independent big-integer implementation.
constexpr Golden kGoldens[] = {
    {"", 0x0000, 0x0000, 0x00000000u, 0x00000000ull},
    {"abcde", 0x7191, 0x7191, 0x71917191u, 0x4bebf0feull},
    {"abcdefgh", 0xdef3, 0xdef3, 0xdef3def3u, 0x4c525866ull},
    {"123456789", 0xb41c, 0xc537, 0xc537b41cu, 0x48313746ull},
    {"The quick brown fox jumps over the lazy dog", 0x87b1, 0xaf62,
     0xaf6287b1u, 0x0ff0efb1ull},
};

TEST(Koopman, PinnedVectors) {
  for (const Golden& g : kGoldens) {
    const KoopmanDualPair p = koopman_dual_naive(view_of(g.text));
    EXPECT_EQ(p.a, g.a) << g.text;
    EXPECT_EQ(p.b, g.b) << g.text;
    EXPECT_EQ(koopman_dual_value(p), g.dual) << g.text;
    EXPECT_EQ(koopman_single_naive(view_of(g.text)), g.single) << g.text;
  }
}

TEST(Koopman, AllOnesBlocks) {
  // 2^64-1 ≡ 15^4-1 = 50624 (mod 65521) and ≡ 5^2-1 = 24 (mod 2^32-5):
  // the all-ones block is NOT an aliasing class under either prime
  // modulus, unlike 0xFF bytes under Fletcher-255 — the property the
  // storage frontier's pathology table demonstrates.
  const Bytes ones8(8, 0xFF);
  const Bytes ones16(16, 0xFF);
  EXPECT_EQ(koopman_dual_value(koopman_dual_naive(ByteView(ones8))),
            0xc5c0c5c0u);
  EXPECT_EQ(koopman_single_naive(ByteView(ones8)), 0x18ull);
  const KoopmanDualPair p16 = koopman_dual_naive(ByteView(ones16));
  EXPECT_EQ(p16.a, 0x8b8f);
  EXPECT_EQ(p16.b, 0x515e);
  EXPECT_EQ(koopman_single_naive(ByteView(ones16)), 0x30ull);
  // Counting bytes 0..31: one more cross-check of the block fold.
  Bytes counting(32);
  for (std::size_t i = 0; i < counting.size(); ++i)
    counting[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(koopman_dual_value(koopman_dual_naive(ByteView(counting))),
            0x77151eefu);
  EXPECT_EQ(koopman_single_naive(ByteView(counting)), 0x3149617dull);
}

TEST(Koopman, ZeroPaddingConvention) {
  // A short tail is the high-order bytes of its block: "abc" and
  // "abc\0\0\0\0\0" digest identically (and so do all-zero messages of
  // any length — the price of the padding convention, same as
  // Fletcher's at byte grain).
  const Bytes padded = {'a', 'b', 'c', 0, 0, 0, 0, 0};
  EXPECT_EQ(koopman_dual_naive(view_of("abc")),
            koopman_dual_naive(ByteView(padded)));
  EXPECT_EQ(koopman_single_naive(view_of("abc")),
            koopman_single_naive(ByteView(padded)));
  for (const std::size_t len : {1u, 7u, 8u, 9u, 64u}) {
    const Bytes zeros(len, 0x00);
    EXPECT_EQ(koopman_dual_value(koopman_dual_naive(ByteView(zeros))), 0u)
        << len;
    EXPECT_EQ(koopman_single_naive(ByteView(zeros)), 0u) << len;
  }
}

TEST(Koopman, SumsStayCanonical) {
  for (std::size_t len = 0; len <= 96; ++len) {
    const Bytes data = cksum::testgen::random_bytes(0x4B00 + len, len);
    const KoopmanDualPair p = koopman_dual_naive(ByteView(data));
    EXPECT_LT(p.a, kKoopmanDualMod) << len;
    EXPECT_LT(p.b, kKoopmanDualMod) << len;
    EXPECT_LT(koopman_single_naive(ByteView(data)), kKoopmanSingleMod) << len;
  }
}

TEST(Koopman, CombineExactAtEveryBlockSplit) {
  const Bytes data = cksum::testgen::random_bytes(0xC04B, 261);
  const ByteView whole(data);
  const KoopmanDualPair dual_whole = koopman_dual_naive(whole);
  const std::uint64_t single_whole = koopman_single_naive(whole);
  for (std::size_t split = 0; split <= whole.size();
       split += kKoopmanBlockBytes) {
    const ByteView x = whole.first(std::min(split, whole.size()));
    const ByteView y = whole.subspan(x.size());
    const KoopmanDualPair dx = koopman_dual_naive(x);
    const KoopmanDualPair dy = koopman_dual_naive(y);
    const std::uint64_t ny = koopman_block_count(y.size());
    EXPECT_EQ(koopman_dual_combine(dx, dy, ny), dual_whole)
        << "split=" << split;
    // The shift form is the combine with Y's own sums deferred:
    // contribution of X to a message with ny blocks after it.
    const KoopmanDualPair shifted = koopman_dual_shift(dx, ny);
    EXPECT_EQ(shifted.a, dx.a) << "split=" << split;
    EXPECT_EQ((shifted.b + dy.b) % kKoopmanDualMod,
              koopman_dual_combine(dx, dy, ny).b)
        << "split=" << split;
    EXPECT_EQ(koopman_single_combine(koopman_single_naive(x),
                                     koopman_single_naive(y)),
              single_whole)
        << "split=" << split;
  }
}

TEST(Koopman, StreamingMatchesOneShotAcrossChunkings) {
  const Bytes data = cksum::testgen::random_bytes(0x57E4, 1531);
  const ByteView whole(data);
  const KoopmanDualPair dual_whole = koopman_dual_naive(whole);
  const std::uint64_t single_whole = koopman_single_naive(whole);
  for (const std::size_t chunk : {1u, 3u, 7u, 8u, 9u, 13u, 64u, 1000u}) {
    KoopmanDualSum ds;
    KoopmanSingleSum ss;
    for (std::size_t off = 0; off < whole.size(); off += chunk) {
      const ByteView piece =
          whole.subspan(off, std::min(chunk, whole.size() - off));
      ds.update(piece);
      ss.update(piece);
    }
    EXPECT_EQ(ds.pair(), dual_whole) << "chunk=" << chunk;
    EXPECT_EQ(ss.value(), single_whole) << "chunk=" << chunk;
    // pair()/value() mid-stream must not disturb the pending tail.
    ds.reset();
    ss.reset();
    ds.update(whole.first(5));
    (void)ds.pair();
    ss.update(whole.first(5));
    (void)ss.value();
    ds.update(whole.subspan(5));
    ss.update(whole.subspan(5));
    EXPECT_EQ(ds.pair(), dual_whole);
    EXPECT_EQ(ss.value(), single_whole);
  }
}

TEST(Koopman, DualSeesBlockSwapsSingleDoesNot) {
  // Swap two distinct 8-byte blocks: the single sum is unchanged by
  // construction (commutative addition over blocks) while the dual
  // sum's B term moves — the same trade Fletcher makes against the
  // Internet sum, one level up in grain.
  Bytes data = cksum::testgen::random_bytes(0x5A4B, 64);
  const KoopmanDualPair dual_before = koopman_dual_naive(ByteView(data));
  const std::uint64_t single_before = koopman_single_naive(ByteView(data));
  std::swap_ranges(data.begin(), data.begin() + 8, data.begin() + 24);
  ASSERT_NE(data, cksum::testgen::random_bytes(0x5A4B, 64));
  EXPECT_EQ(koopman_single_naive(ByteView(data)), single_before);
  EXPECT_NE(koopman_dual_naive(ByteView(data)), dual_before);
}

}  // namespace
}  // namespace cksum::alg
