#include "net/tp4.hpp"

#include <stdexcept>

namespace cksum::net {

namespace {
// Fixed part: code(1) + DST-REF(2) + NR(1); variable part: checksum
// parameter (2 + 2 bytes). LI excludes itself.
constexpr std::size_t kFixedLen = 4;
constexpr std::size_t kChecksumParamLen = 4;  // code, len, X, Y
constexpr std::size_t kHeaderLen = 1 + kFixedLen + kChecksumParamLen;
}  // namespace

util::Bytes build_tp4_dt(const Tp4Dt& dt, alg::FletcherMod mod) {
  util::Bytes out(kHeaderLen + dt.user_data.size());
  out[0] = static_cast<std::uint8_t>(kFixedLen + kChecksumParamLen);  // LI
  out[1] = kTp4DtCode;
  util::store_be16(out.data() + 2, dt.dst_ref);
  out[4] = static_cast<std::uint8_t>((dt.end_of_tsdu ? 0x80 : 0x00) |
                                     (dt.seq & 0x7f));
  out[5] = kTp4ChecksumParam;
  out[6] = 2;
  out[7] = 0;  // X placeholder
  out[8] = 0;  // Y placeholder
  std::copy(dt.user_data.begin(), dt.user_data.end(),
            out.begin() + kHeaderLen);

  // Solve the check octets over the whole TPDU (offset-from-end weight
  // of X: everything after it plus itself).
  const alg::FletcherPair rest = alg::fletcher_block(util::ByteView(out), mod);
  const std::size_t u = out.size() - 7;
  const auto [x, y] = alg::fletcher_check_bytes(rest, u, mod);
  out[7] = x;
  out[8] = y;
  return out;
}

std::optional<Tp4Dt> parse_tp4_dt(util::ByteView tpdu) {
  if (tpdu.size() < 1 + kFixedLen) return std::nullopt;
  const std::size_t li = tpdu[0];
  if (li < kFixedLen || 1 + li > tpdu.size()) return std::nullopt;
  if (tpdu[1] != kTp4DtCode) return std::nullopt;

  Tp4Dt dt;
  dt.dst_ref = util::load_be16(tpdu.data() + 2);
  dt.end_of_tsdu = (tpdu[4] & 0x80) != 0;
  dt.seq = static_cast<std::uint8_t>(tpdu[4] & 0x7f);

  // Walk the variable part (validates parameter framing).
  std::size_t i = 1 + kFixedLen;
  const std::size_t header_end = 1 + li;
  while (i < header_end) {
    if (i + 2 > header_end) return std::nullopt;
    const std::size_t plen = tpdu[i + 1];
    if (i + 2 + plen > header_end) return std::nullopt;
    i += 2 + plen;
  }

  dt.user_data.assign(tpdu.begin() + header_end, tpdu.end());
  return dt;
}

bool verify_tp4_checksum(util::ByteView tpdu, alg::FletcherMod mod) {
  if (!parse_tp4_dt(tpdu)) return false;
  // Locate the checksum parameter to confirm it exists.
  const std::size_t header_end = 1 + tpdu[0];
  bool has_param = false;
  std::size_t i = 5;
  while (i + 2 <= header_end) {
    if (tpdu[i] == kTp4ChecksumParam && tpdu[i + 1] == 2) {
      has_param = true;
      break;
    }
    i += 2 + tpdu[i + 1];
  }
  if (!has_param) return false;
  return alg::fletcher_verify(tpdu, mod);
}

}  // namespace cksum::net
