// Splice-evaluator performance trajectory (feeds BENCH_splice.json
// via scripts/bench.sh).
//
// Three evaluators over the same seeded corpus, measured in
// splices/sec (items_per_second) with pairs/sec as a counter:
//
//   BM_SpliceDfs        prefix-sharing DFS (the production path)
//   BM_SpliceFlat       flat enumeration + per-splice refold (the
//                       previous evaluator, kept as baseline)
//   BM_SpliceReference  full materialise-and-verify oracle
//
// plus an end-to-end run_filesystem rate at 1 and 4 worker threads to
// track the pair-granular scheduler, and the same corpus streamed
// from a precomputed corpus store (BM_RunCorpusStreamed) so the
// distill gate can hold streaming to >=0.95x the in-memory path.
// CKSUMLAB_SCALE scales the filesystem corpus as usual.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>

#include "atm/splice.hpp"
#include "core/experiments.hpp"
#include "core/pdu_model.hpp"
#include "core/splice_sim.hpp"
#include "fsgen/corpus_store.hpp"
#include "fsgen/generator.hpp"
#include "fsgen/profile.hpp"

namespace {

using namespace cksum;

/// A deterministic 16 KiB gmon-profile transfer: 65 full 256-byte
/// segments (7-cell packets, 923 splices per pair) plus a runt tail.
const std::vector<core::SimPacket>& corpus_packets() {
  static const std::vector<core::SimPacket> pkts = [] {
    const net::FlowConfig flow = core::paper_flow_config();
    const util::Bytes file =
        fsgen::generate_file(fsgen::FileKind::kGmonProfile, 42, 16 * 1024);
    return core::packetize_file(flow, util::ByteView(file));
  }();
  return pkts;
}

template <typename Evaluator>
void run_pair_bench(benchmark::State& state, Evaluator&& evaluate,
                    std::size_t max_pairs) {
  const auto& pkts = corpus_packets();
  const net::FlowConfig flow = core::paper_flow_config();
  const std::size_t last =
      std::min(max_pairs, pkts.size() >= 2 ? pkts.size() - 1 : 0);
  std::uint64_t splices = 0;
  std::uint64_t pairs = 0;
  for (auto _ : state) {
    core::SpliceStats st;
    for (std::size_t i = 0; i < last; ++i)
      evaluate(flow.packet, pkts[i], pkts[i + 1], st);
    benchmark::DoNotOptimize(st);
    splices += st.total;
    pairs += st.pairs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(splices));
  state.counters["pairs_per_sec"] = benchmark::Counter(
      static_cast<double>(pairs), benchmark::Counter::kIsRate);
}

void BM_SpliceDfs(benchmark::State& state) {
  run_pair_bench(state, core::evaluate_pair, 1u << 20);
}
BENCHMARK(BM_SpliceDfs);

void BM_SpliceFlat(benchmark::State& state) {
  run_pair_bench(state, core::evaluate_pair_flat, 1u << 20);
}
BENCHMARK(BM_SpliceFlat);

void BM_SpliceReference(benchmark::State& state) {
  // 4 pairs only — materialising every splice is ~3 orders of
  // magnitude slower than the partial-sums paths.
  run_pair_bench(
      state,
      [](const net::PacketConfig& cfg, const core::SimPacket& p1,
         const core::SimPacket& p2, core::SpliceStats& st) {
        ++st.pairs;
        atm::for_each_splice(p1.pdu.num_cells(), p2.pdu.num_cells(),
                             [&](const atm::SpliceSpec& s) {
                               ++st.total;
                               const core::SpliceOutcome o =
                                   core::evaluate_splice_reference(cfg, p1, p2,
                                                                   s);
                               benchmark::DoNotOptimize(o);
                             });
      },
      4);
}
BENCHMARK(BM_SpliceReference);

void BM_RunFilesystem(benchmark::State& state) {
  const fsgen::Filesystem fs(fsgen::profile("nsc05"),
                             0.05 * core::scale_from_env());
  core::SpliceRunConfig cfg;
  cfg.flow = core::paper_flow_config();
  cfg.threads = static_cast<unsigned>(state.range(0));
  std::uint64_t splices = 0;
  for (auto _ : state) {
    const core::SpliceStats st = core::run_filesystem(cfg, fs);
    benchmark::DoNotOptimize(st);
    splices += st.total;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(splices));
  state.counters["hw_threads"] = benchmark::Counter(
      static_cast<double>(std::thread::hardware_concurrency()));
}
BENCHMARK(BM_RunFilesystem)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // workers run off the main thread

/// Same corpus, but streamed from a sealed corpus store instead of
/// re-packetised from the profile — the store bakes the packetise
/// work in at build time, so streaming should match or beat the
/// in-memory path per worker (bench_distill gates >=0.95x at 1
/// thread, and >=4x aggregate at 8 threads when the machine has 8).
const fsgen::CorpusReader& corpus_store() {
  static const std::unique_ptr<fsgen::CorpusReader> reader = [] {
    const char* path = "bench_splice_corpus.ckcorp";
    fsgen::CorpusBuildParams params;
    params.profile = "nsc05";
    params.scale = 0.05 * core::scale_from_env();
    params.flow = core::paper_flow_config();
    const fsgen::Filesystem fs(fsgen::profile("nsc05"), params.scale);
    std::string err;
    if (!fsgen::build_corpus(params, fs, path, &err)) {
      std::fprintf(stderr, "bench_splice: build_corpus: %s\n", err.c_str());
      std::abort();
    }
    auto r = fsgen::CorpusReader::open(path, &err);
    std::remove(path);  // unlinked but mapped: lives until exit
    if (!r) {
      std::fprintf(stderr, "bench_splice: open: %s\n", err.c_str());
      std::abort();
    }
    return r;
  }();
  return *reader;
}

void BM_RunCorpusStreamed(benchmark::State& state) {
  const fsgen::CorpusReader& store = corpus_store();
  core::SpliceRunConfig cfg;
  cfg.flow = store.info().params.flow;
  cfg.threads = static_cast<unsigned>(state.range(0));
  std::uint64_t splices = 0;
  for (auto _ : state) {
    const core::SpliceStats st = core::run_corpus(cfg, store);
    benchmark::DoNotOptimize(st);
    splices += st.total;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(splices));
  state.counters["hw_threads"] = benchmark::Counter(
      static_cast<double>(std::thread::hardware_concurrency()));
}
BENCHMARK(BM_RunCorpusStreamed)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
