// Randomized end-to-end fault soak: generated corpus -> AAL5 framing
// -> multi-VC cell interleave -> FaultyChannel -> lossy link (switch
// discard policies) -> hardened VcDemux, with every delivered PDU
// checked against the invariants the receiver stack promises:
//
//  I1  no crash / no out-of-range access (ASan/UBSan enforce this);
//  I2  demux memory stays within its configured budget — after every
//      cell, pending_cells() <= max_pending_cells and
//      channel_count() <= max_channels;
//  I3  no undetected corruption: any PDU that passes BOTH the AAL5
//      length check and CRC-32 must be byte-identical to a payload
//      that was actually sent in the scenario (the residual CRC-32
//      miss rate of ~2^-32 makes a legitimate collision unobservable
//      at soak volumes, so any hit is treated as a violation).
//
// Scenarios are indexed: scenario i of master seed S derives all its
// randomness from Rng(S).child(i), so a violation reported as
// (seed, scenario) replays deterministically in isolation.
#pragma once

#include <cstdint>
#include <string>

#include "atm/demux.hpp"
#include "atm/loss.hpp"
#include "faults/channel.hpp"

namespace cksum::faults {

struct SoakConfig {
  std::uint64_t seed = 0xC0FFEE;
  /// Stop once this many fault events have been injected (0 = no
  /// target; run max_scenarios instead).
  std::uint64_t target_faults = 1'000'000;
  std::uint64_t max_scenarios = ~std::uint64_t{0};
  /// Demux limits; 0 means "randomize per scenario" (small enough
  /// that the caps actually engage).
  std::size_t max_channels = 0;
  std::size_t max_pending_cells = 0;
  bool stop_on_violation = true;
};

struct ScenarioResult {
  FaultStats faults;
  atm::LossStats loss;
  atm::DemuxStats demux;
  std::uint64_t cells_to_demux = 0;
  std::uint64_t pdus_delivered = 0;  ///< candidate PDUs surfaced
  std::uint64_t pdus_ok = 0;         ///< passed length + CRC
  std::uint64_t oversize_discards = 0;
  std::uint64_t payloads_sent = 0;
  std::uint64_t violations = 0;
  std::string violation_detail;  ///< empty when clean

  void merge(const ScenarioResult& o);
};

struct SoakResult {
  std::uint64_t scenarios = 0;
  ScenarioResult totals;
  /// Non-empty on violation: a faultlab command line that replays the
  /// offending scenario deterministically.
  std::string reproducer;

  bool ok() const noexcept { return totals.violations == 0; }
};

/// Run one indexed scenario. Fully deterministic in (cfg.seed, index,
/// cfg.max_channels, cfg.max_pending_cells).
ScenarioResult run_scenario(const SoakConfig& cfg, std::uint64_t index);

/// Run scenarios 0, 1, 2, ... until the fault target (or scenario cap)
/// is reached, or an invariant is violated.
SoakResult run_soak(const SoakConfig& cfg);

/// The reproducer command line for one scenario of a soak config.
std::string reproducer_line(const SoakConfig& cfg, std::uint64_t index);

}  // namespace cksum::faults
