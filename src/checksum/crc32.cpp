#include "checksum/crc32.hpp"

namespace cksum::alg {

namespace {

struct Tables {
  // t[0] is the classic byte table; t[1..7] extend it for slice-by-8.
  std::uint32_t t[8][256];

  constexpr Tables() : t{} {
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (kCrc32Poly ^ (c >> 1)) : (c >> 1);
      t[0][n] = c;
    }
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = t[0][n];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[s][n] = c;
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32_bitwise(std::uint32_t crc, util::ByteView data) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c ^= byte;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (kCrc32Poly ^ (c >> 1)) : (c >> 1);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_table(std::uint32_t crc, util::ByteView data) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data)
    c = kTables.t[0][(c ^ byte) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32_slice8(std::uint32_t crc, util::ByteView data) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                  (static_cast<std::uint32_t>(p[1]) << 8) |
                                  (static_cast<std::uint32_t>(p[2]) << 16) |
                                  (static_cast<std::uint32_t>(p[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(p[4]) |
                             (static_cast<std::uint32_t>(p[5]) << 8) |
                             (static_cast<std::uint32_t>(p[6]) << 16) |
                             (static_cast<std::uint32_t>(p[7]) << 24);
    c = kTables.t[7][lo & 0xffu] ^ kTables.t[6][(lo >> 8) & 0xffu] ^
        kTables.t[5][(lo >> 16) & 0xffu] ^ kTables.t[4][lo >> 24] ^
        kTables.t[3][hi & 0xffu] ^ kTables.t[2][(hi >> 8) & 0xffu] ^
        kTables.t[1][(hi >> 16) & 0xffu] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) c = kTables.t[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::uint32_t crc, util::ByteView data) noexcept {
  return crc32_slice8(crc, data);
}

std::uint32_t crc32(util::ByteView data) noexcept { return crc32(0, data); }

Gf2Matrix Gf2Matrix::zero_byte_operator() noexcept {
  // Operator for one zero *bit*, squared three times -> one zero byte.
  Gf2Matrix bit;
  bit.rows_[0] = kCrc32Poly;
  std::uint32_t row = 1;
  for (int i = 1; i < 32; ++i) {
    bit.rows_[static_cast<std::size_t>(i)] = row;
    row <<= 1;
  }
  Gf2Matrix two = square(bit);
  Gf2Matrix four = square(two);
  return square(four);
}

Gf2Matrix Gf2Matrix::square(const Gf2Matrix& m) noexcept {
  Gf2Matrix out;
  for (std::size_t i = 0; i < 32; ++i) out.rows_[i] = m.times(m.rows_[i]);
  return out;
}

Gf2Matrix Gf2Matrix::zeros_operator(std::size_t len) noexcept {
  // Identity, then multiply in squarings of the one-zero-byte operator
  // for each set bit of len.
  Gf2Matrix result;
  for (int i = 0; i < 32; ++i) result.rows_[static_cast<std::size_t>(i)] = 1u << i;
  Gf2Matrix power = zero_byte_operator();
  while (len != 0) {
    if (len & 1u) {
      Gf2Matrix next;
      for (std::size_t i = 0; i < 32; ++i)
        next.rows_[i] = power.times(result.rows_[i]);
      result = next;
    }
    len >>= 1;
    if (len != 0) power = square(power);
  }
  return result;
}

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b) noexcept {
  return Gf2Matrix::zeros_operator(len_b).times(crc_a) ^ crc_b;
}

CrcCombiner::CrcCombiner(std::size_t len_b) noexcept {
  const Gf2Matrix op = Gf2Matrix::zeros_operator(len_b);
  for (int t = 0; t < 8; ++t) {
    for (std::uint32_t nib = 0; nib < 16; ++nib) {
      std::uint32_t v = 0;
      for (int b = 0; b < 4; ++b)
        if (nib & (1u << b))
          v ^= op.rows_[static_cast<std::size_t>(4 * t + b)];
      nibble_[static_cast<std::size_t>(t)][nib] = v;
    }
  }
}

}  // namespace cksum::alg
