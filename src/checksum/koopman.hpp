// Koopman's large-block modular addition checksums (arXiv 2302.13432).
//
// Where Fletcher and Adler digest one byte per step, these algorithms
// digest the message as 64-bit big-endian *blocks* and reduce modulo a
// prime chosen near the top of the sum's value space, which buys both
// speed (an eighth of the loop iterations) and detection strength (a
// prime modulus has none of the 0x00/0xFF aliasing classes that
// ones-complement moduli like 255 and 65535 suffer from — the run
// pathology the paper measures on PBM and word-processor data).
//
// Two family members are implemented:
//
//   dual sum   (koopman_dual_*)   two Fletcher-style running sums
//              A += block, B += A, both mod 65521 (the largest prime
//              below 2^16); check value is the 32-bit (B<<16)|A.
//              Position-sensitive like Fletcher, so it sees swapped
//              and displaced blocks.
//   single sum (koopman_single_*) one running sum of the blocks mod
//              4294967291 (2^32 - 5, the largest prime below 2^32);
//              32-bit check value. Position-independent across blocks
//              — the 64-bit-grain analogue of the Internet sum.
//
// The final partial block, when the message length is not a multiple
// of 8, is zero-padded on the right (equivalently: treated as the
// high-order bytes of a 64-bit block). That convention makes the
// block count ceil(len / 8) and keeps the combine algebra exact at
// block-aligned split points:
//
//   dual:   A = Ax + Ay,  B = Bx + n_y * Ax + By   (mod 65521)
//           where n_y = block count of the second fragment — the
//           Fletcher composition rule lifted from bytes to blocks, so
//           the splice evaluator's partial-sum trick applies.
//   single: S = Sx + Sy                            (mod 2^32 - 5)
//
// Combination is exact only when the first fragment's byte length is
// a multiple of 8 (otherwise the tail of X and the head of Y would
// share a block); the streaming classes below buffer up to 7 bytes so
// arbitrary-chunk updates still produce whole-message results.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace cksum::alg {

/// Bytes per modular-addition block.
inline constexpr std::size_t kKoopmanBlockBytes = 8;

/// Dual-sum modulus: the largest prime below 2^16.
inline constexpr std::uint32_t kKoopmanDualMod = 65521;

/// Single-sum modulus: 2^32 - 5, the largest prime below 2^32.
inline constexpr std::uint64_t kKoopmanSingleMod = 4294967291ull;

/// Number of (zero-padded) 64-bit blocks in `len` bytes.
constexpr std::uint64_t koopman_block_count(std::size_t len) noexcept {
  return (static_cast<std::uint64_t>(len) + kKoopmanBlockBytes - 1) /
         kKoopmanBlockBytes;
}

/// The two dual-sum running sums, kept canonical (< 65521).
struct KoopmanDualPair {
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend bool operator==(const KoopmanDualPair&,
                         const KoopmanDualPair&) = default;
};

/// Pack (A, B) into the 32-bit check value B<<16 | A.
constexpr std::uint32_t koopman_dual_value(KoopmanDualPair p) noexcept {
  return (p.b << 16) | p.a;
}

/// Reference dual sum: one 64-bit block per step, immediate reduction.
/// The kernel registry's fast tiers are differentially tested against
/// this formulation.
KoopmanDualPair koopman_dual_naive(util::ByteView data) noexcept;

/// Reference single sum: one 64-bit block per step, immediate
/// reduction.
std::uint64_t koopman_single_naive(util::ByteView data) noexcept;

/// Dual sums of the concatenation X ++ Y from the fragments' own sums.
/// `y_blocks` is Y's (zero-padded) block count; X's byte length must
/// be a multiple of kKoopmanBlockBytes for the result to be exact.
KoopmanDualPair koopman_dual_combine(KoopmanDualPair x, KoopmanDualPair y,
                                     std::uint64_t y_blocks) noexcept;

/// Contribution of a fragment to a message in which `tail_blocks`
/// blocks follow it: (A, B + tail_blocks * A).
KoopmanDualPair koopman_dual_shift(KoopmanDualPair x,
                                   std::uint64_t tail_blocks) noexcept;

/// Single sum of the concatenation X ++ Y (X block-aligned).
std::uint64_t koopman_single_combine(std::uint64_t x,
                                     std::uint64_t y) noexcept;

/// Incremental dual sum over arbitrary chunk boundaries: up to 7
/// partial-block bytes are buffered between updates, so pair() always
/// reflects the whole-message (zero-padded) result.
class KoopmanDualSum {
 public:
  void update(util::ByteView data) noexcept;
  KoopmanDualPair pair() const noexcept;
  std::uint32_t value() const noexcept { return koopman_dual_value(pair()); }
  void reset() noexcept;

 private:
  std::uint32_t a_ = 0;
  std::uint32_t b_ = 0;
  std::uint8_t pending_[kKoopmanBlockBytes] = {};
  std::size_t npending_ = 0;
};

/// Incremental single sum with the same partial-block buffering.
class KoopmanSingleSum {
 public:
  void update(util::ByteView data) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  std::uint64_t sum_ = 0;
  std::uint8_t pending_[kKoopmanBlockBytes] = {};
  std::size_t npending_ = 0;
};

}  // namespace cksum::alg
