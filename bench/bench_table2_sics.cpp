// Table 2: CRC and TCP Checksum Results — 256-byte packets on the
// eight Swedish Institute of Computer Science filesystems.
#include "table_common.hpp"

int main() {
  cksum::bench::print_crc_tcp_table(
      "Table 2: CRC and TCP checksum results (SICS systems)",
      cksum::fsgen::sics_profiles());
  return 0;
}
