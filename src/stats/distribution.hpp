// Discrete probability distributions over Z_M (checksum value spaces)
// and the operations the paper's analysis needs:
//
//  * k-fold cyclic self-convolution — the iid "Predict" model of
//    Equation 1 and the dotted lines in Figure 2;
//  * match probability P[X == Y] = Σ pᵢ² and offset-match probability
//    P[X − Y ≡ δ] — the quantities in Tables 4–6 and Lemma 9;
//  * PMax / PMin — the quantities Lemmas 1–2 and Theorem 4 (the
//    central-limit theorem mod M) reason about.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.hpp"

namespace cksum::stats {

class Distribution {
 public:
  /// Uniform distribution over M values.
  static Distribution uniform(std::size_t m);

  /// Point mass at `value`.
  static Distribution point(std::size_t m, std::size_t value);

  /// Normalised from a histogram (histogram bins define M).
  static Distribution from_histogram(const Histogram& h);

  /// From raw weights (normalised; weights must be non-negative and
  /// not all zero).
  explicit Distribution(std::vector<double> weights);

  std::size_t size() const noexcept { return p_.size(); }
  double operator[](std::size_t i) const { return p_.at(i); }
  const std::vector<double>& probabilities() const noexcept { return p_; }

  double pmax() const;
  double pmin() const;

  /// P[X == Y] for independent X, Y ~ this.
  double match_probability() const;

  /// P[X − Y ≡ δ (mod M)] for independent X, Y ~ this.
  /// δ = 0 reduces to match_probability(). Lemma 9: the result is
  /// maximised at δ = 0 for every distribution.
  double offset_match_probability(std::size_t delta) const;

  /// Distribution of (X + Y) mod M, X ~ this, Y ~ other (independent).
  Distribution add(const Distribution& other) const;

  /// Distribution of the sum of k iid copies mod M (k >= 1),
  /// computed by square-and-multiply over cyclic convolution.
  Distribution self_convolve(std::size_t k) const;

  /// Sorted-by-decreasing-probability view (Figure 2 x-axis).
  std::vector<double> sorted() const;

  /// Total variation distance to the uniform distribution over M.
  double tv_distance_from_uniform() const;

 private:
  explicit Distribution(std::size_t m) : p_(m, 0.0) {}
  std::vector<double> p_;
};

}  // namespace cksum::stats
