// §5.5 — Locality of failure: pathological data patterns.
//
// Runs the splice simulation over single-kind corpora to expose the
// per-file-type pathologies the paper isolates:
//   * PBM black/white rasters  -> Fletcher-255 collapses
//   * hex-encoded PostScript   -> Fletcher-256 failures
//   * gmon.out profile data    -> TCP checksum failures
//   * word-processor 0x00/0xFF -> Fletcher-255 failures
// Also serves as the calibration view for the synthetic corpus: the
// "TCP miss" column should sit orders of magnitude above uniform for
// the structured kinds and at ~uniform for random data.
#include <cstdio>
#include <iostream>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "fsgen/generator.hpp"

using namespace cksum;

namespace {

core::SpliceStats run_kind(fsgen::FileKind kind, alg::Algorithm transport,
                           double scale) {
  core::SpliceRunConfig cfg;
  cfg.flow = core::paper_flow_config();
  cfg.flow.packet.transport = transport;
  core::SpliceStats st;
  const auto files = static_cast<std::size_t>(24 * scale) + 1;
  for (std::size_t i = 0; i < files; ++i) {
    const util::Bytes file =
        fsgen::generate_file(kind, 0xbead + i * 37, 48 * 1024);
    st.merge(core::run_file(cfg, util::ByteView(file)));
  }
  return st;
}

std::string rate(const core::SpliceStats& st) {
  if (st.remaining == 0) return "-";
  return core::fmt_pct(st.missed_transport, st.remaining);
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== Pathological data patterns by file type (paper §5.5) ==\n"
      "Missed-splice rate (%% of remaining splices); uniform-data "
      "expectations:\n"
      "  TCP %s%%   F-255 %s%%   F-256 %s%%\n\n",
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kInternet)).c_str(),
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kFletcher255)).c_str(),
      core::fmt_pct(alg::uniform_miss_rate(alg::Algorithm::kFletcher256)).c_str());

  core::TextTable table({"file kind", "remaining", "TCP miss%", "F-255 miss%",
                         "F-256 miss%", "identical%"});
  for (const fsgen::FileKind kind : fsgen::kAllKinds) {
    const auto tcp = run_kind(kind, alg::Algorithm::kInternet, scale);
    const auto f255 = run_kind(kind, alg::Algorithm::kFletcher255, scale);
    const auto f256 = run_kind(kind, alg::Algorithm::kFletcher256, scale);
    table.add_row({std::string(fsgen::name(kind)),
                   core::fmt_count(tcp.remaining), rate(tcp), rate(f255),
                   rate(f256), core::fmt_pct(tcp.identical, tcp.total)});
  }
  table.print(std::cout);
  return 0;
}
