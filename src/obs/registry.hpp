// Process-wide telemetry: named counters, gauges, and fixed-bucket
// histograms behind per-thread shards.
//
// The hot path is one relaxed fetch_add on a slot of the calling
// thread's own shard — no locks, no cross-core contention, no ordering
// beyond the increment itself. Aggregation happens only at snapshot
// time: a Snapshot sums every shard's slots, so counter totals are
// exact and independent of when (or how often) snapshots are taken.
// All merges are plain additions, which makes them associative and
// commutative — the property the multi-thread tests pin down.
//
// Metric kinds:
//   Counter    monotonic event count (add)
//   Gauge      additive up/down value (add/sub); the net across all
//              shards is the reading, so concurrent inc/dec pairs from
//              different threads cancel exactly
//   Histogram  power-of-two bucketed value distribution (observe),
//              with total sample count and sum
//
// Every metric carries a Tag describing its determinism contract:
// kDeterministic values must be bitwise identical for a given corpus
// and configuration regardless of thread count; kScheduling and
// kTiming values may vary run to run and are excluded from the
// determinism tests (and from any diff-based tooling) by tag.
//
// Compiling with -DOBS_DISABLE turns every registration and recording
// call into a no-op (handles hold a null registry and the inline hot
// path folds away), so the telemetry build can be benchmarked against
// a telemetry-free build of the same sources (docs/OBSERVABILITY.md
// records the measured overhead).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cksum::obs {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Determinism contract of a metric (see file comment).
enum class Tag : std::uint8_t { kDeterministic, kScheduling, kTiming };

std::string_view name(Kind k) noexcept;
std::string_view name(Tag t) noexcept;

/// Histogram buckets: bucket i counts samples in [2^i, 2^(i+1)), with
/// 0 folded into bucket 0 and everything >= 2^31 clamped to the last.
inline constexpr std::size_t kHistogramBuckets = 32;

/// Slot budget per shard. Counters and gauges take one slot,
/// histograms kHistogramBuckets + 1; registrations past the budget
/// return inert handles instead of failing the caller.
inline constexpr std::size_t kMaxSlots = 1024;

/// One aggregated metric as seen by a Snapshot.
struct MetricValue {
  std::string name;
  Kind kind = Kind::kCounter;
  Tag tag = Tag::kDeterministic;
  std::uint64_t value = 0;  ///< counter total, or histogram sample count
  std::int64_t gauge = 0;   ///< gauge net value
  std::uint64_t sum = 0;    ///< histogram sample sum
  std::vector<std::uint64_t> buckets;  ///< histogram buckets (else empty)

  friend bool operator==(const MetricValue&, const MetricValue&) = default;
};

/// Point-in-time aggregation over all shards, in registration order.
struct Snapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view metric_name) const noexcept;
};

class Registry;

/// An external accumulator merged additively into snapshots. Some hot
/// paths batch counts in their own thread-local cells instead of
/// paying a registry slot_add per event (the kernel dispatch counters
/// do this); a snapshot source is how those cells still appear in
/// every Snapshot. `collect` returns (metric name, absolute total)
/// pairs, each added onto the like-named counter's summed value —
/// totals must be monotone so snapshot timing stays irrelevant, and
/// names must already be registered (unknown names are ignored).
/// `reset` must re-baseline the source so subsequent collects start
/// from zero again; Registry::reset() invokes it.
struct SnapshotSource {
  std::vector<std::pair<std::string, std::uint64_t>> (*collect)() = nullptr;
  void (*reset)() = nullptr;
};

/// Monotonic event counter. Default-constructed (or budget-overflow)
/// handles are inert.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t n = 1) const noexcept;

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Additive up/down value (e.g. queue depth).
class Gauge {
 public:
  Gauge() = default;
  inline void add(std::int64_t delta) const noexcept;
  void sub(std::int64_t delta) const noexcept { add(-delta); }

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Power-of-two bucketed distribution.
class Histogram {
 public:
  Histogram() = default;
  inline void observe(std::uint64_t value) const noexcept;

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_ = nullptr;
  std::uint32_t slot_ = 0;
};

class Registry {
 public:
  Registry();
  ~Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every subsystem records into.
  static Registry& global();

  /// Register (or look up — registration is idempotent by name) a
  /// metric. A name registered with a different kind, or past the slot
  /// budget, yields an inert handle.
  Counter counter(std::string_view metric_name,
                  Tag tag = Tag::kDeterministic);
  Gauge gauge(std::string_view metric_name, Tag tag = Tag::kScheduling);
  Histogram histogram(std::string_view metric_name, Tag tag = Tag::kTiming);

  /// Aggregate every metric across every shard. Safe to call while
  /// other threads record; counters already summed are exact, and the
  /// result is independent of snapshot timing relative to other
  /// snapshots (sums are monotone and associative).
  Snapshot snapshot() const;

  /// Zero every slot of every shard and re-baseline every snapshot
  /// source. Metric definitions and handles stay valid. Test-only:
  /// callers must quiesce recording threads.
  void reset() noexcept;

  /// Register an external accumulator whose totals merge into every
  /// subsequent snapshot (see SnapshotSource). Registration is
  /// append-only and idempotence is the caller's problem: register
  /// once, from a once-guarded init path. `collect`/`reset` are
  /// invoked outside the registry lock and may not call back into
  /// metric registration.
  void add_snapshot_source(SnapshotSource source);

  /// Hot path: relaxed add into this thread's shard. Each slot has a
  /// single writer — the shard's owning thread (reset() is test-only
  /// and requires quiesced recorders) — so a relaxed load+store add is
  /// exact and skips the lock-prefixed read-modify-write.
  void slot_add(std::uint32_t slot, std::uint64_t delta) {
    std::atomic<std::uint64_t>& s = shard().slots[slot];
    s.store(s.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }

 private:
  struct MetricDef {
    std::string name;
    Kind kind;
    Tag tag;
    std::uint32_t slot;
    std::uint32_t nslots;
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
  };
  /// One-entry per-thread cache of the most recently used registry's
  /// shard. Constant-initialized POD, so the inline fast path is a TLS
  /// load plus two compares — no init guard, no function call. The id
  /// check keeps a stale entry from matching a new registry that
  /// reused the address of a destroyed one.
  struct ShardCache {
    std::uint64_t id;
    const Registry* reg;
    Shard* shard;
  };
  static thread_local ShardCache tls_shard_;

  /// This thread's shard of this registry, created on first use and
  /// owned by the registry (shards outlive their threads so exited
  /// workers keep contributing to snapshots).
  Shard& shard() {
    if (tls_shard_.reg == this && tls_shard_.id == id_)
      return *tls_shard_.shard;
    return shard_slow();
  }
  Shard& shard_slow();
  std::uint32_t alloc(std::string_view metric_name, Kind kind, Tag tag,
                      std::uint32_t nslots, bool& ok);

  const std::uint64_t id_;  ///< distinguishes registries in shard caches
  mutable std::mutex mu_;   ///< guards defs_, shards_, and sources_
  std::vector<MetricDef> defs_;
  std::uint32_t next_slot_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<SnapshotSource> sources_;
};

inline void Counter::add(std::uint64_t n) const noexcept {
#ifndef OBS_DISABLE
  if (reg_ != nullptr) reg_->slot_add(slot_, n);
#else
  (void)n;
#endif
}

inline void Gauge::add(std::int64_t delta) const noexcept {
#ifndef OBS_DISABLE
  // Two's-complement wrap: per-shard sums may transiently "underflow",
  // but the total across shards re-wraps to the true net value.
  if (reg_ != nullptr) reg_->slot_add(slot_, static_cast<std::uint64_t>(delta));
#else
  (void)delta;
#endif
}

inline void Histogram::observe(std::uint64_t value) const noexcept {
#ifndef OBS_DISABLE
  if (reg_ == nullptr) return;
  const unsigned bucket =
      value == 0
          ? 0u
          : std::min<unsigned>(static_cast<unsigned>(std::bit_width(value)) - 1,
                               kHistogramBuckets - 1);
  reg_->slot_add(slot_, value);               // sample sum
  reg_->slot_add(slot_ + 1 + bucket, 1);      // bucket count
#else
  (void)value;
#endif
}

}  // namespace cksum::obs
