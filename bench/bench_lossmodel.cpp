// §7 end-to-end: how much splice exposure survives each switch
// discard policy. Files are packetised, segmented into 53-byte ATM
// cells, pushed through a bursty lossy link, reassembled by the AAL5
// state machine, and run through the receiver checks.
//
//   plain cell loss  -> fused PDUs form; length/CRC/TCP must catch them
//   PPD              -> fusions have detectably wrong lengths
//   EPD              -> no fusion can form at all
//
// The "TCP only" column ignores the AAL5 CRC — the paper's warning
// about links where the TCP checksum is the primary error detection
// (SLIP: "That's probably not wise").
#include <cstdio>
#include <iostream>
#include <set>

#include "atm/loss.hpp"
#include "atm/reassembler.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "net/validate.hpp"
#include "util/hash.hpp"

using namespace cksum;

namespace {

struct PolicyResult {
  atm::LossStats loss;
  std::uint64_t candidates = 0;
  std::uint64_t intact = 0;
  std::uint64_t rej_length = 0;
  std::uint64_t rej_crc = 0;
  std::uint64_t rej_header = 0;
  std::uint64_t rej_tcp = 0;
  std::uint64_t undetected = 0;           // all checks pass, data corrupt
  std::uint64_t undetected_tcp_only = 0;  // CRC ignored (SLIP-like)
};

PolicyResult run_policy(atm::DiscardPolicy policy, double loss_rate,
                        double scale) {
  const net::FlowConfig flow = core::paper_flow_config();
  const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), scale);

  PolicyResult out;
  atm::LossConfig loss_cfg;
  loss_cfg.cell_loss_rate = loss_rate;
  loss_cfg.burst_continue = 0.5;
  loss_cfg.policy = policy;
  util::Rng rng(0x105e + static_cast<std::uint64_t>(policy));

  for (std::size_t f = 0; f < fs.file_count(); ++f) {
    const util::Bytes file = fs.file(f);
    const auto pkts = net::segment_file(flow, util::ByteView(file));

    // Known-good datagrams of this flow, for corruption detection.
    std::set<std::uint64_t> good;
    std::vector<atm::Cell> stream;
    for (const auto& p : pkts) {
      good.insert(util::hash64(p.ip_bytes()));
      const atm::CpcsPdu pdu = atm::CpcsPdu::frame(p.ip_bytes());
      const auto cells = atm::segment_pdu(pdu, 0, 32);
      stream.insert(stream.end(), cells.begin(), cells.end());
    }

    atm::LossStats ls;
    const auto survivors = atm::transmit(stream, loss_cfg, rng, &ls);
    out.loss.cells_in += ls.cells_in;
    out.loss.cells_lost += ls.cells_lost;
    out.loss.cells_policy_drop += ls.cells_policy_drop;

    atm::Reassembler reasm;
    for (const auto& cell : survivors) {
      auto done = reasm.push(cell);
      if (!done) continue;
      ++out.candidates;
      if (!done->length_ok) {
        ++out.rej_length;
        continue;
      }
      const std::size_t len =
          atm::parse_trailer(util::ByteView(done->bytes)).length;
      const util::ByteView datagram = util::ByteView(done->bytes).first(len);
      const bool hdr_ok =
          net::check_headers(datagram, len, true) == net::HeaderCheck::kOk;
      const bool tcp_ok =
          hdr_ok && net::verify_transport_checksum(flow.packet, datagram);
      const bool data_ok = good.count(util::hash64(datagram)) > 0;

      // SLIP-like reception: no CRC.
      if (hdr_ok && tcp_ok && !data_ok) ++out.undetected_tcp_only;

      if (!done->crc_ok) {
        ++out.rej_crc;
        continue;
      }
      if (!hdr_ok) {
        ++out.rej_header;
        continue;
      }
      if (!tcp_ok) {
        ++out.rej_tcp;
        continue;
      }
      if (data_ok) {
        ++out.intact;
      } else {
        ++out.undetected;
      }
    }
  }
  return out;
}

const char* policy_name(atm::DiscardPolicy p) {
  switch (p) {
    case atm::DiscardPolicy::kNone: return "plain cell loss";
    case atm::DiscardPolicy::kPartialPacketDiscard: return "PPD";
    case atm::DiscardPolicy::kEarlyPacketDiscard: return "EPD";
  }
  return "?";
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  const double loss_rate = 0.01;
  std::printf(
      "== Loss-model pipeline (paper §7): cells through a bursty lossy "
      "link ==\n(cell loss rate %.2f%%, burst continue 0.5, corpus "
      "sics.se:/opt)\n\n",
      100 * loss_rate);

  core::TextTable t({"policy", "cells lost", "candidates", "intact",
                     "rej len", "rej CRC", "rej hdr", "rej TCP",
                     "undetected", "undetected TCP-only"});
  for (const auto policy :
       {atm::DiscardPolicy::kNone, atm::DiscardPolicy::kPartialPacketDiscard,
        atm::DiscardPolicy::kEarlyPacketDiscard}) {
    const PolicyResult r = run_policy(policy, loss_rate, scale);
    t.add_row({policy_name(policy),
               core::fmt_count(r.loss.cells_lost + r.loss.cells_policy_drop),
               core::fmt_count(r.candidates), core::fmt_count(r.intact),
               core::fmt_count(r.rej_length), core::fmt_count(r.rej_crc),
               core::fmt_count(r.rej_header), core::fmt_count(r.rej_tcp),
               core::fmt_count(r.undetected),
               core::fmt_count(r.undetected_tcp_only)});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape (paper): with plain loss, fused PDUs appear and "
      "the checks must work; PPD turns fusions into length failures; EPD "
      "eliminates candidates entirely. Undetected corruption with the CRC "
      "in place requires ~2^32 exposures — 'much less than 1 in 10^19' "
      "overall.\n");
  return 0;
}
