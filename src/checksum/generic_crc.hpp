// Parameterisable CRC engine, widths 1..32.
//
// The paper's headline quantitative claim is that "the 16-bit TCP
// checksum performed about as well as a 10-bit CRC" on real data. To
// reproduce that we need CRCs of arbitrary width to race against the
// Internet checksum; this engine supports any width up to 32 with any
// generator polynomial, using the reflected (LSB-first) formulation
// with init = xorout = all-ones (the CRC-32 conventions generalised).
//
// Like crc32, the engine is linear over GF(2) after conditioning is
// cancelled, so finalised values combine with the same
// zeros-operator ^ algebra; `zeros_operator`/`combine` expose that.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace cksum::alg {

/// Reverse the low `width` bits of `v`.
constexpr std::uint32_t reflect_bits(std::uint32_t v, int width) noexcept {
  std::uint32_t out = 0;
  for (int i = 0; i < width; ++i) {
    out = (out << 1) | (v & 1u);
    v >>= 1;
  }
  return out;
}

class GenericCrc {
 public:
  /// `poly_normal` is the generator polynomial in the usual MSB-first
  /// notation (e.g. 0x04C11DB7 for CRC-32, 0x233 for CRC-10).
  GenericCrc(int width, std::uint32_t poly_normal);

  int width() const noexcept { return width_; }
  std::uint32_t mask() const noexcept { return mask_; }
  std::uint32_t poly_reflected() const noexcept { return poly_; }

  /// Finalised CRC of a buffer.
  std::uint32_t compute(util::ByteView data) const noexcept {
    return update(0, data);
  }

  /// Streaming continuation over finalised values (zlib semantics:
  /// pass the previous finalised CRC, or 0 to start).
  std::uint32_t update(std::uint32_t crc, util::ByteView data) const noexcept;

  /// Bitwise reference (for tests).
  std::uint32_t update_bitwise(std::uint32_t crc,
                               util::ByteView data) const noexcept;

  /// crc(A ++ B) from finalised crc(A), crc(B), |B|.
  std::uint32_t combine(std::uint32_t crc_a, std::uint32_t crc_b,
                        std::size_t len_b) const noexcept;

  /// Reusable fixed-length combiner (precomputed zeros-operator) for
  /// hot loops that repeatedly append blocks of one size.
  class Combiner {
   public:
    std::uint32_t combine(std::uint32_t crc_a,
                          std::uint32_t crc_b) const noexcept {
      std::uint32_t out = 0;
      std::uint32_t vec = crc_a;
      for (std::size_t i = 0; i < rows_.size() && vec != 0; ++i, vec >>= 1)
        if (vec & 1u) out ^= rows_[i];
      return out ^ crc_b;
    }

   private:
    friend class GenericCrc;
    explicit Combiner(std::vector<std::uint32_t> rows)
        : rows_(std::move(rows)) {}
    std::vector<std::uint32_t> rows_;
  };

  Combiner combiner(std::size_t len_b) const { return Combiner(zeros_rows(len_b)); }

  /// Number of distinct CRC values (2^width) as a double, for
  /// expected-miss-rate computations.
  double value_space() const noexcept;

 private:
  std::vector<std::uint32_t> zeros_rows(std::size_t len) const noexcept;

  int width_;
  std::uint32_t poly_;  // reflected form
  std::uint32_t mask_;
  std::array<std::uint32_t, 256> table_{};
};

/// A small catalogue of standard generator polynomials by width, used
/// by the CRC-width ablation bench. Widths without a well-known
/// standard polynomial use entries from Koopman's tables.
std::uint32_t standard_poly(int width);

}  // namespace cksum::alg
