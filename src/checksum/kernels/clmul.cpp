// CRC-32 by carry-less-multiply folding (PCLMULQDQ on x86, PMULL on
// AArch64) — the top kernel tier where the hardware has it.
//
// Method (after "Fast CRC Computation for Generic Polynomials Using
// PCLMULQDQ", arXiv 1009.5949): keep four 128-bit accumulators over a
// 64-byte stripe; each step *folds* an accumulator 64 bytes forward by
// multiplying its two halves with precomputed constants x^d mod G and
// XOR-ing in the next stripe, so the whole message collapses to one
// 128-bit register, which a 128→96→64-bit reduction plus a Barrett
// step turns into the 32-bit remainder.
//
// Reflected-domain bookkeeping (how the constants are derived): a
// 128-bit register loaded little-endian holds stream position p in
// bit p, i.e. bit p is coeff (127-p) of the chunk polynomial. For the
// operand layouts used here, a carry-less product's bit m is coeff
// (95-m) of the true product — the result sits one x^32 short of the
// data layout — so a fold spanning d bits multiplies the low half by
// K(d+32) and the high half by K(d-32), where
//
//   K(d) = bit-reverse32(x^d mod G) << 1.
//
// All constants are computed from that formula in constexpr code
// below and pinned by static_asserts to the values independently
// validated against zlib (they equal the widely published PCLMULQDQ
// CRC-32 constant table).
//
// The final reduction works on the register's two 64-bit lanes as
// scalars: (A) fold the low qword across the high one (128→96 bits),
// (B) fold the top 32 bits down (96→64), (C) multiply by x^32
// reduced back to 64 bits — the CRC appends 32 zero bits — and
// (D) a Barrett step with mu = bit-reverse33(floor(x^64 / G)) yields
// the 32-bit remainder.
//
// Lengths below 64 bytes (and sub-16-byte tails) go through the
// slicing tier: the fold loop needs a full stripe, and this tier's
// identity is speed, not table avoidance. If the binary has the
// intrinsics but the CPU lacks them (registry callers never do this,
// but tests and tools may call the function pointer directly), the
// entry point quietly falls back to chorba instead of faulting;
// clmul_unavailable() is how the registry reports that state.
#include <bit>
#include <cstddef>
#include <cstdint>

#include "checksum/kernels/cpu_features.hpp"
#include "checksum/kernels/impl.hpp"

#if defined(__PCLMUL__) && defined(__SSE4_1__) && \
    (defined(__x86_64__) || defined(__i386__))
#define CKSUM_CLMUL_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRYPTO)
#define CKSUM_CLMUL_NEON 1
#include <arm_neon.h>
#endif

#if defined(CKSUM_CLMUL_X86) || defined(CKSUM_CLMUL_NEON)
#define CKSUM_CLMUL_IMPL 1
#endif

namespace cksum::alg::kern::impl {

#ifdef CKSUM_CLMUL_IMPL

namespace {

constexpr std::uint64_t kGenerator = 0x104C11DB7ull;  // G, normal form

constexpr std::uint64_t reverse_bits(std::uint64_t v, unsigned n) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < n; ++i)
    if ((v >> i) & 1) r |= std::uint64_t{1} << (n - 1 - i);
  return r;
}

/// x^d mod G as a 32-bit value (coeff of x^i in bit i).
constexpr std::uint64_t x_pow_mod(unsigned d) {
  std::uint64_t v = 1;
  for (unsigned i = 0; i < d; ++i) {
    v <<= 1;
    if ((v >> 32) & 1) v ^= kGenerator;
  }
  return v;
}

/// Fold constant for a d-bit span in the reflected layout used here.
constexpr std::uint64_t fold_k(unsigned d) {
  return reverse_bits(x_pow_mod(d), 32) << 1;
}

/// floor(x^64 / G): the 33-bit Barrett quotient.
constexpr std::uint64_t floor_x64_div_g() {
  unsigned __int128 num = static_cast<unsigned __int128>(1) << 64;
  std::uint64_t q = 0;
  for (int d = 32; d >= 0; --d) {
    if ((num >> (d + 32)) & 1) {
      q |= std::uint64_t{1} << d;
      num ^= static_cast<unsigned __int128>(kGenerator) << d;
    }
  }
  return q;
}

constexpr std::uint64_t kK544 = fold_k(544);  // 64-byte fold, low half
constexpr std::uint64_t kK480 = fold_k(480);  // 64-byte fold, high half
constexpr std::uint64_t kK160 = fold_k(160);  // 16-byte fold, low half
constexpr std::uint64_t kK96 = fold_k(96);    // 16-byte fold, high half
constexpr std::uint64_t kK64 = fold_k(64);    // reduction folds
constexpr std::uint64_t kMu = reverse_bits(floor_x64_div_g(), 33);
constexpr std::uint64_t kGp = reverse_bits(kGenerator, 33);

// Pin the formula to the independently validated (and widely
// published) CRC-32 folding constants.
static_assert(kK544 == 0x154442bd4 && kK480 == 0x1c6e41596);
static_assert(kK160 == 0x1751997d0 && kK96 == 0x0ccaa009e);
static_assert(kK64 == 0x163cd6124);
static_assert(kMu == 0x1f7011641 && kGp == 0x1db710641);

constexpr std::uint64_t kM32 = 0xFFFFFFFFu;

#ifdef CKSUM_CLMUL_X86

using V128 = __m128i;

inline V128 load128(const std::uint8_t* p) noexcept {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline std::uint64_t lane0(V128 v) noexcept {
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(v));
}

inline std::uint64_t lane1(V128 v) noexcept {
  return static_cast<std::uint64_t>(_mm_extract_epi64(v, 1));
}

/// Carry-less 64x64 product of two scalars (used by the reduction).
inline V128 clmul_scalar(std::uint64_t a, std::uint64_t b) noexcept {
  return _mm_clmulepi64_si128(_mm_cvtsi64_si128(static_cast<long long>(a)),
                              _mm_cvtsi64_si128(static_cast<long long>(b)),
                              0x00);
}

/// Fold x by d bits: klo = K(d+32) times the low qword, khi = K(d-32)
/// times the high qword (see file comment for the x^32 offset).
inline V128 fold16(V128 x, V128 k) noexcept {
  return _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00),
                       _mm_clmulepi64_si128(x, k, 0x11));
}

inline V128 xor128(V128 a, V128 b) noexcept { return _mm_xor_si128(a, b); }

inline V128 make_k(std::uint64_t lo, std::uint64_t hi) noexcept {
  return _mm_set_epi64x(static_cast<long long>(hi),
                        static_cast<long long>(lo));
}

inline V128 inject_state(V128 x, std::uint32_t c) noexcept {
  return _mm_xor_si128(x, _mm_cvtsi32_si128(static_cast<int>(c)));
}

#else  // CKSUM_CLMUL_NEON

using V128 = uint64x2_t;

inline V128 load128(const std::uint8_t* p) noexcept {
  return vreinterpretq_u64_u8(vld1q_u8(p));
}

inline std::uint64_t lane0(V128 v) noexcept { return vgetq_lane_u64(v, 0); }

inline std::uint64_t lane1(V128 v) noexcept { return vgetq_lane_u64(v, 1); }

inline V128 clmul_scalar(std::uint64_t a, std::uint64_t b) noexcept {
  return vreinterpretq_u64_p128(
      vmull_p64(static_cast<poly64_t>(a), static_cast<poly64_t>(b)));
}

struct FoldPair {
  std::uint64_t lo, hi;
};

inline V128 fold16(V128 x, FoldPair k) noexcept {
  return veorq_u64(clmul_scalar(lane0(x), k.lo),
                   clmul_scalar(lane1(x), k.hi));
}

inline V128 xor128(V128 a, V128 b) noexcept { return veorq_u64(a, b); }

inline FoldPair make_k(std::uint64_t lo, std::uint64_t hi) noexcept {
  return {lo, hi};
}

inline V128 inject_state(V128 x, std::uint32_t c) noexcept {
  return veorq_u64(x, vcombine_u64(vcreate_u64(c), vcreate_u64(0)));
}

#endif  // CKSUM_CLMUL_X86 / CKSUM_CLMUL_NEON

/// 128-bit accumulator -> 32-bit internal CRC state, on scalar lanes.
/// Steps A-D from the file comment; every intermediate width claim is
/// proven in the bit-exact model this transcribes.
std::uint32_t reduce128(V128 x) noexcept {
  const std::uint64_t x0 = lane0(x);
  const std::uint64_t x1 = lane1(x);
  // A: 128 -> 96. W = Xlo * (x^64 mod G) + Xhi; the product is 96 bits
  // (w0 low qword, w1 bits 64..95) and Xhi lands shifted up 32.
  const V128 wv = clmul_scalar(x0, kK64);
  const std::uint64_t w0 = lane0(wv) ^ (x1 << 32);
  const std::uint64_t w1 = lane1(wv) ^ (x1 >> 32);
  // B: 96 -> 64. Fold W's top 32 bits across the rest.
  const std::uint64_t z =
      lane0(clmul_scalar(w0 & kM32, kK64)) ^ (w0 >> 32) ^ (w1 << 32);
  // C: multiply by x^32 (the CRC appends 32 zero bits), reduced back
  // to 64 bits — same fold shape as B.
  const std::uint64_t v = lane0(clmul_scalar(z & kM32, kK64)) ^ (z >> 32);
  // D: Barrett. q = floor(V/G) estimated via mu, remainder in the top
  // 32 bits of the reflected layout.
  const std::uint64_t t1 = lane0(clmul_scalar(v & kM32, kMu));
  const std::uint64_t t2 = lane0(clmul_scalar(t1 & kM32, kGp));
  return static_cast<std::uint32_t>((v ^ t2) >> 32);
}

/// The folding core. Requires n >= 64 and n % 16 == 0.
std::uint32_t crc32_fold(std::uint32_t crc, const std::uint8_t* p,
                         std::size_t n) noexcept {
  const auto k512 = make_k(kK544, kK480);
  const auto k128 = make_k(kK160, kK96);
  V128 x1 = inject_state(load128(p), crc ^ 0xFFFFFFFFu);
  V128 x2 = load128(p + 16);
  V128 x3 = load128(p + 32);
  V128 x4 = load128(p + 48);
  std::size_t off = 64;
  for (; n - off >= 64; off += 64) {
    x1 = xor128(fold16(x1, k512), load128(p + off));
    x2 = xor128(fold16(x2, k512), load128(p + off + 16));
    x3 = xor128(fold16(x3, k512), load128(p + off + 32));
    x4 = xor128(fold16(x4, k512), load128(p + off + 48));
  }
  V128 x = xor128(fold16(x1, k128), x2);
  x = xor128(fold16(x, k128), x3);
  x = xor128(fold16(x, k128), x4);
  for (; n - off >= 16; off += 16)
    x = xor128(fold16(x, k128), load128(p + off));
  return reduce128(x) ^ 0xFFFFFFFFu;
}

}  // namespace

std::uint32_t clmul_crc32(std::uint32_t crc, util::ByteView data) noexcept {
  if (!cpu_has_clmul() || std::endian::native != std::endian::little)
    return chorba_crc32(crc, data);  // defensive: never fault
  const std::size_t n = data.size();
  if (n < 64) return slicing_crc32(crc, data);
  const std::size_t folded = n & ~std::size_t{15};
  crc = crc32_fold(crc, data.data(), folded);
  return slicing_crc32(crc, data.subspan(folded));
}

const char* clmul_unavailable() noexcept {
  if (std::endian::native != std::endian::little) return "big-endian host";
  return cpu_has_clmul() ? nullptr
                         : "CPU lacks carry-less multiply "
                           "(PCLMULQDQ/SSE4.1 or PMULL)";
}

#else  // !CKSUM_CLMUL_IMPL

std::uint32_t clmul_crc32(std::uint32_t crc, util::ByteView data) noexcept {
  return chorba_crc32(crc, data);  // defensive: never fault
}

const char* clmul_unavailable() noexcept {
  return "binary built without carry-less-multiply support";
}

#endif  // CKSUM_CLMUL_IMPL

}  // namespace cksum::alg::kern::impl
