// OSI TP4 (ISO 8073) data TPDU with the Fletcher checksum parameter —
// the protocol Fletcher's sum was actually standardised for ("The
// version used for the TP4 checksum and in this paper uses 8-bit
// chunks", paper §2).
//
// Simplified DT TPDU layout (class 4, normal format):
//
//   LI        1   header length (excluding LI itself)
//   code      1   0xF0 (DT)
//   DST-REF   2
//   NR/EOT    1   sequence number, top bit = end of TSDU
//   variable part: parameters {code, length, value...}
//     0xC3 2 X Y  the checksum parameter (two Fletcher octets)
//   user data follows the header
//
// The checksum covers the ENTIRE TPDU (header including LI + data)
// and is "sum-to-zero": the two octets are solved so both running
// sums vanish — ISO 8073 Annex D, identical algebra to our
// fletcher_check_bytes. Note the parameter sits in the *header*, so a
// TP4-over-AAL5 splice has exactly the fate-sharing the paper's §5.3
// identifies for TCP header checksums.
#pragma once

#include <cstdint>
#include <optional>

#include "checksum/fletcher.hpp"
#include "util/bytes.hpp"

namespace cksum::net {

inline constexpr std::uint8_t kTp4DtCode = 0xF0;
inline constexpr std::uint8_t kTp4ChecksumParam = 0xC3;

struct Tp4Dt {
  std::uint16_t dst_ref = 0;
  std::uint8_t seq = 0;       ///< TPDU-NR (7 bits)
  bool end_of_tsdu = false;   ///< EOT bit
  util::Bytes user_data;
};

/// Build a DT TPDU with the checksum parameter solved sum-to-zero.
/// `mod` selects ones-complement (the standard's arithmetic) or
/// twos-complement Fletcher.
util::Bytes build_tp4_dt(const Tp4Dt& dt,
                         alg::FletcherMod mod = alg::FletcherMod::kOnes255);

/// Parse and structurally validate a DT TPDU (without checksumming).
std::optional<Tp4Dt> parse_tp4_dt(util::ByteView tpdu);

/// Verify the Fletcher checksum parameter over the whole TPDU.
/// Returns false if the TPDU is malformed or lacks the parameter.
bool verify_tp4_checksum(util::ByteView tpdu,
                         alg::FletcherMod mod = alg::FletcherMod::kOnes255);

}  // namespace cksum::net
