// Per-packet precomputation for the splice simulator.
//
// The simulator evaluates ~10^3 splices per adjacent packet pair, so
// each check value must be computable from per-cell partial sums in
// O(cells) instead of O(bytes):
//
//  * Internet checksum — position-independent: the splice's content
//    sum is the ones-complement sum of per-cell sums (§4.1 of the
//    paper computes splice checksums the same way).
//  * Fletcher — positional: a cell's contribution to the B term is
//    b + E·a where E is the byte offset of the cell's end from the end
//    of the packet (§5.2); per-cell (a, b) pairs combine left to
//    right.
//  * CRC-32 — per-cell CRCs combine with a precomputed 48-byte GF(2)
//    shift operator.
//  * Identical-data detection — 64-bit per-cell content hashes.
//
// "Case A" below refers to the dominant splice shape: first cell is
// packet 1's header cell and last cell is packet 2's EOM cell, so the
// pseudo-header and stored check field are known per packet pair.
// Splices that are *regular* (see `fast_path_ok`) use only partials;
// everything else falls back to materialising the splice bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "atm/aal5.hpp"
#include "checksum/checksum.hpp"
#include "checksum/koopman.hpp"
#include "net/flow.hpp"
#include "net/packet.hpp"

namespace cksum::core {

/// 64-bit Koopman blocks per 48-byte cell — exact: 48 is a multiple of
/// the 8-byte block, so per-cell Koopman partials combine with no
/// partial-block seams.
inline constexpr std::uint64_t kKoopmanBlocksPerCell =
    atm::kCellPayload / alg::kKoopmanBlockBytes;

/// Partial sums over one full 48-byte PDU cell.
struct CellPartial {
  std::uint16_t inet = 0;        ///< Internet sum of the 48 bytes
  alg::FletcherPair f255{};      ///< Fletcher pair, mod 255
  alg::FletcherPair f256{};      ///< Fletcher pair, mod 256
  std::uint32_t crc = 0;         ///< finalised crc32 of the 48 bytes
  std::uint64_t hash = 0;        ///< content hash (identical-data test)
  alg::KoopmanDualPair kd{};     ///< Koopman dual pair of the 6 blocks
  std::uint64_t ks = 0;          ///< Koopman single sum of the 6 blocks
};

/// Case-A transport-checksum pieces of one packet.
struct TransportPartials {
  /// Internet sum of pseudo-header ++ IP bytes [20, 48) with the check
  /// field zeroed (the "content" contribution of the header cell).
  std::uint16_t head_sum = 0;
  /// Fletcher pairs over the same prefix with check bytes as stored
  /// (Fletcher verifies sum-to-zero over the message as transmitted).
  alg::FletcherPair head_f255{};
  alg::FletcherPair head_f256{};
  /// Stored check value: header placement reads it from this packet's
  /// TCP header; trailer placement from the end of this packet's
  /// payload (inside its EOM cell).
  std::uint16_t stored = 0;

  /// EOM-cell coverage: the first `eom_len` bytes of the EOM cell lie
  /// inside the IP packet.
  std::size_t eom_len = 0;
  /// Internet sum of those bytes (trailer placement: check bytes
  /// zeroed out of the sum).
  std::uint16_t eom_sum = 0;
  alg::FletcherPair eom_f255{};
  alg::FletcherPair eom_f256{};
};

/// A packet prepared for splice evaluation.
struct SimPacket {
  net::Packet pkt;
  atm::CpcsPdu pdu;
  std::vector<CellPartial> cells;
  TransportPartials tp;
  std::uint32_t stored_crc = 0;   ///< AAL5 trailer CRC field
  std::uint32_t crc_head44 = 0;   ///< crc32 of EOM cell bytes [0, 44)
  /// Koopman sums share the AAL5 CRC's coverage (the whole PDU minus
  /// the trailing 4 check bytes), so the EOM cell contributes its
  /// first 44 bytes — 5 full blocks plus a zero-padded 4-byte tail,
  /// exactly the padding the direct computation applies at that length.
  alg::KoopmanDualPair eom_kd{};  ///< Koopman dual of EOM bytes [0, 44)
  std::uint64_t eom_ks = 0;       ///< Koopman single of EOM bytes [0, 44)
  alg::KoopmanDualPair kd_pdu{};  ///< Koopman dual over PDU minus CRC field
  std::uint64_t ks_pdu = 0;       ///< Koopman single over PDU minus CRC field
  /// Hash of the EOM cell's in-datagram bytes only ([0, tp.eom_len)) —
  /// identical-data comparisons are over the delivered IP datagram,
  /// not the AAL5 pad/trailer.
  std::uint64_t eom_cov_hash = 0;
  std::uint16_t total_len = 0;    ///< IP total length
  /// True when every non-EOM cell of a splice terminated by this
  /// packet lies fully inside the IP packet and (in trailer mode) the
  /// trailer check bytes sit wholly within the EOM coverage — the
  /// preconditions of the partial-sums fast path.
  bool fast_path_ok = true;

  /// Header-check verdict per non-EOM cell, against THIS packet's own
  /// AAL5 length. In a fixed-segment flow almost every adjacent pair
  /// has equal lengths, so evaluate_pair can reuse this vector instead
  /// of re-running the (IP-parse + checksum) checks once per pair;
  /// unequal-length pairs recompute against the partner's length.
  std::vector<std::uint8_t> hdr_ok_self;
  bool hdr_require_ipck = false;  ///< flags hdr_ok_self was built with
  bool hdr_legacy95 = false;
};

/// Build a SimPacket (frame the datagram in AAL5, compute partials).
SimPacket make_sim_packet(const net::PacketConfig& cfg, net::Packet&& pkt);

/// Packetize a whole file into SimPackets.
std::vector<SimPacket> packetize_file(const net::FlowConfig& cfg,
                                      util::ByteView file);

}  // namespace cksum::core
