#!/bin/sh
# One-command reproduction: build, test, regenerate every table and
# figure, and capture the outputs next to EXPERIMENTS.md.
#
#   scripts/repro.sh [scale]
#
# `scale` multiplies every synthetic corpus (default 1; the paper-sized
# runs used in EXPERIMENTS.md). Expect ~1 minute at scale 1.
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-1}"
export CKSUMLAB_SCALE="$SCALE"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
      echo
    fi
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt and bench_output.txt refreshed (scale $SCALE)"
