// Deterministic input generation shared by the kernel-conformance
// harness (test_kernels.cpp) and the golden-vector table
// (test_goldens.cpp).
//
// Everything here is seeded and reproducible: a conformance failure
// report names the seed, length, and alignment, and re-running with
// the same parameters rebuilds the exact failing buffer. The opt-in
// long mode (set CKSUM_KERNEL_LONG=1) widens the sweeps — more random
// buffers, megabyte lengths, exhaustive splits on larger messages —
// for soak runs; the default mode stays fast enough for every-commit
// CI.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace cksum::testgen {

/// Fixed seed for the default conformance sweep. Long mode derives
/// additional seeds from it rather than replacing it, so the default
/// sweep is always a subset of the long one.
inline constexpr std::uint64_t kConformanceSeed = 0xC0FF'EE00'5EED'0001ULL;

/// Set (to anything) to widen the conformance sweeps.
inline constexpr const char* kLongModeEnv = "CKSUM_KERNEL_LONG";

inline bool long_mode() { return std::getenv(kLongModeEnv) != nullptr; }

inline util::Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  util::Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

/// Adversarial byte patterns every kernel must agree on: the all-zero
/// and all-ones planes (the two zeros of the ones-complement rings),
/// single-bit planes, and a carry-heavy alternating pattern.
inline std::vector<util::Bytes> edge_patterns(std::size_t n) {
  std::vector<util::Bytes> out;
  for (const std::uint8_t fill : {0x00, 0xff, 0x80, 0x01, 0x55}) {
    out.emplace_back(n, fill);
  }
  util::Bytes alternating(n);
  for (std::size_t i = 0; i < n; ++i)
    alternating[i] = (i % 2 == 0) ? 0xff : 0x00;
  out.push_back(std::move(alternating));
  return out;
}

/// One over-allocated random buffer serving views at every 8-byte
/// phase: view(align, n) starts at an address congruent to `align`
/// mod 8, so the SWAR kernel's head/tail handling is exercised at all
/// eight phases over the same underlying data.
class AlignedPool {
 public:
  AlignedPool(std::uint64_t seed, std::size_t capacity)
      : storage_(capacity + 16) {
    util::Rng rng(seed);
    rng.fill(storage_);
  }

  std::size_t capacity() const { return storage_.size() - 16; }

  util::ByteView view(std::size_t align, std::size_t n) const {
    const auto base = reinterpret_cast<std::uintptr_t>(storage_.data());
    const std::size_t shift =
        (align + 8 - static_cast<std::size_t>(base % 8)) % 8;
    return util::ByteView(storage_.data() + shift, n);
  }

 private:
  util::Bytes storage_;
};

/// Lengths for the alignment sweep: every boundary case of an 8-byte
/// inner loop plus the sizes the pipeline actually feeds the kernels
/// (48-byte cells, 296-byte paper packets, MTU, 64 KiB buffers).
inline std::vector<std::size_t> sweep_lengths() {
  std::vector<std::size_t> lens = {0,  1,  2,  3,   7,    8,    9,    15,
                                   16, 17, 47, 48,  63,   64,   65,   296,
                                   1500, 4095, 4096, 65535, 65536};
  if (long_mode()) {
    // Long mode: random lengths up to 1 MiB (the pool is grown to
    // match by the caller) on top of the fixed boundary set.
    util::Rng rng(kConformanceSeed ^ 0x10ad);
    for (int i = 0; i < 64; ++i)
      lens.push_back(static_cast<std::size_t>(rng.below((1u << 20) + 1)));
  }
  return lens;
}

/// Message length whose every resume/combine split is checked.
inline std::size_t split_message_len() { return long_mode() ? 4096 : 301; }

}  // namespace cksum::testgen
