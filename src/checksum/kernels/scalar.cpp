// The scalar reference tier: one word or byte per step, modular
// reduction applied immediately. These are the formulations whose
// correctness is obvious from the RFC / paper definitions; every other
// kernel is differentially tested against them.
#include "checksum/kernels/impl.hpp"

#include "checksum/adler32.hpp"
#include "checksum/crc32.hpp"
#include "checksum/internet.hpp"

namespace cksum::alg::kern::impl {

std::uint16_t scalar_internet_sum(util::ByteView data) noexcept {
  // One end-around-carry add per big-endian word. Chained ones_add
  // yields the same representative as a deferred 64-bit fold: both are
  // 0 only when every summed byte is zero, 0xFFFF for any other sum
  // congruent to zero mod 65535, so all tiers agree bitwise.
  std::uint16_t sum = 0;
  const std::size_t n = data.size();
  std::size_t i = 0;
  for (; i + 1 < n; i += 2)
    sum = ones_add(sum,
                   static_cast<std::uint16_t>((data[i] << 8) | data[i + 1]));
  if (i < n)
    sum = ones_add(sum, static_cast<std::uint16_t>(data[i] << 8));
  return sum;
}

FletcherPair scalar_fletcher(util::ByteView data, FletcherMod mod) noexcept {
  const std::uint32_t m = modulus(mod);
  std::uint32_t a = 0, b = 0;
  for (std::uint8_t byte : data) {
    a = (a + byte) % m;
    b = (b + a) % m;
  }
  return {a, b};
}

Fletcher32Pair scalar_fletcher32(util::ByteView data) noexcept {
  constexpr std::uint32_t m = 65535;
  std::uint32_t a = 0, b = 0;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint32_t word =
        i + 1 < data.size()
            ? static_cast<std::uint32_t>((data[i] << 8) | data[i + 1])
            : static_cast<std::uint32_t>(data[i] << 8);
    a = (a + word) % m;
    b = (b + a) % m;
    i += 2;
  }
  return {a, b};
}

std::uint32_t scalar_adler32(std::uint32_t adler,
                             util::ByteView data) noexcept {
  std::uint32_t a = adler & 0xffffu;
  std::uint32_t b = (adler >> 16) & 0xffffu;
  for (std::uint8_t byte : data) {
    a = (a + byte) % kAdlerMod;
    b = (b + a) % kAdlerMod;
  }
  return (b << 16) | a;
}

std::uint32_t scalar_crc32(std::uint32_t crc, util::ByteView data) noexcept {
  return crc32_table(crc, data);
}

KoopmanDualPair scalar_koopman_dual(util::ByteView data) noexcept {
  return koopman_dual_naive(data);
}

std::uint64_t scalar_koopman_single(util::ByteView data) noexcept {
  return koopman_single_naive(data);
}

}  // namespace cksum::alg::kern::impl
