// Internet (ones-complement) checksum: RFC 1071 behaviour, algebraic
// properties, and the combination rules the splice simulator relies on.
#include <gtest/gtest.h>

#include "checksum/internet.hpp"
#include "util/rng.hpp"

namespace cksum::alg {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

TEST(OnesAdd, BasicIdentities) {
  EXPECT_EQ(ones_add(0, 0), 0);
  EXPECT_EQ(ones_add(0x1234, 0), 0x1234);
  EXPECT_EQ(ones_add(0xffff, 0x0001), 0x0001);  // end-around carry
  EXPECT_EQ(ones_add(0xffff, 0xffff), 0xffff);
  EXPECT_EQ(ones_add(0x8000, 0x8000), 0x0001);
}

TEST(OnesAdd, CommutativeAssociativeExhaustiveSample) {
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(65536));
    const auto b = static_cast<std::uint16_t>(rng.below(65536));
    const auto c = static_cast<std::uint16_t>(rng.below(65536));
    EXPECT_EQ(ones_add(a, b), ones_add(b, a));
    EXPECT_EQ(ones_add(ones_add(a, b), c), ones_add(a, ones_add(b, c)));
  }
}

TEST(OnesAdd, IsAdditionMod65535) {
  util::Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(65536));
    const auto b = static_cast<std::uint16_t>(rng.below(65536));
    const std::uint32_t mod = (static_cast<std::uint32_t>(a % 65535u) +
                               (b % 65535u)) % 65535u;
    EXPECT_EQ(ones_add(a, b) % 65535u, mod) << a << " " << b;
  }
}

TEST(OnesNeg, AdditiveInverse) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.below(65536));
    // a + ~a = 0xFFFF, the ones-complement zero.
    EXPECT_EQ(ones_add(a, ones_neg(a)), 0xffff);
  }
}

TEST(OnesCanonical, TwoZeros) {
  EXPECT_EQ(ones_canonical(0x0000), 0x0000);
  EXPECT_EQ(ones_canonical(0xffff), 0x0000);
  EXPECT_EQ(ones_canonical(0x1234), 0x1234);
}

TEST(InternetSum, EmptyIsZero) {
  EXPECT_EQ(internet_sum(ByteView{}), 0);
}

TEST(InternetSum, Rfc1071WorkedExample) {
  // RFC 1071 section 3 example: bytes 00 01 f2 03 f4 f5 f6 f7.
  const Bytes data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // 0001 + f203 + f4f5 + f6f7 = 2DDF0 -> DDF0 + 2 = DDF2.
  EXPECT_EQ(internet_sum(ByteView(data)), 0xddf2);
  EXPECT_EQ(internet_checksum(ByteView(data)), static_cast<std::uint16_t>(~0xddf2));
}

TEST(InternetSum, OddTrailingBytePaddedHigh) {
  const Bytes data = {0xab};
  EXPECT_EQ(internet_sum(ByteView(data)), 0xab00);
}

TEST(InternetSum, ByteOrderIndependenceOfVerification) {
  // RFC 1071: the sum is the same whether computed on big- or little-
  // endian machines modulo a byte swap; we only verify our canonical
  // big-endian form against a hand-rolled reference.
  const Bytes data = {0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(internet_sum(ByteView(data)), ones_add(0x1234, 0x5678));
}

TEST(InternetSum, AllZeroDataSumsToZero) {
  const Bytes data(100, 0x00);
  EXPECT_EQ(internet_sum(ByteView(data)), 0x0000);
}

TEST(InternetSum, AllOnesDataSumsToNegZero) {
  const Bytes data(96, 0xff);
  EXPECT_EQ(internet_sum(ByteView(data)), 0xffff);
}

TEST(InternetSum, ZeroWordInsertionInvariance) {
  // Appending zero bytes never changes the sum (zero is the additive
  // identity) — the property §6.1 of the paper discusses.
  const Bytes data = random_bytes(7, 64);
  Bytes padded = data;
  padded.insert(padded.end(), 32, 0x00);
  EXPECT_EQ(internet_sum(ByteView(data)), internet_sum(ByteView(padded)));
}

TEST(InternetSum, OrderInvariance) {
  // The major structural weakness: sums are invariant under 16-bit
  // word reordering.
  Bytes a = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  Bytes b = {0x9a, 0xbc, 0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(internet_sum(ByteView(a)), internet_sum(ByteView(b)));
}

class InternetSumSplit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InternetSumSplit, IncrementalMatchesOneShotAtEverySplit) {
  const Bytes data = random_bytes(42, 129);
  const std::size_t split = GetParam();
  ASSERT_LE(split, data.size());
  InternetSum s;
  s.update(ByteView(data).first(split));
  s.update(ByteView(data).subspan(split));
  EXPECT_EQ(s.fold(), internet_sum(ByteView(data))) << "split=" << split;
}

INSTANTIATE_TEST_SUITE_P(AllSplits, InternetSumSplit,
                         ::testing::Range<std::size_t>(0, 130));

class InternetCombine : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InternetCombine, BlockCombineWithParityRule) {
  const Bytes data = random_bytes(99, 201);
  const std::size_t split = GetParam();
  const auto a = internet_sum(ByteView(data).first(split));
  const auto b = internet_sum(ByteView(data).subspan(split));
  EXPECT_EQ(internet_combine(a, b, split % 2 == 1),
            internet_sum(ByteView(data)))
      << "split=" << split;
}

INSTANTIATE_TEST_SUITE_P(AllSplits, InternetCombine,
                         ::testing::Range<std::size_t>(0, 202));

TEST(InternetSum, UpdateSumTracksParityAcrossManyBlocks) {
  const Bytes data = random_bytes(5, 313);
  util::Rng rng(6);
  InternetSum s;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t len =
        std::min<std::size_t>(data.size() - off, rng.below(17) + 1);
    const ByteView block = ByteView(data).subspan(off, len);
    s.update_sum(internet_sum(block), len % 2 == 1);
    off += len;
  }
  EXPECT_EQ(s.fold(), internet_sum(ByteView(data)));
}

TEST(InternetSum, Rfc1141IncrementalWordUpdate) {
  Bytes data = random_bytes(11, 64);
  const std::uint16_t old_sum = internet_sum(ByteView(data));
  const std::size_t at = 10;  // even offset
  const std::uint16_t old_word = util::load_be16(data.data() + at);
  const std::uint16_t new_word = 0xbeef;
  util::store_be16(data.data() + at, new_word);
  const std::uint16_t expect = internet_sum(ByteView(data));
  EXPECT_EQ(ones_canonical(internet_update_word(old_sum, old_word, new_word)),
            ones_canonical(expect));
}


TEST(InternetSum, Rfc1624CornerCase) {
  // RFC 1624's motivating bug: updating a checksum incrementally must
  // not confuse the two zero representations. Build a message whose
  // checksum FIELD is 0xFFFF, update one word, and confirm the
  // incremental update stays congruent with a full recompute.
  Bytes data(64, 0);
  data[0] = 0x12;  // content sum 0x1200 -> checksum field would be 0xEDFF
  std::uint16_t sum = internet_sum(ByteView(data));
  // Drive the sum to 0x0000-class by appending its complement.
  util::store_be16(&data[62], ones_neg(sum));
  sum = internet_sum(ByteView(data));
  EXPECT_EQ(ones_canonical(sum), 0);  // the tricky congruence class

  // Replace word at offset 10 and compare incremental vs recompute
  // across many replacement values, including 0x0000 and 0xFFFF.
  for (const std::uint16_t nw : {0x0000, 0xFFFF, 0x0001, 0xEDCB, 0x8000}) {
    Bytes changed = data;
    const std::uint16_t ow = util::load_be16(changed.data() + 10);
    util::store_be16(changed.data() + 10, nw);
    const std::uint16_t incremental =
        internet_update_word(sum, ow, static_cast<std::uint16_t>(nw));
    const std::uint16_t full = internet_sum(ByteView(changed));
    EXPECT_EQ(ones_canonical(incremental), ones_canonical(full))
        << "new word " << nw;
  }
}

TEST(InternetSum, SwapRuleMatchesOddOffsetPlacement) {
  // A block placed at an odd offset contributes its byte-swapped sum.
  const Bytes block = random_bytes(13, 40);
  Bytes shifted;
  shifted.push_back(0x00);
  shifted.insert(shifted.end(), block.begin(), block.end());
  shifted.push_back(0x00);
  EXPECT_EQ(internet_sum(ByteView(shifted)),
            ones_swap(internet_sum(ByteView(block))));
}


TEST(InternetSum, OddTailAtEveryAlignmentPhase) {
  // Odd-length pieces starting at every byte offset: the trailing byte
  // is always padded on the right regardless of source alignment, and
  // the result matches a per-definition ones_add chain. This is the
  // exact behaviour the SWAR kernel's head/tail composition must
  // reproduce (see test_kernels.cpp for the differential check).
  const Bytes data = random_bytes(17, 64);
  for (std::size_t off = 0; off < 8; ++off) {
    for (std::size_t len = 0; off + len <= data.size(); ++len) {
      const ByteView piece = ByteView(data).subspan(off, len);
      std::uint16_t want = 0;
      for (std::size_t i = 0; i < len; i += 2) {
        const std::uint16_t word = static_cast<std::uint16_t>(
            (piece[i] << 8) | (i + 1 < len ? piece[i + 1] : 0));
        want = ones_add(want, word);
      }
      EXPECT_EQ(internet_sum(piece), want) << "off=" << off << " len=" << len;
    }
  }
}

TEST(InternetSum, OddOffsetOddLengthBlockChain) {
  // Blocks of odd length flip the accumulation parity: each following
  // block contributes byte-swapped. Compose blocks of every small odd
  // and even length and check against the one-shot sum.
  const Bytes data = random_bytes(23, 97);
  for (const std::size_t first : {1u, 3u, 5u, 48u}) {
    std::uint16_t sum = internet_sum(ByteView(data).first(first));
    bool odd = first % 2 == 1;
    std::size_t off = first;
    std::size_t next_len = 1;
    while (off < data.size()) {
      const std::size_t len = std::min(data.size() - off, next_len);
      sum = internet_combine(sum, internet_sum(ByteView(data).subspan(off, len)),
                             odd);
      odd ^= (len % 2 == 1);
      off += len;
      next_len = next_len % 7 + 1;  // cycle through lengths 1..7
    }
    EXPECT_EQ(sum, internet_sum(ByteView(data))) << "first=" << first;
  }
}

class InternetWide : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InternetWide, MatchesScalarAtEveryLength) {
  const std::size_t len = GetParam();
  const Bytes data = random_bytes(len * 31 + 5, len);
  EXPECT_EQ(internet_sum_wide(ByteView(data)), internet_sum(ByteView(data)))
      << "len=" << len;
}

INSTANTIATE_TEST_SUITE_P(Lengths, InternetWide,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 47, 48,
                                           296, 1500, 65536, 65543));

TEST(InternetWide, EdgePatternsMatchScalar) {
  for (const std::uint8_t fill : {0x00, 0xff, 0x80, 0x01}) {
    for (const std::size_t len : {8u, 24u, 296u}) {
      const Bytes data(len, fill);
      EXPECT_EQ(internet_sum_wide(ByteView(data)),
                internet_sum(ByteView(data)))
          << "fill=" << int(fill) << " len=" << len;
    }
  }
  // The class-zero representative: nonzero content summing to 0xFFFF.
  Bytes wrap = {0xff, 0xfe, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(internet_sum(ByteView(wrap)), 0xffff);
  EXPECT_EQ(internet_sum_wide(ByteView(wrap)), 0xffff);
}

TEST(InternetSum, LargeBufferNoOverflow) {
  const Bytes data(1 << 20, 0xff);
  EXPECT_EQ(internet_sum(ByteView(data)), 0xffff);
}

}  // namespace
}  // namespace cksum::alg
