// ATM cell layer: 53-byte cells (5-byte header + 48-byte payload),
// including HEC (Header Error Control, CRC-8 over the first four
// header bytes with the ITU coset 0x55) and the PTI bit AAL5 uses to
// mark the end of a CPCS-PDU.
//
// The splice enumerator reasons about cells abstractly; this module
// provides the concrete wire format so the reassembler (and its
// tests) can drive the exact end-of-message logic the error model
// assumes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "atm/aal5.hpp"
#include "util/bytes.hpp"

namespace cksum::atm {

inline constexpr std::size_t kCellHeaderLen = 5;
inline constexpr std::size_t kCellLen = kCellHeaderLen + kCellPayload;  // 53

/// HEC: CRC-8 with generator x^8 + x^2 + x + 1 (0x07) over the first
/// 4 header bytes, XORed with the ITU-T I.432 coset 0x55.
std::uint8_t compute_hec(const std::uint8_t header4[4]) noexcept;

struct CellHeader {
  std::uint8_t gfc = 0;    ///< generic flow control (UNI) — 4 bits
  std::uint8_t vpi = 0;    ///< virtual path identifier — 8 bits (UNI)
  std::uint16_t vci = 0;   ///< virtual channel identifier — 16 bits
  std::uint8_t pti = 0;    ///< payload type indicator — 3 bits
  bool clp = false;        ///< cell loss priority

  /// AAL5 marks the last cell of a PDU with PTI bit 0 (AUU = 1).
  bool end_of_message() const noexcept { return (pti & 0x1) != 0; }
  void set_end_of_message(bool eom) noexcept {
    pti = static_cast<std::uint8_t>(eom ? (pti | 0x1) : (pti & ~0x1));
  }

  /// Serialise the 5 header bytes (computes the HEC).
  void write(std::uint8_t* out) const noexcept;

  /// Parse 5 header bytes; returns nullopt when the HEC mismatches
  /// (a real receiver discards such cells).
  static std::optional<CellHeader> parse(util::ByteView bytes) noexcept;
};

/// A full 53-byte cell.
struct Cell {
  CellHeader header;
  std::array<std::uint8_t, kCellPayload> payload{};

  util::Bytes to_bytes() const;
  static std::optional<Cell> from_bytes(util::ByteView bytes) noexcept;
};

/// Segment a CPCS-PDU into 53-byte cells on the given VPI/VCI, the
/// last cell marked end-of-message.
std::vector<Cell> segment_pdu(const CpcsPdu& pdu, std::uint8_t vpi,
                              std::uint16_t vci);

}  // namespace cksum::atm
