#include "util/bytes.hpp"

#include <cctype>
#include <stdexcept>

namespace cksum::util {

std::string to_hex(ByteView data, std::size_t group) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2 + (group ? data.size() / group : 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (group != 0 && i != 0 && i % group == 0) out.push_back(' ');
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  Bytes out;
  int pending = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int v = hex_value(c);
    if (v < 0) throw std::invalid_argument("from_hex: bad character");
    if (pending < 0) {
      pending = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((pending << 4) | v));
      pending = -1;
    }
  }
  if (pending >= 0) throw std::invalid_argument("from_hex: odd digit count");
  return out;
}

void append(Bytes& out, std::string_view text) {
  out.insert(out.end(), text.begin(), text.end());
}

}  // namespace cksum::util
