#include "core/dircorpus.hpp"

#include <algorithm>
#include <fstream>

namespace cksum::core {

namespace fs = std::filesystem;

std::vector<fs::path> list_corpus_files(const fs::path& root,
                                        const DirLimits& limits) {
  std::vector<fs::path> files;
  std::error_code ec;
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  if (ec) throw fs::filesystem_error("list_corpus_files", root, ec);
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    files.push_back(entry.path());
  }
  // Deterministic order regardless of directory iteration order.
  std::sort(files.begin(), files.end());

  std::vector<fs::path> limited;
  std::size_t total = 0;
  for (const auto& p : files) {
    if (limited.size() >= limits.max_files) break;
    std::error_code size_ec;
    const auto size = fs::file_size(p, size_ec);
    if (size_ec || size == 0) continue;
    const std::size_t take =
        std::min<std::size_t>(size, limits.max_file_bytes);
    if (total + take > limits.max_total_bytes) break;
    total += take;
    limited.push_back(p);
  }
  return limited;
}

util::Bytes read_file_prefix(const fs::path& path, std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  util::Bytes out;
  if (!in) return out;
  out.resize(max_bytes);
  in.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(max_bytes));
  out.resize(static_cast<std::size_t>(in.gcount()));
  return out;
}

SpliceStats run_directory(const SpliceRunConfig& cfg, const fs::path& root,
                          const DirLimits& limits) {
  SpliceStats st;
  for (const auto& path : list_corpus_files(root, limits)) {
    const util::Bytes file = read_file_prefix(path, limits.max_file_bytes);
    if (file.empty()) continue;
    st.merge(run_file(cfg, util::ByteView(file)));
  }
  return st;
}

CellStatsCollector collect_directory_stats(const fs::path& root,
                                           CellStatsConfig cfg,
                                           const DirLimits& limits) {
  CellStatsCollector collector(std::move(cfg));
  for (const auto& path : list_corpus_files(root, limits)) {
    const util::Bytes file = read_file_prefix(path, limits.max_file_bytes);
    if (file.empty()) continue;
    collector.add_file(util::ByteView(file));
  }
  return collector;
}

}  // namespace cksum::core
