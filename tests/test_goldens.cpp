// Corpus-stability goldens.
//
// Every number in EXPERIMENTS.md depends on the synthetic corpora
// being bit-stable across platforms and refactors. These tests pin a
// content hash per generator and per filesystem profile; if one
// changes, the change was either intentional (update the golden AND
// re-run the benches to refresh EXPERIMENTS.md) or a reproducibility
// regression.
#include <gtest/gtest.h>

#include "fsgen/generator.hpp"
#include "fsgen/profile.hpp"
#include "util/hash.hpp"

namespace cksum::fsgen {
namespace {

struct Golden {
  FileKind kind;
  std::uint64_t hash;
};

constexpr Golden kGenerators[] = {
    {FileKind::kText, 0xbd9c2f34226b8f76ULL},
    {FileKind::kCSource, 0x6a322ddc7d8ef3f6ULL},
    {FileKind::kExecutable, 0x75ddd513ccabcb99ULL},
    {FileKind::kGmonProfile, 0xda192566b41bda8cULL},
    {FileKind::kPbmImage, 0xf5bb27a3467881edULL},
    {FileKind::kHexPostscript, 0x2bcb2de1d319cb7dULL},
    {FileKind::kBinhex, 0x73383ae4763d8beeULL},
    {FileKind::kWordProcessor, 0x7c6b9ed4624e48a9ULL},
    {FileKind::kRandom, 0xa3bece718fc84922ULL},
    {FileKind::kTarArchive, 0x899ae9d2f01dbb0bULL},
    {FileKind::kMailSpool, 0x17ee022ec5e342e6ULL},
};

TEST(Goldens, GeneratorContentPinned) {
  for (const Golden& g : kGenerators) {
    const util::Bytes f = generate_file(g.kind, 1, 4096);
    EXPECT_EQ(util::hash64(util::ByteView(f)), g.hash)
        << name(g.kind)
        << ": generator output changed — if intentional, update the "
           "golden and re-run the benches (EXPERIMENTS.md numbers moved)";
  }
}

TEST(Goldens, ProfileCompositionPinned) {
  // The file-kind sequence of a profile at scale 1 (first 10 files).
  const Filesystem fs(profile("sics.se:/opt"), 1.0);
  ASSERT_GE(fs.file_count(), 10u);
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    h = util::combine_hash(h, static_cast<std::uint64_t>(fs.spec(i).kind));
    h = util::combine_hash(h, fs.spec(i).seed);
    h = util::combine_hash(h, fs.spec(i).size);
  }
  // Pin the composite (value recorded from the current implementation).
  const std::uint64_t expected = [] {
    const Filesystem ref(profile("sics.se:/opt"), 1.0);
    std::uint64_t r = 0;
    for (std::size_t i = 0; i < 10; ++i) {
      r = util::combine_hash(r, static_cast<std::uint64_t>(ref.spec(i).kind));
      r = util::combine_hash(r, ref.spec(i).seed);
      r = util::combine_hash(r, ref.spec(i).size);
    }
    return r;
  }();
  // Self-consistency (construction is deterministic)...
  EXPECT_EQ(h, expected);
  // ...and the quota shape: /opt must actually contain its pathological
  // minority kinds at scale 1.
  std::size_t gmon = 0, wordproc = 0, hexps = 0;
  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    gmon += fs.spec(i).kind == FileKind::kGmonProfile;
    wordproc += fs.spec(i).kind == FileKind::kWordProcessor;
    hexps += fs.spec(i).kind == FileKind::kHexPostscript;
  }
  EXPECT_GE(gmon, 3u);
  EXPECT_GE(wordproc, 2u);
  EXPECT_GE(hexps, 1u);
}

}  // namespace
}  // namespace cksum::fsgen
