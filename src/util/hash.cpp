#include "util/hash.hpp"

namespace cksum::util {

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash64(std::span<const std::uint8_t> data) noexcept {
  return mix64(fnv1a64(data) ^ (data.size() * 0x9e3779b97f4a7c15ULL));
}

std::uint64_t hash64(std::string_view text) noexcept {
  return hash64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace cksum::util
