// CRC-32 and the generic CRC engine: known vectors, engine agreement,
// streaming, and the GF(2) combination algebra the splice simulator
// depends on.
#include <gtest/gtest.h>

#include "checksum/crc32.hpp"
#include "checksum/generic_crc.hpp"
#include "util/rng.hpp"

namespace cksum::alg {
namespace {

using util::ByteView;
using util::Bytes;

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes b(n);
  util::Rng rng(seed);
  rng.fill(b);
  return b;
}

ByteView sv(const char* s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s), strlen(s));
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(sv("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(sv("")), 0x00000000u);
  EXPECT_EQ(crc32(sv("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(sv("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(sv("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, EnginesAgree) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Bytes data = random_bytes(seed, 1 + seed * 97);
    const auto reference = crc32_bitwise(0, ByteView(data));
    EXPECT_EQ(crc32_table(0, ByteView(data)), reference);
    EXPECT_EQ(crc32_slice8(0, ByteView(data)), reference);
  }
}

TEST(Crc32, EnginesAgreeWithNonzeroSeedCrc) {
  const Bytes a = random_bytes(1, 31);
  const Bytes b = random_bytes(2, 57);
  const auto seed_crc = crc32(ByteView(a));
  EXPECT_EQ(crc32_bitwise(seed_crc, ByteView(b)),
            crc32_table(seed_crc, ByteView(b)));
  EXPECT_EQ(crc32_bitwise(seed_crc, ByteView(b)),
            crc32_slice8(seed_crc, ByteView(b)));
}

TEST(Crc32, StreamingMatchesOneShot) {
  const Bytes data = random_bytes(7, 500);
  std::uint32_t crc = 0;
  crc = crc32(crc, ByteView(data).first(13));
  crc = crc32(crc, ByteView(data).subspan(13, 200));
  crc = crc32(crc, ByteView(data).subspan(213));
  EXPECT_EQ(crc, crc32(ByteView(data)));
}

class Crc32Combine : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Crc32Combine, MatchesConcatenation) {
  const std::size_t len_b = GetParam();
  const Bytes a = random_bytes(10, 100);
  const Bytes b = random_bytes(11, len_b);
  Bytes ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(crc32_combine(crc32(ByteView(a)), crc32(ByteView(b)), len_b),
            crc32(ByteView(ab)));
}

INSTANTIATE_TEST_SUITE_P(Lengths, Crc32Combine,
                         ::testing::Values(0, 1, 2, 7, 44, 48, 255, 4096));

TEST(Crc32Combine, PrecomputedCombinerMatchesGeneral) {
  const CrcCombiner comb(48);
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next());
    const auto b = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(comb.combine(a, b), crc32_combine(a, b, 48));
  }
}

TEST(Crc32Combine, FoldingCellsMatchesWholeBuffer) {
  // Exactly the splice simulator's usage: fold 48-byte cell CRCs, then
  // a 44-byte partial.
  const Bytes data = random_bytes(5, 48 * 6 + 44);
  const CrcCombiner c48(48), c44(44);
  std::uint32_t crc = 0;
  for (int i = 0; i < 6; ++i) {
    const auto cell_crc = crc32(ByteView(data).subspan(48 * i, 48));
    crc = (i == 0) ? cell_crc : c48.combine(crc, cell_crc);
  }
  crc = c44.combine(crc, crc32(ByteView(data).subspan(48 * 6, 44)));
  EXPECT_EQ(crc, crc32(ByteView(data)));
}

TEST(Crc32, DetectsAllSingleBitErrorsInACell) {
  Bytes data = random_bytes(9, 48);
  const auto good = crc32(ByteView(data));
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      data[i] ^= static_cast<std::uint8_t>(1 << b);
      EXPECT_NE(crc32(ByteView(data)), good);
      data[i] ^= static_cast<std::uint8_t>(1 << b);
    }
  }
}

TEST(Crc32, DetectsAllBurstErrorsUpTo32Bits) {
  Bytes data = random_bytes(12, 64);
  const auto good = crc32(ByteView(data));
  util::Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes corrupted = data;
    const std::size_t bit0 = rng.below(64 * 8 - 32);
    const std::uint32_t pattern =
        static_cast<std::uint32_t>(rng.next()) | 1u;  // burst starts dirty
    for (int b = 0; b < 32; ++b) {
      if (pattern & (1u << b)) {
        const std::size_t bit = bit0 + static_cast<std::size_t>(b);
        corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
    }
    EXPECT_NE(crc32(ByteView(corrupted)), good);
  }
}

// ---- GenericCrc ----

TEST(GenericCrc, Width32MatchesCrc32) {
  const GenericCrc g(32, 0x04C11DB7);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Bytes data = random_bytes(seed, 10 + seed * 77);
    EXPECT_EQ(g.compute(ByteView(data)), crc32(ByteView(data)));
  }
}

TEST(GenericCrc, Crc16X25KnownVector) {
  // CRC-16/X-25: poly 0x1021 reflected, init/xorout all ones.
  const GenericCrc g(16, 0x1021);
  EXPECT_EQ(g.compute(sv("123456789")), 0x906Eu);
}

TEST(GenericCrc, Crc8DarcStyle) {
  // Width < 8 exercises the narrow-register path. Compare table vs
  // bitwise engines (no canonical published vector for this variant).
  const GenericCrc g(5, 0x15);
  const Bytes data = random_bytes(6, 100);
  EXPECT_EQ(g.update(0, ByteView(data)), g.update_bitwise(0, ByteView(data)));
}

class GenericCrcWidths : public ::testing::TestWithParam<int> {};

TEST_P(GenericCrcWidths, TableMatchesBitwise) {
  const int width = GetParam();
  const GenericCrc g(width, standard_poly(width));
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const Bytes data = random_bytes(seed + 50, 64 + seed * 13);
    EXPECT_EQ(g.update(0, ByteView(data)),
              g.update_bitwise(0, ByteView(data)))
        << "width=" << width;
  }
}

TEST_P(GenericCrcWidths, StreamingMatchesOneShot) {
  const int width = GetParam();
  const GenericCrc g(width, standard_poly(width));
  const Bytes data = random_bytes(60, 300);
  std::uint32_t crc = 0;
  crc = g.update(crc, ByteView(data).first(99));
  crc = g.update(crc, ByteView(data).subspan(99));
  EXPECT_EQ(crc, g.compute(ByteView(data)));
}

TEST_P(GenericCrcWidths, CombineMatchesConcatenation) {
  const int width = GetParam();
  const GenericCrc g(width, standard_poly(width));
  const Bytes a = random_bytes(70, 48);
  const Bytes b = random_bytes(71, 48);
  Bytes ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(g.combine(g.compute(ByteView(a)), g.compute(ByteView(b)), 48),
            g.compute(ByteView(ab)))
      << "width=" << width;
}

TEST_P(GenericCrcWidths, ValueStaysInRange) {
  const int width = GetParam();
  const GenericCrc g(width, standard_poly(width));
  const Bytes data = random_bytes(80, 256);
  EXPECT_EQ(g.compute(ByteView(data)) & ~g.mask(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Widths, GenericCrcWidths,
                         ::testing::Values(3, 5, 7, 8, 10, 12, 16, 21, 24, 30,
                                           32));

TEST(GenericCrc, RejectsBadWidth) {
  EXPECT_THROW(GenericCrc(0, 0x3), std::invalid_argument);
  EXPECT_THROW(GenericCrc(33, 0x3), std::invalid_argument);
}

TEST(GenericCrc, CombinerMatchesGeneralCombine) {
  // The nibble-table Combiner and the per-call combine must agree —
  // for CRC-32 and a narrow width where rows past the register are 0.
  util::Rng rng(11);
  for (const std::size_t width : {32u, 16u, 8u}) {
    const GenericCrc g(width, standard_poly(width));
    for (const std::size_t len : {1u, 44u, 48u, 300u}) {
      const GenericCrc::Combiner comb = g.combiner(len);
      for (int i = 0; i < 50; ++i) {
        const auto a = static_cast<std::uint32_t>(rng.next()) & g.mask();
        const auto b = static_cast<std::uint32_t>(rng.next()) & g.mask();
        EXPECT_EQ(comb.combine(a, b), g.combine(a, b, len))
            << "width=" << width << " len=" << len;
        EXPECT_EQ(comb.advance(a ^ b), comb.advance(a) ^ comb.advance(b));
      }
    }
  }
}

TEST(GenericCrc, CombinerCacheReturnsStableReferences) {
  const GenericCrc g(32, standard_poly(32));
  CombinerCache cache(g);
  const GenericCrc::Combiner& c48 = cache.get(48);
  // Populating more entries must not invalidate earlier references
  // (the splice evaluator holds them across a whole corpus run).
  for (std::size_t len = 1; len < 64; ++len) cache.get(len);
  EXPECT_EQ(&c48, &cache.get(48));
  EXPECT_EQ(c48.combine(0x1234u, 0x5678u), g.combine(0x1234u, 0x5678u, 48));
}

}  // namespace
}  // namespace cksum::alg
