// §7's warning, measured: a TCP transfer over SLIP (no link CRC) with
// random line errors. Every bit flip reaches the receiver; flips that
// hit an END delimiter (or forge one) merge or split frames — serial-
// line splices — and the TCP checksum is the only thing standing
// between them and the application.
//
// The table reports, per bit-error rate, how the delivered frames fare
// under header checks + TCP checksum, and how many corrupted
// datagrams get through. Compare bench_lossmodel, where the AAL5
// CRC-32 backstops the same checksum.
#include <cstdio>
#include <iostream>
#include <set>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "net/slip.hpp"
#include "net/validate.hpp"
#include "util/hash.hpp"

using namespace cksum;

namespace {

struct SlipResult {
  std::uint64_t bits = 0;
  std::uint64_t flips = 0;
  std::uint64_t frames = 0;
  std::uint64_t intact = 0;
  std::uint64_t rej_header = 0;
  std::uint64_t rej_tcp = 0;
  std::uint64_t undetected = 0;
};

SlipResult run(double bit_error_rate, double scale) {
  const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), 0.5 * scale);
  const net::FlowConfig flow = core::paper_flow_config();
  util::Rng rng(0x511b);

  SlipResult out;
  for (std::size_t f = 0; f < fs.file_count(); ++f) {
    const util::Bytes file = fs.file(f);
    const auto pkts = net::segment_file(flow, util::ByteView(file));

    std::set<std::uint64_t> good;
    util::Bytes line;
    for (const auto& p : pkts) {
      good.insert(util::hash64(p.ip_bytes()));
      net::slip_frame_append(line, p.ip_bytes());
    }
    out.bits += line.size() * 8;

    // Random bit errors on the serial line. Expected flips per line is
    // small, so draw flip positions directly.
    const double expected = bit_error_rate * static_cast<double>(line.size()) * 8;
    const std::size_t flips =
        static_cast<std::size_t>(expected) +
        (rng.chance(expected - static_cast<double>(
                                   static_cast<std::size_t>(expected)))
             ? 1
             : 0);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t bit = rng.below(line.size() * 8);
      line[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    }
    out.flips += flips;

    for (const util::Bytes& frame : net::slip_deframe(util::ByteView(line))) {
      ++out.frames;
      const auto ip = net::Ipv4Header::parse(util::ByteView(frame));
      const bool hdr_ok =
          ip.has_value() && frame.size() == ip->total_length &&
          net::check_headers(util::ByteView(frame), frame.size(), true) ==
              net::HeaderCheck::kOk;
      if (!hdr_ok) {
        ++out.rej_header;
        continue;
      }
      if (!net::verify_transport_checksum(flow.packet,
                                          util::ByteView(frame))) {
        ++out.rej_tcp;
        continue;
      }
      if (good.count(util::hash64(util::ByteView(frame))) > 0) {
        ++out.intact;
      } else {
        ++out.undetected;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  const double scale = core::scale_from_env();
  std::printf(
      "== TCP over SLIP with line errors (paper §7: \"probably not "
      "wise\") ==\n(corpus sics.se:/opt; no link CRC — the TCP checksum "
      "is the only defence)\n\n");
  core::TextTable t({"bit error rate", "flips", "frames", "intact",
                     "rej header", "rej TCP", "UNDETECTED"});
  for (const double ber : {1e-6, 1e-5, 1e-4}) {
    const SlipResult r = run(ber, scale);
    char label[16];
    std::snprintf(label, sizeof label, "%.0e", ber);
    t.add_row({label, core::fmt_count(r.flips), core::fmt_count(r.frames),
               core::fmt_count(r.intact), core::fmt_count(r.rej_header),
               core::fmt_count(r.rej_tcp), core::fmt_count(r.undetected)});
  }
  t.print(std::cout);
  std::printf(
      "\nReading the zero: isolated bit flips are 1-bit bursts, which the "
      "TCP checksum catches unconditionally (§2's guarantee). The danger "
      "on real serial lines is bursts and delimiter damage; the burst "
      "table below uses 24-bit line bursts — beyond the 15-bit "
      "guarantee — where each corrupted frame survives with probability "
      "~2^-16.\n\n");

  core::TextTable bt({"burst rate", "bursts", "frames", "rej TCP",
                      "UNDETECTED", "expected"});
  for (const double rate : {1e-4, 1e-3}) {
    // Reuse the machinery with bursts: flip 24-bit spans.
    const fsgen::Filesystem fs(fsgen::profile("sics.se:/opt"), 0.5 * scale);
    const net::FlowConfig flow = core::paper_flow_config();
    util::Rng rng(0xb225);
    std::uint64_t bursts = 0, frames = 0, rej_tcp = 0, undetected = 0;
    for (std::size_t f = 0; f < fs.file_count(); ++f) {
      const util::Bytes file = fs.file(f);
      const auto pkts = net::segment_file(flow, util::ByteView(file));
      std::set<std::uint64_t> good;
      util::Bytes line;
      for (const auto& p : pkts) {
        good.insert(util::hash64(p.ip_bytes()));
        net::slip_frame_append(line, p.ip_bytes());
      }
      const double expected_bursts =
          rate * static_cast<double>(line.size());
      const auto n_bursts = static_cast<std::size_t>(expected_bursts + 0.5);
      for (std::size_t i = 0; i < n_bursts; ++i) {
        ++bursts;
        const std::size_t bit0 = rng.below(line.size() * 8 - 24);
        const std::uint32_t pattern =
            (static_cast<std::uint32_t>(rng.next()) & 0xfffffe) | 0x800001;
        for (int b = 0; b < 24; ++b) {
          if (pattern & (1u << b)) {
            const std::size_t bit = bit0 + static_cast<std::size_t>(b);
            line[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
          }
        }
      }
      for (const util::Bytes& frame :
           net::slip_deframe(util::ByteView(line))) {
        ++frames;
        const auto ip = net::Ipv4Header::parse(util::ByteView(frame));
        const bool hdr_ok =
            ip.has_value() && frame.size() == ip->total_length &&
            net::check_headers(util::ByteView(frame), frame.size(), true) ==
                net::HeaderCheck::kOk;
        if (!hdr_ok) continue;
        if (!net::verify_transport_checksum(flow.packet,
                                            util::ByteView(frame))) {
          ++rej_tcp;
          continue;
        }
        if (good.count(util::hash64(util::ByteView(frame))) == 0)
          ++undetected;
      }
    }
    char label[16], expect[24];
    std::snprintf(label, sizeof label, "%.0e", rate);
    std::snprintf(expect, sizeof expect, "%.2f",
                  static_cast<double>(rej_tcp) / 65536.0);
    bt.add_row({label, core::fmt_count(bursts), core::fmt_count(frames),
                core::fmt_count(rej_tcp), core::fmt_count(undetected),
                expect});
  }
  bt.print(std::cout);
  std::printf(
      "\n(expected = corrupted-frame count / 2^16 — run with a larger "
      "CKSUMLAB_SCALE to accumulate enough exposures to see it; an "
      "AAL5-style link CRC would need ~2^32.)\n");
  return 0;
}
