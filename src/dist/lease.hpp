// Shard lease bookkeeping for the coordinator — pure logic, no I/O,
// so the whole fault-tolerance state machine is unit-testable.
//
// A shard is a contiguous file range [begin, end) of the corpus. Its
// lifecycle:
//
//   kPending   --acquire-->  kLeased  --deliver-->  kDone
//                  ^             |
//                  +--expire()---+   (deadline passed, worker lost,
//                  +--revoke_worker+  or lease explicitly revoked)
//
// Every (re)grant increments the shard's epoch; a result is accepted
// only if it carries the current epoch AND the shard is still leased.
// That makes accounting at-most-once: when a slow worker's lease is
// reassigned and both workers eventually deliver, exactly one result
// (the current epoch's) is merged and the other is counted stale.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace cksum::dist {

struct Shard {
  std::size_t begin = 0;  ///< first file index (inclusive)
  std::size_t end = 0;    ///< one past the last file index

  enum class State : std::uint8_t { kPending, kLeased, kDone };
  State state = State::kPending;
  std::uint64_t epoch = 0;      ///< bumped on every (re)grant
  std::uint64_t holder = 0;     ///< worker id while kLeased
  std::uint64_t deadline = 0;   ///< lease expiry, coordinator clock (ms)
  std::uint32_t grants = 0;     ///< times this shard has been granted
};

/// What deliver() decided about an incoming result.
enum class DeliverOutcome : std::uint8_t {
  kAccepted,   ///< current epoch, shard now kDone — merge it
  kStale,      ///< superseded epoch or not the holder — discard
  kDuplicate,  ///< shard already kDone — discard
  kUnknown,    ///< no such shard — discard
};

class LeaseTable {
 public:
  /// Partition [0, nfiles) into ceil(nfiles / shard_files) shards.
  LeaseTable(std::size_t nfiles, std::size_t shard_files);

  std::size_t shard_count() const { return shards_.size(); }
  const Shard& shard(std::size_t i) const { return shards_[i]; }

  /// Lease the lowest pending shard to `worker` until `deadline`.
  /// Returns the shard index, or nullopt when nothing is pending.
  std::optional<std::size_t> acquire(std::uint64_t worker,
                                     std::uint64_t deadline);

  /// Push the holder's deadline forward (heartbeat). Ignored unless
  /// `worker` currently holds `shard` at `epoch`.
  void extend(std::size_t shard, std::uint64_t epoch, std::uint64_t worker,
              std::uint64_t deadline);

  /// Classify a delivered result; kAccepted also marks the shard done.
  DeliverOutcome deliver(std::size_t shard, std::uint64_t epoch,
                         std::uint64_t worker);

  /// Return every leased shard whose deadline is < now to kPending.
  /// Returns how many leases expired.
  std::size_t expire(std::uint64_t now);

  /// Return all of `worker`'s leased shards to kPending (connection
  /// lost). Returns how many leases were revoked.
  std::size_t revoke_worker(std::uint64_t worker);

  bool complete() const { return done_ == shards_.size(); }
  std::size_t done_count() const { return done_; }
  /// Shards granted more than once — the reassignment count.
  std::size_t reassigned_count() const;

 private:
  std::vector<Shard> shards_;
  std::size_t done_ = 0;
};

}  // namespace cksum::dist
