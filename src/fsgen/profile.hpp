// Filesystem profiles: named mixes of file kinds standing in for the
// filesystems of Tables 1-3 (nine at Network Systems Corp., eight at
// the Swedish Institute of Computer Science, two at Stanford).
//
// Each profile's mix follows what the paper says (or implies) about
// the system: /src1../src4 are source trees, /opt is executable-heavy
// ("% executables" is annotated on its row and it has the worst TCP
// miss rate), smeg:/u1 is home directories and contains the
// pathological black-and-white PBM plot directory, and so on. The NSC
// systems are generic office/server mixes with varying ratios.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "fsgen/generator.hpp"

namespace cksum::fsgen {

struct KindWeight {
  FileKind kind;
  double weight;  ///< relative file-count weight
};

struct FsProfile {
  std::string_view site;   ///< e.g. "sics.se"
  std::string_view mount;  ///< e.g. "/opt"
  std::uint64_t seed;      ///< base seed; all content derives from it
  std::size_t base_files;  ///< file count at scale 1.0
  std::size_t min_size;    ///< log-uniform file size range
  std::size_t max_size;
  std::span<const KindWeight> mix;

  std::string full_name() const;  ///< "sics.se:/opt"
};

/// All nineteen profiles of Tables 1-3.
std::span<const FsProfile> all_profiles();

/// Profiles grouped as the paper's tables group them.
std::span<const FsProfile> nsc_profiles();       // Table 1
std::span<const FsProfile> sics_profiles();      // Table 2
std::span<const FsProfile> stanford_profiles();  // Table 3

/// Lookup by full name ("nsc05", "sics.se:/opt", ...). Throws
/// std::out_of_range if unknown.
const FsProfile& profile(std::string_view full_name);

/// A deterministic synthetic filesystem: the file list implied by a
/// profile at a given scale.
class Filesystem {
 public:
  struct FileSpec {
    FileKind kind;
    std::uint64_t seed;
    std::size_t size;
  };

  explicit Filesystem(const FsProfile& prof, double scale = 1.0);

  /// A filesystem with an explicit file list (see from_manifest).
  Filesystem(const FsProfile& prof, std::vector<FileSpec> specs)
      : prof_(&prof), specs_(std::move(specs)) {}

  /// Serialise the file list as a text manifest, one file per line:
  /// "<kind-name> <seed-hex> <size>". Lets experiments pin an exact
  /// corpus independently of profile-generation changes.
  std::string to_manifest() const;

  /// Rebuild a filesystem from a manifest (throws std::invalid_argument
  /// on malformed lines or unknown kind names). The profile only
  /// provides the display name.
  static Filesystem from_manifest(const FsProfile& prof,
                                  std::string_view manifest);

  const FsProfile& profile() const noexcept { return *prof_; }
  std::size_t file_count() const noexcept { return specs_.size(); }
  const FileSpec& spec(std::size_t i) const { return specs_.at(i); }

  /// Generate the i-th file's bytes.
  util::Bytes file(std::size_t i) const;

  /// Total bytes across all files (sum of requested sizes; actual
  /// generated sizes may differ slightly at structural boundaries).
  std::size_t approx_total_bytes() const noexcept;

 private:
  const FsProfile* prof_;
  std::vector<FileSpec> specs_;
};

}  // namespace cksum::fsgen
