#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cksum::stats {

std::vector<double> Histogram::pdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  const double inv = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    out[i] = static_cast<double>(counts_[i]) * inv;
  return out;
}

std::vector<double> Histogram::sorted_pdf() const {
  std::vector<double> out = pdf();
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

std::vector<double> Histogram::sorted_cdf() const {
  std::vector<double> out = sorted_pdf();
  double run = 0.0;
  for (double& p : out) {
    run += p;
    p = run;
  }
  return out;
}

double Histogram::pmax() const {
  if (total_ == 0) return 0.0;
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<double>(*it) / static_cast<double>(total_);
}

double Histogram::pmin() const {
  if (total_ == 0) return 0.0;
  const auto it = std::min_element(counts_.begin(), counts_.end());
  return static_cast<double>(*it) / static_cast<double>(total_);
}

double Histogram::top_fraction_mass(double fraction) const {
  if (total_ == 0 || fraction <= 0.0) return 0.0;
  const auto sorted = sorted_pdf();
  const auto take = std::min<std::size_t>(
      sorted.size(),
      static_cast<std::size_t>(
          std::ceil(fraction * static_cast<double>(sorted.size()))));
  double mass = 0.0;
  for (std::size_t i = 0; i < take; ++i) mass += sorted[i];
  return mass;
}

double Histogram::match_probability() const {
  if (total_ == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(total_);
  double sum = 0.0;
  for (std::uint64_t c : counts_) {
    const double p = static_cast<double>(c) * inv;
    sum += p * p;
  }
  return sum;
}

std::uint32_t Histogram::mode() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<std::uint32_t>(it - counts_.begin());
}

std::size_t Histogram::support_size() const {
  return static_cast<std::size_t>(
      std::count_if(counts_.begin(), counts_.end(),
                    [](std::uint64_t c) { return c > 0; }));
}

double Histogram::entropy_bits() const {
  if (total_ == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(total_);
  double h = 0.0;
  for (std::uint64_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) * inv;
    h -= p * std::log2(p);
  }
  return h;
}

double Histogram::chi_square_uniform() const {
  if (total_ == 0 || counts_.empty()) return 0.0;
  const double expected =
      static_cast<double>(total_) / static_cast<double>(counts_.size());
  double stat = 0.0;
  for (std::uint64_t c : counts_) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size())
    throw std::invalid_argument("Histogram::merge: bin count mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

}  // namespace cksum::stats
