#include "net/packet.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "checksum/kernels/kernel.hpp"

namespace cksum::net {

namespace {

/// Offset of the check field within the coverage string
/// (pseudo-header ++ TCP segment).
std::size_t check_offset_in_coverage(ChecksumPlacement placement,
                                     std::size_t coverage_len) {
  if (placement == ChecksumPlacement::kHeader)
    return PseudoHeader::kLen + 16;  // TCP checksum field
  return coverage_len - kTrailerCheckLen;
}

std::uint16_t compute_internet_field(const PacketConfig& cfg,
                                     util::ByteView coverage) {
  const std::uint16_t sum = alg::kern::internet_sum(coverage);
  return cfg.invert_checksum ? alg::ones_neg(sum) : sum;
}

alg::FletcherMod fletcher_mod_of(alg::Algorithm a) {
  return a == alg::Algorithm::kFletcher255 ? alg::FletcherMod::kOnes255
                                           : alg::FletcherMod::kTwos256;
}

}  // namespace

Packet build_packet(const PacketConfig& cfg, std::uint32_t seq,
                    std::uint16_t ip_id, util::ByteView payload) {
  if (cfg.transport == alg::Algorithm::kCrc32)
    throw std::invalid_argument("build_packet: CRC-32 is the AAL5 check, "
                                "not a transport checksum option");

  const bool trailer = cfg.placement == ChecksumPlacement::kTrailer;
  const std::size_t total =
      kIpv4HeaderLen + kTcpHeaderLen + payload.size() +
      (trailer ? kTrailerCheckLen : 0);
  if (total > 0xffff)
    throw std::invalid_argument("build_packet: payload too large");

  Packet pkt;
  pkt.payload_len = payload.size();
  pkt.bytes.resize(total, 0);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.src = cfg.src_addr;
  ip.dst = cfg.dst_addr;
  if (cfg.fill_ip_header && !cfg.legacy95_headers) {
    ip.id = ip_id;
    ip.ttl = 64;
    ip.frag_off = 0x4000;  // DF
    ip.header_checksum = ip.compute_checksum();
  } else {
    // §6.2 ablation: the 8 bytes not covered by the pseudo-header stay
    // zero, as in the SIGCOMM '95 simulator.
    ip.tos = 0;
    ip.id = 0;
    ip.frag_off = 0;
    ip.ttl = 0;
    ip.header_checksum = 0;
    if (cfg.legacy95_headers) {
      ip.version = 0;
      ip.ihl = 0;
    }
  }
  ip.write(pkt.bytes.data());

  TcpHeader tcp;
  tcp.src_port = cfg.src_port;
  tcp.dst_port = cfg.dst_port;
  tcp.seq = seq;
  tcp.ack = 1;
  tcp.flags = tcpflag::kAck | tcpflag::kPsh;
  tcp.window = cfg.window;
  tcp.checksum = 0;
  tcp.write(pkt.bytes.data() + kIpv4HeaderLen);

  std::copy(payload.begin(), payload.end(),
            pkt.bytes.begin() + kIpv4HeaderLen + kTcpHeaderLen);
  // Trailer check bytes (if any) are already zero.

  const util::Bytes coverage =
      checksum_coverage(pkt.ip_bytes(), cfg.legacy95_headers);
  const std::size_t field_at =
      check_offset_in_coverage(cfg.placement, coverage.size());
  // Position of the field within the datagram: coverage offset 12
  // corresponds to IP offset 20.
  const std::size_t field_ip_offset = field_at - PseudoHeader::kLen + kIpv4HeaderLen;

  if (cfg.transport == alg::Algorithm::kInternet) {
    const std::uint16_t field = compute_internet_field(cfg, coverage);
    util::store_be16(pkt.bytes.data() + field_ip_offset, field);
  } else {
    const alg::FletcherMod mod = fletcher_mod_of(cfg.transport);
    const alg::FletcherPair rest =
        alg::kern::fletcher_block(util::ByteView(coverage), mod);
    const std::size_t u = coverage.size() - field_at;
    const auto [x, y] = alg::fletcher_check_bytes(rest, u, mod);
    pkt.bytes[field_ip_offset] = x;
    pkt.bytes[field_ip_offset + 1] = y;
  }
  return pkt;
}

util::Bytes checksum_coverage(util::ByteView ip_datagram, bool legacy95) {
  assert(ip_datagram.size() >= kIpv4HeaderLen + kTcpHeaderLen);
  const auto ip = Ipv4Header::parse(ip_datagram);
  assert(ip.has_value());
  const std::size_t seg_len =
      std::min<std::size_t>(ip_datagram.size(), ip->total_length) -
      kIpv4HeaderLen;

  PseudoHeader ph;
  ph.src = ip->src;
  ph.dst = ip->dst;
  ph.protocol = ip->protocol;
  ph.tcp_length = legacy95 ? ip->total_length
                           : static_cast<std::uint16_t>(seg_len);

  util::Bytes out(PseudoHeader::kLen + seg_len);
  ph.write(out.data());
  std::copy_n(ip_datagram.begin() + kIpv4HeaderLen, seg_len,
              out.begin() + PseudoHeader::kLen);
  return out;
}

bool verify_transport_checksum(const PacketConfig& cfg,
                               util::ByteView ip_datagram) {
  if (ip_datagram.size() < kIpv4HeaderLen + kTcpHeaderLen +
                               (cfg.placement == ChecksumPlacement::kTrailer
                                    ? kTrailerCheckLen
                                    : 0))
    return false;
  util::Bytes coverage = checksum_coverage(ip_datagram, cfg.legacy95_headers);
  const std::size_t field_at =
      check_offset_in_coverage(cfg.placement, coverage.size());

  if (cfg.transport == alg::Algorithm::kInternet) {
    const std::uint16_t stored = util::load_be16(coverage.data() + field_at);
    coverage[field_at] = 0;
    coverage[field_at + 1] = 0;
    const std::uint16_t expect =
        compute_internet_field(cfg, util::ByteView(coverage));
    return alg::ones_canonical(stored) == alg::ones_canonical(expect);
  }

  // Fletcher: a valid message (check bytes in place) sums to zero in
  // both terms.
  return alg::fletcher_is_zero(alg::kern::fletcher_block(
      util::ByteView(coverage), fletcher_mod_of(cfg.transport)));
}

}  // namespace cksum::net
