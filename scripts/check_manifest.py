#!/usr/bin/env python3
"""Validate a telemetry run manifest against the cksum-metrics/1 schema.

Usage: check_manifest.py MANIFEST [--require-family FAM]...
                         [--require-kernel [NAME]]
                         [--diff-deterministic OTHER]

The schema is documented in src/obs/snapshot.hpp and
docs/OBSERVABILITY.md. CI runs this against the manifest produced by
`cksumlab splice --quick --metrics-out` so a malformed export fails the
perf-smoke job rather than silently breaking downstream tooling.

--require-family fails validation unless at least one metric of that
family (the segment before the first '.') is present, e.g.
`--require-family splice --require-family sched`.

--require-kernel fails unless the manifest records which checksum
kernel served the run (the top-level "kernel" member written by
cksumlab/faultlab); with a NAME, the recorded kernel must match it.

--diff-deterministic OTHER fails if any deterministic-tagged metric
(or the report, if both manifests carry one) differs from OTHER's.
Scheduling- and timing-tagged metrics are exempt: CI uses this to
assert that runs under different checksum kernels (or thread counts)
produce bitwise-identical results.
"""

import argparse
import json
import sys

SCHEMA = "cksum-metrics/1"
KINDS = {"counter", "gauge", "histogram"}
TAGS = {"deterministic", "scheduling", "timing"}
HISTOGRAM_BUCKETS = 32


def check_metric(name, m, problems):
    if "." not in name:
        problems.append(f"metric {name!r}: name is not <family>.<metric>")
    if not isinstance(m, dict):
        problems.append(f"metric {name!r}: not an object")
        return
    kind = m.get("kind")
    if kind not in KINDS:
        problems.append(f"metric {name!r}: bad kind {kind!r}")
        return
    if m.get("tag") not in TAGS:
        problems.append(f"metric {name!r}: bad tag {m.get('tag')!r}")
    if kind == "counter":
        v = m.get("value")
        if not isinstance(v, int) or v < 0:
            problems.append(f"metric {name!r}: counter value {v!r}")
    elif kind == "gauge":
        if not isinstance(m.get("value"), int):
            problems.append(f"metric {name!r}: gauge value {m.get('value')!r}")
    else:  # histogram
        for key in ("count", "sum"):
            v = m.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(f"metric {name!r}: histogram {key} {v!r}")
        buckets = m.get("buckets")
        if (not isinstance(buckets, list)
                or len(buckets) != HISTOGRAM_BUCKETS
                or any(not isinstance(b, int) or b < 0 for b in buckets)):
            problems.append(f"metric {name!r}: bad buckets")
        elif isinstance(m.get("count"), int) and sum(buckets) != m["count"]:
            problems.append(
                f"metric {name!r}: bucket total {sum(buckets)} != "
                f"count {m['count']}")


def check_manifest(doc, require_families):
    problems = []
    if not isinstance(doc, dict):
        return ["manifest is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in ("tool", "corpus", "git"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"{key!r} missing or not a non-empty string")
    for key in ("seed", "threads"):
        if not isinstance(doc.get(key), int) or doc.get(key) < 0:
            problems.append(f"{key!r} missing or not a non-negative integer")
    if isinstance(doc.get("threads"), int) and doc["threads"] < 1:
        problems.append("'threads' must be >= 1")
    ws = doc.get("wall_seconds")
    if not isinstance(ws, (int, float)) or ws < 0:
        problems.append(f"'wall_seconds' missing or negative: {ws!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("'metrics' missing or empty")
        metrics = {}
    for name, m in metrics.items():
        check_metric(name, m, problems)
    if "report" in doc and not isinstance(doc["report"], dict):
        problems.append("'report' present but not an object")
    if "kernel" in doc and (not isinstance(doc["kernel"], str)
                            or not doc["kernel"]):
        problems.append("'kernel' present but not a non-empty string")
    families = {name.split(".", 1)[0] for name in metrics}
    for fam in require_families:
        if fam not in families:
            problems.append(f"required metric family {fam!r} absent")
    return problems


def check_kernel(doc, want):
    """Problems with the manifest's kernel record, [] when clean.

    `want` is None (no check), "" (any kernel acceptable, but one must
    be recorded), or a kernel name that must match exactly.
    """
    if want is None:
        return []
    kernel = doc.get("kernel") if isinstance(doc, dict) else None
    if not isinstance(kernel, str) or not kernel:
        return ["no 'kernel' member — run does not record which "
                "checksum kernel served it"]
    if want and kernel != want:
        return [f"kernel is {kernel!r}, want {want!r}"]
    return []


def deterministic_view(doc):
    """The portions of a manifest that must be invariant across kernel
    selections and thread counts: deterministic-tagged metrics plus the
    embedded report (when present)."""
    metrics = doc.get("metrics") if isinstance(doc, dict) else {}
    det = {name: m for name, m in (metrics or {}).items()
           if isinstance(m, dict) and m.get("tag") == "deterministic"}
    return {"metrics": det, "report": doc.get("report")}


def diff_deterministic(doc, other_doc, other_path):
    """Differences between the two manifests' deterministic views."""
    mine = deterministic_view(doc)
    theirs = deterministic_view(other_doc)
    problems = []
    for name in sorted(set(mine["metrics"]) | set(theirs["metrics"])):
        a = mine["metrics"].get(name)
        b = theirs["metrics"].get(name)
        if a != b:
            problems.append(
                f"deterministic metric {name!r} differs from "
                f"{other_path}: {a!r} vs {b!r}")
    if (mine["report"] is not None and theirs["report"] is not None
            and mine["report"] != theirs["report"]):
        problems.append(f"embedded report differs from {other_path}")
    return problems


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("manifest")
    ap.add_argument("--require-family", action="append", default=[],
                    metavar="FAM")
    ap.add_argument("--require-kernel", nargs="?", const="", default=None,
                    metavar="NAME",
                    help="require the manifest to record its checksum "
                         "kernel (optionally a specific one)")
    ap.add_argument("--diff-deterministic", metavar="OTHER",
                    help="fail if deterministic-tagged metrics or the "
                         "report differ from manifest OTHER")
    args = ap.parse_args()

    try:
        with open(args.manifest) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_manifest: {args.manifest}: {e}", file=sys.stderr)
        return 1

    problems = check_manifest(doc, args.require_family)
    problems += check_kernel(doc, args.require_kernel)
    if args.diff_deterministic:
        try:
            with open(args.diff_deterministic) as f:
                other = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"check_manifest: {args.diff_deterministic}: {e}",
                  file=sys.stderr)
            return 1
        problems += diff_deterministic(doc, other, args.diff_deterministic)
    if problems:
        for p in problems:
            print(f"check_manifest: {args.manifest}: {p}", file=sys.stderr)
        return 1
    nmetrics = len(doc["metrics"])
    kernel = (f", kernel {doc['kernel']}"
              if isinstance(doc.get("kernel"), str) else "")
    print(f"{args.manifest}: valid {SCHEMA} manifest "
          f"({doc['tool']}, {nmetrics} metrics{kernel})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
