// Figure 3: PDF of the TCP checksum, Fletcher-255 and Fletcher-256
// over 48-byte cells in smeg.stanford.edu:/u1 — most common 256
// values, sorted by decreasing frequency. All three have similarly
// skewed single-cell distributions (the figure's point: Fletcher's
// advantage does NOT come from a flatter cell distribution).
#include <cstdio>
#include <string_view>

#include "core/experiments.hpp"

using namespace cksum;

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string_view(argv[1]) == "--csv";
  const double scale = core::scale_from_env();
  core::CellStatsConfig cfg;
  cfg.ks = {1};
  const auto stats = core::collect_cell_stats(
      fsgen::profile("smeg.stanford.edu:/u1"), scale, cfg);

  const auto tcp = stats.tcp_cells().sorted_pdf();
  const auto f255 = stats.f255_cells().sorted_pdf();
  const auto f256 = stats.f256_cells().sorted_pdf();

  if (csv) {
    std::printf("rank,tcp,f255,f256\n");
    for (std::size_t r = 0; r < 4096; ++r)
      std::printf("%zu,%.6e,%.6e,%.6e\n", r + 1, tcp[r], f255[r], f256[r]);
    return 0;
  }

  std::printf(
      "== Figure 3: PDF over 48-byte cells, most common 256 values "
      "(smeg:/u1) ==\n\n");
  std::printf("%6s  %12s  %12s  %12s\n", "rank", "IP/TCP", "F255", "F256");
  for (std::size_t rank = 1; rank <= 256; rank *= 2) {
    std::printf("%6zu  %12.4e  %12.4e  %12.4e\n", rank, tcp[rank - 1],
                f255[rank - 1], f256[rank - 1]);
  }
  std::printf(
      "\nmatch probabilities over single cells (paper: ~0.011%% TCP, "
      "~0.016%% F255, ~0.013%% F256 — all similar):\n"
      "  TCP   %.4f%%\n  F255  %.4f%%\n  F256  %.4f%%\n",
      100 * stats.tcp_cells().match_probability(),
      100 * stats.f255_cells().match_probability(),
      100 * stats.f256_cells().match_probability());
  return 0;
}
