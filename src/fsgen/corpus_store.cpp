#include "fsgen/corpus_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>

#include "checksum/kernels/kernel.hpp"
#include "compress/lzw.hpp"
#include "obs/registry.hpp"

namespace cksum::fsgen {

namespace {

/// Native-endian on-disk header. Zero-initialised before filling so
/// padding bytes are deterministic (the header CRC covers them).
struct CorpusHeader {
  char magic[8];
  std::uint32_t endian_tag;
  std::uint32_t version;
  std::uint64_t total_size;  ///< whole-file byte count
  std::uint32_t header_crc;  ///< crc32 of this struct, field zeroed
  std::uint32_t seal_crc;    ///< crc32 of bytes [sizeof(header), total_size)
  std::uint32_t section_count;
  std::uint32_t flags;
  std::uint64_t files;
  std::uint64_t packets;
  std::uint64_t cells;
  // Build params.
  std::uint64_t scale_bits;  ///< bit pattern of the double
  std::uint32_t segment_size;
  std::uint32_t initial_seq;
  std::uint16_t initial_ip_id;
  std::uint8_t transport;
  std::uint8_t placement;
  std::uint8_t invert_checksum;
  std::uint8_t fill_ip_header;
  std::uint8_t legacy95_headers;
  std::uint8_t compress;
  std::uint32_t src_addr;
  std::uint32_t dst_addr;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint16_t window;
  std::uint16_t profile_len;
  char profile[64];
};
static_assert(sizeof(CorpusHeader) == 168);

constexpr std::uint32_t kSectionCount = 11;

constexpr std::uint64_t align_up(std::uint64_t v) {
  return (v + kCorpusAlign - 1) & ~static_cast<std::uint64_t>(kCorpusAlign - 1);
}

std::uint32_t crc_of(const void* p, std::size_t n) {
  return alg::kern::crc32(
      util::ByteView(static_cast<const std::uint8_t*>(p), n));
}

void fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
}

/// The SoA columns of a store under construction. Every build source
/// (synthetic filesystem, capture-ingested SimPackets) flattens
/// through the same add_file, so the sealed bytes are identical for
/// identical packets regardless of where they came from.
struct FlatCorpus {
  std::vector<CorpusFileRec> files;
  std::vector<CorpusPacketRec> packets;
  std::vector<std::uint16_t> cell_inet;
  std::vector<std::uint32_t> cell_f255, cell_f256, cell_crc, cell_kd;
  std::vector<std::uint64_t> cell_hash, cell_ks;
  std::vector<std::uint8_t> hdr_ok, pdu_bytes;

  void add_file(const std::vector<core::SimPacket>& pkts) {
    files.push_back({packets.size(), pkts.size()});
    for (const core::SimPacket& sp : pkts) {
      CorpusPacketRec r;
      r.cell_begin = cell_inet.size();
      r.hdr_begin = hdr_ok.size();
      r.pdu_offset = pdu_bytes.size();
      r.cell_count = static_cast<std::uint32_t>(sp.cells.size());
      r.total_len = sp.total_len;
      r.stored_crc = sp.stored_crc;
      r.crc_head44 = sp.crc_head44;
      r.eom_cov_hash = sp.eom_cov_hash;
      r.eom_kd_a = sp.eom_kd.a;
      r.eom_kd_b = sp.eom_kd.b;
      r.eom_ks = sp.eom_ks;
      r.kd_pdu_a = sp.kd_pdu.a;
      r.kd_pdu_b = sp.kd_pdu.b;
      r.ks_pdu = sp.ks_pdu;
      r.head_sum = sp.tp.head_sum;
      r.stored = sp.tp.stored;
      r.eom_len = static_cast<std::uint32_t>(sp.tp.eom_len);
      r.eom_sum = sp.tp.eom_sum;
      r.head_f255_a = sp.tp.head_f255.a;
      r.head_f255_b = sp.tp.head_f255.b;
      r.head_f256_a = sp.tp.head_f256.a;
      r.head_f256_b = sp.tp.head_f256.b;
      r.eom_f255_a = sp.tp.eom_f255.a;
      r.eom_f255_b = sp.tp.eom_f255.b;
      r.eom_f256_a = sp.tp.eom_f256.a;
      r.eom_f256_b = sp.tp.eom_f256.b;
      r.fast_path_ok = sp.fast_path_ok ? 1 : 0;
      r.hdr_require_ipck = sp.hdr_require_ipck ? 1 : 0;
      r.hdr_legacy95 = sp.hdr_legacy95 ? 1 : 0;
      packets.push_back(r);

      for (const core::CellPartial& c : sp.cells) {
        cell_inet.push_back(c.inet);
        cell_f255.push_back(c.f255.a);
        cell_f255.push_back(c.f255.b);
        cell_f256.push_back(c.f256.a);
        cell_f256.push_back(c.f256.b);
        cell_crc.push_back(c.crc);
        cell_hash.push_back(c.hash);
        cell_kd.push_back(c.kd.a);
        cell_kd.push_back(c.kd.b);
        cell_ks.push_back(c.ks);
      }
      hdr_ok.insert(hdr_ok.end(), sp.hdr_ok_self.begin(),
                    sp.hdr_ok_self.end());
      const util::ByteView pb = sp.pdu.bytes();
      pdu_bytes.insert(pdu_bytes.end(), pb.begin(), pb.end());
    }
  }
};

bool write_corpus(const CorpusBuildParams& params, const FlatCorpus& flat,
                  const std::string& path, std::string* error);

}  // namespace

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

bool build_corpus(const CorpusBuildParams& params, const Filesystem& fs,
                  const std::string& path, std::string* error) {
  // Gather: run the packetiser once over every file and flatten the
  // results into the SoA columns.
  FlatCorpus flat;
  flat.files.reserve(fs.file_count());
  for (std::size_t i = 0; i < fs.file_count(); ++i) {
    util::Bytes data = fs.file(i);
    if (params.compress) data = compress::lzw_compress(util::ByteView(data));
    flat.add_file(core::packetize_file(params.flow, util::ByteView(data)));
  }
  return write_corpus(params, flat, path, error);
}

bool build_corpus(const CorpusBuildParams& params,
                  const std::vector<std::vector<core::SimPacket>>& files,
                  const std::string& path, std::string* error) {
  FlatCorpus flat;
  flat.files.reserve(files.size());
  for (const auto& pkts : files) flat.add_file(pkts);
  return write_corpus(params, flat, path, error);
}

namespace {

bool write_corpus(const CorpusBuildParams& params, const FlatCorpus& flat,
                  const std::string& path, std::string* error) {
  if (params.profile.size() > sizeof(CorpusHeader{}.profile)) {
    fail(error, "profile name too long (max 64 bytes)");
    return false;
  }
  const auto& files = flat.files;
  const auto& packets = flat.packets;
  const auto& cell_inet = flat.cell_inet;
  const auto& cell_f255 = flat.cell_f255;
  const auto& cell_f256 = flat.cell_f256;
  const auto& cell_crc = flat.cell_crc;
  const auto& cell_kd = flat.cell_kd;
  const auto& cell_hash = flat.cell_hash;
  const auto& cell_ks = flat.cell_ks;
  const auto& hdr_ok = flat.hdr_ok;
  const auto& pdu_bytes = flat.pdu_bytes;

  // Layout: header, section table, then each section 64-byte aligned.
  struct Sect {
    CorpusSection kind;
    const void* data;
    std::uint64_t size;
  };
  const Sect sects[kSectionCount] = {
      {CorpusSection::kFiles, files.data(), files.size() * sizeof(files[0])},
      {CorpusSection::kPackets, packets.data(),
       packets.size() * sizeof(packets[0])},
      {CorpusSection::kCellInet, cell_inet.data(), cell_inet.size() * 2},
      {CorpusSection::kCellF255, cell_f255.data(), cell_f255.size() * 4},
      {CorpusSection::kCellF256, cell_f256.data(), cell_f256.size() * 4},
      {CorpusSection::kCellCrc, cell_crc.data(), cell_crc.size() * 4},
      {CorpusSection::kCellHash, cell_hash.data(), cell_hash.size() * 8},
      {CorpusSection::kCellKd, cell_kd.data(), cell_kd.size() * 4},
      {CorpusSection::kCellKs, cell_ks.data(), cell_ks.size() * 8},
      {CorpusSection::kHdrOk, hdr_ok.data(), hdr_ok.size()},
      {CorpusSection::kPduBytes, pdu_bytes.data(), pdu_bytes.size()},
  };

  const std::uint64_t table_off = sizeof(CorpusHeader);
  const std::uint64_t table_end =
      table_off + kSectionCount * sizeof(CorpusSectionRec);
  CorpusSectionRec table[kSectionCount];
  std::uint64_t off = align_up(table_end);
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    table[s] = {static_cast<std::uint32_t>(sects[s].kind), 0, off,
                sects[s].size};
    off = align_up(off + sects[s].size);
  }
  const std::uint64_t total = off;

  // Assemble the body (everything after the header) so the seal CRC
  // is one pass, then fill the header last.
  util::Bytes body(total - sizeof(CorpusHeader), 0);
  std::memcpy(body.data(), table, sizeof(table));
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    if (sects[s].size != 0) {
      std::memcpy(body.data() + (table[s].offset - sizeof(CorpusHeader)),
                  sects[s].data, sects[s].size);
    }
  }

  CorpusHeader hdr;
  std::memset(&hdr, 0, sizeof(hdr));
  std::memcpy(hdr.magic, kCorpusMagic, sizeof(kCorpusMagic));
  hdr.endian_tag = kCorpusEndianTag;
  hdr.version = kCorpusVersion;
  hdr.total_size = total;
  hdr.section_count = kSectionCount;
  hdr.files = files.size();
  hdr.packets = packets.size();
  hdr.cells = cell_inet.size();
  hdr.scale_bits = std::bit_cast<std::uint64_t>(params.scale);
  hdr.segment_size = static_cast<std::uint32_t>(params.flow.segment_size);
  hdr.initial_seq = params.flow.initial_seq;
  hdr.initial_ip_id = params.flow.initial_ip_id;
  hdr.transport = static_cast<std::uint8_t>(params.flow.packet.transport);
  hdr.placement = static_cast<std::uint8_t>(params.flow.packet.placement);
  hdr.invert_checksum = params.flow.packet.invert_checksum ? 1 : 0;
  hdr.fill_ip_header = params.flow.packet.fill_ip_header ? 1 : 0;
  hdr.legacy95_headers = params.flow.packet.legacy95_headers ? 1 : 0;
  hdr.compress = params.compress ? 1 : 0;
  hdr.src_addr = params.flow.packet.src_addr;
  hdr.dst_addr = params.flow.packet.dst_addr;
  hdr.src_port = params.flow.packet.src_port;
  hdr.dst_port = params.flow.packet.dst_port;
  hdr.window = params.flow.packet.window;
  hdr.profile_len = static_cast<std::uint16_t>(params.profile.size());
  std::memcpy(hdr.profile, params.profile.data(), params.profile.size());
  hdr.seal_crc = crc_of(body.data(), body.size());
  hdr.header_crc = 0;
  hdr.header_crc = crc_of(&hdr, sizeof(hdr));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    fail(error, "cannot open output file " + path);
    return false;
  }
  const bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1 &&
                  (body.empty() ||
                   std::fwrite(body.data(), body.size(), 1, f) == 1) &&
                  std::fclose(f) == 0;
  if (!ok) {
    fail(error, "write failed for " + path);
    std::remove(path.c_str());
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

CorpusReader::~CorpusReader() {
  if (base_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(base_), map_len_);
}

std::unique_ptr<CorpusReader> CorpusReader::open(const std::string& path,
                                                 std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail(error, "cannot open " + path);
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(error, "cannot stat " + path);
    return nullptr;
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  if (len < sizeof(CorpusHeader)) {
    ::close(fd);
    fail(error, "truncated file: shorter than the corpus header");
    return nullptr;
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    fail(error, "mmap failed for " + path);
    return nullptr;
  }

  auto r = std::unique_ptr<CorpusReader>(new CorpusReader());
  r->base_ = static_cast<const std::uint8_t*>(map);
  r->map_len_ = len;
  const std::uint8_t* base = r->base_;

  CorpusHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (std::memcmp(hdr.magic, kCorpusMagic, sizeof(kCorpusMagic)) != 0) {
    fail(error, "bad magic: not a corpus store");
    return nullptr;
  }
  if (hdr.endian_tag != kCorpusEndianTag) {
    std::uint32_t swapped = kCorpusEndianTag;
    swapped = __builtin_bswap32(swapped);
    fail(error, hdr.endian_tag == swapped
                    ? "endianness mismatch: built on a foreign-endian host"
                    : "bad endian tag");
    return nullptr;
  }
  if (hdr.version != kCorpusVersion) {
    fail(error, "unsupported corpus version " + std::to_string(hdr.version) +
                    " (expected " + std::to_string(kCorpusVersion) + ")");
    return nullptr;
  }
  {
    CorpusHeader check = hdr;
    check.header_crc = 0;
    if (crc_of(&check, sizeof(check)) != hdr.header_crc) {
      fail(error, "header checksum mismatch");
      return nullptr;
    }
  }
  if (hdr.total_size != len) {
    fail(error, "truncated file: header records " +
                    std::to_string(hdr.total_size) + " bytes, file has " +
                    std::to_string(len));
    return nullptr;
  }
  if (hdr.section_count != kSectionCount) {
    fail(error, "unexpected section count " +
                    std::to_string(hdr.section_count));
    return nullptr;
  }
  const std::uint64_t table_end =
      sizeof(CorpusHeader) + kSectionCount * sizeof(CorpusSectionRec);
  if (table_end > len) {
    fail(error, "truncated file: section table out of bounds");
    return nullptr;
  }
  if (crc_of(base + sizeof(CorpusHeader), len - sizeof(CorpusHeader)) !=
      hdr.seal_crc) {
    fail(error, "body seal checksum mismatch");
    return nullptr;
  }
  if (hdr.profile_len > sizeof(hdr.profile)) {
    fail(error, "corrupt profile name length");
    return nullptr;
  }

  // Section table: every expected kind exactly once, aligned, in
  // bounds, with a size consistent with the header's counts.
  CorpusSectionRec table[kSectionCount];
  std::memcpy(table, base + sizeof(CorpusHeader), sizeof(table));
  const std::uint64_t expect_size[kSectionCount] = {
      hdr.files * sizeof(CorpusFileRec),
      hdr.packets * sizeof(CorpusPacketRec),
      hdr.cells * 2,
      hdr.cells * 8,
      hdr.cells * 8,
      hdr.cells * 4,
      hdr.cells * 8,
      hdr.cells * 8,
      hdr.cells * 8,
      0,  // kHdrOk: ragged, validated against packet records below
      0,  // kPduBytes: ditto
  };
  const std::uint8_t* sect[kSectionCount] = {};
  std::uint64_t sect_size[kSectionCount] = {};
  for (std::uint32_t s = 0; s < kSectionCount; ++s) {
    const CorpusSectionRec& t = table[s];
    if (t.kind != s + 1) {
      fail(error, "unexpected section kind " + std::to_string(t.kind) +
                      " at slot " + std::to_string(s));
      return nullptr;
    }
    if (t.offset % kCorpusAlign != 0) {
      fail(error, "misaligned section (kind " + std::to_string(t.kind) +
                      ", offset " + std::to_string(t.offset) + ")");
      return nullptr;
    }
    if (t.offset < table_end || t.offset > len || t.size > len - t.offset) {
      fail(error, "section out of bounds (kind " + std::to_string(t.kind) +
                      ")");
      return nullptr;
    }
    if (expect_size[s] != 0 && t.size != expect_size[s]) {
      fail(error, "section size mismatch (kind " + std::to_string(t.kind) +
                      ": " + std::to_string(t.size) + " bytes, expected " +
                      std::to_string(expect_size[s]) + ")");
      return nullptr;
    }
    sect[s] = base + t.offset;
    sect_size[s] = t.size;
  }

  r->files_ = reinterpret_cast<const CorpusFileRec*>(sect[0]);
  r->packets_ = reinterpret_cast<const CorpusPacketRec*>(sect[1]);
  r->cell_inet_ = reinterpret_cast<const std::uint16_t*>(sect[2]);
  r->cell_f255_ = reinterpret_cast<const std::uint32_t*>(sect[3]);
  r->cell_f256_ = reinterpret_cast<const std::uint32_t*>(sect[4]);
  r->cell_crc_ = reinterpret_cast<const std::uint32_t*>(sect[5]);
  r->cell_hash_ = reinterpret_cast<const std::uint64_t*>(sect[6]);
  r->cell_kd_ = reinterpret_cast<const std::uint32_t*>(sect[7]);
  r->cell_ks_ = reinterpret_cast<const std::uint64_t*>(sect[8]);
  r->hdr_ok_ = sect[9];
  r->hdr_ok_size_ = sect_size[9];
  r->pdu_bytes_ = sect[10];

  // Packet and file indexes: every range in bounds, so file_packets
  // can run unchecked.
  const std::uint64_t hdr_ok_size = sect_size[9];
  for (std::uint64_t p = 0; p < hdr.packets; ++p) {
    const CorpusPacketRec& pr = r->packets_[p];
    if (pr.cell_count == 0 ||
        pr.cell_begin > hdr.cells ||
        pr.cell_count > hdr.cells - pr.cell_begin ||
        pr.hdr_begin > hdr_ok_size ||
        static_cast<std::uint64_t>(pr.cell_count) - 1 >
            hdr_ok_size - pr.hdr_begin ||
        pr.pdu_offset > sect_size[10] ||
        static_cast<std::uint64_t>(pr.cell_count) * atm::kCellPayload >
            sect_size[10] - pr.pdu_offset) {
      fail(error, "corrupt packet index (packet " + std::to_string(p) + ")");
      return nullptr;
    }
  }
  for (std::uint64_t fidx = 0; fidx < hdr.files; ++fidx) {
    const CorpusFileRec& fr = r->files_[fidx];
    if (fr.packet_begin > hdr.packets ||
        fr.packet_count > hdr.packets - fr.packet_begin) {
      fail(error, "corrupt file index (file " + std::to_string(fidx) + ")");
      return nullptr;
    }
  }

  CorpusInfo& info = r->info_;
  info.version = hdr.version;
  info.file_size = hdr.total_size;
  info.files = hdr.files;
  info.packets = hdr.packets;
  info.cells = hdr.cells;
  info.pdu_bytes = sect_size[10];
  info.params.profile.assign(hdr.profile, hdr.profile_len);
  info.params.scale = std::bit_cast<double>(hdr.scale_bits);
  info.params.compress = hdr.compress != 0;
  net::FlowConfig& flow = info.params.flow;
  flow.segment_size = hdr.segment_size;
  flow.initial_seq = hdr.initial_seq;
  flow.initial_ip_id = hdr.initial_ip_id;
  flow.packet.transport = static_cast<alg::Algorithm>(hdr.transport);
  flow.packet.placement = static_cast<net::ChecksumPlacement>(hdr.placement);
  flow.packet.invert_checksum = hdr.invert_checksum != 0;
  flow.packet.fill_ip_header = hdr.fill_ip_header != 0;
  flow.packet.legacy95_headers = hdr.legacy95_headers != 0;
  flow.packet.src_addr = hdr.src_addr;
  flow.packet.dst_addr = hdr.dst_addr;
  flow.packet.src_port = hdr.src_port;
  flow.packet.dst_port = hdr.dst_port;
  flow.packet.window = hdr.window;
  return r;
}

std::vector<core::SimPacket> CorpusReader::file_packets(std::size_t i) const {
  std::vector<core::SimPacket> out;
  if (i >= info_.files) return out;
  const CorpusFileRec& fr = files_[i];
  out.reserve(fr.packet_count);
  for (std::uint64_t p = fr.packet_begin; p < fr.packet_begin + fr.packet_count;
       ++p) {
    const CorpusPacketRec& r = packets_[p];
    core::SimPacket sp;
    const std::size_t pdu_len =
        static_cast<std::size_t>(r.cell_count) * atm::kCellPayload;
    sp.pdu = *atm::CpcsPdu::from_bytes(
        util::Bytes(pdu_bytes_ + r.pdu_offset,
                    pdu_bytes_ + r.pdu_offset + pdu_len));
    sp.cells.resize(r.cell_count);
    for (std::uint32_t c = 0; c < r.cell_count; ++c) {
      const std::uint64_t g = r.cell_begin + c;
      core::CellPartial& cp = sp.cells[c];
      cp.inet = cell_inet_[g];
      cp.f255 = {cell_f255_[2 * g], cell_f255_[2 * g + 1]};
      cp.f256 = {cell_f256_[2 * g], cell_f256_[2 * g + 1]};
      cp.crc = cell_crc_[g];
      cp.hash = cell_hash_[g];
      cp.kd = {cell_kd_[2 * g], cell_kd_[2 * g + 1]};
      cp.ks = cell_ks_[g];
    }
    sp.tp.head_sum = r.head_sum;
    sp.tp.head_f255 = {r.head_f255_a, r.head_f255_b};
    sp.tp.head_f256 = {r.head_f256_a, r.head_f256_b};
    sp.tp.stored = r.stored;
    sp.tp.eom_len = r.eom_len;
    sp.tp.eom_sum = r.eom_sum;
    sp.tp.eom_f255 = {r.eom_f255_a, r.eom_f255_b};
    sp.tp.eom_f256 = {r.eom_f256_a, r.eom_f256_b};
    sp.stored_crc = r.stored_crc;
    sp.crc_head44 = r.crc_head44;
    sp.eom_kd = {r.eom_kd_a, r.eom_kd_b};
    sp.eom_ks = r.eom_ks;
    sp.kd_pdu = {r.kd_pdu_a, r.kd_pdu_b};
    sp.ks_pdu = r.ks_pdu;
    sp.eom_cov_hash = r.eom_cov_hash;
    sp.total_len = r.total_len;
    sp.fast_path_ok = r.fast_path_ok != 0;
    sp.hdr_ok_self.assign(hdr_ok_ + r.hdr_begin,
                          hdr_ok_ + r.hdr_begin + (r.cell_count - 1));
    sp.hdr_require_ipck = r.hdr_require_ipck != 0;
    sp.hdr_legacy95 = r.hdr_legacy95 != 0;
    out.push_back(std::move(sp));
  }
  return out;
}

namespace {

/// Shard readahead telemetry. Tagged scheduling, not deterministic:
/// lease boundaries (and therefore advised ranges) differ between a
/// local run and a distributed one.
struct ReadaheadMetrics {
  obs::Counter calls;
  obs::Counter bytes;
};

const ReadaheadMetrics& rmx() {
  static const ReadaheadMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    ReadaheadMetrics mx;
    mx.calls = r.counter("corpus.readahead_calls", obs::Tag::kScheduling);
    mx.bytes = r.counter("corpus.readahead_bytes", obs::Tag::kScheduling);
    return mx;
  }();
  return m;
}

/// posix_madvise(WILLNEED) over [p, p+n), widened to page boundaries.
/// Advisory only — errors are deliberately ignored.
std::uint64_t advise_range(const void* p, std::uint64_t n) {
  if (n == 0) return 0;
  static const std::uintptr_t page =
      static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t start = addr & ~(page - 1);
  const std::uintptr_t end = (addr + n + page - 1) & ~(page - 1);
  (void)::posix_madvise(reinterpret_cast<void*>(start), end - start,
                        POSIX_MADV_WILLNEED);
  return end - start;
}

}  // namespace

void CorpusReader::advise_will_need(std::size_t begin, std::size_t end) const {
  end = std::min<std::size_t>(end, info_.files);
  begin = std::min(begin, end);
  if (begin == end) return;
  const CorpusFileRec& fb = files_[begin];
  const CorpusFileRec& fe = files_[end - 1];
  const std::uint64_t p0 = fb.packet_begin;
  const std::uint64_t p1 = fe.packet_begin + fe.packet_count;
  if (p0 >= p1) return;  // a shard of empty files touches nothing
  const CorpusPacketRec& r0 = packets_[p0];
  const CorpusPacketRec& r1 = packets_[p1 - 1];
  const std::uint64_t c0 = r0.cell_begin;
  const std::uint64_t c1 = r1.cell_begin + r1.cell_count;
  const std::uint64_t cells = c1 - c0;
  const std::uint64_t h0 = r0.hdr_begin;
  const std::uint64_t h1 = r1.hdr_begin + (r1.cell_count - 1);
  const std::uint64_t d0 = r0.pdu_offset;
  const std::uint64_t d1 =
      r1.pdu_offset +
      static_cast<std::uint64_t>(r1.cell_count) * atm::kCellPayload;

  std::uint64_t advised = 0;
  advised += advise_range(packets_ + p0, (p1 - p0) * sizeof(CorpusPacketRec));
  advised += advise_range(cell_inet_ + c0, cells * 2);
  advised += advise_range(cell_f255_ + 2 * c0, cells * 8);
  advised += advise_range(cell_f256_ + 2 * c0, cells * 8);
  advised += advise_range(cell_crc_ + c0, cells * 4);
  advised += advise_range(cell_hash_ + c0, cells * 8);
  advised += advise_range(cell_kd_ + 2 * c0, cells * 8);
  advised += advise_range(cell_ks_ + c0, cells * 8);
  advised += advise_range(hdr_ok_ + h0, h1 - h0);
  advised += advise_range(pdu_bytes_ + d0, d1 - d0);

  const ReadaheadMetrics& mx = rmx();
  mx.calls.add(1);
  mx.bytes.add(advised);
}

}  // namespace cksum::fsgen
