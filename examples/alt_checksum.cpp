// RFC 1146 alternate-checksum negotiation walkthrough (the paper's
// reference [13]): a connection negotiates the 8-bit Fletcher
// checksum via TCP options, and a TP4 association uses the same sum
// natively — then both watch a word-swap corruption that the standard
// Internet checksum cannot see.
//
//   $ ./examples/alt_checksum
#include <cstdio>

#include "checksum/checksum.hpp"
#include "net/tcp_options.hpp"
#include "net/tp4.hpp"
#include "util/rng.hpp"

using namespace cksum;

int main() {
  // --- 1. The SYN carries an Alternate Checksum Request. ---
  net::TcpOptionList syn_opts;
  syn_opts.add_mss(1460);
  syn_opts.add_nop();
  syn_opts.add_alt_checksum_request(net::AltChecksum::kFletcher8);
  const util::Bytes wire = syn_opts.serialize();
  std::printf("SYN options (%zu bytes): requesting alternate checksum\n",
              wire.size());

  const auto parsed = net::TcpOptionList::parse(util::ByteView(wire));
  if (!parsed || parsed->requested_alt_checksum() !=
                     net::AltChecksum::kFletcher8) {
    std::printf("negotiation failed!\n");
    return 1;
  }
  std::printf("receiver agrees: connection will use 8-bit Fletcher\n\n");

  // --- 2. Why anyone would bother: transposition. ---
  util::Bytes payload(256);
  util::Rng rng(7);
  rng.fill(payload);
  util::Bytes swapped = payload;
  // Transpose two 16-bit words — a classic DMA/buffer-management bug.
  std::swap(swapped[10], swapped[50]);
  std::swap(swapped[11], swapped[51]);

  const bool tcp_sees =
      alg::internet_sum(util::ByteView(payload)) !=
      alg::internet_sum(util::ByteView(swapped));
  const bool fletcher_sees =
      alg::fletcher_block(util::ByteView(payload),
                          alg::FletcherMod::kOnes255) !=
      alg::fletcher_block(util::ByteView(swapped),
                          alg::FletcherMod::kOnes255);
  std::printf("transpose words 5 and 25 of the payload:\n");
  std::printf("  Internet checksum notices: %s\n", tcp_sees ? "yes" : "NO");
  std::printf("  Fletcher notices         : %s\n\n",
              fletcher_sees ? "yes" : "NO");

  // --- 3. The same sum in its native habitat: a TP4 DT TPDU. ---
  net::Tp4Dt dt;
  dt.dst_ref = 0x0042;
  dt.seq = 1;
  dt.end_of_tsdu = true;
  dt.user_data = payload;
  const util::Bytes tpdu = net::build_tp4_dt(dt);
  std::printf("TP4 DT TPDU: %zu bytes, checksum parameter verifies: %s\n",
              tpdu.size(),
              net::verify_tp4_checksum(util::ByteView(tpdu)) ? "yes" : "NO");

  util::Bytes corrupted = tpdu;
  std::swap(corrupted[20], corrupted[60]);
  std::swap(corrupted[21], corrupted[61]);
  std::printf("after transposing two words            : %s\n",
              net::verify_tp4_checksum(util::ByteView(corrupted))
                  ? "verifies (!!)"
                  : "rejected");

  std::printf(
      "\n(the paper's caveat applies: Fletcher-255's 0x00/0xFF blindness\n"
      "means black-and-white bitmaps can defeat it completely — see\n"
      "bench_pathology and Table 8's smeg:/u1 row)\n");
  return 0;
}
