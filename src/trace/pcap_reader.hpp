// Never-fault classic-pcap reader — the front door of the trace lab
// (docs/TRACE.md).
//
// Accepts the classic (pre-pcapng) capture format in all four magic
// flavours: native and byte-swapped order, microsecond and nanosecond
// timestamp resolution. Two link types are understood:
//  * LINKTYPE_RAW (101): each record IS an IP datagram.
//  * LINKTYPE_ETHERNET (1): a 14-byte Ethernet II header precedes the
//    datagram; only ethertype 0x0800 (IPv4) records carry one.
//
// Like fsgen::CorpusReader, open()/parse() validate every structural
// invariant up front and reject with an explicit reason string — a
// truncated header, a bad magic, an absurd snap length or a mid-record
// EOF is a diagnosis, never a crash. Snap-length truncation (captured
// length < original length) is legal pcap and is surfaced per record,
// not rejected: the ingest stage decides what to do with partial
// datagrams.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace cksum::trace {

inline constexpr std::uint32_t kLinkEthernet = 1;
inline constexpr std::uint32_t kLinkRaw = 101;
inline constexpr std::size_t kEthernetHeaderLen = 14;

/// Ceiling on plausible snap lengths. Classic tools use 65535 or
/// 262144; anything beyond 1 MiB is rejected as absurd (a corrupt
/// header would otherwise license equally absurd record lengths).
inline constexpr std::uint32_t kMaxSnaplen = 1u << 20;

/// Link-layer disposition of one record: whether (and why not) it
/// yields an IP datagram view.
enum class RecordClass : std::uint8_t {
  kDatagram,      ///< datagram() is the captured IP datagram
  kLinkTooShort,  ///< Ethernet record shorter than its 14-byte header
  kNonIpv4,       ///< Ethernet record with ethertype != 0x0800
};

constexpr std::string_view to_string(RecordClass c) noexcept {
  switch (c) {
    case RecordClass::kDatagram: return "datagram";
    case RecordClass::kLinkTooShort: return "link-too-short";
    case RecordClass::kNonIpv4: return "non-ipv4-ethertype";
  }
  return "?";
}

struct TraceRecord {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_frac = 0;  ///< µs, or ns under a nanosecond magic
  std::uint32_t captured_len = 0;
  std::uint32_t original_len = 0;
  bool truncated = false;  ///< captured_len < original_len (snaplen cut)
  RecordClass cls = RecordClass::kDatagram;
  util::ByteView frame;     ///< captured link-layer bytes
  util::ByteView datagram;  ///< IP datagram view; empty unless kDatagram
};

struct PcapInfo {
  std::uint16_t version_major = 0;
  std::uint16_t version_minor = 0;
  std::uint32_t snaplen = 0;
  std::uint32_t linktype = 0;
  bool swapped = false;  ///< capture written on a foreign-endian host
  bool nanos = false;    ///< nanosecond-resolution magic
  std::uint64_t records = 0;
  std::uint64_t truncated = 0;   ///< records cut short by the snap length
  std::uint64_t datagrams = 0;   ///< records classified kDatagram
  std::uint64_t frame_bytes = 0; ///< captured bytes across all records
};

class PcapReader {
 public:
  /// Read and validate a capture file. nullptr + reason in *error on
  /// any structural violation; never faults on corrupt input.
  static std::unique_ptr<PcapReader> open(const std::string& path,
                                          std::string* error);

  /// Same validation over an in-memory capture (takes ownership so
  /// record views stay stable). Exposed for tests and benchmarks.
  static std::unique_ptr<PcapReader> parse(util::Bytes bytes,
                                           std::string* error);

  const PcapInfo& info() const noexcept { return info_; }
  std::size_t record_count() const noexcept { return records_.size(); }
  const TraceRecord& record(std::size_t i) const { return records_.at(i); }
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

 private:
  PcapReader() = default;

  util::Bytes data_;
  PcapInfo info_;
  std::vector<TraceRecord> records_;
};

/// Idempotently register the trace.* metric family with
/// obs::Registry::global() (docs/OBSERVABILITY.md). Drivers call this
/// up front so exported manifests carry the full family.
void register_trace_metrics();

}  // namespace cksum::trace
