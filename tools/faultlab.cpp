// faultlab — fault-injection soak driver over the full receiver stack.
//
//   faultlab soak [options]        randomized scenarios until the
//                                  fault budget is spent; exit 1 (and
//                                  print one reproducer line) on any
//                                  invariant violation
//   faultlab replay --seed S --scenario N [options]
//                                  re-run exactly one scenario
//   faultlab distkill [options]    distributed-run fault drill: spawn a
//                                  coordinator + N workers, SIGKILL one
//                                  worker mid-lease, and assert the
//                                  merged report still equals the
//                                  single-process run bit for bit
//   faultlab arq [options]         ARQ frontier: run every (policy,
//                                  checksum) pair across a fault-rate
//                                  grid and report the residual-error
//                                  rate and goodput/latency cost of
//                                  each (docs/ARQ.md)
//   faultlab arqsoak [options]     randomized ARQ soak over all three
//                                  retransmission policies; exit 1 and
//                                  print a reproducer on any guarantee
//                                  violation (add --scenario N to
//                                  replay exactly one scenario)
//
// options:
//   --seed <n>        master seed                    (default 0xC0FFEE)
//   --faults <n>      injected-fault-event target    (default 1000000)
//   --max-scenarios <n>  hard scenario cap           (default unlimited)
//   --channels <n>    pin the demux channel cap      (default per-scenario)
//   --budget <n>      pin the demux pending budget   (default per-scenario)
//   --repro-file <p>  also write the reproducer line to this file
//   --metrics-out <p> write the telemetry run manifest (and a
//                     <p>.jsonl progress stream); docs/OBSERVABILITY.md
//   --progress        force the live one-line ticker on stderr
//   --quiet           summary line only
//
// Invariants checked (see docs/FAULTS.md): no crash, demux memory
// bounded by its budget, and no undetected corruption — every PDU
// passing length+CRC must match a payload that was actually sent.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "arq/sim.hpp"
#include "arq/soak.hpp"
#include "atm/demux.hpp"
#include "checksum/checksum.hpp"
#include "checksum/kernels/kernel.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "dist/coordinator.hpp"
#include "dist/service.hpp"
#include "dist/spawn.hpp"
#include "dist/worker.hpp"
#include "faults/channel.hpp"
#include "faults/soak.hpp"
#include "fsgen/profile.hpp"
#include "kernel_cli.hpp"
#include "obs/exporter.hpp"
#include "storage/frontier.hpp"

using namespace cksum;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: faultlab soak [--seed n] [--faults n] [--max-scenarios n]\n"
      "                     [--channels n] [--budget n] [--repro-file p]\n"
      "                     [--metrics-out p] [--progress] [--quiet]\n"
      "       faultlab replay --seed n --scenario n [--channels n] "
      "[--budget n]\n"
      "       faultlab distkill [--workers n] [--jobs n] [--profile p]\n"
      "                         [--scale x] [--shard-files n] [--quick]\n"
      "                         [--verbose] [--metrics-out p]\n"
      "       faultlab arq [--seed n] [--payloads n] [--quick] [--json]\n"
      "                    [--metrics-out p] [--quiet]\n"
      "       faultlab arqsoak [--seed n] [--faults n] [--max-scenarios n]\n"
      "                        [--scenario n] [--repro-file p]\n"
      "                        [--metrics-out p] [--progress] [--quiet]\n"
      "       faultlab storage [--seed n] [--trials n] [--threads n]\n"
      "                        [--quick] [--json] [--metrics-out p]\n"
      "                        [--progress] [--quiet]\n"
      "all accept --kernel best|scalar|slicing|swar|chorba|clmul|list\n"
      "(or the CKSUM_KERNEL environment variable) to pick the checksum\n"
      "kernel; `list` prints every kernel with tier and availability\n");
  return 2;
}

struct Opts {
  faults::SoakConfig cfg;
  std::uint64_t scenario = 0;
  bool have_scenario = false;
  std::string repro_file;
  std::string metrics_out;
  bool progress = false;
  bool quiet = false;
  bool ok = true;
};

Opts parse(const std::vector<std::string>& args) {
  Opts o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        o.ok = false;
        return "0";
      }
      return args[++i];
    };
    if (a == "--seed") {
      o.cfg.seed = std::stoull(next(), nullptr, 0);
    } else if (a == "--faults") {
      o.cfg.target_faults = std::stoull(next());
    } else if (a == "--max-scenarios") {
      o.cfg.max_scenarios = std::stoull(next());
    } else if (a == "--channels") {
      o.cfg.max_channels = std::stoull(next());
    } else if (a == "--budget") {
      o.cfg.max_pending_cells = std::stoull(next());
    } else if (a == "--scenario") {
      o.scenario = std::stoull(next(), nullptr, 0);
      o.have_scenario = true;
    } else if (a == "--repro-file") {
      o.repro_file = next();
    } else if (a == "--metrics-out") {
      o.metrics_out = next();
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

void print_totals(const faults::ScenarioResult& t) {
  const faults::FaultStats& f = t.faults;
  core::TextTable inj({"fault class", "injected"});
  inj.add_row({"payload burst", core::fmt_count(f.payload_bursts)});
  inj.add_row({"HEC corruption", core::fmt_count(f.hec_corruptions)});
  inj.add_row({"  dropped by HEC", core::fmt_count(f.hec_dropped)});
  inj.add_row({"  miscorrected", core::fmt_count(f.hec_miscorrected)});
  inj.add_row({"duplication", core::fmt_count(f.duplicates)});
  inj.add_row({"reordering", core::fmt_count(f.reorders)});
  inj.add_row({"EOM flip", core::fmt_count(f.eom_flips)});
  inj.add_row({"misdelivery", core::fmt_count(f.misdeliveries)});
  inj.add_row({"truncation", core::fmt_count(f.truncations)});
  inj.add_separator();
  inj.add_row({"total fault events", core::fmt_count(f.total_faults())});
  inj.print(std::cout);

  std::printf("\n");
  core::TextTable rx({"receiver", "count"});
  rx.add_row({"cells into channel", core::fmt_count(f.cells_in)});
  rx.add_row({"cells out of channel", core::fmt_count(f.cells_out)});
  rx.add_row({"cells lost on link", core::fmt_count(t.loss.cells_lost)});
  rx.add_row({"cells policy-dropped",
              core::fmt_count(t.loss.cells_policy_drop)});
  rx.add_row({"cells into demux", core::fmt_count(t.cells_to_demux)});
  rx.add_row({"budget drops", core::fmt_count(t.demux.budget_drops)});
  rx.add_row({"channel evictions", core::fmt_count(t.demux.evictions)});
  rx.add_row({"oversize discards", core::fmt_count(t.oversize_discards)});
  rx.add_row({"payloads sent", core::fmt_count(t.payloads_sent)});
  rx.add_row({"candidate PDUs", core::fmt_count(t.pdus_delivered)});
  rx.add_row({"PDUs passing checks", core::fmt_count(t.pdus_ok)});
  rx.print(std::cout);
}

int report(const faults::SoakConfig& cfg, const faults::SoakResult& res,
           const Opts& o) {
  if (!o.quiet) {
    print_totals(res.totals);
    std::printf("\n");
  }
  std::printf("%llu scenarios, %s fault events, %s cells: %s\n",
              static_cast<unsigned long long>(res.scenarios),
              core::fmt_count(res.totals.faults.total_faults()).c_str(),
              core::fmt_count(res.totals.faults.cells_in).c_str(),
              res.ok() ? "all invariants held" : "INVARIANT VIOLATED");
  if (!res.ok()) {
    std::printf("  %s\n  reproduce with: %s\n",
                res.totals.violation_detail.c_str(),
                res.reproducer.c_str());
    if (!o.repro_file.empty()) {
      std::ofstream f(o.repro_file);
      f << res.reproducer << "\n";
    }
    return 1;
  }
  (void)cfg;
  return 0;
}

/// Live one-line view of a soak run. Fault events are summed over the
/// per-class `faults.*.injected` counters — the same definition as
/// FaultStats::total_faults().
std::string soak_ticker_line(const obs::Snapshot& snap, double elapsed) {
  std::uint64_t events = 0;
  for (const obs::MetricValue& m : snap.metrics) {
    if (m.name.size() > 9 &&
        m.name.compare(m.name.size() - 9, 9, ".injected") == 0)
      events += m.value;
  }
  const auto get = [&](std::string_view name) -> std::uint64_t {
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "soak: %llu scenarios  %llu fault events  %llu cells  "
      "%llu violations  %.1fs",
      static_cast<unsigned long long>(get("soak.scenarios")),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(get("faults.cells_in")),
      static_cast<unsigned long long>(get("soak.violations")), elapsed);
  return buf;
}

/// Starts the exporter (when asked for) around `run`, finishing with a
/// manifest identifying this soak/replay configuration.
template <typename Run>
int with_metrics(const Opts& o, const char* tool, Run run) {
  faults::register_fault_metrics();
  atm::register_atm_metrics();
  alg::kern::register_kernel_metrics();
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!o.metrics_out.empty() || o.progress) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = o.metrics_out;
    eo.ticker = o.progress || isatty(2) != 0;
    eo.ticker_line = soak_ticker_line;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }
  const int rc = run();
  if (exporter) {
    obs::RunInfo info;
    info.tool = tool;
    info.corpus = "fsgen-random";  // scenario corpora are seed-derived
    info.seed = o.cfg.seed;
    info.threads = 1;
    info.extra_json = tools::kernel_manifest_json();
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "faultlab: cannot write manifest to %s\n",
                   o.metrics_out.c_str());
      return 1;
    }
  }
  return rc;
}

int cmd_soak(const Opts& o) {
  return with_metrics(o, "faultlab soak", [&] {
    const faults::SoakResult res = faults::run_soak(o.cfg);
    return report(o.cfg, res, o);
  });
}

int cmd_replay(const Opts& o) {
  if (!o.have_scenario) return usage();
  return with_metrics(o, "faultlab replay", [&] {
    const faults::ScenarioResult r = faults::run_scenario(o.cfg, o.scenario);
    faults::SoakResult res;
    res.scenarios = 1;
    res.totals = r;
    if (r.violations > 0)
      res.reproducer = faults::reproducer_line(o.cfg, o.scenario);
    return report(o.cfg, res, o);
  });
}

// --- faultlab arq / arqsoak -----------------------------------------

struct ArqOpts {
  arq::ArqSoakConfig cfg;
  std::uint64_t scenario = 0;
  bool have_scenario = false;
  std::size_t payloads = 48;
  std::string repro_file;
  std::string metrics_out;
  bool progress = false;
  bool quiet = false;
  bool quick = false;
  bool json = false;
  bool ok = true;
};

ArqOpts parse_arq(const std::vector<std::string>& args) {
  ArqOpts o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        o.ok = false;
        return "0";
      }
      return args[++i];
    };
    if (a == "--seed") {
      o.cfg.seed = std::stoull(next(), nullptr, 0);
    } else if (a == "--faults") {
      o.cfg.target_faults = std::stoull(next());
    } else if (a == "--max-scenarios") {
      o.cfg.max_scenarios = std::stoull(next());
    } else if (a == "--scenario") {
      o.scenario = std::stoull(next(), nullptr, 0);
      o.have_scenario = true;
    } else if (a == "--payloads") {
      o.payloads = std::stoull(next());
    } else if (a == "--repro-file") {
      o.repro_file = next();
    } else if (a == "--metrics-out") {
      o.metrics_out = next();
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--quick") {
      o.quick = true;
    } else if (a == "--json") {
      o.json = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

std::string arq_ticker_line(const obs::Snapshot& snap, double elapsed) {
  const auto get = [&](std::string_view name) -> std::uint64_t {
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "arq: %llu runs  %llu delivered  %llu retransmits  "
      "%llu residual  %llu gave up  %.1fs",
      static_cast<unsigned long long>(get("arq.runs")),
      static_cast<unsigned long long>(get("arq.delivered_ok")),
      static_cast<unsigned long long>(get("arq.retransmits")),
      static_cast<unsigned long long>(get("arq.residual_undetected") +
                                      get("arq.residual_lost")),
      static_cast<unsigned long long>(get("arq.gave_up")), elapsed);
  return buf;
}

/// Exporter wrapper for the arq subcommands. `extra_rows`, when
/// non-empty after run(), is spliced into the manifest as the "arq"
/// top-level member (docs/OBSERVABILITY.md).
template <typename Run>
int with_arq_metrics(const ArqOpts& o, const char* tool,
                     const std::string* extra_rows, Run run) {
  arq::register_arq_metrics();
  alg::kern::register_kernel_metrics();
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!o.metrics_out.empty() || o.progress) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = o.metrics_out;
    eo.ticker = o.progress || isatty(2) != 0;
    eo.ticker_line = arq_ticker_line;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }
  const int rc = run();
  if (exporter) {
    obs::RunInfo info;
    info.tool = tool;
    info.corpus = "arq-random";  // payloads are seed-derived
    info.seed = o.cfg.seed;
    info.threads = 1;
    info.extra_json = tools::kernel_manifest_json();
    if (extra_rows != nullptr && !extra_rows->empty())
      info.extra_json += ", \"arq\": " + *extra_rows;
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "faultlab: cannot write manifest to %s\n",
                   o.metrics_out.c_str());
      return 1;
    }
  }
  return rc;
}

/// One cell of the frontier: (policy, checksum) at a link fault rate.
struct ArqCell {
  arq::Policy policy;
  alg::Algorithm checksum;
  double rate;
  arq::SimResult sim;
};

/// All fault classes scaled off one knob so "fault rate" means one
/// thing across the whole table: at rate r the data direction corrupts
/// r of its frames, drops r/2, duplicates r/4, truncates r/4, and
/// reorders r/2 of them; the ACK direction runs the same plan at half
/// strength.
faults::LinkPlan frontier_plan(double rate, bool ack) {
  const double r = ack ? rate / 2 : rate;
  faults::LinkPlan p;
  p.corrupt_rate = r;
  p.burst_bits_max = 32;
  p.drop_rate = r / 2;
  p.duplicate_rate = r / 4;
  p.truncate_rate = r / 4;
  p.reorder_rate = r / 2;
  p.reorder_delay_max = 24;
  return p;
}

std::string json_escape_free_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string arq_cell_json(const ArqCell& c) {
  const arq::SimResult& s = c.sim;
  std::string j = "{";
  j += "\"policy\": \"" + std::string(arq::manifest_key(c.policy)) + "\"";
  j += ", \"checksum\": \"" + std::string(alg::name(c.checksum)) + "\"";
  j += ", \"fault_rate\": " + json_escape_free_number(c.rate);
  const auto add = [&](const char* k, std::uint64_t v) {
    j += ", \"" + std::string(k) +
         "\": " + std::to_string(static_cast<unsigned long long>(v));
  };
  add("offered", s.payloads_offered);
  add("delivered_ok", s.delivered_ok);
  add("residual_undetected", s.residual_undetected);
  add("residual_lost", s.residual_lost);
  add("gave_up", s.gave_up);
  add("retransmits", s.sender.retransmits);
  add("timeouts", s.sender.timeouts);
  add("check_rejects", s.receiver.check_rejects);
  add("ticks", s.ticks);
  j += ", \"goodput\": " + json_escape_free_number(s.goodput());
  j += ", \"mean_latency\": " + json_escape_free_number(s.mean_latency());
  j += std::string(", \"terminated\": ") + (s.terminated ? "true" : "false");
  j += "}";
  return j;
}

/// The frontier the paper's data motivates one layer up: how much
/// retransmission each policy spends, and what residual error each
/// checksum leaks, as the link degrades.
int cmd_arq(const ArqOpts& o, std::string* extra_rows) {
  const std::vector<double> rates =
      o.quick ? std::vector<double>{0.0, 0.05}
              : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10};
  const std::vector<alg::Algorithm> checks =
      o.quick ? std::vector<alg::Algorithm>{alg::Algorithm::kCrc32,
                                            alg::Algorithm::kInternet}
              : std::vector<alg::Algorithm>{alg::Algorithm::kCrc32,
                                            alg::Algorithm::kInternet,
                                            alg::Algorithm::kFletcher256};
  constexpr arq::Policy kPolicies[] = {arq::Policy::kStopAndWait,
                                       arq::Policy::kGoBackN,
                                       arq::Policy::kSelectiveRepeat};

  // One shared payload set so every cell moves identical data.
  const std::size_t n = o.quick ? std::min<std::size_t>(o.payloads, 16)
                                : o.payloads;
  util::Rng prng = util::Rng(o.cfg.seed).child(0xFEED);
  std::vector<util::Bytes> payloads;
  payloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    util::Bytes p(1 + prng.below(1024));
    prng.fill(p);
    payloads.push_back(std::move(p));
  }

  std::vector<ArqCell> cells;
  std::uint64_t combo = 0;
  for (const arq::Policy policy : kPolicies) {
    for (const alg::Algorithm check : checks) {
      for (const double rate : rates) {
        arq::SimConfig c;
        c.arq.policy = policy;
        c.arq.checksum = check;
        c.data_link = frontier_plan(rate, false);
        c.ack_link = frontier_plan(rate, true);
        c.seed = util::Rng(o.cfg.seed).child(1000 + combo++).next();
        cells.push_back({policy, check, rate, arq::run_sim(c, payloads)});
      }
    }
  }

  bool failed = false;
  std::string detail;
  const auto gate = [&](const ArqCell& c, bool bad, const std::string& what) {
    if (!bad) return;
    failed = true;
    if (detail.empty())
      detail = std::string(arq::name(c.policy)) + "/" +
               std::string(alg::name(c.checksum)) + " @ " +
               json_escape_free_number(c.rate) + ": " + what;
  };
  for (const ArqCell& c : cells) {
    gate(c, !c.sim.terminated, "failed to terminate");
    gate(c, !c.sim.violation.empty(), c.sim.violation);
    if (c.rate == 0.0) {
      gate(c, c.sim.delivered_ok != c.sim.payloads_offered,
           "fault-free cell lost payloads");
      gate(c, c.sim.sender.retransmits != 0,
           "fault-free cell retransmitted");
    }
    if (c.checksum == alg::Algorithm::kCrc32)
      gate(c, c.sim.residual_undetected + c.sim.residual_lost != 0,
           "residual error under CRC-32");
  }

  if (!o.quiet) {
    core::TextTable t({"policy", "check", "rate", "ok", "resid", "lost",
                       "gaveup", "rexmit", "goodput", "latency"});
    for (const ArqCell& c : cells) {
      char rate[16], good[24], lat[24];
      std::snprintf(rate, sizeof rate, "%.2f", c.rate);
      std::snprintf(good, sizeof good, "%.4f", c.sim.goodput());
      std::snprintf(lat, sizeof lat, "%.0f", c.sim.mean_latency());
      t.add_row({std::string(arq::name(c.policy)),
                 std::string(alg::name(c.checksum)), rate,
                 core::fmt_count(c.sim.delivered_ok),
                 core::fmt_count(c.sim.residual_undetected),
                 core::fmt_count(c.sim.residual_lost),
                 core::fmt_count(c.sim.gave_up),
                 core::fmt_count(c.sim.sender.retransmits), good, lat});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::string rows = "[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) rows += ", ";
    rows += arq_cell_json(cells[i]);
  }
  rows += "]";
  if (o.json) std::printf("%s\n", rows.c_str());
  if (extra_rows != nullptr) *extra_rows = rows;

  std::printf("arq frontier: %zu cells, %zu payloads each: %s\n",
              cells.size(), payloads.size(),
              failed ? "GUARANTEE VIOLATED" : "all guarantees held");
  if (failed) {
    std::printf("  %s\n", detail.c_str());
    return 1;
  }
  return 0;
}

int arq_soak_report(const arq::ArqSoakResult& res, const ArqOpts& o) {
  if (!o.quiet) {
    core::TextTable t({"arq soak", "count"});
    t.add_row({"scenarios", core::fmt_count(res.scenarios)});
    t.add_row({"link faults injected", core::fmt_count(res.faults_injected)});
    t.add_row({"payloads offered", core::fmt_count(res.payloads_offered)});
    t.add_row({"delivered intact", core::fmt_count(res.delivered_ok)});
    t.add_row({"residual undetected",
               core::fmt_count(res.residual_undetected)});
    t.add_row({"residual lost", core::fmt_count(res.residual_lost)});
    t.add_row({"abandoned (gave up)", core::fmt_count(res.gave_up)});
    t.add_row({"retransmissions", core::fmt_count(res.retransmits)});
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("%llu scenarios, %s link faults: %s\n",
              static_cast<unsigned long long>(res.scenarios),
              core::fmt_count(res.faults_injected).c_str(),
              res.ok() ? "all guarantees held" : "GUARANTEE VIOLATED");
  if (!res.ok()) {
    std::printf("  %s\n  reproduce with: %s\n", res.violation_detail.c_str(),
                res.reproducer.c_str());
    if (!o.repro_file.empty()) {
      std::ofstream f(o.repro_file);
      f << res.reproducer << "\n";
    }
    return 1;
  }
  return 0;
}

int cmd_arqsoak(const ArqOpts& o) {
  return with_arq_metrics(o, o.have_scenario ? "faultlab arqsoak replay"
                                             : "faultlab arqsoak",
                          nullptr, [&] {
    if (o.have_scenario) {
      const arq::ArqScenarioResult r =
          arq::run_arq_scenario(o.cfg, o.scenario);
      arq::ArqSoakResult res;
      res.scenarios = 1;
      res.faults_injected = r.faults_injected;
      res.payloads_offered = r.sim.payloads_offered;
      res.delivered_ok = r.sim.delivered_ok;
      res.residual_undetected = r.sim.residual_undetected;
      res.residual_lost = r.sim.residual_lost;
      res.gave_up = r.sim.gave_up;
      res.retransmits = r.sim.sender.retransmits;
      res.violations = r.violations;
      res.violation_detail = r.violation_detail;
      if (r.violations > 0)
        res.reproducer = arq::arq_reproducer_line(o.cfg, o.scenario);
      return arq_soak_report(res, o);
    }
    return arq_soak_report(arq::run_arq_soak(o.cfg), o);
  });
}

struct StorageOpts {
  std::uint64_t seed = 0xC0FFEE;
  std::size_t trials = 0;  ///< per cell, both block sizes (0 = defaults)
  unsigned threads = 1;
  bool quick = false;
  bool json = false;
  std::string metrics_out;
  bool progress = false;
  bool quiet = false;
  bool ok = true;
};

StorageOpts parse_storage(const std::vector<std::string>& args) {
  StorageOpts o;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        o.ok = false;
        return "0";
      }
      return args[++i];
    };
    if (a == "--seed") {
      o.seed = std::stoull(next(), nullptr, 0);
    } else if (a == "--trials") {
      o.trials = std::stoull(next());
    } else if (a == "--threads") {
      o.threads = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--quick") {
      o.quick = true;
    } else if (a == "--json") {
      o.json = true;
    } else if (a == "--metrics-out") {
      o.metrics_out = next();
    } else if (a == "--progress") {
      o.progress = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      o.ok = false;
    }
  }
  return o;
}

std::string storage_ticker_line(const obs::Snapshot& snap, double elapsed) {
  const auto get = [&](std::string_view name) -> std::uint64_t {
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "storage: %llu trials  %llu detected  %llu undetected  "
                "%llu violations  %.1fs",
                static_cast<unsigned long long>(get("storage.trials")),
                static_cast<unsigned long long>(get("storage.detected")),
                static_cast<unsigned long long>(get("storage.undetected")),
                static_cast<unsigned long long>(get("storage.violations")),
                elapsed);
  return buf;
}

/// Exporter wrapper for the storage frontier. `extra_rows`, when
/// non-empty after run(), is spliced into the manifest as the
/// "storage" top-level member (docs/OBSERVABILITY.md).
template <typename Run>
int with_storage_metrics(const StorageOpts& o, const char* tool,
                         const std::string* extra_rows, Run run) {
  storage::register_storage_metrics();
  alg::kern::register_kernel_metrics();
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!o.metrics_out.empty() || o.progress) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = o.metrics_out;
    eo.ticker = o.progress || isatty(2) != 0;
    eo.ticker_line = storage_ticker_line;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }
  const int rc = run();
  if (exporter) {
    obs::RunInfo info;
    info.tool = tool;
    info.corpus = "fsgen-storage";  // payload pairs are seed-derived
    info.seed = o.seed;
    info.threads = o.threads;
    info.extra_json = tools::kernel_manifest_json();
    if (extra_rows != nullptr && !extra_rows->empty())
      info.extra_json += ", \"storage\": " + *extra_rows;
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "faultlab: cannot write manifest to %s\n",
                   o.metrics_out.c_str());
      return 1;
    }
  }
  return rc;
}

/// The paper's question asked of commit blocks: which checksums leak
/// which storage faults, on real file contents (docs/STORAGE.md).
int cmd_storage(const StorageOpts& o, std::string* extra_rows) {
  storage::FrontierConfig cfg;
  cfg.seed = o.seed;
  cfg.trials = {o.trials, o.trials};
  cfg.threads = o.threads;
  cfg.quick = o.quick;
  const storage::FrontierResult res = storage::run_frontier(cfg);

  bool failed = res.violations != 0;
  std::string detail =
      failed ? std::to_string(res.violations) + " accounting violations"
             : std::string();
  for (const storage::CellResult& c : res.cells) {
    if (c.trials != c.benign + c.detected + c.undetected && !failed) {
      failed = true;
      detail = std::string(storage::name(c.alg)) + "/" +
               std::string(storage::name(c.fault)) +
               ": outcome counts do not sum to trials";
    }
  }

  if (!o.quiet) {
    core::TextTable t({"block", "fault", "check", "trials", "benign", "det",
                       "undet", "miss", "runheavy miss"});
    std::size_t last_block = 0;
    for (const storage::CellResult& c : res.cells) {
      if (last_block != 0 && c.block_size != last_block) t.add_separator();
      last_block = c.block_size;
      t.add_row({std::to_string(c.block_size),
                 std::string(storage::name(c.fault)),
                 std::string(storage::name(c.alg)), core::fmt_count(c.trials),
                 core::fmt_count(c.benign), core::fmt_count(c.detected),
                 core::fmt_count(c.undetected),
                 core::fmt_pct(c.undetected, c.scored()),
                 core::fmt_pct(c.run_heavy_undetected, c.run_heavy_scored)});
    }
    t.print(std::cout);
    std::printf("\n");
    // The headline: the paper's Fletcher run pathology, relocated to
    // torn commit blocks. On 0x00/0xFF-heavy payloads a tear swaps
    // content the ones'-complement sums cannot see.
    std::printf("torn-write pathology, run-heavy slice (undetected/scored):\n");
    for (const storage::CellResult& c : res.cells) {
      if (c.fault != storage::FaultClass::kTorn) continue;
      std::printf("  %-8s %6zu B: %s (%llu/%llu)\n",
                  std::string(storage::name(c.alg)).c_str(), c.block_size,
                  core::fmt_pct(c.run_heavy_undetected, c.run_heavy_scored)
                      .c_str(),
                  static_cast<unsigned long long>(c.run_heavy_undetected),
                  static_cast<unsigned long long>(c.run_heavy_scored));
    }
    std::printf("\n");
  }

  const std::string rows = storage::frontier_json(cfg, res);
  if (o.json) std::printf("%s\n", rows.c_str());
  if (extra_rows != nullptr) *extra_rows = rows;

  std::printf("storage frontier: %zu cells, %llu trials, %llu undetected: "
              "%s\n",
              res.cells.size(),
              static_cast<unsigned long long>(res.trials_total),
              static_cast<unsigned long long>(res.undetected_total),
              failed ? "ACCOUNTING VIOLATED" : "accounting held");
  if (failed) {
    std::printf("  %s\n", detail.c_str());
    return 1;
  }
  return 0;
}

/// Hidden subcommand: one worker process of a distkill drill (also
/// usable against a `cksumlab splice --serve` coordinator — both
/// drivers speak the same protocol).
int cmd_distworker(const std::vector<std::string>& args) {
  dist::WorkerOptions w;
  w.tool = "faultlab distworker";
  std::string hostport;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (a == "--connect") {
      hostport = next();
    } else if (a == "--worker-id") {
      w.worker_id = std::stoull(next());
    } else if (a == "--metrics-out") {
      w.metrics_out = next();
    } else {
      return usage();
    }
  }
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) return usage();
  w.host = hostport.substr(0, colon);
  w.port = static_cast<std::uint16_t>(std::stoul(hostport.substr(colon + 1)));
  return dist::run_worker(w);
}

/// Multi-tenant drill (--jobs >= 2, docs/DIST.md failure matrix): N
/// named jobs run concurrently on one shared pool of worker
/// processes; one worker is SIGKILLed the moment the first result
/// lands anywhere, and the last job is cancelled after its first
/// merged shard. Every surviving job must still merge bitwise equal
/// to its own single-process oracle, the kill must be confirmed at
/// reap time, and an over-limit submit must be rejected up front.
int run_multitenant_drill(unsigned workers, unsigned jobs,
                          const std::string& profile, double scale,
                          std::size_t shard_files, bool verbose,
                          const std::string& metrics_out) {
  core::register_splice_metrics();
  dist::register_dist_metrics();

  // Per-job corpora: same profile, distinct scales, so each oracle is
  // a genuinely different report and cross-job leakage cannot cancel
  // out.
  std::vector<double> scales(jobs);
  std::vector<core::SpliceStats> oracles(jobs);
  std::vector<std::size_t> nfiles(jobs);
  for (unsigned j = 0; j < jobs; ++j) {
    scales[j] = scale * (1.0 - 0.2 * j);
    core::SpliceRunConfig run;
    run.flow = core::paper_flow_config();
    run.threads = 1;
    const fsgen::Filesystem fs(fsgen::profile(profile), scales[j]);
    nfiles[j] = fs.file_count();
    oracles[j] = core::run_filesystem(run, fs);
  }
  // The oracle runs above bumped the same global splice counters the
  // service run is about to use; re-baseline so the exported manifest
  // holds the accounting identity "aggregate == sum over jobs"
  // (check_manifest --require-dist enforces it).
  obs::Registry::global().reset();

  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!metrics_out.empty()) {
    obs::MetricsExporter::Options eo;
    eo.manifest_path = metrics_out;
    eo.ticker = false;
    exporter = std::make_unique<obs::MetricsExporter>(obs::Registry::global(),
                                                      std::move(eo));
  }

  dist::ServiceConfig sc;
  sc.expected_workers = workers;
  sc.limits.max_jobs = jobs;  // the probe submit below must bounce
  dist::JobService svc(sc);

  std::vector<std::uint64_t> ids;
  for (unsigned j = 0; j < jobs; ++j) {
    dist::JobSpec spec;
    spec.name = profile + "@" + std::to_string(scales[j]);
    spec.run.corpus_kind = dist::CorpusKind::kProfile;
    spec.run.corpus = profile;
    spec.run.scale = scales[j];
    spec.run.threads = 1;
    spec.nfiles = nfiles[j];
    spec.shard_files = shard_files;
    const auto id = svc.submit(spec);
    if (!id.has_value()) {
      std::fprintf(stderr, "distkill: job %u unexpectedly rejected\n", j + 1);
      return 1;
    }
    ids.push_back(*id);
  }
  const std::uint64_t victim = ids.back();

  // Admission probe: the table is full, so one more submit must be
  // rejected (observable as dist.jobs_rejected).
  dist::JobSpec extra;
  extra.name = "over-limit";
  extra.run.corpus_kind = dist::CorpusKind::kProfile;
  extra.run.corpus = profile;
  extra.run.scale = scales[0];
  extra.nfiles = nfiles[0];
  const bool admission_rejected = !svc.submit(extra).has_value();

  std::atomic<pid_t> killed_pid{-1};
  std::atomic<bool> victim_started{false};
  std::vector<pid_t> pids;
  svc.set_event_hook([&](const dist::ServiceEvent& ev) {
    if (verbose)
      std::fprintf(stderr, "distkill: event %d worker %llu job %llu "
                           "shard %zu\n",
                   static_cast<int>(ev.kind),
                   static_cast<unsigned long long>(ev.worker_id),
                   static_cast<unsigned long long>(ev.job), ev.shard);
    if (ev.kind != dist::ServiceEvent::Kind::kResultAccepted) return;
    if (ev.job == victim) victim_started.store(true);
    if (killed_pid.load() == -1) {
      // The expected_workers barrier held every grant until the whole
      // pool was connected, so any pid other than the deliverer
      // provably holds a lease of SOME job right now.
      for (const pid_t p : pids) {
        if (static_cast<std::uint64_t>(p) == ev.pid) continue;
        dist::kill_process(p);
        killed_pid.store(p);
        std::fprintf(stderr, "distkill: SIGKILLed worker pid %d after "
                             "first accepted result\n",
                     static_cast<int>(p));
        break;
      }
    }
  });

  const std::string exe = dist::self_exe_path();
  if (exe.empty()) {
    std::fprintf(stderr, "faultlab: cannot locate own executable\n");
    return 1;
  }
  for (unsigned i = 0; i < workers; ++i) {
    const pid_t pid = dist::spawn_process(
        {exe, "distworker", "--connect",
         "127.0.0.1:" + std::to_string(svc.port()), "--worker-id",
         std::to_string(i + 1), "--kernel",
         std::string(alg::kern::active_kernel().name)});
    if (pid < 0) {
      std::fprintf(stderr, "faultlab: cannot spawn worker %u\n", i + 1);
      return 1;
    }
    pids.push_back(pid);
  }

  // Cancel the victim from this thread (the hook runs inside the
  // service loop) once one of its shards has merged — mid-flight by
  // construction unless the job already raced to done.
  while (!victim_started.load() &&
         svc.status(victim)->state == dist::JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool cancelled = svc.cancel(victim);

  bool survivors_ok = true;
  for (unsigned j = 0; j + 1 < jobs; ++j) {
    const dist::JobReport rep = svc.wait(ids[j]);
    const bool ok = rep.state == dist::JobState::kDone &&
                    rep.report.complete && rep.report.stats == oracles[j];
    if (!ok)
      std::fprintf(stderr, "distkill: job %llu (%s) FAILED its oracle\n",
                   static_cast<unsigned long long>(rep.job),
                   rep.name.c_str());
    survivors_ok = survivors_ok && ok;
  }
  const dist::JobReport vic = svc.wait(victim);
  const bool victim_ok =
      cancelled ? vic.state == dist::JobState::kCancelled
                : (vic.state == dist::JobState::kDone &&
                   vic.report.stats == oracles[jobs - 1]);

  svc.drain();
  bool killed_confirmed = false;
  for (const pid_t p : pids) {
    const int code = dist::wait_process(p);
    if (p == killed_pid.load() && code == 128 + 9) killed_confirmed = true;
  }

  const auto counter = [](std::string_view name) -> std::uint64_t {
    const obs::Snapshot snap = obs::Registry::global().snapshot();
    const obs::MetricValue* m = snap.find(name);
    return m != nullptr ? m->value : 0;
  };
  std::printf("distkill: %u jobs on %u pooled workers\n", jobs, workers);
  std::printf("survivor jobs bitwise-equal to oracles: %s\n",
              survivors_ok ? "yes" : "NO");
  std::printf("victim job %s: %s\n",
              cancelled ? "cancelled mid-flight" : "raced to done",
              victim_ok ? "ok" : "WRONG STATE");
  std::printf("worker killed mid-run: %s\n",
              killed_confirmed ? "yes (SIGKILL confirmed)" : "NO");
  std::printf("over-limit submit rejected: %s\n",
              admission_rejected ? "yes" : "NO");
  std::printf("dist counters: submitted %llu, rejected %llu, cancelled "
              "%llu, completed %llu, write-queue hwm %llu, grants "
              "deferred %llu\n",
              static_cast<unsigned long long>(counter("dist.jobs_submitted")),
              static_cast<unsigned long long>(counter("dist.jobs_rejected")),
              static_cast<unsigned long long>(counter("dist.jobs_cancelled")),
              static_cast<unsigned long long>(counter("dist.jobs_completed")),
              static_cast<unsigned long long>(counter("dist.write_queue_hwm")),
              static_cast<unsigned long long>(counter("dist.grants_deferred")));

  if (exporter) {
    obs::RunInfo info;
    info.tool = "faultlab distkill";
    info.corpus = profile;
    info.seed = 0;
    info.threads = 1;
    info.extra_json =
        tools::kernel_manifest_json() + ",\n  \"dist\": " + svc.jobs_json();
    if (!exporter->finish(std::move(info))) {
      std::fprintf(stderr, "faultlab: cannot write manifest to %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  return (survivors_ok && victim_ok && killed_confirmed &&
          admission_rejected)
             ? 0
             : 1;
}

/// The worker-loss drill (satellite of docs/DIST.md's failure matrix):
/// run the reference corpus single-process, re-run it distributed with
/// one worker SIGKILLed the moment the first lease result lands, and
/// require the merged report to be bitwise identical anyway.
int cmd_distkill(const std::vector<std::string>& args) {
  unsigned workers = 3;
  unsigned jobs = 1;
  std::string profile = "nsc05";
  double scale = 0.1;
  std::size_t shard_files = 1;  // one file per lease: everyone leases
  bool verbose = false;
  std::string metrics_out;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string("0");
    };
    if (a == "--workers") {
      workers = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--jobs") {
      jobs = static_cast<unsigned>(std::stoul(next()));
    } else if (a == "--profile") {
      profile = next();
    } else if (a == "--scale") {
      scale = std::stod(next());
    } else if (a == "--shard-files") {
      shard_files = std::stoull(next());
    } else if (a == "--metrics-out") {
      metrics_out = next();
    } else if (a == "--quick") {
      // defaults already are the quick corpus; accepted for symmetry
    } else if (a == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return usage();
    }
  }
  if (workers < 2) {
    std::fprintf(stderr, "faultlab distkill: needs --workers >= 2\n");
    return 2;
  }
  faults::register_fault_metrics();
  atm::register_atm_metrics();
  alg::kern::register_kernel_metrics();
  if (jobs >= 2)
    return run_multitenant_drill(workers, jobs, profile, scale, shard_files,
                                 verbose, metrics_out);

  // The oracle: the same corpus evaluated in-process.
  core::SpliceRunConfig run;
  run.flow = core::paper_flow_config();
  run.threads = 1;
  const fsgen::Filesystem fs(fsgen::profile(profile), scale);
  const core::SpliceStats expected = core::run_filesystem(run, fs);

  dist::DistConfig dc;
  dc.run.corpus_kind = dist::CorpusKind::kProfile;
  dc.run.corpus = profile;
  dc.run.scale = scale;
  dc.run.threads = 1;
  dc.nfiles = fs.file_count();
  dc.expected_workers = workers;
  dc.shard_files = shard_files;
  dist::Coordinator coord(dc);

  const std::string exe = dist::self_exe_path();
  if (exe.empty()) {
    std::fprintf(stderr, "faultlab: cannot locate own executable\n");
    return 1;
  }
  std::vector<pid_t> pids;
  for (unsigned i = 0; i < workers; ++i) {
    const pid_t pid = dist::spawn_process(
        {exe, "distworker", "--connect",
         "127.0.0.1:" + std::to_string(coord.port()), "--worker-id",
         std::to_string(i + 1), "--kernel",
         std::string(alg::kern::active_kernel().name)});
    if (pid < 0) {
      std::fprintf(stderr, "faultlab: cannot spawn worker %u\n", i + 1);
      return 1;
    }
    pids.push_back(pid);
  }

  // The barrier guarantees every worker holds a lease before the first
  // result is accepted, so killing any *other* worker kills a worker
  // mid-lease (modulo the benign race where its own result is already
  // in flight — the epoch check makes that harmless either way).
  pid_t killed_pid = -1;
  auto hook = [&](const dist::DistEvent& ev) {
    if (verbose)
      std::fprintf(stderr, "distkill: event %d worker %llu shard %zu\n",
                   static_cast<int>(ev.kind),
                   static_cast<unsigned long long>(ev.worker_id), ev.shard);
    if (ev.kind != dist::DistEvent::Kind::kResultAccepted || killed_pid != -1)
      return;
    for (const pid_t p : pids) {
      if (static_cast<std::uint64_t>(p) == ev.pid) continue;
      dist::kill_process(p);
      killed_pid = p;
      std::fprintf(stderr, "distkill: SIGKILLed worker pid %d after first "
                           "accepted result\n",
                   static_cast<int>(p));
      break;
    }
  };
  const dist::DistReport rep = coord.run(hook);
  bool killed_confirmed = false;
  for (const pid_t p : pids) {
    const int code = dist::wait_process(p);
    if (p == killed_pid && code == 128 + 9) killed_confirmed = true;
  }

  const bool identical = rep.stats == expected;
  std::printf("distkill: %u workers, %zu shards, %zu reassigned, "
              "%zu stale results\n",
              workers, rep.shards, rep.reassigned, rep.stale_results);
  std::printf("worker killed mid-run: %s\n",
              killed_confirmed ? "yes (SIGKILL confirmed)" : "NO");
  std::printf("run complete: %s\n", rep.complete ? "yes" : "NO");
  std::printf("merged report identical to single-process run: %s\n",
              identical ? "yes" : "NO");
  return (rep.complete && identical && killed_confirmed) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  // Kernel selection is stripped before the subcommand split, so
  // `faultlab --kernel list` works bare and a bad --kernel (or
  // CKSUM_KERNEL) fails fast on every subcommand alike.
  std::vector<std::string> all_args(argv + 1, argv + argc);
  const int krc = tools::apply_kernel_args(all_args, "faultlab");
  if (krc != 0) return krc == 1 ? 0 : 2;
  if (all_args.empty()) return usage();
  const std::string cmd = all_args.front();
  std::vector<std::string> args(all_args.begin() + 1, all_args.end());
  if (cmd == "distworker" || cmd == "distkill") {
    try {
      return cmd == "distworker" ? cmd_distworker(args) : cmd_distkill(args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faultlab: %s\n", e.what());
      return 1;
    }
  }
  if (cmd == "storage") {
    StorageOpts so;
    try {
      so = parse_storage(args);
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "faultlab: expected a number after the last option\n");
      return usage();
    }
    if (!so.ok) return usage();
    try {
      std::string rows;
      return with_storage_metrics(so, "faultlab storage", &rows,
                                  [&] { return cmd_storage(so, &rows); });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faultlab: %s\n", e.what());
      return 1;
    }
  }
  if (cmd == "arq" || cmd == "arqsoak") {
    ArqOpts ao;
    try {
      ao = parse_arq(args);
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "faultlab: expected a number after the last option\n");
      return usage();
    }
    if (!ao.ok) return usage();
    try {
      if (cmd == "arqsoak") return cmd_arqsoak(ao);
      std::string rows;
      return with_arq_metrics(ao, "faultlab arq", &rows,
                              [&] { return cmd_arq(ao, &rows); });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faultlab: %s\n", e.what());
      return 1;
    }
  }
  Opts o;
  try {
    o = parse(args);
  } catch (const std::exception&) {
    std::fprintf(stderr, "faultlab: expected a number after the last option\n");
    return usage();
  }
  if (!o.ok) return usage();
  try {
    if (cmd == "soak") return cmd_soak(o);
    if (cmd == "replay") return cmd_replay(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "faultlab: %s\n", e.what());
    return 1;
  }
  return usage();
}
