#include "core/splice_sim.hpp"

#include <atomic>
#include <bit>
#include <thread>

#include "atm/splice.hpp"
#include "compress/lzw.hpp"
#include "net/validate.hpp"

namespace cksum::core {

namespace {

const alg::CrcCombiner& comb48() {
  static const alg::CrcCombiner c(atm::kCellPayload);
  return c;
}
const alg::CrcCombiner& comb44() {
  static const alg::CrcCombiner c(44);
  return c;
}

struct PairContext {
  const net::PacketConfig* cfg = nullptr;
  const SimPacket* p1 = nullptr;
  const SimPacket* p2 = nullptr;
  bool fast = false;
  bool fletcher = false;  ///< transport is a Fletcher sum
  bool mod255 = false;
  bool header_placement = true;
  /// Per p1 non-EOM cell: would these 48 bytes pass the header checks
  /// as the first cell of a splice of p2's AAL5 length?
  std::vector<bool> hdr_ok;
};

void classify(const PairContext& ctx, const atm::SpliceSpec& s, bool identical,
              bool transport_pass, bool crc_pass, SpliceStats& st) {
  if (identical) {
    ++st.identical;
    if (transport_pass) {
      ++st.pass_identical;
    } else {
      ++st.fail_identical;
    }
    return;
  }
  ++st.remaining;
  if (transport_pass) {
    ++st.missed_transport;
    ++st.pass_changed;
  } else {
    ++st.fail_changed;
  }
  if (crc_pass) ++st.missed_crc;
  if (crc_pass && transport_pass) ++st.missed_both;

  const std::size_t n2 = ctx.p2->cells.size();
  const std::size_t k =
      std::min<std::size_t>(n2 - s.k1, kMaxTrackedK - 1);
  ++st.remaining_by_k[k];
  if (transport_pass) ++st.missed_by_k[k];

  if (s.mask2 & 1u) {  // packet 2's header cell is in the splice
    ++st.remaining_with_hdr2;
    if (transport_pass) ++st.missed_with_hdr2;
  }
}

void eval_slow(const PairContext& ctx, const atm::SpliceSpec& s,
               SpliceStats& st) {
  ++st.slow_path;
  const SpliceOutcome o =
      evaluate_splice_reference(*ctx.cfg, *ctx.p1, *ctx.p2, s);
  if (o.caught_by_header) {
    ++st.caught_by_header;
    return;
  }
  classify(ctx, s, o.identical, o.transport_pass, o.crc_pass, st);
}

void eval_fast(const PairContext& ctx, const atm::SpliceSpec& s,
               SpliceStats& st) {
  const SimPacket& p1 = *ctx.p1;
  const SimPacket& p2 = *ctx.p2;
  const unsigned first = static_cast<unsigned>(std::countr_zero(s.mask1));

  if (!ctx.hdr_ok[first]) {
    ++st.caught_by_header;
    return;
  }
  if (first != 0) {
    // A data cell that nonetheless parses as a valid header: rare
    // enough to evaluate by materialisation.
    eval_slow(ctx, s, st);
    return;
  }

  const std::size_t n1 = p1.cells.size();
  const std::size_t n2 = p2.cells.size();

  // Accumulators. Fletcher sums stay unreduced (they fit easily in 32
  // bits for tens of cells); Internet sum folds at the end.
  std::uint64_t inet = p1.tp.head_sum;
  const alg::FletcherPair& hf = ctx.mod255 ? p1.tp.head_f255 : p1.tp.head_f256;
  std::uint64_t fa = hf.a;
  std::uint64_t fb = hf.b;
  std::uint32_t crc = 0;
  bool ident2 = true;
  bool ident1 = (n1 == n2);
  std::size_t pos = 0;

  auto take = [&](const SimPacket& src, unsigned idx) {
    const CellPartial& c = src.cells[idx];
    crc = pos == 0 ? c.crc : comb48().combine(crc, c.crc);
    ident2 = ident2 && c.hash == p2.cells[pos].hash;
    if (ident1) ident1 = c.hash == p1.cells[pos].hash;
    if (pos != 0) {
      inet += c.inet;
      const alg::FletcherPair& fp = ctx.mod255 ? c.f255 : c.f256;
      fb += static_cast<std::uint64_t>(atm::kCellPayload) * fa + fp.b;
      fa += fp.a;
    }
    ++pos;
  };

  for (std::uint32_t m = s.mask1; m != 0; m &= m - 1)
    take(p1, static_cast<unsigned>(std::countr_zero(m)));
  for (std::uint32_t m = s.mask2; m != 0; m &= m - 1)
    take(p2, static_cast<unsigned>(std::countr_zero(m)));

  // EOM cell: p2's last cell, always present. Identical-data
  // comparison covers only the in-datagram bytes of the EOM cell (the
  // AAL5 pad/trailer is not delivered data).
  {
    if (ident1) ident1 = p2.eom_cov_hash == p1.eom_cov_hash;
    inet += p2.tp.eom_sum;
    const alg::FletcherPair& fp = ctx.mod255 ? p2.tp.eom_f255 : p2.tp.eom_f256;
    fb += static_cast<std::uint64_t>(p2.tp.eom_len) * fa + fp.b;
    fa += fp.a;
    crc = comb44().combine(crc, p2.crc_head44);
  }

  bool transport_pass;
  if (ctx.fletcher) {
    const std::uint32_t m = ctx.mod255 ? 255u : 256u;
    transport_pass = (fa % m == 0) && (fb % m == 0);
  } else {
    const std::uint16_t content = [&] {
      std::uint64_t sum = inet;
      while (sum >> 16) sum = (sum & 0xffffu) + (sum >> 16);
      return static_cast<std::uint16_t>(sum);
    }();
    const std::uint16_t stored =
        ctx.header_placement ? p1.tp.stored : p2.tp.stored;
    const std::uint16_t expect =
        ctx.cfg->invert_checksum ? alg::ones_neg(content) : content;
    transport_pass =
        alg::ones_canonical(stored) == alg::ones_canonical(expect);
  }

  const bool crc_pass = crc == p2.stored_crc;
  classify(ctx, s, ident1 || ident2, transport_pass, crc_pass, st);
}

}  // namespace

SpliceOutcome evaluate_splice_reference(const net::PacketConfig& cfg,
                                        const SimPacket& p1,
                                        const SimPacket& p2,
                                        const atm::SpliceSpec& splice) {
  SpliceOutcome out;
  const util::Bytes bytes = atm::materialize_splice(p1.pdu, p2.pdu, splice);
  const atm::Aal5Trailer trailer = atm::parse_trailer(util::ByteView(bytes));
  const std::size_t len = trailer.length;

  if (net::check_headers(util::ByteView(bytes), len,
                         cfg.fill_ip_header && !cfg.legacy95_headers,
                         cfg.legacy95_headers) != net::HeaderCheck::kOk) {
    out.caught_by_header = true;
    return out;
  }

  // "Identical data" compares the delivered IP datagram (the first
  // `len` bytes) with the transport check field excluded. The AAL5
  // pad/trailer is reassembly framing, not data, and the check field
  // is not data either: §5.3's trailer analysis counts a splice whose
  // *payload* reproduces packet 1 as identical even though it carries
  // packet 2's trailer checksum (and is therefore rejected — a benign
  // false positive, Table 10).
  std::size_t skip_at = len;  // offset of the 2 excluded bytes
  if (cfg.placement == net::ChecksumPlacement::kHeader) {
    skip_at = net::kIpv4HeaderLen + 16;
  } else if (len >= net::kTrailerCheckLen) {
    skip_at = len - net::kTrailerCheckLen;
  }
  const auto datagram_equal = [&](const SimPacket& p) {
    if (p.total_len != len) return false;
    const util::ByteView a(bytes.data(), len);
    const util::ByteView b = p.pdu.bytes().first(len);
    for (std::size_t i = 0; i < len; ++i) {
      if (i == skip_at) {
        ++i;  // skip both check bytes
        continue;
      }
      if (a[i] != b[i]) return false;
    }
    return true;
  };
  out.identical = datagram_equal(p2) || datagram_equal(p1);
  out.transport_pass =
      net::verify_transport_checksum(cfg, util::ByteView(bytes).first(len));
  out.crc_pass = atm::crc_ok(util::ByteView(bytes));
  return out;
}

void SpliceStats::merge(const SpliceStats& o) {
  files += o.files;
  packets += o.packets;
  pairs += o.pairs;
  total += o.total;
  caught_by_header += o.caught_by_header;
  identical += o.identical;
  remaining += o.remaining;
  missed_crc += o.missed_crc;
  missed_transport += o.missed_transport;
  missed_both += o.missed_both;
  fail_identical += o.fail_identical;
  pass_identical += o.pass_identical;
  fail_changed += o.fail_changed;
  pass_changed += o.pass_changed;
  remaining_with_hdr2 += o.remaining_with_hdr2;
  missed_with_hdr2 += o.missed_with_hdr2;
  for (std::size_t i = 0; i < kMaxTrackedK; ++i) {
    remaining_by_k[i] += o.remaining_by_k[i];
    missed_by_k[i] += o.missed_by_k[i];
  }
  slow_path += o.slow_path;
}

void evaluate_pair(const net::PacketConfig& cfg, const SimPacket& p1,
                   const SimPacket& p2, SpliceStats& stats) {
  ++stats.pairs;
  const std::size_t n1 = p1.pdu.num_cells();
  const std::size_t n2 = p2.pdu.num_cells();
  if (n1 < 2 || n2 < 1) return;

  PairContext ctx;
  ctx.cfg = &cfg;
  ctx.p1 = &p1;
  ctx.p2 = &p2;
  ctx.fast = p2.fast_path_ok;
  ctx.fletcher = cfg.transport != alg::Algorithm::kInternet;
  ctx.mod255 = cfg.transport == alg::Algorithm::kFletcher255;
  ctx.header_placement = cfg.placement == net::ChecksumPlacement::kHeader;
  ctx.hdr_ok.resize(n1 - 1);
  const bool require_ipck = cfg.fill_ip_header && !cfg.legacy95_headers;
  for (std::size_t i = 0; i + 1 < n1; ++i) {
    ctx.hdr_ok[i] =
        net::check_headers(p1.pdu.cell(i), p2.total_len, require_ipck,
                           cfg.legacy95_headers) == net::HeaderCheck::kOk;
  }

  atm::for_each_splice(n1, n2, [&](const atm::SpliceSpec& s) {
    ++stats.total;
    if (ctx.fast) {
      eval_fast(ctx, s, stats);
    } else {
      eval_slow(ctx, s, stats);
    }
  });
}

SpliceStats run_file(const SpliceRunConfig& cfg, util::ByteView file) {
  SpliceStats st;
  util::Bytes compressed;
  if (cfg.compress_files) {
    compressed = compress::lzw_compress(file);
    file = util::ByteView(compressed);
  }
  const std::vector<SimPacket> pkts = packetize_file(cfg.flow, file);
  st.files = 1;
  st.packets = pkts.size();
  for (std::size_t i = 0; i + 1 < pkts.size(); ++i)
    evaluate_pair(cfg.flow.packet, pkts[i], pkts[i + 1], st);
  return st;
}

SpliceStats run_filesystem(const SpliceRunConfig& cfg,
                           const fsgen::Filesystem& fs) {
  unsigned threads = cfg.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(1, fs.file_count())));

  if (threads <= 1) {
    SpliceStats st;
    for (std::size_t i = 0; i < fs.file_count(); ++i) {
      const util::Bytes file = fs.file(i);
      st.merge(run_file(cfg, util::ByteView(file)));
    }
    return st;
  }

  // Files are independent flows: shard them over a small worker pool
  // and merge the per-thread statistics (all counters are additive).
  std::vector<SpliceStats> partial(threads);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= fs.file_count()) return;
        const util::Bytes file = fs.file(i);
        partial[t].merge(run_file(cfg, util::ByteView(file)));
      }
    });
  }
  for (auto& th : pool) th.join();

  SpliceStats st;
  for (const auto& p : partial) st.merge(p);
  return st;
}

}  // namespace cksum::core
