#include "storage/frontier.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <mutex>
#include <thread>

#include "obs/registry.hpp"

namespace cksum::storage {

namespace {

struct StorageMetrics {
  obs::Counter trials, benign, detected, undetected, violations, cells,
      writes, torn_injected, misdirected_injected, lost_injected,
      corrupt_injected;
};

const StorageMetrics& smx() {
  static const StorageMetrics m = [] {
    obs::Registry& r = obs::Registry::global();
    StorageMetrics v;
    v.trials = r.counter("storage.trials");
    v.benign = r.counter("storage.benign");
    v.detected = r.counter("storage.detected");
    v.undetected = r.counter("storage.undetected");
    v.violations = r.counter("storage.violations");
    v.cells = r.counter("storage.cells");
    v.writes = r.counter("storage.writes");
    v.torn_injected = r.counter("storage.torn.injected");
    v.misdirected_injected = r.counter("storage.misdirected.injected");
    v.lost_injected = r.counter("storage.lost.injected");
    v.corrupt_injected = r.counter("storage.corrupt.injected");
    return v;
  }();
  return m;
}

/// Carve a file into consecutive payload-sized windows.
std::vector<util::Bytes> carve(const util::Bytes& file,
                               std::size_t payload) {
  std::vector<util::Bytes> out;
  for (std::size_t off = 0; off + payload <= file.size(); off += payload)
    out.emplace_back(file.begin() + static_cast<std::ptrdiff_t>(off),
                     file.begin() + static_cast<std::ptrdiff_t>(off + payload));
  return out;
}

StoragePlan forced_plan(FaultClass f) {
  StoragePlan p;
  switch (f) {
    case FaultClass::kTorn: p.torn_rate = 1.0; break;
    case FaultClass::kMisdirected: p.misdirect_rate = 1.0; break;
    case FaultClass::kLost: p.lost_rate = 1.0; break;
    case FaultClass::kCorrupt: p.corrupt_rate = 1.0; break;
  }
  return p;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

BlockPool build_pool(std::size_t block_size, std::uint64_t seed,
                     std::size_t target_pairs) {
  assert(block_size > kCheckFieldSize);
  BlockPool pool;
  pool.block_size = block_size;
  const std::size_t payload = block_size - kCheckFieldSize;
  const util::Rng root(seed);
  constexpr std::size_t nk = std::size(fsgen::kAllKinds);
  // Per-kind window streams, refilled from fresh generated files, so
  // the pool is balanced across kinds whatever the target count.
  std::vector<std::vector<util::Bytes>> windows(nk);
  std::vector<std::size_t> cursor(nk, 0);
  std::vector<std::uint64_t> fileno(nk, 0);
  while (pool.pairs.size() < target_pairs) {
    for (std::size_t ki = 0; ki < nk && pool.pairs.size() < target_pairs;
         ++ki) {
      if (cursor[ki] + 1 >= windows[ki].size()) {
        // Generators honour the size target only within a structural
        // unit; grow the request until the file carves two windows.
        std::size_t want = payload * 4 + payload / 2;
        do {
          const std::uint64_t fseed =
              root.child(ki * 65536 + fileno[ki]++).next();
          windows[ki] = carve(
              fsgen::generate_file(fsgen::kAllKinds[ki], fseed, want),
              payload);
          want *= 2;
        } while (windows[ki].size() < 2);
        cursor[ki] = 0;
      }
      // Overlapping chain (w0,w1), (w1,w2), ... : each pair is one
      // commit record advancing a generation within its journal
      // stream, so run structure continues across a tear.
      pool.pairs.push_back({fsgen::kAllKinds[ki], windows[ki][cursor[ki]],
                            windows[ki][cursor[ki] + 1]});
      ++cursor[ki];
    }
  }
  return pool;
}

Outcome run_trial(const BlockPool& pool, Algo alg, FaultClass fault,
                  std::uint64_t seed, std::uint64_t cell_id,
                  std::uint64_t trial, TrialAudit* audit) {
  assert(!pool.pairs.empty());
  // The Rng chain depends only on (seed, cell, trial) — never on which
  // thread runs the trial or in what order.
  util::Rng tr = util::Rng(seed).child(cell_id).child(trial);
  const std::size_t B = pool.block_size;
  const BlockPool::Pair& pair = pool.pairs[tr.below(pool.pairs.size())];
  const BlockPool::Pair& nb_pair = pool.pairs[tr.below(pool.pairs.size())];
  const std::uint64_t addr = tr.next();
  const std::uint64_t nb_addr = addr ^ (1 + tr.below(0xFFFF));

  BlockDevice dev(B, forced_plan(fault), tr.next());
  const WriteContext target_old{addr, 0};
  const WriteContext target_new{addr, 1};
  const WriteContext neighbour{nb_addr, 0};
  dev.format(addr, seal_block(alg, target_old, pair.older, B));
  util::Bytes want_nb = seal_block(alg, neighbour, nb_pair.older, B);
  dev.format(nb_addr, want_nb);
  util::Bytes want_target = seal_block(alg, target_new, pair.newer, B);
  const WriteEvent ev = dev.write(addr, want_target);

  // Byte-level oracle: after the write the reader expects the new
  // generation at the target and the untouched neighbour beside it.
  bool any_undetected = false, any_detected = false, violation = false;
  const auto score = [&](std::uint64_t a, const WriteContext& ctx,
                         const util::Bytes& expected,
                         TrialAudit::Read* out) {
    const util::ByteView actual = dev.read(a);
    const bool correct =
        actual.size() == expected.size() &&
        std::equal(actual.begin(), actual.end(), expected.begin());
    const bool ok = verify_block(alg, ctx, actual);
    if (out != nullptr) {
      out->address = a;
      out->generation = ctx.generation;
      out->expected = expected;
      out->actual = util::Bytes(actual.begin(), actual.end());
      out->check_passed = ok;
    }
    if (correct && !ok) violation = true;  // a sealed block must verify
    if (!correct) (ok ? any_undetected : any_detected) = true;
  };
  score(addr, target_new, want_target,
        audit != nullptr ? &audit->reads[0] : nullptr);
  score(nb_addr, neighbour, want_nb,
        audit != nullptr ? &audit->reads[1] : nullptr);
  if (audit != nullptr) {
    audit->kind = pair.kind;
    audit->event = ev;
  }
  assert(!violation);
  if (violation) return Outcome::kDetected;  // impossible by construction
  if (any_undetected) return Outcome::kUndetected;
  if (any_detected) return Outcome::kDetected;
  return Outcome::kBenign;
}

FrontierResult run_frontier(const FrontierConfig& cfg) {
  assert(cfg.block_sizes.size() == cfg.trials.size());
  FrontierResult res;

  // Pools and the fixed cell grid (block size → fault → algorithm).
  std::vector<BlockPool> pools;
  std::vector<std::uint64_t> cell_trials;
  std::vector<std::size_t> cell_pool;
  for (std::size_t bi = 0; bi < cfg.block_sizes.size(); ++bi) {
    const std::size_t bs = cfg.block_sizes[bi];
    std::size_t pairs = cfg.pool_pairs;
    if (pairs == 0) pairs = bs >= 65536 ? 55 : 220;
    pools.push_back(build_pool(bs, cfg.seed ^ 0x5706F01ull, pairs));
    std::size_t trials = cfg.trials[bi];
    if (trials == 0)
      trials = cfg.quick ? (bs >= 65536 ? 48 : 240)
                         : (bs >= 65536 ? 600 : 2500);
    for (const FaultClass f : kAllFaults) {
      for (const Algo a : kAllAlgos) {
        CellResult c;
        c.alg = a;
        c.block_size = bs;
        c.fault = f;
        res.cells.push_back(c);
        cell_trials.push_back(trials);
        cell_pool.push_back(bi);
      }
    }
  }

  // Per-cell accumulation state, merged by commutative sums only.
  struct CellAccum {
    CellResult counts;
    StorageStats dev;
    std::uint64_t violations = 0;
  };
  struct Chunk {
    std::size_t cell;
    std::uint64_t begin, end;
  };
  std::vector<Chunk> chunks;
  const unsigned threads = std::max(1u, cfg.threads);
  for (std::size_t ci = 0; ci < res.cells.size(); ++ci) {
    const std::uint64_t n = cell_trials[ci];
    const std::uint64_t step =
        std::max<std::uint64_t>(1, n / (threads * 4u));
    for (std::uint64_t b = 0; b < n; b += step)
      chunks.push_back({ci, b, std::min(n, b + step)});
  }

  std::vector<CellAccum> accum(res.cells.size());
  std::mutex merge_mu;
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    std::vector<CellAccum> local(res.cells.size());
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks.size()) break;
      const Chunk& ch = chunks[i];
      const CellResult& cell = res.cells[ch.cell];
      const BlockPool& pool = pools[cell_pool[ch.cell]];
      CellAccum& la = local[ch.cell];
      for (std::uint64_t t = ch.begin; t < ch.end; ++t) {
        TrialAudit audit;
        const Outcome o = run_trial(pool, cell.alg, cell.fault, cfg.seed,
                                    ch.cell, t, &audit);
        ++la.counts.trials;
        switch (o) {
          case Outcome::kBenign: ++la.counts.benign; break;
          case Outcome::kDetected: ++la.counts.detected; break;
          case Outcome::kUndetected: ++la.counts.undetected; break;
        }
        if (run_heavy(audit.kind)) {
          ++la.counts.run_heavy_trials;
          if (o != Outcome::kBenign) ++la.counts.run_heavy_scored;
          if (o == Outcome::kUndetected) ++la.counts.run_heavy_undetected;
        }
        // Accounting violation: a reader seeing exactly the sealed
        // block it expects must always pass verification.
        for (const TrialAudit::Read& r : audit.reads)
          if (r.actual == r.expected && !r.check_passed) ++la.violations;
        // One device per trial: fold its injection counters in.
        StorageStats ds;
        ds.writes = 1;
        switch (audit.event.kind) {
          case WriteEvent::Kind::kCommitted: ds.committed = 1; break;
          case WriteEvent::Kind::kTorn: ds.torn = 1; break;
          case WriteEvent::Kind::kMisdirected: ds.misdirected = 1; break;
          case WriteEvent::Kind::kLost: ds.lost = 1; break;
          case WriteEvent::Kind::kCorrupted: ds.corrupted = 1; break;
        }
        la.dev.merge(ds);
      }
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    for (std::size_t ci = 0; ci < accum.size(); ++ci) {
      CellAccum& g = accum[ci];
      const CellAccum& l = local[ci];
      g.counts.trials += l.counts.trials;
      g.counts.benign += l.counts.benign;
      g.counts.detected += l.counts.detected;
      g.counts.undetected += l.counts.undetected;
      g.counts.run_heavy_trials += l.counts.run_heavy_trials;
      g.counts.run_heavy_scored += l.counts.run_heavy_scored;
      g.counts.run_heavy_undetected += l.counts.run_heavy_undetected;
      g.dev.merge(l.dev);
      g.violations += l.violations;
    }
  };
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool_threads;
    for (unsigned i = 0; i < threads; ++i)
      pool_threads.emplace_back(worker);
    for (std::thread& th : pool_threads) th.join();
  }

  for (std::size_t ci = 0; ci < res.cells.size(); ++ci) {
    CellResult& c = res.cells[ci];
    const CellAccum& a = accum[ci];
    c.trials = a.counts.trials;
    c.benign = a.counts.benign;
    c.detected = a.counts.detected;
    c.undetected = a.counts.undetected;
    c.run_heavy_trials = a.counts.run_heavy_trials;
    c.run_heavy_scored = a.counts.run_heavy_scored;
    c.run_heavy_undetected = a.counts.run_heavy_undetected;
    res.device_stats.merge(a.dev);
    res.trials_total += c.trials;
    res.undetected_total += c.undetected;
    res.violations += a.violations;
  }

#ifndef OBS_DISABLE
  const StorageMetrics& m = smx();
  m.trials.add(res.trials_total);
  std::uint64_t benign = 0, detected = 0;
  for (const CellResult& c : res.cells) {
    benign += c.benign;
    detected += c.detected;
  }
  m.benign.add(benign);
  m.detected.add(detected);
  m.undetected.add(res.undetected_total);
  m.violations.add(res.violations);
  m.cells.add(res.cells.size());
  m.writes.add(res.device_stats.writes);
  m.torn_injected.add(res.device_stats.torn);
  m.misdirected_injected.add(res.device_stats.misdirected);
  m.lost_injected.add(res.device_stats.lost);
  m.corrupt_injected.add(res.device_stats.corrupted);
#endif
  return res;
}

std::string frontier_json(const FrontierConfig& cfg,
                          const FrontierResult& res) {
  std::string j = "{\"seed\": " + std::to_string(cfg.seed);
  j += ", \"block_sizes\": [";
  for (std::size_t i = 0; i < cfg.block_sizes.size(); ++i) {
    if (i != 0) j += ", ";
    j += std::to_string(cfg.block_sizes[i]);
  }
  j += "], \"trials\": " + std::to_string(res.trials_total);
  j += ", \"undetected\": " + std::to_string(res.undetected_total);
  j += ", \"violations\": " + std::to_string(res.violations);
  j += ", \"rows\": [";
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    const CellResult& c = res.cells[i];
    if (i != 0) j += ", ";
    j += "{\"algorithm\": \"" + std::string(name(c.alg)) + "\"";
    j += ", \"key\": \"" + std::string(manifest_key(c.alg)) + "\"";
    j += ", \"block_size\": " + std::to_string(c.block_size);
    j += ", \"fault\": \"" + std::string(name(c.fault)) + "\"";
    j += ", \"trials\": " + std::to_string(c.trials);
    j += ", \"benign\": " + std::to_string(c.benign);
    j += ", \"detected\": " + std::to_string(c.detected);
    j += ", \"undetected\": " + std::to_string(c.undetected);
    j += ", \"run_heavy_trials\": " + std::to_string(c.run_heavy_trials);
    j += ", \"run_heavy_scored\": " + std::to_string(c.run_heavy_scored);
    j += ", \"run_heavy_undetected\": " +
         std::to_string(c.run_heavy_undetected);
    j += ", \"miss_rate\": " + fmt_double(c.miss_rate());
    j += "}";
  }
  j += "]}";
  return j;
}

void register_storage_metrics() {
#ifndef OBS_DISABLE
  smx();
#endif
}

}  // namespace cksum::storage
